// Extension bench: embedded MULT18X18 vs LUT-fabric mantissa multipliers —
// the resource-mix knob behind the paper's note that tool speed
// optimization "might result in more embedded multipliers being used up".
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "units/fp_unit.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;

  analysis::Table t(
      "Extension: embedded vs LUT-fabric mantissa multiplier",
      {"format", "variant", "max stages", "slices @opt-ish", "BMULTs",
       "MHz @s8", "MHz @max"});
  for (const fp::FpFormat& fmt :
       {fp::FpFormat::binary32(), fp::FpFormat::binary48(),
        fp::FpFormat::binary64()}) {
    for (bool embedded : {true, false}) {
      units::UnitConfig cfg;
      cfg.stages = 8;
      cfg.use_embedded_multipliers = embedded;
      const units::FpUnit u(units::UnitKind::kMultiplier, fmt, cfg);
      units::UnitConfig deep = cfg;
      deep.stages = 999;
      const units::FpUnit d(units::UnitKind::kMultiplier, fmt, deep);
      t.add_row({fmt.name(), embedded ? "MULT18X18" : "LUT fabric",
                 analysis::Table::num(static_cast<long>(u.max_stages())),
                 analysis::Table::num(
                     static_cast<long>(u.area().total.slices)),
                 analysis::Table::num(
                     static_cast<long>(u.area().total.bmults)),
                 analysis::Table::num(u.freq_mhz(), 1),
                 analysis::Table::num(d.freq_mhz(), 1)});
    }
  }
  bench::emit(t, argc, argv);
  return 0;
}
