// Ablation: glitch modeling in the power estimate. With the glitch
// coefficient at 0 (registers buy no glitch suppression), power at fixed
// frequency grows monotonically with depth (pure FF/clock growth); at the
// calibrated 0.45 the curve is U-shaped and the Section 5 energy crossover
// appears. This is the design choice behind Figure 3's shape.
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "power/unit_power.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;

  analysis::Table t(
      "Ablation: 64-bit adder power at 100 MHz, glitch coeff 0 vs 0.45",
      {"stages", "mW (no glitch model)", "mW (calibrated)"});
  units::UnitConfig probe_cfg;
  const units::FpUnit probe(units::UnitKind::kAdder, fp::FpFormat::binary64(),
                            probe_cfg);
  for (int s = 1; s <= probe.max_stages(); s += 2) {
    units::UnitConfig cfg;
    cfg.stages = s;
    const units::FpUnit u(units::UnitKind::kAdder, fp::FpFormat::binary64(),
                          cfg);
    t.add_row({analysis::Table::num(static_cast<long>(s)),
               analysis::Table::num(
                   power::unit_power(u, 100.0, 0.5, 0.0).total_mw(), 1),
               analysis::Table::num(
                   power::unit_power(u, 100.0, 0.5, 0.45).total_mw(), 1)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
