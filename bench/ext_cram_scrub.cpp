// Extension: configuration-memory upsets and what bounds them. The SEU
// bench treats user state (pipeline latches, BRAM words); on an SRAM FPGA
// the larger target is the configuration memory holding the design itself,
// and a strike there persists until scrubbed. This bench reports the
// essential-bit footprint and raw CRAM FIT of the paper's units, sweeps
// the scrub period to show exposure turning into a bounded window, re-runs
// the reliability-constrained min/max/opt selection with the CRAM term
// included, simulates the matmul kernel under accumulator + latch +
// persistent-config faults per storage scheme (SECDED accumulators vs
// bare), and prices ECC against duplication.
//
// Usage: ext_cram_scrub [--scheme=<none|ecc>] [--threads=<n>]
//                       [--backend=<b>] [--csv <dir>] [--json <path>]
//                       [--metrics=<path>] [--trace=<path>]
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "analysis/pareto.hpp"
#include "analysis/seu.hpp"
#include "bench_util.hpp"
#include "exec/cancel.hpp"
#include "obs/cli.hpp"
#include "rtl/evaluator.hpp"
#include "run_policy.hpp"

namespace {

using namespace flopsim;

std::string unit_title(units::UnitKind kind, fp::FpFormat fmt) {
  return std::string(units::to_string(kind)) + "<" + fmt.name() + ">";
}

// Scrub periods swept everywhere, seconds; 0 = scrubbing off.
const std::vector<double> kScrubPeriods{0.0, 1.0, 0.1, 0.01, 1e-3, 1e-4};
// Mission profile: the kernel streams 10% of wall time in 1 ms bursts, so
// an upset scrubbed before the next burst never corrupts output.
constexpr double kDuty = 0.1;

analysis::Table essential_bits_table(int threads) {
  const fault::CramModel cram;
  const analysis::CramRateModel rate;  // scrub off: mission/2 exposure
  analysis::Table t(
      "Essential configuration bits at opt depth (scrub off)",
      {"unit", "stages", "slices", "bmults", "ess. bits", "ess. Mbit",
       "CRAM FIT"});
  for (const fp::FpFormat fmt :
       {fp::FpFormat::binary32(), fp::FpFormat::binary64()}) {
    for (const units::UnitKind kind :
         {units::UnitKind::kAdder, units::UnitKind::kMultiplier}) {
      const analysis::SweepResult sweep = analysis::sweep_unit(
          kind, fmt, device::Objective::kArea,
          device::TechModel::virtex2pro7(), threads);
      const analysis::Selection sel = analysis::select_min_max_opt(sweep);
      const device::Resources area = sel.opt.area;
      t.add_row({unit_title(kind, fmt),
                 analysis::Table::num(static_cast<long>(sel.opt.stages)),
                 analysis::Table::num(static_cast<long>(area.slices)),
                 analysis::Table::num(static_cast<long>(area.bmults)),
                 analysis::Table::num(cram.essential_bits(area), 0),
                 analysis::Table::num(cram.essential_mbit(area), 4),
                 analysis::Table::num(rate.fit(area), 2)});
    }
  }
  return t;
}

analysis::Table fit_vs_scrub_table(int threads) {
  const analysis::SweepResult sweep = analysis::sweep_unit(
      units::UnitKind::kMultiplier, fp::FpFormat::binary64(),
      device::Objective::kArea, device::TechModel::virtex2pro7(), threads);
  const analysis::Selection sel = analysis::select_min_max_opt(sweep);
  const analysis::SeuRateModel latch_rate;

  analysis::Table t(
      "FIT vs scrub period — mult<binary64>/s" +
          std::to_string(sel.opt.stages),
      {"scrub period s", "P(observe)", "CRAM FIT", "latch FIT", "total FIT"});
  for (double period : kScrubPeriods) {
    analysis::CramRateModel rate;
    rate.scrub.period_s = period;
    rate.scrub.duty = kDuty;
    const double cram_fit = rate.fit(sel.opt.area);
    const double latch_fit = latch_rate.fit(sel.opt.pipeline_ffs, 1.0);
    t.add_row({period > 0.0 ? analysis::Table::num(period, 4) : "off",
               analysis::Table::num(
                   rate.scrub.observe_probability(rate.mission_s), 4),
               analysis::Table::num(cram_fit, 2),
               analysis::Table::num(latch_fit, 2),
               analysis::Table::num(cram_fit + latch_fit, 2)});
  }
  return t;
}

analysis::Table reliable_selection_cram_table(int threads) {
  const analysis::SeuRateModel latch_rate;
  analysis::Table t(
      "min/max/opt with latch + CRAM FIT constraint (binary64 mult)",
      {"scrub period s", "FIT cap", "capped stages", "CRAM FIT", "total FIT",
       "feasible"});
  const analysis::SweepResult sweep = analysis::sweep_unit(
      units::UnitKind::kMultiplier, fp::FpFormat::binary64(),
      device::Objective::kArea, device::TechModel::virtex2pro7(), threads);
  const analysis::Selection sel = analysis::select_min_max_opt(sweep);
  // Same cap the SEU bench uses for the latch-only selection: with the
  // CRAM term added, only aggressive scrubbing can make it feasible again.
  const double cap = latch_rate.fit(sel.opt.pipeline_ffs, 1.0) * 0.6;
  for (double period : kScrubPeriods) {
    analysis::CramRateModel rate;
    rate.scrub.period_s = period;
    rate.scrub.duty = kDuty;
    const analysis::ReliableSelection rs = analysis::select_min_max_opt_reliable(
        sweep, cap, latch_rate, 1.0, rate);
    t.add_row({period > 0.0 ? analysis::Table::num(period, 4) : "off",
               analysis::Table::num(cap, 2),
               analysis::Table::num(static_cast<long>(rs.opt.stages)),
               analysis::Table::num(rs.cram_fit_at_opt, 2),
               analysis::Table::num(rs.fit_at_opt, 2),
               rs.feasible ? "yes" : "no"});
  }
  return t;
}

analysis::Table kernel_sdc_table(const std::vector<fault::Scheme>& schemes,
                                 bench::CampaignJournal& journal,
                                 bench::RunPolicy& policy) {
  analysis::Table t(
      "Matmul kernel SDC by storage scheme (n=4, binary32, acc+latch+config)",
      {"scheme", "scrub cyc", "injected", "masked", "corrected", "detected",
       "silent", "acc SDC", "latch SDC", "config SDC"});
  for (const fault::Scheme scheme : schemes) {
    for (const long scrub : {0L, 16L}) {
      kernel::PeConfig cfg;
      cfg.adder_stages = 8;
      cfg.mult_stages = 5;
      analysis::MatmulSeuConfig camp;
      camp.faults = 24;
      camp.scheme = scheme;
      camp.config_fraction = 0.25;
      camp.scrub_period_cycles = scrub;
      camp.threads = journal.threads();
      camp.backend = policy.backend();
      const std::string name = std::string("cram_matmul_campaign:") +
                               fault::to_string(scheme) + ":scrub" +
                               std::to_string(scrub);
      const analysis::MatmulSeuResult r = journal.time(
          name,
          camp.faults + static_cast<long>(camp.config_fraction * camp.faults +
                                          0.5),
          [&] {
            return analysis::run_matmul_campaign(cfg, camp, policy.control());
          });
      policy.note_matmul(name, r);
      journal.note_dropped(r.draws_exhausted);
      const auto frac = [](int silent, int injected) {
        return injected > 0
                   ? analysis::Table::num(
                         static_cast<double>(silent) / injected, 3)
                   : std::string("-");
      };
      t.add_row({fault::to_string(scheme),
                 scrub > 0 ? analysis::Table::num(scrub) : "off",
                 analysis::Table::num(static_cast<long>(r.injected)),
                 analysis::Table::num(static_cast<long>(r.masked)),
                 analysis::Table::num(static_cast<long>(r.corrected)),
                 analysis::Table::num(static_cast<long>(r.detected)),
                 analysis::Table::num(static_cast<long>(r.silent)),
                 frac(r.acc_silent, r.acc_injected),
                 frac(r.latch_silent, r.latch_injected),
                 frac(r.config_silent, r.config_injected)});
    }
  }
  return t;
}

analysis::Table ecc_cost_table() {
  units::UnitConfig cfg;
  cfg.stages = 8;
  const units::FpUnit unit(units::UnitKind::kAdder, fp::FpFormat::binary64(),
                           cfg);
  analysis::Table t(
      "Storage-protection cost — adder<binary64>/s8 baseline",
      {"scheme", "slices +", "LUTs +", "FFs +", "BRAMs +", "area x",
       "power x", "+cycles"});
  for (const fault::Scheme scheme :
       {fault::Scheme::kNone, fault::Scheme::kEcc, fault::Scheme::kDuplicate,
        fault::Scheme::kTmr}) {
    const fault::HardeningCost c = fault::hardening_cost(unit, scheme);
    t.add_row({fault::to_string(scheme),
               analysis::Table::num(static_cast<long>(c.overhead.slices)),
               analysis::Table::num(static_cast<long>(c.overhead.luts)),
               analysis::Table::num(static_cast<long>(c.overhead.ffs)),
               analysis::Table::num(static_cast<long>(c.overhead.brams)),
               analysis::Table::num(c.area_factor, 2),
               analysis::Table::num(c.power_factor, 2),
               analysis::Table::num(static_cast<long>(c.extra_latency_cycles))});
  }
  return t;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--scheme=<none|ecc>] [--threads=<n>]\n"
               "          [--backend=<b>] [--csv <dir>] [--json <path>]\n"
               "          [--metrics=<path>] [--trace=<path>]\n"
               "          [--checkpoint=<dir>] [--resume]\n"
               "          [--time-budget=<sec>] [--trial-budget=<n>]\n"
               "          [--stop-halfwidth=<frac>] [--fsync-interval=<n>]\n"
               "  --scheme=  restrict the kernel SDC table to one storage\n"
               "             scheme (default: none and ecc)\n"
               "  --threads= campaign worker threads (default: auto via\n"
               "             FLOPSIM_THREADS, then hardware concurrency)\n"
               "  --backend= campaign trial evaluation backend: interpreted,\n"
               "             compiled, or bitsliced (default: FLOPSIM_BACKEND,\n"
               "             then interpreted); the matmul campaign has no\n"
               "             fast path yet and falls back (counted in\n"
               "             campaign.matmul.backend_fallback)\n"
               "  --json     append per-campaign timing records (JSON lines,\n"
               "             conventionally BENCH_campaign.json)\n"
               "  --metrics= dump the metrics registry as JSON lines at exit\n"
               "  --trace=   write a Chrome/Perfetto trace-event JSON file\n"
               "  --checkpoint=/--resume/--time-budget=/--trial-budget=/\n"
               "  --stop-halfwidth= crash-safe campaign journaling, run\n"
               "             budgets, and convergence early-stop; an\n"
               "             interrupted-but-resumable run exits %d\n",
               argv0, obs::kExitInterrupted);
  return obs::kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flopsim;
  std::vector<fault::Scheme> schemes{fault::Scheme::kNone, fault::Scheme::kEcc};
  const obs::CliArgs cli = obs::parse_cli(argc, argv);
  if (!cli.ok() || !cli.vcd_path.empty()) return usage(argv[0]);
  for (const std::string& arg : cli.rest) {
    if (arg.rfind("--scheme=", 0) == 0) {
      const std::optional<fault::Scheme> s =
          fault::try_parse_scheme(arg.substr(9));
      if (!s.has_value()) return usage(argv[0]);
      schemes = {*s};
    } else {
      return usage(argv[0]);
    }
  }
  obs::init_observability(cli);
  bench::CampaignJournal journal(
      cli.threads, cli.backend == rtl::EvalBackend::kAuto
                       ? std::string{}
                       : std::string(rtl::to_string(cli.backend)));
  bench::RunPolicy policy(cli);
  try {
    bench::emit_to(essential_bits_table(cli.threads), cli.csv_dir);
    bench::emit_to(fit_vs_scrub_table(cli.threads), cli.csv_dir);
    bench::emit_to(reliable_selection_cram_table(cli.threads), cli.csv_dir);
    bench::emit_to(kernel_sdc_table(schemes, journal, policy), cli.csv_dir);
    bench::emit_to(ecc_cost_table(), cli.csv_dir);
  } catch (const exec::Interrupted& e) {
    std::fprintf(stderr, "interrupted (%s): sweep abandoned\n",
                 exec::to_string(e.reason));
    journal.write(cli.json_path);
    policy.summarize_exhausted_draws();
    obs::flush_observability(cli);
    return obs::kExitInterrupted;
  }
  journal.write(cli.json_path);
  policy.summarize_exhausted_draws();
  const int base = obs::flush_observability(cli) ? obs::kExitOk
                                                 : obs::kExitRuntime;
  return policy.exit_code(base);
}
