// Extension bench: the paper's architectural choice, quantified. A 2-D
// systolic grid vs. the paper's linear array, both on pl=19 units: the
// grid needs n^2 PEs (so only small n fits a device) and must interleave
// a batch of >= Ladd+1 independent problems to keep its accumulators
// hazard-free; the linear array needs n PEs and hides latency inside a
// single problem once n >= PL. Section 2.1's argument, in numbers.
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "kernel/metrics.hpp"
#include "kernel/systolic2d.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;

  const kernel::PeConfig cfg = kernel::pe_moderate_pipelined();
  const device::Device dev = device::xc2vp125();
  const kernel::KernelDesign design(cfg);
  const int pe_slices = design.pe_resources().slices;
  const int usable = static_cast<int>(dev.capacity.slices * 0.85);

  analysis::Table t(
      "Extension: 2-D systolic grid vs linear array (pl=19 units, " +
          dev.name + ")",
      {"architecture", "largest n on device", "PEs", "min interleave",
       "GFLOPS", "latency for one nxn (us)"});

  // Linear array: p = n PEs, no batching needed once n >= PL.
  {
    const int n = design.max_pes(dev);
    t.add_row({"linear array (paper)",
               analysis::Table::num(static_cast<long>(n)),
               analysis::Table::num(static_cast<long>(n)), "1 problem",
               analysis::Table::num(design.device_gflops(dev), 1),
               analysis::Table::num(design.latency_us(n), 2)});
  }
  // 2-D grid: n^2 PEs; largest n with n^2 <= usable/pe_slices.
  {
    int n = 1;
    while ((n + 1) * (n + 1) * pe_slices <= usable) ++n;
    kernel::Systolic2dMatmul grid(n, 1, cfg);
    const int batch = grid.min_batch();
    const long cyc = kernel::Systolic2dMatmul(n, batch, cfg)
                         .predicted_cycles();
    const double f = design.freq_mhz();
    // Steady-state GFLOPS: 2*batch*n^3 FLOPs over cyc/f microseconds.
    const double gflops = 2.0 * batch * n * n * n / (cyc / f * 1e3);
    t.add_row({"2-D systolic grid",
               analysis::Table::num(static_cast<long>(n)),
               analysis::Table::num(static_cast<long>(n) * n),
               analysis::Table::num(static_cast<long>(batch)) + " problems",
               analysis::Table::num(gflops, 1),
               analysis::Table::num(cyc / f / batch, 2)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
