// Ablation: the paper's "pipelining can exploit the unused flipflops
// present in the slices ... and cause only a moderate increase in area."
// Sweep pipeline depth for the 64-bit adder with FF absorption disabled
// (every pipeline FF costs fresh slices), at the calibrated 0.55, and at a
// perfect 1.0, and show the area trajectories.
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "units/fp_unit.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;

  const double fractions[] = {0.0, 0.55, 1.0};
  analysis::Table t(
      "Ablation: slices vs. pipeline depth under FF absorption 0 / 0.55 / 1 "
      "(64-bit adder)",
      {"stages", "slices (absorb=0)", "slices (absorb=0.55)",
       "slices (absorb=1.0)"});

  units::UnitConfig probe_cfg;
  const units::FpUnit probe(units::UnitKind::kAdder, fp::FpFormat::binary64(),
                            probe_cfg);
  for (int s = 1; s <= probe.max_stages(); s += 2) {
    std::vector<std::string> row{analysis::Table::num(static_cast<long>(s))};
    for (double f : fractions) {
      units::UnitConfig cfg;
      cfg.stages = s;
      cfg.tech.set_ff_absorption(f);
      const units::FpUnit u(units::UnitKind::kAdder, fp::FpFormat::binary64(),
                            cfg);
      row.push_back(
          analysis::Table::num(static_cast<long>(u.area().total.slices)));
    }
    t.add_row(std::move(row));
  }
  bench::emit(t, argc, argv);
  return 0;
}
