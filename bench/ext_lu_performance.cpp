// Extension bench: LU decomposition performance vs. problem size on the
// moderate-pipelined PE array — latency, achieved MFLOPS, and the share of
// cycles lost to phase drains (the serial bottleneck the systolic LU papers
// attack).
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "kernel/lu.hpp"
#include "kernel/metrics.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;

  kernel::PeConfig cfg = kernel::pe_moderate_pipelined();
  const kernel::KernelDesign design(cfg);
  analysis::Table t(
      "Extension: LU decomposition on 8 PEs + 1 divider (pl=19 units)",
      {"n", "cycles", "latency us", "MFLOPS", "drain cycles %"});
  for (int n : {8, 16, 24, 32, 48}) {
    kernel::LuArray array(n, 8, cfg);
    // Diagonally dominant input.
    std::vector<double> av(static_cast<std::size_t>(n) * n, 0.5);
    for (int i = 0; i < n; ++i) av[static_cast<std::size_t>(i) * n + i] = n;
    const kernel::Matrix a = kernel::matrix_from_doubles(av, n, cfg.fmt);
    const kernel::LuRun run = array.run(a);
    const double us = run.cycles / design.freq_mhz();
    const double flops = 2.0 / 3.0 * n * n * n;
    t.add_row({analysis::Table::num(static_cast<long>(n)),
               analysis::Table::num(run.cycles),
               analysis::Table::num(us, 3),
               analysis::Table::num(flops / us, 1),
               analysis::Table::num(100.0 * run.bubbles / run.cycles, 1)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
