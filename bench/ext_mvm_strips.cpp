// Extension bench: matrix-vector multiplication strip-width tradeoff. The
// per-PE row strip r = n/p is MVM's analogue of the matmul block size:
// strips below PL pad, wasting issues and energy (the same Section 5
// mechanism on the second kernel).
#include "analysis/report.hpp"
#include "fp/ops.hpp"
#include "bench_util.hpp"
#include "kernel/metrics.hpp"
#include "kernel/mvm.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;

  const int n = 64;
  kernel::PeConfig cfg = kernel::pe_moderate_pipelined();  // PL = 19
  const kernel::KernelDesign design(cfg);
  analysis::Table t(
      "Extension: MVM (n=64) strip-width tradeoff on pl=19 PEs",
      {"PEs", "rows/PE", "cycles", "latency us", "padded issues %",
       "energy/PE (nJ)"});

  // A fixed random problem.
  std::vector<double> av(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n * n; ++i) av[static_cast<std::size_t>(i)] = (i % 17) - 8;
  const kernel::Matrix a = kernel::matrix_from_doubles(av, n, cfg.fmt);
  std::vector<fp::u64> x(static_cast<std::size_t>(n));
  fp::FpEnv env = fp::FpEnv::paper();
  for (int i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = fp::from_double(1.0 + i % 5, cfg.fmt, env).bits;
  }

  for (int p : {1, 2, 4, 8, 16, 32, 64}) {
    kernel::LinearArrayMvm array(n, p, cfg);
    const kernel::MvmRun run = array.run(a, x);
    const double padded_pct =
        100.0 * run.padded_issues / std::max(1L, run.mac_issues);
    const auto e = design.energy_from_counts(
        run.cycles, run.mac_issues / p,
        static_cast<long>(n) * run.r_eff + 2L * n / p);
    t.add_row({analysis::Table::num(static_cast<long>(p)),
               analysis::Table::num(static_cast<long>(n / p)),
               analysis::Table::num(run.cycles),
               analysis::Table::num(run.cycles / design.freq_mhz(), 3),
               analysis::Table::num(padded_pct, 1),
               analysis::Table::num(e.total_nj, 1)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
