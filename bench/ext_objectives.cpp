// Extension bench: synthesis/PAR objective comparison. The paper: "using a
// different optimization objective (speed or area) for the synthesis and
// place and route tool gives vastly different results ... the
// throughput/area metric should be obtained for all implementations with
// different pipelining stages and also for different optimization
// objectives."
#include "analysis/pareto.hpp"
#include "analysis/report.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;

  analysis::Table t("Extension: AREA vs SPEED objective (opt and max designs)",
                    {"unit", "objective", "opt s", "opt MHz", "opt slices",
                     "opt MHz/slice", "max MHz", "max slices"});
  for (auto kind : {units::UnitKind::kAdder, units::UnitKind::kMultiplier}) {
    for (const fp::FpFormat& fmt :
         {fp::FpFormat::binary32(), fp::FpFormat::binary64()}) {
      for (auto obj : {device::Objective::kArea, device::Objective::kSpeed}) {
        const auto sweep = analysis::sweep_unit(kind, fmt, obj);
        const auto sel = analysis::select_min_max_opt(sweep);
        t.add_row({std::string(to_string(kind)) + "<" + fmt.name() + ">",
                   to_string(obj),
                   analysis::Table::num(static_cast<long>(sel.opt.stages)),
                   analysis::Table::num(sel.opt.freq_mhz, 1),
                   analysis::Table::num(
                       static_cast<long>(sel.opt.area.slices)),
                   analysis::Table::num(sel.opt.freq_per_area, 4),
                   analysis::Table::num(sel.max.freq_mhz, 1),
                   analysis::Table::num(
                       static_cast<long>(sel.max.area.slices))});
      }
    }
  }
  bench::emit(t, argc, argv);
  return 0;
}
