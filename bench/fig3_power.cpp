// Regenerates Figure 3: power vs. pipeline stages (100 MHz) for adders and
// multipliers at 32/48/64-bit precision.
#include "analysis/experiments.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;
  bench::emit(analysis::fig3_power(units::UnitKind::kAdder), argc, argv);
  bench::emit(analysis::fig3_power(units::UnitKind::kMultiplier), argc, argv);
  return 0;
}
