// Regenerates Figure 5: energy / resources / latency vs. problem size n for
// pl = 10/19/25.
#include "analysis/experiments.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  flopsim::bench::emit(flopsim::analysis::fig5_problem_size(), argc, argv);
  return 0;
}
