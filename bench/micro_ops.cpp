// Google-benchmark micro suite: throughput of the softfloat kernels, the
// structural units (combinational and pipelined), and the array simulator.
// Not a paper artifact — this measures the *simulator*, and guards against
// performance regressions in the library itself.
#include <benchmark/benchmark.h>

#include <random>

#include "fp/ops.hpp"
#include "kernel/matmul.hpp"
#include "units/fp_unit.hpp"

namespace {

using namespace flopsim;

std::vector<fp::u64> random_bits(fp::FpFormat fmt, int n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<fp::u64> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng() & fmt.bits_mask();
  return v;
}

template <fp::FpValue (*Op)(const fp::FpValue&, const fp::FpValue&,
                            fp::FpEnv&)>
void BM_softfloat_binop(benchmark::State& state, fp::FpFormat fmt) {
  const auto a = random_bits(fmt, 1024, 1);
  const auto b = random_bits(fmt, 1024, 2);
  fp::FpEnv env = fp::FpEnv::ieee();
  std::size_t i = 0;
  for (auto _ : state) {
    const fp::FpValue r =
        Op(fp::FpValue(a[i & 1023], fmt), fp::FpValue(b[i & 1023], fmt), env);
    benchmark::DoNotOptimize(r.bits);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_softfloat_add32(benchmark::State& s) {
  BM_softfloat_binop<fp::add>(s, fp::FpFormat::binary32());
}
void BM_softfloat_add64(benchmark::State& s) {
  BM_softfloat_binop<fp::add>(s, fp::FpFormat::binary64());
}
void BM_softfloat_mul64(benchmark::State& s) {
  BM_softfloat_binop<fp::mul>(s, fp::FpFormat::binary64());
}
void BM_softfloat_div64(benchmark::State& s) {
  BM_softfloat_binop<fp::div>(s, fp::FpFormat::binary64());
}
BENCHMARK(BM_softfloat_add32);
BENCHMARK(BM_softfloat_add64);
BENCHMARK(BM_softfloat_mul64);
BENCHMARK(BM_softfloat_div64);

void BM_softfloat_fma64(benchmark::State& state) {
  const fp::FpFormat fmt = fp::FpFormat::binary64();
  const auto a = random_bits(fmt, 1024, 11);
  const auto b = random_bits(fmt, 1024, 12);
  const auto c = random_bits(fmt, 1024, 13);
  fp::FpEnv env = fp::FpEnv::ieee();
  std::size_t i = 0;
  for (auto _ : state) {
    const fp::FpValue r =
        fp::fma(fp::FpValue(a[i & 1023], fmt), fp::FpValue(b[i & 1023], fmt),
                fp::FpValue(c[i & 1023], fmt), env);
    benchmark::DoNotOptimize(r.bits);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_softfloat_fma64);

void BM_unit_mac64_eval(benchmark::State& state) {
  units::UnitConfig cfg;
  const units::FpUnit unit(units::UnitKind::kMac, fp::FpFormat::binary64(),
                           cfg);
  const fp::FpFormat fmt = fp::FpFormat::binary64();
  const auto a = random_bits(fmt, 1024, 14);
  const auto b = random_bits(fmt, 1024, 15);
  const auto c = random_bits(fmt, 1024, 16);
  std::size_t i = 0;
  for (auto _ : state) {
    const units::UnitOutput r = unit.evaluate(
        {a[i & 1023], b[i & 1023], false, c[i & 1023]});
    benchmark::DoNotOptimize(r.result);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_unit_mac64_eval);

void BM_softfloat_sqrt64(benchmark::State& state) {
  const fp::FpFormat fmt = fp::FpFormat::binary64();
  const auto a = random_bits(fmt, 1024, 3);
  fp::FpEnv env = fp::FpEnv::ieee();
  std::size_t i = 0;
  for (auto _ : state) {
    const fp::FpValue r = fp::sqrt(fp::abs(fp::FpValue(a[i & 1023], fmt)), env);
    benchmark::DoNotOptimize(r.bits);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_softfloat_sqrt64);

void BM_unit_combinational(benchmark::State& state, units::UnitKind kind,
                           fp::FpFormat fmt) {
  units::UnitConfig cfg;
  const units::FpUnit unit(kind, fmt, cfg);
  const auto a = random_bits(fmt, 1024, 4);
  const auto b = random_bits(fmt, 1024, 5);
  std::size_t i = 0;
  for (auto _ : state) {
    const units::UnitOutput r =
        unit.evaluate({a[i & 1023], b[i & 1023], false});
    benchmark::DoNotOptimize(r.result);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_unit_add64_eval(benchmark::State& s) {
  BM_unit_combinational(s, units::UnitKind::kAdder, fp::FpFormat::binary64());
}
void BM_unit_mul64_eval(benchmark::State& s) {
  BM_unit_combinational(s, units::UnitKind::kMultiplier,
                        fp::FpFormat::binary64());
}
BENCHMARK(BM_unit_add64_eval);
BENCHMARK(BM_unit_mul64_eval);

void BM_unit_pipelined_step(benchmark::State& state) {
  units::UnitConfig cfg;
  cfg.stages = 12;
  units::FpUnit unit(units::UnitKind::kAdder, fp::FpFormat::binary64(), cfg);
  const fp::FpFormat fmt = fp::FpFormat::binary64();
  const auto a = random_bits(fmt, 1024, 6);
  const auto b = random_bits(fmt, 1024, 7);
  std::size_t i = 0;
  for (auto _ : state) {
    unit.step(units::UnitInput{a[i & 1023], b[i & 1023], false});
    if (const auto out = unit.output()) benchmark::DoNotOptimize(out->result);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_unit_pipelined_step);

void BM_array_matmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  kernel::PeConfig cfg;
  cfg.adder_stages = 6;
  cfg.mult_stages = 4;
  kernel::LinearArrayMatmul array(n, cfg);
  std::vector<double> av(static_cast<std::size_t>(n) * n, 1.25);
  const kernel::Matrix a = kernel::matrix_from_doubles(av, n, cfg.fmt);
  for (auto _ : state) {
    const kernel::MatmulRun run = array.run(a, a);
    benchmark::DoNotOptimize(run.c.bits.data());
  }
  state.SetItemsProcessed(state.iterations() * 2L * n * n * n);
}
BENCHMARK(BM_array_matmul)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
