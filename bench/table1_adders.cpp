// Regenerates Table 1: min/max/opt 32/48/64-bit floating-point adders.
#include "analysis/experiments.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;
  bench::emit(analysis::table_min_max_opt(units::UnitKind::kAdder), argc,
              argv);
  return 0;
}
