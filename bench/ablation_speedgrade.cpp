// Sensitivity: -7 vs. -5 speed grade. The paper targets the -7 grade
// XC2VP125; this shows how the min/max/opt selections shift on slower
// silicon (frequencies drop ~17%, optima move to slightly deeper designs).
#include "analysis/pareto.hpp"
#include "analysis/report.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;

  analysis::Table t("Sensitivity: speed grade -7 vs -5 (opt designs)",
                    {"unit", "grade", "opt stages", "slices", "MHz",
                     "MHz/slice"});
  struct Grade {
    const char* name;
    device::TechModel tech;
  };
  const Grade grades[] = {{"-7", device::TechModel::virtex2pro7()},
                          {"-5", device::TechModel::virtex2pro5()}};
  for (auto kind : {units::UnitKind::kAdder, units::UnitKind::kMultiplier}) {
    for (const fp::FpFormat& fmt :
         {fp::FpFormat::binary32(), fp::FpFormat::binary64()}) {
      for (const Grade& g : grades) {
        const auto sel = analysis::select_min_max_opt(analysis::sweep_unit(
            kind, fmt, device::Objective::kArea, g.tech));
        t.add_row({std::string(to_string(kind)) + "<" + fmt.name() + ">",
                   g.name,
                   analysis::Table::num(static_cast<long>(sel.opt.stages)),
                   analysis::Table::num(
                       static_cast<long>(sel.opt.area.slices)),
                   analysis::Table::num(sel.opt.freq_mhz, 1),
                   analysis::Table::num(sel.opt.freq_per_area, 4)});
      }
    }
  }
  bench::emit(t, argc, argv);
  return 0;
}
