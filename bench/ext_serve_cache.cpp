// Extension bench: the serve layer's memoization payoff, measured
// without a socket. The same campaign-heavy request mix is evaluated
// twice through one serve::Service — pass 1 cold (every cacheable
// request misses and simulates), pass 2 warm (every cacheable request is
// a lookup). The table on stdout is fully deterministic (request and
// counter tallies plus the byte-identity verdict); the wall-clock
// speedup — the nondeterministic part — goes to stderr, where the CI
// serve-smoke job reads its socket-side equivalent from replay
// summaries instead.
//
// Observability flags ride the shared obs::parse_cli plumbing:
// --metrics=<path> dumps the global registry (serve.* counters and the
// serve.phase.* latency histograms) at exit; --trace=<path> writes a
// Chrome trace with one span per pass and the eval work nested under it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "obs/cli.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/cache.hpp"
#include "serve/service.hpp"

namespace {

using namespace flopsim;

std::vector<std::string> request_mix() {
  // Twelve unique design points, several repeated within the pass — the
  // Tables 1-2 sweep shape the cache is built for.
  std::vector<std::string> unique = {
      "{\"type\": \"campaign\", \"op\": \"add\", \"bits\": 32, "
      "\"stages\": 4, \"faults\": 48, \"vectors\": 16, \"seed\": 201}",
      "{\"type\": \"campaign\", \"op\": \"mul\", \"bits\": 64, "
      "\"stages\": 6, \"faults\": 48, \"vectors\": 16, \"seed\": 202}",
      "{\"type\": \"campaign\", \"op\": \"div\", \"bits\": 32, "
      "\"stages\": 8, \"scheme\": \"tmr\", \"faults\": 48, "
      "\"vectors\": 16, \"seed\": 203}",
      "{\"type\": \"campaign\", \"op\": \"mac\", \"bits\": 32, "
      "\"stages\": 6, \"faults\": 48, \"vectors\": 16, \"seed\": 204}",
      "{\"type\": \"campaign\", \"op\": \"add\", \"bits\": 64, "
      "\"stages\": 8, \"scheme\": \"residue\", \"faults\": 48, "
      "\"vectors\": 16, \"seed\": 205}",
      "{\"type\": \"campaign\", \"kernel\": \"matmul\", \"n\": 4, "
      "\"bits\": 32, \"faults\": 32, \"seed\": 206}",
      "{\"type\": \"campaign\", \"kernel\": \"matmul\", \"n\": 4, "
      "\"bits\": 32, \"faults\": 32, \"seed\": 206, \"scheme\": \"ecc\"}",
      "{\"type\": \"plan\", \"op\": \"add\", \"bits\": 32}",
      "{\"type\": \"plan\", \"op\": \"mul\", \"bits\": 64}",
      "{\"type\": \"plan\", \"op\": \"sqrt\", \"bits\": 64, "
      "\"harden\": \"tmr\"}",
      "{\"type\": \"plan\", \"op\": \"cvt\", \"src_bits\": 64, "
      "\"dst_bits\": 32}",
      "{\"type\": \"plan\", \"op\": \"div\", \"bits\": 32, \"stages\": 10}",
  };
  std::vector<std::string> mix = unique;
  // Repeat half the points: even a cold pass sees some within-pass hits,
  // like a real sweep client would produce.
  for (std::size_t i = 0; i < unique.size(); i += 2) {
    mix.push_back(unique[i]);
  }
  return mix;
}

struct PassResult {
  std::vector<std::string> responses;
  long hits = 0;
  long misses = 0;
  double median_us = 0.0;
};

PassResult run_pass(serve::Service& service, obs::Registry& reg,
                    const std::vector<std::string>& lines,
                    const char* pass_name) {
  // Under --trace= the two passes show up as sibling span groups; each
  // request's eval work parents under its pass span via the TLS context.
  auto span = obs::Tracer::global().span(pass_name, "bench");
  const long hits0 = reg.counter("serve.cache.hit").value();
  const long misses0 = reg.counter("serve.cache.miss").value();
  PassResult pass;
  std::vector<double> latencies_us;
  latencies_us.reserve(lines.size());
  for (const std::string& line : lines) {
    const auto t0 = std::chrono::steady_clock::now();
    pass.responses.push_back(service.handle_line(line));
    const auto t1 = std::chrono::steady_clock::now();
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  pass.hits = reg.counter("serve.cache.hit").value() - hits0;
  pass.misses = reg.counter("serve.cache.miss").value() - misses0;
  std::sort(latencies_us.begin(), latencies_us.end());
  pass.median_us = latencies_us[latencies_us.size() / 2];
  return pass;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--csv <dir>] [--threads=<n>] [--metrics=<path>] "
               "[--trace=<path>]\n",
               argv0);
  return flopsim::obs::kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flopsim;

  const obs::CliArgs cli = obs::parse_cli(argc, argv);
  // No campaign journal or waveform here: resilience flags, --vcd=, and
  // anything parse_cli did not consume are usage errors, same taxonomy
  // as the campaign benches.
  if (!cli.ok() || cli.wants_resilience() || !cli.vcd_path.empty() ||
      !cli.rest.empty()) {
    return usage(argv[0]);
  }
  obs::init_observability(cli);

  // The global registry, so --metrics= dumps the serve.* counters and
  // serve.phase.* histograms this run produced.
  obs::Registry& reg = obs::Registry::global();
  serve::ResultCache cache({.capacity = 256, .dir = "", .shards = 4}, reg);
  serve::Service service({}, &cache, reg);

  const std::vector<std::string> lines = request_mix();
  const PassResult cold = run_pass(service, reg, lines, "cold_pass");
  const PassResult warm = run_pass(service, reg, lines, "warm_pass");
  const bool identical = cold.responses == warm.responses;
  bool all_ok = true;
  for (const std::string& r : cold.responses) {
    if (r.find("\"status\": 0") == std::string::npos) {
      std::fprintf(stderr, "error: request failed: %s\n", r.c_str());
      all_ok = false;
    }
  }

  analysis::Table t(
      "Extension: serve cache, cold vs. warm pass over one request mix",
      {"pass", "requests", "cache hits", "cache misses",
       "responses byte-identical"});
  t.add_row({"cold", analysis::Table::num(static_cast<long>(lines.size())),
             analysis::Table::num(cold.hits),
             analysis::Table::num(cold.misses), "-"});
  t.add_row({"warm", analysis::Table::num(static_cast<long>(lines.size())),
             analysis::Table::num(warm.hits),
             analysis::Table::num(warm.misses), identical ? "yes" : "NO"});
  bench::emit_to(t, cli.csv_dir);

  // Wall-clock is machine-dependent: stderr only, never in the table.
  std::fprintf(stderr,
               "serve cache: median %.1f us cold -> %.1f us warm "
               "(%.0fx) over %zu requests\n",
               cold.median_us, warm.median_us,
               warm.median_us > 0.0 ? cold.median_us / warm.median_us : 0.0,
               lines.size());
  const bool flushed = obs::flush_observability(cli);
  return identical && all_ok && flushed ? obs::kExitOk : obs::kExitRuntime;
}
