// Regenerates Figure 6: energy / resources / latency vs. block size b for
// problem size n = 16, pl = 10/19/25.
#include "analysis/experiments.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  flopsim::bench::emit(flopsim::analysis::fig6_block_size(), argc, argv);
  return 0;
}
