// Regenerates Figure 2: Freq/Area vs. pipeline stages for adders and
// multipliers at 32/48/64-bit precision.
#include "analysis/experiments.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;
  bench::emit(analysis::fig2_freq_area(units::UnitKind::kAdder), argc, argv);
  bench::emit(analysis::fig2_freq_area(units::UnitKind::kMultiplier), argc,
              argv);
  return 0;
}
