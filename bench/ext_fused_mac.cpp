// Extension bench: fused MAC vs the paper's separate multiplier + adder PE.
// One rounding instead of two; the double-width align/add/normalize caps
// the clock below the separate pair while the shared denorm/round tails
// keep area comparable.
#include <cmath>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "fp/ops.hpp"
#include "kernel/metrics.hpp"
#include "units/fp_unit.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;

  analysis::Table t(
      "Extension: fused MAC vs separate multiplier+adder",
      {"format", "datapath", "max stages", "slices @s12", "BMULTs",
       "MHz @s12", "MHz @max"});
  for (const fp::FpFormat& fmt :
       {fp::FpFormat::binary32(), fp::FpFormat::binary64()}) {
    units::UnitConfig cfg;
    cfg.stages = 12;
    units::UnitConfig deep;
    deep.stages = 999;

    const units::FpUnit add(units::UnitKind::kAdder, fmt, cfg);
    const units::FpUnit mul(units::UnitKind::kMultiplier, fmt, cfg);
    const units::FpUnit add_d(units::UnitKind::kAdder, fmt, deep);
    const units::FpUnit mul_d(units::UnitKind::kMultiplier, fmt, deep);
    t.add_row(
        {fmt.name(), "mult + adder (paper PE)",
         analysis::Table::num(
             static_cast<long>(add.max_stages() + mul.max_stages())),
         analysis::Table::num(static_cast<long>(add.area().total.slices +
                                                mul.area().total.slices)),
         analysis::Table::num(static_cast<long>(mul.area().total.bmults)),
         analysis::Table::num(std::min(add.freq_mhz(), mul.freq_mhz()), 1),
         analysis::Table::num(std::min(add_d.freq_mhz(), mul_d.freq_mhz()),
                              1)});

    const units::FpUnit mac(units::UnitKind::kMac, fmt, cfg);
    const units::FpUnit mac_d(units::UnitKind::kMac, fmt, deep);
    t.add_row({fmt.name(), "fused MAC (1 rounding)",
               analysis::Table::num(static_cast<long>(mac.max_stages())),
               analysis::Table::num(
                   static_cast<long>(mac.area().total.slices)),
               analysis::Table::num(
                   static_cast<long>(mac.area().total.bmults)),
               analysis::Table::num(mac.freq_mhz(), 1),
               analysis::Table::num(mac_d.freq_mhz(), 1)});
  }
  bench::emit(t, argc, argv);

  // Kernel level: a full matmul design with fused vs separate PEs.
  analysis::Table k(
      "Extension: matmul design with fused vs separate PEs (XC2VP125)",
      {"PE datapath", "PL", "PEs", "MHz", "GFLOPS", "GFLOPS/W"});
  const device::Device dev = device::xc2vp125();
  for (bool fused : {false, true}) {
    kernel::PeConfig cfg = kernel::pe_moderate_pipelined();
    cfg.use_fused_mac = fused;
    const kernel::KernelDesign d(cfg);
    k.add_row({fused ? "fused MAC" : "mult + adder (paper)",
               analysis::Table::num(static_cast<long>(d.pl())),
               analysis::Table::num(static_cast<long>(d.max_pes(dev))),
               analysis::Table::num(d.freq_mhz(), 1),
               analysis::Table::num(d.device_gflops(dev), 1),
               analysis::Table::num(d.gflops_per_watt(dev), 2)});
  }
  bench::emit(k, argc, argv);
  return 0;
}
