// Shared plumbing for the table/figure bench binaries: print every table to
// stdout and, when invoked with `--csv <dir>`, drop a CSV per table for
// plotting.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.hpp"

namespace flopsim::bench {

inline std::string csv_dir(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--csv") return argv[i + 1];
  }
  return {};
}

inline std::string slug(const std::string& title) {
  std::string s;
  for (char c : title) {
    if (isalnum(static_cast<unsigned char>(c))) {
      s += static_cast<char>(tolower(static_cast<unsigned char>(c)));
    } else if (!s.empty() && s.back() != '_') {
      s += '_';
    }
    if (s.size() > 48) break;
  }
  while (!s.empty() && s.back() == '_') s.pop_back();
  return s;
}

inline void emit(const std::vector<analysis::Table>& tables, int argc,
                 char** argv) {
  const std::string dir = csv_dir(argc, argv);
  for (const analysis::Table& t : tables) {
    t.print(std::cout);
    if (!dir.empty()) {
      const std::string path = dir + "/" + slug(t.title()) + ".csv";
      if (!t.write_csv(path)) {
        std::cerr << "warning: could not write " << path << "\n";
      }
    }
  }
}

inline void emit(const analysis::Table& t, int argc, char** argv) {
  emit(std::vector<analysis::Table>{t}, argc, argv);
}

}  // namespace flopsim::bench
