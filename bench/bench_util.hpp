// Shared plumbing for the table/figure bench binaries: print every table to
// stdout and, when invoked with `--csv <dir>`, drop a CSV per table for
// plotting. The Monte-Carlo benches additionally take `--threads=<n>`
// (worker threads for the campaign engine; 0 = auto) and `--json <path>`
// (append one machine-readable record per campaign — name, trials,
// threads, wall-clock ms — as JSON lines, conventionally to
// BENCH_campaign.json, so CI can track campaign throughput over time).
//
// Flag parsing for the campaign benches lives in obs::parse_cli (which
// also owns --metrics=/--trace=); the JSON emission goes through the
// obs:: sinks so the record format is written down exactly once. The line
// format is byte-identical to the original hand-rolled emission (locked
// by tests/obs/sink_golden_test.cpp).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/report.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"

namespace flopsim::bench {

inline std::string csv_dir(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--csv") return argv[i + 1];
  }
  return {};
}

inline std::string slug(const std::string& title) {
  std::string s;
  for (char c : title) {
    if (isalnum(static_cast<unsigned char>(c))) {
      s += static_cast<char>(tolower(static_cast<unsigned char>(c)));
    } else if (!s.empty() && s.back() != '_') {
      s += '_';
    }
    if (s.size() > 48) break;
  }
  while (!s.empty() && s.back() == '_') s.pop_back();
  return s;
}

inline void emit_to(const std::vector<analysis::Table>& tables,
                    const std::string& dir) {
  for (const analysis::Table& t : tables) {
    t.print(std::cout);
    if (!dir.empty()) {
      const std::string path = dir + "/" + slug(t.title()) + ".csv";
      if (!t.write_csv(path)) {
        std::cerr << "warning: could not write " << path << "\n";
      }
    }
  }
}

inline void emit_to(const analysis::Table& t, const std::string& dir) {
  emit_to(std::vector<analysis::Table>{t}, dir);
}

inline void emit(const std::vector<analysis::Table>& tables, int argc,
                 char** argv) {
  emit_to(tables, csv_dir(argc, argv));
}

inline void emit(const analysis::Table& t, int argc, char** argv) {
  emit(std::vector<analysis::Table>{t}, argc, argv);
}

/// One timed fault campaign, as recorded in BENCH_campaign.json.
struct CampaignRecord {
  std::string name;
  long trials = 0;
  int threads = 0;      ///< requested worker threads (0 = auto)
  double wall_ms = 0.0;
  /// Evaluation backend the campaign ran under ("interpreted"/"compiled"/
  /// "bitsliced"); empty = unspecified, and the JSON field is omitted so
  /// records from before the backend existed stay byte-identical.
  std::string backend;
  /// Trials the campaign dropped short of its configured count (fault-site
  /// draw exhaustion). 0 = full campaign, and the JSON field is omitted so
  /// existing records stay byte-identical.
  long dropped = 0;
};

/// Collects CampaignRecords and appends them as JSON lines. A bench
/// creates one journal, wraps its campaigns in time(), and calls write()
/// once at exit with the `--json` path (no-op when the flag is absent).
class CampaignJournal {
 public:
  explicit CampaignJournal(int threads, std::string backend = {})
      : threads_(threads), backend_(std::move(backend)) {}

  /// Run `fn` (a callable returning the campaign result), time it, and
  /// file the record under `name`/`trials`. Under `--trace=` the whole
  /// campaign also shows up as one "journal" span.
  template <typename Fn>
  auto time(const std::string& name, long trials, Fn&& fn) {
    return time(name, trials, backend_, std::forward<Fn>(fn));
  }

  /// Same, with a per-record backend override (the backend-throughput
  /// comparison runs one campaign per backend under a single journal).
  template <typename Fn>
  auto time(const std::string& name, long trials, const std::string& backend,
            Fn&& fn) {
    auto span = obs::Tracer::global().span(name, "journal",
                                           {{"trials", trials}});
    const auto t0 = std::chrono::steady_clock::now();
    auto result = fn();
    const auto t1 = std::chrono::steady_clock::now();
    span.end();
    CampaignRecord rec;
    rec.name = name;
    rec.trials = trials;
    rec.threads = threads_;
    rec.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    rec.backend = backend;
    records_.push_back(rec);
    return result;
  }

  /// File a pre-built record (tests use this to pin wall_ms).
  void add(CampaignRecord rec) { records_.push_back(std::move(rec)); }

  /// Annotate the most recent record with its dropped-trial count (the
  /// result is only known after time() returns). No-op for 0 or when no
  /// record has been filed yet.
  void note_dropped(long dropped) {
    if (dropped > 0 && !records_.empty()) records_.back().dropped = dropped;
  }

  const std::vector<CampaignRecord>& records() const { return records_; }
  int threads() const { return threads_; }

  /// Append every record to `path` as one JSON object per line. Returns
  /// false (with a warning on stderr) when the file cannot be opened;
  /// silently does nothing when `path` is empty.
  bool write(const std::string& path) const {
    obs::JsonlSink sink(path);  // append: benches share one file per CI job
    if (!sink.ok()) {
      std::cerr << "warning: could not write " << path << "\n";
      return false;
    }
    for (const CampaignRecord& r : records_) {
      obs::JsonObject o;
      o.field("campaign", r.name)
          .field("trials", r.trials)
          .field("threads", r.threads)
          .field("wall_ms", r.wall_ms);
      if (!r.backend.empty()) o.field("backend", r.backend);
      if (r.dropped > 0) o.field("dropped", r.dropped);
      sink.write(o);
    }
    return sink.good();
  }

 private:
  int threads_;
  std::string backend_;  ///< default for time(); empty = field omitted
  std::vector<CampaignRecord> records_;
};

}  // namespace flopsim::bench
