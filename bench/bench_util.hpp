// Shared plumbing for the table/figure bench binaries: print every table to
// stdout and, when invoked with `--csv <dir>`, drop a CSV per table for
// plotting. The Monte-Carlo benches additionally take `--threads=<n>`
// (worker threads for the campaign engine; 0 = auto) and `--json <path>`
// (append one machine-readable record per campaign — name, trials,
// threads, wall-clock ms — as JSON lines, conventionally to
// BENCH_campaign.json, so CI can track campaign throughput over time).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.hpp"

namespace flopsim::bench {

inline std::string csv_dir(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--csv") return argv[i + 1];
  }
  return {};
}

inline std::string slug(const std::string& title) {
  std::string s;
  for (char c : title) {
    if (isalnum(static_cast<unsigned char>(c))) {
      s += static_cast<char>(tolower(static_cast<unsigned char>(c)));
    } else if (!s.empty() && s.back() != '_') {
      s += '_';
    }
    if (s.size() > 48) break;
  }
  while (!s.empty() && s.back() == '_') s.pop_back();
  return s;
}

inline void emit(const std::vector<analysis::Table>& tables, int argc,
                 char** argv) {
  const std::string dir = csv_dir(argc, argv);
  for (const analysis::Table& t : tables) {
    t.print(std::cout);
    if (!dir.empty()) {
      const std::string path = dir + "/" + slug(t.title()) + ".csv";
      if (!t.write_csv(path)) {
        std::cerr << "warning: could not write " << path << "\n";
      }
    }
  }
}

inline void emit(const analysis::Table& t, int argc, char** argv) {
  emit(std::vector<analysis::Table>{t}, argc, argv);
}

/// One timed fault campaign, as recorded in BENCH_campaign.json.
struct CampaignRecord {
  std::string name;
  long trials = 0;
  int threads = 0;      ///< requested worker threads (0 = auto)
  double wall_ms = 0.0;
};

/// Collects CampaignRecords and appends them as JSON lines. A bench
/// creates one journal, wraps its campaigns in time(), and calls write()
/// once at exit with the `--json` path (no-op when the flag is absent).
class CampaignJournal {
 public:
  explicit CampaignJournal(int threads) : threads_(threads) {}

  /// Run `fn` (a callable returning the campaign result), time it, and
  /// file the record under `name`/`trials`.
  template <typename Fn>
  auto time(const std::string& name, long trials, Fn&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    auto result = fn();
    const auto t1 = std::chrono::steady_clock::now();
    CampaignRecord rec;
    rec.name = name;
    rec.trials = trials;
    rec.threads = threads_;
    rec.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    records_.push_back(rec);
    return result;
  }

  const std::vector<CampaignRecord>& records() const { return records_; }
  int threads() const { return threads_; }

  /// Append every record to `path` as one JSON object per line. Returns
  /// false (with a warning on stderr) when the file cannot be opened;
  /// silently does nothing when `path` is empty.
  bool write(const std::string& path) const {
    if (path.empty()) return true;
    std::ofstream out(path, std::ios::app);
    if (!out) {
      std::cerr << "warning: could not write " << path << "\n";
      return false;
    }
    for (const CampaignRecord& r : records_) {
      out << "{\"campaign\": \"" << r.name << "\", \"trials\": " << r.trials
          << ", \"threads\": " << r.threads << ", \"wall_ms\": " << r.wall_ms
          << "}\n";
    }
    return out.good();
  }

 private:
  int threads_;
  std::vector<CampaignRecord> records_;
};

/// The `--json <path>` flag (empty when absent).
inline std::string json_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return {};
}

/// Parse `--threads=<n>`: absent -> 0 (auto), n >= 1 -> n, anything else
/// (junk, zero, negative) -> -1 so the caller can print usage and exit 2.
inline int threads_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      const std::string v = arg.substr(10);
      if (v.empty() ||
          v.find_first_not_of("0123456789") != std::string::npos) {
        return -1;
      }
      const long n = std::atol(v.c_str());
      return n >= 1 && n <= 1024 ? static_cast<int>(n) : -1;
    }
  }
  return 0;
}

}  // namespace flopsim::bench
