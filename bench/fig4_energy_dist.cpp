// Regenerates Figure 4: PE energy distribution for n = 10 and n = 30 under
// minimum / moderate / maximum pipelining.
#include "analysis/experiments.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  flopsim::bench::emit(flopsim::analysis::fig4_energy_distribution(), argc,
                       argv);
  return 0;
}
