// Regenerates Section 4.2: matrix-multiply GFLOPS on the XC2VP125 and the
// GFLOPS / GFLOPS-per-watt comparison against the Pentium 4 and G4.
#include "analysis/experiments.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  flopsim::bench::emit(flopsim::analysis::section42_matmul(), argc, argv);
  return 0;
}
