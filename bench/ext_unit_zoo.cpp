// Extension bench: the full core family on one axis — Figure-2-style
// freq/area sweeps for the divider, square root, and fused MAC (64-bit),
// alongside the paper's adder and multiplier.
#include "analysis/report.hpp"
#include "analysis/sweep.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;

  analysis::Table t(
      "Extension: Freq/Area vs. pipeline stages, all 64-bit cores "
      "(MHz/slice)",
      {"stages", "adder", "multiplier", "divider", "sqrt", "fused MAC"});
  std::vector<analysis::SweepResult> sweeps;
  int maxs = 0;
  for (units::UnitKind kind :
       {units::UnitKind::kAdder, units::UnitKind::kMultiplier,
        units::UnitKind::kDivider, units::UnitKind::kSqrt,
        units::UnitKind::kMac}) {
    sweeps.push_back(analysis::sweep_unit(kind, fp::FpFormat::binary64()));
    maxs = std::max(maxs, static_cast<int>(sweeps.back().points.size()));
  }
  for (int s = 1; s <= maxs; s += 2) {
    std::vector<std::string> row{analysis::Table::num(static_cast<long>(s))};
    for (const auto& sw : sweeps) {
      row.push_back(s <= static_cast<int>(sw.points.size())
                        ? analysis::Table::num(sw.at_stages(s).freq_per_area,
                                               4)
                        : "-");
    }
    t.add_row(std::move(row));
  }
  bench::emit(t, argc, argv);
  return 0;
}
