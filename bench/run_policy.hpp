// Resilience policy for the campaign benches.
//
// Translates the shared CLI flags (--checkpoint=/--resume/--time-budget=/
// --trial-budget=/--stop-halfwidth=/--fsync-interval=) into the
// analysis::CampaignRunControl every campaign in the binary runs under,
// wired to the process-global cancel token with SIGINT/SIGTERM handlers
// installed. After each campaign the bench files the run status here;
// an interrupted campaign prints a partial-result summary (trials
// accounted, headline estimate with its 95% half-width, how to resume)
// and the process exits with obs::kExitInterrupted instead of 0.
#pragma once

#include <cstdio>
#include <string>

#include "analysis/seu.hpp"
#include "exec/cancel.hpp"
#include "obs/cli.hpp"

namespace flopsim::bench {

class RunPolicy {
 public:
  explicit RunPolicy(const obs::CliArgs& cli) : backend_(cli.backend) {
    control_.cancel = &exec::global_cancel_token();
    control_.checkpoint_dir = cli.checkpoint_dir;
    control_.resume = cli.resume;
    control_.fsync_interval = cli.fsync_interval;
    control_.stop_half_width = cli.stop_half_width;
    total_budget_ = cli.trial_budget;
    exec::install_signal_handlers();
    if (cli.time_budget_s > 0.0) {
      control_.cancel->set_deadline_after(cli.time_budget_s);
    }
  }

  /// The control the next campaign should run under. The trial budget is
  /// process-wide: each campaign sees only what the earlier ones left.
  const analysis::CampaignRunControl& control() {
    if (total_budget_ > 0) {
      const long remaining = total_budget_ - spent_;
      control_.trial_budget = remaining > 0 ? remaining : 1;
      if (remaining <= 0) {
        control_.cancel->request(exec::CancelToken::Reason::kTrialBudget);
      }
    }
    return control_;
  }
  exec::CancelToken* cancel() const { return control_.cancel; }

  /// The --backend= choice every campaign in the binary runs under
  /// (kAuto when the flag is absent: FLOPSIM_BACKEND, else interpreted).
  rtl::EvalBackend backend() const { return backend_; }

  /// File one unit campaign's outcome; on interruption, summarize the
  /// partial FIT estimate.
  void note_unit(const std::string& name, const analysis::UnitSeuResult& r,
                 const analysis::SeuRateModel& rate = {}) {
    charge(r.run);
    if (!r.run.interrupted) return;
    const double fit = rate.fit(r.pipeline_ffs, r.sdc_fraction());
    const double hw = rate.fit(
        r.pipeline_ffs, analysis::proportion_half_width(r.silent, r.injected));
    summarize(name, r.run);
    std::fprintf(stderr, "  partial SDC FIT %.4f +/- %.4f (95%%) over %d trials\n",
                 fit, hw, r.injected);
  }

  /// File one matmul campaign's outcome (headline rate is SDC fraction).
  void note_matmul(const std::string& name,
                   const analysis::MatmulSeuResult& r) {
    charge(r.run);
    draws_exhausted_ += r.draws_exhausted;
    if (!r.run.interrupted) return;
    summarize(name, r.run);
    std::fprintf(
        stderr, "  partial SDC fraction %.4f +/- %.4f (95%%) over %d trials\n",
        r.sdc_fraction(),
        analysis::proportion_half_width(r.silent, r.injected), r.injected);
  }

  /// File one depth sweep's outcome.
  void note_sweep(const std::string& name, const analysis::SeuSweepRun& r) {
    charge(r.run);
    if (!r.run.interrupted) return;
    summarize(name, r.run);
  }

  bool interrupted() const { return interrupted_; }

  /// End-of-run summary. Each dropped trial shrank a matmul campaign below
  /// its configured `faults` and skewed its SDC estimate, so the condition
  /// is surfaced once, visibly, instead of only as scattered per-trial
  /// warnings and the campaign.matmul.dropped_trials counter. Benches
  /// call this on every exit path (normal and interrupted).
  void summarize_exhausted_draws() const {
    if (draws_exhausted_ == 0) return;
    std::fprintf(stderr,
                 "note: %ld matmul trial(s) dropped after fault-site redraw "
                 "exhaustion; affected campaigns ran under their configured "
                 "trial count (metric: campaign.matmul.dropped_trials)\n",
                 draws_exhausted_);
  }

  /// Final process exit code: interruption wins over `base` (0/1).
  int exit_code(int base) const {
    return interrupted_ ? obs::kExitInterrupted : base;
  }

 private:
  void charge(const analysis::CampaignRunStatus& run) {
    spent_ += run.trials_executed;
    if (total_budget_ > 0 && spent_ >= total_budget_) {
      control_.cancel->request(exec::CancelToken::Reason::kTrialBudget);
    }
  }

  void summarize(const std::string& name,
                 const analysis::CampaignRunStatus& run) {
    interrupted_ = true;
    std::fprintf(
        stderr,
        "interrupted (%s): %s stopped after %ld/%ld chunks "
        "(%ld restored, %ld trials run this invocation)%s\n",
        exec::to_string(run.stop_reason), name.c_str(),
        run.chunks_completed + run.chunks_restored, run.chunks_total,
        run.chunks_restored, run.trials_executed,
        control_.checkpoint_dir.empty()
            ? "; no --checkpoint= was given, progress is not saved"
            : "; checkpoint flushed, re-run with --resume to continue");
  }

  analysis::CampaignRunControl control_;
  rtl::EvalBackend backend_ = rtl::EvalBackend::kAuto;
  long total_budget_ = 0;  // process-wide; 0 = unlimited
  long spent_ = 0;
  long draws_exhausted_ = 0;  // matmul trials dropped across all campaigns
  bool interrupted_ = false;
};

}  // namespace flopsim::bench
