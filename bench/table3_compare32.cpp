// Regenerates Table 3: 32-bit units vs. Nallatech and Quixilica cores.
#include "analysis/experiments.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  flopsim::bench::emit(flopsim::analysis::table3_compare32(), argc, argv);
  return 0;
}
