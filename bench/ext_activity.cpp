// Extension bench: measured vs. assumed switching activity. XPower's
// estimate is only as good as the activity fed to it; here the units'
// pipeline registers are instrumented during simulation of a random
// workload and the measured toggle rate replaces the default 0.5.
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "power/activity.hpp"
#include "power/unit_power.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;

  analysis::Table t(
      "Extension: power at 100 MHz with assumed (0.5) vs measured activity",
      {"unit", "stages", "measured toggle rate", "mW (assumed)",
       "mW (measured)"});
  for (auto kind : {units::UnitKind::kAdder, units::UnitKind::kMultiplier,
                    units::UnitKind::kDivider}) {
    for (int stages : {4, 12}) {
      units::UnitConfig cfg;
      cfg.stages = stages;
      units::FpUnit unit(kind, fp::FpFormat::binary64(), cfg);
      const power::ActivityStats st = power::measure_activity(unit, 4000);
      t.add_row(
          {std::string(to_string(kind)) + "<binary64>",
           analysis::Table::num(static_cast<long>(unit.stages())),
           analysis::Table::num(st.avg_toggle_rate, 3),
           analysis::Table::num(power::unit_power(unit, 100.0).total_mw(), 1),
           analysis::Table::num(
               power::unit_power(unit, 100.0, st.avg_toggle_rate).total_mw(),
               1)});
    }
  }
  bench::emit(t, argc, argv);
  return 0;
}
