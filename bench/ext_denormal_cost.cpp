// Extension bench: the price of IEEE completeness. The paper: "Denormal
// and NaN numbers are generally considered rare and may not justify the
// usage of a lot of hardware required for their handling." This bench
// builds both variants of each core and prints exactly how much hardware
// (and frequency at matched depth) that handling costs.
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "units/fp_unit.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;

  analysis::Table t(
      "Extension: cost of denormal+NaN support (paper policy vs full IEEE)",
      {"unit", "mode", "max stages", "slices @s10", "FFs @s10", "MHz @s10",
       "MHz @max depth"});
  for (auto kind : {units::UnitKind::kAdder, units::UnitKind::kMultiplier}) {
    for (const fp::FpFormat& fmt :
         {fp::FpFormat::binary32(), fp::FpFormat::binary64()}) {
      for (bool ieee : {false, true}) {
        units::UnitConfig cfg;
        cfg.stages = 10;
        cfg.ieee_mode = ieee;
        const units::FpUnit u(kind, fmt, cfg);
        units::UnitConfig deep = cfg;
        deep.stages = 999;
        const units::FpUnit d(kind, fmt, deep);
        t.add_row({std::string(to_string(kind)) + "<" + fmt.name() + ">",
                   ieee ? "full IEEE" : "paper",
                   analysis::Table::num(static_cast<long>(u.max_stages())),
                   analysis::Table::num(
                       static_cast<long>(u.area().total.slices)),
                   analysis::Table::num(static_cast<long>(u.area().total.ffs)),
                   analysis::Table::num(u.freq_mhz(), 1),
                   analysis::Table::num(d.freq_mhz(), 1)});
      }
    }
  }
  bench::emit(t, argc, argv);
  return 0;
}
