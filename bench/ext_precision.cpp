// Extension bench: the precision axis the paper treats as given (32/48/64
// bits), evaluated end to end — device GFLOPS, power, AND the numerical
// error each precision actually delivers on a matmul workload, measured
// against a binary64 softfloat reference. This is the quantitative case
// for the 48-bit middle format.
#include <cmath>
#include <random>

#include "analysis/accuracy.hpp"
#include "analysis/report.hpp"
#include "analysis/sweep.hpp"
#include "bench_util.hpp"
#include "fp/ops.hpp"
#include "kernel/matmul.hpp"
#include "kernel/metrics.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;

  const device::Device dev = device::xc2vp125();
  analysis::Table t(
      "Extension: precision tradeoff (pl~19 PEs, 24x24 matmul error vs "
      "binary64)",
      {"format", "PEs", "GFLOPS", "Power (W)", "max rel error", "max ulp"});

  // One fixed problem, mildly ill-conditioned entries.
  const int n = 24;
  std::mt19937_64 rng(77);
  std::vector<double> av(n * n), bv(n * n);
  for (double& v : av) v = (static_cast<double>(rng() % 20000) - 10000.0) / 97.0;
  for (double& v : bv) v = (static_cast<double>(rng() % 20000) - 10000.0) / 89.0;

  // binary64 softfloat reference result.
  const kernel::Matrix a64 =
      kernel::matrix_from_doubles(av, n, fp::FpFormat::binary64());
  const kernel::Matrix b64 =
      kernel::matrix_from_doubles(bv, n, fp::FpFormat::binary64());
  const kernel::Matrix ref = kernel::reference_gemm(
      a64, b64, fp::FpFormat::binary64(), fp::RoundingMode::kNearestEven);

  for (const fp::FpFormat& fmt : analysis::paper_formats()) {
    kernel::PeConfig cfg = kernel::pe_moderate_pipelined();
    cfg.fmt = fmt;
    const kernel::KernelDesign design(cfg);

    const kernel::Matrix a = kernel::matrix_from_doubles(av, n, fmt);
    const kernel::Matrix b = kernel::matrix_from_doubles(bv, n, fmt);
    const kernel::Matrix c =
        kernel::reference_gemm(a, b, fmt, cfg.rounding);
    const analysis::AccuracyStats st =
        analysis::compare_to_reference(c.bits, fmt, ref.bits);
    char err[32];
    std::snprintf(err, sizeof err, "%.2e", st.max_rel_error);
    t.add_row({fmt.name(),
               analysis::Table::num(static_cast<long>(design.max_pes(dev))),
               analysis::Table::num(design.device_gflops(dev), 1),
               analysis::Table::num(design.device_power_w(dev), 1), err,
               analysis::Table::num(st.max_ulp_error, 1)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
