// Regenerates Table 4: 64-bit units vs. the NEU parameterized library,
// including power at 100 MHz.
#include "analysis/experiments.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  flopsim::bench::emit(flopsim::analysis::table4_compare64(), argc, argv);
  return 0;
}
