// Scaling study: the Section 4.2 matmul design across the Virtex-II Pro
// family — GFLOPS tracks the slice budget (PE count), frequency stays put.
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "kernel/metrics.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;

  analysis::Table t(
      "Device scaling: single-precision matmul (pl=19) across the family",
      {"device", "slices", "PEs", "GFLOPS", "Power (W)", "GFLOPS/W"});
  const kernel::KernelDesign d(kernel::pe_moderate_pipelined());
  for (const device::Device& dev : device::device_database()) {
    t.add_row({dev.name,
               analysis::Table::num(static_cast<long>(dev.capacity.slices)),
               analysis::Table::num(static_cast<long>(d.max_pes(dev))),
               analysis::Table::num(d.device_gflops(dev), 1),
               analysis::Table::num(d.device_power_w(dev), 1),
               analysis::Table::num(d.gflops_per_watt(dev), 2)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
