// The Section 5 workflow as a program: give the designer's constraints,
// get the architecture. "Based upon the area, latency and energy
// constraints, architectural choices can be made from Figure 5" — here the
// optimizer scans the (adder, multiplier) depth grid and answers directly.
#include <cstdio>
#include <cstdlib>

#include "analysis/optimizer.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;

  analysis::KernelConstraints c;
  c.n = argc > 1 ? std::atoi(argv[1]) : 32;
  if (argc > 2) c.max_latency_us = std::atof(argv[2]);
  if (argc > 3) c.max_pe_slices = std::atoi(argv[3]);

  std::printf("designing a matmul PE for n=%d", c.n);
  if (c.max_latency_us < 1e30) std::printf(", latency <= %.2f us", c.max_latency_us);
  if (c.max_pe_slices < INT_MAX) std::printf(", <= %d slices/PE", c.max_pe_slices);
  std::printf("\n\n");

  struct Goal {
    const char* name;
    analysis::KernelObjective obj;
  };
  for (const Goal& g : {Goal{"minimum energy", analysis::KernelObjective::kMinEnergy},
                        Goal{"minimum latency", analysis::KernelObjective::kMinLatency},
                        Goal{"minimum area", analysis::KernelObjective::kMinArea}}) {
    const auto choice = analysis::choose_matmul_design(c, g.obj);
    if (!choice) {
      std::printf("%-16s infeasible under these constraints\n", g.name);
      continue;
    }
    std::printf("%-16s adder s=%-2d mult s=%-2d (PL=%2d)  %7.1f MHz  "
                "%5d slices/PE  %8.2f us  %9.1f nJ/PE\n",
                g.name, choice->cfg.adder_stages, choice->cfg.mult_stages,
                choice->pl, choice->freq_mhz, choice->pe_slices,
                choice->latency_us, choice->energy_nj);
  }
  std::printf("\n(usage: accelerator_designer [n] [max_latency_us] "
              "[max_pe_slices])\n");
  return 0;
}
