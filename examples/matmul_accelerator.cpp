// Matmul accelerator demo: size a PE for a device, report the paper's
// device-level numbers, then run a real (cycle-accurate) 16x16 product on
// the array and verify it bit-for-bit against the softfloat reference.
#include <cstdio>
#include <random>

#include "fp/ops.hpp"
#include "kernel/matmul.hpp"
#include "kernel/metrics.hpp"

int main() {
  using namespace flopsim;

  const device::Device dev = device::xc2vp125();
  const kernel::PeConfig cfg = kernel::pe_moderate_pipelined();
  const kernel::KernelDesign design(cfg);

  std::printf("device        %s (%d slices, %d BMULTs, %d BRAMs)\n",
              dev.name.c_str(), dev.capacity.slices, dev.capacity.bmults,
              dev.capacity.brams);
  std::printf("PE            adder s=%d + multiplier s=%d (PL=%d), %s\n",
              cfg.adder_stages, cfg.mult_stages, design.pl(),
              design.pe_resources().to_string().c_str());
  std::printf("array         %d PEs @ %.1f MHz\n", design.max_pes(dev),
              design.freq_mhz());
  std::printf("performance   %.1f GFLOPS, %.1f W, %.2f GFLOPS/W\n\n",
              design.device_gflops(dev), design.device_power_w(dev),
              design.gflops_per_watt(dev));

  // Cycle-accurate run on a smaller array (16 PEs) with verification.
  const int n = 16;
  std::mt19937_64 rng(2026);
  std::vector<double> av(n * n), bv(n * n);
  for (double& x : av) x = (static_cast<double>(rng() % 1000) - 500.0) / 32.0;
  for (double& x : bv) x = (static_cast<double>(rng() % 1000) - 500.0) / 32.0;
  const kernel::Matrix a = kernel::matrix_from_doubles(av, n, cfg.fmt);
  const kernel::Matrix b = kernel::matrix_from_doubles(bv, n, cfg.fmt);

  kernel::LinearArrayMatmul array(n, cfg);
  const kernel::MatmulRun run = array.run(a, b);
  const kernel::Matrix ref =
      kernel::reference_gemm(a, b, cfg.fmt, cfg.rounding);
  const bool exact = run.c.bits == ref.bits;

  std::printf("16x16 product on a 16-PE array:\n");
  std::printf("  cycles        %ld (schedule predicts %ld)\n", run.cycles,
              run.schedule.total_cycles());
  std::printf("  MAC issues    %ld (%ld zero-padded: n=%d < PL=%d)\n",
              run.mac_issues, run.padded_issues, n, design.pl());
  std::printf("  RAW hazards   %ld\n", run.hazards);
  std::printf("  wall clock    %.3f us at %.1f MHz\n",
              run.cycles / design.freq_mhz(), design.freq_mhz());
  std::printf("  verification  %s\n",
              exact ? "bit-exact vs softfloat GEMM" : "MISMATCH (bug!)");
  std::printf("  c[0][0]       %s\n",
              fp::to_string(fp::FpValue(run.c.at(0, 0), cfg.fmt)).c_str());
  return exact ? 0 : 1;
}
