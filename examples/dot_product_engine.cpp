// A second kernel on the same PE: a streaming dot-product engine.
//
// The paper's latency-hiding principle in its simplest form: a deeply
// pipelined adder cannot accumulate into a single register every cycle
// (RAW hazard), so the engine interleaves K >= La independent partial sums
// and reduces them at the end — "data dependencies occur after long and
// definite intervals ... a designer can hide the latency of the
// deeply-pipelined floating-point units".
#include <cstdio>
#include <random>
#include <vector>

#include "fp/ops.hpp"
#include "kernel/pe.hpp"

int main() {
  using namespace flopsim;

  kernel::PeConfig cfg;
  cfg.fmt = fp::FpFormat::binary32();
  cfg.adder_stages = 12;  // deep adder: 12-cycle accumulate hazard window
  cfg.mult_stages = 7;
  kernel::ProcessingElement pe(cfg);

  const int len = 4096;
  const int lanes = cfg.adder_stages + 1;  // > La: hazard-free interleave
  std::mt19937_64 rng(7);
  std::vector<fp::u64> x(len), y(len);
  fp::FpEnv env = fp::FpEnv::paper();
  for (int i = 0; i < len; ++i) {
    x[i] = fp::from_double((static_cast<double>(rng() % 200) - 100) / 16.0,
                           cfg.fmt, env).bits;
    y[i] = fp::from_double((static_cast<double>(rng() % 200) - 100) / 16.0,
                           cfg.fmt, env).bits;
  }

  // Stream one MAC per cycle, rotating across `lanes` accumulators.
  long cycles = 0;
  for (int i = 0; i < len; ++i, ++cycles) {
    pe.step(kernel::ProcessingElement::MacIssue{x[i], y[i], i % lanes});
  }
  while (!pe.drained()) {
    pe.step(std::nullopt);
    ++cycles;
  }

  // Tree-reduce the lane partials in software (hardware would reuse the
  // adder for a log(K)-step reduction).
  fp::FpValue total = fp::make_zero(cfg.fmt);
  for (int l = 0; l < lanes; ++l) {
    total = fp::add(total, fp::FpValue(pe.acc(l), cfg.fmt), env);
  }

  // Reference with identical lane-order arithmetic.
  std::vector<fp::FpValue> ref_lane(lanes, fp::make_zero(cfg.fmt));
  for (int i = 0; i < len; ++i) {
    const fp::FpValue p =
        fp::mul(fp::FpValue(x[i], cfg.fmt), fp::FpValue(y[i], cfg.fmt), env);
    ref_lane[i % lanes] = fp::add(ref_lane[i % lanes], p, env);
  }
  fp::FpValue ref = fp::make_zero(cfg.fmt);
  for (const fp::FpValue& v : ref_lane) ref = fp::add(ref, v, env);

  std::printf("dot product of %d elements on one PE\n", len);
  std::printf("  lanes        %d (adder latency %d -> hazard-free)\n", lanes,
              pe.adder_latency());
  std::printf("  cycles       %ld (%.3f MACs/cycle)\n", cycles,
              static_cast<double>(len) / cycles);
  std::printf("  RAW hazards  %ld\n", pe.hazards());
  std::printf("  result       %s\n", fp::to_string(total).c_str());
  std::printf("  verification %s\n",
              total.bits == ref.bits ? "bit-exact vs softfloat" : "MISMATCH");
  return total.bits == ref.bits && pe.hazards() == 0 ? 0 : 1;
}
