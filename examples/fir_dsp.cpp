// Signal-processing demo — the paper's lead motivation ("radar/sonar
// signal processing, image processing"): an 11-tap low-pass FIR running
// cycle-accurately on the transposed PE chain, cleaning a noisy tone.
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "fp/ops.hpp"
#include "kernel/fir.hpp"

int main() {
  using namespace flopsim;

  kernel::PeConfig cfg;
  cfg.adder_stages = 10;
  cfg.mult_stages = 6;
  fp::FpEnv env = fp::FpEnv::paper();

  // 11-tap windowed-sinc low-pass (cutoff ~0.1 fs).
  const int t = 11;
  std::vector<fp::u64> h;
  double norm = 0.0;
  std::vector<double> hd;
  for (int k = 0; k < t; ++k) {
    const double m = k - (t - 1) / 2.0;
    const double sinc = m == 0.0 ? 1.0 : std::sin(0.2 * M_PI * m) / (M_PI * m) / 0.2;
    const double w = 0.54 - 0.46 * std::cos(2 * M_PI * k / (t - 1));
    hd.push_back(0.2 * sinc * w);
    norm += hd.back();
  }
  for (double& v : hd) v /= norm;
  for (double v : hd) h.push_back(fp::from_double(v, cfg.fmt, env).bits);

  // A 0.05 fs tone buried in wideband noise.
  const int n = 2048;
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> noise(-1.0, 1.0);
  std::vector<double> clean(n), noisy(n);
  std::vector<fp::u64> x;
  for (int i = 0; i < n; ++i) {
    clean[i] = std::sin(2 * M_PI * 0.05 * i);
    noisy[i] = clean[i] + 0.8 * noise(rng);
    x.push_back(fp::from_double(noisy[i], cfg.fmt, env).bits);
  }

  kernel::FirFilter fir(h, cfg);
  const kernel::FirRun run = fir.run(x);

  auto snr_db = [&](const std::vector<double>& sig, int delay) {
    double s = 0.0, e = 0.0;
    for (int i = 200; i < n - 200; ++i) {
      const double ref = clean[i - delay];
      s += ref * ref;
      e += (sig[i] - ref) * (sig[i] - ref);
    }
    return 10.0 * std::log10(s / e);
  };
  std::vector<double> filtered(n);
  for (int i = 0; i < n; ++i) {
    filtered[i] = fp::to_double_exact(fp::FpValue(run.y[i], cfg.fmt));
  }
  const int group_delay = (t - 1) / 2;
  const double snr_in = snr_db(noisy, 0);
  const double snr_out = snr_db(filtered, group_delay);

  std::printf("11-tap low-pass FIR on %d taps x (mult s=%d + adder s=%d)\n",
              t, cfg.mult_stages, cfg.adder_stages);
  std::printf("  throughput      1 sample/cycle (%d samples in %ld cycles)\n",
              n, run.cycles);
  std::printf("  clock           %.1f MHz -> %.1f Msamples/s\n",
              fir.freq_mhz(), fir.freq_mhz());
  std::printf("  skew FIFOs      max depth %d (deep adders need alignment)\n",
              run.max_skew_fifo);
  std::printf("  resources       %s\n", fir.resources().to_string().c_str());
  std::printf("  SNR             %.1f dB in -> %.1f dB out\n", snr_in,
              snr_out);
  const bool ok = snr_out > snr_in + 5.0 &&
                  run.y == kernel::reference_fir(h, x, cfg.fmt, cfg.rounding);
  std::printf("  verification    %s\n",
              ok ? "bit-exact vs softfloat, SNR improved" : "FAILED");
  return ok ? 0 : 1;
}
