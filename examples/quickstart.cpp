// Quickstart: the three layers of the library in ~80 lines.
//
//  1. Bit-accurate parameterized floating point (fp::) — compute in any
//     format, here the paper's binary48.
//  2. Structural pipelined FP cores (units::) — generate an adder at a
//     chosen pipeline depth, inspect frequency/area, and stream operands
//     through it cycle by cycle.
//  3. The consistency guarantee: the pipelined core is bit-exact with the
//     softfloat reference under the paper's policy.
#include <cstdio>

#include "fp/ops.hpp"
#include "units/fp_unit.hpp"

int main() {
  using namespace flopsim;

  // --- softfloat in the paper's 48-bit format -------------------------------
  const fp::FpFormat fmt = fp::FpFormat::binary48();
  fp::FpEnv env = fp::FpEnv::paper();  // flush-to-zero, no NaN, round-nearest
  const fp::FpValue a = fp::from_double(1.0 / 3.0, fmt, env);
  const fp::FpValue b = fp::from_double(2.5, fmt, env);
  const fp::FpValue sum = fp::add(a, b, env);
  const fp::FpValue prod = fp::mul(a, b, env);
  std::printf("a      = %s\n", fp::to_string(a).c_str());
  std::printf("b      = %s\n", fp::to_string(b).c_str());
  std::printf("a + b  = %s\n", fp::to_string(sum).c_str());
  std::printf("a * b  = %s\n", fp::to_string(prod).c_str());
  std::printf("flags  = %s\n\n", fp::flags_to_string(env.flags).c_str());

  // --- a pipelined hardware adder for that format ---------------------------
  units::UnitConfig cfg;
  cfg.stages = 8;  // pipeline depth is the paper's design parameter
  units::FpUnit adder(units::UnitKind::kAdder, fmt, cfg);
  const rtl::Timing t = adder.timing();
  const rtl::AreaBreakdown area = adder.area();
  std::printf("%s: %d of max %d stages\n", adder.name().c_str(),
              adder.stages(), adder.max_stages());
  std::printf("  clock      %.1f MHz (critical stage %.2f ns)\n", t.freq_mhz,
              t.critical_ns);
  std::printf("  area       %s\n", area.total.to_string().c_str());
  std::printf("  freq/area  %.4f MHz/slice (the paper's metric)\n\n",
              adder.freq_per_area());

  // --- stream operands through the pipeline --------------------------------
  std::printf("cycle-accurate: a+b enters, DONE asserts %d cycles later\n",
              adder.latency());
  adder.step(units::UnitInput{a.bits, b.bits, false});
  int cycle = 1;
  while (!adder.output().has_value()) {
    adder.step(std::nullopt);
    ++cycle;
  }
  const units::UnitOutput out = *adder.output();
  std::printf("  cycle %d: result = %s\n", cycle,
              fp::to_string(fp::FpValue(out.result, fmt)).c_str());
  std::printf("  bit-exact with softfloat: %s\n",
              out.result == sum.bits ? "yes" : "NO (bug!)");
  return out.result == sum.bits ? 0 : 1;
}
