// Linear-system solver on the accelerator: cycle-accurate LU factorization
// (PE array + pipelined divider) followed by triangular solves — the
// companion application the same research group built on these cores.
#include <cstdio>
#include <random>

#include "fp/ops.hpp"
#include "kernel/lu.hpp"
#include "kernel/metrics.hpp"

int main() {
  using namespace flopsim;

  kernel::PeConfig cfg = kernel::pe_moderate_pipelined();
  const int n = 24;
  const int p = 8;

  // A diagonally dominant system with known solution x = (1, 2, ..., n).
  std::mt19937_64 rng(42);
  std::vector<double> av(n * n);
  for (int i = 0; i < n; ++i) {
    double rowsum = 0.0;
    for (int j = 0; j < n; ++j) {
      av[i * n + j] = (static_cast<double>(rng() % 256) - 128.0) / 32.0;
      rowsum += std::abs(av[i * n + j]);
    }
    av[i * n + i] = rowsum + 2.0;
  }
  const kernel::Matrix a = kernel::matrix_from_doubles(av, n, cfg.fmt);
  fp::FpEnv env = fp::FpEnv::paper();
  std::vector<fp::u64> b(n);
  for (int i = 0; i < n; ++i) {
    fp::FpValue acc = fp::make_zero(cfg.fmt);
    for (int j = 0; j < n; ++j) {
      const fp::FpValue xj = fp::from_double(j + 1.0, cfg.fmt, env);
      acc = fp::add(acc, fp::mul(fp::FpValue(a.at(i, j), cfg.fmt), xj, env),
                    env);
    }
    b[i] = acc.bits;
  }

  kernel::LuArray array(n, p, cfg);
  const kernel::LuRun run = array.run(a);
  const kernel::KernelDesign design(cfg);
  std::printf("LU factorization of a %dx%d system on %d PEs + 1 divider\n", n,
              n, p);
  std::printf("  divider latency  %d cycles\n", array.divider_latency());
  std::printf("  divides / MACs   %ld / %ld\n", run.divides, run.macs);
  std::printf("  cycles           %ld (%.3f us at %.1f MHz)\n", run.cycles,
              run.cycles / design.freq_mhz(), design.freq_mhz());
  std::printf("  stall cycles     %ld (phase drains)\n", run.bubbles);

  const kernel::Matrix ref = kernel::reference_lu(a, cfg.fmt, cfg.rounding);
  std::printf("  factors          %s\n",
              run.lu.bits == ref.bits ? "bit-exact vs softfloat LU"
                                      : "MISMATCH (bug!)");

  const auto x = kernel::lu_solve(run.lu, b, cfg.fmt, cfg.rounding);
  double worst = 0.0;
  for (int i = 0; i < n; ++i) {
    const double xi = fp::to_double_exact(fp::FpValue(x[i], cfg.fmt));
    worst = std::max(worst, std::abs(xi - (i + 1.0)) / (i + 1.0));
  }
  std::printf("  solve            max relative error %.2e vs known solution\n",
              worst);
  return run.lu.bits == ref.bits && worst < 1e-4 ? 0 : 1;
}
