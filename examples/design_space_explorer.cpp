// Design-space explorer: sweep pipeline depth for a chosen unit/precision/
// objective, print the full curve, the frequency-area Pareto frontier, and
// the min/max/opt selection — the workflow behind the paper's Tables 1-2.
//
// Usage: design_space_explorer [add|mul] [32|48|64] [area|speed]
#include <cstdio>
#include <cstring>
#include <iostream>

#include "analysis/pareto.hpp"
#include "analysis/report.hpp"
#include "analysis/sweep.hpp"

int main(int argc, char** argv) {
  using namespace flopsim;

  units::UnitKind kind = units::UnitKind::kAdder;
  fp::FpFormat fmt = fp::FpFormat::binary32();
  device::Objective obj = device::Objective::kArea;
  if (argc > 1 && std::strcmp(argv[1], "mul") == 0) {
    kind = units::UnitKind::kMultiplier;
  }
  if (argc > 2) {
    if (std::strcmp(argv[2], "48") == 0) fmt = fp::FpFormat::binary48();
    if (std::strcmp(argv[2], "64") == 0) fmt = fp::FpFormat::binary64();
  }
  if (argc > 3 && std::strcmp(argv[3], "speed") == 0) {
    obj = device::Objective::kSpeed;
  }

  const analysis::SweepResult sweep = analysis::sweep_unit(kind, fmt, obj);
  analysis::Table t("Pipeline sweep: " + std::string(to_string(kind)) + "<" +
                        fmt.name() + "> objective=" + to_string(obj),
                    {"stages", "MHz", "crit ns", "slices", "FFs", "MHz/slice",
                     "mW@100MHz"});
  for (const analysis::DesignPoint& p : sweep.points) {
    t.add_row({analysis::Table::num(static_cast<long>(p.stages)),
               analysis::Table::num(p.freq_mhz, 1),
               analysis::Table::num(p.critical_ns, 2),
               analysis::Table::num(static_cast<long>(p.area.slices)),
               analysis::Table::num(static_cast<long>(p.area.ffs)),
               analysis::Table::num(p.freq_per_area, 4),
               analysis::Table::num(p.power_mw_100, 1)});
  }
  t.print(std::cout);

  const analysis::Selection sel = analysis::select_min_max_opt(sweep);
  std::printf("min: s=%d (%.1f MHz, %d slices)\n", sel.min.stages,
              sel.min.freq_mhz, sel.min.area.slices);
  std::printf("max: s=%d (%.1f MHz, %d slices)\n", sel.max.stages,
              sel.max.freq_mhz, sel.max.area.slices);
  std::printf("opt: s=%d (%.1f MHz, %d slices, %.4f MHz/slice)\n\n",
              sel.opt.stages, sel.opt.freq_mhz, sel.opt.area.slices,
              sel.opt.freq_per_area);

  std::printf("frequency-area Pareto frontier:");
  for (const analysis::DesignPoint& p : analysis::pareto_frontier(sweep)) {
    std::printf(" s%d(%.0fMHz/%dsl)", p.stages, p.freq_mhz, p.area.slices);
  }
  std::printf("\n");
  return 0;
}
