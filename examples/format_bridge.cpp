// Custom-format datapath with IEEE interfaces — the system the paper
// alludes to when noting that commercial cores "use a custom format with
// conversion to and from the IEEE754 standard at interfaces to other
// resources in the system."
//
// Pipeline: IEEE binary32 in -> widen to binary48 -> accumulate a running
// sum in the wider format (more headroom, fewer rounding losses) ->
// narrow back to binary32 out. Every stage is a generated pipelined core.
#include <cstdio>
#include <random>

#include "fp/ops.hpp"
#include "kernel/reducer.hpp"
#include "units/converter_unit.hpp"

int main() {
  using namespace flopsim;

  const fp::FpFormat ieee = fp::FpFormat::binary32();
  const fp::FpFormat internal = fp::FpFormat::binary48();
  units::UnitConfig cfg;
  cfg.stages = 2;

  units::FormatConverter widen(ieee, internal, cfg);
  units::FormatConverter narrow(internal, ieee, cfg);
  units::UnitConfig add_cfg;
  add_cfg.stages = 10;
  kernel::StreamingReducer acc48(internal, add_cfg);

  std::printf("format bridge: %s -> %s -> accumulate -> %s\n",
              ieee.name().c_str(), internal.name().c_str(),
              ieee.name().c_str());
  std::printf("  widen   %s (%.1f MHz, %d slices)\n", widen.name().c_str(),
              widen.freq_mhz(), widen.area().total.slices);
  std::printf("  narrow  %s (%.1f MHz, %d slices)\n", narrow.name().c_str(),
              narrow.freq_mhz(), narrow.area().total.slices);

  // A summation that loses badly in binary32 but survives in binary48:
  // many small values against a large base.
  const int n = 20000;
  std::mt19937_64 rng(3);
  fp::FpEnv env = fp::FpEnv::paper();
  std::vector<fp::u64> inputs;
  inputs.push_back(fp::from_double(1.0e7f, ieee, env).bits);
  for (int i = 1; i < n; ++i) {
    inputs.push_back(fp::from_double(0.25, ieee, env).bits);
  }
  const double exact = 1.0e7 + 0.25 * (n - 1);

  // Drive the bridge: widen each input (cycle-accurate), feed the reducer.
  for (fp::u64 in : inputs) {
    widen.step(in);
    while (!widen.output().has_value()) widen.step(std::nullopt);
    acc48.push(widen.output()->result);
  }
  const fp::u64 wide_sum = acc48.finish();
  narrow.step(wide_sum);
  while (!narrow.output().has_value()) narrow.step(std::nullopt);
  const fp::u64 bridged = narrow.output()->result;

  // Reference: the same sum kept entirely in binary32.
  fp::FpValue sum32 = fp::make_zero(ieee);
  for (fp::u64 in : inputs) {
    sum32 = fp::add(sum32, fp::FpValue(in, ieee), env);
  }

  const double got_bridge =
      fp::to_double_exact(fp::FpValue(bridged, ieee));
  const double got_narrow32 = fp::to_double_exact(sum32);
  std::printf("  exact sum          %.2f\n", exact);
  std::printf("  all-binary32 sum   %.2f (error %.2f)\n", got_narrow32,
              got_narrow32 - exact);
  std::printf("  bridged-48 sum     %.2f (error %.2f)\n", got_bridge,
              got_bridge - exact);
  const bool better =
      std::abs(got_bridge - exact) < std::abs(got_narrow32 - exact);
  std::printf("  wider internal format %s accumulation error\n",
              better ? "reduces" : "did not reduce");
  return better ? 0 : 1;
}
