// Systematic exception-flag semantics: which flags each operation raises,
// per case class — the contract the paper's "exceptions are detected and
// carried forward" hardware relies on.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace flopsim::fp {
namespace {

using testing::f32;
using testing::f64;

std::uint8_t flags_of_add(const FpValue& a, const FpValue& b) {
  FpEnv env = FpEnv::ieee();
  (void)add(a, b, env);
  return env.flags;
}

std::uint8_t flags_of_mul(const FpValue& a, const FpValue& b) {
  FpEnv env = FpEnv::ieee();
  (void)mul(a, b, env);
  return env.flags;
}

TEST(Flags, ExactOpsRaiseNothing) {
  EXPECT_EQ(flags_of_add(f32(1.0f), f32(2.0f)), kFlagNone);
  EXPECT_EQ(flags_of_mul(f32(4.0f), f32(0.25f)), kFlagNone);
  EXPECT_EQ(flags_of_add(f32(1.0f), make_inf(FpFormat::binary32())),
            kFlagNone);
  EXPECT_EQ(flags_of_mul(f32(0.0f), f32(5.0f)), kFlagNone);
}

TEST(Flags, InexactExactlyWhenRoundingLosesBits) {
  EXPECT_EQ(flags_of_add(f32(1.0f), f32(0x1p-25f)), kFlagInexact);
  EXPECT_EQ(flags_of_mul(f32(1.0f / 3.0f), f32(1.0f / 3.0f)), kFlagInexact);
}

TEST(Flags, OverflowImpliesInexact) {
  const FpValue maxf = make_max_finite(FpFormat::binary32());
  EXPECT_EQ(flags_of_add(maxf, maxf), kFlagOverflow | kFlagInexact);
  EXPECT_EQ(flags_of_mul(maxf, f32(2.0f)), kFlagOverflow | kFlagInexact);
}

TEST(Flags, UnderflowNeedsTinyAndInexact) {
  // Tiny and inexact: both flags.
  EXPECT_EQ(flags_of_mul(f32(0x1p-100f), f32(0x1p-100f)),
            kFlagUnderflow | kFlagInexact);
  // Tiny but exact (subnormal representable): no underflow under IEEE.
  EXPECT_EQ(flags_of_mul(f32(0x1p-100f), f32(0x1p-30f)), kFlagNone);
}

TEST(Flags, InvalidCases) {
  const FpFormat fmt = FpFormat::binary32();
  const FpValue inf = make_inf(fmt);
  const FpValue zero = make_zero(fmt);
  struct Case {
    const char* what;
    std::uint8_t got;
  };
  FpEnv e1 = FpEnv::ieee();
  (void)sub(inf, inf, e1);
  FpEnv e2 = FpEnv::ieee();
  (void)mul(inf, zero, e2);
  FpEnv e3 = FpEnv::ieee();
  (void)div(zero, zero, e3);
  FpEnv e4 = FpEnv::ieee();
  (void)div(inf, inf, e4);
  FpEnv e5 = FpEnv::ieee();
  (void)sqrt(f32(-4.0f), e5);
  for (const Case& c : {Case{"inf-inf", e1.flags}, Case{"inf*0", e2.flags},
                        Case{"0/0", e3.flags}, Case{"inf/inf", e4.flags},
                        Case{"sqrt(-)", e5.flags}}) {
    EXPECT_EQ(c.got, kFlagInvalid) << c.what;
  }
}

TEST(Flags, DivByZeroDistinctFromInvalid) {
  FpEnv env = FpEnv::ieee();
  (void)div(f32(3.0f), make_zero(FpFormat::binary32()), env);
  EXPECT_EQ(env.flags, kFlagDivByZero);
}

TEST(Flags, QuietNaNOperandsRaiseNothing) {
  const FpValue nan = make_qnan(FpFormat::binary64());
  FpEnv env = FpEnv::ieee();
  (void)add(nan, f64(1.0), env);
  (void)mul(nan, nan, env);
  (void)div(f64(1.0), nan, env);
  (void)sqrt(nan, env);
  EXPECT_EQ(env.flags, kFlagNone);
}

TEST(Flags, StickyAccumulationAcrossOps) {
  FpEnv env = FpEnv::ieee();
  (void)add(f32(1.0f), f32(0x1p-25f), env);               // inexact
  (void)mul(make_max_finite(FpFormat::binary32()),
            f32(2.0f), env);                              // overflow
  (void)div(f32(1.0f), make_zero(FpFormat::binary32()), env);  // div-by-0
  EXPECT_EQ(env.flags, kFlagInexact | kFlagOverflow | kFlagDivByZero);
  env.clear_flags();
  EXPECT_EQ(env.flags, kFlagNone);
}

TEST(Flags, FlagsToStringRendering) {
  EXPECT_EQ(flags_to_string(kFlagNone), "none");
  EXPECT_EQ(flags_to_string(kFlagInexact), "inexact");
  EXPECT_EQ(flags_to_string(kFlagInvalid | kFlagOverflow | kFlagInexact),
            "invalid|overflow|inexact");
}

TEST(Flags, PaperModeFlushRaisesUnderflowEvenWhenExact) {
  // FTZ hardware loses the value either way; the paper env flags it.
  FpEnv env = FpEnv::paper();
  (void)mul(testing::f32(0x1p-100f), testing::f32(0x1p-30f), env);
  EXPECT_TRUE(env.any(kFlagUnderflow));
  EXPECT_TRUE(env.any(kFlagInexact));
}

}  // namespace
}  // namespace flopsim::fp
