// Fused multiply-add: host parity, special values, algebraic identities.
#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace flopsim::fp {
namespace {

using testing::BitsMatchHost;
using testing::ValueGen;
using testing::as_double;
using testing::as_float;
using testing::f32;
using testing::f64;

TEST(Fma, SimpleExact) {
  FpEnv env = FpEnv::ieee();
  EXPECT_EQ(fma(f32(2.0f), f32(3.0f), f32(4.0f), env).bits, f32(10.0f).bits);
  EXPECT_EQ(env.flags, kFlagNone);
}

TEST(Fma, SingleRoundingBeatsTwoRoundings) {
  // The defining property: a*b+c with one rounding differs from
  // round(round(a*b)+c) on witnesses like this one.
  FpEnv env = FpEnv::ieee();
  const FpValue a = f64(1.0 + std::ldexp(1.0, -30));
  const FpValue b = f64(1.0 + std::ldexp(1.0, -30));
  const FpValue c = neg(f64(1.0 + std::ldexp(1.0, -29)));
  const FpValue fused = fma(a, b, c, env);
  const FpValue two_step = add(mul(a, b, env), c, env);
  const double host = std::fma(as_double(a), as_double(b), as_double(c));
  EXPECT_TRUE(BitsMatchHost(fused, host));
  EXPECT_NE(fused.bits, two_step.bits);
}

TEST(Fma, HostParityUniformBits64) {
  ValueGen gen(FpFormat::binary64(), 0xf3a1);
  for (int i = 0; i < 200000; ++i) {
    const FpValue a = gen.uniform_bits();
    const FpValue b = gen.uniform_bits();
    const FpValue c = gen.uniform_bits();
    FpEnv env = FpEnv::ieee();
    const FpValue r = fma(a, b, c, env);
    const double host = std::fma(as_double(a), as_double(b), as_double(c));
    ASSERT_TRUE(BitsMatchHost(r, host))
        << to_string(a) << " " << to_string(b) << " " << to_string(c);
  }
}

TEST(Fma, HostParityUniformBits32) {
  ValueGen gen(FpFormat::binary32(), 0xf3a2);
  for (int i = 0; i < 200000; ++i) {
    const FpValue a = gen.uniform_bits();
    const FpValue b = gen.uniform_bits();
    const FpValue c = gen.uniform_bits();
    FpEnv env = FpEnv::ieee();
    const FpValue r = fma(a, b, c, env);
    const float host = std::fmaf(as_float(a), as_float(b), as_float(c));
    ASSERT_TRUE(BitsMatchHost(r, host))
        << to_string(a) << " " << to_string(b) << " " << to_string(c);
  }
}

TEST(Fma, HostParityCancellation) {
  // Correlated exponents force the near-total-cancellation paths where the
  // 128-bit frame has to be exact.
  ValueGen gen(FpFormat::binary64(), 0xf3a3);
  for (int i = 0; i < 200000; ++i) {
    const auto [a, b] = gen.correlated_pair();
    FpEnv env0 = FpEnv::ieee();
    const FpValue c = neg(mul(a, b, env0));  // c ~ -a*b
    FpEnv env = FpEnv::ieee();
    const FpValue r = fma(a, b, c, env);
    const double host = std::fma(as_double(a), as_double(b), as_double(c));
    ASSERT_TRUE(BitsMatchHost(r, host))
        << to_string(a) << " " << to_string(b) << " " << to_string(c);
  }
}

TEST(Fma, ResidualIsExact) {
  // fma(a, b, -round(a*b)) yields the exact rounding error of the product —
  // the classic two-product trick must come out exact (inexact flag clear).
  ValueGen gen(FpFormat::binary64(), 0xf3a4);
  for (int i = 0; i < 20000; ++i) {
    const FpValue a = gen.near_exp(1023, 100);
    const FpValue b = gen.near_exp(1023, 100);
    FpEnv env = FpEnv::ieee();
    const FpValue p = mul(a, b, env);
    env.clear_flags();
    const FpValue r = fma(a, b, neg(p), env);
    ASSERT_FALSE(env.any(kFlagInexact))
        << to_string(a) << " " << to_string(b) << " residual "
        << to_string(r);
  }
}

TEST(Fma, ZeroAddendMatchesMul) {
  ValueGen gen(FpFormat::binary48(), 0xf3a5);
  const FpValue zero = make_zero(FpFormat::binary48());
  for (int i = 0; i < 50000; ++i) {
    const FpValue a = gen.uniform_bits();
    const FpValue b = gen.uniform_bits();
    if (a.is_nan() || b.is_nan()) continue;
    FpEnv e1 = FpEnv::ieee();
    FpEnv e2 = FpEnv::ieee();
    const FpValue r1 = fma(a, b, zero, e1);
    const FpValue r2 = mul(a, b, e2);
    if (r1.is_nan() || r2.is_nan()) {
      ASSERT_EQ(r1.is_nan(), r2.is_nan());
      continue;
    }
    // Signs of exact zero results may differ (0*x + 0 rules); values match.
    if (!(r1.is_zero() && r2.is_zero())) {
      ASSERT_EQ(r1.bits, r2.bits) << to_string(a) << " " << to_string(b);
    }
  }
}

TEST(Fma, UnitMultiplierMatchesAdd) {
  ValueGen gen(FpFormat::binary32(), 0xf3a6);
  const FpValue one = make_one(FpFormat::binary32());
  for (int i = 0; i < 50000; ++i) {
    const auto [a, c] = gen.correlated_pair();
    FpEnv e1 = FpEnv::ieee();
    FpEnv e2 = FpEnv::ieee();
    ASSERT_EQ(fma(a, one, c, e1).bits, add(a, c, e2).bits)
        << to_string(a) << " " << to_string(c);
  }
}

TEST(Fma, InfAndNaNRules) {
  const FpFormat fmt = FpFormat::binary64();
  const FpValue inf = make_inf(fmt);
  const FpValue zero = make_zero(fmt);
  const FpValue one = make_one(fmt);
  {
    FpEnv env = FpEnv::ieee();
    EXPECT_TRUE(fma(inf, zero, one, env).is_nan());
    EXPECT_TRUE(env.any(kFlagInvalid));
  }
  {
    // 0 * inf + qNaN: NaN result AND invalid.
    FpEnv env = FpEnv::ieee();
    EXPECT_TRUE(fma(zero, inf, make_qnan(fmt), env).is_nan());
    EXPECT_TRUE(env.any(kFlagInvalid));
  }
  {
    // inf * 1 + (-inf): invalid.
    FpEnv env = FpEnv::ieee();
    EXPECT_TRUE(fma(inf, one, neg(inf), env).is_nan());
    EXPECT_TRUE(env.any(kFlagInvalid));
  }
  {
    // inf * 1 + inf = inf.
    FpEnv env = FpEnv::ieee();
    EXPECT_TRUE(fma(inf, one, inf, env).is_inf());
    EXPECT_FALSE(env.any(kFlagInvalid));
  }
  {
    // finite * finite + inf = inf (c's sign).
    FpEnv env = FpEnv::ieee();
    const FpValue r = fma(one, one, neg(inf), env);
    EXPECT_TRUE(r.is_inf());
    EXPECT_TRUE(r.sign());
  }
}

TEST(Fma, ExactCancellationSign) {
  FpEnv env = FpEnv::ieee();
  const FpValue r = fma(f32(2.0f), f32(3.0f), f32(-6.0f), env);
  EXPECT_TRUE(r.is_zero());
  EXPECT_FALSE(r.sign());
  FpEnv down = FpEnv::ieee(RoundingMode::kTowardNegative);
  const FpValue r2 = fma(f32(2.0f), f32(3.0f), f32(-6.0f), down);
  EXPECT_TRUE(r2.is_zero());
  EXPECT_TRUE(r2.sign());
}

TEST(Fma, PaperEnvFlushes) {
  FpEnv env = FpEnv::paper();
  // Product in the subnormal range flushes even with a zero addend.
  const FpValue r = fma(f32(0x1p-100f), f32(0x1p-30f),
                        make_zero(FpFormat::binary32()), env);
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(env.any(kFlagUnderflow));
}

TEST(Fma, MismatchedFormatsThrow) {
  FpEnv env = FpEnv::ieee();
  EXPECT_THROW(fma(f32(1.0f), f32(1.0f), f64(1.0), env),
               std::invalid_argument);
}

}  // namespace
}  // namespace flopsim::fp
