// Directed multiplication cases.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace flopsim::fp {
namespace {

using testing::f32;

TEST(Mul, SimpleExact) {
  FpEnv env = FpEnv::ieee();
  EXPECT_EQ(mul(f32(3.0f), f32(4.0f), env).bits, f32(12.0f).bits);
  EXPECT_EQ(env.flags, kFlagNone);
}

TEST(Mul, SignRules) {
  FpEnv env = FpEnv::ieee();
  EXPECT_FALSE(mul(f32(2.0f), f32(3.0f), env).sign());
  EXPECT_TRUE(mul(f32(-2.0f), f32(3.0f), env).sign());
  EXPECT_TRUE(mul(f32(2.0f), f32(-3.0f), env).sign());
  EXPECT_FALSE(mul(f32(-2.0f), f32(-3.0f), env).sign());
}

TEST(Mul, PowerOfTwoIsExact) {
  FpEnv env = FpEnv::ieee();
  const FpValue x = f32(1.7182817f);
  const FpValue r = mul(x, f32(0.5f), env);
  EXPECT_EQ(r.bits, f32(1.7182817f * 0.5f).bits);
  EXPECT_FALSE(env.any(kFlagInexact));
}

TEST(Mul, ByOneIsIdentity) {
  FpEnv env = FpEnv::ieee();
  const FpValue one = make_one(FpFormat::binary32());
  for (float v : {0.0f, -0.0f, 1.0f, -123.75f, 3.4e38f, 1e-40f}) {
    EXPECT_EQ(mul(f32(v), one, env).bits, f32(v).bits) << v;
  }
  EXPECT_EQ(env.flags, kFlagNone);
}

TEST(Mul, ByZeroGivesSignedZero) {
  FpEnv env = FpEnv::ieee();
  const FpValue z = make_zero(FpFormat::binary32());
  EXPECT_FALSE(mul(f32(5.0f), z, env).sign());
  EXPECT_TRUE(mul(f32(-5.0f), z, env).sign());
  EXPECT_TRUE(mul(f32(5.0f), neg(z), env).sign());
}

TEST(Mul, InfTimesZeroIsInvalid) {
  FpEnv env = FpEnv::ieee();
  const FpValue r =
      mul(make_inf(FpFormat::binary32()), make_zero(FpFormat::binary32()), env);
  EXPECT_TRUE(r.is_nan());
  EXPECT_TRUE(env.any(kFlagInvalid));
}

TEST(Mul, InfTimesFiniteIsInf) {
  FpEnv env = FpEnv::ieee();
  const FpValue r = mul(make_inf(FpFormat::binary32()), f32(-2.0f), env);
  EXPECT_TRUE(r.is_inf());
  EXPECT_TRUE(r.sign());
  EXPECT_FALSE(env.any(kFlagInvalid));
}

TEST(Mul, OverflowRaisesAndRespectsRounding) {
  const FpValue big = f32(2e38f);
  {
    FpEnv env = FpEnv::ieee();
    EXPECT_TRUE(mul(big, big, env).is_inf());
    EXPECT_TRUE(env.any(kFlagOverflow));
  }
  {
    FpEnv env = FpEnv::ieee(RoundingMode::kTowardZero);
    EXPECT_EQ(mul(big, big, env).bits,
              make_max_finite(FpFormat::binary32()).bits);
  }
}

TEST(Mul, UnderflowToSubnormal) {
  FpEnv env = FpEnv::ieee();
  const FpValue tiny = f32(0x1p-100f);
  const FpValue r = mul(tiny, f32(0x1p-30f), env);  // 2^-130: subnormal
  EXPECT_TRUE(r.is_subnormal());
  EXPECT_EQ(r.bits, f32(0x1p-130f).bits);
}

TEST(Mul, UnderflowToZeroRaisesUnderflow) {
  FpEnv env = FpEnv::ieee();
  const FpValue tiny = f32(0x1p-126f);
  const FpValue r = mul(tiny, f32(0x1p-80f), env);  // 2^-206: below range
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(env.any(kFlagUnderflow));
  EXPECT_TRUE(env.any(kFlagInexact));
}

TEST(Mul, SubnormalTimesLargeRecovers) {
  FpEnv env = FpEnv::ieee();
  // Smallest subnormal (2^-149) times 2^100 = 2^-49, a normal number.
  const FpValue snm = FpValue(1, FpFormat::binary32());
  const FpValue r = mul(snm, f32(0x1p100f), env);
  EXPECT_EQ(r.bits, f32(0x1p-49f).bits);
  EXPECT_FALSE(env.any(kFlagInexact));
}

TEST(Mul, RoundTiesToEven) {
  // (1 + 2^-23)^2 = 1 + 2^-22 + 2^-46; the 2^-46 tail ties... not a tie:
  // it rounds down to 1 + 2^-22 under RNE (tail below guard is 2^-46 < half
  // of 2^-23 ulp at result exponent 0).
  FpEnv env = FpEnv::ieee();
  const FpValue a = FpValue(f32(1.0f).bits + 1, FpFormat::binary32());
  const FpValue r = mul(a, a, env);
  EXPECT_EQ(r.bits, f32(1.0f).bits + 2);
  EXPECT_TRUE(env.any(kFlagInexact));
}

TEST(Mul, Binary48MantissaWidth) {
  // (2^18 + 1)^2 = 2^36 + 2^19 + 1 fits exactly in a 36-bit fraction
  // (37-bit significand).
  const FpFormat fmt = FpFormat::binary48();
  FpEnv env = FpEnv::ieee();
  const FpValue x = from_double(262145.0, fmt, env);  // 2^18 + 1
  const FpValue r = mul(x, x, env);
  EXPECT_EQ(to_double_exact(r), 262145.0 * 262145.0);
  EXPECT_FALSE(env.any(kFlagInexact));
}

TEST(Mul, MismatchedFormatsThrow) {
  FpEnv env = FpEnv::ieee();
  EXPECT_THROW(mul(f32(1.0f), make_one(FpFormat::binary64()), env),
               std::invalid_argument);
}

}  // namespace
}  // namespace flopsim::fp
