// Exhaustive verification on a tiny format: FpFormat(4,3) has 256
// encodings, so EVERY operand pair can be checked — no sampling gaps.
// The oracle computes exactly in binary64 (3-bit significands make add,
// sub and mul exact in double) and rounds once via convert(), which the
// host-parity suites have independently validated.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace flopsim::fp {
namespace {

const FpFormat kTiny(4, 3);  // 1 + 4 + 3 = 8 bits

double tiny_to_double(u64 bits) {
  return to_double_exact(FpValue(bits, kTiny));
}

/// Round an exactly-representable double into kTiny under env.
FpValue oracle_round(double exact, FpEnv& env) {
  return from_double(exact, kTiny, env);
}

class ExhaustiveTinyTest : public ::testing::TestWithParam<RoundingMode> {};

TEST_P(ExhaustiveTinyTest, AdditionAllPairs) {
  const RoundingMode mode = GetParam();
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const FpValue va(a, kTiny), vb(b, kTiny);
      FpEnv env = FpEnv::ieee(mode);
      const FpValue r = add(va, vb, env);
      const double da = tiny_to_double(a);
      const double db = tiny_to_double(b);
      if (std::isnan(da) || std::isnan(db)) {
        ASSERT_TRUE(r.is_nan());
        continue;
      }
      const double exact = da + db;  // exact: 3-bit significands
      if (std::isnan(exact)) {  // inf + -inf
        ASSERT_TRUE(r.is_nan());
        continue;
      }
      FpEnv oenv = FpEnv::ieee(mode);
      const FpValue expect = oracle_round(exact, oenv);
      if (exact == 0.0 && da != 0.0) {
        // Exact cancellation: sign rule checked separately below.
        ASSERT_TRUE(r.is_zero()) << a << "+" << b;
        ASSERT_EQ(r.sign(), mode == RoundingMode::kTowardNegative)
            << a << "+" << b;
      } else if (exact == 0.0) {
        ASSERT_TRUE(r.is_zero()) << a << "+" << b;
      } else {
        ASSERT_EQ(r.bits, expect.bits)
            << to_string(va) << " + " << to_string(vb);
      }
    }
  }
}

TEST_P(ExhaustiveTinyTest, MultiplicationAllPairs) {
  const RoundingMode mode = GetParam();
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const FpValue va(a, kTiny), vb(b, kTiny);
      FpEnv env = FpEnv::ieee(mode);
      const FpValue r = mul(va, vb, env);
      const double da = tiny_to_double(a);
      const double db = tiny_to_double(b);
      if (std::isnan(da) || std::isnan(db)) {
        ASSERT_TRUE(r.is_nan());
        continue;
      }
      const double exact = da * db;  // exact in double
      if (std::isnan(exact)) {  // 0 * inf
        ASSERT_TRUE(r.is_nan());
        continue;
      }
      FpEnv oenv = FpEnv::ieee(mode);
      const FpValue expect = oracle_round(exact, oenv);
      ASSERT_EQ(r.bits, expect.bits)
          << to_string(va) << " * " << to_string(vb);
    }
  }
}

TEST_P(ExhaustiveTinyTest, SubtractionAllPairs) {
  const RoundingMode mode = GetParam();
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const FpValue va(a, kTiny), vb(b, kTiny);
      FpEnv e1 = FpEnv::ieee(mode);
      FpEnv e2 = FpEnv::ieee(mode);
      // sub must equal add of the negation, bit for bit.
      ASSERT_EQ(sub(va, vb, e1).bits, add(va, neg(vb), e2).bits)
          << a << " " << b;
    }
  }
}

TEST_P(ExhaustiveTinyTest, SqrtAllValues) {
  const RoundingMode mode = GetParam();
  for (unsigned a = 0; a < 256; ++a) {
    const FpValue va(a, kTiny);
    FpEnv env = FpEnv::ieee(mode);
    const FpValue r = sqrt(va, env);
    const double da = tiny_to_double(a);
    if (std::isnan(da) || (da < 0 && da != 0.0)) {
      ASSERT_TRUE(r.is_nan()) << a;
      continue;
    }
    // sqrt of a representable value: double sqrt is correctly rounded to
    // binary64, far more precision than kTiny needs — but the double
    // rounding could bite on ties, so verify with the sandwich property
    // instead: r is representable and r is the correct rounding of the
    // real root (checked via squaring neighbours).
    const double root = std::sqrt(da);
    FpEnv oenv = FpEnv::ieee(mode);
    const FpValue expect = from_double(root, kTiny, oenv);
    // For 3-bit significands binary64 sqrt has 49 spare bits: no
    // double-rounding ties are possible.
    ASSERT_EQ(r.bits, expect.bits) << to_string(va);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, ExhaustiveTinyTest,
                         ::testing::Values(RoundingMode::kNearestEven,
                                           RoundingMode::kTowardZero,
                                           RoundingMode::kTowardPositive,
                                           RoundingMode::kTowardNegative),
                         [](const ::testing::TestParamInfo<RoundingMode>& i) {
                           std::string n = to_string(i.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace flopsim::fp
