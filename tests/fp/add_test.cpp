// Directed addition/subtraction cases: special values, signed zeros,
// cancellation, sticky-bit behaviour, overflow per rounding mode.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace flopsim::fp {
namespace {

using testing::f32;
using testing::f64;

TEST(Add, SimpleExact) {
  FpEnv env = FpEnv::ieee();
  EXPECT_EQ(add(f32(1.0f), f32(2.0f), env).bits, f32(3.0f).bits);
  EXPECT_EQ(env.flags, kFlagNone);
}

TEST(Add, ExactCancellationGivesPositiveZero) {
  FpEnv env = FpEnv::ieee();
  const FpValue r = sub(f32(1.5f), f32(1.5f), env);
  EXPECT_TRUE(r.is_zero());
  EXPECT_FALSE(r.sign());
}

TEST(Add, ExactCancellationTowardNegativeGivesNegativeZero) {
  FpEnv env = FpEnv::ieee(RoundingMode::kTowardNegative);
  const FpValue r = sub(f32(1.5f), f32(1.5f), env);
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(r.sign());
}

TEST(Add, SignedZeroCombinations) {
  FpEnv env = FpEnv::ieee();
  const FpValue pz = make_zero(FpFormat::binary32(), false);
  const FpValue nz = make_zero(FpFormat::binary32(), true);
  EXPECT_FALSE(add(pz, pz, env).sign());
  EXPECT_TRUE(add(nz, nz, env).sign());
  EXPECT_FALSE(add(pz, nz, env).sign());  // +0 + -0 = +0 (RNE)
  EXPECT_FALSE(add(nz, pz, env).sign());
}

TEST(Add, ZeroPlusXIsX) {
  FpEnv env = FpEnv::ieee();
  const FpValue x = f32(3.25f);
  EXPECT_EQ(add(make_zero(FpFormat::binary32()), x, env).bits, x.bits);
  EXPECT_EQ(add(x, make_zero(FpFormat::binary32()), env).bits, x.bits);
  EXPECT_EQ(sub(make_zero(FpFormat::binary32()), x, env).bits,
            f32(-3.25f).bits);
}

TEST(Add, InfinityArithmetic) {
  FpEnv env = FpEnv::ieee();
  const FpValue inf = make_inf(FpFormat::binary32());
  const FpValue ninf = make_inf(FpFormat::binary32(), true);
  EXPECT_TRUE(add(inf, f32(1.0f), env).is_inf());
  EXPECT_TRUE(add(inf, inf, env).is_inf());
  EXPECT_TRUE(sub(ninf, inf, env).is_inf());
  EXPECT_TRUE(sub(ninf, inf, env).sign());
}

TEST(Add, InfMinusInfIsInvalid) {
  FpEnv env = FpEnv::ieee();
  const FpValue inf = make_inf(FpFormat::binary32());
  const FpValue r = sub(inf, inf, env);
  EXPECT_TRUE(r.is_nan());
  EXPECT_TRUE(env.any(kFlagInvalid));
}

TEST(Add, NaNPropagates) {
  FpEnv env = FpEnv::ieee();
  EXPECT_TRUE(add(make_qnan(FpFormat::binary32()), f32(1.0f), env).is_nan());
  EXPECT_FALSE(env.any(kFlagInvalid));  // quiet NaN does not raise
}

TEST(Add, SignalingNaNRaisesInvalid) {
  FpEnv env = FpEnv::ieee();
  const FpValue snan =
      FpValue(FpFormat::binary32().exp_mask() | 1, FpFormat::binary32());
  EXPECT_TRUE(add(snan, f32(1.0f), env).is_nan());
  EXPECT_TRUE(env.any(kFlagInvalid));
}

TEST(Add, StickyBitRoundsCorrectly) {
  // 2^24 + 1 is not representable in binary32: ties to even -> 2^24.
  FpEnv env = FpEnv::ieee();
  const FpValue big = f32(16777216.0f);  // 2^24
  const FpValue r = add(big, f32(1.0f), env);
  EXPECT_EQ(r.bits, big.bits);
  EXPECT_TRUE(env.any(kFlagInexact));
  // 2^24 + 2 is representable: exact.
  env.clear_flags();
  const FpValue r2 = add(big, f32(2.0f), env);
  EXPECT_EQ(r2.bits, f32(16777218.0f).bits);
  EXPECT_FALSE(env.any(kFlagInexact));
  // 2^24 + 3 rounds up to 2^24 + 4.
  env.clear_flags();
  const FpValue r3 = add(big, f32(3.0f), env);
  EXPECT_EQ(r3.bits, f32(16777220.0f).bits);
  EXPECT_TRUE(env.any(kFlagInexact));
}

TEST(Add, MassiveCancellationIsExact) {
  // Nearby operands: (1 + 2^-23) - 1 = 2^-23 exactly (Sterbenz).
  FpEnv env = FpEnv::ieee();
  const FpValue a = FpValue(f32(1.0f).bits + 1, FpFormat::binary32());
  const FpValue r = sub(a, f32(1.0f), env);
  EXPECT_EQ(r.bits, f32(0x1p-23f).bits);
  EXPECT_FALSE(env.any(kFlagInexact));
}

TEST(Add, OverflowToInfinityRNE) {
  FpEnv env = FpEnv::ieee();
  const FpValue maxf = make_max_finite(FpFormat::binary32());
  const FpValue r = add(maxf, maxf, env);
  EXPECT_TRUE(r.is_inf());
  EXPECT_TRUE(env.any(kFlagOverflow));
  EXPECT_TRUE(env.any(kFlagInexact));
}

TEST(Add, OverflowTowardZeroSaturatesToMaxFinite) {
  FpEnv env = FpEnv::ieee(RoundingMode::kTowardZero);
  const FpValue maxf = make_max_finite(FpFormat::binary32());
  const FpValue r = add(maxf, maxf, env);
  EXPECT_EQ(r.bits, maxf.bits);
  EXPECT_TRUE(env.any(kFlagOverflow));
}

TEST(Add, OverflowDirectedModesRespectSign) {
  const FpValue maxf = make_max_finite(FpFormat::binary32());
  const FpValue nmaxf = make_max_finite(FpFormat::binary32(), true);
  {
    FpEnv env = FpEnv::ieee(RoundingMode::kTowardPositive);
    EXPECT_TRUE(add(maxf, maxf, env).is_inf());
    EXPECT_EQ(add(nmaxf, nmaxf, env).bits, nmaxf.bits);
  }
  {
    FpEnv env = FpEnv::ieee(RoundingMode::kTowardNegative);
    EXPECT_EQ(add(maxf, maxf, env).bits, maxf.bits);
    EXPECT_TRUE(add(nmaxf, nmaxf, env).is_inf());
  }
}

TEST(Add, SubnormalResultUnderflows) {
  FpEnv env = FpEnv::ieee();
  const FpValue mn = make_min_normal(FpFormat::binary32());
  const FpValue half_mn = f32(0x1p-127f);  // subnormal-range value
  const FpValue r = sub(mn, half_mn, env);
  EXPECT_TRUE(r.is_subnormal());
  // Exact subnormal result: no underflow flag without inexactness.
  EXPECT_FALSE(env.any(kFlagUnderflow));
}

TEST(Add, Binary48Midpoint) {
  // In binary48 (36 fraction bits) 1 + 2^-37 ties to even -> 1.
  const FpFormat fmt = FpFormat::binary48();
  FpEnv env = FpEnv::ieee();
  const FpValue one = make_one(fmt);
  const FpValue tiny = compose(fmt, false, fmt.bias() - 37, 0);
  const FpValue r = add(one, tiny, env);
  EXPECT_EQ(r.bits, one.bits);
  EXPECT_TRUE(env.any(kFlagInexact));
  // 1 + 2^-36 is exactly the next representable value.
  env.clear_flags();
  const FpValue ulp = compose(fmt, false, fmt.bias() - 36, 0);
  EXPECT_EQ(add(one, ulp, env).bits, one.bits + 1);
  EXPECT_FALSE(env.any(kFlagInexact));
}

TEST(Add, MismatchedFormatsThrow) {
  FpEnv env = FpEnv::ieee();
  EXPECT_THROW(add(f32(1.0f), f64(1.0), env), std::invalid_argument);
}

TEST(Add, NegAbsCopysign) {
  EXPECT_EQ(neg(f32(2.0f)).bits, f32(-2.0f).bits);
  EXPECT_EQ(neg(neg(f32(2.0f))).bits, f32(2.0f).bits);
  EXPECT_EQ(abs(f32(-7.25f)).bits, f32(7.25f).bits);
  EXPECT_EQ(copysign(f32(3.0f), f32(-1.0f)).bits, f32(-3.0f).bits);
  EXPECT_EQ(copysign(f32(-3.0f), f32(1.0f)).bits, f32(3.0f).bits);
  // Sign ops are exact even on NaN/inf.
  EXPECT_TRUE(neg(make_qnan(FpFormat::binary32())).is_nan());
  EXPECT_TRUE(neg(make_inf(FpFormat::binary32())).sign());
}

}  // namespace
}  // namespace flopsim::fp
