// Directed division and square-root cases (library extensions).
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace flopsim::fp {
namespace {

using testing::f32;

TEST(Div, SimpleExact) {
  FpEnv env = FpEnv::ieee();
  EXPECT_EQ(div(f32(12.0f), f32(4.0f), env).bits, f32(3.0f).bits);
  EXPECT_FALSE(env.any(kFlagInexact));
}

TEST(Div, OneThirdRoundsCorrectly) {
  FpEnv env = FpEnv::ieee();
  const FpValue r = div(f32(1.0f), f32(3.0f), env);
  EXPECT_EQ(r.bits, f32(1.0f / 3.0f).bits);
  EXPECT_TRUE(env.any(kFlagInexact));
}

TEST(Div, ByZeroRaisesDivByZero) {
  FpEnv env = FpEnv::ieee();
  const FpValue r = div(f32(1.0f), make_zero(FpFormat::binary32()), env);
  EXPECT_TRUE(r.is_inf());
  EXPECT_TRUE(env.any(kFlagDivByZero));
  EXPECT_FALSE(env.any(kFlagInvalid));
  // Sign of zero matters.
  env.clear_flags();
  EXPECT_TRUE(div(f32(1.0f), neg(make_zero(FpFormat::binary32())), env).sign());
}

TEST(Div, ZeroOverZeroIsInvalid) {
  FpEnv env = FpEnv::ieee();
  const FpValue z = make_zero(FpFormat::binary32());
  EXPECT_TRUE(div(z, z, env).is_nan());
  EXPECT_TRUE(env.any(kFlagInvalid));
  EXPECT_FALSE(env.any(kFlagDivByZero));
}

TEST(Div, InfOverInfIsInvalid) {
  FpEnv env = FpEnv::ieee();
  const FpValue inf = make_inf(FpFormat::binary32());
  EXPECT_TRUE(div(inf, inf, env).is_nan());
  EXPECT_TRUE(env.any(kFlagInvalid));
}

TEST(Div, FiniteOverInfIsZero) {
  FpEnv env = FpEnv::ieee();
  const FpValue r = div(f32(-5.0f), make_inf(FpFormat::binary32()), env);
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(r.sign());
}

TEST(Div, SelfDivisionIsOne) {
  FpEnv env = FpEnv::ieee();
  for (float v : {1.0f, -2.5f, 3.4e38f, 1.17e-38f, 1e-42f}) {
    const FpValue r = div(f32(v), f32(v), env);
    EXPECT_EQ(to_double_exact(r), 1.0) << v;
  }
}

TEST(Div, SubnormalQuotient) {
  FpEnv env = FpEnv::ieee();
  const FpValue r = div(f32(0x1p-126f), f32(4.0f), env);
  EXPECT_TRUE(r.is_subnormal());
  EXPECT_EQ(r.bits, f32(0x1p-128f).bits);
}

TEST(Sqrt, ExactSquares) {
  FpEnv env = FpEnv::ieee();
  for (float v : {1.0f, 4.0f, 9.0f, 0.25f, 1048576.0f}) {
    const FpValue r = sqrt(f32(v * v / v), env);  // sqrt(v) of square args
    EXPECT_EQ(to_double_exact(sqrt(f32(v * v), env)), v) << v;
    (void)r;
  }
  EXPECT_FALSE(env.any(kFlagInvalid));
}

TEST(Sqrt, SqrtTwoRoundsCorrectly) {
  FpEnv env = FpEnv::ieee();
  const FpValue r = sqrt(f32(2.0f), env);
  EXPECT_EQ(r.bits, f32(std::sqrt(2.0f)).bits);
  EXPECT_TRUE(env.any(kFlagInexact));
}

TEST(Sqrt, NegativeIsInvalid) {
  FpEnv env = FpEnv::ieee();
  EXPECT_TRUE(sqrt(f32(-1.0f), env).is_nan());
  EXPECT_TRUE(env.any(kFlagInvalid));
}

TEST(Sqrt, SignedZeroPassesThrough) {
  FpEnv env = FpEnv::ieee();
  EXPECT_FALSE(sqrt(make_zero(FpFormat::binary32()), env).sign());
  EXPECT_TRUE(sqrt(make_zero(FpFormat::binary32(), true), env).sign());
  EXPECT_FALSE(env.any(kFlagInvalid));  // sqrt(-0) = -0 is NOT invalid
}

TEST(Sqrt, InfinityPassesThrough) {
  FpEnv env = FpEnv::ieee();
  EXPECT_TRUE(sqrt(make_inf(FpFormat::binary32()), env).is_inf());
  EXPECT_TRUE(sqrt(make_inf(FpFormat::binary32(), true), env).is_nan());
  EXPECT_TRUE(env.any(kFlagInvalid));
}

TEST(Sqrt, SubnormalInput) {
  FpEnv env = FpEnv::ieee();
  // sqrt(2^-148) = 2^-74 exactly (even exponent, power of two).
  const FpValue r = sqrt(f32(0x1p-148f), env);
  EXPECT_EQ(r.bits, f32(0x1p-74f).bits);
  EXPECT_FALSE(env.any(kFlagInexact));
}

TEST(Sqrt, OddExponentPowerOfTwo) {
  FpEnv env = FpEnv::ieee();
  const FpValue r = sqrt(f32(0x1p-3f), env);  // sqrt(1/8)
  EXPECT_EQ(r.bits, f32(std::sqrt(0.125f)).bits);
}

TEST(Sqrt, Binary48Value) {
  const FpFormat fmt = FpFormat::binary48();
  FpEnv env = FpEnv::ieee();
  const FpValue four = from_double(4.0, fmt, env);
  EXPECT_EQ(to_double_exact(sqrt(four, env)), 2.0);
  const FpValue x = from_double(2.0, fmt, env);
  const double got = to_double_exact(sqrt(x, env));
  // Correct to binary48 precision: within 2^-36 relative.
  EXPECT_NEAR(got, std::sqrt(2.0), std::ldexp(1.0, -36));
}

}  // namespace
}  // namespace flopsim::fp
