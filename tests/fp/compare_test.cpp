// Comparison predicates and min/max.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace flopsim::fp {
namespace {

using testing::f32;

TEST(Compare, BasicOrdering) {
  FpEnv env = FpEnv::ieee();
  EXPECT_EQ(compare(f32(1.0f), f32(2.0f), env), Ordering::kLess);
  EXPECT_EQ(compare(f32(2.0f), f32(1.0f), env), Ordering::kGreater);
  EXPECT_EQ(compare(f32(2.0f), f32(2.0f), env), Ordering::kEqual);
  EXPECT_EQ(compare(f32(-1.0f), f32(1.0f), env), Ordering::kLess);
  EXPECT_EQ(compare(f32(-1.0f), f32(-2.0f), env), Ordering::kGreater);
}

TEST(Compare, SignedZerosAreEqual) {
  FpEnv env = FpEnv::ieee();
  const FpValue pz = make_zero(FpFormat::binary32());
  EXPECT_EQ(compare(pz, neg(pz), env), Ordering::kEqual);
  EXPECT_TRUE(is_equal(pz, neg(pz), env));
  EXPECT_FALSE(is_less(pz, neg(pz), env));
  EXPECT_TRUE(is_less_equal(neg(pz), pz, env));
}

TEST(Compare, InfinityOrdering) {
  FpEnv env = FpEnv::ieee();
  const FpValue inf = make_inf(FpFormat::binary32());
  EXPECT_EQ(compare(make_max_finite(FpFormat::binary32()), inf, env),
            Ordering::kLess);
  EXPECT_EQ(compare(neg(inf), inf, env), Ordering::kLess);
  EXPECT_EQ(compare(inf, inf, env), Ordering::kEqual);
}

TEST(Compare, NaNIsUnordered) {
  FpEnv env = FpEnv::ieee();
  const FpValue nan = make_qnan(FpFormat::binary32());
  EXPECT_EQ(compare(nan, f32(1.0f), env), Ordering::kUnordered);
  EXPECT_EQ(compare(nan, nan, env), Ordering::kUnordered);
  EXPECT_FALSE(is_equal(nan, nan, env));
  // Quiet comparison with qNaN does not raise invalid.
  EXPECT_FALSE(env.any(kFlagInvalid));
}

TEST(Compare, SignalingPredicatesRaiseOnNaN) {
  FpEnv env = FpEnv::ieee();
  const FpValue nan = make_qnan(FpFormat::binary32());
  EXPECT_FALSE(is_less(nan, f32(1.0f), env));
  EXPECT_TRUE(env.any(kFlagInvalid));
  env.clear_flags();
  EXPECT_FALSE(is_less_equal(f32(1.0f), nan, env));
  EXPECT_TRUE(env.any(kFlagInvalid));
}

TEST(Compare, SNaNRaisesEvenOnQuietCompare) {
  FpEnv env = FpEnv::ieee();
  const FpValue snan =
      FpValue(FpFormat::binary32().exp_mask() | 1, FpFormat::binary32());
  EXPECT_EQ(compare(snan, f32(1.0f), env), Ordering::kUnordered);
  EXPECT_TRUE(env.any(kFlagInvalid));
}

TEST(Compare, SubnormalOrdering) {
  FpEnv env = FpEnv::ieee();
  const FpValue s1 = FpValue(1, FpFormat::binary32());
  const FpValue s2 = FpValue(2, FpFormat::binary32());
  EXPECT_EQ(compare(s1, s2, env), Ordering::kLess);
  EXPECT_EQ(compare(neg(s2), neg(s1), env), Ordering::kLess);
  EXPECT_EQ(compare(s1, make_zero(FpFormat::binary32()), env),
            Ordering::kGreater);
}

TEST(Compare, FlushToZeroTreatsSubnormalAsZero) {
  FpEnv env = FpEnv::paper();
  const FpValue sub = FpValue(1, FpFormat::binary32());
  EXPECT_EQ(compare(sub, make_zero(FpFormat::binary32()), env),
            Ordering::kEqual);
  EXPECT_EQ(compare(sub, neg(sub), env), Ordering::kEqual);
}

TEST(Compare, MinMaxBasics) {
  FpEnv env = FpEnv::ieee();
  EXPECT_EQ(min(f32(1.0f), f32(2.0f), env).bits, f32(1.0f).bits);
  EXPECT_EQ(max(f32(1.0f), f32(2.0f), env).bits, f32(2.0f).bits);
  EXPECT_EQ(min(f32(-1.0f), f32(-2.0f), env).bits, f32(-2.0f).bits);
}

TEST(Compare, MinMaxNumberBeatsQuietNaN) {
  FpEnv env = FpEnv::ieee();
  const FpValue nan = make_qnan(FpFormat::binary32());
  EXPECT_EQ(min(nan, f32(5.0f), env).bits, f32(5.0f).bits);
  EXPECT_EQ(max(f32(5.0f), nan, env).bits, f32(5.0f).bits);
  EXPECT_TRUE(min(nan, nan, env).is_nan());
}

TEST(Compare, AgreesWithHostOnRandomBits) {
  testing::ValueGen gen(FpFormat::binary64(), 0xc0ffee);
  for (int i = 0; i < 100000; ++i) {
    const FpValue a = gen.uniform_bits();
    const FpValue b = gen.uniform_bits();
    const double da = testing::as_double(a);
    const double db = testing::as_double(b);
    FpEnv env = FpEnv::ieee();
    const Ordering o = compare(a, b, env);
    if (std::isnan(da) || std::isnan(db)) {
      ASSERT_EQ(o, Ordering::kUnordered);
    } else if (da < db) {
      ASSERT_EQ(o, Ordering::kLess);
    } else if (da > db) {
      ASSERT_EQ(o, Ordering::kGreater);
    } else {
      ASSERT_EQ(o, Ordering::kEqual);
    }
  }
}

}  // namespace
}  // namespace flopsim::fp
