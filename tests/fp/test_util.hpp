// Shared helpers for the softfloat test suites: deterministic random value
// generation (with exponent-correlated and special-value cases) and
// host-hardware comparison utilities.
#pragma once

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>

#include "fp/ops.hpp"

namespace flopsim::fp::testing {

/// Deterministic generator of "interesting" operands in a format: uniform
/// bit patterns, exponent-correlated pairs (to hit alignment/cancellation),
/// and a sprinkle of specials.
class ValueGen {
 public:
  ValueGen(FpFormat fmt, std::uint64_t seed) : fmt_(fmt), rng_(seed) {}

  FpValue uniform_bits() {
    return FpValue(rng_() & fmt_.bits_mask(), fmt_);
  }

  /// A finite value whose biased exponent is near `anchor_exp` (within
  /// +-window), for stressing alignment paths.
  FpValue near_exp(int anchor_exp, int window) {
    const int lo = std::max(1, anchor_exp - window);
    const int hi = std::min(fmt_.max_finite_exp(), anchor_exp + window);
    std::uniform_int_distribution<int> exp_dist(lo, hi);
    const int e = exp_dist(rng_);
    const u64 frac = rng_() & fmt_.frac_mask();
    const bool sign = (rng_() & 1) != 0;
    return compose(fmt_, sign, e, frac);
  }

  /// A pair sharing a correlated exponent — the regime where massive
  /// cancellation and sticky-bit behaviour live.
  std::pair<FpValue, FpValue> correlated_pair() {
    std::uniform_int_distribution<int> anchor(1, fmt_.max_finite_exp());
    const int a = anchor(rng_);
    std::uniform_int_distribution<int> window(0, 4);
    return {near_exp(a, 2), near_exp(a, window(rng_))};
  }

  FpValue special(int which) {
    switch (which % 8) {
      case 0: return make_zero(fmt_, false);
      case 1: return make_zero(fmt_, true);
      case 2: return make_inf(fmt_, false);
      case 3: return make_inf(fmt_, true);
      case 4: return make_qnan(fmt_);
      case 5: return make_max_finite(fmt_, (which & 8) != 0);
      case 6: return make_min_normal(fmt_, (which & 8) != 0);
      default:
        // smallest subnormal
        return FpValue(u64{1} | ((which & 8) ? fmt_.sign_mask() : 0), fmt_);
    }
  }

  std::mt19937_64& rng() { return rng_; }

 private:
  FpFormat fmt_;
  std::mt19937_64 rng_;
};

inline FpValue f32(float x) {
  return FpValue(std::bit_cast<std::uint32_t>(x), FpFormat::binary32());
}

inline FpValue f64(double x) {
  return FpValue(std::bit_cast<std::uint64_t>(x), FpFormat::binary64());
}

inline float as_float(const FpValue& v) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(v.bits));
}

inline double as_double(const FpValue& v) {
  return std::bit_cast<double>(v.bits);
}

/// Bit-exact equality except NaN, where any-NaN matches any-NaN (payload
/// propagation is implementation-defined on hosts).
template <typename Host>  // float or double
::testing::AssertionResult BitsMatchHost(const FpValue& ours, Host host) {
  const bool our_nan = ours.is_nan();
  const bool host_nan = std::isnan(host);
  if (our_nan || host_nan) {
    if (our_nan && host_nan) return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "NaN mismatch: ours=" << to_string(ours) << " host=" << host;
  }
  std::uint64_t host_bits;
  if constexpr (sizeof(Host) == 4) {
    host_bits = std::bit_cast<std::uint32_t>(host);
  } else {
    host_bits = std::bit_cast<std::uint64_t>(host);
  }
  if (host_bits == ours.bits) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "bit mismatch: ours=" << to_string(ours) << " host=" << host
         << " host_bits=0x" << std::hex << host_bits;
}

}  // namespace flopsim::fp::testing
