// The paper's hardware policy: flush-to-zero subnormals, no NaN support,
// only round-to-nearest and truncation. FpEnv::paper() must reproduce it.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace flopsim::fp {
namespace {

using testing::f32;

TEST(PaperPolicy, SubnormalInputsReadAsZero) {
  FpEnv env = FpEnv::paper();
  const FpValue sub = FpValue(0x00400000, FpFormat::binary32());  // large subnormal
  const FpValue r = add(sub, sub, env);
  // With inputs flushed, 0 + 0 = 0 (host would give a normal 2^-125... no,
  // 2*0x00400000 stays subnormal; either way paper mode must give zero).
  EXPECT_TRUE(r.is_zero());
}

TEST(PaperPolicy, SubnormalResultsFlushToZero) {
  FpEnv env = FpEnv::paper();
  const FpValue a = f32(0x1p-100f);
  const FpValue b = f32(0x1p-30f);
  const FpValue r = mul(a, b, env);  // true value 2^-130 is subnormal
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(env.any(kFlagUnderflow));
}

TEST(PaperPolicy, MinNormalResultSurvives) {
  FpEnv env = FpEnv::paper();
  const FpValue r = mul(f32(0x1p-100f), f32(0x1p-26f), env);  // 2^-126
  EXPECT_EQ(r.bits, make_min_normal(FpFormat::binary32()).bits);
  EXPECT_FALSE(env.any(kFlagUnderflow));
}

TEST(PaperPolicy, InvalidProducesInfinityNotNaN) {
  FpEnv env = FpEnv::paper();
  const FpValue inf = make_inf(FpFormat::binary32());
  const FpValue r = sub(inf, inf, env);
  EXPECT_TRUE(r.is_inf());
  EXPECT_FALSE(r.is_nan());
  EXPECT_TRUE(env.any(kFlagInvalid));
}

TEST(PaperPolicy, NaNEncodingsReadAsInfinity) {
  FpEnv env = FpEnv::paper();
  const FpValue nan_bits = make_qnan(FpFormat::binary32());
  const FpValue r = add(nan_bits, f32(1.0f), env);
  EXPECT_TRUE(r.is_inf());
}

TEST(PaperPolicy, TruncationNeverIncreasesMagnitude) {
  FpEnv env = FpEnv::paper(RoundingMode::kTowardZero);
  testing::ValueGen gen(FpFormat::binary32(), 77);
  for (int i = 0; i < 50000; ++i) {
    const auto [a, b] = gen.correlated_pair();
    FpEnv trunc_env = FpEnv::paper(RoundingMode::kTowardZero);
    FpEnv rne_env = FpEnv::paper(RoundingMode::kNearestEven);
    const FpValue rt = mul(a, b, trunc_env);
    const FpValue rn = mul(a, b, rne_env);
    if (rt.is_finite() && rn.is_finite()) {
      ASSERT_LE(std::abs(to_double_exact(rt)), std::abs(to_double_exact(rn)) *
                                                   (1 + 1e-6))
          << to_string(a) << " * " << to_string(b);
    }
  }
  (void)env;
}

TEST(PaperPolicy, TruncatedAddMatchesHostTowardZeroOnNormals) {
  // On operands and results in the normal range, paper-mode truncation must
  // equal IEEE round-toward-zero.
  testing::ValueGen gen(FpFormat::binary32(), 78);
  for (int i = 0; i < 50000; ++i) {
    const auto [a, b] = gen.correlated_pair();
    FpEnv paper_env = FpEnv::paper(RoundingMode::kTowardZero);
    FpEnv ieee_env = FpEnv::ieee(RoundingMode::kTowardZero);
    const FpValue rp = add(a, b, paper_env);
    const FpValue ri = add(a, b, ieee_env);
    if (!ri.is_subnormal() && !rp.is_zero()) {
      ASSERT_EQ(rp.bits, ri.bits)
          << to_string(a) << " + " << to_string(b);
    }
  }
}

TEST(PaperPolicy, AgreesWithIeeeOnNormalRange) {
  // Away from subnormals and NaNs the paper cores compute IEEE results:
  // the paper's only numeric deviations are at the format edges.
  testing::ValueGen gen(FpFormat::binary64(), 79);
  for (int i = 0; i < 100000; ++i) {
    const auto [a, b] = gen.correlated_pair();
    FpEnv paper_env = FpEnv::paper();
    FpEnv ieee_env = FpEnv::ieee();
    const FpValue rp = add(a, b, paper_env);
    const FpValue ri = add(a, b, ieee_env);
    if (!ri.is_subnormal()) {
      ASSERT_EQ(rp.bits, ri.bits);
    }
    const FpValue mp = mul(a, b, paper_env);
    const FpValue mi = mul(a, b, ieee_env);
    if (!mi.is_subnormal()) {
      ASSERT_EQ(mp.bits, mi.bits);
    }
  }
}

TEST(PaperPolicy, ExceptionFlagsCarryAcrossOps) {
  // The paper: "At every stage exceptions are detected and carried forward".
  FpEnv env = FpEnv::paper();
  const FpValue maxf = make_max_finite(FpFormat::binary32());
  (void)mul(maxf, maxf, env);                      // overflow
  (void)mul(f32(0x1p-100f), f32(0x1p-100f), env);  // underflow
  EXPECT_TRUE(env.any(kFlagOverflow));
  EXPECT_TRUE(env.any(kFlagUnderflow));
  EXPECT_TRUE(env.any(kFlagInexact));
}

}  // namespace
}  // namespace flopsim::fp
