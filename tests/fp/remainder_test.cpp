// IEEE remainder and roundToIntegral: host parity and directed cases.
#include <gtest/gtest.h>

#include <cfenv>
#include <cmath>

#include "test_util.hpp"

namespace flopsim::fp {
namespace {

using testing::as_double;
using testing::as_float;
using testing::f32;
using testing::f64;

TEST(Remainder, HostParity64) {
  testing::ValueGen gen(FpFormat::binary64(), 0x4e4);
  for (int i = 0; i < 100000; ++i) {
    const FpValue a = gen.uniform_bits();
    const FpValue b = gen.uniform_bits();
    FpEnv env = FpEnv::ieee();
    const FpValue r = remainder(a, b, env);
    const double host = std::remainder(as_double(a), as_double(b));
    ASSERT_TRUE(testing::BitsMatchHost(r, host))
        << to_string(a) << " rem " << to_string(b);
  }
}

TEST(Remainder, HostParity32Correlated) {
  testing::ValueGen gen(FpFormat::binary32(), 0x4e5);
  for (int i = 0; i < 100000; ++i) {
    const auto [a, b] = gen.correlated_pair();
    FpEnv env = FpEnv::ieee();
    const FpValue r = remainder(a, b, env);
    const float host = std::remainderf(as_float(a), as_float(b));
    ASSERT_TRUE(testing::BitsMatchHost(r, host))
        << to_string(a) << " rem " << to_string(b);
  }
}

TEST(Remainder, AlwaysExact) {
  testing::ValueGen gen(FpFormat::binary48(), 0x4e6);
  for (int i = 0; i < 50000; ++i) {
    const auto [a, b] = gen.correlated_pair();
    FpEnv env = FpEnv::ieee();
    (void)remainder(a, b, env);
    ASSERT_FALSE(env.any(kFlagInexact))
        << to_string(a) << " rem " << to_string(b);
  }
}

TEST(Remainder, Specials) {
  const FpFormat fmt = FpFormat::binary64();
  const FpValue inf = make_inf(fmt);
  const FpValue zero = make_zero(fmt);
  {
    FpEnv env = FpEnv::ieee();
    EXPECT_TRUE(remainder(inf, f64(2.0), env).is_nan());
    EXPECT_TRUE(env.any(kFlagInvalid));
  }
  {
    FpEnv env = FpEnv::ieee();
    EXPECT_TRUE(remainder(f64(2.0), zero, env).is_nan());
    EXPECT_TRUE(env.any(kFlagInvalid));
  }
  {
    FpEnv env = FpEnv::ieee();
    EXPECT_EQ(remainder(f64(-3.5), inf, env).bits, f64(-3.5).bits);
    EXPECT_EQ(remainder(neg(zero), f64(3.0), env).bits, neg(zero).bits);
  }
}

TEST(Remainder, KnownValues) {
  FpEnv env = FpEnv::ieee();
  EXPECT_EQ(as_double(remainder(f64(5.0), f64(2.0), env)), 1.0);
  EXPECT_EQ(as_double(remainder(f64(6.0), f64(2.0), env)), 0.0);
  EXPECT_EQ(as_double(remainder(f64(7.0), f64(2.0), env)), -1.0);  // ties even
  EXPECT_EQ(as_double(remainder(f64(5.0), f64(-2.0), env)), 1.0);
  EXPECT_EQ(as_double(remainder(f64(-5.0), f64(2.0), env)), -1.0);
  // Zero result keeps a's sign.
  const FpValue z = remainder(f64(-4.0), f64(2.0), env);
  EXPECT_TRUE(z.is_zero());
  EXPECT_TRUE(z.sign());
}

class RintModeTest : public ::testing::TestWithParam<RoundingMode> {};

int host_mode(RoundingMode m) {
  switch (m) {
    case RoundingMode::kNearestEven: return FE_TONEAREST;
    case RoundingMode::kTowardZero: return FE_TOWARDZERO;
    case RoundingMode::kTowardPositive: return FE_UPWARD;
    case RoundingMode::kTowardNegative: return FE_DOWNWARD;
  }
  return FE_TONEAREST;
}

TEST_P(RintModeTest, HostParity) {
  const RoundingMode mode = GetParam();
  testing::ValueGen gen(FpFormat::binary64(), 0x417 + static_cast<int>(mode));
  ASSERT_EQ(std::fesetround(host_mode(mode)), 0);
  bool ok = true;
  std::string failure;
  for (int i = 0; i < 100000 && ok; ++i) {
    const FpValue a = gen.uniform_bits();
    FpEnv env = FpEnv::ieee(mode);
    const FpValue r = round_to_integral(a, env);
    volatile double va = as_double(a);
    const double host = std::nearbyint(va);
    if (!testing::BitsMatchHost(r, host)) {
      ok = false;
      failure = to_string(a);
    }
  }
  std::fesetround(FE_TONEAREST);
  EXPECT_TRUE(ok) << failure;
}

INSTANTIATE_TEST_SUITE_P(AllModes, RintModeTest,
                         ::testing::Values(RoundingMode::kNearestEven,
                                           RoundingMode::kTowardZero,
                                           RoundingMode::kTowardPositive,
                                           RoundingMode::kTowardNegative),
                         [](const ::testing::TestParamInfo<RoundingMode>& i) {
                           std::string n = to_string(i.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Rint, DirectedCases) {
  FpEnv env = FpEnv::ieee();
  EXPECT_EQ(as_double(round_to_integral(f64(2.5), env)), 2.0);   // ties even
  EXPECT_EQ(as_double(round_to_integral(f64(3.5), env)), 4.0);
  EXPECT_EQ(as_double(round_to_integral(f64(-0.4), env)), -0.0);
  EXPECT_TRUE(round_to_integral(f64(-0.4), env).sign());  // signed zero
  EXPECT_EQ(as_double(round_to_integral(f64(1e18), env)), 1e18);  // integral
  EXPECT_TRUE(env.any(kFlagInexact));
  env.clear_flags();
  (void)round_to_integral(f64(4.0), env);
  EXPECT_FALSE(env.any(kFlagInexact));  // exact input: no flag
}

TEST(Rint, SubnormalInput) {
  FpEnv env = FpEnv::ieee();
  const FpValue tiny(1, FpFormat::binary32());  // smallest subnormal
  const FpValue r = round_to_integral(tiny, env);
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(env.any(kFlagInexact));
  FpEnv up = FpEnv::ieee(RoundingMode::kTowardPositive);
  EXPECT_EQ(as_float(round_to_integral(tiny, up)), 1.0f);
}

}  // namespace
}  // namespace flopsim::fp
