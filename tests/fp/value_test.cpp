#include "fp/value.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace flopsim::fp {
namespace {

using testing::f32;

TEST(Value, FieldExtraction) {
  const FpValue v = f32(-1.5f);  // sign=1, exp=127, frac=0.5 -> 0x400000
  EXPECT_TRUE(v.sign());
  EXPECT_EQ(v.biased_exp(), 127);
  EXPECT_EQ(v.frac(), 0x400000u);
}

TEST(Value, ConstructorMasksToFormat) {
  const FpValue v(~u64{0}, FpFormat::binary32());
  EXPECT_EQ(v.bits, 0xffffffffull);
}

TEST(Value, ClassifyAllClasses) {
  const FpFormat fmt = FpFormat::binary32();
  EXPECT_EQ(classify(make_zero(fmt)), FpClass::kZero);
  EXPECT_EQ(classify(make_zero(fmt, true)), FpClass::kZero);
  EXPECT_EQ(classify(FpValue(1, fmt)), FpClass::kSubnormal);
  EXPECT_EQ(classify(make_one(fmt)), FpClass::kNormal);
  EXPECT_EQ(classify(make_max_finite(fmt)), FpClass::kNormal);
  EXPECT_EQ(classify(make_inf(fmt)), FpClass::kInfinity);
  EXPECT_EQ(classify(make_qnan(fmt)), FpClass::kQuietNaN);
  // Signaling NaN: quiet bit clear, nonzero payload.
  EXPECT_EQ(classify(FpValue(fmt.exp_mask() | 1, fmt)),
            FpClass::kSignalingNaN);
}

TEST(Value, PredicateHelpers) {
  const FpFormat fmt = FpFormat::binary64();
  EXPECT_TRUE(make_zero(fmt, true).is_zero());
  EXPECT_TRUE(FpValue(1, fmt).is_subnormal());
  EXPECT_TRUE(make_one(fmt).is_normal());
  EXPECT_TRUE(make_one(fmt).is_finite());
  EXPECT_TRUE(make_inf(fmt).is_inf());
  EXPECT_FALSE(make_inf(fmt).is_finite());
  EXPECT_TRUE(make_qnan(fmt).is_nan());
}

TEST(Value, CanonicalConstructorsMatchHostBits) {
  EXPECT_EQ(make_one(FpFormat::binary32()).bits, f32(1.0f).bits);
  EXPECT_EQ(make_one(FpFormat::binary32(), true).bits, f32(-1.0f).bits);
  EXPECT_EQ(make_inf(FpFormat::binary32()).bits,
            f32(std::numeric_limits<float>::infinity()).bits);
  EXPECT_EQ(make_max_finite(FpFormat::binary32()).bits,
            f32(std::numeric_limits<float>::max()).bits);
  EXPECT_EQ(make_min_normal(FpFormat::binary32()).bits,
            f32(std::numeric_limits<float>::min()).bits);
}

TEST(Value, ComposeRoundTrips) {
  const FpFormat fmt = FpFormat::binary48();
  const FpValue v = compose(fmt, true, 1000, 0x123456789ull);
  EXPECT_TRUE(v.sign());
  EXPECT_EQ(v.biased_exp(), 1000);
  EXPECT_EQ(v.frac(), 0x123456789ull);
}

TEST(Value, ComposeMasksOutOfRangeFields) {
  const FpFormat fmt = FpFormat::binary32();
  const FpValue v = compose(fmt, false, 0x1ff, ~u64{0});
  EXPECT_EQ(v.biased_exp(), 0xff);
  EXPECT_EQ(v.frac(), fmt.frac_mask());
}

TEST(Value, ToStringMentionsClassAndValue) {
  const std::string s = to_string(f32(1.0f));
  EXPECT_NE(s.find("binary32"), std::string::npos);
  EXPECT_NE(s.find("normal"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_NE(to_string(make_qnan(FpFormat::binary64())).find("qnan"),
            std::string::npos);
}

TEST(Value, ToStringSubnormalApproximation) {
  // Smallest binary32 subnormal is about 1.4e-45.
  const std::string s = to_string(FpValue(1, FpFormat::binary32()));
  EXPECT_NE(s.find("subnormal"), std::string::npos);
  EXPECT_NE(s.find("e-45"), std::string::npos);
}

}  // namespace
}  // namespace flopsim::fp
