// Format conversions, host interop, integer conversions.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace flopsim::fp {
namespace {

using testing::f32;
using testing::f64;

TEST(Convert, WideningIsExact) {
  testing::ValueGen gen(FpFormat::binary32(), 0xabc1);
  for (int i = 0; i < 50000; ++i) {
    const FpValue a = gen.uniform_bits();
    if (a.is_nan()) continue;
    FpEnv env = FpEnv::ieee();
    const FpValue wide = convert(a, FpFormat::binary64(), env);
    EXPECT_FALSE(env.any(kFlagInexact));
    const double host = static_cast<double>(testing::as_float(a));
    ASSERT_TRUE(testing::BitsMatchHost(wide, host)) << to_string(a);
  }
}

TEST(Convert, NarrowingMatchesHost) {
  testing::ValueGen gen(FpFormat::binary64(), 0xabc2);
  for (int i = 0; i < 100000; ++i) {
    const FpValue a = gen.uniform_bits();
    FpEnv env = FpEnv::ieee();
    const FpValue narrow = convert(a, FpFormat::binary32(), env);
    const float host = static_cast<float>(testing::as_double(a));
    ASSERT_TRUE(testing::BitsMatchHost(narrow, host)) << to_string(a);
  }
}

TEST(Convert, Binary48RoundTripThrough64IsIdentity) {
  // binary48 -> binary64 is exact, and back is exact too.
  testing::ValueGen gen(FpFormat::binary48(), 0xabc3);
  for (int i = 0; i < 50000; ++i) {
    const FpValue a = gen.uniform_bits();
    if (a.is_nan()) continue;
    FpEnv env = FpEnv::ieee();
    const FpValue wide = convert(a, FpFormat::binary64(), env);
    const FpValue back = convert(wide, FpFormat::binary48(), env);
    ASSERT_EQ(back.bits, a.bits) << to_string(a);
    EXPECT_FALSE(env.any(kFlagInexact));
  }
}

TEST(Convert, NarrowingToBinary48RoundsNearestEven) {
  FpEnv env = FpEnv::ieee();
  // A binary64 value exactly halfway between two binary48 values:
  // 1 + 2^-37 with 36 fraction bits kept -> ties to even -> 1.
  const FpValue x = f64(1.0 + std::ldexp(1.0, -37));
  const FpValue r = convert(x, FpFormat::binary48(), env);
  EXPECT_EQ(r.bits, make_one(FpFormat::binary48()).bits);
  EXPECT_TRUE(env.any(kFlagInexact));
}

TEST(Convert, SpecialsMapAcrossFormats) {
  FpEnv env = FpEnv::ieee();
  EXPECT_TRUE(
      convert(make_inf(FpFormat::binary64(), true), FpFormat::binary32(), env)
          .is_inf());
  EXPECT_TRUE(
      convert(make_qnan(FpFormat::binary32()), FpFormat::binary64(), env)
          .is_nan());
  const FpValue nz =
      convert(make_zero(FpFormat::binary64(), true), FpFormat::binary32(), env);
  EXPECT_TRUE(nz.is_zero());
  EXPECT_TRUE(nz.sign());
}

TEST(Convert, OverflowOnNarrowing) {
  FpEnv env = FpEnv::ieee();
  const FpValue big = f64(1e300);
  EXPECT_TRUE(convert(big, FpFormat::binary32(), env).is_inf());
  EXPECT_TRUE(env.any(kFlagOverflow));
}

TEST(Convert, UnderflowToSubnormalOnNarrowing) {
  FpEnv env = FpEnv::ieee();
  const FpValue tiny = f64(1e-310);  // subnormal range of binary64? No:
  // 1e-310 is subnormal in binary64 itself; converting to binary32 flushes
  // to zero with underflow.
  const FpValue r = convert(tiny, FpFormat::binary32(), env);
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(env.any(kFlagUnderflow));
}

TEST(Convert, HostRoundTrips) {
  FpEnv env = FpEnv::ieee();
  for (float v : {0.0f, 1.5f, -2.25e10f, 1e-42f}) {
    EXPECT_EQ(to_float(from_float(v, FpFormat::binary32(), env), env), v);
  }
  for (double v : {0.0, -3.5, 1e300, 5e-324}) {
    EXPECT_EQ(to_double(from_double(v, FpFormat::binary64(), env), env), v);
  }
}

TEST(Convert, FromDoubleToBinary48AndBack) {
  FpEnv env = FpEnv::ieee();
  const FpValue x = from_double(1.0 / 3.0, FpFormat::binary48(), env);
  const double back = to_double_exact(x);
  EXPECT_NEAR(back, 1.0 / 3.0, std::ldexp(1.0, -37));
  EXPECT_NE(back, 1.0 / 3.0);  // binary48 has fewer digits than binary64
}

TEST(Convert, FromInt64Exact) {
  FpEnv env = FpEnv::ieee();
  EXPECT_EQ(to_double_exact(from_int64(0, FpFormat::binary64(), env)), 0.0);
  EXPECT_EQ(to_double_exact(from_int64(42, FpFormat::binary64(), env)), 42.0);
  EXPECT_EQ(to_double_exact(from_int64(-42, FpFormat::binary64(), env)),
            -42.0);
  EXPECT_EQ(to_double_exact(from_int64(INT64_MIN, FpFormat::binary64(), env)),
            static_cast<double>(INT64_MIN));
  EXPECT_FALSE(env.any(kFlagInexact));
}

TEST(Convert, FromInt64RoundsInNarrowFormat) {
  FpEnv env = FpEnv::ieee();
  // 2^24 + 1 rounds in binary32.
  const FpValue r = from_int64((i64{1} << 24) + 1, FpFormat::binary32(), env);
  EXPECT_TRUE(env.any(kFlagInexact));
  EXPECT_EQ(testing::as_float(r), 16777216.0f);
}

TEST(Convert, FromInt64MatchesHostRandom) {
  std::mt19937_64 rng(0xdead);
  for (int i = 0; i < 50000; ++i) {
    const i64 x = static_cast<i64>(rng());
    FpEnv env = FpEnv::ieee();
    const FpValue r = from_int64(x, FpFormat::binary64(), env);
    ASSERT_TRUE(testing::BitsMatchHost(r, static_cast<double>(x))) << x;
    FpEnv env32 = FpEnv::ieee();
    const FpValue r32 = from_int64(x, FpFormat::binary32(), env32);
    ASSERT_TRUE(testing::BitsMatchHost(r32, static_cast<float>(x))) << x;
  }
}

TEST(Convert, ToInt64Basics) {
  FpEnv env = FpEnv::ieee();
  EXPECT_EQ(to_int64(f64(0.0), env), 0);
  EXPECT_EQ(to_int64(f64(1.5), env), 2);   // ties to even
  EXPECT_EQ(to_int64(f64(2.5), env), 2);   // ties to even
  EXPECT_EQ(to_int64(f64(-1.5), env), -2);
  EXPECT_EQ(to_int64(f64(123456789.0), env), 123456789);
}

TEST(Convert, ToInt64RoundingModes) {
  {
    FpEnv env = FpEnv::ieee(RoundingMode::kTowardZero);
    EXPECT_EQ(to_int64(f64(1.9), env), 1);
    EXPECT_EQ(to_int64(f64(-1.9), env), -1);
  }
  {
    FpEnv env = FpEnv::ieee(RoundingMode::kTowardPositive);
    EXPECT_EQ(to_int64(f64(1.1), env), 2);
    EXPECT_EQ(to_int64(f64(-1.9), env), -1);
  }
  {
    FpEnv env = FpEnv::ieee(RoundingMode::kTowardNegative);
    EXPECT_EQ(to_int64(f64(1.9), env), 1);
    EXPECT_EQ(to_int64(f64(-1.1), env), -2);
  }
}

TEST(Convert, ToInt64OutOfRange) {
  FpEnv env = FpEnv::ieee();
  EXPECT_EQ(to_int64(f64(1e300), env), INT64_MAX);
  EXPECT_TRUE(env.any(kFlagInvalid));
  env.clear_flags();
  EXPECT_EQ(to_int64(f64(-1e300), env), INT64_MIN);
  EXPECT_TRUE(env.any(kFlagInvalid));
  env.clear_flags();
  EXPECT_EQ(to_int64(make_qnan(FpFormat::binary64()), env), 0);
  EXPECT_TRUE(env.any(kFlagInvalid));
  env.clear_flags();
  // Exactly -2^63 is representable.
  EXPECT_EQ(to_int64(f64(-9223372036854775808.0), env), INT64_MIN);
  EXPECT_FALSE(env.any(kFlagInvalid));
}

TEST(Convert, ToInt64MatchesHostRandomInRange) {
  std::mt19937_64 rng(0xbeef);
  for (int i = 0; i < 50000; ++i) {
    const double d = std::ldexp(static_cast<double>(static_cast<i64>(rng())),
                                -(static_cast<int>(rng() % 20)));
    if (!(d > -9.2e18 && d < 9.2e18)) continue;
    FpEnv env = FpEnv::ieee();
    const i64 ours = to_int64(f64(d), env);
    const i64 host = std::llrint(d);  // host default mode: nearest-even
    ASSERT_EQ(ours, host) << d;
  }
}

}  // namespace
}  // namespace flopsim::fp
