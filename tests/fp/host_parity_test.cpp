// Bit-exact parity of the softfloat core against host IEEE-754 hardware for
// binary32 and binary64 under round-to-nearest-even, across uniform random
// bit patterns (which include subnormals, infinities, and NaNs) and
// exponent-correlated pairs (cancellation / alignment stress).
#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace flopsim::fp {
namespace {

using testing::BitsMatchHost;
using testing::ValueGen;
using testing::as_double;
using testing::as_float;

enum class Op { kAdd, kSub, kMul, kDiv, kSqrt };

struct ParityCase {
  Op op;
  bool is64;
  const char* name;
};

class HostParityTest : public ::testing::TestWithParam<ParityCase> {};

FpValue run_ours(Op op, const FpValue& a, const FpValue& b, FpEnv& env) {
  switch (op) {
    case Op::kAdd: return add(a, b, env);
    case Op::kSub: return sub(a, b, env);
    case Op::kMul: return mul(a, b, env);
    case Op::kDiv: return div(a, b, env);
    case Op::kSqrt: return sqrt(a, env);
  }
  std::abort();
}

template <typename T>
T run_host(Op op, T a, T b) {
  switch (op) {
    case Op::kAdd: return a + b;
    case Op::kSub: return a - b;
    case Op::kMul: return a * b;
    case Op::kDiv: return a / b;
    case Op::kSqrt: return std::sqrt(a);
  }
  std::abort();
}

TEST_P(HostParityTest, UniformRandomBits) {
  const ParityCase pc = GetParam();
  const FpFormat fmt = pc.is64 ? FpFormat::binary64() : FpFormat::binary32();
  ValueGen gen(fmt, 0x5eed0001 + static_cast<int>(pc.op));
  constexpr int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    const FpValue a = gen.uniform_bits();
    const FpValue b = gen.uniform_bits();
    FpEnv env = FpEnv::ieee();
    const FpValue r = run_ours(pc.op, a, b, env);
    if (pc.is64) {
      const double host = run_host(pc.op, as_double(a), as_double(b));
      ASSERT_TRUE(BitsMatchHost(r, host))
          << "op=" << pc.name << " a=" << to_string(a) << " b=" << to_string(b);
    } else {
      const float host = run_host(pc.op, as_float(a), as_float(b));
      ASSERT_TRUE(BitsMatchHost(r, host))
          << "op=" << pc.name << " a=" << to_string(a) << " b=" << to_string(b);
    }
  }
}

TEST_P(HostParityTest, CorrelatedExponents) {
  const ParityCase pc = GetParam();
  const FpFormat fmt = pc.is64 ? FpFormat::binary64() : FpFormat::binary32();
  ValueGen gen(fmt, 0x5eed1001 + static_cast<int>(pc.op));
  constexpr int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    const auto [a, b] = gen.correlated_pair();
    FpEnv env = FpEnv::ieee();
    const FpValue r = run_ours(pc.op, a, b, env);
    if (pc.is64) {
      const double host = run_host(pc.op, as_double(a), as_double(b));
      ASSERT_TRUE(BitsMatchHost(r, host))
          << "op=" << pc.name << " a=" << to_string(a) << " b=" << to_string(b);
    } else {
      const float host = run_host(pc.op, as_float(a), as_float(b));
      ASSERT_TRUE(BitsMatchHost(r, host))
          << "op=" << pc.name << " a=" << to_string(a) << " b=" << to_string(b);
    }
  }
}

TEST_P(HostParityTest, SpecialsCrossProduct) {
  const ParityCase pc = GetParam();
  const FpFormat fmt = pc.is64 ? FpFormat::binary64() : FpFormat::binary32();
  ValueGen gen(fmt, 1);
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) {
      const FpValue a = gen.special(i);
      const FpValue b = gen.special(j);
      FpEnv env = FpEnv::ieee();
      const FpValue r = run_ours(pc.op, a, b, env);
      if (pc.is64) {
        const double host = run_host(pc.op, as_double(a), as_double(b));
        ASSERT_TRUE(BitsMatchHost(r, host))
            << "op=" << pc.name << " a=" << to_string(a)
            << " b=" << to_string(b);
      } else {
        const float host = run_host(pc.op, as_float(a), as_float(b));
        ASSERT_TRUE(BitsMatchHost(r, host))
            << "op=" << pc.name << " a=" << to_string(a)
            << " b=" << to_string(b);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, HostParityTest,
    ::testing::Values(ParityCase{Op::kAdd, false, "add32"},
                      ParityCase{Op::kSub, false, "sub32"},
                      ParityCase{Op::kMul, false, "mul32"},
                      ParityCase{Op::kDiv, false, "div32"},
                      ParityCase{Op::kSqrt, false, "sqrt32"},
                      ParityCase{Op::kAdd, true, "add64"},
                      ParityCase{Op::kSub, true, "sub64"},
                      ParityCase{Op::kMul, true, "mul64"},
                      ParityCase{Op::kDiv, true, "div64"},
                      ParityCase{Op::kSqrt, true, "sqrt64"}),
    [](const ::testing::TestParamInfo<ParityCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace flopsim::fp
