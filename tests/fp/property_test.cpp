// Property-based sweeps over all supported formats (TEST_P), exercising
// algebraic invariants the arithmetic must satisfy in any precision —
// including binary48, which has no host twin to compare against.
#include <gtest/gtest.h>

#include <cfenv>

#include "test_util.hpp"

namespace flopsim::fp {
namespace {

using testing::ValueGen;

class FormatPropertyTest : public ::testing::TestWithParam<FpFormat> {
 protected:
  FpFormat fmt() const { return GetParam(); }
};

TEST_P(FormatPropertyTest, AdditionCommutes) {
  ValueGen gen(fmt(), 0x900d0001);
  for (int i = 0; i < 20000; ++i) {
    const auto [a, b] = gen.correlated_pair();
    FpEnv e1 = FpEnv::ieee();
    FpEnv e2 = FpEnv::ieee();
    ASSERT_EQ(add(a, b, e1).bits, add(b, a, e2).bits)
        << to_string(a) << " " << to_string(b);
    ASSERT_EQ(e1.flags, e2.flags);
  }
}

TEST_P(FormatPropertyTest, MultiplicationCommutes) {
  ValueGen gen(fmt(), 0x900d0002);
  for (int i = 0; i < 20000; ++i) {
    const FpValue a = gen.uniform_bits();
    const FpValue b = gen.uniform_bits();
    FpEnv e1 = FpEnv::ieee();
    FpEnv e2 = FpEnv::ieee();
    const FpValue r1 = mul(a, b, e1);
    const FpValue r2 = mul(b, a, e2);
    if (r1.is_nan()) {
      ASSERT_TRUE(r2.is_nan());
    } else {
      ASSERT_EQ(r1.bits, r2.bits) << to_string(a) << " " << to_string(b);
    }
  }
}

TEST_P(FormatPropertyTest, AddZeroIsIdentityForNonzero) {
  ValueGen gen(fmt(), 0x900d0003);
  const FpValue zero = make_zero(fmt());
  for (int i = 0; i < 20000; ++i) {
    const FpValue a = gen.near_exp(fmt().bias(), fmt().bias() - 1);
    FpEnv env = FpEnv::ieee();
    ASSERT_EQ(add(a, zero, env).bits, a.bits) << to_string(a);
    ASSERT_EQ(env.flags, kFlagNone);
  }
}

TEST_P(FormatPropertyTest, MulOneIsIdentity) {
  ValueGen gen(fmt(), 0x900d0004);
  const FpValue one = make_one(fmt());
  for (int i = 0; i < 20000; ++i) {
    const FpValue a = gen.uniform_bits();
    if (a.is_nan()) continue;
    FpEnv env = FpEnv::ieee();
    ASSERT_EQ(mul(a, one, env).bits, a.bits) << to_string(a);
  }
}

TEST_P(FormatPropertyTest, SubSelfIsZero) {
  ValueGen gen(fmt(), 0x900d0005);
  for (int i = 0; i < 20000; ++i) {
    const FpValue a = gen.uniform_bits();
    if (!a.is_finite()) continue;
    FpEnv env = FpEnv::ieee();
    const FpValue r = sub(a, a, env);
    ASSERT_TRUE(r.is_zero()) << to_string(a);
    ASSERT_FALSE(r.sign());
  }
}

TEST_P(FormatPropertyTest, NegationAntiCommutes) {
  // a - b == -(b - a) bit-for-bit except at exact zero (sign of zero).
  ValueGen gen(fmt(), 0x900d0006);
  for (int i = 0; i < 20000; ++i) {
    const auto [a, b] = gen.correlated_pair();
    FpEnv e1 = FpEnv::ieee();
    FpEnv e2 = FpEnv::ieee();
    const FpValue r1 = sub(a, b, e1);
    const FpValue r2 = neg(sub(b, a, e2));
    if (r1.is_zero() && r2.is_zero()) continue;
    ASSERT_EQ(r1.bits, r2.bits) << to_string(a) << " " << to_string(b);
  }
}

TEST_P(FormatPropertyTest, RoundingEnvelope) {
  // For every rounding mode, the result lies within one ulp of the nearest
  // mode's result, and directed modes bracket it.
  ValueGen gen(fmt(), 0x900d0007);
  for (int i = 0; i < 10000; ++i) {
    const auto [a, b] = gen.correlated_pair();
    FpEnv rne = FpEnv::ieee(RoundingMode::kNearestEven);
    FpEnv rtz = FpEnv::ieee(RoundingMode::kTowardZero);
    FpEnv rup = FpEnv::ieee(RoundingMode::kTowardPositive);
    FpEnv rdn = FpEnv::ieee(RoundingMode::kTowardNegative);
    const double n = to_double_exact(add(a, b, rne));
    const double z = to_double_exact(add(a, b, rtz));
    const double u = to_double_exact(add(a, b, rup));
    const double d = to_double_exact(add(a, b, rdn));
    ASSERT_LE(d, u) << to_string(a) << " " << to_string(b);
    ASSERT_GE(n, d);
    ASSERT_LE(n, z == 0 ? u : u);  // n within [d, u]
    ASSERT_LE(std::abs(z), std::max(std::abs(d), std::abs(u)));
  }
}

TEST_P(FormatPropertyTest, SqrtSquareWithinOneUlp) {
  ValueGen gen(fmt(), 0x900d0008);
  for (int i = 0; i < 10000; ++i) {
    // Positive values away from overflow: exp in middle half of the range.
    const FpValue a =
        abs(gen.near_exp(fmt().bias(), std::max(1, fmt().bias() / 2)));
    FpEnv env = FpEnv::ieee();
    const FpValue s = sqrt(a, env);
    const FpValue back = mul(s, s, env);
    const double rel = std::abs(to_double_exact(back) - to_double_exact(a));
    const double tol =
        std::abs(to_double_exact(a)) * std::ldexp(4.0, -fmt().frac_bits());
    ASSERT_LE(rel, tol) << to_string(a);
  }
}

TEST_P(FormatPropertyTest, DivMulRoundTripWithinUlps) {
  ValueGen gen(fmt(), 0x900d0009);
  for (int i = 0; i < 10000; ++i) {
    const FpValue a = gen.near_exp(fmt().bias(), fmt().bias() / 3);
    const FpValue b = gen.near_exp(fmt().bias(), fmt().bias() / 3);
    if (b.is_zero()) continue;
    FpEnv env = FpEnv::ieee();
    const FpValue q = div(a, b, env);
    const FpValue back = mul(q, b, env);
    const double rel =
        std::abs(to_double_exact(back) - to_double_exact(a));
    const double tol =
        std::abs(to_double_exact(a)) * std::ldexp(4.0, -fmt().frac_bits());
    ASSERT_LE(rel, tol) << to_string(a) << " " << to_string(b);
  }
}

TEST_P(FormatPropertyTest, ConversionThroughWiderIsLossless) {
  if (fmt() == FpFormat::binary64()) return;
  ValueGen gen(fmt(), 0x900d000a);
  for (int i = 0; i < 20000; ++i) {
    const FpValue a = gen.uniform_bits();
    if (a.is_nan()) continue;
    FpEnv env = FpEnv::ieee();
    const FpValue wide = convert(a, FpFormat::binary64(), env);
    const FpValue back = convert(wide, fmt(), env);
    ASSERT_EQ(back.bits, a.bits) << to_string(a);
    ASSERT_FALSE(env.any(kFlagInexact));
  }
}

TEST_P(FormatPropertyTest, AdditionMonotoneInFirstArgument) {
  ValueGen gen(fmt(), 0x900d000b);
  for (int i = 0; i < 10000; ++i) {
    const auto [a, c] = gen.correlated_pair();
    const FpValue b = gen.near_exp(a.biased_exp(), 3);
    FpEnv e1 = FpEnv::ieee();
    FpEnv e2 = FpEnv::ieee();
    const double fa = to_double_exact(a);
    const double fb = to_double_exact(b);
    const double r1 = to_double_exact(add(a, c, e1));
    const double r2 = to_double_exact(add(b, c, e2));
    if (fa <= fb) {
      ASSERT_LE(r1, r2) << to_string(a) << " " << to_string(b) << " "
                        << to_string(c);
    } else {
      ASSERT_GE(r1, r2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, FormatPropertyTest,
                         ::testing::Values(FpFormat::binary32(),
                                           FpFormat::binary48(),
                                           FpFormat::binary64(),
                                           FpFormat::binary16(),
                                           FpFormat::bfloat16(),
                                           FpFormat(6, 17)),
                         [](const ::testing::TestParamInfo<FpFormat>& info) {
                           std::string n = info.param.name();
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

// Host rounding-mode parity: run the host FPU in each directed mode and
// compare bit-for-bit. Volatile operands keep the compiler from folding
// operations at translation time under the default rounding mode.
class HostRoundingTest : public ::testing::TestWithParam<RoundingMode> {};

int host_mode(RoundingMode m) {
  switch (m) {
    case RoundingMode::kNearestEven: return FE_TONEAREST;
    case RoundingMode::kTowardZero: return FE_TOWARDZERO;
    case RoundingMode::kTowardPositive: return FE_UPWARD;
    case RoundingMode::kTowardNegative: return FE_DOWNWARD;
  }
  return FE_TONEAREST;
}

TEST_P(HostRoundingTest, AddMulParity) {
  const RoundingMode mode = GetParam();
  ValueGen gen(FpFormat::binary64(), 0x5eed2000 + static_cast<int>(mode));
  ASSERT_EQ(std::fesetround(host_mode(mode)), 0);
  for (int i = 0; i < 50000; ++i) {
    const auto [a, b] = gen.correlated_pair();
    volatile double va = testing::as_double(a);
    volatile double vb = testing::as_double(b);
    const double hadd = va + vb;
    const double hmul = va * vb;
    FpEnv e1 = FpEnv::ieee(mode);
    FpEnv e2 = FpEnv::ieee(mode);
    const FpValue radd = add(a, b, e1);
    const FpValue rmul = mul(a, b, e2);
    if (!testing::BitsMatchHost(radd, hadd) ||
        !testing::BitsMatchHost(rmul, hmul)) {
      std::fesetround(FE_TONEAREST);
      FAIL() << "mode=" << to_string(mode) << " a=" << to_string(a)
             << " b=" << to_string(b);
    }
  }
  std::fesetround(FE_TONEAREST);
}

INSTANTIATE_TEST_SUITE_P(AllModes, HostRoundingTest,
                         ::testing::Values(RoundingMode::kNearestEven,
                                           RoundingMode::kTowardZero,
                                           RoundingMode::kTowardPositive,
                                           RoundingMode::kTowardNegative),
                         [](const ::testing::TestParamInfo<RoundingMode>& i) {
                           std::string n = to_string(i.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace flopsim::fp
