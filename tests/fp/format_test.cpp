#include "fp/format.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace flopsim::fp {
namespace {

TEST(Format, Binary32Fields) {
  const FpFormat f = FpFormat::binary32();
  EXPECT_EQ(f.exp_bits(), 8);
  EXPECT_EQ(f.frac_bits(), 23);
  EXPECT_EQ(f.total_bits(), 32);
  EXPECT_EQ(f.sig_bits(), 24);
  EXPECT_EQ(f.bias(), 127);
  EXPECT_EQ(f.max_biased_exp(), 255);
  EXPECT_EQ(f.max_finite_exp(), 254);
  EXPECT_EQ(f.frac_mask(), 0x007fffffu);
  EXPECT_EQ(f.exp_mask(), 0x7f800000u);
  EXPECT_EQ(f.sign_mask(), 0x80000000u);
  EXPECT_EQ(f.bits_mask(), 0xffffffffu);
  EXPECT_EQ(f.quiet_bit(), 0x00400000u);
}

TEST(Format, Binary64Fields) {
  const FpFormat f = FpFormat::binary64();
  EXPECT_EQ(f.total_bits(), 64);
  EXPECT_EQ(f.bias(), 1023);
  EXPECT_EQ(f.max_biased_exp(), 2047);
  EXPECT_EQ(f.sign_mask(), 0x8000000000000000ull);
  EXPECT_EQ(f.exp_mask(), 0x7ff0000000000000ull);
  EXPECT_EQ(f.frac_mask(), 0x000fffffffffffffull);
}

TEST(Format, Binary48Fields) {
  // The paper's middle precision: binary64 exponent range, 36-bit fraction.
  const FpFormat f = FpFormat::binary48();
  EXPECT_EQ(f.total_bits(), 48);
  EXPECT_EQ(f.exp_bits(), 11);
  EXPECT_EQ(f.frac_bits(), 36);
  EXPECT_EQ(f.bias(), 1023);
}

TEST(Format, SmallPresets) {
  EXPECT_EQ(FpFormat::binary16().total_bits(), 16);
  EXPECT_EQ(FpFormat::binary16().bias(), 15);
  EXPECT_EQ(FpFormat::bfloat16().total_bits(), 16);
  EXPECT_EQ(FpFormat::bfloat16().bias(), 127);
}

TEST(Format, CustomAccepted) {
  const FpFormat f(6, 17);
  EXPECT_EQ(f.total_bits(), 24);
  EXPECT_EQ(f.bias(), 31);
}

TEST(Format, InvalidRejected) {
  EXPECT_THROW(FpFormat(1, 10), std::invalid_argument);   // exp too small
  EXPECT_THROW(FpFormat(16, 10), std::invalid_argument);  // exp too large
  EXPECT_THROW(FpFormat(8, 0), std::invalid_argument);    // no fraction
  EXPECT_THROW(FpFormat(8, 53), std::invalid_argument);   // frac too large
  EXPECT_THROW(FpFormat(15, 52), std::invalid_argument);  // total > 64
}

TEST(Format, Equality) {
  EXPECT_EQ(FpFormat::binary32(), FpFormat(8, 23));
  EXPECT_NE(FpFormat::binary32(), FpFormat::bfloat16());
  EXPECT_NE(FpFormat(8, 23), FpFormat(8, 24));
}

TEST(Format, Names) {
  EXPECT_EQ(FpFormat::binary32().name(), "binary32");
  EXPECT_EQ(FpFormat::binary48().name(), "binary48");
  EXPECT_EQ(FpFormat::binary64().name(), "binary64");
  EXPECT_EQ(FpFormat(6, 17).name(), "fp<e6,f17>");
}

}  // namespace
}  // namespace flopsim::fp
