// next_up / next_down / ulp.
#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace flopsim::fp {
namespace {

using testing::as_double;
using testing::as_float;
using testing::f32;
using testing::f64;

TEST(NextAfter, MatchesHostNextafter32) {
  testing::ValueGen gen(FpFormat::binary32(), 0x0a1);
  for (int i = 0; i < 100000; ++i) {
    const FpValue a = gen.uniform_bits();
    if (a.is_nan()) continue;
    const FpValue up = next_up(a);
    const FpValue dn = next_down(a);
    const float host_up =
        std::nextafterf(as_float(a), std::numeric_limits<float>::infinity());
    const float host_dn =
        std::nextafterf(as_float(a), -std::numeric_limits<float>::infinity());
    if (!a.is_inf()) {
      ASSERT_TRUE(testing::BitsMatchHost(up, host_up)) << to_string(a);
      ASSERT_TRUE(testing::BitsMatchHost(dn, host_dn)) << to_string(a);
    }
  }
}

TEST(NextAfter, MatchesHostNextafter64) {
  testing::ValueGen gen(FpFormat::binary64(), 0x0a2);
  for (int i = 0; i < 100000; ++i) {
    const FpValue a = gen.uniform_bits();
    if (a.is_nan() || a.is_inf()) continue;
    ASSERT_TRUE(testing::BitsMatchHost(
        next_up(a),
        std::nextafter(as_double(a),
                       std::numeric_limits<double>::infinity())))
        << to_string(a);
  }
}

TEST(NextAfter, EdgeCases) {
  const FpFormat fmt = FpFormat::binary32();
  // +inf saturates up; steps down to max finite.
  EXPECT_TRUE(next_up(make_inf(fmt)).is_inf());
  EXPECT_EQ(next_down(make_inf(fmt)).bits, make_max_finite(fmt).bits);
  // -0 steps up to the smallest positive subnormal.
  EXPECT_EQ(next_up(make_zero(fmt, true)).bits, 1u);
  EXPECT_EQ(next_up(make_zero(fmt, false)).bits, 1u);
  // Largest subnormal steps up into the normals.
  const FpValue max_sub(fmt.frac_mask(), fmt);
  EXPECT_EQ(next_up(max_sub).bits, make_min_normal(fmt).bits);
  // NaN passes through.
  EXPECT_TRUE(next_up(make_qnan(fmt)).is_nan());
  // Round trip.
  EXPECT_EQ(next_down(next_up(f32(1.5f))).bits, f32(1.5f).bits);
}

TEST(NextAfter, UlpAgainstDefinition) {
  // ulp(v) == next_up(|v|) - |v| for finite non-max values.
  testing::ValueGen gen(FpFormat::binary48(), 0x0a3);
  for (int i = 0; i < 50000; ++i) {
    const FpValue a = gen.uniform_bits();
    if (a.is_nan() || a.is_inf()) continue;
    const FpValue mag = abs(a);
    if (mag.bits == make_max_finite(FpFormat::binary48()).bits) continue;
    FpEnv env = FpEnv::ieee();
    const FpValue diff = sub(next_up(mag), mag, env);
    ASSERT_EQ(ulp(a).bits, diff.bits) << to_string(a);
    ASSERT_FALSE(env.any(kFlagInexact));  // ulp is exactly representable
  }
}

TEST(NextAfter, UlpKnownValues) {
  EXPECT_EQ(testing::as_float(ulp(f32(1.0f))), 0x1p-23f);
  EXPECT_EQ(testing::as_float(ulp(f32(-2.0f))), 0x1p-22f);
  EXPECT_EQ(ulp(make_zero(FpFormat::binary32())).bits, 1u);
  EXPECT_TRUE(ulp(make_inf(FpFormat::binary32())).is_inf());
  EXPECT_TRUE(ulp(make_qnan(FpFormat::binary32())).is_inf());
  // Values just above the normal threshold: spacing is subnormal-sized.
  const FpValue just_normal = make_min_normal(FpFormat::binary32());
  EXPECT_EQ(ulp(just_normal).bits, 1u);
  // A value whose binade spacing lands in the subnormal range.
  const FpValue small = compose(FpFormat::binary32(), false, 5, 0);  // 2^-122
  const FpValue u = ulp(small);
  EXPECT_TRUE(u.is_subnormal());
  EXPECT_EQ(to_double_exact(u), std::ldexp(1.0, 5 - 127 - 23));
}

}  // namespace
}  // namespace flopsim::fp
