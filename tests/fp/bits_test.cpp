#include "fp/bits.hpp"

#include <gtest/gtest.h>

#include <random>

namespace flopsim::fp {
namespace {

TEST(Bits, Mask64) {
  EXPECT_EQ(mask64(0), 0u);
  EXPECT_EQ(mask64(1), 1u);
  EXPECT_EQ(mask64(8), 0xffu);
  EXPECT_EQ(mask64(63), 0x7fffffffffffffffull);
  EXPECT_EQ(mask64(64), ~u64{0});
}

TEST(Bits, Mask128) {
  EXPECT_EQ(mask128(0), u128{0});
  EXPECT_EQ(static_cast<u64>(mask128(64)), ~u64{0});
  EXPECT_EQ(mask128(128), ~u128{0});
  EXPECT_EQ(static_cast<u64>(mask128(65) >> 64), 1u);
}

TEST(Bits, Clz64) {
  EXPECT_EQ(clz64(0), 64);
  EXPECT_EQ(clz64(1), 63);
  EXPECT_EQ(clz64(u64{1} << 63), 0);
  EXPECT_EQ(clz64(0xff), 56);
}

TEST(Bits, Clz128) {
  EXPECT_EQ(clz128(0), 128);
  EXPECT_EQ(clz128(1), 127);
  EXPECT_EQ(clz128(u128{1} << 64), 63);
  EXPECT_EQ(clz128(u128{1} << 127), 0);
}

TEST(Bits, MsbIndex) {
  EXPECT_EQ(msb_index64(1), 0);
  EXPECT_EQ(msb_index64(2), 1);
  EXPECT_EQ(msb_index64(0x80), 7);
  EXPECT_EQ(msb_index64(~u64{0}), 63);
}

TEST(Bits, ShiftRightJam64Basics) {
  EXPECT_EQ(shift_right_jam64(0b1000, 3), 0b1u);
  // A dropped one-bit must stick.
  EXPECT_EQ(shift_right_jam64(0b1001, 3), 0b1u | 1u);
  EXPECT_EQ(shift_right_jam64(0b1000, 4), 1u);  // fully shifted out, nonzero
  EXPECT_EQ(shift_right_jam64(0, 17), 0u);
  EXPECT_EQ(shift_right_jam64(42, 0), 42u);
  EXPECT_EQ(shift_right_jam64(42, -3), 42u);  // negative dist is a no-op
  EXPECT_EQ(shift_right_jam64(1, 64), 1u);
  EXPECT_EQ(shift_right_jam64(1, 200), 1u);
}

TEST(Bits, ShiftRightJamPreservesNonzeroness) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const u64 x = rng();
    const int d = static_cast<int>(rng() % 80);
    const u64 r = shift_right_jam64(x, d);
    EXPECT_EQ(r != 0, x != 0);
    // Jam only perturbs bit 0: the upper bits equal the plain shift.
    if (d < 64) {
      EXPECT_EQ(r >> 1, (x >> d) >> 1);
    }
  }
}

TEST(Bits, ShiftRightJam128MatchesNarrow) {
  std::mt19937_64 rng(8);
  for (int i = 0; i < 10000; ++i) {
    const u64 x = rng();
    const int d = static_cast<int>(rng() % 70);
    EXPECT_EQ(static_cast<u64>(shift_right_jam128(x, d)),
              shift_right_jam64(x, d));
  }
}

TEST(Bits, Isqrt128Exact) {
  for (u64 r : {u64{0}, u64{1}, u64{2}, u64{3}, u64{255}, u64{65536},
                u64{0xffffffff}, u64{1} << 50}) {
    const auto s = isqrt128(static_cast<u128>(r) * r);
    EXPECT_EQ(s.root, r);
    EXPECT_TRUE(s.exact);
  }
}

TEST(Bits, Isqrt128Floor) {
  std::mt19937_64 rng(9);
  for (int i = 0; i < 2000; ++i) {
    const u128 x = (static_cast<u128>(rng()) << 49) ^ rng();
    const auto s = isqrt128(x);
    const u128 r = s.root;
    EXPECT_LE(r * r, x);
    EXPECT_GT((r + 1) * (r + 1), x);
    EXPECT_EQ(s.exact, r * r == x);
  }
}

TEST(Bits, Isqrt128NonSquaresInexact) {
  EXPECT_FALSE(isqrt128(2).exact);
  EXPECT_FALSE(isqrt128(3).exact);
  EXPECT_EQ(isqrt128(3).root, 1u);
  EXPECT_EQ(isqrt128(8).root, 2u);
}

TEST(Bits, ReverseBits) {
  EXPECT_EQ(reverse_bits64(0b001, 3), 0b100u);
  EXPECT_EQ(reverse_bits64(0b110, 3), 0b011u);
  EXPECT_EQ(reverse_bits64(0x1, 1), 0x1u);
  std::mt19937_64 rng(10);
  for (int i = 0; i < 1000; ++i) {
    const u64 x = rng() & mask64(17);
    EXPECT_EQ(reverse_bits64(reverse_bits64(x, 17), 17), x);
  }
}

TEST(Bits, Popcount) {
  EXPECT_EQ(popcount64(0), 0);
  EXPECT_EQ(popcount64(0xff), 8);
  EXPECT_EQ(popcount64(~u64{0}), 64);
}

}  // namespace
}  // namespace flopsim::fp
