// Reporter goldens: the text and JSON-lines renderings are CI artifacts,
// so their exact shape is pinned here byte-for-byte.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.hpp"
#include "lint/report.hpp"
#include "fixtures.hpp"

namespace flopsim::lint {
namespace {

Finding piece_level() {
  Finding f;
  f.rule = "DL101";
  f.severity = Severity::kError;
  f.subject = "fp_add<binary32>/s3";
  f.piece = 4;
  f.piece_name = "align_l2";
  f.lane = 9;
  f.message = "reads lane 9 before any piece (or the input contract) wrote it";
  return f;
}

Finding boundary_level() {
  Finding f;
  f.rule = "DL306";
  f.severity = Severity::kError;
  f.subject = "toy";
  f.boundary = 2;
  f.message = "claimed \"7\" \\ bits";  // exercises JSON escaping
  return f;
}

Finding note_level() {
  Finding f;
  f.rule = "DL105";
  f.severity = Severity::kNote;
  f.subject = "toy";
  f.piece = 0;
  f.piece_name = "pad";
  f.message = "accesses no lanes (timing/area placeholder)";
  return f;
}

Report golden_report() {
  Report r;
  r.add(piece_level());
  r.add(boundary_level());
  r.add(note_level());
  return r;
}

TEST(LintReport, FormatFindingGolden) {
  EXPECT_EQ(format_finding(piece_level()),
            "fp_add<binary32>/s3: piece 4 'align_l2' lane 9 error [DL101]: "
            "reads lane 9 before any piece (or the input contract) wrote it");
  EXPECT_EQ(format_finding(boundary_level()),
            "toy: boundary 2 error [DL306]: claimed \"7\" \\ bits");
}

TEST(LintReport, WriteTextGolden) {
  std::ostringstream os;
  write_text(os, golden_report());
  EXPECT_EQ(os.str(),
            "fp_add<binary32>/s3: piece 4 'align_l2' lane 9 error [DL101]: "
            "reads lane 9 before any piece (or the input contract) wrote it\n"
            "toy: boundary 2 error [DL306]: claimed \"7\" \\ bits\n"
            "2 findings: 2 errors, 0 warnings\n");
}

TEST(LintReport, WriteTextSingularSummary) {
  Report r;
  Finding f = piece_level();
  f.severity = Severity::kWarning;
  r.add(f);
  std::ostringstream os;
  write_text(os, r);
  EXPECT_NE(os.str().find("1 finding: 0 errors, 1 warning\n"),
            std::string::npos);
}

// The absint coverage line only appears once the engine analyzed a
// subject, so probe-only reports keep the exact pre-absint shape pinned
// above.
TEST(LintReport, WriteTextAbsintSummaryGolden) {
  Report r;
  r.absint_subjects = 2;
  r.absint_boundaries = 46;
  r.absint_exact = 8;
  r.absint_checks = 13296;
  std::ostringstream os;
  write_text(os, r);
  EXPECT_EQ(os.str(),
            "0 findings: 0 errors, 0 warnings\n"
            "absint: 2 subjects analyzed, 46 boundaries bounded (8 exact), "
            "13296 containment checks\n");
}

TEST(LintReport, WriteJsonlAbsintCountersInSummary) {
  Report r;
  r.absint_subjects = 1;
  r.absint_boundaries = 23;
  r.absint_exact = 4;
  r.absint_checks = 6648;
  std::ostringstream os;
  write_jsonl(os, r);
  EXPECT_EQ(os.str(),
            "{\"summary\": true, \"findings\": 0, \"errors\": 0, "
            "\"warnings\": 0, \"absint_subjects\": 1, \"absint_boundaries\": "
            "23, \"absint_exact\": 4, \"absint_checks\": 6648}\n");
}

TEST(LintReport, WriteJsonlGolden) {
  std::ostringstream os;
  const int lines = write_jsonl(os, golden_report());
  EXPECT_EQ(lines, 3);  // two findings + the summary; the note is filtered
  EXPECT_EQ(
      os.str(),
      "{\"rule\": \"DL101\", \"severity\": \"error\", \"subject\": "
      "\"fp_add<binary32>/s3\", \"piece\": 4, \"piece_name\": \"align_l2\", "
      "\"lane\": 9, \"boundary\": -1, \"message\": \"reads lane 9 before any "
      "piece (or the input contract) wrote it\"}\n"
      "{\"rule\": \"DL306\", \"severity\": \"error\", \"subject\": \"toy\", "
      "\"piece\": -1, \"piece_name\": \"\", \"lane\": -1, \"boundary\": 2, "
      "\"message\": \"claimed \\\"7\\\" \\\\ bits\"}\n"
      "{\"summary\": true, \"findings\": 3, \"errors\": 2, \"warnings\": "
      "0}\n");
}

TEST(LintReport, WriteJsonlIncludesNotesOnRequest) {
  std::ostringstream os;
  const int lines = write_jsonl(os, golden_report(), /*include_notes=*/true);
  EXPECT_EQ(lines, 4);
  EXPECT_NE(os.str().find("\"severity\": \"note\""), std::string::npos);
}

// An end-to-end report from a seeded defect stays one-object-per-line and
// closes with the summary object.
TEST(LintReport, JsonlLinesAreWellFormedForEngineOutput) {
  rtl::PieceChain chain = testing::toy_chain();
  chain[1].eval = [](rtl::SignalSet& s) { s[3] = s[2] ^ s[5]; };
  const Report report = lint_chain(chain, testing::toy_contract());
  ASSERT_FALSE(report.findings.empty());

  std::ostringstream os;
  write_jsonl(os, report);
  std::istringstream in(os.str());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), report.findings.size() + 1);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_NE(lines.back().find("\"summary\": true"), std::string::npos);
}

}  // namespace
}  // namespace flopsim::lint
