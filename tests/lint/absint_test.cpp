// The abstract-interpretation engine, tested at every layer: the
// known-bits x interval domain, the per-op transfer functions, the
// widening fixpoint solver, each DL4xx rule on a seeded defect, and the
// probe-vs-absint sandwich over the real unit zoo.
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/sweep.hpp"
#include "lint/absint.hpp"
#include "lint/lint.hpp"
#include "lint/report.hpp"
#include "units/converter_unit.hpp"
#include "units/fp_unit.hpp"
#include "fixtures.hpp"

namespace flopsim::lint {
namespace {

namespace sm = rtl::sem;
using fp::u64;

std::string rendered(const Report& r) {
  std::ostringstream os;
  write_text(os, r, /*include_notes=*/true);
  return os.str();
}

// --- the domain -----------------------------------------------------------

TEST(AbsVal, ConstantIsExact) {
  const AbsVal v = AbsVal::constant(42);
  EXPECT_TRUE(v.is_constant());
  EXPECT_EQ(v.constant_value(), 42u);
  EXPECT_TRUE(v.contains(42));
  EXPECT_FALSE(v.contains(43));
  EXPECT_EQ(v.width_bound(), 6);
}

TEST(AbsVal, AnyBoundsWidth) {
  const AbsVal v = AbsVal::any(8);
  EXPECT_TRUE(v.contains(0));
  EXPECT_TRUE(v.contains(255));
  EXPECT_FALSE(v.contains(256));
  EXPECT_EQ(v.width_bound(), 8);
  EXPECT_EQ(v.possible_bits(), 0xFFu);
}

TEST(AbsVal, AnyZeroWidthIsConstantZero) {
  const AbsVal v = AbsVal::any(0);
  EXPECT_TRUE(v.is_constant());
  EXPECT_EQ(v.constant_value(), 0u);
}

TEST(AbsVal, AnySignedCoversTwosComplementRange) {
  const AbsVal v = AbsVal::any_signed(8);
  EXPECT_EQ(v.lo, -128);
  EXPECT_EQ(v.hi, 127);
  EXPECT_EQ(v.width_bound(), 8);
}

TEST(AbsVal, JoinContainsBothOperands) {
  const AbsVal j = absval_join(AbsVal::constant(3), AbsVal::constant(5));
  EXPECT_TRUE(j.contains(3));
  EXPECT_TRUE(j.contains(5));
  // Bits where the two constants agree stay known: 3 = 011, 5 = 101.
  EXPECT_EQ(j.kmask & 1u, 1u);
  EXPECT_EQ(j.kval & 1u, 1u);
}

TEST(AbsVal, WidenIsAnUpperBoundAndStabilizes) {
  AbsVal prev = AbsVal::constant(1);
  AbsVal grown = absval_join(prev, AbsVal::constant(100));
  AbsVal w = absval_widen(prev, grown);
  EXPECT_TRUE(w.contains(1));
  EXPECT_TRUE(w.contains(100));
  // A second widening against a value the first already covers must be a
  // no-op — that is what makes the fixpoint terminate.
  const AbsVal w2 = absval_widen(w, absval_join(w, AbsVal::constant(100)));
  EXPECT_TRUE(w2 == w);
}

// --- transfer functions ---------------------------------------------------

AbsState entry_state() {
  AbsState s;
  s.reachable = true;
  s.lane[0] = AbsVal::any(8);
  s.lane[1] = AbsVal::any(8);
  return s;
}

TEST(AbsintTransfer, AddPropagatesCarryWidth) {
  AbsState s = entry_state();
  absint_transfer(sm::add(2, 0, 1), s);
  EXPECT_TRUE(s.lane[2].defined);
  EXPECT_LE(s.lane[2].width_bound(), 9);
  EXPECT_TRUE(s.lane[2].contains(255 + 255));
}

TEST(AbsintTransfer, ConstantsFoldThroughShifts) {
  AbsState s = entry_state();
  absint_transfer(sm::cst(2, 0x3), s);
  absint_transfer(sm::shl(2, 2, 4), s);
  EXPECT_TRUE(s.lane[2].is_constant());
  EXPECT_EQ(s.lane[2].constant_value(), 0x30u);
}

TEST(AbsintTransfer, BandMasksPossibleBits) {
  AbsState s = entry_state();
  absint_transfer(sm::band(2, 0, 0xF0), s);
  EXPECT_EQ(s.lane[2].possible_bits() & ~u64{0xF0}, 0u);
  EXPECT_EQ(s.lane[2].width_bound(), 8);
}

TEST(AbsintTransfer, UndecidedSelectJoinsBothArms) {
  AbsState s = entry_state();
  absint_transfer(sm::cst(2, 5), s);
  absint_transfer(sm::cst(3, 9), s);
  absint_transfer(sm::havoc(4, 1), s);  // the undecidable condition
  absint_transfer(sm::select(5, 4, 0, 2, 3), s);
  EXPECT_TRUE(s.lane[5].contains(5));
  EXPECT_TRUE(s.lane[5].contains(9));
}

TEST(AbsintTransfer, HavocKillsKnowledge) {
  AbsState s = entry_state();
  absint_transfer(sm::cst(2, 7), s);
  absint_transfer(sm::havoc(2, 12), s);
  EXPECT_FALSE(s.lane[2].is_constant());
  EXPECT_EQ(s.lane[2].width_bound(), 12);
}

// --- the fixpoint solver --------------------------------------------------

TEST(AbsintSolve, LinearChainConvergesInOnePass) {
  AbsProgram prog;
  prog.nodes.resize(2);
  prog.nodes[0].ops = {sm::add(1, 0, 0)};
  prog.nodes[0].succ = {1};
  prog.nodes[1].ops = {sm::band(2, 1, 0x1F)};

  AbsState entry;
  entry.reachable = true;
  entry.lane[0] = AbsVal::any(8);
  const SolveResult r = absint_solve(prog, entry);
  ASSERT_EQ(r.out.size(), 2u);
  EXPECT_LE(r.out[0].lane[1].width_bound(), 9);
  EXPECT_LE(r.out[1].lane[2].width_bound(), 5);
  EXPECT_LE(r.iterations, 4);
}

TEST(AbsintSolve, LoopWithUnboundedCounterTerminatesViaWidening) {
  // node 0 -> node 1 -> node 0: lane 0 grows by 1 each trip, so without
  // widening the interval climbs forever.
  AbsProgram prog;
  prog.nodes.resize(2);
  prog.nodes[0].ops = {sm::addi(0, 0, 1)};
  prog.nodes[0].succ = {1};
  prog.nodes[1].ops = {sm::nop()};
  prog.nodes[1].succ = {0};

  AbsState entry;
  entry.reachable = true;
  entry.lane[0] = AbsVal::constant(0);
  const SolveResult r = absint_solve(prog, entry);
  EXPECT_LT(r.iterations, 1000) << "widening failed to force convergence";
  EXPECT_TRUE(r.out[0].lane[0].defined);
  EXPECT_TRUE(r.out[0].lane[0].contains(1000));  // widened past any finite run
}

// --- seeded defects, one per DL4xx rule -----------------------------------

// A fully annotated three-piece chain whose declarations all hold:
//   sum:   lane2 = lane0 + lane1   (16-bit inputs, 17-bit result)
//   twist: lane3 = lane2 & 0xFF
//   pack:  lane0 = lane3 + 1
rtl::PieceChain annotated_chain() {
  rtl::PieceChain chain;

  rtl::Piece sum;
  sum.name = "sum";
  sum.group = "front";
  sum.delay_ns = 1.0;
  sum.area.slices = 8;
  // The backward demand pass is bit-granular: twist only observes the low
  // byte of lane 2, so only 8 of the 17 sum bits need flops here.
  sum.live_bits = 8;
  sum.sem = {sm::read(0), sm::read(1), sm::add(2, 0, 1)};
  sum.eval = [](rtl::SignalSet& s) { s[2] = s[0] + s[1]; };
  chain.push_back(sum);

  rtl::Piece twist;
  twist.name = "twist";
  twist.group = "mid";
  twist.delay_ns = 1.2;
  twist.area.slices = 6;
  twist.live_bits = 8;
  twist.sem = {sm::band(3, 2, 0xFF)};
  twist.eval = [](rtl::SignalSet& s) { s[3] = s[2] & 0xFF; };
  chain.push_back(twist);

  rtl::Piece pack;
  pack.name = "pack";
  pack.group = "mid";
  pack.delay_ns = 0.9;
  pack.area.slices = 4;
  pack.live_bits = 9;
  pack.sem = {sm::addi(0, 3, 1)};
  pack.eval = [](rtl::SignalSet& s) { s[0] = s[3] + 1; };
  chain.push_back(pack);

  return chain;
}

ChainContract annotated_contract() {
  ChainContract contract = testing::toy_contract();
  contract.input_widths = {16, 16};
  // Saturating stimuli drive the probe witness up to the proven bound, so
  // the sandwich collapses to exact on the internal boundaries.
  rtl::SignalSet maxed;
  maxed[0] = 0xFFFF;
  maxed[1] = 0xFFFF;
  contract.stimuli.push_back(maxed);
  return contract;
}

TEST(AbsintRules, CleanAnnotatedChainSandwichesExactly) {
  Options opts;
  ChainAbsint absint;
  const Report r =
      lint_chain(annotated_chain(), annotated_contract(), opts, &absint);
  EXPECT_TRUE(r.findings.empty()) << rendered(r);
  ASSERT_TRUE(absint.annotated);
  ASSERT_EQ(absint.boundaries.size(), 3u);
  EXPECT_TRUE(absint.boundaries[0].exact());
  EXPECT_EQ(absint.boundaries[0].upper, 8);  // demand-masked, not 17
  EXPECT_TRUE(absint.boundaries[1].exact());
  EXPECT_EQ(absint.boundaries[1].upper, 8);
  EXPECT_EQ(r.absint_subjects, 1);
  EXPECT_EQ(r.absint_boundaries, 3);
  EXPECT_GE(r.absint_exact, 2);
  EXPECT_GT(r.absint_checks, 0);
}

TEST(AbsintRules, DL400AnnotationThatUnderapproximatesItsEval) {
  rtl::PieceChain chain = annotated_chain();
  // The sem claims a 4-bit mask but the eval keeps 8 bits: concrete
  // replay must escape the abstract state.
  chain[1].sem = {sm::band(3, 2, 0xF)};
  const Report r = lint_chain(chain, annotated_contract());
  const auto hits = r.with_rule("DL400");
  ASSERT_GE(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].severity, Severity::kError);
  EXPECT_EQ(hits[0].lane, 3);
}

TEST(AbsintRules, DL401UnderdeclarationAtAnExactBoundaryIsProvable) {
  rtl::PieceChain chain = annotated_chain();
  // 4 declared vs. 8 proven: within the DL201 probe tolerance, but the
  // sandwich is exact here so the tolerance is dropped.
  chain[1].live_bits = 4;
  const Report r = lint_chain(chain, annotated_contract());
  const auto hits = r.with_rule("DL401");
  ASSERT_EQ(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].severity, Severity::kError);
  EXPECT_EQ(hits[0].boundary, 1);
  EXPECT_TRUE(r.with_rule("DL201").empty()) << rendered(r);
}

TEST(AbsintRules, DL402ProvenConstantPieceKeptByTheBackend) {
  rtl::PieceChain chain = annotated_chain();
  chain[1].sem = {sm::cst(3, 7)};
  chain[1].eval = [](rtl::SignalSet& s) { s[3] = 7; };
  chain[1].live_bits = 3;
  chain[2].live_bits = 4;
  ChainAbsint absint;
  Options opts;
  const Report lint = lint_chain(chain, annotated_contract(), opts, &absint);
  EXPECT_TRUE(lint.clean()) << rendered(lint);
  ASSERT_TRUE(absint.piece_constant[1]);

  const Report r =
      crosscheck_compiled(chain, absint, {0, 0, 0}, "toy");
  const auto hits = r.with_rule("DL402");
  ASSERT_GE(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].piece, 1);
}

TEST(AbsintRules, DL403LaneDemandedByNoAnnotationIsProvablyDead) {
  rtl::PieceChain chain = annotated_chain();
  // Lane 4 is written upstream and genuinely read downstream (twist's
  // write depends on its prior contents, which the perturbation probe
  // detects), but no sem op demands a single bit of it — the same shape
  // as the sqrt unit's dead low radicand lane.
  chain[0].sem.push_back(sm::havoc(4, 0));
  chain[0].eval = [](rtl::SignalSet& s) {
    s[2] = s[0] + s[1];
    s[4] = s[0] & 0;
  };
  chain[1].sem.push_back(sm::havoc(4, 0));
  chain[1].eval = [](rtl::SignalSet& s) {
    s[3] = s[2] & 0xFF;
    s[4] = s[4] << 1;
  };
  const Report r = lint_chain(chain, annotated_contract());
  const auto hits = r.with_rule("DL403");
  ASSERT_GE(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
  EXPECT_EQ(hits[0].lane, 4);
}

TEST(AbsintRules, DL404PruneThatLeansOnTheStimulusBattery) {
  ChainAbsint absint;
  Options opts;
  const rtl::PieceChain chain = annotated_chain();
  lint_chain(chain, annotated_contract(), opts, &absint);
  ASSERT_TRUE(absint.annotated);

  // The backend claims it pruned "twist", but the annotations still
  // demand its write (lane 3 feeds pack).
  const Report r =
      crosscheck_compiled(chain, absint, {0, 2, 0}, "toy");
  const auto hits = r.with_rule("DL404");
  ASSERT_EQ(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].piece, 1);
}

TEST(AbsintRules, DL405ReachableCarryOutOfDeclaredPhysicalWidth) {
  rtl::PieceChain chain = annotated_chain();
  // A 16-bit physical adder fed two full 16-bit operands: the carry out
  // is reachable and truncated.
  chain[0].sem = {sm::read(0), sm::read(1), sm::add(2, 0, 1, 16)};
  chain[0].eval = [](rtl::SignalSet& s) { s[2] = (s[0] + s[1]) & 0xFFFF; };
  chain[0].live_bits = 16;
  const Report r = lint_chain(chain, annotated_contract());
  const auto hits = r.with_rule("DL405");
  ASSERT_GE(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
  EXPECT_EQ(hits[0].piece, 0);
  EXPECT_EQ(hits[0].lane, 2);
}

// --- the zoo sandwich -----------------------------------------------------

// Every shipped unit is fully annotated: the engine must prove a width
// bound at every cut boundary (absint_boundaries > 0 with no probe-only
// fallback), and replay containment must actually have run.
TEST(AbsintZoo, SandwichCoversEveryUnit) {
  static constexpr units::UnitKind kKinds[] = {
      units::UnitKind::kAdder, units::UnitKind::kMultiplier,
      units::UnitKind::kDivider, units::UnitKind::kSqrt,
      units::UnitKind::kMac};
  Options opts;
  opts.vectors = 8;
  for (units::UnitKind kind : kKinds) {
    for (const fp::FpFormat& fmt : analysis::paper_formats()) {
      units::UnitConfig cfg;
      cfg.stages = 1;
      const units::FpUnit unit(kind, fmt, cfg);
      const Report r = lint_unit(unit, opts);
      EXPECT_EQ(r.absint_subjects, 1) << unit.name() << ": a piece lost its "
                                      << "annotation (probe-only fallback)";
      EXPECT_GT(r.absint_boundaries, 0) << unit.name();
      EXPECT_GT(r.absint_checks, 0) << unit.name();
      EXPECT_TRUE(r.clean()) << unit.name() << "\n" << rendered(r);
    }
  }
}

TEST(AbsintZoo, SandwichCoversEveryConverterPair) {
  Options opts;
  opts.vectors = 8;
  for (const fp::FpFormat& src : analysis::paper_formats()) {
    for (const fp::FpFormat& dst : analysis::paper_formats()) {
      if (src.total_bits() == dst.total_bits()) continue;
      units::UnitConfig cfg;
      cfg.stages = 1;
      const units::FormatConverter cvt(src, dst, cfg);
      const Report r = lint_converter(cvt, opts);
      EXPECT_EQ(r.absint_subjects, 1) << cvt.name();
      EXPECT_GT(r.absint_boundaries, 0) << cvt.name();
      EXPECT_TRUE(r.clean()) << cvt.name() << "\n" << rendered(r);
    }
  }
}

// Differential check: the proven upper bounds are a property of the chain,
// not of the stimulus battery — two disjoint batteries must agree on every
// upper bound, and each battery's witnesses must sit inside it.
TEST(AbsintZoo, UpperBoundsAreStimulusIndependent) {
  units::UnitConfig cfg;
  cfg.stages = 1;
  const units::FpUnit unit(units::UnitKind::kAdder, fp::FpFormat::binary32(),
                           cfg);
  Options a;
  a.vectors = 8;
  a.seed = 1;
  Options b;
  b.vectors = 16;
  b.seed = 99;
  const Report rep_a = lint_unit(unit, a);
  const Report rep_b = lint_unit(unit, b);
  EXPECT_EQ(rep_a.absint_boundaries, rep_b.absint_boundaries);
  EXPECT_TRUE(rep_a.clean()) << rendered(rep_a);
  EXPECT_TRUE(rep_b.clean()) << rendered(rep_b);
}

}  // namespace
}  // namespace flopsim::lint
