// Every lint rule, demonstrated both ways: the clean toy chain produces no
// findings, and a per-rule seeded defect makes exactly that rule fire.
#include <sstream>

#include <gtest/gtest.h>

#include "lint/lint.hpp"
#include "lint/report.hpp"
#include "rtl/pipeline.hpp"
#include "fixtures.hpp"

namespace flopsim::lint {
namespace {

using testing::toy_chain;
using testing::toy_contract;

std::string rendered(const Report& r) {
  std::ostringstream os;
  write_text(os, r, /*include_notes=*/true);
  return os.str();
}

// --- registry -------------------------------------------------------------

TEST(LintRegistry, RuleIdsAreUniqueAndOrdered) {
  const std::vector<RuleInfo>& rules = rule_registry();
  ASSERT_FALSE(rules.empty());
  for (std::size_t i = 1; i < rules.size(); ++i) {
    EXPECT_LT(std::string(rules[i - 1].id), std::string(rules[i].id));
  }
}

TEST(LintRegistry, FindRuleRoundTrips) {
  for (const RuleInfo& r : rule_registry()) {
    const RuleInfo* found = find_rule(r.id);
    ASSERT_NE(found, nullptr) << r.id;
    EXPECT_EQ(found->severity, r.severity);
  }
  EXPECT_EQ(find_rule("DL999"), nullptr);
}

// --- the clean baseline ---------------------------------------------------

TEST(LintChain, CleanChainHasNoFindings) {
  const Report r = lint_chain(toy_chain(), toy_contract());
  EXPECT_TRUE(r.findings.empty()) << rendered(r);
}

TEST(LintPlan, CleanPlanHasNoFindings) {
  const rtl::PieceChain chain = toy_chain();
  const rtl::PipelinePlan plan = rtl::plan_pipeline(chain, 2);
  const Report r = lint_plan(chain, plan, device::TechModel::virtex2pro7(),
                             device::Objective::kArea, "toy");
  EXPECT_TRUE(r.findings.empty()) << rendered(r);
}

// --- DL0xx structural -----------------------------------------------------

TEST(LintRules, DL001NegativeDelay) {
  rtl::PieceChain chain = toy_chain();
  chain[1].delay_ns = -0.5;
  const Report r = lint_chain(chain, toy_contract());
  const auto hits = r.with_rule("DL001");
  ASSERT_EQ(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].severity, Severity::kError);
  EXPECT_EQ(hits[0].piece, 1);
  EXPECT_EQ(hits[0].piece_name, "twist");
}

TEST(LintRules, DL002ChainedDiscountExceedsDelay) {
  rtl::PieceChain chain = toy_chain();
  chain[2].delay_chained_ns = chain[2].delay_ns + 1.0;
  const Report r = lint_chain(chain, toy_contract());
  ASSERT_EQ(r.with_rule("DL002").size(), 1u) << rendered(r);
  EXPECT_EQ(r.with_rule("DL002")[0].piece, 2);
}

TEST(LintRules, DL003DiscountWithNoSameGroupPredecessor) {
  rtl::PieceChain chain = toy_chain();
  chain[1].delay_chained_ns = 0.5;  // predecessor "sum" is group "front"
  const Report r = lint_chain(chain, toy_contract());
  const auto hits = r.with_rule("DL003");
  ASSERT_EQ(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
  EXPECT_TRUE(r.clean());  // a warning, not an error
}

TEST(LintRules, DL004MissingEval) {
  rtl::PieceChain chain = toy_chain();
  chain[1].eval = nullptr;
  const Report r = lint_chain(chain, toy_contract());
  ASSERT_EQ(r.with_rule("DL004").size(), 1u) << rendered(r);
  // An undrivable chain must skip def-use inference, not crash in it.
  EXPECT_TRUE(r.with_rule("DL101").empty());
}

TEST(LintRules, DL005EmptyAndDuplicateNames) {
  rtl::PieceChain chain = toy_chain();
  chain[1].name = "";
  Report r = lint_chain(chain, toy_contract());
  ASSERT_EQ(r.with_rule("DL005").size(), 1u) << rendered(r);

  chain = toy_chain();
  chain[2].name = "sum";  // duplicates piece 0
  r = lint_chain(chain, toy_contract());
  const auto hits = r.with_rule("DL005");
  ASSERT_EQ(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].piece, 2);
}

TEST(LintRules, DL006NegativeAndZeroLiveBits) {
  rtl::PieceChain chain = toy_chain();
  chain[0].live_bits = -4;
  Report r = lint_chain(chain, toy_contract());
  ASSERT_EQ(r.with_rule("DL006").size(), 1u) << rendered(r);
  EXPECT_EQ(r.with_rule("DL006")[0].severity, Severity::kError);

  chain = toy_chain();
  chain[0].live_bits = 0;  // cuttable internal boundary with a free register
  r = lint_chain(chain, toy_contract());
  const auto hits = r.with_rule("DL006");
  ASSERT_EQ(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
  EXPECT_EQ(hits[0].boundary, 0);
}

TEST(LintRules, DL007EmptyChain) {
  ChainContract contract = toy_contract();
  contract.stimuli.clear();
  const Report r = lint_chain(rtl::PieceChain{}, contract);
  ASSERT_EQ(r.with_rule("DL007").size(), 1u) << rendered(r);
}

TEST(LintRules, DL008UnpipelinableChain) {
  rtl::PieceChain chain = toy_chain();
  chain[0].cut_after = false;
  chain[1].cut_after = false;
  const Report r = lint_chain(chain, toy_contract());
  const auto hits = r.with_rule("DL008");
  ASSERT_EQ(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
}

TEST(LintRules, DL009ZeroWidthOutputRegister) {
  rtl::PieceChain chain = toy_chain();
  chain[2].live_bits = 0;
  const Report r = lint_chain(chain, toy_contract());
  ASSERT_EQ(r.with_rule("DL009").size(), 1u) << rendered(r);
  EXPECT_FALSE(r.clean());
}

TEST(LintRules, DL010NegativeArea) {
  rtl::PieceChain chain = toy_chain();
  chain[1].area.luts = -8;
  const Report r = lint_chain(chain, toy_contract());
  ASSERT_EQ(r.with_rule("DL010").size(), 1u) << rendered(r);
}

// --- DL1xx def-use --------------------------------------------------------

TEST(LintRules, DL101UninitializedRead) {
  rtl::PieceChain chain = toy_chain();
  // Lane 5 is neither a contract input nor written by any piece.
  chain[1].eval = [](rtl::SignalSet& s) { s[3] = s[2] ^ s[5]; };
  const Report r = lint_chain(chain, toy_contract());
  const auto hits = r.with_rule("DL101");
  ASSERT_EQ(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].piece, 1);
  EXPECT_EQ(hits[0].lane, 5);
  EXPECT_EQ(hits[0].severity, Severity::kError);
}

TEST(LintRules, DL102DeadWrite) {
  rtl::PieceChain chain = toy_chain();
  chain[0].eval = [](rtl::SignalSet& s) {
    s[2] = s[0] + s[1];
    s[4] = s[0] * 3;  // nothing downstream reads lane 4
  };
  const Report r = lint_chain(chain, toy_contract());
  const auto hits = r.with_rule("DL102");
  ASSERT_EQ(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].piece, 0);
  EXPECT_EQ(hits[0].lane, 4);
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
}

TEST(LintRules, DL103OutOfRangeLane) {
  rtl::PieceChain chain = toy_chain();
  chain[1].eval = [](rtl::SignalSet& s) {
    s[3] = s[2] ^ (s[2] >> 7);
    s[25] = 1;  // past kMaxSignals; the listener is the bounds check
  };
  const Report r = lint_chain(chain, toy_contract());
  const auto hits = r.with_rule("DL103");
  ASSERT_EQ(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].lane, 25);
  EXPECT_EQ(hits[0].severity, Severity::kError);
}

TEST(LintRules, DL104NondeterministicEval) {
  rtl::PieceChain chain = toy_chain();
  chain[1].eval = [n = 0](rtl::SignalSet& s) mutable {
    s[3] = s[2] + static_cast<fp::u64>(n++ & 1);
  };
  const Report r = lint_chain(chain, toy_contract());
  ASSERT_GE(r.with_rule("DL104").size(), 1u) << rendered(r);
  EXPECT_EQ(r.with_rule("DL104")[0].piece, 1);
}

TEST(LintRules, DL105PlaceholderPieceOnlyWithNotes) {
  rtl::PieceChain chain = toy_chain();
  rtl::Piece pad;
  pad.name = "pad";
  pad.group = "back";
  pad.delay_ns = 0.1;
  pad.live_bits = 18;
  pad.eval = [](rtl::SignalSet&) {};
  chain.push_back(pad);

  Options opts;
  opts.notes = true;
  Report r = lint_chain(chain, toy_contract(), opts);
  const auto hits = r.with_rule("DL105");
  ASSERT_EQ(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].piece, 3);
  EXPECT_EQ(hits[0].severity, Severity::kNote);
  EXPECT_TRUE(r.clean());

  opts.notes = false;
  r = lint_chain(chain, toy_contract(), opts);
  EXPECT_TRUE(r.with_rule("DL105").empty()) << rendered(r);
}

TEST(LintRules, DL106ResultNeverWritten) {
  rtl::PieceChain chain = toy_chain();
  chain[2].eval = [](rtl::SignalSet& s) { s[6] = s[3] + 1; };  // not lane 0
  const Report r = lint_chain(chain, toy_contract());
  const auto hits = r.with_rule("DL106");
  ASSERT_EQ(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].lane, 0);
  EXPECT_EQ(hits[0].severity, Severity::kError);
}

// --- DL2xx live_bits vs. inference ----------------------------------------

TEST(LintRules, DL201UnderdeclaredLiveBits) {
  rtl::PieceChain chain = toy_chain();
  chain[0].live_bits = 2;  // lane 2 alone carries ~17 bits across this cut
  const Report r = lint_chain(chain, toy_contract());
  const auto hits = r.with_rule("DL201");
  ASSERT_EQ(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].boundary, 0);
  EXPECT_EQ(hits[0].severity, Severity::kError);
  EXPECT_NE(hits[0].message.find("undercounts"), std::string::npos);
}

TEST(LintRules, DL202OverdeclaredLiveBits) {
  rtl::PieceChain chain = toy_chain();
  chain[0].live_bits = 500;
  const Report r = lint_chain(chain, toy_contract());
  const auto hits = r.with_rule("DL202");
  ASSERT_EQ(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
  EXPECT_TRUE(r.clean());
}

TEST(LintRules, DL201ToleranceKnobSuppressesSmallDeficits) {
  rtl::PieceChain chain = toy_chain();
  chain[0].live_bits = 14;  // a few bits under the ~17-bit inferred width
  Options opts;
  opts.live_bits_deficit_tol = 64;
  const Report r = lint_chain(chain, toy_contract(), opts);
  EXPECT_TRUE(r.with_rule("DL201").empty()) << rendered(r);
}

// --- DL3xx plan + claim cross-checks --------------------------------------

TEST(LintRules, DL301MalformedStageBegin) {
  const rtl::PieceChain chain = toy_chain();
  rtl::PipelinePlan plan;
  plan.stage_begin = {0, 0, 3};  // not strictly rising
  const Report r = lint_plan(chain, plan, device::TechModel::virtex2pro7(),
                             device::Objective::kArea, "toy");
  ASSERT_EQ(r.with_rule("DL301").size(), 1u) << rendered(r);
}

TEST(LintRules, DL302CutAtNonCuttableBoundary) {
  rtl::PieceChain chain = toy_chain();
  chain[1].cut_after = false;
  rtl::PipelinePlan plan;
  plan.stage_begin = {0, 2, 3};  // stage 1 begins right after piece 1
  const Report r = lint_plan(chain, plan, device::TechModel::virtex2pro7(),
                             device::Objective::kArea, "toy");
  const auto hits = r.with_rule("DL302");
  ASSERT_EQ(hits.size(), 1u) << rendered(r);
  EXPECT_EQ(hits[0].boundary, 1);
}

TEST(LintRules, DL303DepthClampMismatch) {
  EXPECT_TRUE(check_depth_claim(3, 5, 3, 3, 3, "toy").findings.empty());
  const Report r = check_depth_claim(2, 5, 3, 2, 2, "toy");
  ASSERT_EQ(r.with_rule("DL303").size(), 1u) << rendered(r);
}

TEST(LintRules, DL304TimingClaimMismatch) {
  const rtl::PieceChain chain = toy_chain();
  const rtl::PipelinePlan plan = rtl::plan_pipeline(chain, 2);
  const device::TechModel tech = device::TechModel::virtex2pro7();
  rtl::Timing claimed = rtl::evaluate_timing(chain, plan, tech);
  EXPECT_TRUE(check_timing_claim(chain, plan, tech, claimed, "toy")
                  .findings.empty());

  rtl::Timing wrong_critical = claimed;
  wrong_critical.critical_ns += 0.5;
  Report r = check_timing_claim(chain, plan, tech, wrong_critical, "toy");
  ASSERT_EQ(r.with_rule("DL304").size(), 1u) << rendered(r);

  rtl::Timing wrong_period = claimed;
  wrong_period.period_ns += 1.0;
  r = check_timing_claim(chain, plan, tech, wrong_period, "toy");
  ASSERT_EQ(r.with_rule("DL304").size(), 1u) << rendered(r);
}

TEST(LintRules, DL305LatencyDisagreesWithPlan) {
  const Report r = check_depth_claim(3, 3, 3, 4, 3, "toy");
  ASSERT_EQ(r.with_rule("DL305").size(), 1u) << rendered(r);
  EXPECT_TRUE(r.with_rule("DL303").empty());
}

TEST(LintRules, DL306AreaClaimMismatch) {
  const rtl::PieceChain chain = toy_chain();
  const rtl::PipelinePlan plan = rtl::plan_pipeline(chain, 2);
  const device::TechModel tech = device::TechModel::virtex2pro7();
  rtl::AreaBreakdown claimed =
      rtl::evaluate_area(chain, plan, tech, device::Objective::kArea);
  EXPECT_TRUE(check_area_claim(chain, plan, claimed, "toy").findings.empty());

  rtl::AreaBreakdown wrong_ffs = claimed;
  wrong_ffs.pipeline_ffs += 7;
  Report r = check_area_claim(chain, plan, wrong_ffs, "toy");
  ASSERT_EQ(r.with_rule("DL306").size(), 1u) << rendered(r);

  rtl::AreaBreakdown wrong_split = claimed;
  wrong_split.absorbed_ffs = wrong_split.pipeline_ffs + 5;
  r = check_area_claim(chain, plan, wrong_split, "toy");
  ASSERT_EQ(r.with_rule("DL306").size(), 1u) << rendered(r);
}

// Findings inherit their severity from the registry, so reports and the
// docs/extending.md rule table can never disagree with the engine.
TEST(LintRules, FindingSeveritiesMatchRegistry) {
  rtl::PieceChain chain = toy_chain();
  chain[0].live_bits = 2;
  chain[1].delay_chained_ns = 0.5;
  const Report r = lint_chain(chain, toy_contract());
  for (const Finding& f : r.findings) {
    const RuleInfo* info = find_rule(f.rule);
    ASSERT_NE(info, nullptr) << f.rule;
    // DL006's zero-width case downgrades to warning; everything else
    // fires at registry severity.
    if (f.rule != "DL006") EXPECT_EQ(f.severity, info->severity) << f.rule;
  }
}

}  // namespace
}  // namespace flopsim::lint
