// Synthetic piece chains for the lint-rule tests: one clean three-piece
// chain whose declarations all hold, plus per-rule mutations that seed
// exactly the defect a rule exists to catch. Keeping the chain tiny makes
// each failing test's diagnostic readable.
#pragma once

#include "lint/lint.hpp"
#include "rtl/piece.hpp"

namespace flopsim::lint::testing {

// Lane map of the toy chain: lanes 0 (a) and 1 (b) arrive from the
// contract; "sum" computes lane 2 = a + b, "twist" folds lane 2 into
// lane 3, "pack" writes the result into lane 0. Stimuli are 16-bit, so
// every intermediate fits well under the declared 18-bit live widths.
inline rtl::PieceChain toy_chain() {
  rtl::PieceChain chain;

  rtl::Piece sum;
  sum.name = "sum";
  sum.group = "front";
  sum.delay_ns = 1.0;
  sum.area.slices = 8;
  sum.area.luts = 16;
  sum.live_bits = 18;
  sum.eval = [](rtl::SignalSet& s) { s[2] = s[0] + s[1]; };
  chain.push_back(sum);

  rtl::Piece twist;
  twist.name = "twist";
  twist.group = "mid";
  twist.delay_ns = 1.2;
  twist.area.slices = 6;
  twist.area.luts = 12;
  twist.live_bits = 18;
  twist.eval = [](rtl::SignalSet& s) { s[3] = s[2] ^ (s[2] >> 7); };
  chain.push_back(twist);

  rtl::Piece pack;
  pack.name = "pack";
  pack.group = "mid";
  pack.delay_ns = 0.9;
  pack.delay_chained_ns = 0.5;  // legal: predecessor "twist" shares "mid"
  pack.area.slices = 4;
  pack.area.luts = 8;
  pack.live_bits = 18;
  pack.eval = [](rtl::SignalSet& s) { s[0] = s[3] + 1; };
  chain.push_back(pack);

  return chain;
}

inline ChainContract toy_contract(int vectors = 12) {
  ChainContract contract;
  contract.name = "toy";
  contract.input_lanes = {0, 1};
  contract.result_lane = 0;
  for (int v = 0; v < vectors; ++v) {
    rtl::SignalSet s;
    s[0] = (0xB5ADu * static_cast<fp::u64>(v + 1)) & 0xFFFF;
    s[1] = (0x94D1u * static_cast<fp::u64>(v + 3)) & 0xFFFF;
    contract.stimuli.push_back(s);
  }
  return contract;
}

}  // namespace flopsim::lint::testing
