// The shipping gate: every generated unit kind at every paper precision —
// and every format-converter pair — lints with zero error-severity
// findings at shallow, mid, and maximum pipeline depth. This is the same
// check tools/flopsim-lint runs in CI, pinned into ctest so a unit edit
// that breaks a declaration fails the fast loop too.
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/sweep.hpp"
#include "lint/lint.hpp"
#include "lint/report.hpp"
#include "units/converter_unit.hpp"
#include "units/fp_unit.hpp"

namespace flopsim {
namespace {

lint::Options fast_opts() {
  lint::Options opts;
  opts.vectors = 8;  // the --fast vector count; inference converges by here
  return opts;
}

std::string rendered(const lint::Report& r) {
  std::ostringstream os;
  lint::write_text(os, r);
  return os.str();
}

TEST(LintZoo, ShippedUnitsLintClean) {
  static constexpr units::UnitKind kKinds[] = {
      units::UnitKind::kAdder, units::UnitKind::kMultiplier,
      units::UnitKind::kDivider, units::UnitKind::kSqrt,
      units::UnitKind::kMac};
  for (units::UnitKind kind : kKinds) {
    for (const fp::FpFormat& fmt : analysis::paper_formats()) {
      units::UnitConfig probe_cfg;
      probe_cfg.stages = 1;
      const units::FpUnit probe(kind, fmt, probe_cfg);
      const int max = probe.max_stages();
      for (int depth : std::set<int>{1, (1 + max) / 2, max}) {
        units::UnitConfig cfg;
        cfg.stages = depth;
        const units::FpUnit unit(kind, fmt, cfg);
        const lint::Report report = lint::lint_unit(unit, fast_opts());
        EXPECT_TRUE(report.clean())
            << unit.name() << " @ depth " << depth << "\n" << rendered(report);
      }
    }
  }
}

TEST(LintZoo, ConverterPairsLintClean) {
  for (const fp::FpFormat& src : analysis::paper_formats()) {
    for (const fp::FpFormat& dst : analysis::paper_formats()) {
      if (src.total_bits() == dst.total_bits()) continue;
      units::UnitConfig probe_cfg;
      probe_cfg.stages = 1;
      const units::FormatConverter probe(src, dst, probe_cfg);
      for (int depth : std::set<int>{1, probe.max_stages()}) {
        units::UnitConfig cfg;
        cfg.stages = depth;
        const units::FormatConverter cvt(src, dst, cfg);
        const lint::Report report = lint::lint_converter(cvt, fast_opts());
        EXPECT_TRUE(report.clean())
            << cvt.name() << " @ depth " << depth << "\n" << rendered(report);
      }
    }
  }
}

// Non-default build options must lint clean too: the speed objective and
// the LUT-fabric multiplier change the chains the units emit.
TEST(LintZoo, SpeedAndFabricVariantsLintClean) {
  units::UnitConfig cfg;
  cfg.stages = 4;
  cfg.objective = device::Objective::kSpeed;
  const units::FpUnit speed_mul(units::UnitKind::kMultiplier,
                                fp::FpFormat::binary32(), cfg);
  EXPECT_TRUE(lint::lint_unit(speed_mul, fast_opts()).clean())
      << rendered(lint::lint_unit(speed_mul, fast_opts()));

  units::UnitConfig fabric;
  fabric.stages = 4;
  fabric.use_embedded_multipliers = false;
  const units::FpUnit fabric_mul(units::UnitKind::kMultiplier,
                                 fp::FpFormat::binary32(), fabric);
  EXPECT_TRUE(lint::lint_unit(fabric_mul, fast_opts()).clean())
      << rendered(lint::lint_unit(fabric_mul, fast_opts()));
}

}  // namespace
}  // namespace flopsim
