// Device database, capacity arithmetic, and vendor-core descriptors.
#include "device/device.hpp"

#include <gtest/gtest.h>

#include "device/vendor_cores.hpp"

namespace flopsim::device {
namespace {

TEST(Resources, Arithmetic) {
  Resources a{10, 20, 30, 2, 1};
  Resources b{1, 2, 3, 0, 0};
  const Resources sum = a + b;
  EXPECT_EQ(sum.slices, 11);
  EXPECT_EQ(sum.luts, 22);
  EXPECT_EQ(sum.ffs, 33);
  EXPECT_EQ(sum.bmults, 2);
  const Resources tripled = b * 3;
  EXPECT_EQ(tripled.slices, 3);
  EXPECT_EQ(tripled.ffs, 9);
}

TEST(Resources, FitsIn) {
  Resources budget{100, 200, 200, 4, 4};
  EXPECT_TRUE((Resources{100, 200, 200, 4, 4}).fits_in(budget));
  EXPECT_TRUE((Resources{1, 1, 1, 0, 0}).fits_in(budget));
  EXPECT_FALSE((Resources{101, 0, 0, 0, 0}).fits_in(budget));
  EXPECT_FALSE((Resources{0, 0, 0, 5, 0}).fits_in(budget));
}

TEST(Resources, ToStringContainsFields) {
  const std::string s = Resources{1, 2, 3, 4, 5}.to_string();
  EXPECT_NE(s.find("slices=1"), std::string::npos);
  EXPECT_NE(s.find("brams=5"), std::string::npos);
}

TEST(Device, PaperDeviceCapacity) {
  const Device d = xc2vp125();
  EXPECT_EQ(d.name, "XC2VP125");
  EXPECT_EQ(d.capacity.slices, 55616);
  EXPECT_EQ(d.capacity.bmults, 556);
  EXPECT_EQ(d.capacity.brams, 556);
  EXPECT_EQ(d.capacity.ffs, 2 * d.capacity.slices);
}

TEST(Device, DatabaseOrderingBySize) {
  const auto& db = device_database();
  ASSERT_GE(db.size(), 4u);
  for (std::size_t i = 1; i < db.size(); ++i) {
    EXPECT_LT(db[i].capacity.slices, db[i - 1].capacity.slices);
  }
}

TEST(Device, FindByName) {
  ASSERT_TRUE(find_device("XC2VP50").has_value());
  EXPECT_EQ(find_device("XC2VP50")->capacity.slices, 23616);
  EXPECT_FALSE(find_device("XC9999").has_value());
}

TEST(Device, MaxInstancesSliceLimited) {
  const Device d = xc2vp125();
  Resources pe{1000, 0, 0, 0, 0};
  // 85% usable slices by default.
  EXPECT_EQ(d.max_instances(pe), static_cast<int>(55616 * 0.85) / 1000);
}

TEST(Device, MaxInstancesBmultLimited) {
  const Device d = xc2vp125();
  Resources pe{10, 0, 0, 16, 0};
  EXPECT_EQ(d.max_instances(pe), 556 / 16);
}

TEST(Device, MaxInstancesZeroForOversized) {
  const Device d = xc2vp7();
  Resources pe{100000, 0, 0, 0, 0};
  EXPECT_EQ(d.max_instances(pe), 0);
}

TEST(VendorCores, Table3HasFourCustomFormatCores) {
  const auto cores = table3_cores();
  ASSERT_EQ(cores.size(), 4u);
  for (const auto& c : cores) {
    EXPECT_EQ(c.bits, 32);
    EXPECT_TRUE(c.custom_format);  // the paper's caveat
    EXPECT_GT(c.clock_mhz, 0.0);
    EXPECT_GT(c.area.slices, 0);
    EXPECT_GT(c.freq_per_area(), 0.0);
  }
}

TEST(VendorCores, Table4NEUSlowerThanTypicalUSC) {
  // The NEU library cores are shallow-pipelined and well below 200 MHz —
  // the relation Table 4 is built on.
  for (const auto& c : table4_cores()) {
    EXPECT_EQ(c.bits, 64);
    EXPECT_LT(c.clock_mhz, 150.0);
    EXPECT_GT(c.power_mw_100mhz, 0.0);
    EXPECT_FALSE(c.custom_format);
  }
}

}  // namespace
}  // namespace flopsim::device

namespace flopsim::device {
namespace {

TEST(TechModel, SpeedGradeIsSlower) {
  const TechModel t7 = TechModel::virtex2pro7();
  const TechModel t5 = TechModel::virtex2pro5();
  EXPECT_GT(t5.adder_delay(32, Objective::kArea),
            t7.adder_delay(32, Objective::kArea));
  EXPECT_GT(t5.bmult_delay(Objective::kArea),
            t7.bmult_delay(Objective::kArea));
  EXPECT_GT(t5.register_overhead_ns(), t7.register_overhead_ns());
}

TEST(TechModel, SpeedObjectiveFasterAndLarger) {
  const TechModel t = TechModel::virtex2pro7();
  EXPECT_LT(t.adder_delay(32, Objective::kSpeed),
            t.adder_delay(32, Objective::kArea));
  EXPECT_GT(t.adder_area(32, Objective::kSpeed).slices,
            t.adder_area(32, Objective::kArea).slices);
  EXPECT_GT(t.par_area_factor(Objective::kSpeed), 1.0);
  EXPECT_DOUBLE_EQ(t.par_area_factor(Objective::kArea), 1.0);
}

TEST(TechModel, DelaysScaleWithWidth) {
  const TechModel t = TechModel::virtex2pro7();
  for (int n : {8, 16, 32, 64}) {
    EXPECT_LT(t.adder_delay(n, Objective::kArea),
              t.adder_delay(n + 8, Objective::kArea));
    EXPECT_LT(t.comparator_delay(n, Objective::kArea),
              t.comparator_delay(n + 8, Objective::kArea));
    EXPECT_LT(t.priority_encoder_delay(n, Objective::kArea),
              t.priority_encoder_delay(n + 8, Objective::kArea));
  }
}

TEST(TechModel, ChainedDelaysCheaperThanSolo) {
  const TechModel t = TechModel::virtex2pro7();
  EXPECT_LT(t.adder_chained_delay(14, Objective::kArea),
            t.adder_delay(14, Objective::kArea));
  EXPECT_LT(t.mux_level_chained_delay(54, Objective::kArea),
            t.mux_level_delay(54, Objective::kArea));
  EXPECT_LT(t.csa_level_chained_delay(106, Objective::kArea),
            t.csa_level_delay(106, Objective::kArea));
}

TEST(TechModel, AblationHooks) {
  TechModel t = TechModel::virtex2pro7();
  t.set_ff_absorption(0.0);
  EXPECT_DOUBLE_EQ(t.ff_absorption(), 0.0);
  t.set_ff_absorption(2.0);  // clamped
  EXPECT_DOUBLE_EQ(t.ff_absorption(), 1.0);
  t.set_register_overhead(1.5);
  EXPECT_DOUBLE_EQ(t.register_overhead_ns(), 1.5);
}

TEST(TechModel, PaperAreaRules) {
  // "Comparators take about n/2 slices"; "[the shifter] takes up about
  // nlogn/2 slices" (per level: n/2).
  const TechModel t = TechModel::virtex2pro7();
  EXPECT_EQ(t.comparator_area(54, Objective::kArea).slices, 27);
  EXPECT_EQ(t.adder_area(54, Objective::kArea).slices, 27);
  EXPECT_EQ(t.mux_level_area(54, Objective::kArea).slices, 27);
}

}  // namespace
}  // namespace flopsim::device
