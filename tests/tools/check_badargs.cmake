# Runs ${TOOL} with ${ARGS} (a ;-list) and asserts the bad-argument
# contract: exit code 2 and a usage message on stderr.
execute_process(
  COMMAND ${TOOL} ${ARGS}
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)

if(NOT exit_code EQUAL 2)
  message(FATAL_ERROR
          "${TOOL} ${ARGS}: expected exit code 2, got '${exit_code}'\n"
          "stderr: ${err}")
endif()

if(NOT err MATCHES "usage:")
  message(FATAL_ERROR
          "${TOOL} ${ARGS}: stderr lacks a usage message\nstderr: ${err}")
endif()
