#include "obs/cli.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace flopsim::obs {
namespace {

CliArgs parse(std::vector<std::string> tokens) {
  std::vector<char*> argv;
  static std::string prog = "test-tool";
  argv.push_back(prog.data());
  for (std::string& t : tokens) argv.push_back(t.data());
  return parse_cli(static_cast<int>(argv.size()), argv.data());
}

TEST(ParseThreadsValue, AcceptsOneToMaxRejectsRest) {
  EXPECT_EQ(parse_threads_value("1"), 1);
  EXPECT_EQ(parse_threads_value("8"), 8);
  EXPECT_EQ(parse_threads_value("1024"), 1024);
  EXPECT_EQ(parse_threads_value("0"), -1);
  EXPECT_EQ(parse_threads_value("1025"), -1);
  EXPECT_EQ(parse_threads_value("-2"), -1);
  EXPECT_EQ(parse_threads_value("bogus"), -1);
  EXPECT_EQ(parse_threads_value(""), -1);
}

TEST(ParseCli, DefaultsWhenNoFlags) {
  const CliArgs cli = parse({});
  EXPECT_TRUE(cli.ok());
  EXPECT_EQ(cli.threads, 0);
  EXPECT_TRUE(cli.json_path.empty());
  EXPECT_TRUE(cli.csv_dir.empty());
  EXPECT_TRUE(cli.metrics_path.empty());
  EXPECT_TRUE(cli.trace_path.empty());
  EXPECT_TRUE(cli.vcd_path.empty());
  EXPECT_TRUE(cli.rest.empty());
}

TEST(ParseCli, ConsumesEveryObservabilityFlag) {
  const CliArgs cli = parse({"--threads=4", "--json", "out.json", "--csv",
                             "csvdir", "--metrics=m.jsonl", "--trace=t.json",
                             "--vcd=w.vcd"});
  EXPECT_TRUE(cli.ok());
  EXPECT_EQ(cli.threads, 4);
  EXPECT_EQ(cli.json_path, "out.json");
  EXPECT_EQ(cli.csv_dir, "csvdir");
  EXPECT_EQ(cli.metrics_path, "m.jsonl");
  EXPECT_EQ(cli.trace_path, "t.json");
  EXPECT_EQ(cli.vcd_path, "w.vcd");
  EXPECT_TRUE(cli.rest.empty());
}

TEST(ParseCli, UnknownTokensLandInRestInOrder) {
  const CliArgs cli =
      parse({"mul", "32", "--harden=tmr", "--threads=2", "speed"});
  EXPECT_TRUE(cli.ok());
  EXPECT_EQ(cli.threads, 2);
  ASSERT_EQ(cli.rest.size(), 4u);
  EXPECT_EQ(cli.rest[0], "mul");
  EXPECT_EQ(cli.rest[1], "32");
  EXPECT_EQ(cli.rest[2], "--harden=tmr");
  EXPECT_EQ(cli.rest[3], "speed");
}

TEST(ParseCli, BadThreadsSetsError) {
  for (const std::string& bad :
       {std::string("--threads=bogus"), std::string("--threads=0"),
        std::string("--threads=-2"), std::string("--threads=")}) {
    const CliArgs cli = parse({bad});
    EXPECT_FALSE(cli.ok()) << bad;
    EXPECT_EQ(cli.error, bad);
  }
}

TEST(ParseCli, BackendDefaultsToAutoAndParsesEveryName) {
  EXPECT_EQ(parse({}).backend, rtl::EvalBackend::kAuto);
  EXPECT_EQ(parse({"--backend=interpreted"}).backend,
            rtl::EvalBackend::kInterpreted);
  EXPECT_EQ(parse({"--backend=compiled"}).backend,
            rtl::EvalBackend::kCompiled);
  EXPECT_EQ(parse({"--backend=bitsliced"}).backend,
            rtl::EvalBackend::kBitsliced);
}

TEST(ParseCli, BadBackendSetsError) {
  // "auto" is the absent-flag default, not an accepted spelling: spelling
  // it out would suggest a fourth backend exists.
  for (const std::string& bad :
       {std::string("--backend=bogus"), std::string("--backend="),
        std::string("--backend=auto"), std::string("--backend=Compiled")}) {
    const CliArgs cli = parse({bad});
    EXPECT_FALSE(cli.ok()) << bad;
    EXPECT_EQ(cli.error, bad);
    EXPECT_EQ(cli.backend, rtl::EvalBackend::kAuto) << bad;
  }
}

TEST(ParseCli, MissingTwoTokenValueSetsError) {
  const CliArgs cli = parse({"--json"});
  EXPECT_FALSE(cli.ok());
  EXPECT_EQ(cli.error, "--json");
  const CliArgs cli2 = parse({"--csv"});
  EXPECT_FALSE(cli2.ok());
}

TEST(ParseCli, ConsumesEveryResilienceFlag) {
  const CliArgs cli = parse({"--checkpoint=ckdir", "--resume",
                             "--time-budget=2.5", "--trial-budget=100",
                             "--stop-halfwidth=0.05", "--fsync-interval=0"});
  EXPECT_TRUE(cli.ok());
  EXPECT_EQ(cli.checkpoint_dir, "ckdir");
  EXPECT_TRUE(cli.resume);
  EXPECT_DOUBLE_EQ(cli.time_budget_s, 2.5);
  EXPECT_EQ(cli.trial_budget, 100);
  EXPECT_DOUBLE_EQ(cli.stop_half_width, 0.05);
  EXPECT_EQ(cli.fsync_interval, 0);
  EXPECT_TRUE(cli.wants_resilience());
  EXPECT_TRUE(cli.rest.empty());
}

TEST(ParseCli, ResilienceDefaultsAreOff) {
  const CliArgs cli = parse({"--threads=2"});
  EXPECT_TRUE(cli.ok());
  EXPECT_FALSE(cli.wants_resilience());
  EXPECT_TRUE(cli.checkpoint_dir.empty());
  EXPECT_FALSE(cli.resume);
  EXPECT_EQ(cli.fsync_interval, 8) << "default fsync cadence";
}

TEST(ParseCli, EachResilienceFlagAloneWantsResilience) {
  EXPECT_TRUE(parse({"--checkpoint=d"}).wants_resilience());
  EXPECT_TRUE(parse({"--resume"}).wants_resilience());
  EXPECT_TRUE(parse({"--time-budget=1"}).wants_resilience());
  EXPECT_TRUE(parse({"--trial-budget=1"}).wants_resilience());
  EXPECT_TRUE(parse({"--stop-halfwidth=0.1"}).wants_resilience());
  // The fsync cadence alone requests nothing: it only modifies
  // --checkpoint= behaviour.
  EXPECT_FALSE(parse({"--fsync-interval=4"}).wants_resilience());
}

TEST(ParseCli, BadResilienceValuesSetError) {
  for (const std::string& bad :
       {std::string("--checkpoint="), std::string("--time-budget="),
        std::string("--time-budget=0"), std::string("--time-budget=-1"),
        std::string("--time-budget=junk"), std::string("--trial-budget=0"),
        std::string("--trial-budget=ten"), std::string("--trial-budget=-5"),
        std::string("--stop-halfwidth=0"),
        std::string("--stop-halfwidth=-0.1"),
        std::string("--fsync-interval=-1"),
        std::string("--fsync-interval=2x")}) {
    const CliArgs cli = parse({bad});
    EXPECT_FALSE(cli.ok()) << bad;
    EXPECT_EQ(cli.error, bad);
  }
}

}  // namespace
}  // namespace flopsim::obs
