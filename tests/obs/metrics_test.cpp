#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/parallel.hpp"

namespace flopsim::obs {
namespace {

TEST(Counter, AddsAndMerges) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(Counter, MergeIsExactAcrossPinnedThreads) {
  // Each thread pins a distinct id (hence a distinct shard for ids < 16)
  // and adds a distinct amount; the ordered merge must see the exact sum.
  for (const int threads : {1, 2, 8}) {
    Counter c;
    std::vector<std::thread> pool;
    long expected = 0;
    for (int w = 0; w < threads; ++w) {
      expected += (w + 1) * 1000;
      pool.emplace_back([&c, w] {
        set_thread_id(w);
        for (int i = 0; i < (w + 1) * 1000; ++i) c.inc();
      });
    }
    for (std::thread& t : pool) t.join();
    EXPECT_EQ(c.value(), expected) << "threads=" << threads;
  }
}

TEST(Counter, DeterministicUnderCampaignEngine) {
  // The campaign engine's static chunking plus per-trial increments must
  // yield the same counter value at every thread count.
  constexpr std::size_t kTrials = 10000;
  for (const int threads : {1, 2, 8}) {
    Counter c;
    exec::parallel_for_chunked(
        kTrials, threads, [&c](int, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) c.inc();
        });
    EXPECT_EQ(c.value(), static_cast<long>(kTrials)) << "threads=" << threads;
  }
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 3.0});
  h.observe(0.5);   // <= 1.0      -> bucket 0
  h.observe(1.0);   // == bound    -> bucket 0 (inclusive)
  h.observe(1.5);   // <= 2.0      -> bucket 1
  h.observe(3.0);   // == last     -> bucket 2
  h.observe(3.001);  // above last -> overflow bucket 3
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets[0], 2);
  EXPECT_EQ(s.buckets[1], 1);
  EXPECT_EQ(s.buckets[2], 1);
  EXPECT_EQ(s.buckets[3], 1);
  EXPECT_EQ(s.count, 5);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.5 + 3.0 + 3.001);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, BucketCountsDeterministicAcrossThreadCounts) {
  constexpr std::size_t kTrials = 4096;
  std::vector<long> golden;
  for (const int threads : {1, 2, 8}) {
    Histogram h({0.25, 0.5, 0.75});
    exec::parallel_for_chunked(
        kTrials, threads, [&h](int, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            h.observe(static_cast<double>(i % 100) / 100.0);
          }
        });
    const Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, static_cast<long>(kTrials));
    if (golden.empty()) {
      golden = s.buckets;
    } else {
      EXPECT_EQ(s.buckets, golden) << "threads=" << threads;
    }
  }
}

TEST(Registry, FindOrCreateReturnsStableMetrics) {
  Registry reg;
  Counter& a = reg.counter("a");
  a.inc();
  EXPECT_EQ(&reg.counter("a"), &a);
  EXPECT_EQ(reg.counter("a").value(), 1);
  EXPECT_FALSE(reg.empty());
  reg.clear();
  EXPECT_TRUE(reg.empty());
}

TEST(Registry, TypeMismatchThrows) {
  Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", {1.0}), std::invalid_argument);
  reg.histogram("h", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("h", {1.0}), std::invalid_argument);
  EXPECT_NO_THROW(reg.histogram("h", {1.0, 2.0}));
}

TEST(Registry, WritesSortedJsonl) {
  Registry reg;
  reg.counter("b.count").add(3);
  reg.gauge("a.gauge").set(0.5);
  reg.histogram("c.hist", {1.0, 2.0}).observe(1.5);
  std::ostringstream os;
  reg.write_jsonl(os);
  const std::string expected =
      "{\"metric\": \"a.gauge\", \"type\": \"gauge\", \"value\": 0.5}\n"
      "{\"metric\": \"b.count\", \"type\": \"counter\", \"value\": 3}\n"
      "{\"metric\": \"c.hist\", \"type\": \"histogram\", "
      "\"bounds\": [1, 2], \"buckets\": [0, 1, 0], "
      "\"count\": 1, \"sum\": 1.5, "
      "\"p50\": 1.5, \"p95\": 1.95, \"p99\": 1.99}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(Histogram, QuantileInterpolatesWithinBuckets) {
  Histogram h({10.0, 20.0, 40.0});
  // 10 observations in (10, 20], none elsewhere: every quantile
  // interpolates linearly inside the second bucket.
  for (int i = 0; i < 10; ++i) h.observe(15.0);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 15.0);   // 10 + 0.5 * (20 - 10)
  EXPECT_DOUBLE_EQ(s.quantile(0.1), 11.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 20.0);
}

TEST(Histogram, QuantileFirstBucketInterpolatesFromZero) {
  Histogram h({8.0});
  h.observe(1.0);
  h.observe(2.0);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 4.0);  // 0 + (1/2) * 8
}

TEST(Histogram, QuantileClampsOverflowToLastBound) {
  Histogram h({1.0, 2.0});
  h.observe(100.0);  // overflow bucket
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 2.0);
}

TEST(Histogram, QuantileOfEmptyHistogramIsZero) {
  Histogram h({1.0, 2.0});
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

TEST(Registry, WritesPrometheusExposition) {
  Registry reg;
  reg.counter("b.count").add(3);
  reg.gauge("a.gauge").set(0.5);
  reg.histogram("c.hist", {1.0, 2.0}).observe(1.5);
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string expected =
      "# TYPE a_gauge gauge\n"
      "a_gauge 0.5\n"
      "# TYPE b_count counter\n"
      "b_count 3\n"
      "# TYPE c_hist histogram\n"
      "c_hist_bucket{le=\"1\"} 0\n"
      "c_hist_bucket{le=\"2\"} 1\n"
      "c_hist_bucket{le=\"+Inf\"} 1\n"
      "c_hist_sum 1.5\n"
      "c_hist_count 1\n"
      "c_hist{quantile=\"0.5\"} 1.5\n"
      "c_hist{quantile=\"0.95\"} 1.95\n"
      "c_hist{quantile=\"0.99\"} 1.99\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(Registry, SummaryListsEveryMetric) {
  Registry reg;
  reg.counter("trials").add(7);
  reg.histogram("occ", {0.5}).observe(0.25);
  std::ostringstream os;
  reg.write_summary(os);
  EXPECT_NE(os.str().find("trials  7"), std::string::npos);
  EXPECT_NE(os.str().find("count=1"), std::string::npos);
  // Quantiles ride along: one observation at 0.25 in the [0, 0.5) bucket
  // interpolates to 0.25 at p50 (rank 0.5 of one sample).
  EXPECT_NE(os.str().find("p50=0.25"), std::string::npos);
}

}  // namespace
}  // namespace flopsim::obs
