#include "obs/sink.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_util.hpp"

namespace flopsim::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonObject, RendersFieldsInInsertionOrder) {
  JsonObject o;
  o.field("s", "v").field("l", 7L).field("d", 0.5).field("b", true);
  EXPECT_EQ(o.str(), "{\"s\": \"v\", \"l\": 7, \"d\": 0.5, \"b\": true}");
}

TEST(JsonObject, DoubleUsesDefaultOstreamFormatting) {
  // Six significant digits — the legacy `out << wall_ms` behavior the
  // BENCH_campaign.json byte-compatibility contract is anchored to.
  JsonObject o;
  o.field("a", 0.123456789).field("b", 1234.56789).field("c", 12.5);
  EXPECT_EQ(o.str(), "{\"a\": 0.123457, \"b\": 1234.57, \"c\": 12.5}");
}

TEST(JsonArray, RendersBothElementTypes) {
  EXPECT_EQ(json_array(std::vector<double>{0.1, 1.0, 2.5}), "[0.1, 1, 2.5]");
  EXPECT_EQ(json_array(std::vector<long>{1, 2, 3}), "[1, 2, 3]");
  EXPECT_EQ(json_array(std::vector<long>{}), "[]");
}

TEST(JsonlSink, EmptyPathDiscardsQuietly) {
  JsonlSink sink("");
  EXPECT_TRUE(sink.ok());
  sink.write_line("{}");
  EXPECT_TRUE(sink.good());
}

// The golden test for the CampaignJournal port: the JSON-lines emission
// must be byte-identical to the original hand-rolled
//   out << "{\"campaign\": \"" << name << "\", \"trials\": " << trials
//       << ", \"threads\": " << threads << ", \"wall_ms\": " << wall_ms
//       << "}\n";
TEST(CampaignJournal, BenchCampaignJsonIsByteIdenticalToLegacyFormat) {
  const std::string path =
      testing::TempDir() + "/flopsim_sink_golden_campaign.json";
  std::remove(path.c_str());

  bench::CampaignJournal journal(4);
  journal.add({"unit_campaign:mult<binary32>:tmr", 32, 4, 12.5, ""});
  journal.add({"seu_depth_sweep:add<binary64>", 200, 4, 1234.56789, ""});
  journal.add({"matmul_campaign:n4:a8m5", 24, 4, 0.123456789, ""});
  ASSERT_TRUE(journal.write(path));

  const std::string expected =
      "{\"campaign\": \"unit_campaign:mult<binary32>:tmr\", \"trials\": 32, "
      "\"threads\": 4, \"wall_ms\": 12.5}\n"
      "{\"campaign\": \"seu_depth_sweep:add<binary64>\", \"trials\": 200, "
      "\"threads\": 4, \"wall_ms\": 1234.57}\n"
      "{\"campaign\": \"matmul_campaign:n4:a8m5\", \"trials\": 24, "
      "\"threads\": 4, \"wall_ms\": 0.123457}\n";
  EXPECT_EQ(read_file(path), expected);

  // Appending (several benches sharing one BENCH_campaign.json in a CI
  // job) keeps prior records.
  bench::CampaignJournal more(1);
  more.add({"extra", 1, 1, 2.0, ""});
  ASSERT_TRUE(more.write(path));
  EXPECT_EQ(read_file(path),
            expected +
                "{\"campaign\": \"extra\", \"trials\": 1, \"threads\": 1, "
                "\"wall_ms\": 2}\n");
  std::remove(path.c_str());
}

// Records that carry a backend (--backend= was given, or the throughput
// comparison stamped one per run) append it as a trailing field; records
// without one stay on the legacy format above, byte-for-byte.
TEST(CampaignJournal, BackendFieldIsEmittedOnlyWhenSet) {
  const std::string path =
      testing::TempDir() + "/flopsim_sink_golden_backend.json";
  std::remove(path.c_str());

  bench::CampaignJournal journal(2, "bitsliced");
  journal.add({"unit_campaign:mult<binary32>:tmr", 32, 2, 12.5, "bitsliced"});
  journal.add({"matmul_campaign:n4:a8m5", 24, 2, 2.0, ""});
  ASSERT_TRUE(journal.write(path));
  EXPECT_EQ(read_file(path),
            "{\"campaign\": \"unit_campaign:mult<binary32>:tmr\", "
            "\"trials\": 32, \"threads\": 2, \"wall_ms\": 12.5, "
            "\"backend\": \"bitsliced\"}\n"
            "{\"campaign\": \"matmul_campaign:n4:a8m5\", \"trials\": 24, "
            "\"threads\": 2, \"wall_ms\": 2}\n");
  std::remove(path.c_str());
}

TEST(CampaignJournal, TimeStampsTheJournalDefaultBackend) {
  bench::CampaignJournal journal(2, "compiled");
  journal.time("probe", 5, [] { return 0; });
  journal.time("probe2", 5, "interpreted", [] { return 0; });
  ASSERT_EQ(journal.records().size(), 2u);
  EXPECT_EQ(journal.records()[0].backend, "compiled");
  EXPECT_EQ(journal.records()[1].backend, "interpreted");
}

TEST(CampaignJournal, TimeRunsTheCallableAndFilesARecord) {
  bench::CampaignJournal journal(2);
  const int result = journal.time("probe", 5, [] { return 17; });
  EXPECT_EQ(result, 17);
  ASSERT_EQ(journal.records().size(), 1u);
  EXPECT_EQ(journal.records()[0].name, "probe");
  EXPECT_EQ(journal.records()[0].trials, 5);
  EXPECT_EQ(journal.records()[0].threads, 2);
  EXPECT_GE(journal.records()[0].wall_ms, 0.0);
}

}  // namespace
}  // namespace flopsim::obs
