#include "obs/progress.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace flopsim::obs {
namespace {

// Scoped FLOPSIM_PROGRESS override (tests must not depend on whether the
// runner's stderr is a TTY).
struct ProgressEnvGuard {
  explicit ProgressEnvGuard(const char* v) {
    setenv("FLOPSIM_PROGRESS", v, 1);
  }
  ~ProgressEnvGuard() { unsetenv("FLOPSIM_PROGRESS"); }
};

TEST(Progress, TicksFeedTheRegistryCounterEvenWhenSilent) {
  ProgressEnvGuard env("0");
  Registry reg;
  {
    ProgressReporter progress("test campaign", 10, reg);
    for (int i = 0; i < 10; ++i) progress.tick();
    EXPECT_EQ(progress.done(), 10);
  }
  EXPECT_EQ(reg.counter("campaign.trials_completed").value(), 10);
}

TEST(Progress, BatchTicksAccumulate) {
  ProgressEnvGuard env("0");
  Registry reg;
  ProgressReporter progress("batch", 0, reg);
  progress.tick(3);
  progress.tick(4);
  EXPECT_EQ(progress.done(), 7);
  EXPECT_EQ(reg.counter("campaign.trials_completed").value(), 7);
}

TEST(Progress, EnvironmentOverrideWins) {
  {
    ProgressEnvGuard env("1");
    EXPECT_TRUE(ProgressReporter::enabled_by_environment());
  }
  {
    ProgressEnvGuard env("0");
    EXPECT_FALSE(ProgressReporter::enabled_by_environment());
  }
}

}  // namespace
}  // namespace flopsim::obs
