#include "obs/probe.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "fault/campaign.hpp"
#include "kernel/matmul.hpp"
#include "kernel/systolic2d.hpp"
#include "obs/metrics.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::obs {
namespace {

units::FpUnit stepped_adder(int vectors) {
  units::UnitConfig cfg;
  cfg.stages = 4;
  units::FpUnit unit(units::UnitKind::kAdder, fp::FpFormat::binary32(), cfg);
  const std::vector<units::UnitInput> workload = fault::campaign_workload(
      unit.kind(), unit.format(), vectors, /*seed=*/7);
  for (int t = 0; t < vectors + unit.latency() + 2; ++t) {
    if (t < vectors) {
      unit.step(workload[static_cast<std::size_t>(t)]);
    } else {
      unit.step(std::nullopt);
    }
  }
  return unit;
}

TEST(Probe, PipelineOccupancyAccountsEveryStageCycle) {
  Registry reg;
  const units::FpUnit unit = stepped_adder(16);
  record_unit_occupancy(reg, "pipeline.add", unit);

  const long cycles = reg.counter("pipeline.add.cycles").value();
  const long valid = reg.counter("pipeline.add.valid_cycles").value();
  const long bubble = reg.counter("pipeline.add.bubble_cycles").value();
  EXPECT_GT(cycles, 0);
  EXPECT_GT(valid, 0);
  // valid + bubble partitions stages x cycles exactly.
  EXPECT_EQ(valid + bubble, cycles * unit.stages());

  const Histogram::Snapshot occ =
      reg.histogram("pipeline.add.occupancy", fraction_bounds()).snapshot();
  EXPECT_EQ(occ.count, unit.stages());  // one observation per stage
  EXPECT_GE(occ.sum, 0.0);
  EXPECT_LE(occ.sum, static_cast<double>(unit.stages()));
}

TEST(Probe, FreshPipelineRecordsNothing) {
  Registry reg;
  units::UnitConfig cfg;
  cfg.stages = 3;
  const units::FpUnit unit(units::UnitKind::kMultiplier,
                           fp::FpFormat::binary32(), cfg);
  record_unit_occupancy(reg, "pipeline.mul", unit);
  EXPECT_TRUE(reg.empty());
}

TEST(Probe, MatmulUtilizationCoversEveryPe) {
  Registry reg;
  kernel::PeConfig cfg;
  cfg.adder_stages = 2;
  cfg.mult_stages = 2;
  kernel::LinearArrayMatmul array(3, cfg);
  const kernel::Matrix a = kernel::matrix_from_doubles(
      {1, 2, 3, 4, 5, 6, 7, 8, 9}, 3, fp::FpFormat::binary32());
  const kernel::MatmulRun run = array.run(a, a);
  ASSERT_GT(run.cycles, 0);

  record_matmul_utilization(reg, "kernel.matmul", array);
  const Histogram::Snapshot util =
      reg.histogram("kernel.matmul.mac_utilization", fraction_bounds())
          .snapshot();
  EXPECT_EQ(util.count, 3);  // one observation per PE
  EXPECT_EQ(reg.counter("kernel.matmul.mac_issues").value(), run.mac_issues);
  EXPECT_GT(reg.counter("kernel.matmul.cycles").value(), 0);
}

TEST(Probe, SystolicUtilizationCoversTheGrid) {
  Registry reg;
  kernel::PeConfig cfg;
  cfg.adder_stages = 2;
  cfg.mult_stages = 2;
  kernel::Systolic2dMatmul grid(2, /*batch=*/3, cfg);  // >= Ladd + 1
  const kernel::Matrix a = kernel::matrix_from_doubles(
      {1, 2, 3, 4}, 2, fp::FpFormat::binary32());
  const std::vector<kernel::Matrix> batch(
      static_cast<std::size_t>(grid.batch()), a);
  const kernel::Systolic2dRun run = grid.run(batch, batch);
  ASSERT_GT(run.cycles, 0);

  record_systolic_utilization(reg, "kernel.systolic", grid);
  const Histogram::Snapshot util =
      reg.histogram("kernel.systolic.mac_utilization", fraction_bounds())
          .snapshot();
  EXPECT_EQ(util.count, 4);  // 2x2 grid: one observation per PE
}

}  // namespace
}  // namespace flopsim::obs
