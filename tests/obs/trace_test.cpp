#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exec/parallel.hpp"

namespace flopsim::obs {
namespace {

// Structural JSON check without a parser dependency: quotes pair up and
// braces/brackets balance outside strings.
void expect_well_formed(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

// The global tracer is process state; scope enablement per test.
struct TracerGuard {
  TracerGuard() {
    Tracer::global().clear();
    Tracer::global().enable();
  }
  ~TracerGuard() {
    Tracer::global().enable(false);
    Tracer::global().clear();
  }
};

TEST(Tracer, DisabledSpanIsInertAndFree) {
  Tracer::global().enable(false);
  Tracer::global().clear();
  {
    auto span = Tracer::global().span("noop", "test");
  }
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST(Tracer, SpanRecordsCompleteEvent) {
  TracerGuard guard;
  {
    auto span = Tracer::global().span("phase", "campaign", {{"trials", 7}});
  }
  const auto events = Tracer::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "phase");
  EXPECT_EQ(events[0].cat, "campaign");
  EXPECT_GE(events[0].ts_us, 0.0);
  EXPECT_GE(events[0].dur_us, 0.0);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "trials");
  EXPECT_EQ(events[0].args[0].second, 7);
}

TEST(Tracer, EndIsIdempotentAndMoveSafe) {
  TracerGuard guard;
  auto span = Tracer::global().span("a", "test");
  span.end();
  span.end();
  auto moved = std::move(span);
  moved.end();
  EXPECT_EQ(Tracer::global().event_count(), 1u);
}

TEST(Tracer, ChromeJsonIsWellFormed) {
  TracerGuard guard;
  { auto s = Tracer::global().span("alpha", "campaign", {{"n", 3}}); }
  { auto s = Tracer::global().span("beta \"quoted\"", "worker"); }
  std::ostringstream os;
  Tracer::global().write_chrome_json(os);
  const std::string json = os.str();
  expect_well_formed(json);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"alpha\""), std::string::npos);
  EXPECT_NE(json.find("beta \\\"quoted\\\""), std::string::npos);
  // Fixed-point timestamps: never scientific notation.
  EXPECT_EQ(json.find("e+"), std::string::npos);
}

TEST(Tracer, EmptyTraceIsStillAValidContainer) {
  TracerGuard guard;
  std::ostringstream os;
  Tracer::global().write_chrome_json(os);
  expect_well_formed(os.str());
  EXPECT_NE(os.str().find("\"traceEvents\": ["), std::string::npos);
}

TEST(Tracer, WorkerChunksEmitOneSpanPerWorker) {
  TracerGuard guard;
  exec::ThreadPool pool(4);
  pool.run_chunked(64, [](int, std::size_t, std::size_t) {});
  const auto events = Tracer::global().events();
  int chunk_spans = 0;
  bool tids[4] = {false, false, false, false};
  for (const TraceEvent& ev : events) {
    if (ev.name != "chunk") continue;
    ++chunk_spans;
    ASSERT_GE(ev.tid, 0);
    ASSERT_LT(ev.tid, 4);
    tids[ev.tid] = true;
  }
  EXPECT_EQ(chunk_spans, 4);
  for (const bool seen : tids) EXPECT_TRUE(seen);
}

}  // namespace
}  // namespace flopsim::obs
