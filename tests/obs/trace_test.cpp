#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exec/parallel.hpp"

namespace flopsim::obs {
namespace {

// Structural JSON check without a parser dependency: quotes pair up and
// braces/brackets balance outside strings.
void expect_well_formed(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

// The global tracer is process state; scope enablement per test.
struct TracerGuard {
  TracerGuard() {
    Tracer::global().clear();
    Tracer::global().enable();
  }
  ~TracerGuard() {
    Tracer::global().enable(false);
    Tracer::global().clear();
  }
};

TEST(Tracer, DisabledSpanIsInertAndFree) {
  Tracer::global().enable(false);
  Tracer::global().clear();
  {
    auto span = Tracer::global().span("noop", "test");
  }
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST(Tracer, SpanRecordsCompleteEvent) {
  TracerGuard guard;
  {
    auto span = Tracer::global().span("phase", "campaign", {{"trials", 7}});
  }
  const auto events = Tracer::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "phase");
  EXPECT_EQ(events[0].cat, "campaign");
  EXPECT_GE(events[0].ts_us, 0.0);
  EXPECT_GE(events[0].dur_us, 0.0);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "trials");
  EXPECT_EQ(events[0].args[0].second, 7);
}

TEST(Tracer, EndIsIdempotentAndMoveSafe) {
  TracerGuard guard;
  auto span = Tracer::global().span("a", "test");
  span.end();
  span.end();
  auto moved = std::move(span);
  moved.end();
  EXPECT_EQ(Tracer::global().event_count(), 1u);
}

TEST(Tracer, ChromeJsonIsWellFormed) {
  TracerGuard guard;
  { auto s = Tracer::global().span("alpha", "campaign", {{"n", 3}}); }
  { auto s = Tracer::global().span("beta \"quoted\"", "worker"); }
  std::ostringstream os;
  Tracer::global().write_chrome_json(os);
  const std::string json = os.str();
  expect_well_formed(json);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"alpha\""), std::string::npos);
  EXPECT_NE(json.find("beta \\\"quoted\\\""), std::string::npos);
  // Fixed-point timestamps: never scientific notation.
  EXPECT_EQ(json.find("e+"), std::string::npos);
}

TEST(Tracer, EmptyTraceIsStillAValidContainer) {
  TracerGuard guard;
  std::ostringstream os;
  Tracer::global().write_chrome_json(os);
  expect_well_formed(os.str());
  EXPECT_NE(os.str().find("\"traceEvents\": ["), std::string::npos);
}

TEST(SpanContext, DefaultIsEmptyAndScopesNestAndRestore) {
  EXPECT_EQ(current_span_context().trace_id, 0u);
  EXPECT_EQ(current_span_context().span_id, 0u);
  {
    ScopedSpanContext outer({7, 100});
    EXPECT_EQ(current_span_context().trace_id, 7u);
    EXPECT_EQ(current_span_context().span_id, 100u);
    {
      ScopedSpanContext inner({7, 200});
      EXPECT_EQ(current_span_context().span_id, 200u);
    }
    EXPECT_EQ(current_span_context().span_id, 100u);
  }
  EXPECT_EQ(current_span_context().trace_id, 0u);
}

TEST(SpanContext, NextSpanIdIsNeverZeroAndMonotonic) {
  const std::uint64_t a = next_span_id();
  const std::uint64_t b = next_span_id();
  EXPECT_NE(a, 0u);
  EXPECT_GT(b, a);
}

TEST(Tracer, SpanInheritsInstalledContextAsParent) {
  TracerGuard guard;
  {
    ScopedSpanContext scope({42, 9000});
    auto span = Tracer::global().span("child", "test");
  }
  const auto events = Tracer::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, 42u);
  EXPECT_EQ(events[0].parent_id, 9000u);
  EXPECT_NE(events[0].span_id, 0u);
}

TEST(Tracer, ContextFreeSpanKeepsHistoricalJsonShape) {
  TracerGuard guard;
  { auto span = Tracer::global().span("plain", "test"); }
  std::ostringstream os;
  Tracer::global().write_chrome_json(os);
  // No context installed: no trace/span/parent args, no args object at
  // all for an argless span — traces from context-free tools are
  // byte-shaped exactly as before span contexts existed.
  EXPECT_EQ(os.str().find("\"trace\""), std::string::npos);
  EXPECT_EQ(os.str().find("\"args\""), std::string::npos);
}

TEST(Tracer, ContextedSpanRendersLinkageIntoArgs) {
  TracerGuard guard;
  {
    ScopedSpanContext scope({5, 77});
    auto span = Tracer::global().span("linked", "test");
  }
  std::ostringstream os;
  Tracer::global().write_chrome_json(os);
  expect_well_formed(os.str());
  EXPECT_NE(os.str().find("\"trace\": 5"), std::string::npos);
  EXPECT_NE(os.str().find("\"parent\": 77"), std::string::npos);
  EXPECT_NE(os.str().find("\"span\": "), std::string::npos);
}

TEST(Tracer, WorkerChunkSpansInheritCallersContext) {
  TracerGuard guard;
  const SpanContext ctx{11, 500};
  {
    ScopedSpanContext scope(ctx);
    exec::ThreadPool pool(4);
    pool.run_chunked(64, [](int, std::size_t, std::size_t) {});
  }
  const auto events = Tracer::global().events();
  int linked = 0;
  for (const TraceEvent& ev : events) {
    if (ev.name != "chunk") continue;
    EXPECT_EQ(ev.trace_id, 11u);
    EXPECT_EQ(ev.parent_id, 500u);
    ++linked;
  }
  // Every worker's chunk span — including chunk 0 on the caller — landed
  // under the owning scope.
  EXPECT_EQ(linked, 4);
}

TEST(Tracer, WorkerChunksEmitOneSpanPerWorker) {
  TracerGuard guard;
  exec::ThreadPool pool(4);
  pool.run_chunked(64, [](int, std::size_t, std::size_t) {});
  const auto events = Tracer::global().events();
  int chunk_spans = 0;
  bool tids[4] = {false, false, false, false};
  for (const TraceEvent& ev : events) {
    if (ev.name != "chunk") continue;
    ++chunk_spans;
    ASSERT_GE(ev.tid, 0);
    ASSERT_LT(ev.tid, 4);
    tids[ev.tid] = true;
  }
  EXPECT_EQ(chunk_spans, 4);
  for (const bool seen : tids) EXPECT_TRUE(seen);
}

}  // namespace
}  // namespace flopsim::obs
