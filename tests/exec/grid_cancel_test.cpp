// The static-grid engine and the cancellation token — the resilience
// substrate under checkpoint/resume. The load-bearing properties: chunk
// boundaries are a pure function of (count, chunk size) and never of the
// thread count; skip flags restore chunks without running them; a
// cancelled grid stops between chunks and reports itself incomplete;
// on_chunk_done fires exactly once per executed chunk, serialized.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "exec/cancel.hpp"
#include "exec/parallel.hpp"

namespace flopsim::exec {
namespace {

TEST(GridChunkCount, CoversEveryCountChunkCombination) {
  EXPECT_EQ(grid_chunk_count(0, 1, 16), 0u);
  EXPECT_EQ(grid_chunk_count(1, 1, 16), 1u);
  EXPECT_EQ(grid_chunk_count(16, 1, 16), 1u);
  EXPECT_EQ(grid_chunk_count(17, 1, 16), 2u);
  EXPECT_EQ(grid_chunk_count(160, 1, 16), 10u);
  // chunk == 0 resolves to the legacy one-chunk-per-worker layout.
  EXPECT_EQ(grid_chunk_count(100, 4, 0), 4u);
  EXPECT_EQ(grid_chunk_count(3, 16, 0), 3u) << "never more chunks than trials";
}

TEST(Grid, BoundariesAreIndependentOfThreadCount) {
  const std::size_t count = 103;  // deliberately not a multiple of 8
  std::set<std::pair<std::size_t, std::size_t>> reference;
  for (int threads : {1, 2, 3, 8}) {
    std::set<std::pair<std::size_t, std::size_t>> spans;
    std::vector<int> hits(count, 0);
    std::mutex m;
    const GridOptions opts{.chunk = 8};
    const GridResult r = parallel_for_grid(
        count, threads,
        [&](int /*worker*/, std::size_t begin, std::size_t end) {
          std::lock_guard<std::mutex> lk(m);
          spans.insert({begin, end});
          for (std::size_t i = begin; i < end; ++i) ++hits[i];
        },
        opts);
    EXPECT_EQ(r.chunks, 13u);
    EXPECT_EQ(r.completed, 13u);
    EXPECT_TRUE(r.complete());
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[i], 1) << "index " << i << " at threads=" << threads;
    }
    if (reference.empty()) {
      reference = spans;
    } else {
      EXPECT_EQ(spans, reference) << "threads=" << threads;
    }
  }
}

TEST(Grid, SkipFlagsRestoreChunksWithoutRunningThem) {
  const std::size_t count = 40;
  std::vector<char> skip(5, 0);
  skip[0] = 1;
  skip[3] = 1;
  std::vector<int> ran;
  std::mutex m;
  GridOptions opts;
  opts.chunk = 8;
  opts.skip = &skip;
  const GridResult r = parallel_for_grid(
      count, 2,
      [&](int /*worker*/, std::size_t begin, std::size_t /*end*/) {
        std::lock_guard<std::mutex> lk(m);
        ran.push_back(static_cast<int>(begin / 8));
      },
      opts);
  EXPECT_EQ(r.chunks, 5u);
  EXPECT_EQ(r.skipped, 2u);
  EXPECT_EQ(r.completed, 3u);
  EXPECT_TRUE(r.complete()) << "restored + run covers the grid";
  const std::set<int> ran_set(ran.begin(), ran.end());
  EXPECT_EQ(ran_set, (std::set<int>{1, 2, 4}));
  for (std::size_t c = 0; c < r.chunks; ++c) {
    EXPECT_EQ(r.done[c], 1) << "chunk " << c;
  }
}

TEST(Grid, PreCancelledTokenRunsNothing) {
  CancelToken token;
  token.request(CancelToken::Reason::kOther);
  int calls = 0;
  GridOptions opts;
  opts.chunk = 4;
  opts.cancel = &token;
  const GridResult r = parallel_for_grid(
      16, 1, [&](int, std::size_t, std::size_t) { ++calls; }, opts);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_FALSE(r.complete());
}

TEST(Grid, CancelMidRunStopsAtAChunkBoundary) {
  // Serial grid, cancel after the second chunk finishes: the remaining
  // chunks never start, completed chunks stay marked done.
  CancelToken token;
  GridOptions opts;
  opts.chunk = 4;
  opts.cancel = &token;
  opts.on_chunk_done = [&](std::size_t c, std::size_t, std::size_t) {
    if (c == 1) token.request(CancelToken::Reason::kOther);
  };
  std::vector<std::size_t> ran;
  const GridResult r = parallel_for_grid(
      32, 1,
      [&](int, std::size_t begin, std::size_t /*end*/) {
        ran.push_back(begin / 4);
      },
      opts);
  EXPECT_EQ(r.chunks, 8u);
  EXPECT_EQ(r.completed, 2u);
  EXPECT_FALSE(r.complete());
  EXPECT_EQ(ran, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(r.done[0], 1);
  EXPECT_EQ(r.done[1], 1);
  for (std::size_t c = 2; c < r.chunks; ++c) {
    EXPECT_EQ(r.done[c], 0) << "chunk " << c << " must not run";
  }
}

TEST(Grid, OnChunkDoneFiresExactlyOncePerChunkAndIsSerialized) {
  const std::size_t count = 96;
  std::vector<int> done_calls(12, 0);
  bool inside = false;
  bool overlapped = false;
  GridOptions opts;
  opts.chunk = 8;
  opts.on_chunk_done = [&](std::size_t c, std::size_t begin,
                           std::size_t end) {
    // The engine serializes this callback; concurrent entry would be a
    // checkpoint-corrupting bug.
    if (inside) overlapped = true;
    inside = true;
    EXPECT_EQ(begin, c * 8);
    EXPECT_EQ(end, begin + 8);
    ++done_calls[c];
    std::this_thread::yield();
    inside = false;
  };
  const GridResult r = parallel_for_grid(
      count, 8, [&](int, std::size_t, std::size_t) {}, opts);
  EXPECT_TRUE(r.complete());
  EXPECT_FALSE(overlapped);
  for (std::size_t c = 0; c < 12; ++c) {
    EXPECT_EQ(done_calls[c], 1) << "chunk " << c;
  }
}

TEST(CancelToken, FirstReasonSticksAndResetClears) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelToken::Reason::kNone);
  token.request(CancelToken::Reason::kTrialBudget);
  token.request(CancelToken::Reason::kSignal);  // loses: first wins
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelToken::Reason::kTrialBudget);
  token.reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelToken::Reason::kNone);
}

TEST(CancelToken, DeadlinePromotesToTimeBudget) {
  CancelToken token;
  token.set_deadline_after(1e-4);
  // Poll until the deadline passes; a stuck flag would hang the test, so
  // bound the wait far above the armed deadline.
  for (int i = 0; i < 2000 && !token.cancelled(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelToken::Reason::kTimeBudget);
  token.reset();
  EXPECT_FALSE(token.cancelled()) << "reset disarms the deadline too";
}

TEST(CancelToken, ReasonNamesAreStable) {
  EXPECT_STREQ(to_string(CancelToken::Reason::kSignal), "signal");
  EXPECT_STREQ(to_string(CancelToken::Reason::kTimeBudget), "time-budget");
  EXPECT_STREQ(to_string(CancelToken::Reason::kTrialBudget), "trial-budget");
  EXPECT_STREQ(to_string(CancelToken::Reason::kConverged), "converged");
}

TEST(Signals, RaiseFeedsTheGlobalToken) {
  install_signal_handlers();
  global_cancel_token().reset();
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(global_cancel_token().cancelled());
  EXPECT_EQ(global_cancel_token().reason(), CancelToken::Reason::kSignal);
  EXPECT_EQ(last_signal(), SIGTERM);
  global_cancel_token().reset();
}

TEST(Interrupted, CarriesItsReason) {
  const Interrupted e(CancelToken::Reason::kTimeBudget);
  EXPECT_EQ(e.reason, CancelToken::Reason::kTimeBudget);
  EXPECT_NE(std::string(e.what()).find("time-budget"), std::string::npos);
}

}  // namespace
}  // namespace flopsim::exec
