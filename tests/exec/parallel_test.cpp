// The exec layer's determinism contract: static chunk assignment is a pure
// function of (count, threads), every index is covered exactly once, the
// serial path runs inline, and exceptions propagate deterministically.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/parallel.hpp"

namespace flopsim::exec {
namespace {

TEST(ChunkOf, PartitionsEveryCountExactlyOnce) {
  for (std::size_t count : {0u, 1u, 2u, 7u, 8u, 9u, 64u, 1000u}) {
    for (int threads : {1, 2, 3, 7, 8, 64}) {
      std::vector<int> hits(count, 0);
      std::size_t prev_end = 0;
      std::size_t first_len = ThreadPool::chunk_of(count, threads, 0).end;
      for (int w = 0; w < threads; ++w) {
        const ThreadPool::Chunk c = ThreadPool::chunk_of(count, threads, w);
        EXPECT_EQ(c.begin, prev_end) << "chunks must be contiguous";
        EXPECT_LE(c.begin, c.end);
        // Static balance: no chunk longer than chunk 0, none shorter by
        // more than one index.
        EXPECT_LE(c.end - c.begin, first_len);
        EXPECT_GE(c.end - c.begin + 1, count / threads);
        for (std::size_t i = c.begin; i < c.end; ++i) ++hits[i];
        prev_end = c.end;
      }
      EXPECT_EQ(prev_end, count);
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i], 1) << "index " << i << " covered "
                              << hits[i] << " times";
      }
    }
  }
}

TEST(ChunkOf, OutOfRangeWorkerOwnsNothing) {
  // A worker index outside [0, threads) — or a degenerate thread count —
  // must never claim indices: the empty chunk is the contract, not UB.
  struct Case {
    std::size_t count;
    int threads;
    int worker;
  };
  const Case cases[] = {{10, 4, 4}, {10, 4, 17}, {10, 4, -1},
                        {10, 0, 0}, {10, -3, 0}};
  for (const Case& k : cases) {
    const ThreadPool::Chunk c =
        ThreadPool::chunk_of(k.count, k.threads, k.worker);
    EXPECT_EQ(c.begin, 0u) << k.count << "/" << k.threads << "/" << k.worker;
    EXPECT_EQ(c.end, 0u) << k.count << "/" << k.threads << "/" << k.worker;
  }
}

TEST(ChunkOf, ZeroCountGivesEveryWorkerAnEmptyChunk) {
  for (int w = 0; w < 8; ++w) {
    const ThreadPool::Chunk c = ThreadPool::chunk_of(0, 8, w);
    EXPECT_EQ(c.begin, c.end);
  }
}

TEST(ChunkOf, FewerTrialsThanWorkersLeavesTheTailEmpty) {
  // count < threads: the first `count` workers get one index each, the
  // rest get empty chunks — never a negative-length or overlapping span.
  const std::size_t count = 3;
  const int threads = 8;
  for (int w = 0; w < threads; ++w) {
    const ThreadPool::Chunk c = ThreadPool::chunk_of(count, threads, w);
    if (static_cast<std::size_t>(w) < count) {
      EXPECT_EQ(c.begin, static_cast<std::size_t>(w));
      EXPECT_EQ(c.end, static_cast<std::size_t>(w) + 1);
    } else {
      EXPECT_EQ(c.begin, c.end) << "worker " << w;
    }
  }
}

TEST(ResolveThreads, ExplicitRequestWinsAndIsClamped) {
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(4), 4);
  EXPECT_EQ(resolve_threads(kMaxThreads + 100), kMaxThreads);
  EXPECT_GE(resolve_threads(0), 1);  // auto can never be zero
}

TEST(ResolveThreads, EnvironmentDrivesTheAutoPath) {
  ASSERT_EQ(setenv("FLOPSIM_THREADS", "3", 1), 0);
  EXPECT_EQ(resolve_threads(0), 3);
  EXPECT_EQ(resolve_threads(2), 2) << "explicit request beats the env";
  ASSERT_EQ(setenv("FLOPSIM_THREADS", "junk", 1), 0);
  EXPECT_GE(resolve_threads(0), 1) << "garbage falls back to hardware";
  ASSERT_EQ(unsetenv("FLOPSIM_THREADS"), 0);
}

TEST(ResolveThreads, DegenerateEnvValuesFallBackOrClamp) {
  // Zero and negative are not valid worker counts: auto falls through to
  // hardware concurrency instead of honouring them.
  ASSERT_EQ(setenv("FLOPSIM_THREADS", "0", 1), 0);
  EXPECT_GE(resolve_threads(0), 1);
  ASSERT_EQ(setenv("FLOPSIM_THREADS", "-4", 1), 0);
  EXPECT_GE(resolve_threads(0), 1);
  // Trailing garbage after digits is garbage, not a number.
  ASSERT_EQ(setenv("FLOPSIM_THREADS", "4x", 1), 0);
  EXPECT_GE(resolve_threads(0), 1);
  // A huge-but-valid value is clamped to the pool ceiling, not rejected.
  ASSERT_EQ(setenv("FLOPSIM_THREADS", "999999", 1), 0);
  EXPECT_EQ(resolve_threads(0), kMaxThreads);
  ASSERT_EQ(unsetenv("FLOPSIM_THREADS"), 0);
}

TEST(ParallelFor, SerialPathRunsInlineOnTheCaller) {
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  parallel_for_chunked(10, 1, [&](int worker, std::size_t begin,
                                  std::size_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(worker, 0);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, EveryThreadCountProducesTheSameSlots) {
  const std::size_t n = 257;  // awkward: prime, not a multiple of anything
  std::vector<long> expect(n);
  for (std::size_t i = 0; i < n; ++i) {
    expect[i] = static_cast<long>(i * i + 1);
  }
  for (int threads : {1, 2, 3, 8, 32}) {
    std::vector<long> slots(n, -1);
    parallel_for_chunked(n, threads, [&](int /*worker*/, std::size_t begin,
                                         std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        slots[i] = static_cast<long>(i * i + 1);
      }
    });
    EXPECT_EQ(slots, expect) << "threads=" << threads;
  }
}

TEST(ParallelFor, ClampsWorkersToTheTrialCount) {
  std::atomic<int> distinct{0};
  parallel_for_chunked(3, 16, [&](int /*worker*/, std::size_t begin,
                                  std::size_t end) {
    if (begin != end) distinct.fetch_add(1);
  });
  EXPECT_EQ(distinct.load(), 3) << "never more live chunks than trials";
}

TEST(ParallelFor, ZeroCountIsANoOp) {
  int calls = 0;
  parallel_for_chunked(0, 8, [&](int, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, IsReusableAcrossJobs) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  for (int round = 0; round < 3; ++round) {
    std::vector<int> slots(100, -1);
    pool.run_chunked(slots.size(), [&](int worker, std::size_t begin,
                                       std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) slots[i] = worker;
    });
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const ThreadPool::Chunk c =
          ThreadPool::chunk_of(slots.size(), 4, slots[i]);
      EXPECT_GE(i, c.begin);
      EXPECT_LT(i, c.end);
    }
  }
}

TEST(ThreadPool, RethrowsTheLowestWorkerIndexException) {
  ThreadPool pool(4);
  // Workers 1 and 3 throw; the pool must surface worker 1's exception —
  // the deterministic choice — after all chunks quiesced.
  try {
    pool.run_chunked(8, [&](int worker, std::size_t, std::size_t) {
      if (worker == 1) throw std::runtime_error("from worker 1");
      if (worker == 3) throw std::logic_error("from worker 3");
    });
    FAIL() << "expected run_chunked to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "from worker 1");
  }
  // The pool survives a throwing job.
  std::atomic<int> ok{0};
  pool.run_chunked(8, [&](int, std::size_t begin, std::size_t end) {
    ok.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPool, CallerChunkExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_chunked(4,
                                [&](int worker, std::size_t, std::size_t) {
                                  if (worker == 0) {
                                    throw std::runtime_error("caller chunk");
                                  }
                                }),
               std::runtime_error);
}

}  // namespace
}  // namespace flopsim::exec
