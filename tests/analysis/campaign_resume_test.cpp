// The resilience contract end to end: a campaign interrupted by a budget
// or a signal, checkpointed, and resumed — possibly at a different thread
// count — produces tallies bit-identical to one uninterrupted run. Also
// locks the refusal path (a sidecar from a different campaign throws) and
// the convergence early stop.
#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/seu.hpp"
#include "exec/cancel.hpp"
#include "fault/checkpoint.hpp"

namespace flopsim::analysis {
namespace {

std::string fresh_dir(const char* stem) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / stem).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

units::UnitConfig unit_cfg() {
  units::UnitConfig cfg;
  cfg.stages = 5;
  return cfg;
}

SeuCampaignConfig unit_camp(int threads) {
  SeuCampaignConfig camp;
  camp.faults = 40;
  camp.threads = threads;
  return camp;
}

void expect_same_unit(const UnitSeuResult& a, const UnitSeuResult& b) {
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.corrected, b.corrected);
  EXPECT_EQ(a.silent, b.silent);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.occupied_bits, b.occupied_bits);
  EXPECT_EQ(a.pipeline_ffs, b.pipeline_ffs);
}

void expect_same_matmul(const MatmulSeuResult& a, const MatmulSeuResult& b) {
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.corrected, b.corrected);
  EXPECT_EQ(a.silent, b.silent);
  EXPECT_EQ(a.acc_injected, b.acc_injected);
  EXPECT_EQ(a.acc_silent, b.acc_silent);
  EXPECT_EQ(a.latch_injected, b.latch_injected);
  EXPECT_EQ(a.latch_silent, b.latch_silent);
  EXPECT_EQ(a.config_injected, b.config_injected);
  EXPECT_EQ(a.config_silent, b.config_silent);
}

TEST(CampaignResume, BudgetInterruptThenResumeMatchesUninterrupted) {
  const auto kind = units::UnitKind::kAdder;
  const fp::FpFormat fmt = fp::FpFormat::binary32();
  const UnitSeuResult baseline =
      run_unit_campaign(kind, fmt, unit_cfg(), unit_camp(1));
  ASSERT_FALSE(baseline.run.interrupted);
  EXPECT_EQ(baseline.run.chunks_restored, 0);

  const std::string dir = fresh_dir("resume_unit");
  CampaignRunControl interrupt;
  interrupt.checkpoint_dir = dir;
  interrupt.chunk_trials = 8;
  interrupt.trial_budget = 8;
  const UnitSeuResult partial =
      run_unit_campaign(kind, fmt, unit_cfg(), unit_camp(2), interrupt);
  EXPECT_TRUE(partial.run.interrupted);
  EXPECT_EQ(partial.run.stop_reason, exec::CancelToken::Reason::kTrialBudget);
  EXPECT_GE(partial.run.trials_executed, 8);
  EXPECT_LT(partial.run.chunks_completed, partial.run.chunks_total);

  CampaignRunControl resume;
  resume.checkpoint_dir = dir;
  resume.resume = true;
  resume.chunk_trials = 8;
  const UnitSeuResult resumed =
      run_unit_campaign(kind, fmt, unit_cfg(), unit_camp(8), resume);
  EXPECT_FALSE(resumed.run.interrupted);
  EXPECT_GE(resumed.run.chunks_restored, 1);
  EXPECT_EQ(resumed.run.chunks_restored + resumed.run.chunks_completed,
            resumed.run.chunks_total);
  expect_same_unit(resumed, baseline);

  // Resuming a finished campaign restores everything and runs nothing.
  const UnitSeuResult replay =
      run_unit_campaign(kind, fmt, unit_cfg(), unit_camp(1), resume);
  EXPECT_EQ(replay.run.chunks_completed, 0);
  EXPECT_EQ(replay.run.chunks_restored, replay.run.chunks_total);
  EXPECT_EQ(replay.run.trials_executed, 0);
  expect_same_unit(replay, baseline);
}

TEST(CampaignResume, EveryResumeThreadCountIsBitIdentical) {
  const auto kind = units::UnitKind::kMultiplier;
  const fp::FpFormat fmt = fp::FpFormat::binary64();
  units::UnitConfig cfg;
  cfg.stages = 6;
  SeuCampaignConfig camp;
  camp.faults = 40;
  camp.scheme = fault::Scheme::kParity;
  camp.threads = 1;
  const UnitSeuResult baseline = run_unit_campaign(kind, fmt, cfg, camp);

  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("resume threads=" + std::to_string(threads));
    const std::string dir = fresh_dir(
        ("resume_t" + std::to_string(threads)).c_str());
    CampaignRunControl interrupt;
    interrupt.checkpoint_dir = dir;
    interrupt.chunk_trials = 8;
    interrupt.trial_budget = 8;
    SeuCampaignConfig run2 = camp;
    run2.threads = 2;
    const UnitSeuResult partial =
        run_unit_campaign(kind, fmt, cfg, run2, interrupt);
    ASSERT_TRUE(partial.run.interrupted);

    CampaignRunControl resume;
    resume.checkpoint_dir = dir;
    resume.resume = true;
    resume.chunk_trials = 8;
    SeuCampaignConfig run3 = camp;
    run3.threads = threads;
    const UnitSeuResult resumed =
        run_unit_campaign(kind, fmt, cfg, run3, resume);
    ASSERT_FALSE(resumed.run.interrupted);
    EXPECT_GE(resumed.run.chunks_restored, 1);
    expect_same_unit(resumed, baseline);
  }
}

TEST(CampaignResume, SigtermFeedsTheTokenAndTheRunResumes) {
  const auto kind = units::UnitKind::kAdder;
  const fp::FpFormat fmt = fp::FpFormat::binary32();
  const UnitSeuResult baseline =
      run_unit_campaign(kind, fmt, unit_cfg(), unit_camp(1));

  const std::string dir = fresh_dir("resume_sigterm");
  exec::install_signal_handlers();
  exec::global_cancel_token().reset();
  ASSERT_EQ(std::raise(SIGTERM), 0);

  CampaignRunControl interrupt;
  interrupt.cancel = &exec::global_cancel_token();
  interrupt.checkpoint_dir = dir;
  interrupt.chunk_trials = 8;
  const UnitSeuResult stopped =
      run_unit_campaign(kind, fmt, unit_cfg(), unit_camp(2), interrupt);
  exec::global_cancel_token().reset();
  EXPECT_TRUE(stopped.run.interrupted);
  EXPECT_EQ(stopped.run.stop_reason, exec::CancelToken::Reason::kSignal);
  EXPECT_EQ(stopped.run.chunks_completed, 0)
      << "the signal arrived before any chunk started";

  CampaignRunControl resume;
  resume.checkpoint_dir = dir;
  resume.resume = true;
  resume.chunk_trials = 8;
  const UnitSeuResult resumed =
      run_unit_campaign(kind, fmt, unit_cfg(), unit_camp(8), resume);
  EXPECT_FALSE(resumed.run.interrupted);
  expect_same_unit(resumed, baseline);
}

TEST(CampaignResume, MatmulInterruptResumeMatchesUninterrupted) {
  kernel::PeConfig cfg;
  cfg.adder_stages = 8;
  cfg.mult_stages = 5;
  MatmulSeuConfig camp;
  camp.faults = 16;
  camp.config_fraction = 0.5;
  camp.threads = 1;
  const MatmulSeuResult baseline = run_matmul_campaign(cfg, camp);

  const std::string dir = fresh_dir("resume_matmul");
  CampaignRunControl interrupt;
  interrupt.checkpoint_dir = dir;
  interrupt.chunk_trials = 8;
  interrupt.trial_budget = 8;
  MatmulSeuConfig run2 = camp;
  run2.threads = 2;
  const MatmulSeuResult partial = run_matmul_campaign(cfg, run2, interrupt);
  ASSERT_TRUE(partial.run.interrupted);
  EXPECT_EQ(partial.run.stop_reason, exec::CancelToken::Reason::kTrialBudget);

  CampaignRunControl resume;
  resume.checkpoint_dir = dir;
  resume.resume = true;
  resume.chunk_trials = 8;
  MatmulSeuConfig run3 = camp;
  run3.threads = 8;
  const MatmulSeuResult resumed = run_matmul_campaign(cfg, run3, resume);
  EXPECT_FALSE(resumed.run.interrupted);
  EXPECT_GE(resumed.run.chunks_restored, 1);
  expect_same_matmul(resumed, baseline);
}

TEST(CampaignResume, DepthSweepRestoresFinishedDepths) {
  const std::vector<int> depths{1, 4, 9};
  SeuCampaignConfig camp;
  camp.faults = 16;
  camp.threads = 1;
  const std::vector<SeuDepthPoint> baseline = seu_depth_sweep(
      units::UnitKind::kAdder, fp::FpFormat::binary32(), depths, camp);

  const std::string dir = fresh_dir("resume_sweep");
  CampaignRunControl interrupt;
  interrupt.checkpoint_dir = dir;
  interrupt.trial_budget = 16;  // one depth charges camp.faults = 16
  const SeuSweepRun partial = seu_depth_sweep(
      units::UnitKind::kAdder, fp::FpFormat::binary32(), depths, camp,
      SeuRateModel{}, interrupt);
  ASSERT_TRUE(partial.run.interrupted);
  EXPECT_EQ(partial.run.stop_reason, exec::CancelToken::Reason::kTrialBudget);
  EXPECT_EQ(partial.run.chunks_completed, 1);

  CampaignRunControl resume;
  resume.checkpoint_dir = dir;
  resume.resume = true;
  const SeuSweepRun resumed = seu_depth_sweep(
      units::UnitKind::kAdder, fp::FpFormat::binary32(), depths, camp,
      SeuRateModel{}, resume);
  EXPECT_FALSE(resumed.run.interrupted);
  EXPECT_GE(resumed.run.chunks_restored, 1)
      << "the finished depth must come from the checkpoint, not a re-run";
  ASSERT_EQ(resumed.points.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    SCOPED_TRACE("depth index " + std::to_string(i));
    EXPECT_EQ(resumed.points[i].stages, baseline[i].stages);
    EXPECT_EQ(resumed.points[i].pipeline_ffs, baseline[i].pipeline_ffs);
    EXPECT_EQ(resumed.points[i].occupied_bits, baseline[i].occupied_bits);
    // Bit-exact doubles: restored points replay the stored bits.
    EXPECT_EQ(resumed.points[i].freq_mhz, baseline[i].freq_mhz);
    EXPECT_EQ(resumed.points[i].avf, baseline[i].avf);
    EXPECT_EQ(resumed.points[i].sdc_fraction, baseline[i].sdc_fraction);
    EXPECT_EQ(resumed.points[i].sdc_fit, baseline[i].sdc_fit);
    EXPECT_EQ(resumed.points[i].tmr_area_x, baseline[i].tmr_area_x);
  }
}

TEST(CampaignResume, ForeignSidecarIsRefused) {
  const auto kind = units::UnitKind::kAdder;
  const fp::FpFormat fmt = fp::FpFormat::binary32();
  const std::string dir = fresh_dir("resume_refuse");
  CampaignRunControl interrupt;
  interrupt.checkpoint_dir = dir;
  interrupt.chunk_trials = 8;
  interrupt.trial_budget = 8;
  const UnitSeuResult partial =
      run_unit_campaign(kind, fmt, unit_cfg(), unit_camp(1), interrupt);
  ASSERT_TRUE(partial.run.interrupted);

  // Overwrite the sidecar with one claiming a different trial count —
  // what a hand-edited or stale file looks like. The filename stem is the
  // spec hash, so the campaign will find it and must refuse it.
  std::string path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    path = entry.path().string();
  }
  ASSERT_FALSE(path.empty());
  const std::uint64_t spec =
      std::stoull(std::filesystem::path(path).stem().string(), nullptr, 16);
  {
    fault::CheckpointWriter bad(path, spec, /*count=*/99, /*chunk=*/8, 0,
                                /*fresh=*/true);
    ASSERT_TRUE(bad.ok());
  }
  CampaignRunControl resume;
  resume.checkpoint_dir = dir;
  resume.resume = true;
  resume.chunk_trials = 8;
  EXPECT_THROW(run_unit_campaign(kind, fmt, unit_cfg(), unit_camp(1), resume),
               std::runtime_error);
}

TEST(CampaignResume, ConvergenceEarlyStopReportsConverged) {
  CampaignRunControl control;
  control.chunk_trials = 8;
  control.stop_half_width = 1e12;  // any sample at all "converges"
  const UnitSeuResult r =
      run_unit_campaign(units::UnitKind::kAdder, fp::FpFormat::binary32(),
                        unit_cfg(), unit_camp(1), control);
  EXPECT_TRUE(r.run.interrupted);
  EXPECT_EQ(r.run.stop_reason, exec::CancelToken::Reason::kConverged);
  EXPECT_EQ(r.run.trials_executed, 8)
      << "serial run stops right after the first chunk";
}

}  // namespace
}  // namespace flopsim::analysis
