// The backend contract end to end: every campaign tally is bit-identical
// across the interpreted / compiled / bitsliced evaluators at any thread
// count, the backend never enters the checkpoint spec hash (a run
// interrupted under one backend resumes under another), kAuto resolves
// through FLOPSIM_BACKEND, and out-of-scope campaigns (matmul) fall back
// to the interpreted loop with unchanged results.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/seu.hpp"
#include "rtl/evaluator.hpp"

namespace flopsim::analysis {
namespace {

const rtl::EvalBackend kAllBackends[] = {rtl::EvalBackend::kInterpreted,
                                         rtl::EvalBackend::kCompiled,
                                         rtl::EvalBackend::kBitsliced};

std::string fresh_dir(const std::string& stem) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / stem).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void expect_same_unit(const UnitSeuResult& a, const UnitSeuResult& b) {
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.corrected, b.corrected);
  EXPECT_EQ(a.silent, b.silent);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.occupied_bits, b.occupied_bits);
  EXPECT_EQ(a.pipeline_ffs, b.pipeline_ffs);
}

// Every hardening scheme classifies every fault identically on all three
// backends, and the fast paths keep the engine's thread-count invariance.
TEST(BackendEquivalence, UnitTalliesMatchAcrossBackendsAndThreads) {
  const struct {
    units::UnitKind kind;
    fp::FpFormat fmt;
    int stages;
  } units_under_test[] = {
      {units::UnitKind::kAdder, fp::FpFormat::binary32(), 5},
      {units::UnitKind::kMultiplier, fp::FpFormat::binary64(), 6},
  };
  const fault::Scheme schemes[] = {fault::Scheme::kNone, fault::Scheme::kParity,
                                   fault::Scheme::kResidue,
                                   fault::Scheme::kDuplicate,
                                   fault::Scheme::kTmr};

  for (const auto& uut : units_under_test) {
    units::UnitConfig cfg;
    cfg.stages = uut.stages;
    for (const fault::Scheme scheme : schemes) {
      SeuCampaignConfig camp;
      camp.faults = 40;
      camp.scheme = scheme;
      camp.threads = 1;
      camp.backend = rtl::EvalBackend::kInterpreted;
      const UnitSeuResult baseline =
          run_unit_campaign(uut.kind, uut.fmt, cfg, camp);
      EXPECT_EQ(baseline.injected, 40);

      for (const rtl::EvalBackend backend : kAllBackends) {
        for (const int threads : {1, 2, 8}) {
          SCOPED_TRACE(std::string(to_string(uut.kind)) + " scheme=" +
                       std::to_string(static_cast<int>(scheme)) +
                       " backend=" + rtl::to_string(backend) +
                       " threads=" + std::to_string(threads));
          SeuCampaignConfig run = camp;
          run.backend = backend;
          run.threads = threads;
          expect_same_unit(run_unit_campaign(uut.kind, uut.fmt, cfg, run),
                           baseline);
        }
      }
    }
  }
}

// kAuto resolves through FLOPSIM_BACKEND exactly like an explicit request.
TEST(BackendEquivalence, AutoResolvesThroughTheEnvironment) {
  ASSERT_EQ(::setenv("FLOPSIM_BACKEND", "bitsliced", /*overwrite=*/1), 0);
  EXPECT_EQ(rtl::resolve_backend(rtl::EvalBackend::kAuto),
            rtl::EvalBackend::kBitsliced);
  // Explicit requests ignore the environment.
  EXPECT_EQ(rtl::resolve_backend(rtl::EvalBackend::kCompiled),
            rtl::EvalBackend::kCompiled);

  units::UnitConfig cfg;
  cfg.stages = 5;
  SeuCampaignConfig camp;
  camp.faults = 24;
  camp.scheme = fault::Scheme::kResidue;
  camp.threads = 1;
  camp.backend = rtl::EvalBackend::kAuto;
  const UnitSeuResult via_env =
      run_unit_campaign(units::UnitKind::kAdder, fp::FpFormat::binary32(), cfg,
                        camp);
  ASSERT_EQ(::unsetenv("FLOPSIM_BACKEND"), 0);
  EXPECT_EQ(rtl::resolve_backend(rtl::EvalBackend::kAuto),
            rtl::EvalBackend::kInterpreted);

  camp.backend = rtl::EvalBackend::kInterpreted;
  const UnitSeuResult reference =
      run_unit_campaign(units::UnitKind::kAdder, fp::FpFormat::binary32(), cfg,
                        camp);
  expect_same_unit(via_env, reference);

  // A garbage value falls back to the interpreted default, not an error —
  // environment resolution mirrors FLOPSIM_THREADS's forgiving parse.
  ASSERT_EQ(::setenv("FLOPSIM_BACKEND", "warp-drive", 1), 0);
  EXPECT_EQ(rtl::resolve_backend(rtl::EvalBackend::kAuto),
            rtl::EvalBackend::kInterpreted);
  ASSERT_EQ(::unsetenv("FLOPSIM_BACKEND"), 0);
}

// The backend is an execution detail, not part of the campaign identity:
// a run interrupted under one backend must resume under another, land on
// the same sidecar, and finish bit-identical to an uninterrupted run.
TEST(BackendEquivalence, ResumeCrossesBackendsBitIdentically) {
  const auto kind = units::UnitKind::kMultiplier;
  const fp::FpFormat fmt = fp::FpFormat::binary64();
  units::UnitConfig cfg;
  cfg.stages = 6;
  SeuCampaignConfig camp;
  camp.faults = 40;
  camp.scheme = fault::Scheme::kResidue;
  camp.threads = 1;
  camp.backend = rtl::EvalBackend::kInterpreted;
  const UnitSeuResult baseline = run_unit_campaign(kind, fmt, cfg, camp);

  const rtl::EvalBackend pairs[][2] = {
      {rtl::EvalBackend::kCompiled, rtl::EvalBackend::kBitsliced},
      {rtl::EvalBackend::kBitsliced, rtl::EvalBackend::kInterpreted},
      {rtl::EvalBackend::kInterpreted, rtl::EvalBackend::kCompiled},
  };
  int variant = 0;
  for (const auto& pair : pairs) {
    SCOPED_TRACE(std::string("interrupt=") + rtl::to_string(pair[0]) +
                 " resume=" + rtl::to_string(pair[1]));
    const std::string dir =
        fresh_dir("backend_resume_" + std::to_string(variant++));
    CampaignRunControl interrupt;
    interrupt.checkpoint_dir = dir;
    interrupt.chunk_trials = 8;
    interrupt.trial_budget = 8;
    SeuCampaignConfig first = camp;
    first.backend = pair[0];
    first.threads = 2;
    const UnitSeuResult partial =
        run_unit_campaign(kind, fmt, cfg, first, interrupt);
    ASSERT_TRUE(partial.run.interrupted);

    CampaignRunControl resume;
    resume.checkpoint_dir = dir;
    resume.resume = true;
    resume.chunk_trials = 8;
    SeuCampaignConfig second = camp;
    second.backend = pair[1];
    second.threads = 8;
    const UnitSeuResult resumed =
        run_unit_campaign(kind, fmt, cfg, second, resume);
    EXPECT_FALSE(resumed.run.interrupted);
    EXPECT_GE(resumed.run.chunks_restored, 1)
        << "the other backend's sidecar was not found: the backend leaked "
           "into the spec hash";
    expect_same_unit(resumed, baseline);
  }
}

// Kernel campaigns are outside the unit evaluators' scope; any backend
// request must downgrade to the interpreted loop without changing a tally.
TEST(BackendEquivalence, MatmulRequestsFallBackWithIdenticalTallies) {
  kernel::PeConfig cfg;
  cfg.adder_stages = 8;
  cfg.mult_stages = 5;
  MatmulSeuConfig camp;
  camp.faults = 16;
  camp.config_fraction = 0.5;
  camp.threads = 1;
  camp.backend = rtl::EvalBackend::kInterpreted;
  const MatmulSeuResult baseline = run_matmul_campaign(cfg, camp);

  for (const rtl::EvalBackend backend :
       {rtl::EvalBackend::kCompiled, rtl::EvalBackend::kBitsliced}) {
    SCOPED_TRACE(rtl::to_string(backend));
    MatmulSeuConfig run = camp;
    run.backend = backend;
    run.threads = 2;
    const MatmulSeuResult r = run_matmul_campaign(cfg, run);
    EXPECT_EQ(r.injected, baseline.injected);
    EXPECT_EQ(r.masked, baseline.masked);
    EXPECT_EQ(r.detected, baseline.detected);
    EXPECT_EQ(r.corrected, baseline.corrected);
    EXPECT_EQ(r.silent, baseline.silent);
    EXPECT_EQ(r.acc_silent, baseline.acc_silent);
    EXPECT_EQ(r.latch_silent, baseline.latch_silent);
    EXPECT_EQ(r.config_silent, baseline.config_silent);
    EXPECT_EQ(r.draws_exhausted, baseline.draws_exhausted);
  }
}

// The depth sweep threads the backend through every inner campaign.
TEST(BackendEquivalence, DepthSweepMatchesAcrossBackends) {
  const std::vector<int> depths{1, 4, 9};
  SeuCampaignConfig camp;
  camp.faults = 16;
  camp.threads = 1;
  camp.backend = rtl::EvalBackend::kInterpreted;
  const std::vector<SeuDepthPoint> baseline = seu_depth_sweep(
      units::UnitKind::kAdder, fp::FpFormat::binary32(), depths, camp);

  for (const rtl::EvalBackend backend :
       {rtl::EvalBackend::kCompiled, rtl::EvalBackend::kBitsliced}) {
    SCOPED_TRACE(rtl::to_string(backend));
    SeuCampaignConfig run = camp;
    run.backend = backend;
    const std::vector<SeuDepthPoint> points = seu_depth_sweep(
        units::UnitKind::kAdder, fp::FpFormat::binary32(), depths, run);
    ASSERT_EQ(points.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      SCOPED_TRACE("depth index " + std::to_string(i));
      EXPECT_EQ(points[i].stages, baseline[i].stages);
      EXPECT_EQ(points[i].pipeline_ffs, baseline[i].pipeline_ffs);
      EXPECT_EQ(points[i].occupied_bits, baseline[i].occupied_bits);
      EXPECT_EQ(points[i].avf, baseline[i].avf);
      EXPECT_EQ(points[i].sdc_fraction, baseline[i].sdc_fraction);
      EXPECT_EQ(points[i].sdc_fit, baseline[i].sdc_fit);
    }
  }
}

}  // namespace
}  // namespace flopsim::analysis
