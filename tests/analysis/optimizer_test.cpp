// Constraint-driven design selection (Section 5 workflow).
#include "analysis/optimizer.hpp"

#include <gtest/gtest.h>

namespace flopsim::analysis {
namespace {

TEST(Optimizer, GridCoversDepthSpace) {
  const auto grid = candidate_grid(fp::FpFormat::binary32());
  ASSERT_GT(grid.size(), 20u);
  int max_add = 0, max_mul = 0;
  for (const auto& c : grid) {
    max_add = std::max(max_add, c.adder_stages);
    max_mul = std::max(max_mul, c.mult_stages);
  }
  EXPECT_GT(max_add, 15);
  EXPECT_GT(max_mul, 5);
}

TEST(Optimizer, UnconstrainedObjectivesPickDifferentDesigns) {
  KernelConstraints none;
  none.n = 64;
  const auto e = choose_matmul_design(none, KernelObjective::kMinEnergy);
  const auto l = choose_matmul_design(none, KernelObjective::kMinLatency);
  const auto a = choose_matmul_design(none, KernelObjective::kMinArea);
  ASSERT_TRUE(e && l && a);
  // Latency wants deep pipelines; area wants shallow.
  EXPECT_GT(l->pl, a->pl);
  EXPECT_LE(a->pe_slices, e->pe_slices);
  EXPECT_LE(l->latency_us, e->latency_us);
  EXPECT_LE(e->energy_nj, l->energy_nj);
  EXPECT_LE(e->energy_nj, a->energy_nj);
}

TEST(Optimizer, SmallProblemsFavorShallowEnergy) {
  // With n far below deep-pipeline PLs, padding penalizes depth, so the
  // energy-optimal design is shallower than for large n.
  KernelConstraints small;
  small.n = 6;
  KernelConstraints large;
  large.n = 64;
  const auto s = choose_matmul_design(small, KernelObjective::kMinEnergy);
  const auto l = choose_matmul_design(large, KernelObjective::kMinEnergy);
  ASSERT_TRUE(s && l);
  EXPECT_LE(s->pl, l->pl);
}

TEST(Optimizer, LatencyConstraintForcesDeeperDesigns) {
  KernelConstraints c;
  c.n = 64;
  const auto any = choose_matmul_design(c, KernelObjective::kMinArea);
  ASSERT_TRUE(any);
  // Now demand a latency only fast (deep) designs can reach.
  const auto fastest = choose_matmul_design(c, KernelObjective::kMinLatency);
  ASSERT_TRUE(fastest);
  c.max_latency_us = fastest->latency_us * 1.05;
  const auto constrained = choose_matmul_design(c, KernelObjective::kMinArea);
  ASSERT_TRUE(constrained);
  EXPECT_GT(constrained->pl, any->pl);
  EXPECT_LE(constrained->latency_us, c.max_latency_us);
}

TEST(Optimizer, AreaConstraintRespected) {
  KernelConstraints c;
  c.n = 32;
  c.max_pe_slices = 700;
  const auto choice = choose_matmul_design(c, KernelObjective::kMinLatency);
  ASSERT_TRUE(choice);
  EXPECT_LE(choice->pe_slices, 700);
}

TEST(Optimizer, InfeasibleConstraintsReturnNullopt) {
  KernelConstraints c;
  c.n = 16;
  c.max_pe_slices = 1;  // nothing fits in one slice
  EXPECT_FALSE(
      choose_matmul_design(c, KernelObjective::kMinEnergy).has_value());
  KernelConstraints c2;
  c2.n = 16;
  c2.max_latency_us = 1e-6;  // impossible speed
  EXPECT_FALSE(
      choose_matmul_design(c2, KernelObjective::kMinEnergy).has_value());
}

TEST(Optimizer, EvaluateCandidateConsistentWithKernelDesign) {
  const kernel::PeConfig cfg = kernel::pe_moderate_pipelined();
  const KernelChoice c = evaluate_candidate(cfg, 32);
  const kernel::KernelDesign d(cfg);
  EXPECT_EQ(c.pl, d.pl());
  EXPECT_DOUBLE_EQ(c.latency_us, d.latency_us(32));
  EXPECT_DOUBLE_EQ(c.energy_nj, d.pe_energy(32).total_nj);
  EXPECT_EQ(c.pe_slices, d.pe_resources().slices);
}

TEST(Optimizer, DoublePrecisionGridWorks) {
  KernelConstraints c;
  c.n = 32;
  const auto choice = choose_matmul_design(c, KernelObjective::kMinEnergy,
                                           fp::FpFormat::binary64());
  ASSERT_TRUE(choice);
  EXPECT_EQ(choice->cfg.fmt, fp::FpFormat::binary64());
}

}  // namespace
}  // namespace flopsim::analysis
