// Table rendering and CSV export.
#include "analysis/report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

namespace flopsim::analysis {
namespace {

Table sample() {
  Table t("Sample", {"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"beta", "20"});
  return t;
}

TEST(Report, PrintContainsTitleHeadersRows) {
  const std::string s = sample().to_string();
  EXPECT_NE(s.find("== Sample =="), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("20"), std::string::npos);
}

TEST(Report, ColumnsAlign) {
  Table t("T", {"a", "b"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  // Find the column position of 'b' values: right-aligned, same end column.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t nl = s.find('\n', pos);
    lines.push_back(s.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_GE(lines.size(), 5u);
  EXPECT_EQ(lines[2].size(), lines[3].size());  // header sep ... rows equal
  EXPECT_EQ(lines[3].size(), lines[4].size());
}

TEST(Report, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 0), "1");
  EXPECT_EQ(Table::num(42L), "42");
  EXPECT_EQ(Table::num(std::nan(""), 2), "-");
}

TEST(Report, RowWidthValidation) {
  Table t("T", {"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table("T", {}), std::invalid_argument);
}

TEST(Report, CsvRoundTrip) {
  const std::string csv = sample().to_csv();
  EXPECT_EQ(csv, "name,value\nalpha,1.5\nbeta,20\n");
}

TEST(Report, CsvQuoting) {
  Table t("T", {"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  EXPECT_EQ(t.to_csv(), "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(Report, WriteCsvToFile) {
  const std::string path = ::testing::TempDir() + "/flopsim_report_test.csv";
  ASSERT_TRUE(sample().write_csv(path));
  std::ifstream in(path);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "name,value");
  std::remove(path.c_str());
}

TEST(Report, WriteCsvFailsGracefully) {
  EXPECT_FALSE(sample().write_csv("/nonexistent-dir/x.csv"));
}

}  // namespace
}  // namespace flopsim::analysis

namespace flopsim::analysis {
namespace {

TEST(Report, JsonStructure) {
  Table t("T1", {"a", "b"});
  t.add_row({"x", "1.5"});
  EXPECT_EQ(t.to_json(),
            "{\"title\":\"T1\",\"headers\":[\"a\",\"b\"],"
            "\"rows\":[[\"x\",\"1.5\"]]}");
}

TEST(Report, JsonEscaping) {
  Table t("quote \" and backslash \\", {"h"});
  t.add_row({"line\nbreak"});
  const std::string j = t.to_json();
  EXPECT_NE(j.find("quote \\\" and backslash \\\\"), std::string::npos);
  EXPECT_NE(j.find("line\\nbreak"), std::string::npos);
}

TEST(Report, JsonEmptyRows) {
  Table t("E", {"only"});
  EXPECT_EQ(t.to_json(), "{\"title\":\"E\",\"headers\":[\"only\"],\"rows\":[]}");
}

}  // namespace
}  // namespace flopsim::analysis
