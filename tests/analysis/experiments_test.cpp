// End-to-end checks of the experiment generators: every table/figure of the
// paper is produced with the right structure, and the headline qualitative
// relations the paper reports hold in the generated data.
#include "analysis/experiments.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace flopsim::analysis {
namespace {

double cell(const Table& t, std::size_t row, std::size_t col) {
  return std::strtod(t.rows().at(row).at(col).c_str(), nullptr);
}

TEST(Experiments, Fig2CurvesRiseThenFall) {
  for (units::UnitKind kind :
       {units::UnitKind::kAdder, units::UnitKind::kMultiplier}) {
    const Table t = fig2_freq_area(kind);
    ASSERT_EQ(t.headers().size(), 4u);
    ASSERT_GT(t.rows().size(), 5u);
    for (std::size_t col = 1; col <= 3; ++col) {
      // Find the peak; it must be interior and the curve must end below it
      // ("the curves flatten out towards the end and may dip").
      double peak = 0.0;
      std::size_t peak_row = 0;
      double last = 0.0;
      double first = 0.0;
      for (std::size_t r = 0; r < t.rows().size(); ++r) {
        if (t.rows()[r][col] == "-") continue;
        const double v = cell(t, r, col);
        if (r == 0) first = v;
        if (v > peak) {
          peak = v;
          peak_row = r;
        }
        last = v;
      }
      EXPECT_GT(peak_row, 0u) << "col " << col;
      EXPECT_GT(peak, first) << "col " << col;
      EXPECT_LT(last, peak) << "col " << col;
    }
  }
}

TEST(Experiments, Fig2WiderPrecisionLowerMetric) {
  const Table t = fig2_freq_area(units::UnitKind::kAdder);
  // At every common depth: 32-bit metric > 48-bit > 64-bit.
  for (const auto& row : t.rows()) {
    if (row[1] == "-" || row[2] == "-" || row[3] == "-") continue;
    const double m32 = std::strtod(row[1].c_str(), nullptr);
    const double m48 = std::strtod(row[2].c_str(), nullptr);
    const double m64 = std::strtod(row[3].c_str(), nullptr);
    EXPECT_GT(m32, m48);
    EXPECT_GT(m48, m64);
  }
}

class MinMaxOptTest : public ::testing::TestWithParam<units::UnitKind> {};

TEST_P(MinMaxOptTest, TableStructureAndRelations) {
  const Table t = table_min_max_opt(GetParam());
  ASSERT_EQ(t.headers().size(), 10u);
  ASSERT_EQ(t.rows().size(), 6u);
  // Rows: stages, slices, LUTs, FFs, MHz, MHz/slice. For each precision
  // (columns 1-3, 4-6, 7-9 = min,max,opt):
  for (std::size_t base : {1u, 4u, 7u}) {
    const double s_min = cell(t, 0, base);
    const double s_max = cell(t, 0, base + 1);
    const double s_opt = cell(t, 0, base + 2);
    EXPECT_EQ(s_min, 1.0);
    EXPECT_GT(s_max, s_opt);
    EXPECT_GT(s_opt, s_min);
    // Area grows with depth; frequency too.
    EXPECT_LE(cell(t, 1, base), cell(t, 1, base + 2));
    EXPECT_LE(cell(t, 1, base + 2), cell(t, 1, base + 1));
    EXPECT_LT(cell(t, 4, base), cell(t, 4, base + 2));
    EXPECT_LE(cell(t, 4, base + 2), cell(t, 4, base + 1));
    // Opt has the best MHz/slice of the three.
    EXPECT_GE(cell(t, 5, base + 2), cell(t, 5, base));
    EXPECT_GE(cell(t, 5, base + 2), cell(t, 5, base + 1));
  }
  // Paper abstract: deep pipelining exceeds 240 MHz single / 200 MHz double.
  EXPECT_GT(cell(t, 4, 2), 240.0);
  EXPECT_GT(cell(t, 4, 8), 200.0);
}

INSTANTIATE_TEST_SUITE_P(Units, MinMaxOptTest,
                         ::testing::Values(units::UnitKind::kAdder,
                                           units::UnitKind::kMultiplier),
                         [](const auto& info) {
                           return std::string(to_string(info.param) + 3);
                         });

TEST(Experiments, Table3ListsAllVendors) {
  const Table t = table3_compare32();
  ASSERT_EQ(t.rows().size(), 6u);  // adder x3, mult x3
  int usc = 0, nalla = 0, quix = 0;
  for (const auto& row : t.rows()) {
    if (row[0].find("USC") != std::string::npos) ++usc;
    if (row[0].find("Nallatech") != std::string::npos) ++nalla;
    if (row[0].find("Quixilica") != std::string::npos) ++quix;
    EXPECT_GT(std::strtod(row[3].c_str(), nullptr), 100.0);  // MHz sane
  }
  EXPECT_EQ(usc, 2);
  EXPECT_EQ(nalla, 2);
  EXPECT_EQ(quix, 2);
}

TEST(Experiments, Table3UscFasterButVendorsWinMhzPerSlice) {
  // The paper's cores clock higher; "due to a lower area, their
  // Frequency/Area metric is sometimes better than ours" — both relations
  // must show up.
  const Table t = table3_compare32();
  double usc_add_mhz = 0, vendor_best_mhz = 0;
  double usc_add_fpa = 0, vendor_best_fpa = 0;
  for (const auto& row : t.rows()) {
    const double mhz = std::strtod(row[3].c_str(), nullptr);
    const double fpa = std::strtod(row[4].c_str(), nullptr);
    if (row[0] == "adder USC") {
      usc_add_mhz = mhz;
      usc_add_fpa = fpa;
    } else if (row[0].find("adder") == 0) {
      vendor_best_mhz = std::max(vendor_best_mhz, mhz);
      vendor_best_fpa = std::max(vendor_best_fpa, fpa);
    }
  }
  EXPECT_GT(usc_add_mhz, vendor_best_mhz);
  EXPECT_GT(vendor_best_fpa, usc_add_fpa);
}

TEST(Experiments, Table4UscDominatesNEU) {
  const Table t = table4_compare64();
  ASSERT_EQ(t.rows().size(), 4u);
  ASSERT_EQ(t.headers().size(), 6u);  // includes mW@100MHz
  double usc_mhz = 0, neu_mhz = 0;
  for (const auto& row : t.rows()) {
    if (row[0] == "adder USC") usc_mhz = std::strtod(row[3].c_str(), nullptr);
    if (row[0] == "adder NEU") neu_mhz = std::strtod(row[3].c_str(), nullptr);
    EXPECT_GT(std::strtod(row[5].c_str(), nullptr), 0.0);  // power present
  }
  EXPECT_GT(usc_mhz, neu_mhz);
}

TEST(Experiments, Fig3PowerBandAndRisingTail) {
  for (units::UnitKind kind :
       {units::UnitKind::kAdder, units::UnitKind::kMultiplier}) {
    const Table t = fig3_power(kind);
    for (std::size_t col = 1; col <= 3; ++col) {
      double minv = 1e18, last = 0.0;
      for (std::size_t r = 0; r < t.rows().size(); ++r) {
        if (t.rows()[r][col] == "-") continue;
        const double v = cell(t, r, col);
        EXPECT_GT(v, 10.0);
        EXPECT_LT(v, 1000.0);
        minv = std::min(minv, v);
        last = v;
      }
      // Deep end is register-dominated: above the sweep minimum.
      EXPECT_GT(last, minv);
    }
  }
}

TEST(Experiments, Section42HeadlineNumbers) {
  const auto tables = section42_matmul();
  ASSERT_EQ(tables.size(), 2u);
  const Table& perf = tables[0];
  ASSERT_EQ(perf.rows().size(), 4u);
  // Single precision rows in the paper band, double ~8 GFLOPS.
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_GT(cell(perf, r, 4), 15.0);
    EXPECT_LT(cell(perf, r, 4), 26.0);
  }
  EXPECT_GT(cell(perf, 3, 4), 6.0);
  EXPECT_LT(cell(perf, 3, 4), 12.0);

  const Table& cmp = tables[1];
  ASSERT_EQ(cmp.rows().size(), 3u);
  // FPGA speedup column: ~6x over the P4, ~3x over the G4.
  const double sp_p4 = std::strtod(cmp.rows()[1][5].c_str(), nullptr);
  const double sp_g4 = std::strtod(cmp.rows()[2][5].c_str(), nullptr);
  EXPECT_NEAR(sp_p4, 6.0, 2.0);
  EXPECT_NEAR(sp_g4, 3.0, 1.2);
}

TEST(Experiments, Fig4DeepPipesWasteAtSmallN) {
  const Table t = fig4_energy_distribution();
  ASSERT_EQ(t.rows().size(), 5u);  // IO, Misc, Storage, MAC, total
  const auto& total = t.rows()[4];
  ASSERT_EQ(total[0], "total");
  // n=10: pl=25 total >> pl=10 total; n=30: within ~25%.
  const double n10_pl10 = std::strtod(total[1].c_str(), nullptr);
  const double n10_pl25 = std::strtod(total[3].c_str(), nullptr);
  const double n30_pl10 = std::strtod(total[4].c_str(), nullptr);
  const double n30_pl25 = std::strtod(total[6].c_str(), nullptr);
  EXPECT_GT(n10_pl25, 2.0 * n10_pl10);
  EXPECT_LT(n30_pl25, 1.25 * n30_pl10);
}

TEST(Experiments, Fig5Shapes) {
  const auto tables = fig5_problem_size();
  ASSERT_EQ(tables.size(), 3u);
  const Table& energy = tables[0];
  const Table& latency = tables[2];
  // Energy grows with n in every series.
  for (std::size_t col = 1; col <= 3; ++col) {
    for (std::size_t r = 1; r < energy.rows().size(); ++r) {
      EXPECT_GT(cell(energy, r, col), cell(energy, r - 1, col));
    }
  }
  // At the largest n, the deep design has the lowest wall-clock latency
  // (Figure 5c) even though it was worst at the smallest n.
  const std::size_t lastr = latency.rows().size() - 1;
  EXPECT_LT(cell(latency, lastr, 3), cell(latency, lastr, 1));
  EXPECT_GT(cell(latency, 0, 3), cell(latency, 0, 1));
}

TEST(Experiments, Fig6SmallBlocksWaste) {
  const auto tables = fig6_block_size();
  ASSERT_EQ(tables.size(), 3u);
  const Table& energy = tables[0];
  // b=1 row vs b=16 row: small blocks waste dramatically (every series).
  const std::size_t first = 0, last = energy.rows().size() - 1;
  for (std::size_t col = 1; col <= 3; ++col) {
    EXPECT_GT(cell(energy, first, col), 1.5 * cell(energy, last, col));
  }
  // Resources scale with b (b-PE array).
  const Table& res = tables[1];
  EXPECT_GT(cell(res, last, 1), cell(res, first, 1));
}

}  // namespace
}  // namespace flopsim::analysis
