// The parallel campaign engine's bit-identity contract, locked against
// tallies captured from the pre-parallel serial implementation: for a
// pinned seed every thread count — 1 (the inline serial path), 2, 8 —
// must reproduce those numbers exactly. Any scheduling dependence (work
// stealing, arrival-order reduction, shared-RNG draws) breaks these.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/seu.hpp"

namespace flopsim::analysis {
namespace {

const std::vector<int> kThreadCounts{1, 2, 8};

struct UnitGolden {
  int injected, masked, detected, corrected, silent, corrupted;
  long occupied;
  int ffs;
};

void expect_unit_golden(units::UnitKind kind, fp::FpFormat fmt, int stages,
                        fault::Scheme scheme, int faults,
                        const UnitGolden& g) {
  units::UnitConfig cfg;
  cfg.stages = stages;
  for (const int threads : kThreadCounts) {
    SeuCampaignConfig camp;
    camp.faults = faults;
    camp.scheme = scheme;
    camp.threads = threads;
    const UnitSeuResult r = run_unit_campaign(kind, fmt, cfg, camp);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(r.injected, g.injected);
    EXPECT_EQ(r.masked, g.masked);
    EXPECT_EQ(r.detected, g.detected);
    EXPECT_EQ(r.corrected, g.corrected);
    EXPECT_EQ(r.silent, g.silent);
    EXPECT_EQ(r.corrupted, g.corrupted);
    EXPECT_EQ(r.occupied_bits, g.occupied);
    EXPECT_EQ(r.pipeline_ffs, g.ffs);
  }
}

TEST(CampaignDeterminism, UnitCampaignMatchesSerialGolden) {
  // FF counts re-pinned after the absint sandwich corrected live_bits
  // declarations (fpadd mid-ripple under-declaration, fpmul tightening);
  // the tallies themselves are unchanged — fault sites are drawn from
  // occupied bits, not the declared widths.
  expect_unit_golden(units::UnitKind::kAdder, fp::FpFormat::binary32(), 5,
                     fault::Scheme::kNone, 24,
                     {24, 21, 0, 0, 3, 3, 813, 289});
  expect_unit_golden(units::UnitKind::kAdder, fp::FpFormat::binary32(), 5,
                     fault::Scheme::kTmr, 24,
                     {24, 21, 0, 3, 0, 3, 813, 289});
  expect_unit_golden(units::UnitKind::kMultiplier, fp::FpFormat::binary64(),
                     6, fault::Scheme::kParity, 24,
                     {24, 0, 24, 0, 0, 2, 2904, 546});
}

struct MatmulGolden {
  int injected, masked, detected, corrected, silent;
  int acc_injected, acc_silent;
  int latch_injected, latch_silent;
  int config_injected, config_silent;
};

void expect_matmul_golden(int adder_stages, int mult_stages, int faults,
                          double config_fraction, long scrub,
                          fault::Scheme scheme, const MatmulGolden& g) {
  kernel::PeConfig cfg;
  cfg.adder_stages = adder_stages;
  cfg.mult_stages = mult_stages;
  for (const int threads : kThreadCounts) {
    MatmulSeuConfig camp;
    camp.faults = faults;
    camp.config_fraction = config_fraction;
    camp.scrub_period_cycles = scrub;
    camp.scheme = scheme;
    camp.threads = threads;
    const MatmulSeuResult r = run_matmul_campaign(cfg, camp);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(r.injected, g.injected);
    EXPECT_EQ(r.masked, g.masked);
    EXPECT_EQ(r.detected, g.detected);
    EXPECT_EQ(r.corrected, g.corrected);
    EXPECT_EQ(r.silent, g.silent);
    EXPECT_EQ(r.acc_injected, g.acc_injected);
    EXPECT_EQ(r.acc_silent, g.acc_silent);
    EXPECT_EQ(r.latch_injected, g.latch_injected);
    EXPECT_EQ(r.latch_silent, g.latch_silent);
    EXPECT_EQ(r.config_injected, g.config_injected);
    EXPECT_EQ(r.config_silent, g.config_silent);
  }
}

TEST(CampaignDeterminism, MatmulCampaignMatchesSerialGolden) {
  expect_matmul_golden(2, 2, 24, 0.0, 0, fault::Scheme::kNone,
                       {24, 15, 0, 0, 9, 12, 9, 12, 0, 0, 0});
  expect_matmul_golden(8, 5, 16, 0.5, 0, fault::Scheme::kNone,
                       {24, 21, 0, 0, 3, 8, 1, 8, 0, 8, 2});
  expect_matmul_golden(8, 5, 16, 0.25, 16, fault::Scheme::kEcc,
                       {20, 18, 0, 1, 1, 8, 0, 8, 0, 4, 1});
}

TEST(CampaignDeterminism, DepthSweepMatchesSerialGolden) {
  const std::vector<int> depths{1, 4, 9};
  // FF counts (and the FIT that scales with them) re-pinned after the
  // absint sandwich corrected live_bits declarations; occupancy, AVF, and
  // all tallies are unchanged at every depth.
  const std::vector<int> golden_ffs{38, 205, 481};
  const std::vector<long> golden_occ{192, 662, 1453};
  const std::vector<double> golden_avf{0.125, 0.0, 0.3125};
  const std::vector<double> golden_fit{0.0019000000000000002, 0.0,
                                       0.060124999999999998};
  for (const int threads : kThreadCounts) {
    SeuCampaignConfig camp;
    camp.faults = 16;
    camp.threads = threads;
    const std::vector<SeuDepthPoint> pts = seu_depth_sweep(
        units::UnitKind::kAdder, fp::FpFormat::binary32(), depths, camp);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ASSERT_EQ(pts.size(), depths.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      EXPECT_EQ(pts[i].stages, depths[i]);
      EXPECT_EQ(pts[i].pipeline_ffs, golden_ffs[i]);
      EXPECT_EQ(pts[i].occupied_bits, golden_occ[i]);
      // Doubles pinned exactly: the parallel sweep must be bit-identical,
      // not merely statistically equivalent.
      EXPECT_EQ(pts[i].avf, golden_avf[i]);
      EXPECT_EQ(pts[i].sdc_fit, golden_fit[i]);
    }
  }
}

// The auto path (threads = 0) must agree with the pinned counts too —
// whatever FLOPSIM_THREADS or hardware_concurrency resolves to.
TEST(CampaignDeterminism, AutoThreadCountAgreesWithSerial) {
  units::UnitConfig cfg;
  cfg.stages = 5;
  SeuCampaignConfig serial;
  serial.faults = 24;
  serial.threads = 1;
  SeuCampaignConfig auto_camp = serial;
  auto_camp.threads = 0;
  const UnitSeuResult a = run_unit_campaign(
      units::UnitKind::kAdder, fp::FpFormat::binary32(), cfg, serial);
  const UnitSeuResult b = run_unit_campaign(
      units::UnitKind::kAdder, fp::FpFormat::binary32(), cfg, auto_camp);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.corrected, b.corrected);
  EXPECT_EQ(a.silent, b.silent);
  EXPECT_EQ(a.corrupted, b.corrupted);
}

}  // namespace
}  // namespace flopsim::analysis
