// Sweep generation and min/max/opt + Pareto selection.
#include <gtest/gtest.h>

#include "analysis/pareto.hpp"
#include "analysis/sweep.hpp"

namespace flopsim::analysis {
namespace {

TEST(Sweep, CoversAllDepthsInOrder) {
  const SweepResult sw =
      sweep_unit(units::UnitKind::kAdder, fp::FpFormat::binary32());
  ASSERT_FALSE(sw.points.empty());
  for (std::size_t i = 0; i < sw.points.size(); ++i) {
    EXPECT_EQ(sw.points[i].stages, static_cast<int>(i) + 1);
  }
  units::UnitConfig cfg;
  const units::FpUnit probe(units::UnitKind::kAdder, fp::FpFormat::binary32(),
                            cfg);
  EXPECT_EQ(static_cast<int>(sw.points.size()), probe.max_stages());
}

TEST(Sweep, PointsAreInternallyConsistent) {
  const SweepResult sw =
      sweep_unit(units::UnitKind::kMultiplier, fp::FpFormat::binary64());
  for (const DesignPoint& p : sw.points) {
    EXPECT_NEAR(p.freq_mhz, 1000.0 / (p.critical_ns + 1.0), 1e-6);
    EXPECT_NEAR(p.freq_per_area, p.freq_mhz / p.area.slices, 1e-9);
    EXPECT_GT(p.power_mw_100, 0.0);
    EXPECT_GT(p.area.bmults, 0);
  }
}

TEST(Sweep, AtStagesLookup) {
  const SweepResult sw =
      sweep_unit(units::UnitKind::kAdder, fp::FpFormat::binary32());
  EXPECT_EQ(sw.at_stages(3).stages, 3);
  EXPECT_THROW(sw.at_stages(999), std::out_of_range);
}

TEST(Sweep, PaperFormatsAreTheThreePrecisions) {
  const auto fmts = paper_formats();
  ASSERT_EQ(fmts.size(), 3u);
  EXPECT_EQ(fmts[0].total_bits(), 32);
  EXPECT_EQ(fmts[1].total_bits(), 48);
  EXPECT_EQ(fmts[2].total_bits(), 64);
}

TEST(Pareto, SelectionIdentities) {
  const SweepResult sw =
      sweep_unit(units::UnitKind::kAdder, fp::FpFormat::binary48());
  const Selection sel = select_min_max_opt(sw);
  EXPECT_EQ(sel.min.stages, 1);
  EXPECT_EQ(sel.max.stages, static_cast<int>(sw.points.size()));
  for (const DesignPoint& p : sw.points) {
    EXPECT_LE(p.freq_per_area, sel.opt.freq_per_area);
  }
  // The optimum is interior: pipelined, but not maximally.
  EXPECT_GT(sel.opt.stages, 1);
  EXPECT_LT(sel.opt.stages, sel.max.stages);
}

TEST(Pareto, SelectionOnEmptySweepThrows) {
  EXPECT_THROW(select_min_max_opt(SweepResult{}), std::invalid_argument);
}

TEST(Pareto, FrontierIsNonDominatedAndMonotone) {
  const SweepResult sw =
      sweep_unit(units::UnitKind::kMultiplier, fp::FpFormat::binary32());
  const auto frontier = pareto_frontier(sw);
  ASSERT_FALSE(frontier.empty());
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    // Along the frontier, more area must buy more frequency.
    EXPECT_GT(frontier[i].freq_mhz, frontier[i - 1].freq_mhz);
    EXPECT_GT(frontier[i].area.slices, frontier[i - 1].area.slices);
  }
  // Every frontier point exists in the sweep.
  for (const DesignPoint& p : frontier) {
    EXPECT_EQ(sw.at_stages(p.stages).area.slices, p.area.slices);
  }
}

TEST(Pareto, SelectFastestPicksMaxFrequencySmallestArea) {
  const SweepResult sw =
      sweep_unit(units::UnitKind::kAdder, fp::FpFormat::binary32());
  const DesignPoint fast = select_fastest(sw);
  for (const DesignPoint& p : sw.points) {
    EXPECT_LE(p.freq_mhz, fast.freq_mhz);
    if (p.freq_mhz == fast.freq_mhz) {
      EXPECT_GE(p.area.slices, fast.area.slices);
    }
  }
  EXPECT_THROW(select_fastest(SweepResult{}), std::invalid_argument);
}

TEST(Pareto, MaxFrequencyPointIsOnFrontier) {
  const SweepResult sw =
      sweep_unit(units::UnitKind::kAdder, fp::FpFormat::binary64());
  const auto frontier = pareto_frontier(sw);
  double best = 0.0;
  for (const DesignPoint& p : sw.points) best = std::max(best, p.freq_mhz);
  EXPECT_DOUBLE_EQ(frontier.back().freq_mhz, best);
}

}  // namespace
}  // namespace flopsim::analysis
