// SEU campaign analysis: depth-vs-vulnerability trend, the reliability-
// constrained min/max/opt selection, and the kernel-level campaign.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/seu.hpp"
#include "analysis/sweep.hpp"

namespace flopsim::analysis {
namespace {

TEST(SeuCampaign, UnitCampaignIsDeterministic) {
  units::UnitConfig cfg;
  cfg.stages = 5;
  SeuCampaignConfig camp;
  camp.faults = 24;
  const UnitSeuResult a = run_unit_campaign(
      units::UnitKind::kAdder, fp::FpFormat::binary32(), cfg, camp);
  const UnitSeuResult b = run_unit_campaign(
      units::UnitKind::kAdder, fp::FpFormat::binary32(), cfg, camp);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.corrected, b.corrected);
  EXPECT_EQ(a.silent, b.silent);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.occupied_bits, b.occupied_bits);

  EXPECT_EQ(a.injected, 24);
  EXPECT_EQ(a.masked + a.detected + a.silent + a.corrected, a.injected);
}

// Deeper pipelines expose more state: FF count grows monotonically with
// depth and the silent-corruption FIT at the deepest point exceeds the
// combinational (1-stage) point. Per-depth AVF itself is a noisy Monte
// Carlo estimate, so the trend is asserted on the physical exposure.
TEST(SeuCampaign, DepthSweepShowsGrowingExposure) {
  units::UnitConfig probe_cfg;
  const units::FpUnit probe(units::UnitKind::kAdder, fp::FpFormat::binary32(),
                            probe_cfg);
  const int max = probe.max_stages();
  const std::vector<int> depths{1, max / 3, (2 * max) / 3, max};

  SeuCampaignConfig camp;
  camp.faults = 64;
  const std::vector<SeuDepthPoint> points = seu_depth_sweep(
      units::UnitKind::kAdder, fp::FpFormat::binary32(), depths, camp);

  ASSERT_EQ(points.size(), depths.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].stages, depths[i]);
    EXPECT_GE(points[i].avf, 0.0);
    EXPECT_LE(points[i].avf, 1.0);
    EXPECT_GT(points[i].occupied_bits, 0);
    EXPECT_GE(points[i].tmr_area_x, 3.0);
    if (i > 0) {
      EXPECT_GT(points[i].pipeline_ffs, points[i - 1].pipeline_ffs);
      EXPECT_GE(points[i].occupied_bits, points[i - 1].occupied_bits);
    }
  }
  EXPECT_GT(points.back().sdc_fit, points.front().sdc_fit);
}

TEST(SeuCampaign, ReliableSelectionHonorsTheFitCap) {
  const SweepResult sweep =
      sweep_unit(units::UnitKind::kAdder, fp::FpFormat::binary64());
  const SeuRateModel rate;

  // A huge cap changes nothing.
  const ReliableSelection loose =
      select_min_max_opt_reliable(sweep, 1e9, rate, 1.0);
  EXPECT_TRUE(loose.feasible);
  EXPECT_EQ(loose.opt.stages, loose.unconstrained.opt.stages);

  // A cap below the unconstrained optimum forces a shallower design.
  const double opt_fit =
      rate.fit(loose.unconstrained.opt.pipeline_ffs, 1.0);
  const ReliableSelection tight =
      select_min_max_opt_reliable(sweep, opt_fit * 0.6, rate, 1.0);
  EXPECT_TRUE(tight.feasible);
  EXPECT_LT(tight.opt.stages, loose.unconstrained.opt.stages);
  EXPECT_LE(tight.fit_at_opt, opt_fit * 0.6);
  // Still the best MHz/slice among the qualifying points.
  for (const DesignPoint& p : sweep.points) {
    if (rate.fit(p.pipeline_ffs, 1.0) <= opt_fit * 0.6) {
      EXPECT_LE(p.freq_per_area, tight.opt.freq_per_area);
    }
  }

  // An impossible cap falls back to the least-vulnerable point.
  const ReliableSelection impossible =
      select_min_max_opt_reliable(sweep, 0.0, rate, 1.0);
  EXPECT_FALSE(impossible.feasible);
  for (const DesignPoint& p : sweep.points) {
    EXPECT_LE(impossible.opt.pipeline_ffs, p.pipeline_ffs);
  }
}

TEST(SeuCampaign, MatmulCampaignIsDeterministicAndFindsSdc) {
  kernel::PeConfig cfg;
  cfg.adder_stages = 2;
  cfg.mult_stages = 2;
  MatmulSeuConfig camp;
  camp.faults = 24;
  const MatmulSeuResult a = run_matmul_campaign(cfg, camp);
  const MatmulSeuResult b = run_matmul_campaign(cfg, camp);

  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.silent, b.silent);

  EXPECT_GT(a.injected, 0);
  EXPECT_EQ(a.masked + a.silent, a.injected);
  // The bare kernel has no detection hardware: some upsets must land in
  // the result as silent corruptions.
  EXPECT_GT(a.silent, 0);
  EXPECT_GT(a.sdc_fraction(), 0.0);
  EXPECT_LE(a.sdc_fraction(), 1.0);
}

}  // namespace
}  // namespace flopsim::analysis
