// SEU campaign analysis: depth-vs-vulnerability trend, the reliability-
// constrained min/max/opt selection, and the kernel-level campaign.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/seu.hpp"
#include "analysis/sweep.hpp"

namespace flopsim::analysis {
namespace {

TEST(SeuCampaign, UnitCampaignIsDeterministic) {
  units::UnitConfig cfg;
  cfg.stages = 5;
  SeuCampaignConfig camp;
  camp.faults = 24;
  const UnitSeuResult a = run_unit_campaign(
      units::UnitKind::kAdder, fp::FpFormat::binary32(), cfg, camp);
  const UnitSeuResult b = run_unit_campaign(
      units::UnitKind::kAdder, fp::FpFormat::binary32(), cfg, camp);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.corrected, b.corrected);
  EXPECT_EQ(a.silent, b.silent);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.occupied_bits, b.occupied_bits);

  EXPECT_EQ(a.injected, 24);
  EXPECT_EQ(a.masked + a.detected + a.silent + a.corrected, a.injected);
}

// Deeper pipelines expose more state: FF count grows monotonically with
// depth and the silent-corruption FIT at the deepest point exceeds the
// combinational (1-stage) point. Per-depth AVF itself is a noisy Monte
// Carlo estimate, so the trend is asserted on the physical exposure.
TEST(SeuCampaign, DepthSweepShowsGrowingExposure) {
  units::UnitConfig probe_cfg;
  const units::FpUnit probe(units::UnitKind::kAdder, fp::FpFormat::binary32(),
                            probe_cfg);
  const int max = probe.max_stages();
  const std::vector<int> depths{1, max / 3, (2 * max) / 3, max};

  SeuCampaignConfig camp;
  camp.faults = 64;
  const std::vector<SeuDepthPoint> points = seu_depth_sweep(
      units::UnitKind::kAdder, fp::FpFormat::binary32(), depths, camp);

  ASSERT_EQ(points.size(), depths.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].stages, depths[i]);
    EXPECT_GE(points[i].avf, 0.0);
    EXPECT_LE(points[i].avf, 1.0);
    EXPECT_GT(points[i].occupied_bits, 0);
    EXPECT_GE(points[i].tmr_area_x, 3.0);
    if (i > 0) {
      EXPECT_GT(points[i].pipeline_ffs, points[i - 1].pipeline_ffs);
      EXPECT_GE(points[i].occupied_bits, points[i - 1].occupied_bits);
    }
  }
  EXPECT_GT(points.back().sdc_fit, points.front().sdc_fit);
}

TEST(SeuCampaign, ReliableSelectionHonorsTheFitCap) {
  const SweepResult sweep =
      sweep_unit(units::UnitKind::kAdder, fp::FpFormat::binary64());
  const SeuRateModel rate;

  // A huge cap changes nothing.
  const ReliableSelection loose =
      select_min_max_opt_reliable(sweep, 1e9, rate, 1.0);
  EXPECT_TRUE(loose.feasible);
  EXPECT_EQ(loose.opt.stages, loose.unconstrained.opt.stages);

  // A cap below the unconstrained optimum forces a shallower design.
  const double opt_fit =
      rate.fit(loose.unconstrained.opt.pipeline_ffs, 1.0);
  const ReliableSelection tight =
      select_min_max_opt_reliable(sweep, opt_fit * 0.6, rate, 1.0);
  EXPECT_TRUE(tight.feasible);
  EXPECT_LT(tight.opt.stages, loose.unconstrained.opt.stages);
  EXPECT_LE(tight.fit_at_opt, opt_fit * 0.6);
  // Still the best MHz/slice among the qualifying points.
  for (const DesignPoint& p : sweep.points) {
    if (rate.fit(p.pipeline_ffs, 1.0) <= opt_fit * 0.6) {
      EXPECT_LE(p.freq_per_area, tight.opt.freq_per_area);
    }
  }

  // An impossible cap falls back to the least-vulnerable point.
  const ReliableSelection impossible =
      select_min_max_opt_reliable(sweep, 0.0, rate, 1.0);
  EXPECT_FALSE(impossible.feasible);
  for (const DesignPoint& p : sweep.points) {
    EXPECT_LE(impossible.opt.pipeline_ffs, p.pipeline_ffs);
  }
}

// When no point satisfies the cap, both overloads must fall back to the
// point with the minimum modelled FIT — the very quantity the cap is
// expressed in — and report feasible = false. (The two overloads model
// different FITs: latch-only versus latch + CRAM, where the CRAM term
// scales with area footprint rather than FF count.)
TEST(SeuCampaign, InfeasibleCapFallsBackToMinimumModelledFit) {
  const SweepResult sweep =
      sweep_unit(units::UnitKind::kAdder, fp::FpFormat::binary32());
  const SeuRateModel rate;
  const double derate = 0.5;

  // Latch-only overload.
  const ReliableSelection latch =
      select_min_max_opt_reliable(sweep, 0.0, rate, derate);
  EXPECT_FALSE(latch.feasible);
  for (const DesignPoint& p : sweep.points) {
    EXPECT_LE(latch.fit_at_opt, rate.fit(p.pipeline_ffs, derate));
  }
  EXPECT_DOUBLE_EQ(latch.fit_at_opt,
                   rate.fit(latch.opt.pipeline_ffs, derate));

  // CRAM-aware overload: the fallback minimizes the *total* modelled FIT.
  CramRateModel cram;  // scrubbing disabled: mission/2 exposure, term > 0
  const ReliableSelection total =
      select_min_max_opt_reliable(sweep, 0.0, rate, derate, cram);
  EXPECT_FALSE(total.feasible);
  EXPECT_GT(total.cram_fit_at_opt, 0.0);
  for (const DesignPoint& p : sweep.points) {
    EXPECT_LE(total.fit_at_opt,
              rate.fit(p.pipeline_ffs, derate) + cram.fit(p.area));
  }
  EXPECT_DOUBLE_EQ(total.fit_at_opt,
                   rate.fit(total.opt.pipeline_ffs, derate) +
                       cram.fit(total.opt.area));
  EXPECT_DOUBLE_EQ(total.cram_fit_at_opt, cram.fit(total.opt.area));
}

TEST(SeuCampaign, MatmulCampaignIsDeterministicAndFindsSdc) {
  kernel::PeConfig cfg;
  cfg.adder_stages = 2;
  cfg.mult_stages = 2;
  MatmulSeuConfig camp;
  camp.faults = 24;
  const MatmulSeuResult a = run_matmul_campaign(cfg, camp);
  const MatmulSeuResult b = run_matmul_campaign(cfg, camp);

  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.silent, b.silent);

  EXPECT_GT(a.injected, 0);
  EXPECT_EQ(a.masked + a.silent, a.injected);
  // The bare kernel has no detection hardware: some upsets must land in
  // the result as silent corruptions.
  EXPECT_GT(a.silent, 0);
  EXPECT_GT(a.sdc_fraction(), 0.0);
  EXPECT_LE(a.sdc_fraction(), 1.0);
}

// SECDED accumulators: every single-bit accumulator upset is repaired on
// the next read, so accumulator SDC must drop to exactly zero while the
// corrector's repair count proves the upsets actually landed.
TEST(SeuCampaign, EccEliminatesAccumulatorSdc) {
  kernel::PeConfig cfg;
  cfg.adder_stages = 2;
  cfg.mult_stages = 2;
  MatmulSeuConfig camp;
  camp.faults = 24;
  camp.accumulator_fraction = 1.0;  // aim everything at the BRAM bank

  const MatmulSeuResult bare = run_matmul_campaign(cfg, camp);
  EXPECT_EQ(bare.acc_injected, bare.injected);
  EXPECT_GT(bare.acc_silent, 0) << "unprotected bank must show SDC";

  camp.scheme = fault::Scheme::kEcc;
  const MatmulSeuResult ecc = run_matmul_campaign(cfg, camp);
  EXPECT_EQ(ecc.injected, bare.injected) << "same campaign either way";
  EXPECT_EQ(ecc.acc_silent, 0);
  EXPECT_EQ(ecc.silent, 0);
  EXPECT_GT(ecc.corrected, 0) << "upsets landed and were repaired";
  EXPECT_EQ(ecc.masked + ecc.corrected + ecc.detected + ecc.silent,
            ecc.injected);

  // Determinism holds with the corrector in the loop.
  const MatmulSeuResult again = run_matmul_campaign(cfg, camp);
  EXPECT_EQ(again.corrected, ecc.corrected);
  EXPECT_EQ(again.masked, ecc.masked);
}

// Persistent configuration upsets ride on top of the legacy campaign; a
// scrub period bounds how long they corrupt the stream. Deep pipelines so
// enough cross-stage lanes are architecturally live for a stuck route to
// reach the result (at 2+2 nearly every signal dies inside its own stage).
TEST(SeuCampaign, ConfigFaultsAreDeterministicAndScrubBounded) {
  kernel::PeConfig cfg;
  cfg.adder_stages = 8;
  cfg.mult_stages = 5;
  MatmulSeuConfig camp;
  camp.faults = 16;
  camp.config_fraction = 0.5;

  const MatmulSeuResult a = run_matmul_campaign(cfg, camp);
  const MatmulSeuResult b = run_matmul_campaign(cfg, camp);
  EXPECT_EQ(a.config_injected, 8);
  EXPECT_EQ(b.config_injected, a.config_injected);
  EXPECT_EQ(b.config_silent, a.config_silent);
  EXPECT_EQ(b.silent, a.silent);
  EXPECT_GT(a.config_silent, 0)
      << "an unscrubbed stuck datapath must corrupt the result";
  EXPECT_EQ(a.masked + a.corrected + a.detected + a.silent, a.injected);

  // Config faults append to the legacy draws: the base campaign's verdicts
  // are untouched.
  MatmulSeuConfig legacy = camp;
  legacy.config_fraction = 0.0;
  const MatmulSeuResult base = run_matmul_campaign(cfg, legacy);
  EXPECT_EQ(a.injected, base.injected + a.config_injected);
  EXPECT_EQ(a.acc_silent, base.acc_silent);
  EXPECT_EQ(a.latch_silent, base.latch_silent);

  // An aggressive scrub period cannot increase config SDC.
  MatmulSeuConfig scrubbed = camp;
  scrubbed.scrub_period_cycles = 8;
  const MatmulSeuResult s = run_matmul_campaign(cfg, scrubbed);
  EXPECT_EQ(s.config_injected, a.config_injected);
  EXPECT_LE(s.config_silent, a.config_silent);
}

// The CRAM-aware selection: with the configuration term zeroed it matches
// the latch-only overload, and shrinking the scrub period monotonically
// shrinks the CRAM FIT it reports.
TEST(SeuCampaign, CramSelectionRespondsToScrubPeriod) {
  const SweepResult sweep =
      sweep_unit(units::UnitKind::kMultiplier, fp::FpFormat::binary64());
  const SeuRateModel rate;
  const Selection sel = select_min_max_opt(sweep);
  const double cap = rate.fit(sel.opt.pipeline_ffs, 1.0) * 0.6;

  CramRateModel zero;
  zero.fit_per_mbit = 0.0;
  const ReliableSelection with_zero =
      select_min_max_opt_reliable(sweep, cap, rate, 1.0, zero);
  const ReliableSelection latch_only =
      select_min_max_opt_reliable(sweep, cap, rate, 1.0);
  EXPECT_EQ(with_zero.opt.stages, latch_only.opt.stages);
  EXPECT_EQ(with_zero.feasible, latch_only.feasible);
  EXPECT_DOUBLE_EQ(with_zero.cram_fit_at_opt, 0.0);

  double prev_cram = 1e300;
  bool was_feasible = false;
  for (const double period : {0.0, 0.01, 1e-3, 1e-4, 1e-5}) {
    CramRateModel cram;
    cram.scrub.period_s = period;
    cram.scrub.duty = 0.1;
    const ReliableSelection rs =
        select_min_max_opt_reliable(sweep, cap, rate, 1.0, cram);
    EXPECT_GE(rs.fit_at_opt, rs.cram_fit_at_opt);
    if (rs.feasible) {
      EXPECT_LE(rs.fit_at_opt, cap);
    }
    // The per-point CRAM term shrinks with the period, so a feasible
    // selection can never become infeasible under faster scrubbing.
    EXPECT_GE(static_cast<int>(rs.feasible), static_cast<int>(was_feasible))
        << "feasibility lost at period " << period;
    // At the unconstrained opt's footprint the CRAM FIT is monotone too.
    const double opt_cram = cram.fit(sel.opt.area);
    EXPECT_LE(opt_cram, prev_cram + 1e-9);
    prev_cram = opt_cram;
    was_feasible = rs.feasible;
  }
  EXPECT_TRUE(was_feasible)
      << "aggressive scrubbing must re-admit some design under the cap";
}

}  // namespace
}  // namespace flopsim::analysis
