// Accuracy analysis utilities.
#include "analysis/accuracy.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace flopsim::analysis {
namespace {

fp::u64 enc64(double x) {
  fp::FpEnv env = fp::FpEnv::ieee();
  return fp::from_double(x, fp::FpFormat::binary64(), env).bits;
}

fp::u64 enc32(double x) {
  fp::FpEnv env = fp::FpEnv::ieee();
  return fp::from_double(x, fp::FpFormat::binary32(), env).bits;
}

TEST(Accuracy, ExactMatchIsZeroError) {
  const std::vector<fp::u64> got = {enc32(1.5), enc32(-2.25)};
  const std::vector<fp::u64> ref = {enc64(1.5), enc64(-2.25)};
  const AccuracyStats st =
      compare_to_reference(got, fp::FpFormat::binary32(), ref);
  EXPECT_EQ(st.compared, 2);
  EXPECT_DOUBLE_EQ(st.max_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(st.max_ulp_error, 0.0);
}

TEST(Accuracy, RoundedValueIsWithinHalfUlp) {
  // 1/3 in binary32 vs exact binary64: correctly rounded -> <= 0.5 ulp.
  const std::vector<fp::u64> got = {enc32(1.0 / 3.0)};
  const std::vector<fp::u64> ref = {enc64(1.0 / 3.0)};
  const AccuracyStats st =
      compare_to_reference(got, fp::FpFormat::binary32(), ref);
  EXPECT_GT(st.max_ulp_error, 0.0);
  EXPECT_LE(st.max_ulp_error, 0.5 + 1e-9);
  EXPECT_LT(st.max_rel_error, std::ldexp(1.0, -23));
}

TEST(Accuracy, UlpErrorKnownDistance) {
  // One binary32 ulp away from the reference -> ~1 ulp error.
  fp::FpEnv env = fp::FpEnv::ieee();
  const fp::FpValue x = fp::from_double(1.5, fp::FpFormat::binary32(), env);
  const fp::FpValue next = fp::next_up(x);
  EXPECT_NEAR(ulp_error(next, 1.5), 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(ulp_error(x, 1.5), 0.0);
}

TEST(Accuracy, SpecialsHandled) {
  const fp::FpValue inf = fp::make_inf(fp::FpFormat::binary32());
  EXPECT_DOUBLE_EQ(ulp_error(inf, HUGE_VAL), 0.0);
  EXPECT_TRUE(std::isinf(ulp_error(inf, 1.0)));
  const fp::FpValue nan = fp::make_qnan(fp::FpFormat::binary32());
  EXPECT_DOUBLE_EQ(ulp_error(nan, std::nan("")), 0.0);
  EXPECT_TRUE(std::isinf(ulp_error(nan, 1.0)));
}

TEST(Accuracy, ZeroAndNonfiniteRefsSkipped) {
  const std::vector<fp::u64> got = {enc32(0.0), enc32(1.0), enc32(2.0)};
  const std::vector<fp::u64> ref = {enc64(0.0),
                                    fp::make_inf(fp::FpFormat::binary64()).bits,
                                    enc64(2.0)};
  const AccuracyStats st =
      compare_to_reference(got, fp::FpFormat::binary32(), ref);
  EXPECT_EQ(st.compared, 1);
  EXPECT_EQ(st.exceptional, 2);
}

TEST(Accuracy, MeanLeMax) {
  std::vector<fp::u64> got, ref;
  for (int i = 1; i <= 20; ++i) {
    got.push_back(enc32(i + 0.001 * i));
    ref.push_back(enc64(i));
  }
  const AccuracyStats st =
      compare_to_reference(got, fp::FpFormat::binary32(), ref);
  EXPECT_GT(st.mean_rel_error, 0.0);
  EXPECT_LE(st.mean_rel_error, st.max_rel_error);
}

TEST(Accuracy, SizeMismatchThrows) {
  EXPECT_THROW(compare_to_reference({1, 2}, fp::FpFormat::binary32(), {1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace flopsim::analysis
