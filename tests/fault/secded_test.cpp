// SECDED(72,64) code invariants: exhaustive single-bit correction over all
// 72 codeword positions, double-bit detection, syndrome uniqueness, and
// the area model's no-extra-BRAM claim.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "fault/secded.hpp"

namespace flopsim::fault {
namespace {

std::vector<fp::u64> test_words() {
  std::vector<fp::u64> words{0,
                             ~fp::u64{0},
                             0x5555555555555555ull,
                             0xAAAAAAAAAAAAAAAAull,
                             0x3FF0000000000000ull,  // 1.0 as binary64
                             1,
                             fp::u64{1} << 63};
  std::mt19937_64 rng(0xC0DE);
  for (int i = 0; i < 8; ++i) words.push_back(rng());
  return words;
}

TEST(Secded, CleanWordsDecodeClean) {
  for (const fp::u64 w : test_words()) {
    const SecdedDecode d = secded_decode(w, secded_encode(w));
    EXPECT_EQ(d.status, SecdedStatus::kClean);
    EXPECT_EQ(d.syndrome, 0);
    EXPECT_EQ(d.data, w);
  }
  EXPECT_EQ(secded_encode(0), 0);  // all-zero codeword is valid
}

// Every one of the 72 single-bit flips (64 data + 8 check) must be
// corrected back to the original word and check byte.
TEST(Secded, CorrectsEverySingleBitFlipExhaustively) {
  for (const fp::u64 w : test_words()) {
    const std::uint8_t check = secded_encode(w);
    for (int pos = 0; pos < kSecdedWordBits; ++pos) {
      SCOPED_TRACE(pos);
      fp::u64 data = w;
      std::uint8_t chk = check;
      if (pos < kSecdedDataBits) {
        data ^= fp::u64{1} << pos;
      } else {
        chk ^= static_cast<std::uint8_t>(1u << (pos - kSecdedDataBits));
      }
      const SecdedDecode d = secded_decode(data, chk);
      EXPECT_EQ(d.status, pos < kSecdedDataBits
                              ? SecdedStatus::kCorrectedData
                              : SecdedStatus::kCorrectedCheck);
      EXPECT_EQ(d.data, w);
      EXPECT_EQ(d.check, check);
    }
  }
}

// Every pair of distinct flips must be detected (never miscorrected into a
// clean verdict, never silently accepted). Exhaustive: 72*71/2 pairs.
TEST(Secded, DetectsEveryDoubleBitFlipExhaustively) {
  const auto flip = [](fp::u64& data, std::uint8_t& chk, int pos) {
    if (pos < kSecdedDataBits) {
      data ^= fp::u64{1} << pos;
    } else {
      chk ^= static_cast<std::uint8_t>(1u << (pos - kSecdedDataBits));
    }
  };
  for (const fp::u64 w : {fp::u64{0}, fp::u64{0x0123456789ABCDEFull}}) {
    const std::uint8_t check = secded_encode(w);
    for (int p = 0; p < kSecdedWordBits; ++p) {
      for (int q = p + 1; q < kSecdedWordBits; ++q) {
        fp::u64 data = w;
        std::uint8_t chk = check;
        flip(data, chk, p);
        flip(data, chk, q);
        const SecdedDecode d = secded_decode(data, chk);
        ASSERT_EQ(d.status, SecdedStatus::kDoubleError)
            << "flips at " << p << "," << q;
      }
    }
  }
}

// The code works because every single flip produces a distinct (syndrome,
// parity) signature: 72 distinct nonzero positions.
TEST(Secded, SingleFlipSyndromesAreUnique) {
  const fp::u64 w = 0xDEADBEEFCAFEF00Dull;
  const std::uint8_t check = secded_encode(w);
  std::set<int> seen;
  for (int pos = 0; pos < kSecdedWordBits; ++pos) {
    fp::u64 data = w;
    std::uint8_t chk = check;
    if (pos < kSecdedDataBits) {
      data ^= fp::u64{1} << pos;
    } else {
      chk ^= static_cast<std::uint8_t>(1u << (pos - kSecdedDataBits));
    }
    const SecdedDecode d = secded_decode(data, chk);
    // The overall-parity bit has syndrome 0; all others must be distinct
    // codeword positions.
    seen.insert(d.syndrome);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kSecdedWordBits));
}

TEST(Secded, AreaModelChargesNoBram) {
  const device::Resources r =
      secded_area(device::TechModel::virtex2pro7(), device::Objective::kArea);
  EXPECT_GT(r.luts, 0);
  EXPECT_GT(r.slices, 0);
  EXPECT_EQ(r.brams, 0);   // check byte rides the BRAM parity bits
  EXPECT_EQ(r.bmults, 0);
}

}  // namespace
}  // namespace flopsim::fault
