// Configuration-memory upset model: persistent stuck-until-repair faults,
// deterministic CRAM campaigns, the CampaignSpec unification contract, and
// the essential-bit / scrub-window arithmetic.
#include <gtest/gtest.h>

#include <vector>

#include "fault/campaign.hpp"
#include "fault/cram.hpp"

namespace flopsim::fault {
namespace {

// A kConfig fault forces `stuck` under `mask` on every latch edge in
// [cycle, repair_cycle) and nothing outside that window.
TEST(Cram, ConfigFaultPersistsUntilRepair) {
  Fault f;
  f.cycle = 2;
  f.site = FaultSite::kConfig;
  f.index = 0;
  f.lane = 1;
  f.bit = 4;
  f.mask = 0x30;
  f.stuck = 0x10;
  f.repair_cycle = 5;
  FaultInjector injector({f});

  rtl::SignalSet latch;
  latch[1] = 0xFF;
  injector.on_latch(1, 0, latch);
  EXPECT_EQ(latch[1], 0xFFu) << "before the strike";

  injector.on_latch(2, 0, latch);
  EXPECT_EQ(latch[1], 0xDFu) << "strike edge: bits 5:4 forced to 01";
  ASSERT_EQ(injector.applied().size(), 1u);
  EXPECT_EQ(injector.applied()[0].before, 0xFFu);

  latch[1] = 0xFF;  // downstream logic rewrites the lane...
  injector.on_latch(3, 0, latch);
  EXPECT_EQ(latch[1], 0xDFu) << "...but the rewired logic forces it again";
  EXPECT_EQ(injector.applied().size(), 1u) << "logged once, not per cycle";

  latch[1] = 0xFF;
  injector.on_latch(5, 0, latch);
  EXPECT_EQ(latch[1], 0xFFu) << "scrubbed back at the repair edge";
  injector.on_latch(6, 0, latch);
  EXPECT_EQ(latch[1], 0xFFu);

  // Wrong stage is never touched.
  latch[1] = 0xAB;
  injector.on_latch(3, 1, latch);
  EXPECT_EQ(latch[1], 0xABu);
}

TEST(Cram, ConfigFaultValidation) {
  Fault f;
  f.site = FaultSite::kConfig;
  f.lane = 0;
  f.mask = 0;  // a config upset must drive at least one bit
  EXPECT_THROW(FaultInjector({f}), std::invalid_argument);
  f.mask = 1;
  f.lane = kValidLane;  // data lanes only
  EXPECT_THROW(FaultInjector({f}), std::invalid_argument);
}

LatchProfile adder_profile(std::uint64_t seed) {
  units::UnitConfig cfg;
  cfg.stages = 4;
  units::FpUnit unit(units::UnitKind::kAdder, fp::FpFormat::binary32(), cfg);
  return profile_unit_latches(unit, 16, seed);
}

CampaignSpec cram_spec(const LatchProfile& profile, long horizon, int count,
                       std::uint64_t seed, long scrub_period_cycles = 0) {
  CampaignSpec spec;
  spec.source = CampaignSpec::Source::kCram;
  spec.profile = &profile;
  spec.horizon = horizon;
  spec.count = count;
  spec.seed = seed;
  spec.scrub_period_cycles = scrub_period_cycles;
  return spec;
}

TEST(Cram, CramCampaignIsDeterministicAndWellFormed) {
  const LatchProfile profile = adder_profile(7);
  const FaultCampaign a = FaultCampaign::make(cram_spec(profile, 100, 12, 42, 16));
  const FaultCampaign b = FaultCampaign::make(cram_spec(profile, 100, 12, 42, 16));
  ASSERT_EQ(a.size(), 12u);
  EXPECT_EQ(a.faults(), b.faults());

  for (const Fault& f : a.faults()) {
    EXPECT_EQ(f.site, FaultSite::kConfig);
    EXPECT_GE(f.cycle, 0);
    EXPECT_LT(f.cycle, 100);
    EXPECT_NE(f.mask, 0u);
    EXPECT_EQ(f.stuck & ~f.mask, 0u) << "stuck value confined to the mask";
    EXPECT_NE(f.mask & (fp::u64{1} << f.bit), 0u)
        << "the struck bit itself is driven";
    // Repair lands on the first 16-cycle scrub boundary after the strike.
    EXPECT_EQ(f.repair_cycle, (f.cycle / 16 + 1) * 16);
    EXPECT_GT(f.repair_cycle, f.cycle);
  }

  // No scrub period: the upset persists for the whole mission.
  const FaultCampaign never = FaultCampaign::make(cram_spec(profile, 100, 4, 42));
  for (const Fault& f : never.faults()) EXPECT_EQ(f.repair_cycle, -1);

  // Different seeds draw different campaigns.
  const FaultCampaign c = FaultCampaign::make(cram_spec(profile, 100, 12, 43, 16));
  EXPECT_NE(a.faults(), c.faults());
}

// The unified CampaignSpec constructor must reproduce every legacy factory
// draw-for-draw. Comparing against the deprecated factories is this test's
// whole point, so the deprecation warnings are silenced here — and only
// here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(Cram, CampaignSpecReproducesLegacyFactories) {
  const LatchProfile profile = adder_profile(9);

  CampaignSpec spec;
  spec.source = CampaignSpec::Source::kRandom;
  spec.profile = &profile;
  spec.horizon = 200;
  spec.count = 10;
  spec.seed = 77;
  EXPECT_EQ(FaultCampaign::make(spec).faults(),
            FaultCampaign::random(profile, 200, 10, 77).faults());

  spec.source = CampaignSpec::Source::kPoisson;
  spec.rate = 1e-4;
  EXPECT_EQ(FaultCampaign::make(spec).faults(),
            FaultCampaign::poisson(profile, 200, 1e-4, 77).faults());

  spec.source = CampaignSpec::Source::kAccumulator;
  spec.rows = 8;
  spec.word_bits = 32;
  EXPECT_EQ(
      FaultCampaign::make(spec).faults(),
      FaultCampaign::random_accumulator(8, 32, 200, 10, 77).faults());

  spec.source = CampaignSpec::Source::kCram;
  spec.scrub_period_cycles = 32;
  EXPECT_EQ(FaultCampaign::make(spec).faults(),
            FaultCampaign::cram(profile, 200, 10, 77, 32).faults());

  spec.source = CampaignSpec::Source::kList;
  spec.faults = FaultCampaign::cram(profile, 200, 10, 77, 32).faults();
  EXPECT_EQ(FaultCampaign::make(spec).faults(), spec.faults);

  // Sources that sample a profile refuse to run without one.
  CampaignSpec missing;
  missing.source = CampaignSpec::Source::kRandom;
  missing.horizon = 10;
  missing.count = 1;
  EXPECT_THROW(FaultCampaign::make(missing), std::invalid_argument);

  // Accumulator campaigns may now reach the SECDED check byte (72 bits)
  // but nothing beyond it.
  CampaignSpec acc;
  acc.source = CampaignSpec::Source::kAccumulator;
  acc.rows = 4;
  acc.word_bits = 72;
  acc.horizon = 10;
  acc.count = 64;
  acc.seed = 3;
  bool check_byte_hit = false;
  for (const Fault& f : FaultCampaign::make(acc).faults()) {
    EXPECT_LT(f.bit, 72);
    check_byte_hit |= f.bit >= 64;
  }
  EXPECT_TRUE(check_byte_hit);
  acc.word_bits = 73;
  EXPECT_THROW(FaultCampaign::make(acc), std::invalid_argument);
}
#pragma GCC diagnostic pop

TEST(Cram, EssentialBitsScaleWithFootprint) {
  const CramModel model;
  device::Resources r;
  EXPECT_EQ(model.essential_bits(r), 0.0);

  r.slices = 100;
  const double slices_only = model.essential_bits(r);
  EXPECT_GT(slices_only, 0.0);

  r.bmults = 4;
  r.brams = 2;
  const double with_blocks = model.essential_bits(r);
  EXPECT_GT(with_blocks, slices_only);

  device::Resources big = r;
  big.slices = 200;
  EXPECT_GT(model.essential_bits(big), with_blocks);
  EXPECT_NEAR(model.essential_mbit(r), model.essential_bits(r) / 1e6, 1e-12);

  // Fully-essential counting is proportionally larger.
  CramModel all = model;
  all.essential_fraction = 1.0;
  EXPECT_NEAR(all.essential_bits(r),
              model.essential_bits(r) / model.essential_fraction, 1e-9);
}

TEST(Cram, ScrubWindowBoundsExposure) {
  ScrubModel off;
  EXPECT_FALSE(off.enabled());
  EXPECT_DOUBLE_EQ(off.mean_exposure_s(3600.0), 1800.0);

  ScrubModel fast;
  fast.period_s = 0.01;
  EXPECT_TRUE(fast.enabled());
  EXPECT_DOUBLE_EQ(fast.mean_exposure_s(3600.0), 0.005);

  // Shorter scrub periods monotonically shrink the observe probability.
  double prev = 1.1;
  for (const double period : {0.0, 1.0, 0.1, 0.01, 1e-3}) {
    ScrubModel m;
    m.period_s = period;
    m.duty = 0.1;
    const double p = m.observe_probability(3600.0);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_LT(p, prev + 1e-12);
    prev = p;
  }
  ScrubModel idle;
  idle.period_s = 0.01;
  idle.duty = 0.0;  // kernel never runs: upsets can never be observed
  EXPECT_DOUBLE_EQ(idle.observe_probability(3600.0), 0.0);
}

}  // namespace
}  // namespace flopsim::fault
