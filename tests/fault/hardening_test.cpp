// Hardened-core invariants: TMR corrects and duplicate/parity detect every
// single-bit latch upset, and the cost model stays within sane bounds.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "analysis/seu.hpp"
#include "fault/hardening.hpp"

namespace flopsim::fault {
namespace {

std::vector<int> test_depths(units::UnitKind kind, fp::FpFormat fmt) {
  units::UnitConfig cfg;
  const units::FpUnit probe(kind, fmt, cfg);
  const int max = probe.max_stages();
  return {1, (1 + max) / 2, max};
}

analysis::UnitSeuResult campaign(units::UnitKind kind, fp::FpFormat fmt,
                                 int stages, Scheme scheme) {
  units::UnitConfig cfg;
  cfg.stages = stages;
  analysis::SeuCampaignConfig camp;
  camp.vectors = 20;
  camp.faults = 24;
  camp.scheme = scheme;
  return analysis::run_unit_campaign(kind, fmt, cfg, camp);
}

// TMR must correct every single-bit latch upset: the voted output never
// differs from the golden run.
TEST(Hardening, TmrCorrectsEverySingleBitUpset) {
  const fp::FpFormat fmt = fp::FpFormat::binary16();
  for (const units::UnitKind kind :
       {units::UnitKind::kAdder, units::UnitKind::kMultiplier}) {
    for (const int stages : test_depths(kind, fmt)) {
      const analysis::UnitSeuResult r =
          campaign(kind, fmt, stages, Scheme::kTmr);
      SCOPED_TRACE(std::string(units::to_string(kind)) + " s" +
                   std::to_string(stages));
      EXPECT_EQ(r.injected, 24);
      EXPECT_EQ(r.silent, 0);
      // Every fault that corrupted copy 0's output was voted away.
      EXPECT_EQ(r.corrected, r.corrupted);
      EXPECT_EQ(r.masked + r.corrected, r.injected);
    }
  }
}

// Duplicate-and-compare must flag every output-corrupting upset.
TEST(Hardening, DuplicateDetectsEverySingleBitUpset) {
  const fp::FpFormat fmt = fp::FpFormat::binary16();
  for (const int stages : test_depths(units::UnitKind::kAdder, fmt)) {
    const analysis::UnitSeuResult r =
        campaign(units::UnitKind::kAdder, fmt, stages, Scheme::kDuplicate);
    SCOPED_TRACE("s" + std::to_string(stages));
    EXPECT_EQ(r.silent, 0);
    EXPECT_GE(r.detected, r.corrupted);  // compare fires on any divergence
  }
}

// Parity covers every single-bit latch upset (odd weight by definition).
TEST(Hardening, ParityDetectsEverySingleBitUpset) {
  const fp::FpFormat fmt = fp::FpFormat::binary16();
  for (const int stages : test_depths(units::UnitKind::kMultiplier, fmt)) {
    const analysis::UnitSeuResult r =
        campaign(units::UnitKind::kMultiplier, fmt, stages, Scheme::kParity);
    SCOPED_TRACE("s" + std::to_string(stages));
    EXPECT_EQ(r.silent, 0);
  }
}

TEST(Hardening, SchemeNamesRoundTrip) {
  for (const Scheme s : {Scheme::kNone, Scheme::kParity, Scheme::kResidue,
                         Scheme::kDuplicate, Scheme::kTmr, Scheme::kEcc}) {
    EXPECT_EQ(parse_scheme(to_string(s)), s);
  }
  EXPECT_EQ(parse_scheme("dup"), Scheme::kDuplicate);
  EXPECT_EQ(parse_scheme("secded"), Scheme::kEcc);
  EXPECT_THROW(parse_scheme("bogus"), std::invalid_argument);
}

// The non-throwing primitive the CLI flags route through.
TEST(Hardening, TryParseSchemeNeverThrows) {
  EXPECT_EQ(try_parse_scheme("tmr"), Scheme::kTmr);
  EXPECT_EQ(try_parse_scheme("ecc"), Scheme::kEcc);
  EXPECT_EQ(try_parse_scheme("secded"), Scheme::kEcc);
  EXPECT_EQ(try_parse_scheme("bogus"), std::nullopt);
  EXPECT_EQ(try_parse_scheme(""), std::nullopt);
  EXPECT_EQ(try_parse_scheme("ECC"), std::nullopt);  // names are exact
}

// SECDED buys accumulator protection far below duplication's price: no
// second datapath copy, no extra BRAM (the check byte rides the block
// RAM's parity bits).
TEST(Hardening, EccCostsLessThanDuplication) {
  for (const auto& [kind, fmt] :
       {std::pair{units::UnitKind::kMultiplier, fp::FpFormat::binary32()},
        std::pair{units::UnitKind::kAdder, fp::FpFormat::binary64()}}) {
    units::UnitConfig cfg;
    cfg.stages = 6;
    const units::FpUnit unit(kind, fmt, cfg);
    SCOPED_TRACE(unit.name());

    const HardeningCost ecc = hardening_cost(unit, Scheme::kEcc);
    const HardeningCost dup = hardening_cost(unit, Scheme::kDuplicate);
    EXPECT_GT(ecc.area_factor, 1.0);
    EXPECT_LT(ecc.overhead.slices, dup.overhead.slices);
    EXPECT_LT(ecc.area_factor, dup.area_factor);
    EXPECT_LT(ecc.power_mw_100, dup.power_mw_100);
    EXPECT_LT(ecc.power_factor, dup.power_factor);
    EXPECT_EQ(ecc.overhead.brams, 0);
    EXPECT_EQ(ecc.extra_latency_cycles, 1);
    EXPECT_DOUBLE_EQ(ecc.freq_factor, 1.0);
  }
}

TEST(Hardening, CostFactorsStayInSaneBounds) {
  for (const auto& [kind, fmt] :
       {std::pair{units::UnitKind::kMultiplier, fp::FpFormat::binary32()},
        std::pair{units::UnitKind::kAdder, fp::FpFormat::binary64()}}) {
    units::UnitConfig cfg;
    cfg.stages = 6;
    const units::FpUnit unit(kind, fmt, cfg);
    SCOPED_TRACE(unit.name());

    const HardeningCost none = hardening_cost(unit, Scheme::kNone);
    EXPECT_DOUBLE_EQ(none.area_factor, 1.0);
    EXPECT_DOUBLE_EQ(none.freq_factor, 1.0);
    EXPECT_EQ(none.extra_latency_cycles, 0);

    const HardeningCost parity = hardening_cost(unit, Scheme::kParity);
    const HardeningCost residue = hardening_cost(unit, Scheme::kResidue);
    const HardeningCost dup = hardening_cost(unit, Scheme::kDuplicate);
    const HardeningCost tmr = hardening_cost(unit, Scheme::kTmr);

    // Light checkers: well under a second copy.
    EXPECT_GT(parity.area_factor, 1.0);
    EXPECT_LT(parity.area_factor, 1.6);
    EXPECT_GT(residue.area_factor, 1.0);
    EXPECT_LT(residue.area_factor, 1.6);

    // Duplication: two copies plus a comparator; TMR: three plus a voter.
    EXPECT_GE(dup.area_factor, 2.0);
    EXPECT_LT(dup.area_factor, 3.0);
    EXPECT_GE(tmr.area_factor, 3.0);
    EXPECT_LT(tmr.area_factor, 4.5);
    EXPECT_EQ(dup.extra_latency_cycles, 1);
    EXPECT_EQ(tmr.extra_latency_cycles, 1);

    for (const HardeningCost& c : {parity, residue, dup, tmr}) {
      EXPECT_LE(c.freq_factor, 1.0 + 1e-9);
      EXPECT_GT(c.freq_factor, 0.5);
      EXPECT_GE(c.power_factor, 1.0);
      EXPECT_EQ(c.total.slices, c.base.slices + c.overhead.slices);
      EXPECT_GE(c.power_mw_100, c.base_power_mw_100);
    }
    EXPECT_GT(tmr.power_factor, dup.power_factor);
    EXPECT_GT(dup.power_factor, parity.power_factor);
  }
}

}  // namespace
}  // namespace flopsim::fault
