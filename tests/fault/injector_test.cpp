// FaultInjector and FaultCampaign: seeded reproducibility and the
// zero-fault bit-exactness guarantee.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/fault.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::fault {
namespace {

units::FpUnit make_unit(units::UnitKind kind, fp::FpFormat fmt, int stages) {
  units::UnitConfig cfg;
  cfg.stages = stages;
  return units::FpUnit(kind, fmt, cfg);
}

LatchProfile profile_of(units::UnitKind kind, fp::FpFormat fmt, int stages) {
  units::FpUnit unit = make_unit(kind, fmt, stages);
  return profile_unit_latches(unit, 24, 0x5eed);
}

CampaignSpec random_spec(const LatchProfile& profile, long horizon, int count,
                         std::uint64_t seed) {
  CampaignSpec spec;
  spec.source = CampaignSpec::Source::kRandom;
  spec.profile = &profile;
  spec.horizon = horizon;
  spec.count = count;
  spec.seed = seed;
  return spec;
}

TEST(FaultCampaign, SameSeedSameRandomFaultList) {
  const LatchProfile profile =
      profile_of(units::UnitKind::kAdder, fp::FpFormat::binary32(), 6);
  const FaultCampaign a = FaultCampaign::make(random_spec(profile, 40, 32, 0x5eed));
  const FaultCampaign b = FaultCampaign::make(random_spec(profile, 40, 32, 0x5eed));
  ASSERT_EQ(a.size(), 32u);
  EXPECT_EQ(a.faults(), b.faults());

  const FaultCampaign c = FaultCampaign::make(random_spec(profile, 40, 32, 0x5eee));
  EXPECT_NE(a.faults(), c.faults());
}

TEST(FaultCampaign, SameSeedSamePoissonFaultList) {
  const LatchProfile profile =
      profile_of(units::UnitKind::kMultiplier, fp::FpFormat::binary32(), 5);
  // Rate chosen so the expected count is a handful of faults.
  const double rate = 8.0 / (static_cast<double>(profile.total_bits()) * 40.0);
  CampaignSpec spec;
  spec.source = CampaignSpec::Source::kPoisson;
  spec.profile = &profile;
  spec.horizon = 40;
  spec.rate = rate;
  spec.seed = 7;
  const FaultCampaign a = FaultCampaign::make(spec);
  const FaultCampaign b = FaultCampaign::make(spec);
  EXPECT_EQ(a.faults(), b.faults());
}

TEST(FaultCampaign, WorkloadIsDeterministic) {
  const std::vector<units::UnitInput> a = campaign_workload(
      units::UnitKind::kAdder, fp::FpFormat::binary64(), 16, 0x5eed);
  const std::vector<units::UnitInput> b = campaign_workload(
      units::UnitKind::kAdder, fp::FpFormat::binary64(), 16, 0x5eed);
  ASSERT_EQ(a.size(), 16u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].b, b[i].b);
    EXPECT_EQ(a[i].subtract, b[i].subtract);
  }
}

TEST(FaultCampaign, RandomFaultsLandInsideTheProfile) {
  const LatchProfile profile =
      profile_of(units::UnitKind::kAdder, fp::FpFormat::binary64(), 8);
  const FaultCampaign camp = FaultCampaign::make(random_spec(profile, 50, 64, 1));
  for (const Fault& f : camp.faults()) {
    EXPECT_EQ(f.site, FaultSite::kStageLatch);
    EXPECT_GE(f.cycle, 0);
    EXPECT_LT(f.cycle, 50);
    ASSERT_GE(f.index, 0);
    ASSERT_LT(f.index, profile.stages());
    ASSERT_GE(f.lane, 0);  // valid/flags excluded by default
    ASSERT_LT(f.lane, rtl::kMaxSignals);
    // The addressed bit was observed occupied during calibration.
    const fp::u64 mask =
        profile.occupied[static_cast<std::size_t>(f.index)]
                        [static_cast<std::size_t>(f.lane)];
    EXPECT_NE(mask & (fp::u64{1} << f.bit), 0u);
  }
}

// An attached injector with an empty fault list must leave the pipeline
// bit-identical to an unobserved twin: latches, outputs, and flags.
TEST(FaultInjector, EmptyCampaignIsBitExact) {
  for (const fp::FpFormat fmt :
       {fp::FpFormat::binary32(), fp::FpFormat::binary64()}) {
    for (const units::UnitKind kind :
         {units::UnitKind::kAdder, units::UnitKind::kMultiplier}) {
      units::UnitConfig probe_cfg;
      const units::FpUnit probe(kind, fmt, probe_cfg);
      const int max = probe.max_stages();
      for (const int stages : {1, (1 + max) / 2, max}) {
        units::FpUnit observed = make_unit(kind, fmt, stages);
        units::FpUnit bare = make_unit(kind, fmt, stages);
        FaultInjector injector = FaultCampaign::from_list({}).make_injector();
        observed.set_latch_observer(&injector);

        const std::vector<units::UnitInput> workload =
            campaign_workload(kind, fmt, 24, 0x5eed);
        const int horizon = 24 + observed.latency() + 2;
        for (int t = 0; t < horizon; ++t) {
          const std::optional<units::UnitInput> in =
              t < 24 ? std::optional<units::UnitInput>(
                           workload[static_cast<std::size_t>(t)])
                     : std::nullopt;
          observed.step(in);
          bare.step(in);

          const auto& lo = observed.latches();
          const auto& lb = bare.latches();
          ASSERT_EQ(lo.size(), lb.size());
          for (std::size_t s = 0; s < lo.size(); ++s) {
            EXPECT_EQ(lo[s].lane, lb[s].lane);
            EXPECT_EQ(lo[s].valid, lb[s].valid);
            EXPECT_EQ(lo[s].flags, lb[s].flags);
          }
          const std::optional<units::UnitOutput> oo = observed.output();
          const std::optional<units::UnitOutput> ob = bare.output();
          ASSERT_EQ(oo.has_value(), ob.has_value());
          if (oo.has_value()) {
            EXPECT_EQ(oo->result, ob->result);
            EXPECT_EQ(oo->flags, ob->flags);
          }
        }
        EXPECT_TRUE(injector.applied().empty());
      }
    }
  }
}

// An explicit fault flips exactly the addressed bit at the addressed cycle
// and is recorded in the applied log.
TEST(FaultInjector, ExplicitFaultFlipsAddressedBit) {
  units::FpUnit unit =
      make_unit(units::UnitKind::kAdder, fp::FpFormat::binary32(), 6);
  Fault f;
  f.cycle = 3;
  f.site = FaultSite::kStageLatch;
  f.index = 2;
  f.lane = 0;
  f.bit = 17;
  FaultInjector injector({f});
  unit.set_latch_observer(&injector);

  const std::vector<units::UnitInput> workload = campaign_workload(
      units::UnitKind::kAdder, fp::FpFormat::binary32(), 8, 0x5eed);
  for (int t = 0; t < 8; ++t) {
    unit.step(workload[static_cast<std::size_t>(t)]);
    if (t < 3) {
      EXPECT_TRUE(injector.applied().empty());
    }
    if (t == 3) {
      // The fault fires on the latch load of its cycle, not later.
      ASSERT_EQ(injector.applied().size(), 1u);
      EXPECT_EQ(unit.latches()[2].lane[0] & (fp::u64{1} << 17),
                injector.applied().front().after & (fp::u64{1} << 17));
    }
  }

  ASSERT_EQ(injector.applied().size(), 1u);
  const AppliedFault& applied = injector.applied().front();
  EXPECT_EQ(applied.fault, f);
  EXPECT_EQ(applied.before ^ applied.after, fp::u64{1} << 17);

  // rewind() re-arms the fault for a replay.
  injector.rewind();
  EXPECT_TRUE(injector.applied().empty());
  unit.reset();
  for (int t = 0; t < 8; ++t) {
    unit.step(workload[static_cast<std::size_t>(t)]);
  }
  ASSERT_EQ(injector.applied().size(), 1u);
  EXPECT_EQ(injector.applied().front().before ^
                injector.applied().front().after,
            fp::u64{1} << 17);
}

// Valid-bit and flag-byte faults address the pseudo-lanes.
TEST(FaultInjector, PseudoLaneFaultsHitValidAndFlags) {
  units::FpUnit unit =
      make_unit(units::UnitKind::kAdder, fp::FpFormat::binary32(), 4);
  Fault valid_fault{2, FaultSite::kStageLatch, 1, kValidLane, 0};
  Fault flag_fault{2, FaultSite::kStageLatch, 2, kFlagsLane, 3};
  FaultInjector injector({valid_fault, flag_fault});
  unit.set_latch_observer(&injector);

  const std::vector<units::UnitInput> workload = campaign_workload(
      units::UnitKind::kAdder, fp::FpFormat::binary32(), 6, 0x5eed);
  bool valid_before = false;
  std::uint8_t flags_before = 0;
  for (int t = 0; t < 6; ++t) {
    unit.step(workload[static_cast<std::size_t>(t)]);
    if (t == 2) {
      valid_before = unit.latches()[1].valid;
      flags_before = unit.latches()[2].flags;
    }
  }
  // The simulator latches stages back-to-front, so the applied log is in
  // stage order, not list order: match entries by their fault.
  ASSERT_EQ(injector.applied().size(), 2u);
  for (const AppliedFault& applied : injector.applied()) {
    if (applied.fault == valid_fault) {
      // The valid bit is reported as a 0/1 word; the latched value we read
      // back at t==2 is the post-flip one.
      EXPECT_EQ(applied.before, valid_before ? 0u : 1u);
      EXPECT_EQ(applied.after, valid_before ? 1u : 0u);
    } else {
      EXPECT_EQ(applied.fault, flag_fault);
      EXPECT_EQ(applied.before ^ applied.after, fp::u64{1} << 3);
      EXPECT_EQ(applied.before,
                static_cast<fp::u64>(flags_before ^ (1u << 3)));
    }
  }
}

}  // namespace
}  // namespace flopsim::fault
