// The crash-safe checkpoint sidecar: content-hash keying, append/load
// roundtrips, torn-tail tolerance (the one corruption a crash can cause),
// and the atomic rewrite that keeps a previously-torn file from ever
// swallowing new appends.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "fault/checkpoint.hpp"

namespace flopsim::fault {
namespace {

std::string temp_file(const char* stem) {
  return (std::filesystem::path(::testing::TempDir()) / stem).string();
}

std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int b : v) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

TEST(SpecHash, DeterministicAndFieldOrderSensitive) {
  const auto h = [](auto&& fold) {
    SpecHash s;
    fold(s);
    return s.value();
  };
  EXPECT_EQ(h([](SpecHash& s) { s.u64(1).u64(2); }),
            h([](SpecHash& s) { s.u64(1).u64(2); }));
  EXPECT_NE(h([](SpecHash& s) { s.u64(1).u64(2); }),
            h([](SpecHash& s) { s.u64(2).u64(1); }));
  EXPECT_NE(h([](SpecHash& s) { s.i64(-1); }),
            h([](SpecHash& s) { s.i64(1); }));
  EXPECT_NE(h([](SpecHash& s) { s.f64(0.5); }),
            h([](SpecHash& s) { s.f64(0.25); }));
}

TEST(SpecHash, StringsCarryALengthTerminator) {
  // Without a terminator "ab"+"c" and "a"+"bc" would collide — the
  // classic concatenation ambiguity a spec hash must not have.
  SpecHash a;
  a.str("ab").str("c");
  SpecHash b;
  b.str("a").str("bc");
  EXPECT_NE(a.value(), b.value());
}

TEST(SpecHash, HexIsSixteenLowercaseDigits) {
  SpecHash s;
  s.str("anything");
  const std::string hex = s.hex();
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(CheckpointPath, IsTheHexKeyUnderTheDirectory) {
  EXPECT_EQ(checkpoint_path("ckdir", 0xdeadbeefULL),
            std::string("ckdir/00000000deadbeef.ckpt"));
}

TEST(Checkpoint, WriterLoaderRoundtrip) {
  const std::string path = temp_file("roundtrip.ckpt");
  std::filesystem::remove(path);
  {
    CheckpointWriter w(path, 0xabcdULL, 64, 16, 2, /*fresh=*/true);
    ASSERT_TRUE(w.ok());
    w.append(0, bytes({0, 1, 2}));
    w.append(2, bytes({0xff, 0x00, 0x7f}));
    w.flush();
  }
  const CheckpointLoad load = load_checkpoint(path);
  ASSERT_TRUE(load.found);
  EXPECT_EQ(load.spec_hash, 0xabcdULL);
  EXPECT_EQ(load.count, 64u);
  EXPECT_EQ(load.chunk, 16u);
  ASSERT_EQ(load.chunks.size(), 2u);
  EXPECT_EQ(load.chunks.at(0), bytes({0, 1, 2}));
  EXPECT_EQ(load.chunks.at(2), bytes({0xff, 0x00, 0x7f}));
}

TEST(Checkpoint, MissingFileLoadsAsNotFound) {
  const CheckpointLoad load = load_checkpoint(temp_file("never-written.ckpt"));
  EXPECT_FALSE(load.found);
  EXPECT_TRUE(load.chunks.empty());
}

TEST(Checkpoint, TornTailKeepsEverythingBeforeIt) {
  const std::string path = temp_file("torn.ckpt");
  std::filesystem::remove(path);
  {
    CheckpointWriter w(path, 0x1ULL, 32, 8, 0, /*fresh=*/true);
    w.append(0, bytes({1}));
    w.append(1, bytes({2}));
    w.flush();
  }
  // Simulate a crash mid-append: a record line cut off before its newline.
  {
    std::ofstream f(path, std::ios::app | std::ios::binary);
    f << "c 2 0a0b";  // no trailing newline, truncated payload
  }
  const CheckpointLoad load = load_checkpoint(path);
  ASSERT_TRUE(load.found);
  // The tail tore on a byte boundary, so it still parses as hex — the
  // loader keeps it and the campaign's restore path rejects it by size.
  ASSERT_EQ(load.chunks.size(), 3u);
  EXPECT_EQ(load.chunks.at(0), bytes({1}));
  EXPECT_EQ(load.chunks.at(1), bytes({2}));
  EXPECT_EQ(load.chunks.at(2), bytes({0x0a, 0x0b}));
}

TEST(Checkpoint, GarbageTailIsDropped) {
  const std::string path = temp_file("garbage.ckpt");
  std::filesystem::remove(path);
  {
    CheckpointWriter w(path, 0x1ULL, 32, 8, 0, /*fresh=*/true);
    w.append(0, bytes({1}));
    w.flush();
  }
  {
    std::ofstream f(path, std::ios::app | std::ios::binary);
    f << "c 1 0a0";  // odd hex digit count: malformed, must be dropped
  }
  const CheckpointLoad load = load_checkpoint(path);
  ASSERT_TRUE(load.found);
  EXPECT_EQ(load.chunks.size(), 1u);
  EXPECT_TRUE(load.chunks.count(0));
}

TEST(Checkpoint, OutOfGridChunkIndicesAreDropped) {
  const std::string path = temp_file("outofgrid.ckpt");
  std::filesystem::remove(path);
  {
    // count=32, chunk=8 -> 4 grid chunks; index 4 is off the grid.
    CheckpointWriter w(path, 0x1ULL, 32, 8, 0, /*fresh=*/true);
    w.append(3, bytes({1}));
    w.append(4, bytes({2}));
    w.flush();
  }
  const CheckpointLoad load = load_checkpoint(path);
  ASSERT_TRUE(load.found);
  EXPECT_EQ(load.chunks.size(), 1u);
  EXPECT_TRUE(load.chunks.count(3));
}

TEST(Checkpoint, RewriteHealsATornFileAndKeepsAppending) {
  const std::string path = temp_file("rewrite.ckpt");
  std::filesystem::remove(path);
  {
    CheckpointWriter w(path, 0x2ULL, 48, 8, 0, /*fresh=*/true);
    w.append(0, bytes({10}));
    w.append(1, bytes({11}));
    w.flush();
  }
  {
    std::ofstream f(path, std::ios::app | std::ios::binary);
    f << "c 2 brokenline\nc 3 0c\n";  // torn middle: chunk 3 is unreachable
  }
  const CheckpointLoad before = load_checkpoint(path);
  ASSERT_EQ(before.chunks.size(), 2u) << "loader stops at the broken line";

  // The resume path: rewrite with the recovered chunks, then append new
  // ones through the returned writer — all must be visible afterwards.
  {
    std::unique_ptr<CheckpointWriter> w =
        rewrite_checkpoint(path, 0x2ULL, 48, 8, 0, before.chunks);
    ASSERT_TRUE(w != nullptr);
    ASSERT_TRUE(w->ok());
    w->append(4, bytes({14}));
    w->flush();
  }
  const CheckpointLoad after = load_checkpoint(path);
  ASSERT_TRUE(after.found);
  EXPECT_EQ(after.spec_hash, 0x2ULL);
  ASSERT_EQ(after.chunks.size(), 3u);
  EXPECT_EQ(after.chunks.at(0), bytes({10}));
  EXPECT_EQ(after.chunks.at(1), bytes({11}));
  EXPECT_EQ(after.chunks.at(4), bytes({14}));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "the tmp file must be renamed away";
}

TEST(Checkpoint, MismatchedHeaderSurfacesInTheLoad) {
  const std::string path = temp_file("mismatch.ckpt");
  std::filesystem::remove(path);
  {
    CheckpointWriter w(path, 0x3ULL, 100, 10, 0, /*fresh=*/true);
    w.append(0, bytes({1}));
    w.flush();
  }
  const CheckpointLoad load = load_checkpoint(path);
  ASSERT_TRUE(load.found);
  // The caller (open_checkpoint_session) compares these against its own
  // campaign; the loader just reports what the file claims.
  EXPECT_EQ(load.spec_hash, 0x3ULL);
  EXPECT_EQ(load.count, 100u);
  EXPECT_EQ(load.chunk, 10u);
}

}  // namespace
}  // namespace flopsim::fault
