// The structural divider must be bit-exact with fp::div under the paper
// policy at every depth (library extension beyond the paper's two units).
#include <gtest/gtest.h>

#include "fp/ops.hpp"
#include "units/fp_unit.hpp"
#include "../fp/test_util.hpp"

namespace flopsim::units {
namespace {

using fp::FpEnv;
using fp::FpFormat;
using fp::FpValue;
using fp::RoundingMode;
using fp::testing::ValueGen;

struct DivCase {
  FpFormat fmt;
  RoundingMode rounding;
  const char* name;
};

class DividerExactnessTest : public ::testing::TestWithParam<DivCase> {};

TEST_P(DividerExactnessTest, CombinationalMatchesSoftfloat) {
  const DivCase pc = GetParam();
  UnitConfig cfg;
  cfg.rounding = pc.rounding;
  const FpUnit unit(UnitKind::kDivider, pc.fmt, cfg);
  ValueGen gen(pc.fmt, 0xd1 + static_cast<int>(pc.rounding));
  for (int i = 0; i < 60000; ++i) {
    const FpValue a = gen.uniform_bits();
    const FpValue b = gen.uniform_bits();
    FpEnv env = FpEnv::paper(pc.rounding);
    const FpValue ref = fp::div(a, b, env);
    const UnitOutput out = unit.evaluate({a.bits, b.bits, false});
    ASSERT_EQ(out.result, ref.bits)
        << to_string(a) << " / " << to_string(b) << " ref=" << to_string(ref);
    ASSERT_EQ(out.flags, env.flags) << to_string(a) << " / " << to_string(b);
  }
}

TEST_P(DividerExactnessTest, MidRangeOperandsMatch) {
  const DivCase pc = GetParam();
  UnitConfig cfg;
  cfg.rounding = pc.rounding;
  const FpUnit unit(UnitKind::kDivider, pc.fmt, cfg);
  ValueGen gen(pc.fmt, 0xd2 + static_cast<int>(pc.rounding));
  for (int i = 0; i < 60000; ++i) {
    const FpValue a = gen.near_exp(pc.fmt.bias(), pc.fmt.bias() / 2);
    const FpValue b = gen.near_exp(pc.fmt.bias(), pc.fmt.bias() / 2);
    FpEnv env = FpEnv::paper(pc.rounding);
    const FpValue ref = fp::div(a, b, env);
    const UnitOutput out = unit.evaluate({a.bits, b.bits, false});
    ASSERT_EQ(out.result, ref.bits)
        << to_string(a) << " / " << to_string(b) << " ref=" << to_string(ref);
    ASSERT_EQ(out.flags, env.flags);
  }
}

TEST_P(DividerExactnessTest, SpecialsCrossProduct) {
  const DivCase pc = GetParam();
  UnitConfig cfg;
  cfg.rounding = pc.rounding;
  const FpUnit unit(UnitKind::kDivider, pc.fmt, cfg);
  ValueGen gen(pc.fmt, 5);
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) {
      const FpValue a = gen.special(i);
      const FpValue b = gen.special(j);
      FpEnv env = FpEnv::paper(pc.rounding);
      const FpValue ref = fp::div(a, b, env);
      const UnitOutput out = unit.evaluate({a.bits, b.bits, false});
      ASSERT_EQ(out.result, ref.bits)
          << to_string(a) << " / " << to_string(b);
      ASSERT_EQ(out.flags, env.flags);
    }
  }
}

TEST_P(DividerExactnessTest, EveryPipelineDepthSameBits) {
  const DivCase pc = GetParam();
  UnitConfig base;
  base.rounding = pc.rounding;
  const FpUnit combinational(UnitKind::kDivider, pc.fmt, base);
  const int max_depth = combinational.max_stages();
  ValueGen gen(pc.fmt, 0xd3);
  std::vector<UnitInput> vectors;
  for (int i = 0; i < 300; ++i) {
    vectors.push_back({gen.uniform_bits().bits, gen.uniform_bits().bits,
                       false});
  }
  for (int depth : {1, 2, max_depth / 2, max_depth}) {
    if (depth < 1) continue;
    UnitConfig cfg = base;
    cfg.stages = depth;
    FpUnit unit(UnitKind::kDivider, pc.fmt, cfg);
    std::size_t received = 0;
    for (std::size_t i = 0; i < vectors.size() + unit.latency(); ++i) {
      unit.step(i < vectors.size() ? std::optional<UnitInput>(vectors[i])
                                   : std::nullopt);
      if (const auto out = unit.output()) {
        const UnitOutput ref = combinational.evaluate(vectors[received]);
        ASSERT_EQ(out->result, ref.result) << "depth=" << depth;
        ASSERT_EQ(out->flags, ref.flags) << "depth=" << depth;
        ++received;
      }
    }
    ASSERT_EQ(received, vectors.size()) << "depth=" << depth;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, DividerExactnessTest,
    ::testing::Values(
        DivCase{FpFormat::binary32(), RoundingMode::kNearestEven, "b32_rne"},
        DivCase{FpFormat::binary32(), RoundingMode::kTowardZero, "b32_trunc"},
        DivCase{FpFormat::binary48(), RoundingMode::kNearestEven, "b48_rne"},
        DivCase{FpFormat::binary64(), RoundingMode::kNearestEven, "b64_rne"},
        DivCase{FpFormat::binary64(), RoundingMode::kTowardZero, "b64_trunc"},
        DivCase{FpFormat::binary16(), RoundingMode::kNearestEven, "b16_rne"}),
    [](const ::testing::TestParamInfo<DivCase>& info) {
      return info.param.name;
    });

TEST(DividerUnit, PipelinesVeryDeep) {
  // Restoring arrays expose roughly one stage per two quotient bits:
  // dividers pipeline deeper than adders of the same width.
  UnitConfig cfg;
  const FpUnit div64(UnitKind::kDivider, FpFormat::binary64(), cfg);
  const FpUnit mul64(UnitKind::kMultiplier, FpFormat::binary64(), cfg);
  EXPECT_GT(div64.max_stages(), mul64.max_stages());
  EXPECT_GE(div64.max_stages(), 30);
}

TEST(DividerUnit, DivByZeroFlagSurfaces) {
  UnitConfig cfg;
  const FpUnit unit(UnitKind::kDivider, FpFormat::binary32(), cfg);
  const UnitOutput out =
      unit.evaluate({fp::make_one(FpFormat::binary32()).bits, 0, false});
  EXPECT_TRUE((out.flags & fp::kFlagDivByZero) != 0);
  EXPECT_EQ(out.result, fp::make_inf(FpFormat::binary32()).bits);
}

TEST(DividerUnit, NameAndUnsupportedRounding) {
  UnitConfig cfg;
  cfg.stages = 4;
  const FpUnit u(UnitKind::kDivider, FpFormat::binary32(), cfg);
  EXPECT_EQ(u.name(), "fp_div<binary32>/s4");
  UnitConfig bad;
  bad.rounding = fp::RoundingMode::kTowardNegative;
  EXPECT_THROW(FpUnit(UnitKind::kDivider, FpFormat::binary32(), bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace flopsim::units
