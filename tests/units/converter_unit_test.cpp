// FormatConverter: bit-exact with fp::convert under the paper policy for
// every format pair and pipeline depth.
#include <gtest/gtest.h>

#include "fp/ops.hpp"
#include "units/converter_unit.hpp"
#include "../fp/test_util.hpp"

namespace flopsim::units {
namespace {

using fp::FpEnv;
using fp::FpFormat;
using fp::FpValue;
using fp::testing::ValueGen;

struct CvtCase {
  FpFormat src;
  FpFormat dst;
  const char* name;
};

class ConverterExactnessTest : public ::testing::TestWithParam<CvtCase> {};

TEST_P(ConverterExactnessTest, CombinationalMatchesSoftfloat) {
  const CvtCase pc = GetParam();
  UnitConfig cfg;
  const FormatConverter cvt(pc.src, pc.dst, cfg);
  ValueGen gen(pc.src, 0xc071);
  for (int i = 0; i < 60000; ++i) {
    const FpValue a = gen.uniform_bits();
    FpEnv env = FpEnv::paper();
    const FpValue ref = fp::convert(a, pc.dst, env);
    const FormatConverter::Output out = cvt.evaluate(a.bits);
    ASSERT_EQ(out.result, ref.bits)
        << to_string(a) << " -> " << to_string(ref);
    ASSERT_EQ(out.flags, env.flags) << to_string(a);
  }
}

TEST_P(ConverterExactnessTest, TruncationModeMatches) {
  const CvtCase pc = GetParam();
  UnitConfig cfg;
  cfg.rounding = fp::RoundingMode::kTowardZero;
  const FormatConverter cvt(pc.src, pc.dst, cfg);
  ValueGen gen(pc.src, 0xc072);
  for (int i = 0; i < 30000; ++i) {
    const FpValue a = gen.uniform_bits();
    FpEnv env = FpEnv::paper(fp::RoundingMode::kTowardZero);
    const FpValue ref = fp::convert(a, pc.dst, env);
    const FormatConverter::Output out = cvt.evaluate(a.bits);
    ASSERT_EQ(out.result, ref.bits) << to_string(a);
  }
}

TEST_P(ConverterExactnessTest, EveryPipelineDepthSameBits) {
  const CvtCase pc = GetParam();
  UnitConfig base;
  const FormatConverter combinational(pc.src, pc.dst, base);
  const int max_depth = combinational.max_stages();
  ValueGen gen(pc.src, 0xc073);
  std::vector<fp::u64> vectors;
  for (int i = 0; i < 400; ++i) vectors.push_back(gen.uniform_bits().bits);
  for (int depth : {1, 2, max_depth}) {
    UnitConfig cfg = base;
    cfg.stages = depth;
    FormatConverter cvt(pc.src, pc.dst, cfg);
    std::size_t received = 0;
    for (std::size_t i = 0; i < vectors.size() + cvt.latency(); ++i) {
      cvt.step(i < vectors.size() ? std::optional<fp::u64>(vectors[i])
                                  : std::nullopt);
      if (const auto out = cvt.output()) {
        const auto ref = combinational.evaluate(vectors[received]);
        ASSERT_EQ(out->result, ref.result) << "depth=" << depth;
        ASSERT_EQ(out->flags, ref.flags) << "depth=" << depth;
        ++received;
      }
    }
    ASSERT_EQ(received, vectors.size()) << "depth=" << depth;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ConverterExactnessTest,
    ::testing::Values(
        CvtCase{FpFormat::binary32(), FpFormat::binary64(), "b32_to_b64"},
        CvtCase{FpFormat::binary64(), FpFormat::binary32(), "b64_to_b32"},
        CvtCase{FpFormat::binary48(), FpFormat::binary64(), "b48_to_b64"},
        CvtCase{FpFormat::binary64(), FpFormat::binary48(), "b64_to_b48"},
        CvtCase{FpFormat::binary32(), FpFormat::binary48(), "b32_to_b48"},
        CvtCase{FpFormat::binary48(), FpFormat::binary32(), "b48_to_b32"},
        CvtCase{FpFormat::bfloat16(), FpFormat::binary32(), "bf16_to_b32"},
        CvtCase{FpFormat::binary32(), FpFormat::binary16(), "b32_to_b16"}),
    [](const ::testing::TestParamInfo<CvtCase>& info) {
      return info.param.name;
    });

TEST(Converter, WideningIsShallowAndCheap) {
  UnitConfig cfg;
  const FormatConverter widen(FpFormat::binary32(), FpFormat::binary64(),
                              cfg);
  const FormatConverter narrow(FpFormat::binary64(), FpFormat::binary32(),
                               cfg);
  // Widening has no rounding chain: fewer pieces, fewer slices.
  EXPECT_LT(widen.max_stages(), narrow.max_stages());
  EXPECT_LT(widen.area().total.slices, narrow.area().total.slices);
  // The interface module must not become the system bottleneck: full-depth
  // conversion keeps pace with the deeply pipelined arithmetic cores.
  UnitConfig deep;
  deep.stages = 99;
  EXPECT_GT(FormatConverter(FpFormat::binary64(), FpFormat::binary32(), deep)
                .freq_mhz(),
            195.0);
}

TEST(Converter, NameDescribes) {
  UnitConfig cfg;
  cfg.stages = 2;
  const FormatConverter cvt(FpFormat::binary48(), FpFormat::binary32(), cfg);
  EXPECT_EQ(cvt.name(), "fp_cvt<binary48->binary32>/s2");
}

}  // namespace
}  // namespace flopsim::units
