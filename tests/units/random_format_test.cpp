// Generalization fuzz: the unit generators must be bit-exact for ARBITRARY
// formats, not just the paper's three — random (exp, frac) shapes stress
// chunking boundaries (single-BMULT multipliers, one-chunk adders, odd
// shifter level counts...).
#include <gtest/gtest.h>

#include <random>

#include "fp/ops.hpp"
#include "units/converter_unit.hpp"
#include "units/fp_unit.hpp"
#include "../fp/test_util.hpp"

namespace flopsim::units {
namespace {

using fp::FpEnv;
using fp::FpFormat;
using fp::FpValue;
using fp::testing::ValueGen;

std::vector<FpFormat> random_formats(int count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<FpFormat> fmts;
  while (static_cast<int>(fmts.size()) < count) {
    const int e = 2 + static_cast<int>(rng() % 11);   // 2..12
    const int f = 1 + static_cast<int>(rng() % 52);   // 1..52
    if (1 + e + f > 64) continue;
    fmts.emplace_back(e, f);
  }
  return fmts;
}

TEST(RandomFormat, AllUnitsMatchSoftfloat) {
  for (const FpFormat& fmt : random_formats(10, 0xf02)) {
    UnitConfig cfg;
    const FpUnit adder(UnitKind::kAdder, fmt, cfg);
    const FpUnit mult(UnitKind::kMultiplier, fmt, cfg);
    const FpUnit divi(UnitKind::kDivider, fmt, cfg);
    const FpUnit sqr(UnitKind::kSqrt, fmt, cfg);
    ValueGen gen(fmt, 0xf03);
    for (int i = 0; i < 4000; ++i) {
      const FpValue a = gen.uniform_bits();
      const FpValue b = gen.uniform_bits();
      {
        FpEnv env = FpEnv::paper();
        const FpValue ref = fp::add(a, b, env);
        ASSERT_EQ(adder.evaluate({a.bits, b.bits, false}).result, ref.bits)
            << fmt.name() << ": " << to_string(a) << " + " << to_string(b);
      }
      {
        FpEnv env = FpEnv::paper();
        const FpValue ref = fp::mul(a, b, env);
        ASSERT_EQ(mult.evaluate({a.bits, b.bits, false}).result, ref.bits)
            << fmt.name() << ": " << to_string(a) << " * " << to_string(b);
      }
      {
        FpEnv env = FpEnv::paper();
        const FpValue ref = fp::div(a, b, env);
        ASSERT_EQ(divi.evaluate({a.bits, b.bits, false}).result, ref.bits)
            << fmt.name() << ": " << to_string(a) << " / " << to_string(b);
      }
      {
        FpEnv env = FpEnv::paper();
        const FpValue ref = fp::sqrt(a, env);
        ASSERT_EQ(sqr.evaluate({a.bits, 0, false}).result, ref.bits)
            << fmt.name() << ": sqrt " << to_string(a);
      }
    }
  }
}

TEST(RandomFormat, ConvertersMatchSoftfloat) {
  const auto fmts = random_formats(6, 0xf04);
  for (std::size_t i = 0; i + 1 < fmts.size(); i += 2) {
    const FpFormat src = fmts[i];
    const FpFormat dst = fmts[i + 1];
    UnitConfig cfg;
    const FormatConverter cvt(src, dst, cfg);
    ValueGen gen(src, 0xf05);
    for (int k = 0; k < 8000; ++k) {
      const FpValue a = gen.uniform_bits();
      FpEnv env = FpEnv::paper();
      const FpValue ref = fp::convert(a, dst, env);
      ASSERT_EQ(cvt.evaluate(a.bits).result, ref.bits)
          << src.name() << "->" << dst.name() << ": " << to_string(a);
    }
  }
}

TEST(RandomFormat, TimingAndAreaAlwaysSane) {
  for (const FpFormat& fmt : random_formats(12, 0xf06)) {
    for (UnitKind kind : {UnitKind::kAdder, UnitKind::kMultiplier,
                          UnitKind::kDivider, UnitKind::kSqrt}) {
      UnitConfig cfg;
      const FpUnit unit(kind, fmt, cfg);
      EXPECT_GT(unit.max_stages(), 1) << fmt.name();
      EXPECT_GT(unit.freq_mhz(), 1.0) << fmt.name();
      EXPECT_GT(unit.area().total.slices, 0) << fmt.name();
      UnitConfig deep;
      deep.stages = unit.max_stages();
      const FpUnit du(kind, fmt, deep);
      EXPECT_GE(du.freq_mhz(), unit.freq_mhz()) << fmt.name();
    }
  }
}

}  // namespace
}  // namespace flopsim::units
