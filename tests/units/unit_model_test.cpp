// Timing/area model properties of the generated units — the behaviours the
// paper's Figure 2 analysis rests on.
#include <gtest/gtest.h>

#include "fp/value.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::units {
namespace {

using fp::FpFormat;

FpUnit make(UnitKind kind, FpFormat fmt, int stages,
            device::Objective obj = device::Objective::kArea) {
  UnitConfig cfg;
  cfg.stages = stages;
  cfg.objective = obj;
  return FpUnit(kind, fmt, cfg);
}

struct KindFmt {
  UnitKind kind;
  FpFormat fmt;
  const char* name;
};

class UnitModelTest : public ::testing::TestWithParam<KindFmt> {};

TEST_P(UnitModelTest, FrequencyNonDecreasingWithDepth) {
  const auto [kind, fmt, name] = GetParam();
  const int maxs = make(kind, fmt, 1).max_stages();
  double prev = 0.0;
  for (int s = 1; s <= maxs; ++s) {
    const double f = make(kind, fmt, s).freq_mhz();
    EXPECT_GE(f, prev - 1e-9) << "stages=" << s;
    prev = f;
  }
}

TEST_P(UnitModelTest, AreaNonDecreasingWithDepth) {
  const auto [kind, fmt, name] = GetParam();
  const int maxs = make(kind, fmt, 1).max_stages();
  int prev = 0;
  for (int s = 1; s <= maxs; ++s) {
    const int slices = make(kind, fmt, s).area().total.slices;
    EXPECT_GE(slices, prev) << "stages=" << s;
    prev = slices;
  }
}

TEST_P(UnitModelTest, DeepPipeliningShowsDiminishingReturns) {
  // The marginal frequency gain of the last doubling of depth must be well
  // below that of the first — the flattening of Figure 2.
  const auto [kind, fmt, name] = GetParam();
  const int maxs = make(kind, fmt, 1).max_stages();
  ASSERT_GE(maxs, 4);
  const double f1 = make(kind, fmt, 1).freq_mhz();
  const double f2 = make(kind, fmt, 2).freq_mhz();
  const double fh = make(kind, fmt, maxs / 2).freq_mhz();
  const double fm = make(kind, fmt, maxs).freq_mhz();
  // Doubling depth from 1 nearly doubles frequency; doubling from maxs/2
  // gains far less relative to where it starts.
  EXPECT_GT(f2 / f1, fm / fh);
}

TEST_P(UnitModelTest, FreqPerAreaPeaksAtInteriorDepth) {
  // Figure 2's qualitative shape: the best MHz/slice is neither the
  // unpipelined nor (for these units) the maximally pipelined design.
  const auto [kind, fmt, name] = GetParam();
  const int maxs = make(kind, fmt, 1).max_stages();
  int best_s = 1;
  double best = 0.0;
  for (int s = 1; s <= maxs; ++s) {
    const double m = make(kind, fmt, s).freq_per_area();
    if (m > best) {
      best = m;
      best_s = s;
    }
  }
  EXPECT_GT(best_s, 1) << "optimum should not be the unpipelined design";
  EXPECT_GE(best, make(kind, fmt, maxs).freq_per_area())
      << "max-depth design should not beat the optimum";
}

TEST_P(UnitModelTest, SpeedObjectiveFasterButLarger) {
  const auto [kind, fmt, name] = GetParam();
  const int s = std::max(2, make(kind, fmt, 1).max_stages() / 2);
  const FpUnit area_u = make(kind, fmt, s, device::Objective::kArea);
  const FpUnit speed_u = make(kind, fmt, s, device::Objective::kSpeed);
  EXPECT_GT(speed_u.freq_mhz(), area_u.freq_mhz());
  EXPECT_GT(speed_u.area().total.slices, area_u.area().total.slices);
}

TEST_P(UnitModelTest, ObjectiveDoesNotChangeValues) {
  const auto [kind, fmt, name] = GetParam();
  const FpUnit area_u = make(kind, fmt, 3, device::Objective::kArea);
  const FpUnit speed_u = make(kind, fmt, 3, device::Objective::kSpeed);
  const UnitInput in{fp::make_one(fmt).bits,
                     fp::make_one(fmt).bits, false};
  EXPECT_EQ(area_u.evaluate(in).result, speed_u.evaluate(in).result);
}

INSTANTIATE_TEST_SUITE_P(
    Units, UnitModelTest,
    ::testing::Values(
        KindFmt{UnitKind::kAdder, FpFormat::binary32(), "add32"},
        KindFmt{UnitKind::kAdder, FpFormat::binary48(), "add48"},
        KindFmt{UnitKind::kAdder, FpFormat::binary64(), "add64"},
        KindFmt{UnitKind::kMultiplier, FpFormat::binary32(), "mul32"},
        KindFmt{UnitKind::kMultiplier, FpFormat::binary48(), "mul48"},
        KindFmt{UnitKind::kMultiplier, FpFormat::binary64(), "mul64"}),
    [](const ::testing::TestParamInfo<KindFmt>& info) {
      return info.param.name;
    });

TEST(UnitModel, PaperFrequencyBands) {
  // Abstract: "throughput rates of more than 240Mhz (200Mhz) for single
  // (double) precision operations by deeply pipelining the units".
  for (UnitKind kind : {UnitKind::kAdder, UnitKind::kMultiplier}) {
    const int max32 = make(kind, FpFormat::binary32(), 1).max_stages();
    EXPECT_GT(make(kind, FpFormat::binary32(), max32,
                   device::Objective::kSpeed).freq_mhz(), 240.0)
        << to_string(kind);
    const int max64 = make(kind, FpFormat::binary64(), 1).max_stages();
    EXPECT_GT(make(kind, FpFormat::binary64(), max64,
                   device::Objective::kSpeed).freq_mhz(), 200.0)
        << to_string(kind);
  }
}

TEST(UnitModel, DoubleAdderNeedsSeveralStagesFor200MHz) {
  // Echoes the paper's "54bit adder ... 200MHz with 4 pipelining stages":
  // the unpipelined double adder is far below 200 MHz and reaching it takes
  // several stages.
  EXPECT_LT(make(UnitKind::kAdder, FpFormat::binary64(), 1).freq_mhz(), 100.0);
  int needed = 0;
  for (int s = 1; s <= 32; ++s) {
    if (make(UnitKind::kAdder, FpFormat::binary64(), s).freq_mhz() >= 200.0) {
      needed = s;
      break;
    }
  }
  EXPECT_GE(needed, 6);
  EXPECT_LE(needed, 24);
}

TEST(UnitModel, MaxStagesOrdering) {
  // Wider formats expose more register insertion points.
  EXPECT_GT(make(UnitKind::kAdder, FpFormat::binary64(), 1).max_stages(),
            make(UnitKind::kAdder, FpFormat::binary32(), 1).max_stages());
  // Adders pipeline deeper than multipliers (shifter levels dominate).
  EXPECT_GT(make(UnitKind::kAdder, FpFormat::binary64(), 1).max_stages(),
            make(UnitKind::kMultiplier, FpFormat::binary64(), 1).max_stages());
}

TEST(UnitModel, LatencyEqualsConfiguredStages) {
  for (int s : {1, 3, 7}) {
    const FpUnit u = make(UnitKind::kAdder, FpFormat::binary32(), s);
    EXPECT_EQ(u.latency(), s);
  }
}

}  // namespace
}  // namespace flopsim::units
