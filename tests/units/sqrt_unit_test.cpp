// Structural square root: bit-exact with fp::sqrt under the paper policy
// at every pipeline depth, plus exhaustive coverage on the tiny format.
#include <gtest/gtest.h>

#include "fp/ops.hpp"
#include "units/fp_unit.hpp"
#include "../fp/test_util.hpp"

namespace flopsim::units {
namespace {

using fp::FpEnv;
using fp::FpFormat;
using fp::FpValue;
using fp::RoundingMode;
using fp::testing::ValueGen;

struct SqrtCase {
  FpFormat fmt;
  RoundingMode rounding;
  const char* name;
};

class SqrtExactnessTest : public ::testing::TestWithParam<SqrtCase> {};

TEST_P(SqrtExactnessTest, CombinationalMatchesSoftfloat) {
  const SqrtCase pc = GetParam();
  UnitConfig cfg;
  cfg.rounding = pc.rounding;
  const FpUnit unit(UnitKind::kSqrt, pc.fmt, cfg);
  ValueGen gen(pc.fmt, 0x5042 + static_cast<int>(pc.rounding));
  for (int i = 0; i < 60000; ++i) {
    const FpValue a = gen.uniform_bits();
    FpEnv env = FpEnv::paper(pc.rounding);
    const FpValue ref = fp::sqrt(a, env);
    const UnitOutput out = unit.evaluate({a.bits, 0, false});
    ASSERT_EQ(out.result, ref.bits)
        << "sqrt " << to_string(a) << " ref=" << to_string(ref);
    ASSERT_EQ(out.flags, env.flags) << "sqrt " << to_string(a);
  }
}

TEST_P(SqrtExactnessTest, SpecialsAndEdges) {
  const SqrtCase pc = GetParam();
  UnitConfig cfg;
  cfg.rounding = pc.rounding;
  const FpUnit unit(UnitKind::kSqrt, pc.fmt, cfg);
  ValueGen gen(pc.fmt, 6);
  for (int i = 0; i < 16; ++i) {
    const FpValue a = gen.special(i);
    FpEnv env = FpEnv::paper(pc.rounding);
    const FpValue ref = fp::sqrt(a, env);
    const UnitOutput out = unit.evaluate({a.bits, 0, false});
    ASSERT_EQ(out.result, ref.bits) << "sqrt " << to_string(a);
    ASSERT_EQ(out.flags, env.flags);
  }
}

TEST_P(SqrtExactnessTest, EveryPipelineDepthSameBits) {
  const SqrtCase pc = GetParam();
  UnitConfig base;
  base.rounding = pc.rounding;
  const FpUnit combinational(UnitKind::kSqrt, pc.fmt, base);
  const int max_depth = combinational.max_stages();
  ValueGen gen(pc.fmt, 0x5043);
  std::vector<UnitInput> vectors;
  for (int i = 0; i < 300; ++i) {
    vectors.push_back({gen.uniform_bits().bits, 0, false});
  }
  for (int depth : {1, 2, max_depth / 2, max_depth}) {
    if (depth < 1) continue;
    UnitConfig cfg = base;
    cfg.stages = depth;
    FpUnit unit(UnitKind::kSqrt, pc.fmt, cfg);
    std::size_t received = 0;
    for (std::size_t i = 0; i < vectors.size() + unit.latency(); ++i) {
      unit.step(i < vectors.size() ? std::optional<UnitInput>(vectors[i])
                                   : std::nullopt);
      if (const auto out = unit.output()) {
        const UnitOutput ref = combinational.evaluate(vectors[received]);
        ASSERT_EQ(out->result, ref.result) << "depth=" << depth;
        ASSERT_EQ(out->flags, ref.flags) << "depth=" << depth;
        ++received;
      }
    }
    ASSERT_EQ(received, vectors.size()) << "depth=" << depth;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, SqrtExactnessTest,
    ::testing::Values(
        SqrtCase{FpFormat::binary32(), RoundingMode::kNearestEven, "b32_rne"},
        SqrtCase{FpFormat::binary32(), RoundingMode::kTowardZero,
                 "b32_trunc"},
        SqrtCase{FpFormat::binary48(), RoundingMode::kNearestEven, "b48_rne"},
        SqrtCase{FpFormat::binary64(), RoundingMode::kNearestEven, "b64_rne"},
        SqrtCase{FpFormat::binary64(), RoundingMode::kTowardZero,
                 "b64_trunc"},
        SqrtCase{FpFormat::binary16(), RoundingMode::kNearestEven,
                 "b16_rne"}),
    [](const ::testing::TestParamInfo<SqrtCase>& info) {
      return info.param.name;
    });

TEST(SqrtUnit, ExhaustiveTinyFormat) {
  const FpFormat tiny(4, 3);
  for (RoundingMode mode :
       {RoundingMode::kNearestEven, RoundingMode::kTowardZero}) {
    UnitConfig cfg;
    cfg.rounding = mode;
    const FpUnit unit(UnitKind::kSqrt, tiny, cfg);
    for (unsigned a = 0; a < 256; ++a) {
      FpEnv env = FpEnv::paper(mode);
      const FpValue ref = fp::sqrt(FpValue(a, tiny), env);
      const UnitOutput out = unit.evaluate({a, 0, false});
      ASSERT_EQ(out.result, ref.bits) << a;
      ASSERT_EQ(out.flags, env.flags) << a;
    }
  }
}

TEST(SqrtUnit, PipelinesDeep) {
  UnitConfig cfg;
  const FpUnit s64(UnitKind::kSqrt, FpFormat::binary64(), cfg);
  EXPECT_GE(s64.max_stages(), 30);
  EXPECT_EQ(s64.area().total.bmults, 0);  // pure fabric
}

TEST(SqrtUnit, Name) {
  UnitConfig cfg;
  cfg.stages = 3;
  EXPECT_EQ(FpUnit(UnitKind::kSqrt, FpFormat::binary32(), cfg).name(),
            "fp_sqrt<binary32>/s3");
}

}  // namespace
}  // namespace flopsim::units
