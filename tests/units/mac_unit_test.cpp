// Fused MAC core: bit-exact with fp::fma under the paper policy at every
// depth, including the catastrophic-cancellation cases only a fused
// datapath gets right.
#include <gtest/gtest.h>

#include "fp/ops.hpp"
#include "units/fp_unit.hpp"
#include "../fp/test_util.hpp"

namespace flopsim::units {
namespace {

using fp::FpEnv;
using fp::FpFormat;
using fp::FpValue;
using fp::RoundingMode;
using fp::testing::ValueGen;

struct MacCase {
  FpFormat fmt;
  RoundingMode rounding;
  const char* name;
};

class MacExactnessTest : public ::testing::TestWithParam<MacCase> {};

TEST_P(MacExactnessTest, UniformRandomTriples) {
  const MacCase pc = GetParam();
  UnitConfig cfg;
  cfg.rounding = pc.rounding;
  const FpUnit unit(UnitKind::kMac, pc.fmt, cfg);
  ValueGen gen(pc.fmt, 0x3ac1 + static_cast<int>(pc.rounding));
  for (int i = 0; i < 60000; ++i) {
    const FpValue a = gen.uniform_bits();
    const FpValue b = gen.uniform_bits();
    const FpValue c = gen.uniform_bits();
    FpEnv env = FpEnv::paper(pc.rounding);
    const FpValue ref = fp::fma(a, b, c, env);
    const UnitOutput out = unit.evaluate({a.bits, b.bits, false, c.bits});
    ASSERT_EQ(out.result, ref.bits)
        << to_string(a) << " * " << to_string(b) << " + " << to_string(c);
    ASSERT_EQ(out.flags, env.flags);
  }
}

TEST_P(MacExactnessTest, CancellationStress) {
  // c ~ -(a*b): the single-rounding residual path.
  const MacCase pc = GetParam();
  UnitConfig cfg;
  cfg.rounding = pc.rounding;
  const FpUnit unit(UnitKind::kMac, pc.fmt, cfg);
  ValueGen gen(pc.fmt, 0x3ac2);
  for (int i = 0; i < 60000; ++i) {
    const auto [a, b] = gen.correlated_pair();
    FpEnv e0 = FpEnv::paper(pc.rounding);
    const FpValue c = fp::neg(fp::mul(a, b, e0));
    FpEnv env = FpEnv::paper(pc.rounding);
    const FpValue ref = fp::fma(a, b, c, env);
    const UnitOutput out = unit.evaluate({a.bits, b.bits, false, c.bits});
    ASSERT_EQ(out.result, ref.bits)
        << to_string(a) << " * " << to_string(b) << " + " << to_string(c);
    ASSERT_EQ(out.flags, env.flags);
  }
}

TEST_P(MacExactnessTest, SpecialsCrossProduct) {
  const MacCase pc = GetParam();
  UnitConfig cfg;
  cfg.rounding = pc.rounding;
  const FpUnit unit(UnitKind::kMac, pc.fmt, cfg);
  ValueGen gen(pc.fmt, 8);
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) {
      for (int k = 0; k < 16; k += 3) {
        const FpValue a = gen.special(i);
        const FpValue b = gen.special(j);
        const FpValue c = gen.special(k);
        FpEnv env = FpEnv::paper(pc.rounding);
        const FpValue ref = fp::fma(a, b, c, env);
        const UnitOutput out =
            unit.evaluate({a.bits, b.bits, false, c.bits});
        ASSERT_EQ(out.result, ref.bits)
            << to_string(a) << " * " << to_string(b) << " + " << to_string(c);
        ASSERT_EQ(out.flags, env.flags);
      }
    }
  }
}

TEST_P(MacExactnessTest, EveryPipelineDepthSameBits) {
  const MacCase pc = GetParam();
  UnitConfig base;
  base.rounding = pc.rounding;
  const FpUnit comb(UnitKind::kMac, pc.fmt, base);
  const int max_depth = comb.max_stages();
  ValueGen gen(pc.fmt, 0x3ac3);
  std::vector<UnitInput> vectors;
  for (int i = 0; i < 300; ++i) {
    vectors.push_back({gen.uniform_bits().bits, gen.uniform_bits().bits,
                       false, gen.uniform_bits().bits});
  }
  for (int depth : {1, 2, max_depth / 2, max_depth}) {
    if (depth < 1) continue;
    UnitConfig cfg = base;
    cfg.stages = depth;
    FpUnit unit(UnitKind::kMac, pc.fmt, cfg);
    std::size_t got = 0;
    for (std::size_t i = 0; i < vectors.size() + unit.latency(); ++i) {
      unit.step(i < vectors.size() ? std::optional<UnitInput>(vectors[i])
                                   : std::nullopt);
      if (const auto out = unit.output()) {
        const UnitOutput ref = comb.evaluate(vectors[got]);
        ASSERT_EQ(out->result, ref.result) << "depth " << depth;
        ASSERT_EQ(out->flags, ref.flags) << "depth " << depth;
        ++got;
      }
    }
    ASSERT_EQ(got, vectors.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, MacExactnessTest,
    ::testing::Values(
        MacCase{FpFormat::binary32(), RoundingMode::kNearestEven, "b32_rne"},
        MacCase{FpFormat::binary32(), RoundingMode::kTowardZero, "b32_trunc"},
        MacCase{FpFormat::binary48(), RoundingMode::kNearestEven, "b48_rne"},
        MacCase{FpFormat::binary64(), RoundingMode::kNearestEven, "b64_rne"},
        MacCase{FpFormat::binary64(), RoundingMode::kTowardZero,
                "b64_trunc"}),
    [](const ::testing::TestParamInfo<MacCase>& info) {
      return info.param.name;
    });

TEST(MacUnit, ExhaustiveTinyFormatSampledAddend) {
  const FpFormat tiny(4, 3);
  UnitConfig cfg;
  const FpUnit unit(UnitKind::kMac, tiny, cfg);
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      for (unsigned c = 0; c < 256; c += 7) {  // every 7th addend
        FpEnv env = FpEnv::paper();
        const FpValue ref =
            fp::fma(FpValue(a, tiny), FpValue(b, tiny), FpValue(c, tiny),
                    env);
        const UnitOutput out = unit.evaluate({a, b, false, c});
        ASSERT_EQ(out.result, ref.bits) << a << "," << b << "," << c;
        ASSERT_EQ(out.flags, env.flags) << a << "," << b << "," << c;
      }
    }
  }
}

TEST(MacUnit, SingleRoundingBeatsSeparateUnits) {
  // The fused core returns the exact residual where mult+add returns 0.
  const FpFormat fmt = FpFormat::binary64();
  UnitConfig cfg;
  const FpUnit mac(UnitKind::kMac, fmt, cfg);
  FpEnv env = FpEnv::paper();
  const FpValue a = fp::from_double(1.0 + std::ldexp(1.0, -30), fmt, env);
  const FpValue c = fp::neg(fp::mul(a, a, env));
  const UnitOutput fused = mac.evaluate({a.bits, a.bits, false, c.bits});
  // Residual of (1+2^-30)^2 rounding: 2^-60, nonzero.
  EXPECT_NE(fused.result, 0u);
  const FpUnit mul_u(UnitKind::kMultiplier, fmt, cfg);
  const FpUnit add_u(UnitKind::kAdder, fmt, cfg);
  const UnitOutput p = mul_u.evaluate({a.bits, a.bits, false});
  const UnitOutput two_step = add_u.evaluate({p.result, c.bits, false});
  EXPECT_EQ(two_step.result, 0u);  // the two-rounding path loses it
}

TEST(MacUnit, CostProfileVsSeparateUnits) {
  // Fusion saves the duplicated denorm/round tails but pays for the
  // double-width align/add/normalize: area lands near the separate pair,
  // while the wide datapath caps the clock below it.
  UnitConfig cfg;
  cfg.stages = 12;
  const FpUnit mac(UnitKind::kMac, FpFormat::binary64(), cfg);
  const FpUnit add(UnitKind::kAdder, FpFormat::binary64(), cfg);
  const FpUnit mul(UnitKind::kMultiplier, FpFormat::binary64(), cfg);
  const int pair = add.area().total.slices + mul.area().total.slices;
  EXPECT_GT(mac.area().total.slices, 0.75 * pair);
  EXPECT_LT(mac.area().total.slices, 1.25 * pair);
  EXPECT_EQ(mac.area().total.bmults, mul.area().total.bmults);
  UnitConfig deep;
  deep.stages = 999;
  EXPECT_LT(FpUnit(UnitKind::kMac, FpFormat::binary64(), deep).freq_mhz(),
            std::min(FpUnit(UnitKind::kAdder, FpFormat::binary64(), deep)
                         .freq_mhz(),
                     FpUnit(UnitKind::kMultiplier, FpFormat::binary64(), deep)
                         .freq_mhz()));
  EXPECT_EQ(mac.name(), "fp_mac<binary64>/s12");
}

}  // namespace
}  // namespace flopsim::units
