// The structural multiplier must be bit-exact with fp::mul under the paper
// policy at every depth.
#include <gtest/gtest.h>

#include "fp/ops.hpp"
#include "units/fp_unit.hpp"
#include "../fp/test_util.hpp"

namespace flopsim::units {
namespace {

using fp::FpEnv;
using fp::FpFormat;
using fp::FpValue;
using fp::RoundingMode;
using fp::testing::ValueGen;

struct MulCase {
  FpFormat fmt;
  RoundingMode rounding;
  const char* name;
};

class MultiplierExactnessTest : public ::testing::TestWithParam<MulCase> {};

TEST_P(MultiplierExactnessTest, CombinationalMatchesSoftfloat) {
  const MulCase pc = GetParam();
  UnitConfig cfg;
  cfg.rounding = pc.rounding;
  const FpUnit unit(UnitKind::kMultiplier, pc.fmt, cfg);
  ValueGen gen(pc.fmt, 0x301 + static_cast<int>(pc.rounding));
  for (int i = 0; i < 60000; ++i) {
    const FpValue a = gen.uniform_bits();
    const FpValue b = gen.uniform_bits();
    FpEnv env = FpEnv::paper(pc.rounding);
    const FpValue ref = fp::mul(a, b, env);
    const UnitOutput out = unit.evaluate({a.bits, b.bits, false});
    ASSERT_EQ(out.result, ref.bits)
        << to_string(a) << " * " << to_string(b) << " ref=" << to_string(ref);
    ASSERT_EQ(out.flags, env.flags)
        << to_string(a) << " * " << to_string(b);
  }
}

TEST_P(MultiplierExactnessTest, MidRangeOperandsMatch) {
  // Mid-exponent operands avoid over/underflow and stress the mantissa
  // datapath (all BMULT chunks active, rounding paths).
  const MulCase pc = GetParam();
  UnitConfig cfg;
  cfg.rounding = pc.rounding;
  const FpUnit unit(UnitKind::kMultiplier, pc.fmt, cfg);
  ValueGen gen(pc.fmt, 0x3020 + static_cast<int>(pc.rounding));
  for (int i = 0; i < 60000; ++i) {
    const FpValue a = gen.near_exp(pc.fmt.bias(), pc.fmt.bias() / 2);
    const FpValue b = gen.near_exp(pc.fmt.bias(), pc.fmt.bias() / 2);
    FpEnv env = FpEnv::paper(pc.rounding);
    const FpValue ref = fp::mul(a, b, env);
    const UnitOutput out = unit.evaluate({a.bits, b.bits, false});
    ASSERT_EQ(out.result, ref.bits)
        << to_string(a) << " * " << to_string(b) << " ref=" << to_string(ref);
    ASSERT_EQ(out.flags, env.flags);
  }
}

TEST_P(MultiplierExactnessTest, SpecialsCrossProduct) {
  const MulCase pc = GetParam();
  UnitConfig cfg;
  cfg.rounding = pc.rounding;
  const FpUnit unit(UnitKind::kMultiplier, pc.fmt, cfg);
  ValueGen gen(pc.fmt, 4);
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) {
      const FpValue a = gen.special(i);
      const FpValue b = gen.special(j);
      FpEnv env = FpEnv::paper(pc.rounding);
      const FpValue ref = fp::mul(a, b, env);
      const UnitOutput out = unit.evaluate({a.bits, b.bits, false});
      ASSERT_EQ(out.result, ref.bits)
          << to_string(a) << " * " << to_string(b);
      ASSERT_EQ(out.flags, env.flags);
    }
  }
}

TEST_P(MultiplierExactnessTest, EveryPipelineDepthSameBits) {
  const MulCase pc = GetParam();
  UnitConfig base;
  base.rounding = pc.rounding;
  const FpUnit combinational(UnitKind::kMultiplier, pc.fmt, base);
  const int max_depth = combinational.max_stages();
  ValueGen gen(pc.fmt, 0x303);
  std::vector<UnitInput> vectors;
  for (int i = 0; i < 500; ++i) {
    const FpValue a = gen.uniform_bits();
    const FpValue b = gen.uniform_bits();
    vectors.push_back({a.bits, b.bits, false});
  }
  for (int depth : {1, 2, 3, max_depth / 2, max_depth}) {
    if (depth < 1) continue;
    UnitConfig cfg = base;
    cfg.stages = depth;
    FpUnit unit(UnitKind::kMultiplier, pc.fmt, cfg);
    std::size_t received = 0;
    for (std::size_t i = 0; i < vectors.size() + unit.latency(); ++i) {
      unit.step(i < vectors.size() ? std::optional<UnitInput>(vectors[i])
                                   : std::nullopt);
      if (const auto out = unit.output()) {
        const UnitOutput ref = combinational.evaluate(vectors[received]);
        ASSERT_EQ(out->result, ref.result) << "depth=" << depth;
        ASSERT_EQ(out->flags, ref.flags) << "depth=" << depth;
        ++received;
      }
    }
    ASSERT_EQ(received, vectors.size()) << "depth=" << depth;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, MultiplierExactnessTest,
    ::testing::Values(
        MulCase{FpFormat::binary32(), RoundingMode::kNearestEven, "b32_rne"},
        MulCase{FpFormat::binary32(), RoundingMode::kTowardZero, "b32_trunc"},
        MulCase{FpFormat::binary48(), RoundingMode::kNearestEven, "b48_rne"},
        MulCase{FpFormat::binary48(), RoundingMode::kTowardZero, "b48_trunc"},
        MulCase{FpFormat::binary64(), RoundingMode::kNearestEven, "b64_rne"},
        MulCase{FpFormat::binary64(), RoundingMode::kTowardZero, "b64_trunc"},
        MulCase{FpFormat::binary16(), RoundingMode::kNearestEven, "b16_rne"},
        MulCase{FpFormat::bfloat16(), RoundingMode::kNearestEven,
                "bf16_rne"}),
    [](const ::testing::TestParamInfo<MulCase>& info) {
      return info.param.name;
    });

TEST(MultiplierUnit, UsesEmbeddedMultipliers) {
  UnitConfig cfg;
  // binary64: 53-bit significand -> 4x4 = 16 MULT18X18 blocks.
  const FpUnit u64(UnitKind::kMultiplier, FpFormat::binary64(), cfg);
  EXPECT_EQ(u64.area().total.bmults, 16);
  // binary32: 24-bit significand -> 2x2 = 4 blocks.
  const FpUnit u32(UnitKind::kMultiplier, FpFormat::binary32(), cfg);
  EXPECT_EQ(u32.area().total.bmults, 4);
  // binary16: 11-bit significand -> a single block.
  const FpUnit u16(UnitKind::kMultiplier, FpFormat::binary16(), cfg);
  EXPECT_EQ(u16.area().total.bmults, 1);
}

}  // namespace
}  // namespace flopsim::units
