// Exhaustive structural-unit verification on the 8-bit FpFormat(4,3):
// every operand pair through the adder (both ops), multiplier, and divider
// datapaths, compared bit-for-bit (values AND flags) against the softfloat
// reference — no sampling gaps anywhere in the special-case logic.
#include <gtest/gtest.h>

#include "fp/ops.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::units {
namespace {

const fp::FpFormat kTiny(4, 3);

class ExhaustiveUnitTest : public ::testing::TestWithParam<fp::RoundingMode> {
};

TEST_P(ExhaustiveUnitTest, AdderAllPairsBothOps) {
  UnitConfig cfg;
  cfg.rounding = GetParam();
  const FpUnit unit(UnitKind::kAdder, kTiny, cfg);
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      for (bool subtract : {false, true}) {
        fp::FpEnv env = fp::FpEnv::paper(cfg.rounding);
        const fp::FpValue ref =
            subtract ? fp::sub(fp::FpValue(a, kTiny), fp::FpValue(b, kTiny),
                               env)
                     : fp::add(fp::FpValue(a, kTiny), fp::FpValue(b, kTiny),
                               env);
        const UnitOutput out = unit.evaluate({a, b, subtract});
        ASSERT_EQ(out.result, ref.bits)
            << a << (subtract ? " - " : " + ") << b;
        ASSERT_EQ(out.flags, env.flags)
            << a << (subtract ? " - " : " + ") << b;
      }
    }
  }
}

TEST_P(ExhaustiveUnitTest, MultiplierAllPairs) {
  UnitConfig cfg;
  cfg.rounding = GetParam();
  const FpUnit unit(UnitKind::kMultiplier, kTiny, cfg);
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      fp::FpEnv env = fp::FpEnv::paper(cfg.rounding);
      const fp::FpValue ref =
          fp::mul(fp::FpValue(a, kTiny), fp::FpValue(b, kTiny), env);
      const UnitOutput out = unit.evaluate({a, b, false});
      ASSERT_EQ(out.result, ref.bits) << a << " * " << b;
      ASSERT_EQ(out.flags, env.flags) << a << " * " << b;
    }
  }
}

TEST_P(ExhaustiveUnitTest, DividerAllPairs) {
  UnitConfig cfg;
  cfg.rounding = GetParam();
  const FpUnit unit(UnitKind::kDivider, kTiny, cfg);
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      fp::FpEnv env = fp::FpEnv::paper(cfg.rounding);
      const fp::FpValue ref =
          fp::div(fp::FpValue(a, kTiny), fp::FpValue(b, kTiny), env);
      const UnitOutput out = unit.evaluate({a, b, false});
      ASSERT_EQ(out.result, ref.bits) << a << " / " << b;
      ASSERT_EQ(out.flags, env.flags) << a << " / " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothModes, ExhaustiveUnitTest,
                         ::testing::Values(fp::RoundingMode::kNearestEven,
                                           fp::RoundingMode::kTowardZero),
                         [](const auto& info) {
                           return info.param ==
                                          fp::RoundingMode::kNearestEven
                                      ? "nearest"
                                      : "truncate";
                         });

}  // namespace
}  // namespace flopsim::units
