// Calibration-anchor regression: the technology model was fitted to the
// datapoints the paper states in prose (see device/tech.hpp). This suite
// pins them so future model edits cannot silently drift the reproduction.
#include <gtest/gtest.h>

#include "device/tech.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::units {
namespace {

const device::TechModel kTech = device::TechModel::virtex2pro7();
const device::Objective kArea = device::Objective::kArea;

double stage_mhz(double comb_ns) {
  return 1000.0 / (comb_ns + kTech.register_overhead_ns());
}

TEST(Calibration, SmallComparatorsReach250MHz) {
  // "Comparators of a bitwidth less than or equal to 11 can achieve 250MHz."
  EXPECT_GE(stage_mhz(kTech.comparator_delay(11, kArea) +
                      kTech.gate_delay(kArea)),
            240.0);
}

TEST(Calibration, MantissaComparatorNear220MHz) {
  // "The mantissa comparator for double precision can achieve a frequency
  // of 220MHz" — ours models the 63-bit magnitude compare.
  const double mhz = stage_mhz(kTech.comparator_delay(63, kArea));
  EXPECT_GE(mhz, 220.0);
  EXPECT_LE(mhz, 320.0);
}

TEST(Calibration, ThreeMuxLevelsExceed200MHz) {
  // "Three muxes in serial can be considered as a stage and a frequency of
  // more than 200Mhz can be achieved by doing so."
  const double three = kTech.mux_level_delay(56, kArea) +
                       2 * kTech.mux_level_chained_delay(56, kArea);
  EXPECT_GT(stage_mhz(three), 200.0);
  // "Higher frequencies require two-mux stages."
  const double two = kTech.mux_level_delay(56, kArea) +
                     kTech.mux_level_chained_delay(56, kArea);
  EXPECT_GT(stage_mhz(two), stage_mhz(three) + 20.0);
}

TEST(Calibration, WideAdderNeedsChunksFor200MHz) {
  // "A 54bit adder/subtractor can achieve 200MHz with 4 pipelining stages."
  EXPECT_LT(stage_mhz(kTech.adder_delay(54, kArea)), 150.0);
  EXPECT_GT(stage_mhz(kTech.adder_delay(14, kArea)), 200.0);
}

TEST(Calibration, PriorityEncoderMustSplitAt54Bits) {
  // "For 54bits it has to be broken into two smaller priority encoders and
  // a 3bit adder, to achieve a frequency greater than 2[00]MHz."
  EXPECT_LT(stage_mhz(kTech.priority_encoder_delay(54, kArea)), 200.0);
  EXPECT_GT(stage_mhz(kTech.priority_encoder_delay(27, kArea) +
                      kTech.adder_chained_delay(3, kArea)),
            200.0);
}

TEST(Calibration, WideMultiplierNeedsSevenStages) {
  // "For the 54bit fixed-point multiplication, seven pipelining stages are
  // required to achieve a frequency of 200MHz": the binary64 mantissa
  // pipeline (bmult + csa levels + cpa chunks) spans ~7 pieces.
  UnitConfig cfg;
  const FpUnit mul64(UnitKind::kMultiplier, fp::FpFormat::binary64(), cfg);
  int mantissa_pieces = 0;
  for (const rtl::Piece& p : mul64.pieces()) {
    if (p.group == "mantissa_mul" || p.group == "cpa") ++mantissa_pieces;
  }
  EXPECT_GE(mantissa_pieces, 6);
  EXPECT_LE(mantissa_pieces, 8);
}

TEST(Calibration, AbstractThroughputClaims) {
  // "We achieve throughput rates of more than 240Mhz (200Mhz) for single
  // (double) precision operations by deeply pipelining the units."
  for (UnitKind kind : {UnitKind::kAdder, UnitKind::kMultiplier}) {
    UnitConfig cfg;
    cfg.stages = 99;
    EXPECT_GT(FpUnit(kind, fp::FpFormat::binary32(), cfg).freq_mhz(), 240.0)
        << to_string(kind);
    EXPECT_GT(FpUnit(kind, fp::FpFormat::binary64(), cfg).freq_mhz(), 200.0)
        << to_string(kind);
  }
}

TEST(Calibration, EmbeddedMultiplierBudget) {
  // XC2VP125-era MULT18X18s handle 17 unsigned bits per chunk: 4 blocks for
  // single precision, 16 for double — the counts the GFLOPS ceiling uses.
  UnitConfig cfg;
  EXPECT_EQ(FpUnit(UnitKind::kMultiplier, fp::FpFormat::binary32(), cfg)
                .area()
                .total.bmults,
            4);
  EXPECT_EQ(FpUnit(UnitKind::kMultiplier, fp::FpFormat::binary64(), cfg)
                .area()
                .total.bmults,
            16);
}

TEST(Calibration, RegisterOverheadBand) {
  // One ns of clk->q + setup + skew: the fixed tax every stage pays.
  EXPECT_GT(kTech.register_overhead_ns(), 0.5);
  EXPECT_LT(kTech.register_overhead_ns(), 2.0);
}

}  // namespace
}  // namespace flopsim::units
