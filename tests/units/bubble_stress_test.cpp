// Pipeline robustness under irregular issue patterns: random bubbles must
// never reorder, drop, or corrupt results in any unit at any depth.
#include <gtest/gtest.h>

#include <random>

#include "fp/ops.hpp"
#include "units/fp_unit.hpp"
#include "../fp/test_util.hpp"

namespace flopsim::units {
namespace {

struct StressCase {
  UnitKind kind;
  int stages;
  const char* name;
};

class BubbleStressTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(BubbleStressTest, RandomBubblesPreserveOrderAndValues) {
  const auto [kind, stages, name] = GetParam();
  const fp::FpFormat fmt = fp::FpFormat::binary32();
  UnitConfig cfg;
  cfg.stages = stages;
  FpUnit unit(kind, fmt, cfg);
  const FpUnit ref_unit(kind, fmt, UnitConfig{});

  fp::testing::ValueGen gen(fmt, 0xb0b1e + stages);
  std::mt19937_64 bubble_rng(99);
  std::vector<UnitInput> issued;
  std::vector<UnitOutput> received;
  constexpr int kOps = 2000;
  int sent = 0;
  long cycle = 0;
  while (static_cast<int>(received.size()) < kOps) {
    std::optional<UnitInput> in;
    if (sent < kOps && (bubble_rng() % 3) != 0) {  // ~2/3 duty cycle
      in = UnitInput{gen.uniform_bits().bits, gen.uniform_bits().bits,
                     (bubble_rng() & 1) != 0 && kind == UnitKind::kAdder};
      issued.push_back(*in);
      ++sent;
    }
    unit.step(in);
    if (const auto out = unit.output()) received.push_back(*out);
    ++cycle;
    ASSERT_LT(cycle, 10L * kOps) << "stall: outputs not arriving";
  }
  ASSERT_EQ(received.size(), issued.size());
  for (std::size_t i = 0; i < issued.size(); ++i) {
    const UnitOutput expect = ref_unit.evaluate(issued[i]);
    ASSERT_EQ(received[i].result, expect.result) << "op " << i;
    ASSERT_EQ(received[i].flags, expect.flags) << "op " << i;
  }
}

TEST_P(BubbleStressTest, ResetMidStreamDropsInFlightOnly) {
  const auto [kind, stages, name] = GetParam();
  const fp::FpFormat fmt = fp::FpFormat::binary32();
  UnitConfig cfg;
  cfg.stages = stages;
  FpUnit unit(kind, fmt, cfg);
  fp::testing::ValueGen gen(fmt, 7);
  // Fill the pipe, reset, then verify fresh work flows normally.
  for (int i = 0; i < stages; ++i) {
    unit.step(UnitInput{gen.uniform_bits().bits, gen.uniform_bits().bits,
                        false});
  }
  unit.reset();
  ASSERT_FALSE(unit.output().has_value());
  const fp::u64 one = fp::make_one(fmt).bits;
  unit.step(UnitInput{one, one, false});
  for (int i = 1; i < unit.latency(); ++i) {
    ASSERT_FALSE(unit.output().has_value()) << "cycle " << i;
    unit.step(std::nullopt);
  }
  ASSERT_TRUE(unit.output().has_value());
  const FpUnit ref_unit(kind, fmt, UnitConfig{});
  EXPECT_EQ(unit.output()->result,
            ref_unit.evaluate(UnitInput{one, one, false}).result);
}

INSTANTIATE_TEST_SUITE_P(
    Units, BubbleStressTest,
    ::testing::Values(StressCase{UnitKind::kAdder, 3, "add_s3"},
                      StressCase{UnitKind::kAdder, 12, "add_s12"},
                      StressCase{UnitKind::kMultiplier, 5, "mul_s5"},
                      StressCase{UnitKind::kDivider, 16, "div_s16"},
                      StressCase{UnitKind::kSqrt, 10, "sqrt_s10"}),
    [](const ::testing::TestParamInfo<StressCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace flopsim::units
