// IEEE-mode units (gradual underflow + NaN handling in hardware): bit-exact
// with fp:: under FpEnv::ieee at every depth, exhaustively on the tiny
// format — and measurably more expensive than the paper-policy cores,
// quantifying the cost the paper declined to pay.
#include <gtest/gtest.h>

#include "fp/ops.hpp"
#include "units/fp_unit.hpp"
#include "../fp/test_util.hpp"

namespace flopsim::units {
namespace {

using fp::FpEnv;
using fp::FpFormat;
using fp::FpValue;
using fp::RoundingMode;
using fp::testing::ValueGen;

/// NaN results canonicalize (hardware produces the canonical qNaN; the
/// softfloat does too, but compare robustly).
fp::u64 canonical(const FpValue& v) {
  return v.is_nan() ? (v.fmt.exp_mask() | v.fmt.quiet_bit()) : v.bits;
}

struct IeeeCase {
  UnitKind kind;
  FpFormat fmt;
  RoundingMode rounding;
  const char* name;
};

class IeeeModeTest : public ::testing::TestWithParam<IeeeCase> {};

TEST_P(IeeeModeTest, MatchesSoftfloatIncludingSubnormalsAndNaNs) {
  const auto [kind, fmt, rounding, name] = GetParam();
  UnitConfig cfg;
  cfg.ieee_mode = true;
  cfg.rounding = rounding;
  const FpUnit unit(kind, fmt, cfg);
  ValueGen gen(fmt, 0x1eee);
  for (int i = 0; i < 60000; ++i) {
    const FpValue a = gen.uniform_bits();
    const FpValue b = gen.uniform_bits();
    const bool sub = (i & 1) != 0 && kind == UnitKind::kAdder;
    FpEnv env = FpEnv::ieee(rounding);
    const FpValue ref =
        kind == UnitKind::kAdder
            ? (sub ? fp::sub(a, b, env) : fp::add(a, b, env))
            : fp::mul(a, b, env);
    const UnitOutput out = unit.evaluate({a.bits, b.bits, sub});
    ASSERT_EQ(out.result, canonical(ref))
        << to_string(a) << (sub ? " - " : " op ") << to_string(b);
    ASSERT_EQ(out.flags, env.flags)
        << to_string(a) << " op " << to_string(b);
  }
}

TEST_P(IeeeModeTest, SubnormalHeavyOperands) {
  const auto [kind, fmt, rounding, name] = GetParam();
  UnitConfig cfg;
  cfg.ieee_mode = true;
  cfg.rounding = rounding;
  const FpUnit unit(kind, fmt, cfg);
  ValueGen gen(fmt, 0x1eef);
  for (int i = 0; i < 40000; ++i) {
    // Force subnormal / near-subnormal encodings.
    const FpValue a(gen.rng()() & (fmt.frac_mask() | fmt.sign_mask() |
                                   (fp::u64{3} << fmt.frac_bits())),
                    fmt);
    const FpValue b(gen.rng()() & (fmt.frac_mask() | fmt.sign_mask()), fmt);
    FpEnv env = FpEnv::ieee(rounding);
    const FpValue ref = kind == UnitKind::kAdder ? fp::add(a, b, env)
                                                 : fp::mul(a, b, env);
    const UnitOutput out = unit.evaluate({a.bits, b.bits, false});
    ASSERT_EQ(out.result, canonical(ref))
        << to_string(a) << " op " << to_string(b);
    ASSERT_EQ(out.flags, env.flags);
  }
}

TEST_P(IeeeModeTest, EveryDepthSameBits) {
  const auto [kind, fmt, rounding, name] = GetParam();
  UnitConfig base;
  base.ieee_mode = true;
  base.rounding = rounding;
  const FpUnit comb(kind, fmt, base);
  ValueGen gen(fmt, 0x1ef0);
  std::vector<UnitInput> vectors;
  for (int i = 0; i < 400; ++i) {
    vectors.push_back({gen.uniform_bits().bits, gen.uniform_bits().bits,
                       false});
  }
  for (int depth : {1, 3, comb.max_stages()}) {
    UnitConfig cfg = base;
    cfg.stages = depth;
    FpUnit unit(kind, fmt, cfg);
    std::size_t got = 0;
    for (std::size_t i = 0; i < vectors.size() + unit.latency(); ++i) {
      unit.step(i < vectors.size() ? std::optional<UnitInput>(vectors[i])
                                   : std::nullopt);
      if (const auto out = unit.output()) {
        const UnitOutput ref = comb.evaluate(vectors[got]);
        ASSERT_EQ(out->result, ref.result) << "depth " << depth;
        ASSERT_EQ(out->flags, ref.flags) << "depth " << depth;
        ++got;
      }
    }
    ASSERT_EQ(got, vectors.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, IeeeModeTest,
    ::testing::Values(
        IeeeCase{UnitKind::kAdder, FpFormat::binary32(),
                 RoundingMode::kNearestEven, "add32_rne"},
        IeeeCase{UnitKind::kAdder, FpFormat::binary64(),
                 RoundingMode::kNearestEven, "add64_rne"},
        IeeeCase{UnitKind::kAdder, FpFormat::binary64(),
                 RoundingMode::kTowardZero, "add64_trunc"},
        IeeeCase{UnitKind::kMultiplier, FpFormat::binary32(),
                 RoundingMode::kNearestEven, "mul32_rne"},
        IeeeCase{UnitKind::kMultiplier, FpFormat::binary64(),
                 RoundingMode::kNearestEven, "mul64_rne"},
        IeeeCase{UnitKind::kMultiplier, FpFormat::binary48(),
                 RoundingMode::kTowardZero, "mul48_trunc"}),
    [](const ::testing::TestParamInfo<IeeeCase>& info) {
      return info.param.name;
    });

TEST(IeeeMode, ExhaustiveTinyFormat) {
  const FpFormat tiny(4, 3);
  for (UnitKind kind : {UnitKind::kAdder, UnitKind::kMultiplier}) {
    UnitConfig cfg;
    cfg.ieee_mode = true;
    const FpUnit unit(kind, tiny, cfg);
    for (unsigned a = 0; a < 256; ++a) {
      for (unsigned b = 0; b < 256; ++b) {
        FpEnv env = FpEnv::ieee();
        const FpValue ref = kind == UnitKind::kAdder
                                ? fp::add(FpValue(a, tiny), FpValue(b, tiny),
                                          env)
                                : fp::mul(FpValue(a, tiny), FpValue(b, tiny),
                                          env);
        const UnitOutput out = unit.evaluate({a, b, false});
        ASSERT_EQ(out.result, canonical(ref))
            << to_string(kind) << " " << a << " op " << b;
        ASSERT_EQ(out.flags, env.flags)
            << to_string(kind) << " " << a << " op " << b;
      }
    }
  }
}

TEST(IeeeMode, CostsMeasurablyMoreHardware) {
  // The paper's claim, quantified: denormal/NaN support "may not justify
  // the usage of a lot of hardware".
  // The adder only adds the result denormalizer (~8%); the multiplier also
  // needs two operand normalizers (~40%).
  struct Expect {
    UnitKind kind;
    double min_area_factor;
  };
  for (const Expect& e : {Expect{UnitKind::kAdder, 1.05},
                          Expect{UnitKind::kMultiplier, 1.25}}) {
    const UnitKind kind = e.kind;
    UnitConfig paper_cfg;
    paper_cfg.stages = 10;
    UnitConfig ieee_cfg = paper_cfg;
    ieee_cfg.ieee_mode = true;
    const FpUnit paper_u(kind, FpFormat::binary64(), paper_cfg);
    const FpUnit ieee_u(kind, FpFormat::binary64(), ieee_cfg);
    EXPECT_GT(ieee_u.area().total.slices,
              e.min_area_factor * paper_u.area().total.slices)
        << to_string(kind);
    EXPECT_GT(ieee_u.max_stages(), paper_u.max_stages()) << to_string(kind);
    // At matched depth the IEEE unit clocks no faster.
    EXPECT_LE(ieee_u.freq_mhz(), paper_u.freq_mhz() + 1e-9)
        << to_string(kind);
  }
}

TEST(IeeeMode, DividerMatchesSoftfloat) {
  UnitConfig cfg;
  cfg.ieee_mode = true;
  for (const FpFormat& fmt : {FpFormat::binary32(), FpFormat::binary64()}) {
    const FpUnit unit(UnitKind::kDivider, fmt, cfg);
    ValueGen gen(fmt, 0xd1ee);
    for (int i = 0; i < 60000; ++i) {
      const FpValue a = gen.uniform_bits();
      const FpValue b = gen.uniform_bits();
      FpEnv env = FpEnv::ieee();
      const FpValue ref = fp::div(a, b, env);
      const UnitOutput out = unit.evaluate({a.bits, b.bits, false});
      ASSERT_EQ(out.result, canonical(ref))
          << to_string(a) << " / " << to_string(b);
      ASSERT_EQ(out.flags, env.flags);
    }
  }
}

TEST(IeeeMode, DividerExhaustiveTiny) {
  const FpFormat tiny(4, 3);
  UnitConfig cfg;
  cfg.ieee_mode = true;
  const FpUnit unit(UnitKind::kDivider, tiny, cfg);
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      FpEnv env = FpEnv::ieee();
      const FpValue ref = fp::div(FpValue(a, tiny), FpValue(b, tiny), env);
      const UnitOutput out = unit.evaluate({a, b, false});
      ASSERT_EQ(out.result, canonical(ref)) << a << "/" << b;
      ASSERT_EQ(out.flags, env.flags) << a << "/" << b;
    }
  }
}

TEST(IeeeMode, SqrtMatchesSoftfloatExhaustiveAndRandom) {
  UnitConfig cfg;
  cfg.ieee_mode = true;
  const FpFormat tiny(4, 3);
  const FpUnit tu(UnitKind::kSqrt, tiny, cfg);
  for (unsigned a = 0; a < 256; ++a) {
    FpEnv env = FpEnv::ieee();
    const FpValue ref = fp::sqrt(FpValue(a, tiny), env);
    const UnitOutput out = tu.evaluate({a, 0, false});
    ASSERT_EQ(out.result, canonical(ref)) << a;
    ASSERT_EQ(out.flags, env.flags) << a;
  }
  const FpUnit u64u(UnitKind::kSqrt, FpFormat::binary64(), cfg);
  ValueGen gen(FpFormat::binary64(), 0x50ee);
  for (int i = 0; i < 60000; ++i) {
    const FpValue a = gen.uniform_bits();
    FpEnv env = FpEnv::ieee();
    const FpValue ref = fp::sqrt(a, env);
    const UnitOutput out = u64u.evaluate({a.bits, 0, false});
    ASSERT_EQ(out.result, canonical(ref)) << to_string(a);
    ASSERT_EQ(out.flags, env.flags);
  }
}

TEST(IeeeMode, MacMatchesSoftfloat) {
  UnitConfig cfg;
  cfg.ieee_mode = true;
  for (const FpFormat& fmt : {FpFormat::binary32(), FpFormat::binary64()}) {
    const FpUnit unit(UnitKind::kMac, fmt, cfg);
    ValueGen gen(fmt, 0x3aee);
    for (int i = 0; i < 60000; ++i) {
      const FpValue a = gen.uniform_bits();
      const FpValue b = gen.uniform_bits();
      const FpValue c = gen.uniform_bits();
      FpEnv env = FpEnv::ieee();
      const FpValue ref = fp::fma(a, b, c, env);
      const UnitOutput out = unit.evaluate({a.bits, b.bits, false, c.bits});
      ASSERT_EQ(out.result, canonical(ref))
          << to_string(a) << "*" << to_string(b) << "+" << to_string(c);
      ASSERT_EQ(out.flags, env.flags);
    }
  }
}

TEST(IeeeMode, MacSubnormalHeavyTriples) {
  UnitConfig cfg;
  cfg.ieee_mode = true;
  const FpFormat fmt = FpFormat::binary32();
  const FpUnit unit(UnitKind::kMac, fmt, cfg);
  ValueGen gen(fmt, 0x3aef);
  for (int i = 0; i < 60000; ++i) {
    const FpValue a(gen.rng()() & (fmt.frac_mask() | fmt.sign_mask() |
                                   (fp::u64{3} << fmt.frac_bits())),
                    fmt);
    const FpValue b(gen.rng()() & (fmt.frac_mask() | fmt.sign_mask()), fmt);
    const FpValue c = gen.uniform_bits();
    FpEnv env = FpEnv::ieee();
    const FpValue ref = fp::fma(a, b, c, env);
    const UnitOutput out = unit.evaluate({a.bits, b.bits, false, c.bits});
    ASSERT_EQ(out.result, canonical(ref))
        << to_string(a) << "*" << to_string(b) << "+" << to_string(c);
    ASSERT_EQ(out.flags, env.flags);
  }
}

TEST(IeeeMode, PaperModeUnaffected) {
  // Regression guard: the default (paper) chains must not change.
  UnitConfig cfg;
  cfg.stages = 8;
  const FpUnit u(UnitKind::kAdder, FpFormat::binary32(), cfg);
  fp::FpEnv env = fp::FpEnv::paper();
  const FpValue a = fp::from_double(1.5, FpFormat::binary32(), env);
  const FpValue b = fp::from_double(0.25, FpFormat::binary32(), env);
  const FpValue ref = fp::add(a, b, env);
  EXPECT_EQ(u.evaluate({a.bits, b.bits, false}).result, ref.bits);
}

}  // namespace
}  // namespace flopsim::units
