// The structural adder must be bit-exact with the softfloat reference under
// the paper policy, at every pipeline depth, for values and flags alike.
#include <gtest/gtest.h>

#include "fp/ops.hpp"
#include "units/fp_unit.hpp"
#include "../fp/test_util.hpp"

namespace flopsim::units {
namespace {

using fp::FpEnv;
using fp::FpFormat;
using fp::FpValue;
using fp::RoundingMode;
using fp::testing::ValueGen;

struct AdderCase {
  FpFormat fmt;
  RoundingMode rounding;
  const char* name;
};

class AdderExactnessTest : public ::testing::TestWithParam<AdderCase> {};

FpValue reference_add(const FpValue& a, const FpValue& b, bool subtract,
                      RoundingMode mode, std::uint8_t* flags) {
  FpEnv env = FpEnv::paper(mode);
  const FpValue r = subtract ? fp::sub(a, b, env) : fp::add(a, b, env);
  *flags = env.flags;
  return r;
}

TEST_P(AdderExactnessTest, CombinationalMatchesSoftfloat) {
  const AdderCase pc = GetParam();
  UnitConfig cfg;
  cfg.rounding = pc.rounding;
  const FpUnit unit(UnitKind::kAdder, pc.fmt, cfg);
  ValueGen gen(pc.fmt, 0xadd0 + static_cast<int>(pc.rounding));
  for (int i = 0; i < 60000; ++i) {
    const auto [a, b] = gen.correlated_pair();
    const bool subtract = (i & 1) != 0;
    std::uint8_t ref_flags = 0;
    const FpValue ref = reference_add(a, b, subtract, pc.rounding, &ref_flags);
    const UnitOutput out = unit.evaluate({a.bits, b.bits, subtract});
    ASSERT_EQ(out.result, ref.bits)
        << (subtract ? "sub " : "add ") << to_string(a) << " " << to_string(b)
        << " ref=" << to_string(ref);
    ASSERT_EQ(out.flags, ref_flags)
        << (subtract ? "sub " : "add ") << to_string(a) << " "
        << to_string(b);
  }
}

TEST_P(AdderExactnessTest, UniformBitsIncludingSpecialEncodings) {
  const AdderCase pc = GetParam();
  UnitConfig cfg;
  cfg.rounding = pc.rounding;
  const FpUnit unit(UnitKind::kAdder, pc.fmt, cfg);
  ValueGen gen(pc.fmt, 0xadd100 + static_cast<int>(pc.rounding));
  for (int i = 0; i < 60000; ++i) {
    const FpValue a = gen.uniform_bits();
    const FpValue b = gen.uniform_bits();
    const bool subtract = (i & 1) != 0;
    std::uint8_t ref_flags = 0;
    const FpValue ref = reference_add(a, b, subtract, pc.rounding, &ref_flags);
    const UnitOutput out = unit.evaluate({a.bits, b.bits, subtract});
    ASSERT_EQ(out.result, ref.bits)
        << (subtract ? "sub " : "add ") << to_string(a) << " " << to_string(b)
        << " ref=" << to_string(ref);
    ASSERT_EQ(out.flags, ref_flags);
  }
}

TEST_P(AdderExactnessTest, SpecialsCrossProduct) {
  const AdderCase pc = GetParam();
  UnitConfig cfg;
  cfg.rounding = pc.rounding;
  const FpUnit unit(UnitKind::kAdder, pc.fmt, cfg);
  ValueGen gen(pc.fmt, 3);
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) {
      for (bool subtract : {false, true}) {
        const FpValue a = gen.special(i);
        const FpValue b = gen.special(j);
        std::uint8_t ref_flags = 0;
        const FpValue ref =
            reference_add(a, b, subtract, pc.rounding, &ref_flags);
        const UnitOutput out = unit.evaluate({a.bits, b.bits, subtract});
        ASSERT_EQ(out.result, ref.bits)
            << (subtract ? "sub " : "add ") << to_string(a) << " "
            << to_string(b);
        ASSERT_EQ(out.flags, ref_flags);
      }
    }
  }
}

TEST_P(AdderExactnessTest, EveryPipelineDepthSameBits) {
  const AdderCase pc = GetParam();
  // Pipelining must change latency only. Drive pipelined sims at several
  // depths and check against the combinational result.
  UnitConfig base;
  base.rounding = pc.rounding;
  const FpUnit combinational(UnitKind::kAdder, pc.fmt, base);
  const int max_depth = combinational.max_stages();
  ValueGen gen(pc.fmt, 0xadd200);
  std::vector<UnitInput> vectors;
  for (int i = 0; i < 500; ++i) {
    const auto [a, b] = gen.correlated_pair();
    vectors.push_back({a.bits, b.bits, (i & 1) != 0});
  }
  for (int depth : {1, 2, 3, max_depth / 2, max_depth}) {
    if (depth < 1) continue;
    UnitConfig cfg = base;
    cfg.stages = depth;
    FpUnit unit(UnitKind::kAdder, pc.fmt, cfg);
    ASSERT_EQ(unit.stages(), std::min(depth, max_depth));
    std::size_t received = 0;
    for (std::size_t i = 0; i < vectors.size() + unit.latency(); ++i) {
      unit.step(i < vectors.size() ? std::optional<UnitInput>(vectors[i])
                                   : std::nullopt);
      if (const auto out = unit.output()) {
        const UnitOutput ref = combinational.evaluate(vectors[received]);
        ASSERT_EQ(out->result, ref.result) << "depth=" << depth;
        ASSERT_EQ(out->flags, ref.flags) << "depth=" << depth;
        ++received;
      }
    }
    ASSERT_EQ(received, vectors.size()) << "depth=" << depth;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, AdderExactnessTest,
    ::testing::Values(
        AdderCase{FpFormat::binary32(), RoundingMode::kNearestEven,
                  "b32_rne"},
        AdderCase{FpFormat::binary32(), RoundingMode::kTowardZero,
                  "b32_trunc"},
        AdderCase{FpFormat::binary48(), RoundingMode::kNearestEven,
                  "b48_rne"},
        AdderCase{FpFormat::binary48(), RoundingMode::kTowardZero,
                  "b48_trunc"},
        AdderCase{FpFormat::binary64(), RoundingMode::kNearestEven,
                  "b64_rne"},
        AdderCase{FpFormat::binary64(), RoundingMode::kTowardZero,
                  "b64_trunc"},
        AdderCase{FpFormat::binary16(), RoundingMode::kNearestEven,
                  "b16_rne"},
        AdderCase{FpFormat::bfloat16(), RoundingMode::kNearestEven,
                  "bf16_rne"}),
    [](const ::testing::TestParamInfo<AdderCase>& info) {
      return info.param.name;
    });

TEST(AdderUnit, RejectsUnsupportedRounding) {
  UnitConfig cfg;
  cfg.rounding = fp::RoundingMode::kTowardPositive;
  EXPECT_THROW(FpUnit(UnitKind::kAdder, FpFormat::binary32(), cfg),
               std::invalid_argument);
}

TEST(AdderUnit, NameDescribesUnit) {
  UnitConfig cfg;
  cfg.stages = 5;
  const FpUnit u(UnitKind::kAdder, FpFormat::binary32(), cfg);
  EXPECT_EQ(u.name(), "fp_add<binary32>/s5");
}

}  // namespace
}  // namespace flopsim::units
