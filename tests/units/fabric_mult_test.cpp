// LUT-fabric multiplier variant: same bits, different resource profile.
#include <gtest/gtest.h>

#include "fp/ops.hpp"
#include "units/fp_unit.hpp"
#include "../fp/test_util.hpp"

namespace flopsim::units {
namespace {

using fp::FpEnv;
using fp::FpFormat;
using fp::FpValue;
using fp::testing::ValueGen;

class FabricMultTest : public ::testing::TestWithParam<FpFormat> {};

TEST_P(FabricMultTest, BitExactWithSoftfloat) {
  UnitConfig cfg;
  cfg.use_embedded_multipliers = false;
  const FpUnit unit(UnitKind::kMultiplier, GetParam(), cfg);
  ValueGen gen(GetParam(), 0xfab1);
  for (int i = 0; i < 60000; ++i) {
    const FpValue a = gen.uniform_bits();
    const FpValue b = gen.uniform_bits();
    FpEnv env = FpEnv::paper();
    const FpValue ref = fp::mul(a, b, env);
    const UnitOutput out = unit.evaluate({a.bits, b.bits, false});
    ASSERT_EQ(out.result, ref.bits)
        << to_string(a) << " * " << to_string(b);
    ASSERT_EQ(out.flags, env.flags);
  }
}

TEST_P(FabricMultTest, SameBitsAsEmbeddedVariant) {
  UnitConfig fab;
  fab.use_embedded_multipliers = false;
  UnitConfig emb;
  const FpUnit fu(UnitKind::kMultiplier, GetParam(), fab);
  const FpUnit eu(UnitKind::kMultiplier, GetParam(), emb);
  ValueGen gen(GetParam(), 0xfab2);
  for (int i = 0; i < 20000; ++i) {
    const UnitInput in{gen.uniform_bits().bits, gen.uniform_bits().bits,
                       false};
    ASSERT_EQ(fu.evaluate(in).result, eu.evaluate(in).result);
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, FabricMultTest,
                         ::testing::Values(FpFormat::binary32(),
                                           FpFormat::binary48(),
                                           FpFormat::binary64(),
                                           FpFormat(4, 3)),
                         [](const ::testing::TestParamInfo<FpFormat>& i) {
                           std::string n = i.param.name();
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

TEST(FabricMult, TradesBmultsForSlices) {
  UnitConfig fab;
  fab.use_embedded_multipliers = false;
  UnitConfig emb;
  const FpUnit fu(UnitKind::kMultiplier, FpFormat::binary64(), fab);
  const FpUnit eu(UnitKind::kMultiplier, FpFormat::binary64(), emb);
  EXPECT_EQ(fu.area().total.bmults, 0);
  EXPECT_GT(eu.area().total.bmults, 0);
  EXPECT_GT(fu.area().total.slices, 1.5 * eu.area().total.slices);
  // Fabric rows expose more cut points.
  EXPECT_GT(fu.max_stages(), eu.max_stages());
}

TEST(FabricMult, IeeeModeComposes) {
  UnitConfig cfg;
  cfg.use_embedded_multipliers = false;
  cfg.ieee_mode = true;
  const FpUnit unit(UnitKind::kMultiplier, FpFormat::binary32(), cfg);
  ValueGen gen(FpFormat::binary32(), 0xfab3);
  for (int i = 0; i < 30000; ++i) {
    const FpValue a = gen.uniform_bits();
    const FpValue b = gen.uniform_bits();
    FpEnv env = FpEnv::ieee();
    const FpValue ref = fp::mul(a, b, env);
    const fp::u64 want =
        ref.is_nan()
            ? (FpFormat::binary32().exp_mask() | FpFormat::binary32().quiet_bit())
            : ref.bits;
    ASSERT_EQ(unit.evaluate({a.bits, b.bits, false}).result, want)
        << to_string(a) << " * " << to_string(b);
  }
}

}  // namespace
}  // namespace flopsim::units
