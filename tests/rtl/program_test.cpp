// CompiledProgram and the Evaluator backends: dead-lane pruning and
// constant folding against the lint probe's inference, the compile-time
// self-check, pruned-suffix vs. full equivalence under bit flips, and
// trial-for-trial equality of the interpreted / compiled / bitsliced
// evaluators on a real unit.
#include "rtl/program.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fault/campaign.hpp"
#include "rtl/evaluator.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::rtl {
namespace {

Piece piece(const char* name, std::function<void(SignalSet&)> eval) {
  Piece p;
  p.name = name;
  p.group = "test";
  p.delay_ns = 1.0;
  p.live_bits = 8;
  p.eval = std::move(eval);
  return p;
}

SignalSet stimulus(fp::u64 a) {
  SignalSet s;
  s.lane[0] = a;
  s.valid = true;
  return s;
}

// A three-piece chain exercising every disposition at once:
//   "konst" writes lane 3 = 42 unconditionally  -> folded (live, constant)
//   "use"   writes lane 1 = lane0 + lane3       -> kept (the result path)
//   "dead"  writes lane 2 = lane0 * 5           -> pruned (lane 2 unread)
PieceChain three_way_chain() {
  PieceChain chain;
  chain.push_back(piece("konst", [](SignalSet& s) { s[3] = 42; }));
  chain.push_back(piece("use", [](SignalSet& s) { s[1] = s[0] + s[3]; }));
  chain.push_back(piece("dead", [](SignalSet& s) { s[2] = s[0] * 5; }));
  return chain;
}

CompileContract three_way_contract() {
  CompileContract contract;
  contract.input_lanes = {0};
  contract.result_lane = 1;
  for (const fp::u64 a : {0ull, 1ull, 7ull, 0xDEADBEEFull}) {
    contract.stimuli.push_back(stimulus(a));
  }
  return contract;
}

TEST(CompiledProgram, PrunesDeadAndFoldsConstantPieces) {
  const PieceChain chain = three_way_chain();
  PipelinePlan plan;
  plan.stage_begin = {0, static_cast<int>(chain.size())};
  const CompiledProgram prog =
      compile_program(chain, plan, three_way_contract());

  EXPECT_EQ(prog.stages(), 1);
  EXPECT_EQ(prog.stats().pieces, 3);
  EXPECT_EQ(prog.stats().kept, 1);
  EXPECT_EQ(prog.stats().folded, 1);
  EXPECT_EQ(prog.stats().pruned, 1);
  EXPECT_FALSE(prog.stats().self_check_failed);
  EXPECT_FALSE(prog.stats().alters_valid);
  EXPECT_FALSE(prog.stats().nondeterministic);
  EXPECT_TRUE(prog.optimized());
  ASSERT_EQ(prog.disposition().size(), 3u);
  EXPECT_EQ(prog.disposition()[0], CompiledProgram::Disposition::kFolded);
  EXPECT_EQ(prog.disposition()[1], CompiledProgram::Disposition::kKept);
  EXPECT_EQ(prog.disposition()[2], CompiledProgram::Disposition::kPruned);

  // The optimized program reproduces the chain's result lane, including
  // on values outside the probe stimuli.
  for (const fp::u64 a : {3ull, 0x123456789ull}) {
    SignalSet ref = stimulus(a);
    evaluate_chain(chain, ref);
    SignalSet got = stimulus(a);
    prog.run(got, 0, prog.stages());
    EXPECT_EQ(got.lane[1], ref.lane[1]) << "a=" << a;
  }
}

TEST(CompiledProgram, OptimizationsCanBeDisabled) {
  const PieceChain chain = three_way_chain();
  PipelinePlan plan;
  plan.stage_begin = {0, static_cast<int>(chain.size())};
  CompileOptions opts;
  opts.prune_dead_pieces = false;
  opts.fold_constants = false;
  const CompiledProgram prog =
      compile_program(chain, plan, three_way_contract(), opts);
  EXPECT_EQ(prog.stats().kept, 3);
  EXPECT_EQ(prog.stats().folded, 0);
  EXPECT_EQ(prog.stats().pruned, 0);
  EXPECT_FALSE(prog.optimized());
}

TEST(CompiledProgram, InvalidBundlesFlowThroughUnevaluated) {
  const PieceChain chain = three_way_chain();
  PipelinePlan plan;
  plan.stage_begin = {0, static_cast<int>(chain.size())};
  const CompiledProgram prog =
      compile_program(chain, plan, three_way_contract());
  SignalSet bubble = stimulus(9);
  bubble.valid = false;
  const SignalSet before = bubble;
  prog.run(bubble, 0, prog.stages());
  EXPECT_EQ(bubble.lane, before.lane);
  prog.run_full(bubble, 0, prog.stages());
  EXPECT_EQ(bubble.lane, before.lane);
}

CompileContract unit_contract(const units::FpUnit& unit, int vectors,
                              std::uint64_t seed) {
  CompileContract contract;
  contract.input_lanes = {units::detail::kLaneInA, units::detail::kLaneInB, units::detail::kLaneInCtl,
                          units::detail::kLaneInC};
  contract.result_lane = units::detail::kLaneResult;
  for (const units::UnitInput& in : fault::campaign_workload(
           unit.kind(), unit.format(), vectors, seed)) {
    contract.stimuli.push_back(units::FpUnit::pack(in));
  }
  return contract;
}

// Real units: the full op list reproduces evaluate_chain on every
// stimulus, and the self-check never fires (if observational liveness
// ever misjudged a piece, compile_program must notice and fall back).
TEST(CompiledProgram, RealUnitsCompileCleanAndMatchTheChain) {
  for (const units::UnitKind kind :
       {units::UnitKind::kAdder, units::UnitKind::kMultiplier}) {
    for (const fp::FpFormat fmt :
         {fp::FpFormat::binary32(), fp::FpFormat::binary64()}) {
      units::UnitConfig cfg;
      cfg.stages = kind == units::UnitKind::kAdder ? 5 : 6;
      const units::FpUnit unit(kind, fmt, cfg);
      const CompileContract contract = unit_contract(unit, 16, 0x5eed);
      const CompiledProgram prog =
          compile_program(unit.pieces(), unit.plan(), contract);

      EXPECT_EQ(prog.stages(), unit.plan().stages());
      EXPECT_FALSE(prog.stats().self_check_failed) << unit.name();
      EXPECT_FALSE(prog.stats().alters_valid) << unit.name();
      EXPECT_FALSE(prog.stats().nondeterministic) << unit.name();
      EXPECT_EQ(prog.stats().kept + prog.stats().folded + prog.stats().pruned,
                prog.stats().pieces);

      for (const SignalSet& s : contract.stimuli) {
        SignalSet ref = s;
        evaluate_chain(unit.pieces(), ref);
        SignalSet full = s;
        prog.run_full(full, 0, prog.stages());
        EXPECT_EQ(full.lane[units::detail::kLaneResult], ref.lane[units::detail::kLaneResult]);
        EXPECT_EQ(full.flags, ref.flags);
        SignalSet opt = s;
        prog.run(opt, 0, prog.stages());
        EXPECT_EQ(opt.lane[units::detail::kLaneResult], ref.lane[units::detail::kLaneResult]);
        EXPECT_EQ(opt.flags, ref.flags);
      }
    }
  }
}

// The compile-time self-check only certifies the pruned program on clean
// stimuli; on *faulty* states observational liveness can misjudge a
// conditional read and the pruned suffix may diverge from the full one.
// That is exactly the gap the evaluators' bind-time flip battery covers:
// every divergence this exhaustive flip sweep finds must be answered
// correctly by the compiled evaluator anyway (it falls back to the full
// op list when its battery fails).
TEST(CompiledProgram, FlipDivergencesAreRescuedByTheEvaluatorGuard) {
  units::UnitConfig cfg;
  cfg.stages = 5;
  const units::FpUnit unit(units::UnitKind::kAdder, fp::FpFormat::binary32(),
                           cfg);
  const CompileContract contract = unit_contract(unit, 8, 0x5eed);
  const CompiledProgram prog =
      compile_program(unit.pieces(), unit.plan(), contract);
  const int stages = prog.stages();
  const int vectors = static_cast<int>(contract.stimuli.size());
  const long horizon = vectors + unit.latency() + 2;

  // Exhaustively flip every occupied bit of every clean stage-boundary
  // state and record where pruned and full suffixes disagree on an
  // observable. (The boundary after stage `cut` holding vector v is the
  // latch an upset at cycle v + cut, stage cut lands on.)
  std::vector<LatchUpset> diverging;
  for (int v = 0; v < vectors; ++v) {
    for (int cut = 0; cut < stages; ++cut) {
      SignalSet boundary = contract.stimuli[static_cast<std::size_t>(v)];
      prog.run_full(boundary, 0, cut + 1);
      for (int lane = 0; lane < kMaxSignals; ++lane) {
        fp::u64 occupied = boundary.lane[static_cast<std::size_t>(lane)];
        while (occupied != 0) {
          const int bit = __builtin_ctzll(occupied);
          occupied &= occupied - 1;
          SignalSet pruned = boundary;
          pruned.lane[static_cast<std::size_t>(lane)] ^= fp::u64{1} << bit;
          SignalSet full = pruned;
          prog.run(pruned, cut + 1, stages);
          prog.run_full(full, cut + 1, stages);
          const bool same =
              pruned.valid == full.valid &&
              (!full.valid ||
               (pruned.lane[units::detail::kLaneResult] ==
                    full.lane[units::detail::kLaneResult] &&
                pruned.flags == full.flags));
          if (!same) diverging.push_back({v + cut, cut, lane, bit});
        }
      }
    }
  }

  if (diverging.empty()) return;  // pruning happened to be flip-safe
  std::unique_ptr<Evaluator> interp = make_evaluator(
      EvalBackend::kInterpreted, unit.pieces(), unit.plan(), contract);
  std::unique_ptr<Evaluator> compiled = make_evaluator(
      EvalBackend::kCompiled, unit.pieces(), unit.plan(), contract);
  interp->bind(contract.stimuli, horizon);
  compiled->bind(contract.stimuli, horizon);
  for (const LatchUpset& u : diverging) {
    const UpsetTrial a = interp->trial(u);
    const UpsetTrial b = compiled->trial(u);
    ASSERT_EQ(a.struck, b.struck) << "cycle=" << u.cycle << " bit=" << u.bit;
    ASSERT_EQ(a.corrupted, b.corrupted)
        << "cycle=" << u.cycle << " bit=" << u.bit;
    ASSERT_EQ(a.valid, b.valid);
    ASSERT_EQ(a.result, b.result);
    ASSERT_EQ(a.flags, b.flags);
  }
}

// The three evaluator backends answer every upset — occupied or bubble,
// single or batched — with identical UpsetTrial results.
TEST(Evaluator, BackendsAgreeTrialForTrial) {
  units::UnitConfig cfg;
  cfg.stages = 5;
  const units::FpUnit unit(units::UnitKind::kAdder, fp::FpFormat::binary32(),
                           cfg);
  const CompileContract contract = unit_contract(unit, 8, 0x5eed);
  const long horizon = 8 + unit.latency() + 2;

  std::unique_ptr<Evaluator> interp = make_evaluator(
      EvalBackend::kInterpreted, unit.pieces(), unit.plan(), contract);
  std::unique_ptr<Evaluator> compiled = make_evaluator(
      EvalBackend::kCompiled, unit.pieces(), unit.plan(), contract);
  std::unique_ptr<Evaluator> sliced = make_evaluator(
      EvalBackend::kBitsliced, unit.pieces(), unit.plan(), contract);
  EXPECT_EQ(interp->compile_stats(), nullptr);
  ASSERT_NE(compiled->compile_stats(), nullptr);
  for (Evaluator* ev : {interp.get(), compiled.get(), sliced.get()}) {
    ev->bind(contract.stimuli, horizon);
    EXPECT_EQ(ev->stages(), unit.plan().stages());
    EXPECT_EQ(ev->vectors(), 8);
  }

  std::vector<LatchUpset> upsets;
  for (long cycle = 0; cycle < horizon; ++cycle) {
    for (int stage = 0; stage < unit.plan().stages(); ++stage) {
      for (const int bit : {0, 7, 22, 31, 63}) {
        upsets.push_back({cycle, stage, units::detail::kLaneResult, bit});
        upsets.push_back({cycle, stage, 3, bit});
      }
    }
  }

  std::vector<UpsetTrial> batched(upsets.size());
  sliced->trials(upsets.data(), batched.data(), upsets.size());
  int struck_seen = 0;
  int bubble_seen = 0;
  for (std::size_t i = 0; i < upsets.size(); ++i) {
    const UpsetTrial a = interp->trial(upsets[i]);
    const UpsetTrial b = compiled->trial(upsets[i]);
    const UpsetTrial& c = batched[i];
    ASSERT_EQ(a.struck, b.struck) << "upset " << i;
    ASSERT_EQ(a.corrupted, b.corrupted) << "upset " << i;
    ASSERT_EQ(a.valid, b.valid) << "upset " << i;
    ASSERT_EQ(a.result, b.result) << "upset " << i;
    ASSERT_EQ(a.flags, b.flags) << "upset " << i;
    ASSERT_EQ(a.struck, c.struck) << "upset " << i;
    ASSERT_EQ(a.corrupted, c.corrupted) << "upset " << i;
    ASSERT_EQ(a.valid, c.valid) << "upset " << i;
    ASSERT_EQ(a.result, c.result) << "upset " << i;
    ASSERT_EQ(a.flags, c.flags) << "upset " << i;
    struck_seen += a.struck ? 1 : 0;
    bubble_seen += a.struck ? 0 : 1;
  }
  // The sweep genuinely covered both occupied latches and bubbles.
  EXPECT_GT(struck_seen, 0);
  EXPECT_GT(bubble_seen, 0);
}

// fork() shares bound state and answers identically — the per-worker path
// the campaign grid uses.
TEST(Evaluator, ForksAnswerLikeTheOriginal) {
  units::UnitConfig cfg;
  cfg.stages = 6;
  const units::FpUnit unit(units::UnitKind::kMultiplier,
                           fp::FpFormat::binary64(), cfg);
  const CompileContract contract = unit_contract(unit, 8, 0x5eed);
  const long horizon = 8 + unit.latency() + 2;
  std::unique_ptr<Evaluator> sliced = make_evaluator(
      EvalBackend::kBitsliced, unit.pieces(), unit.plan(), contract);
  sliced->bind(contract.stimuli, horizon);
  const std::unique_ptr<Evaluator> forked = sliced->fork();
  EXPECT_EQ(forked->backend(), EvalBackend::kBitsliced);
  for (long cycle = 0; cycle < horizon; cycle += 3) {
    const LatchUpset u{cycle, 2, units::detail::kLaneResult, 17};
    const UpsetTrial a = sliced->trial(u);
    const UpsetTrial b = forked->trial(u);
    EXPECT_EQ(a.struck, b.struck);
    EXPECT_EQ(a.corrupted, b.corrupted);
    EXPECT_EQ(a.result, b.result);
  }
}

}  // namespace
}  // namespace flopsim::rtl
