// TraceRecorder: text and VCD dumps of pipeline activity.
#include "rtl/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include <algorithm>

namespace flopsim::rtl {
namespace {

PieceChain counting_chain(int n) {
  PieceChain c;
  for (int i = 0; i < n; ++i) {
    Piece p;
    p.name = "p" + std::to_string(i);
    p.group = "t";
    p.delay_ns = 1.0;
    p.area.slices = 1;
    p.live_bits = 64;
    p.eval = [](SignalSet& s) { s[0] += 1; };
    c.push_back(std::move(p));
  }
  return c;
}

TEST(Trace, CapturesEveryCycle) {
  const PieceChain chain = counting_chain(4);
  PipelineSim sim(&chain, plan_pipeline(chain, 4));
  TraceRecorder rec({0});
  for (int i = 0; i < 6; ++i) {
    SignalSet in;
    in.valid = true;
    in[0] = static_cast<fp::u64>(10 * i);
    sim.step(in);
    rec.capture(sim);
  }
  EXPECT_EQ(rec.cycles(), 6);
}

TEST(Trace, TextDumpShape) {
  const PieceChain chain = counting_chain(3);
  PipelineSim sim(&chain, plan_pipeline(chain, 3));
  TraceRecorder rec({0, 1});
  for (int i = 0; i < 4; ++i) {
    SignalSet in;
    in.valid = true;
    in[0] = 7;
    sim.step(in);
    rec.capture(sim);
  }
  std::ostringstream os;
  rec.dump_text(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("cycle"), std::string::npos);
  EXPECT_NE(s.find("s0.L0"), std::string::npos);
  EXPECT_NE(s.find("s2.L1"), std::string::npos);
  // 1 header + 4 cycles.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 5);
}

TEST(Trace, EmptyTraceSafe) {
  TraceRecorder rec;
  std::ostringstream os;
  rec.dump_text(os);
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(Trace, VcdStructure) {
  const PieceChain chain = counting_chain(2);
  PipelineSim sim(&chain, plan_pipeline(chain, 2));
  TraceRecorder rec({0});
  for (int i = 0; i < 3; ++i) {
    SignalSet in;
    in.valid = true;
    in[0] = static_cast<fp::u64>(i);
    sim.step(in);
    rec.capture(sim);
  }
  std::ostringstream os;
  rec.dump_vcd(os, "testbench");
  const std::string s = os.str();
  EXPECT_NE(s.find("$timescale"), std::string::npos);
  EXPECT_NE(s.find("$scope module testbench"), std::string::npos);
  EXPECT_NE(s.find("stage0_valid"), std::string::npos);
  EXPECT_NE(s.find("stage1_lane0"), std::string::npos);
  EXPECT_NE(s.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(s.find("#0"), std::string::npos);
  EXPECT_NE(s.find("#2"), std::string::npos);
  // Value changes present (64-bit binary vectors).
  EXPECT_NE(s.find("b0000"), std::string::npos);
}

TEST(Trace, VcdOnlyEmitsChanges) {
  const PieceChain chain = counting_chain(1);
  PipelineSim sim(&chain, plan_pipeline(chain, 1));
  TraceRecorder rec({0});
  // Feed the same value repeatedly: after cycle 1 nothing changes.
  for (int i = 0; i < 5; ++i) {
    SignalSet in;
    in.valid = true;
    in[0] = 42;
    sim.step(in);
    rec.capture(sim);
  }
  std::ostringstream os;
  rec.dump_vcd(os);
  const std::string s = os.str();
  // Exactly one 64-bit value change for lane 0 (at #0).
  std::size_t count = 0;
  for (std::size_t pos = s.find("\nb"); pos != std::string::npos;
       pos = s.find("\nb", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(Trace, ClearResets) {
  const PieceChain chain = counting_chain(2);
  PipelineSim sim(&chain, plan_pipeline(chain, 2));
  TraceRecorder rec;
  sim.step(std::nullopt);
  rec.capture(sim);
  rec.clear();
  EXPECT_EQ(rec.cycles(), 0);
}

}  // namespace
}  // namespace flopsim::rtl
