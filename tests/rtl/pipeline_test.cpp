// Pipeline planner: balanced partition, legality, timing and area models.
#include "rtl/pipeline.hpp"

#include <gtest/gtest.h>

namespace flopsim::rtl {
namespace {

Piece make_piece(const std::string& name, double delay, int slices,
                 int live_bits, bool cut_after = true) {
  Piece p;
  p.name = name;
  p.group = "test";
  p.delay_ns = delay;
  p.area.slices = slices;
  p.area.luts = slices * 2;
  p.live_bits = live_bits;
  p.cut_after = cut_after;
  p.eval = [](SignalSet& s) { s[0] += 1; };
  return p;
}

PieceChain uniform_chain(int n, double delay = 1.0) {
  PieceChain c;
  for (int i = 0; i < n; ++i) {
    c.push_back(make_piece("p" + std::to_string(i), delay, 10, 32));
  }
  return c;
}

TEST(Pipeline, MaxStagesCountsCuttableBoundaries) {
  EXPECT_EQ(max_stages(uniform_chain(1)), 1);
  EXPECT_EQ(max_stages(uniform_chain(5)), 5);
  PieceChain c = uniform_chain(5);
  c[1].cut_after = false;
  c[3].cut_after = false;
  EXPECT_EQ(max_stages(c), 3);
}

TEST(Pipeline, PlanClampsDepth) {
  const PieceChain c = uniform_chain(4);
  EXPECT_EQ(plan_pipeline(c, 0).stages(), 1);
  EXPECT_EQ(plan_pipeline(c, 1).stages(), 1);
  EXPECT_EQ(plan_pipeline(c, 4).stages(), 4);
  EXPECT_EQ(plan_pipeline(c, 99).stages(), 4);
}

TEST(Pipeline, PlanCoversChainExactly) {
  const PieceChain c = uniform_chain(7);
  for (int s = 1; s <= 7; ++s) {
    const PipelinePlan plan = plan_pipeline(c, s);
    ASSERT_EQ(plan.stages(), s);
    EXPECT_EQ(plan.stage_begin.front(), 0);
    EXPECT_EQ(plan.stage_begin.back(), 7);
    for (int i = 1; i < static_cast<int>(plan.stage_begin.size()); ++i) {
      EXPECT_GT(plan.stage_begin[i], plan.stage_begin[i - 1]);
    }
  }
}

TEST(Pipeline, PlanRespectsIllegalCuts) {
  PieceChain c = uniform_chain(6);
  c[0].cut_after = false;
  c[2].cut_after = false;
  c[4].cut_after = false;
  for (int s = 1; s <= max_stages(c); ++s) {
    const PipelinePlan plan = plan_pipeline(c, s);
    for (int i = 1; i < plan.stages(); ++i) {
      const int cut_after_piece = plan.stage_begin[i] - 1;
      EXPECT_TRUE(c[cut_after_piece].cut_after)
          << "illegal cut after piece " << cut_after_piece;
    }
  }
}

TEST(Pipeline, BalancedPartitionOfUnevenDelays) {
  PieceChain c;
  // Delays 5, 1, 1, 1, 5, 1: with 2 stages the best split is 7/7... the
  // optimum is max 8 (5+1+1+1 | 5+1) vs (5+1+1 | 1+5+1) = 7.
  for (double d : {5.0, 1.0, 1.0, 1.0, 5.0, 1.0}) {
    c.push_back(make_piece("p", d, 1, 8));
  }
  const device::TechModel tech = device::TechModel::virtex2pro7();
  const PipelinePlan plan = plan_pipeline(c, 2);
  const Timing t = evaluate_timing(c, plan, tech);
  EXPECT_DOUBLE_EQ(t.critical_ns, 7.0);
}

TEST(Pipeline, CriticalDelayNonIncreasingWithDepth) {
  PieceChain c;
  for (double d : {3.0, 1.5, 2.0, 4.0, 0.5, 1.0, 2.5, 3.5}) {
    c.push_back(make_piece("p", d, 5, 16));
  }
  const device::TechModel tech = device::TechModel::virtex2pro7();
  double prev = 1e9;
  for (int s = 1; s <= max_stages(c); ++s) {
    const Timing t = evaluate_timing(c, plan_pipeline(c, s), tech);
    EXPECT_LE(t.critical_ns, prev) << "stages=" << s;
    prev = t.critical_ns;
  }
}

TEST(Pipeline, SingleStageDelayIsChainSum) {
  const PieceChain c = uniform_chain(5, 2.0);
  const device::TechModel tech = device::TechModel::virtex2pro7();
  const Timing t = evaluate_timing(c, plan_pipeline(c, 1), tech);
  EXPECT_DOUBLE_EQ(t.critical_ns, 10.0);
  EXPECT_DOUBLE_EQ(t.period_ns, 10.0 + tech.register_overhead_ns());
  EXPECT_NEAR(t.freq_mhz, 1000.0 / t.period_ns, 1e-9);
}

TEST(Pipeline, MaxDepthDelayIsWorstPiece) {
  PieceChain c;
  for (double d : {1.0, 4.5, 2.0}) c.push_back(make_piece("p", d, 5, 16));
  const device::TechModel tech = device::TechModel::virtex2pro7();
  const Timing t = evaluate_timing(c, plan_pipeline(c, 3), tech);
  EXPECT_DOUBLE_EQ(t.critical_ns, 4.5);
  EXPECT_EQ(t.critical_stage, 1);
}

TEST(Pipeline, AreaGrowsWithDepth) {
  const PieceChain c = uniform_chain(10);
  const device::TechModel tech = device::TechModel::virtex2pro7();
  int prev_ffs = -1;
  int prev_slices = -1;
  for (int s = 1; s <= 10; ++s) {
    const AreaBreakdown a =
        evaluate_area(c, plan_pipeline(c, s), tech, device::Objective::kArea);
    EXPECT_GT(a.pipeline_ffs, prev_ffs) << "stages=" << s;
    EXPECT_GE(a.total.slices, prev_slices) << "stages=" << s;
    prev_ffs = a.pipeline_ffs;
    prev_slices = a.total.slices;
    EXPECT_EQ(a.logic.slices, 100);  // logic area is depth-independent
  }
}

TEST(Pipeline, FfAbsorptionDelaysSliceGrowth) {
  // A chain with generous logic slices absorbs shallow pipelining for free.
  const PieceChain c = uniform_chain(10);
  const device::TechModel tech = device::TechModel::virtex2pro7();
  const AreaBreakdown a1 =
      evaluate_area(c, plan_pipeline(c, 1), tech, device::Objective::kArea);
  const AreaBreakdown a2 =
      evaluate_area(c, plan_pipeline(c, 2), tech, device::Objective::kArea);
  // Depth 2 adds one 32-bit latch: 100 slices * 2 FF * 0.55 = 110-FF capacity
  // absorbs it; slices must not move.
  EXPECT_EQ(a1.total.slices, a2.total.slices);
  EXPECT_GT(a2.absorbed_ffs, 0);
}

TEST(Pipeline, SpeedObjectiveInflatesArea) {
  const PieceChain c = uniform_chain(6);
  const device::TechModel tech = device::TechModel::virtex2pro7();
  const auto plan = plan_pipeline(c, 3);
  const AreaBreakdown area_obj =
      evaluate_area(c, plan, tech, device::Objective::kArea);
  const AreaBreakdown speed_obj =
      evaluate_area(c, plan, tech, device::Objective::kSpeed);
  EXPECT_GT(speed_obj.total.slices, area_obj.total.slices);
}

TEST(Pipeline, EmptyChainThrows) {
  EXPECT_THROW(plan_pipeline(PieceChain{}, 1), std::invalid_argument);
}

TEST(Pipeline, EvaluateChainRunsAllPieces) {
  const PieceChain c = uniform_chain(5);
  SignalSet s;
  s.valid = true;
  evaluate_chain(c, s);
  EXPECT_EQ(s[0], 5u);
}

TEST(Pipeline, ChainLogicAreaSums) {
  const PieceChain c = uniform_chain(4);
  EXPECT_EQ(chain_logic_area(c).slices, 40);
  EXPECT_EQ(chain_logic_area(c).luts, 80);
}

}  // namespace
}  // namespace flopsim::rtl
