// Cycle-accurate pipeline simulator: latency, throughput, bubbles, reset.
#include "rtl/simulator.hpp"

#include <gtest/gtest.h>

namespace flopsim::rtl {
namespace {

/// A chain whose pieces each add a distinct power of 10 to lane 0 — any
/// skipped or doubly-applied piece is visible in the result.
PieceChain tagged_chain(int n) {
  PieceChain c;
  long long tag = 1;
  for (int i = 0; i < n; ++i) {
    Piece p;
    p.name = "p" + std::to_string(i);
    p.group = "test";
    p.delay_ns = 1.0;
    p.area.slices = 1;
    p.live_bits = 64;
    const long long t = tag;
    p.eval = [t](SignalSet& s) { s[0] += static_cast<fp::u64>(t); };
    tag *= 10;
    c.push_back(std::move(p));
  }
  return c;
}

SignalSet input_of(fp::u64 v) {
  SignalSet s;
  s.valid = true;
  s[0] = v;
  return s;
}

class SimulatorDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorDepthTest, LatencyEqualsStages) {
  const int depth = GetParam();
  const PieceChain chain = tagged_chain(6);
  const PipelinePlan plan = plan_pipeline(chain, depth);
  PipelineSim sim(&chain, plan);
  ASSERT_EQ(sim.latency(), plan.stages());

  sim.step(input_of(1000000));
  for (int cycle = 1; cycle < sim.latency(); ++cycle) {
    EXPECT_FALSE(sim.output().valid) << "cycle " << cycle;
    sim.step(std::nullopt);
  }
  EXPECT_TRUE(sim.output().valid);
  EXPECT_EQ(sim.output()[0], 1000000u + 111111u);
}

TEST_P(SimulatorDepthTest, ResultIndependentOfDepth) {
  const int depth = GetParam();
  const PieceChain chain = tagged_chain(6);
  PipelineSim sim(&chain, plan_pipeline(chain, depth));
  SignalSet ref = input_of(5);
  evaluate_chain(chain, ref);

  sim.step(input_of(5));
  while (!sim.output().valid) sim.step(std::nullopt);
  EXPECT_EQ(sim.output()[0], ref[0]);
}

TEST_P(SimulatorDepthTest, FullThroughputOnePerCycle) {
  const int depth = GetParam();
  const PieceChain chain = tagged_chain(6);
  PipelineSim sim(&chain, plan_pipeline(chain, depth));
  constexpr int kN = 20;
  int received = 0;
  for (int i = 0; i < kN + sim.latency(); ++i) {
    sim.step(i < kN ? std::optional<SignalSet>(input_of(i)) : std::nullopt);
    if (sim.output().valid) {
      EXPECT_EQ(sim.output()[0], static_cast<fp::u64>(received) + 111111u);
      ++received;
    }
  }
  EXPECT_EQ(received, kN);
}

INSTANTIATE_TEST_SUITE_P(Depths, SimulatorDepthTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Simulator, BubblesPropagate) {
  const PieceChain chain = tagged_chain(4);
  PipelineSim sim(&chain, plan_pipeline(chain, 4));
  sim.step(input_of(1));
  sim.step(std::nullopt);
  sim.step(input_of(2));
  sim.step(std::nullopt);
  std::vector<bool> valids;
  std::vector<fp::u64> vals;
  for (int i = 0; i < 4; ++i) {
    if (sim.output().valid) vals.push_back(sim.output()[0] - 1111u);
    valids.push_back(sim.output().valid);
    sim.step(std::nullopt);
  }
  EXPECT_EQ(valids, (std::vector<bool>{true, false, true, false}));
  EXPECT_EQ(vals, (std::vector<fp::u64>{1, 2}));
}

TEST(Simulator, ResetClearsInFlightWork) {
  const PieceChain chain = tagged_chain(3);
  PipelineSim sim(&chain, plan_pipeline(chain, 3));
  sim.step(input_of(7));
  sim.step(input_of(8));
  sim.reset();
  EXPECT_EQ(sim.cycles(), 0);
  for (int i = 0; i < 5; ++i) {
    sim.step(std::nullopt);
    EXPECT_FALSE(sim.output().valid);
  }
}

TEST(Simulator, CyclesCounts) {
  const PieceChain chain = tagged_chain(3);
  PipelineSim sim(&chain, plan_pipeline(chain, 2));
  for (int i = 0; i < 9; ++i) sim.step(std::nullopt);
  EXPECT_EQ(sim.cycles(), 9);
}

TEST(Simulator, NullChainThrows) {
  EXPECT_THROW(PipelineSim(nullptr, PipelinePlan{}), std::invalid_argument);
}

}  // namespace
}  // namespace flopsim::rtl
