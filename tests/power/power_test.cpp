// Power and energy models: scaling laws, glitch behaviour, measured
// activity, processor references.
#include <gtest/gtest.h>

#include "power/activity.hpp"
#include "power/energy_model.hpp"
#include "power/processors.hpp"
#include "power/unit_power.hpp"

namespace flopsim::power {
namespace {

const device::TechModel kTech = device::TechModel::virtex2pro7();

TEST(PowerModel, ScalesLinearlyWithFrequency) {
  device::Resources r{500, 1000, 800, 4, 1};
  const PowerBreakdown p100 = estimate_power(r, 100.0, 0.5, kTech);
  const PowerBreakdown p200 = estimate_power(r, 200.0, 0.5, kTech);
  EXPECT_NEAR(p200.total_mw(), 2.0 * p100.total_mw(), 1e-9);
}

TEST(PowerModel, ClockIndependentOfActivity) {
  device::Resources r{500, 1000, 800, 0, 0};
  const PowerBreakdown lo = estimate_power(r, 100.0, 0.1, kTech);
  const PowerBreakdown hi = estimate_power(r, 100.0, 0.9, kTech);
  EXPECT_DOUBLE_EQ(lo.clock_mw, hi.clock_mw);
  EXPECT_LT(lo.logic_mw, hi.logic_mw);
  EXPECT_LT(lo.signal_mw, hi.signal_mw);
}

TEST(PowerModel, ZeroResourcesZeroPower) {
  EXPECT_DOUBLE_EQ(estimate_power({}, 200.0, 0.5, kTech).total_mw(), 0.0);
}

TEST(PowerModel, EnergyAccountingClosure) {
  device::Resources r{100, 200, 150, 0, 0};
  const PowerBreakdown p = estimate_power(r, 100.0, 0.5, kTech);
  // 100 MHz for 1e6 cycles = 10 ms; E = P * t.
  const double e = energy_nj(p, 100.0, 1e6);
  EXPECT_NEAR(e, p.total_mw() * 1e-3 * 0.01 * 1e9, 1e-6);
  EXPECT_DOUBLE_EQ(energy_nj(p, 0.0, 100), 0.0);
}

TEST(PowerModel, GlitchFactorShape) {
  EXPECT_DOUBLE_EQ(glitch_factor(1.0), 1.0);
  EXPECT_DOUBLE_EQ(glitch_factor(0.5), 1.0);
  EXPECT_GT(glitch_factor(3.0), glitch_factor(2.0));
  EXPECT_DOUBLE_EQ(glitch_factor(100.0), 3.0);  // capped
}

TEST(UnitPower, DeeperPipelineFewerPiecesPerStage) {
  units::UnitConfig c1;
  c1.stages = 1;
  units::UnitConfig c8 = c1;
  c8.stages = 8;
  const units::FpUnit u1(units::UnitKind::kAdder, fp::FpFormat::binary32(), c1);
  const units::FpUnit u8(units::UnitKind::kAdder, fp::FpFormat::binary32(), c8);
  EXPECT_GT(avg_pieces_per_stage(u1), avg_pieces_per_stage(u8));
}

TEST(UnitPower, PowerAtFixedFrequencyVariesModeratelyWithDepth) {
  // Figure 3: power varies with depth — FF/clock power grows, glitch power
  // shrinks; the deep end must be register-dominated (rising).
  units::UnitConfig cfg;
  std::vector<double> p;
  const units::FpUnit probe(units::UnitKind::kAdder, fp::FpFormat::binary64(),
                            cfg);
  const int maxs = probe.max_stages();
  for (int s = 1; s <= maxs; ++s) {
    units::UnitConfig c = cfg;
    c.stages = s;
    units::FpUnit u(units::UnitKind::kAdder, fp::FpFormat::binary64(), c);
    p.push_back(unit_power(u, 100.0).total_mw());
  }
  EXPECT_GT(p.back(), *std::min_element(p.begin(), p.end()) * 1.1)
      << "deep end should rise above the minimum";
  for (double v : p) {
    EXPECT_GT(v, 50.0);
    EXPECT_LT(v, 1000.0);  // XPower-plausible band for a 64-bit core
  }
}

TEST(UnitPower, WiderFormatBurnsMore) {
  units::UnitConfig cfg;
  cfg.stages = 8;
  const units::FpUnit u32(units::UnitKind::kAdder, fp::FpFormat::binary32(),
                          cfg);
  const units::FpUnit u64(units::UnitKind::kAdder, fp::FpFormat::binary64(),
                          cfg);
  EXPECT_GT(unit_power(u64, 100.0).total_mw(),
            unit_power(u32, 100.0).total_mw());
}

TEST(Activity, MeasuredActivityInPlausibleBand) {
  units::UnitConfig cfg;
  cfg.stages = 6;
  units::FpUnit u(units::UnitKind::kAdder, fp::FpFormat::binary32(), cfg);
  const ActivityStats st = measure_activity(u, 2000);
  EXPECT_GT(st.avg_toggle_rate, 0.05);
  EXPECT_LE(st.avg_toggle_rate, 1.0);
  EXPECT_GT(st.bits_observed, 0);
  EXPECT_EQ(st.cycles, 2000 + u.latency());
}

TEST(Activity, DeterministicForSameSeed) {
  units::UnitConfig cfg;
  cfg.stages = 4;
  units::FpUnit u(units::UnitKind::kMultiplier, fp::FpFormat::binary32(), cfg);
  const double a = measure_activity(u, 500, 42).avg_toggle_rate;
  const double b = measure_activity(u, 500, 42).avg_toggle_rate;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(EnergyModel, ComponentsSumToTotal) {
  std::vector<Component> comps = {
      {"A", {100, 200, 150, 0, 0}, 0.5, 1000.0},
      {"B", {50, 100, 80, 0, 1}, 0.3, 500.0},
  };
  const EnergyReport rep = estimate_energy(comps, 100.0, 2000.0, kTech);
  double sum = 0.0;
  for (const auto& e : rep.entries) sum += e.energy_nj;
  EXPECT_NEAR(sum, rep.total_nj, 1e-9);
  EXPECT_GT(rep.component_nj("A"), rep.component_nj("B"));
  EXPECT_DOUBLE_EQ(rep.component_nj("missing"), 0.0);
}

TEST(EnergyModel, ClockChargedForFullRuntime) {
  // A component active for 0 cycles still burns clock energy all run long.
  std::vector<Component> comps = {{"idle", {100, 200, 150, 0, 0}, 0.5, 0.0}};
  const EnergyReport rep = estimate_energy(comps, 100.0, 1000.0, kTech);
  EXPECT_GT(rep.total_nj, 0.0);
}

TEST(EnergyModel, EnergyProportionalToActiveCycles) {
  std::vector<Component> c1 = {{"x", {100, 200, 0, 0, 0}, 0.5, 1000.0}};
  std::vector<Component> c2 = {{"x", {100, 200, 0, 0, 0}, 0.5, 2000.0}};
  const double e1 = estimate_energy(c1, 100.0, 4000.0, kTech).total_nj;
  const double e2 = estimate_energy(c2, 100.0, 4000.0, kTech).total_nj;
  EXPECT_GT(e2, e1);
}

TEST(Processors, PaperRatiosEncoded) {
  const ProcessorModel p4 = pentium4_254();
  const ProcessorModel g4 = g4_1000();
  // The paper's comparison targets: ~6x over P4 and ~3x over G4 against
  // ~19.6 GFLOPS mean the processors sustain ~3.3 / ~6.5 GFLOPS.
  EXPECT_NEAR(p4.gflops_single, 3.3, 0.5);
  EXPECT_NEAR(g4.gflops_single, 6.5, 0.5);
  EXPECT_GT(g4.gflops_per_watt_single(), p4.gflops_per_watt_single());
  EXPECT_EQ(processor_database().size(), 2u);
}

}  // namespace
}  // namespace flopsim::power
