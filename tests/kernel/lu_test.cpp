// LU decomposition kernel: exactness vs. the softfloat reference, solve
// accuracy, pivot handling.
#include "kernel/lu.hpp"

#include <gtest/gtest.h>

#include <random>

#include "fp/ops.hpp"

namespace flopsim::kernel {
namespace {

PeConfig fast_cfg() {
  PeConfig c;
  c.adder_stages = 4;
  c.mult_stages = 3;
  return c;
}

/// Diagonally dominant matrix: LU without pivoting stays well-conditioned.
Matrix dd_matrix(int n, fp::FpFormat fmt, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    double rowsum = 0.0;
    for (int j = 0; j < n; ++j) {
      const double x = (static_cast<double>(rng() % 512) - 256.0) / 64.0;
      v[static_cast<std::size_t>(i) * n + j] = x;
      rowsum += std::abs(x);
    }
    v[static_cast<std::size_t>(i) * n + i] = rowsum + 1.0;
  }
  return matrix_from_doubles(v, n, fmt);
}

struct LuCase {
  int n;
  int p;
  const char* name;
};

class LuTest : public ::testing::TestWithParam<LuCase> {};

TEST_P(LuTest, FactorsBitExactAgainstReference) {
  const auto [n, p, name] = GetParam();
  const PeConfig cfg = fast_cfg();
  LuArray array(n, p, cfg);
  const Matrix a = dd_matrix(n, cfg.fmt, 500 + n);
  const LuRun run = array.run(a);
  const Matrix ref = reference_lu(a, cfg.fmt, cfg.rounding);
  ASSERT_EQ(run.lu.bits, ref.bits);
  EXPECT_EQ(run.hazards, 0);
  EXPECT_GT(run.cycles, 0);
  EXPECT_EQ(run.divides, static_cast<long>(n) * (n - 1) / 2);
}

TEST_P(LuTest, SolveRecoversKnownSolution) {
  const auto [n, p, name] = GetParam();
  const PeConfig cfg = fast_cfg();
  LuArray array(n, p, cfg);
  const Matrix a = dd_matrix(n, cfg.fmt, 600 + n);
  // b = A * ones  =>  x should be ~ones.
  fp::FpEnv env = fp::FpEnv::paper();
  std::vector<fp::u64> b(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    fp::FpValue acc = fp::make_zero(cfg.fmt);
    for (int j = 0; j < n; ++j) {
      acc = fp::add(acc, fp::FpValue(a.at(i, j), cfg.fmt), env);
    }
    b[static_cast<std::size_t>(i)] = acc.bits;
  }
  const LuRun run = array.run(a);
  const auto x = lu_solve(run.lu, b, cfg.fmt, cfg.rounding);
  for (int i = 0; i < n; ++i) {
    const double xi =
        fp::to_double_exact(fp::FpValue(x[static_cast<std::size_t>(i)],
                                        cfg.fmt));
    EXPECT_NEAR(xi, 1.0, 1e-3) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LuTest,
    ::testing::Values(LuCase{2, 1, "n2_p1"}, LuCase{4, 2, "n4_p2"},
                      LuCase{8, 4, "n8_p4"}, LuCase{8, 8, "n8_p8"},
                      LuCase{12, 5, "n12_p5"}, LuCase{16, 4, "n16_p4"}),
    [](const ::testing::TestParamInfo<LuCase>& info) {
      return info.param.name;
    });

TEST(Lu, ZeroPivotThrows) {
  const PeConfig cfg = fast_cfg();
  Matrix a = Matrix::zero(4, cfg.fmt);  // all-zero: first pivot is 0
  LuArray array(4, 2, cfg);
  EXPECT_THROW(array.run(a), std::domain_error);
  EXPECT_THROW(reference_lu(a, cfg.fmt, cfg.rounding), std::domain_error);
}

TEST(Lu, IdentityFactorsToItself) {
  const PeConfig cfg = fast_cfg();
  const int n = 6;
  Matrix eye = Matrix::zero(n, cfg.fmt);
  for (int i = 0; i < n; ++i) eye.at(i, i) = fp::make_one(cfg.fmt).bits;
  LuArray array(n, 3, cfg);
  const LuRun run = array.run(eye);
  EXPECT_EQ(run.lu.bits, eye.bits);
  EXPECT_GE(run.macs, 0);
}

TEST(Lu, MorePEsFewerCycles) {
  const PeConfig cfg = fast_cfg();
  const int n = 24;
  const Matrix a = dd_matrix(n, cfg.fmt, 700);
  LuArray a1(n, 1, cfg);
  LuArray a8(n, 8, cfg);
  const LuRun r1 = a1.run(a);
  const LuRun r8 = a8.run(a);
  EXPECT_EQ(r1.lu.bits, r8.lu.bits);  // parallelism never changes values
  EXPECT_GT(r1.cycles, 2 * r8.cycles);
}

TEST(Lu, ReconstructionWithinTolerance) {
  // L*U ~ A in double arithmetic (binary32 factors): sanity that the
  // factorization is numerically meaningful, not just self-consistent.
  const PeConfig cfg = fast_cfg();
  const int n = 10;
  const Matrix a = dd_matrix(n, cfg.fmt, 800);
  LuArray array(n, 2, cfg);
  const LuRun run = array.run(a);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double sum = 0.0;
      for (int k = 0; k <= std::min(i, j); ++k) {
        const double l =
            k == i ? 1.0
                   : fp::to_double_exact(fp::FpValue(run.lu.at(i, k), cfg.fmt));
        const double u =
            fp::to_double_exact(fp::FpValue(run.lu.at(k, j), cfg.fmt));
        sum += l * u;
      }
      const double aij = fp::to_double_exact(fp::FpValue(a.at(i, j), cfg.fmt));
      EXPECT_NEAR(sum, aij, std::max(1.0, std::abs(aij)) * 1e-4)
          << i << "," << j;
    }
  }
}

TEST(Lu, Validation) {
  const PeConfig cfg = fast_cfg();
  EXPECT_THROW(LuArray(4, 5, cfg), std::invalid_argument);
  EXPECT_THROW(LuArray(0, 1, cfg), std::invalid_argument);
  LuArray array(4, 2, cfg);
  EXPECT_THROW(array.run(Matrix::zero(5, cfg.fmt)), std::invalid_argument);
}

}  // namespace
}  // namespace flopsim::kernel
