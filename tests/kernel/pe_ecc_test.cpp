// SECDED-protected accumulator bank inside the PE: encode on write,
// correct/detect on read, zero behavioural change when disabled.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "fault/secded.hpp"
#include "kernel/pe.hpp"

namespace flopsim::kernel {
namespace {

PeConfig ecc_config() {
  PeConfig cfg;
  cfg.adder_stages = 2;
  cfg.mult_stages = 2;
  cfg.storage_rows = 8;
  cfg.ecc_accumulators = true;
  return cfg;
}

// Observer that flips chosen accumulator bits at a chosen cycle — the same
// hook the fault layer uses.
struct BitFlipper : StorageObserver {
  long at = 0;
  int row = 0;
  std::vector<int> bits;
  void on_storage(long cycle, std::vector<fp::u64>& acc) override {
    if (cycle != at) return;
    for (int b : bits) acc[static_cast<std::size_t>(row)] ^= fp::u64{1} << b;
  }
};

TEST(PeEcc, WriteReadRoundTripsThroughTheCode) {
  ProcessingElement pe(ecc_config());
  pe.set_acc(3, 0x40490FDBu);  // some binary32 payload
  EXPECT_EQ(pe.acc(3), 0x40490FDBu);
  EXPECT_EQ(pe.ecc_corrections(), 0);
  EXPECT_EQ(pe.ecc_detections(), 0);
}

TEST(PeEcc, SingleBitUpsetIsCorrectedOnRead) {
  ProcessingElement pe(ecc_config());
  pe.set_acc(2, 0x3F800000u);

  BitFlipper flip;
  flip.row = 2;
  flip.bits = {17};
  pe.set_storage_observer(&flip);
  pe.step(std::nullopt);  // cycle 0: observer strikes the stored word
  pe.set_storage_observer(nullptr);

  EXPECT_EQ(pe.acc(2), 0x3F800000u) << "read returns the corrected word";
  EXPECT_GE(pe.ecc_corrections(), 1);
  EXPECT_EQ(pe.ecc_detections(), 0);
}

TEST(PeEcc, DoubleBitUpsetIsDetectedNotMiscorrected) {
  ProcessingElement pe(ecc_config());
  pe.set_acc(1, 0x3F800000u);

  BitFlipper flip;
  flip.row = 1;
  flip.bits = {4, 40};
  pe.set_storage_observer(&flip);
  pe.step(std::nullopt);
  pe.set_storage_observer(nullptr);

  const fp::u64 corrupted =
      0x3F800000u ^ (fp::u64{1} << 4) ^ (fp::u64{1} << 40);
  EXPECT_EQ(pe.acc(1), corrupted) << "uncorrectable word returned raw";
  EXPECT_GE(pe.ecc_detections(), 1);
  EXPECT_EQ(pe.ecc_corrections(), 0);
}

TEST(PeEcc, ClearResetsCountersAndChecks) {
  ProcessingElement pe(ecc_config());
  pe.set_acc(0, 123);
  BitFlipper flip;
  flip.bits = {7};
  pe.set_storage_observer(&flip);
  pe.step(std::nullopt);
  pe.set_storage_observer(nullptr);
  (void)pe.acc(0);
  EXPECT_GT(pe.ecc_corrections(), 0);

  pe.clear();
  EXPECT_EQ(pe.ecc_corrections(), 0);
  EXPECT_EQ(pe.ecc_detections(), 0);
  EXPECT_EQ(pe.acc(0), 0u) << "bank cleared to a valid all-zero codeword";
  EXPECT_EQ(pe.ecc_corrections(), 0) << "the cleared word decodes clean";
}

TEST(PeEcc, EccChargesStorageAreaButNoExtraBram) {
  PeConfig plain = ecc_config();
  plain.ecc_accumulators = false;
  const ProcessingElement bare(plain);
  const ProcessingElement ecc(ecc_config());

  const device::Resources rb = bare.storage_resources();
  const device::Resources re = ecc.storage_resources();
  EXPECT_GT(re.slices, rb.slices);
  EXPECT_GT(re.luts, rb.luts);
  EXPECT_EQ(re.brams, rb.brams) << "check byte rides the BRAM parity bits";

  // MAC stream behaviour is identical when no fault strikes.
  ProcessingElement a(plain), b(ecc_config());
  for (int t = 0; t < 24; ++t) {
    std::optional<ProcessingElement::MacIssue> issue;
    if (t < 8) issue = ProcessingElement::MacIssue{0x3F800000u + t, 0x40000000u, t % 4};
    a.step(issue);
    b.step(issue);
  }
  for (int r = 0; r < 4; ++r) EXPECT_EQ(a.acc(r), b.acc(r));
  EXPECT_EQ(b.ecc_corrections(), 0);
}

}  // namespace
}  // namespace flopsim::kernel
