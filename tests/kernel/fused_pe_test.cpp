// Fused-MAC PEs in the kernel: bit-exactness against the fused reference,
// the changed hazard window, and the accuracy benefit.
#include <gtest/gtest.h>

#include <random>

#include "analysis/accuracy.hpp"
#include "fp/ops.hpp"
#include "kernel/matmul.hpp"

namespace flopsim::kernel {
namespace {

PeConfig fused_cfg() {
  PeConfig c;
  c.adder_stages = 4;
  c.mult_stages = 3;
  c.use_fused_mac = true;  // MAC depth = 7
  return c;
}

Matrix random_matrix(int n, fp::FpFormat fmt, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n) * n);
  for (double& x : v) {
    // Dense mantissas: products are inexact, so fused vs separate rounding
    // actually differs.
    x = (static_cast<double>(rng() % 2000000) - 1000000.0) / 3137.0;
  }
  return matrix_from_doubles(v, n, fmt);
}

TEST(FusedPe, SingleMacBitExact) {
  ProcessingElement pe(fused_cfg());
  EXPECT_EQ(pe.total_latency(), 7);
  fp::FpEnv env = fp::FpEnv::paper();
  const fp::FpFormat fmt = fp::FpFormat::binary32();
  const fp::u64 a = fp::from_double(3.0, fmt, env).bits;
  const fp::u64 b = fp::from_double(4.0, fmt, env).bits;
  pe.set_acc(2, fp::from_double(10.0, fmt, env).bits);
  pe.step(ProcessingElement::MacIssue{a, b, 2});
  while (!pe.drained()) pe.step(std::nullopt);
  EXPECT_EQ(fp::to_double_exact(fp::FpValue(pe.acc(2), fmt)), 22.0);
}

TEST(FusedPe, HazardWindowIsFullMacLatency) {
  // With the addend read at issue, the window is Lmac (7), not Ladd (4).
  PeConfig cfg = fused_cfg();
  for (int spacing : {5, 6, 7}) {
    ProcessingElement pe(cfg);
    const fp::u64 one = fp::make_one(fp::FpFormat::binary32()).bits;
    pe.step(ProcessingElement::MacIssue{one, one, 1});
    for (int t = 1; t < spacing; ++t) pe.step(std::nullopt);
    pe.step(ProcessingElement::MacIssue{one, one, 1});
    while (!pe.drained()) pe.step(std::nullopt);
    if (spacing < 7) {
      EXPECT_GT(pe.hazards(), 0) << spacing;
    } else {
      EXPECT_EQ(pe.hazards(), 0) << spacing;
      EXPECT_EQ(fp::to_double_exact(
                    fp::FpValue(pe.acc(1), fp::FpFormat::binary32())),
                2.0);
    }
  }
}

TEST(FusedPe, MatmulBitExactAgainstFusedReference) {
  const PeConfig cfg = fused_cfg();
  for (int n : {4, 8, 13}) {
    LinearArrayMatmul array(n, cfg);
    const Matrix a = random_matrix(n, cfg.fmt, 600 + n);
    const Matrix b = random_matrix(n, cfg.fmt, 700 + n);
    const MatmulRun run = array.run(a, b);
    ASSERT_EQ(run.c.bits,
              reference_gemm_fused(a, b, cfg.fmt, cfg.rounding).bits)
        << "n=" << n;
    EXPECT_EQ(run.hazards, 0);
  }
}

TEST(FusedPe, FusedResultsDifferFromSeparate) {
  // Single rounding per accumulate: generally not bit-identical to the
  // paper PE's two-rounding MAC on the same problem.
  const int n = 12;
  const PeConfig fused = fused_cfg();
  PeConfig separate = fused_cfg();
  separate.use_fused_mac = false;
  const Matrix a = random_matrix(n, fused.fmt, 31);
  const Matrix b = random_matrix(n, fused.fmt, 32);
  LinearArrayMatmul fa(n, fused);
  LinearArrayMatmul sa(n, separate);
  const MatmulRun fr = fa.run(a, b);
  const MatmulRun sr = sa.run(a, b);
  EXPECT_NE(fr.c.bits, sr.c.bits);
}

TEST(FusedPe, FusedIsAtLeastAsAccurate) {
  // Against a binary64 reference the fused accumulate cannot be worse on
  // average (it performs a superset of the exact arithmetic per step).
  const int n = 16;
  PeConfig fused = fused_cfg();
  std::mt19937_64 rng(55);
  std::vector<double> av(n * n), bv(n * n);
  for (double& x : av) x = (static_cast<double>(rng() % 20000) - 10000) / 97.0;
  for (double& x : bv) x = (static_cast<double>(rng() % 20000) - 10000) / 89.0;
  const Matrix a32 = matrix_from_doubles(av, n, fused.fmt);
  const Matrix b32 = matrix_from_doubles(bv, n, fused.fmt);
  const Matrix a64 = matrix_from_doubles(av, n, fp::FpFormat::binary64());
  const Matrix b64 = matrix_from_doubles(bv, n, fp::FpFormat::binary64());
  const Matrix ref64 = reference_gemm(a64, b64, fp::FpFormat::binary64(),
                                      fused.rounding);
  const Matrix cf =
      reference_gemm_fused(a32, b32, fused.fmt, fused.rounding);
  const Matrix cs = reference_gemm(a32, b32, fused.fmt, fused.rounding);
  const auto stf = analysis::compare_to_reference(cf.bits, fused.fmt,
                                                  ref64.bits);
  const auto sts = analysis::compare_to_reference(cs.bits, fused.fmt,
                                                  ref64.bits);
  EXPECT_LE(stf.mean_rel_error, sts.mean_rel_error * 1.05);
}

TEST(FusedPe, ResourceAndFrequencyProfile) {
  PeConfig fused = fused_cfg();
  PeConfig separate = fused_cfg();
  separate.use_fused_mac = false;
  const ProcessingElement pf(fused);
  const ProcessingElement ps(separate);
  EXPECT_EQ(pf.total_latency(), ps.total_latency());  // matched depth
  EXPECT_GT(pf.mac_resources().slices, 0);
  // Same BMULT count (the array is shared structure).
  EXPECT_EQ(pf.mac_resources().bmults, ps.mac_resources().bmults);
}

}  // namespace
}  // namespace flopsim::kernel
