// 2-D systolic baseline: exactness under batching, hazard boundary,
// efficiency relations vs. the linear array.
#include "kernel/systolic2d.hpp"

#include <gtest/gtest.h>

#include <random>

namespace flopsim::kernel {
namespace {

PeConfig fast_cfg() {
  PeConfig c;
  c.adder_stages = 4;
  c.mult_stages = 3;
  return c;
}

Matrix random_matrix(int n, fp::FpFormat fmt, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n) * n);
  for (double& x : v) {
    x = (static_cast<double>(rng() % 4000) - 2000.0) / 64.0;
  }
  return matrix_from_doubles(v, n, fmt);
}

TEST(Systolic2d, BatchedRunBitExactPerMember) {
  const PeConfig cfg = fast_cfg();
  const int n = 6;
  Systolic2dMatmul grid(n, /*batch=*/6, cfg);  // >= La+1 = 5
  std::vector<Matrix> a, b;
  for (int m = 0; m < 6; ++m) {
    a.push_back(random_matrix(n, cfg.fmt, 1000 + m));
    b.push_back(random_matrix(n, cfg.fmt, 2000 + m));
  }
  const Systolic2dRun run = grid.run(a, b);
  EXPECT_EQ(run.hazards, 0);
  for (int m = 0; m < 6; ++m) {
    ASSERT_EQ(run.c[static_cast<std::size_t>(m)].bits,
              reference_gemm(a[static_cast<std::size_t>(m)],
                             b[static_cast<std::size_t>(m)], cfg.fmt,
                             cfg.rounding)
                  .bits)
        << "batch member " << m;
  }
}

TEST(Systolic2d, CycleCountMatchesPrediction) {
  const PeConfig cfg = fast_cfg();
  Systolic2dMatmul grid(5, 6, cfg);
  std::vector<Matrix> a(6, random_matrix(5, cfg.fmt, 3));
  std::vector<Matrix> b(6, random_matrix(5, cfg.fmt, 4));
  const Systolic2dRun run = grid.run(a, b);
  EXPECT_EQ(run.cycles, grid.predicted_cycles());
  EXPECT_EQ(run.mac_issues, 6L * 5 * 5 * 5);  // batch * n^3 MACs
}

TEST(Systolic2d, UnderBatchingHazards) {
  // The textbook single-problem form (batch 1) is a RAW machine with
  // pipelined adders — exactly why the paper's group avoided it.
  const PeConfig cfg = fast_cfg();  // La = 4 -> min batch 5
  Systolic2dMatmul grid(6, 1, cfg);
  EXPECT_EQ(grid.min_batch(), 5);
  std::vector<Matrix> a{random_matrix(6, cfg.fmt, 5)};
  std::vector<Matrix> b{random_matrix(6, cfg.fmt, 6)};
  const Systolic2dRun run = grid.run(a, b);
  EXPECT_GT(run.hazards, 0);
}

TEST(Systolic2d, MinBatchIsExactBoundary) {
  const PeConfig cfg = fast_cfg();
  const int n = 4;
  for (int batch : {4, 5}) {  // La = 4: batch 4 races, 5 is safe
    Systolic2dMatmul grid(n, batch, cfg);
    std::vector<Matrix> a, b;
    for (int m = 0; m < batch; ++m) {
      a.push_back(random_matrix(n, cfg.fmt, 10 + m));
      b.push_back(random_matrix(n, cfg.fmt, 20 + m));
    }
    const Systolic2dRun run = grid.run(a, b);
    if (batch < grid.min_batch()) {
      EXPECT_GT(run.hazards, 0) << "batch " << batch;
    } else {
      EXPECT_EQ(run.hazards, 0) << "batch " << batch;
    }
  }
}

TEST(Systolic2d, GridUsesQuadraticResources) {
  const PeConfig cfg = fast_cfg();
  Systolic2dMatmul grid(6, 5, cfg);
  LinearArrayMatmul line(6, cfg);
  // n^2 vs n PEs.
  EXPECT_NEAR(static_cast<double>(grid.resources().slices),
              6.0 * ProcessingElement(cfg).resources().slices * 6, 64.0);
  (void)line;
}

TEST(Systolic2d, SameFlopsPerCyclePerPeAsLinearAtScale) {
  // Both architectures sustain ~2 FLOPs/cycle/PE once their latency-hiding
  // condition is met; the difference is WHERE the interval comes from.
  const PeConfig cfg = fast_cfg();
  const int n = 8;
  const int batch = 8;
  Systolic2dMatmul grid(n, batch, cfg);
  std::vector<Matrix> a(batch, random_matrix(n, cfg.fmt, 30));
  std::vector<Matrix> b(batch, random_matrix(n, cfg.fmt, 31));
  const Systolic2dRun g = grid.run(a, b);
  const double grid_eff =
      2.0 * g.mac_issues / (static_cast<double>(g.cycles) * n * n);

  LinearArrayMatmul line(n, cfg);
  const MatmulRun l = line.run(a[0], b[0]);
  const double line_eff =
      2.0 * l.mac_issues / (static_cast<double>(l.cycles) * n);
  EXPECT_GT(grid_eff, 1.2);
  EXPECT_GT(line_eff, 1.2);
  EXPECT_NEAR(grid_eff, line_eff, 0.5);
}

TEST(Systolic2d, Validation) {
  const PeConfig cfg = fast_cfg();
  EXPECT_THROW(Systolic2dMatmul(0, 1, cfg), std::invalid_argument);
  Systolic2dMatmul grid(4, 5, cfg);
  EXPECT_THROW(grid.run({}, {}), std::invalid_argument);
  std::vector<Matrix> wrong(5, Matrix::zero(3, cfg.fmt));
  EXPECT_THROW(grid.run(wrong, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace flopsim::kernel
