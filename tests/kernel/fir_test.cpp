// Transposed-form FIR kernel: exactness, throughput, skew-FIFO behaviour.
#include "kernel/fir.hpp"

#include <gtest/gtest.h>

#include <random>

#include "fp/ops.hpp"

namespace flopsim::kernel {
namespace {

PeConfig cfg_with(int add_stages, int mult_stages) {
  PeConfig c;
  c.adder_stages = add_stages;
  c.mult_stages = mult_stages;
  return c;
}

std::vector<fp::u64> from_doubles(const std::vector<double>& v,
                                  fp::FpFormat fmt) {
  fp::FpEnv env = fp::FpEnv::paper();
  std::vector<fp::u64> out;
  out.reserve(v.size());
  for (double d : v) out.push_back(fp::from_double(d, fmt, env).bits);
  return out;
}

std::vector<fp::u64> random_stream(int n, fp::FpFormat fmt,
                                   std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& d : v) d = (static_cast<double>(rng() % 512) - 256.0) / 32.0;
  return from_doubles(v, fmt);
}

struct FirCase {
  int taps;
  int add_stages;
  int mult_stages;
  const char* name;
};

class FirTest : public ::testing::TestWithParam<FirCase> {};

TEST_P(FirTest, BitExactAgainstReference) {
  const auto [taps, sa, sm, name] = GetParam();
  const PeConfig cfg = cfg_with(sa, sm);
  const auto h = random_stream(taps, cfg.fmt, 900 + taps);
  const auto x = random_stream(300, cfg.fmt, 901 + taps);
  FirFilter fir(h, cfg);
  const FirRun run = fir.run(x);
  ASSERT_EQ(run.y, reference_fir(h, x, cfg.fmt, cfg.rounding));
}

TEST_P(FirTest, OneSamplePerCycleThroughput) {
  const auto [taps, sa, sm, name] = GetParam();
  const PeConfig cfg = cfg_with(sa, sm);
  const auto h = random_stream(taps, cfg.fmt, 910);
  const int n = 500;
  const auto x = random_stream(n, cfg.fmt, 911);
  FirFilter fir(h, cfg);
  const FirRun run = fir.run(x);
  // cycles ~ n + steady-state latency (small constant slack for warmup).
  EXPECT_GE(run.cycles, n);
  EXPECT_LE(run.cycles, n + fir.latency() + taps + 4);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FirTest,
    ::testing::Values(FirCase{1, 4, 3, "t1"}, FirCase{2, 4, 3, "t2"},
                      FirCase{5, 4, 3, "t5"}, FirCase{5, 12, 7, "t5_deep"},
                      FirCase{16, 8, 5, "t16"}, FirCase{3, 1, 1, "t3_comb"}),
    [](const ::testing::TestParamInfo<FirCase>& info) {
      return info.param.name;
    });

TEST(Fir, ImpulseResponseIsTaps) {
  const PeConfig cfg = cfg_with(6, 4);
  const auto h = from_doubles({0.5, -1.25, 2.0, 3.5}, cfg.fmt);
  std::vector<fp::u64> x(16, 0);
  x[0] = fp::make_one(cfg.fmt).bits;
  FirFilter fir(h, cfg);
  const FirRun run = fir.run(x);
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_EQ(run.y[i], h[i]) << i;
  }
  for (std::size_t i = h.size(); i < x.size(); ++i) {
    EXPECT_EQ(fp::to_double_exact(fp::FpValue(run.y[i], cfg.fmt)), 0.0) << i;
  }
}

TEST(Fir, MovingAverage) {
  const PeConfig cfg = cfg_with(4, 3);
  const auto h = from_doubles({0.25, 0.25, 0.25, 0.25}, cfg.fmt);
  const auto x = from_doubles(std::vector<double>(32, 8.0), cfg.fmt);
  FirFilter fir(h, cfg);
  const FirRun run = fir.run(x);
  // After warmup the moving average of a constant-8 stream is 8.
  for (std::size_t i = 4; i < run.y.size(); ++i) {
    EXPECT_EQ(fp::to_double_exact(fp::FpValue(run.y[i], cfg.fmt)), 8.0) << i;
  }
}

TEST(Fir, DeepAddersNeedSkewFifos) {
  // The skew grows with adder depth and tap count: the kernel-level area
  // cost of deep pipelining.
  const auto h32 = random_stream(12, fp::FpFormat::binary32(), 33);
  const auto x = random_stream(200, fp::FpFormat::binary32(), 34);
  FirFilter shallow(h32, cfg_with(2, 2));
  FirFilter deep(h32, cfg_with(14, 7));
  const FirRun rs = shallow.run(x);
  const FirRun rd = deep.run(x);
  EXPECT_GT(rd.max_skew_fifo, rs.max_skew_fifo);
  EXPECT_GT(deep.resources().ffs, shallow.resources().ffs);
  EXPECT_GT(deep.freq_mhz(), shallow.freq_mhz());
}

TEST(Fir, LatencyFormulaTracksMeasured) {
  const PeConfig cfg = cfg_with(8, 5);
  const auto h = random_stream(6, cfg.fmt, 44);
  const int n = 400;
  const auto x = random_stream(n, cfg.fmt, 45);
  FirFilter fir(h, cfg);
  const FirRun run = fir.run(x);
  // Last output at ~ (n-1) + latency.
  EXPECT_NEAR(static_cast<double>(run.cycles - n), fir.latency(), 6.0);
}

TEST(Fir, NoTapsThrows) {
  EXPECT_THROW(FirFilter({}, cfg_with(4, 3)), std::invalid_argument);
}

}  // namespace
}  // namespace flopsim::kernel
