// Kernel-level metrics: the paper's headline numbers and Figure 4-6 shapes.
#include "kernel/metrics.hpp"

#include <gtest/gtest.h>

namespace flopsim::kernel {
namespace {

const device::Device kDev = device::xc2vp125();

TEST(Metrics, ReferenceConfigsHaveThePaperPLs) {
  EXPECT_EQ(KernelDesign(pe_min_pipelined()).pl(), 10);
  EXPECT_EQ(KernelDesign(pe_moderate_pipelined()).pl(), 19);
  EXPECT_EQ(KernelDesign(pe_max_pipelined()).pl(), 25);
}

TEST(Metrics, SinglePrecisionGflopsInPaperBand) {
  // Paper: "about 15GFLOPS" / 19.6 GFLOPS for 32-bit on the XC2VP125.
  const KernelDesign d(pe_moderate_pipelined());
  EXPECT_GT(d.device_gflops(kDev), 15.0);
  EXPECT_LT(d.device_gflops(kDev), 26.0);
}

TEST(Metrics, DoublePrecisionGflopsInPaperBand) {
  // Paper: ~8 GFLOPS double precision.
  const KernelDesign d(pe_double_optimal());
  EXPECT_GT(d.device_gflops(kDev), 6.0);
  EXPECT_LT(d.device_gflops(kDev), 12.0);
}

TEST(Metrics, SpeedupOverProcessorsMatchesPaper) {
  const KernelDesign d(pe_moderate_pipelined());
  const double fpga = d.device_gflops(kDev);
  const auto p4 = power::pentium4_254();
  const auto g4 = power::g4_1000();
  // Paper: 6X over the 2.54 GHz P4, 3X over the 1 GHz G4.
  EXPECT_GT(fpga / p4.gflops_single, 4.5);
  EXPECT_LT(fpga / p4.gflops_single, 8.0);
  EXPECT_GT(fpga / g4.gflops_single, 2.2);
  EXPECT_LT(fpga / g4.gflops_single, 4.5);
}

TEST(Metrics, GflopsPerWattAdvantage) {
  // Paper: "upto 6x improvement (for single precision) in terms of the
  // GFLOPS/W metric over that of general purpose processors".
  const KernelDesign d(pe_moderate_pipelined());
  const double fpga = d.gflops_per_watt(kDev);
  const double best_proc = power::g4_1000().gflops_per_watt_single();
  EXPECT_GT(fpga / best_proc, 3.0);
  EXPECT_LT(fpga / best_proc, 8.0);
  // Versus the P4 the gap is enormous.
  EXPECT_GT(fpga / power::pentium4_254().gflops_per_watt_single(), 10.0);
}

TEST(Metrics, DevicePowerPlausible) {
  for (const PeConfig& cfg : {pe_min_pipelined(), pe_moderate_pipelined(),
                              pe_max_pipelined(), pe_double_optimal()}) {
    const KernelDesign d(cfg);
    EXPECT_GT(d.device_power_w(kDev), 3.0);
    EXPECT_LT(d.device_power_w(kDev), 30.0);
  }
}

TEST(Metrics, DeeperUnitsFewerPEs) {
  // Deep pipelining costs area, so fewer PEs fit — the paper's core
  // tradeoff ("the device will accommodate fewer PEs if deeply pipelined
  // units occupying a large area are used").
  EXPECT_GT(KernelDesign(pe_min_pipelined()).max_pes(kDev),
            KernelDesign(pe_moderate_pipelined()).max_pes(kDev));
  EXPECT_GT(KernelDesign(pe_moderate_pipelined()).max_pes(kDev),
            KernelDesign(pe_max_pipelined()).max_pes(kDev));
}

TEST(Metrics, DeeperUnitsHigherClock) {
  EXPECT_LT(KernelDesign(pe_min_pipelined()).freq_mhz(),
            KernelDesign(pe_moderate_pipelined()).freq_mhz());
  EXPECT_LE(KernelDesign(pe_moderate_pipelined()).freq_mhz(),
            KernelDesign(pe_max_pipelined()).freq_mhz());
}

TEST(Metrics, LatencyDropsWithDeeperPipelinesAtLargeN) {
  // Figure 5(c): for n past the padding regime, the deep design's higher
  // clock wins on wall-clock latency.
  const int n = 64;
  EXPECT_LT(KernelDesign(pe_max_pipelined()).latency_us(n),
            KernelDesign(pe_min_pipelined()).latency_us(n));
}

TEST(Metrics, SmallProblemsWasteEnergyOnDeepPipelines) {
  // Figure 4: at n = 10 the pl = 25 design pads 60% of its work.
  const KernelDesign dmin(pe_min_pipelined());
  const KernelDesign dmax(pe_max_pipelined());
  EXPECT_DOUBLE_EQ(dmin.padding_waste_fraction(10), 0.0);
  EXPECT_NEAR(dmax.padding_waste_fraction(10), 0.6, 1e-12);
  EXPECT_GT(dmax.pe_energy(10).total_nj, 1.8 * dmin.pe_energy(10).total_nj);
}

TEST(Metrics, LargeProblemsCloseTheEnergyGap) {
  // Figure 5(a): the deep designs' energy disadvantage shrinks as n grows;
  // at n = 30 the moderate design is already the cheapest.
  const KernelDesign dmin(pe_min_pipelined());
  const KernelDesign dmod(pe_moderate_pipelined());
  const KernelDesign dmax(pe_max_pipelined());
  const double ratio_small =
      dmax.pe_energy(10).total_nj / dmin.pe_energy(10).total_nj;
  const double ratio_large =
      dmax.pe_energy(60).total_nj / dmin.pe_energy(60).total_nj;
  EXPECT_GT(ratio_small, 2.0);
  EXPECT_LT(ratio_large, 1.2);
  EXPECT_LT(dmod.pe_energy(30).total_nj, dmin.pe_energy(30).total_nj);
}

TEST(Metrics, EnergyComponentsPresent) {
  const power::EnergyReport rep =
      KernelDesign(pe_moderate_pipelined()).pe_energy(16);
  for (const char* name : {"MAC", "Storage", "IO", "Misc"}) {
    EXPECT_GT(rep.component_nj(name), 0.0) << name;
  }
  // MAC dominates a PE's energy (the paper: FP units can be
  // "resource/latency/energy dominant").
  EXPECT_GT(rep.component_nj("MAC"), rep.component_nj("Storage"));
  EXPECT_GT(rep.component_nj("MAC"), rep.component_nj("Misc"));
}

TEST(Metrics, BlockedEnergyRisesForSmallBlocks) {
  // Figure 6(a): b << PL wastes energy on padding.
  const KernelDesign d(pe_max_pipelined());  // PL = 25
  const double e2 = d.pe_energy_blocked(16, 2).total_nj;
  const double e4 = d.pe_energy_blocked(16, 4).total_nj;
  const double e16 = d.pe_energy_blocked(16, 16).total_nj;
  EXPECT_GT(e2, e4);
  EXPECT_GT(e4, e16);
}

TEST(Metrics, EnergyMonotoneInProblemSize) {
  const KernelDesign d(pe_moderate_pipelined());
  double prev = 0.0;
  for (int n : {4, 8, 16, 32, 64}) {
    const double e = d.pe_energy(n).total_nj;
    EXPECT_GT(e, prev) << n;
    prev = e;
  }
}

TEST(Metrics, LatencyCyclesMatchesSchedule) {
  const KernelDesign d(pe_min_pipelined());
  EXPECT_EQ(d.latency_cycles(32), make_schedule(32, d.pl()).total_cycles());
  EXPECT_NEAR(d.latency_us(32),
              d.latency_cycles(32) / d.freq_mhz(), 1e-12);
}

}  // namespace
}  // namespace flopsim::kernel
