// Linear-array matmul: bit-exactness against the softfloat reference,
// cycle counts, padding, and the hazard window.
#include "kernel/matmul.hpp"

#include <gtest/gtest.h>

#include <random>

#include "fp/ops.hpp"
#include "kernel/schedule.hpp"

namespace flopsim::kernel {
namespace {

PeConfig fast_cfg(fp::FpFormat fmt = fp::FpFormat::binary32()) {
  PeConfig c;
  c.fmt = fmt;
  c.adder_stages = 4;
  c.mult_stages = 3;
  return c;
}

Matrix random_matrix(int n, fp::FpFormat fmt, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n) * n);
  for (double& x : v) {
    x = (static_cast<double>(rng() % 4000) - 2000.0) / 64.0;
  }
  return matrix_from_doubles(v, n, fmt);
}

TEST(Schedule, PaddingRules) {
  const Schedule s1 = make_schedule(30, 19);
  EXPECT_EQ(s1.n_eff, 30);
  EXPECT_EQ(s1.padded_issues_per_pe(), 0);
  EXPECT_DOUBLE_EQ(s1.padding_fraction(), 0.0);

  const Schedule s2 = make_schedule(10, 25);
  EXPECT_EQ(s2.n_eff, 25);
  EXPECT_EQ(s2.issues_per_pe(), 250);
  EXPECT_EQ(s2.padded_issues_per_pe(), 150);
  EXPECT_DOUBLE_EQ(s2.padding_fraction(), 0.6);
}

TEST(Schedule, TotalCyclesFormula) {
  const Schedule s = make_schedule(8, 7);
  // n*n_eff + skew + drain: 8*8 + 7 + 7 + 1.
  EXPECT_EQ(s.total_cycles(), 64 + 7 + 8);
}

TEST(Schedule, Validation) {
  EXPECT_THROW(make_schedule(0, 5), std::invalid_argument);
  EXPECT_THROW(make_schedule(4, -1), std::invalid_argument);
}

struct MatmulCase {
  int n;
  fp::FpFormat fmt;
  const char* name;
};

class MatmulExactnessTest : public ::testing::TestWithParam<MatmulCase> {};

TEST_P(MatmulExactnessTest, BitExactAgainstReference) {
  const auto [n, fmt, name] = GetParam();
  const PeConfig cfg = fast_cfg(fmt);
  LinearArrayMatmul array(n, cfg);
  const Matrix a = random_matrix(n, fmt, 100 + n);
  const Matrix b = random_matrix(n, fmt, 200 + n);
  const MatmulRun run = array.run(a, b);
  const Matrix ref = reference_gemm(a, b, fmt, cfg.rounding);
  ASSERT_EQ(run.c.bits, ref.bits);
  EXPECT_EQ(run.hazards, 0);
}

TEST_P(MatmulExactnessTest, CycleCountMatchesSchedule) {
  const auto [n, fmt, name] = GetParam();
  const PeConfig cfg = fast_cfg(fmt);
  LinearArrayMatmul array(n, cfg);
  const Matrix a = random_matrix(n, fmt, 1);
  const Matrix b = random_matrix(n, fmt, 2);
  const MatmulRun run = array.run(a, b);
  EXPECT_EQ(run.cycles, run.schedule.total_cycles());
  EXPECT_EQ(run.mac_issues, static_cast<long>(n) * run.schedule.issues_per_pe());
  EXPECT_EQ(run.padded_issues,
            static_cast<long>(n) * run.schedule.padded_issues_per_pe());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatmulExactnessTest,
    ::testing::Values(MatmulCase{1, fp::FpFormat::binary32(), "n1_b32"},
                      MatmulCase{2, fp::FpFormat::binary32(), "n2_b32"},
                      MatmulCase{3, fp::FpFormat::binary32(), "n3_b32"},
                      MatmulCase{5, fp::FpFormat::binary32(), "n5_pad_b32"},
                      MatmulCase{8, fp::FpFormat::binary32(), "n8_b32"},
                      MatmulCase{13, fp::FpFormat::binary32(), "n13_b32"},
                      MatmulCase{16, fp::FpFormat::binary32(), "n16_b32"},
                      MatmulCase{8, fp::FpFormat::binary64(), "n8_b64"},
                      MatmulCase{12, fp::FpFormat::binary48(), "n12_b48"}),
    [](const ::testing::TestParamInfo<MatmulCase>& info) {
      return info.param.name;
    });

TEST(Matmul, SmallProblemIsPaddedAndStillExact) {
  // n = 3 < PL = 7: the schedule zero-pads and correctness must survive.
  const PeConfig cfg = fast_cfg();
  LinearArrayMatmul array(3, cfg);
  const Matrix a = random_matrix(3, cfg.fmt, 7);
  const Matrix b = random_matrix(3, cfg.fmt, 8);
  const MatmulRun run = array.run(a, b);
  EXPECT_GT(run.padded_issues, 0);
  EXPECT_EQ(run.c.bits, reference_gemm(a, b, cfg.fmt, cfg.rounding).bits);
}

TEST(Matmul, AccumulatorPreloadChains) {
  const PeConfig cfg = fast_cfg();
  const int n = 6;
  LinearArrayMatmul array(n, cfg);
  const Matrix a = random_matrix(n, cfg.fmt, 9);
  const Matrix b = random_matrix(n, cfg.fmt, 10);
  const Matrix c0 = random_matrix(n, cfg.fmt, 11);
  const MatmulRun run = array.run(a, b, &c0);
  const Matrix ref = reference_gemm(a, b, cfg.fmt, cfg.rounding, &c0);
  EXPECT_EQ(run.c.bits, ref.bits);
}

TEST(Matmul, HazardsAppearWhenPaddingDisabled) {
  // Forcing n_eff = n below the adder latency must produce RAW hazards —
  // the paper's motivation for zero padding.
  const PeConfig cfg = fast_cfg();  // La = 4
  const int n = 3;                  // n <= La: unsafe
  LinearArrayMatmul array(n, cfg);
  array.set_pad_threshold(0);
  const Matrix a = random_matrix(n, cfg.fmt, 21);
  const Matrix b = random_matrix(n, cfg.fmt, 22);
  const MatmulRun run = array.run(a, b);
  EXPECT_GT(run.hazards, 0);
}

TEST(Matmul, NoHazardAboveAdderLatency) {
  const PeConfig cfg = fast_cfg();  // La = 4
  const int n = 5;                  // n > La: safe even unpadded
  LinearArrayMatmul array(n, cfg);
  array.set_pad_threshold(0);
  const Matrix a = random_matrix(n, cfg.fmt, 23);
  const Matrix b = random_matrix(n, cfg.fmt, 24);
  const MatmulRun run = array.run(a, b);
  EXPECT_EQ(run.hazards, 0);
  EXPECT_EQ(run.c.bits, reference_gemm(a, b, cfg.fmt, cfg.rounding).bits);
}

TEST(Matmul, IdentityTimesMatrix) {
  const PeConfig cfg = fast_cfg();
  const int n = 8;
  Matrix eye = Matrix::zero(n, cfg.fmt);
  for (int i = 0; i < n; ++i) eye.at(i, i) = fp::make_one(cfg.fmt).bits;
  const Matrix b = random_matrix(n, cfg.fmt, 31);
  LinearArrayMatmul array(n, cfg);
  const MatmulRun run = array.run(eye, b);
  EXPECT_EQ(run.c.bits, b.bits);
}

TEST(Matmul, FlagsSurfaceOverflow) {
  const PeConfig cfg = fast_cfg();
  const int n = 8;
  Matrix a = Matrix::zero(n, cfg.fmt);
  Matrix b = Matrix::zero(n, cfg.fmt);
  const fp::u64 huge = fp::make_max_finite(cfg.fmt).bits;
  for (int i = 0; i < n; ++i) {
    a.at(0, i) = huge;
    b.at(i, 0) = huge;
  }
  LinearArrayMatmul array(n, cfg);
  const MatmulRun run = array.run(a, b);
  EXPECT_TRUE((run.flags & fp::kFlagOverflow) != 0);
}

TEST(Matmul, SizeMismatchThrows) {
  const PeConfig cfg = fast_cfg();
  LinearArrayMatmul array(4, cfg);
  const Matrix a = random_matrix(4, cfg.fmt, 1);
  const Matrix b = random_matrix(5, cfg.fmt, 2);
  EXPECT_THROW(array.run(a, b), std::invalid_argument);
}

TEST(Matmul, MatrixFromDoublesValidates) {
  EXPECT_THROW(matrix_from_doubles({1.0, 2.0, 3.0}, 2, fp::FpFormat::binary32()),
               std::invalid_argument);
}

}  // namespace
}  // namespace flopsim::kernel
