// StreamingReducer: full-throughput hazard-free accumulation + lane tree.
#include "kernel/reducer.hpp"

#include <gtest/gtest.h>

#include <random>

#include "fp/ops.hpp"

namespace flopsim::kernel {
namespace {

units::UnitConfig cfg_with_stages(int s) {
  units::UnitConfig c;
  c.stages = s;
  return c;
}

std::vector<fp::u64> random_values(fp::FpFormat fmt, int n,
                                   std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<fp::u64> v(static_cast<std::size_t>(n));
  fp::FpEnv env = fp::FpEnv::paper();
  for (auto& x : v) {
    x = fp::from_double((static_cast<double>(rng() % 2000) - 1000.0) / 64.0,
                        fmt, env)
            .bits;
  }
  return v;
}

class ReducerDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(ReducerDepthTest, MatchesReferenceBitExactly) {
  const int stages = GetParam();
  const fp::FpFormat fmt = fp::FpFormat::binary32();
  const units::UnitConfig cfg = cfg_with_stages(stages);
  StreamingReducer red(fmt, cfg);
  const auto values = random_values(fmt, 1000, 77 + stages);
  for (fp::u64 v : values) red.push(v);
  const fp::u64 total = red.finish();
  EXPECT_EQ(total, StreamingReducer::reference(values, fmt, cfg));
}

TEST_P(ReducerDepthTest, LanesMatchAdderLatency) {
  const int stages = GetParam();
  StreamingReducer red(fp::FpFormat::binary32(), cfg_with_stages(stages));
  EXPECT_EQ(red.lanes(), red.adder().latency() + 1);
}

TEST_P(ReducerDepthTest, FullThroughputPlusLogarithmicTail) {
  const int stages = GetParam();
  const fp::FpFormat fmt = fp::FpFormat::binary32();
  StreamingReducer red(fmt, cfg_with_stages(stages));
  const int n = 2000;
  for (fp::u64 v : random_values(fmt, n, 5)) red.push(v);
  (void)red.finish();
  // One push per cycle plus a drain+tree tail bounded by ~K levels.
  const long tail = red.cycles() - n;
  EXPECT_GT(tail, 0);
  EXPECT_LT(tail, 20L * red.lanes());
}

INSTANTIATE_TEST_SUITE_P(Depths, ReducerDepthTest,
                         ::testing::Values(1, 2, 4, 8, 12, 16));

TEST(Reducer, EmptySumIsZero) {
  StreamingReducer red(fp::FpFormat::binary64(), cfg_with_stages(6));
  EXPECT_EQ(red.finish(), 0u);
}

TEST(Reducer, SingleValue) {
  const fp::FpFormat fmt = fp::FpFormat::binary64();
  StreamingReducer red(fmt, cfg_with_stages(6));
  fp::FpEnv env = fp::FpEnv::paper();
  const fp::u64 v = fp::from_double(3.25, fmt, env).bits;
  red.push(v);
  EXPECT_EQ(fp::to_double_exact(fp::FpValue(red.finish(), fmt)), 3.25);
}

TEST(Reducer, ReusableAfterFinish) {
  const fp::FpFormat fmt = fp::FpFormat::binary32();
  const units::UnitConfig cfg = cfg_with_stages(8);
  StreamingReducer red(fmt, cfg);
  const auto first = random_values(fmt, 100, 11);
  for (fp::u64 v : first) red.push(v);
  (void)red.finish();
  const auto second = random_values(fmt, 137, 12);
  for (fp::u64 v : second) red.push(v);
  EXPECT_EQ(red.finish(), StreamingReducer::reference(second, fmt, cfg));
}

TEST(Reducer, ExactIntegerSum) {
  // Integer-valued inputs below the mantissa width sum exactly regardless
  // of lane/tree association.
  const fp::FpFormat fmt = fp::FpFormat::binary32();
  StreamingReducer red(fmt, cfg_with_stages(10));
  fp::FpEnv env = fp::FpEnv::paper();
  long expect = 0;
  for (int i = 1; i <= 500; ++i) {
    red.push(fp::from_double(i, fmt, env).bits);
    expect += i;
  }
  EXPECT_EQ(fp::to_double_exact(fp::FpValue(red.finish(), fmt)),
            static_cast<double>(expect));
}

TEST(Reducer, FlagsAccumulate) {
  const fp::FpFormat fmt = fp::FpFormat::binary32();
  StreamingReducer red(fmt, cfg_with_stages(4));
  const fp::u64 maxf = fp::make_max_finite(fmt).bits;
  // Same lane gets max+max eventually -> overflow.
  for (int i = 0; i < 2 * red.lanes(); ++i) red.push(maxf);
  (void)red.finish();
  EXPECT_TRUE((red.flags() & fp::kFlagOverflow) != 0);
}

TEST(Reducer, Binary48Works) {
  const fp::FpFormat fmt = fp::FpFormat::binary48();
  const units::UnitConfig cfg = cfg_with_stages(9);
  StreamingReducer red(fmt, cfg);
  const auto values = random_values(fmt, 777, 13);
  for (fp::u64 v : values) red.push(v);
  EXPECT_EQ(red.finish(), StreamingReducer::reference(values, fmt, cfg));
}

}  // namespace
}  // namespace flopsim::kernel
