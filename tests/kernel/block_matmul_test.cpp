// Blocked execution: equivalence with unblocked arithmetic, analytic cost
// model, block-size padding effects (the Figure 6 mechanism).
#include "kernel/block_matmul.hpp"

#include <gtest/gtest.h>

#include <random>

namespace flopsim::kernel {
namespace {

PeConfig fast_cfg() {
  PeConfig c;
  c.adder_stages = 4;
  c.mult_stages = 3;  // PL = 7
  return c;
}

Matrix random_matrix(int n, fp::FpFormat fmt, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n) * n);
  for (double& x : v) {
    x = (static_cast<double>(rng() % 4000) - 2000.0) / 64.0;
  }
  return matrix_from_doubles(v, n, fmt);
}

class BlockSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(BlockSizeTest, BitExactAgainstUnblockedReference) {
  const int b = GetParam();
  const int n = 16;
  const PeConfig cfg = fast_cfg();
  const Matrix a = random_matrix(n, cfg.fmt, 41);
  const Matrix bm = random_matrix(n, cfg.fmt, 42);
  const BlockMatmulRun run = block_matmul(a, bm, b, cfg);
  const Matrix ref = reference_gemm(a, bm, cfg.fmt, cfg.rounding);
  ASSERT_EQ(run.c.bits, ref.bits) << "b=" << b;
  EXPECT_EQ(run.hazards, 0);
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockSizeTest, ::testing::Values(1, 2, 4, 8, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "b" + std::to_string(info.param);
                         });

TEST(BlockMatmul, StatsFormulas) {
  const BlockMatmulStats st = block_matmul_stats(16, 4, 7);
  EXPECT_EQ(st.block_products, 64);
  EXPECT_EQ(st.block_schedule.n_eff, 7);  // b=4 < PL=7: padded
  EXPECT_EQ(st.cycles, 64 * st.block_schedule.total_cycles());
  EXPECT_GT(st.padded_issues, 0);
  EXPECT_NEAR(st.padding_fraction, 3.0 / 7.0, 1e-12);
}

TEST(BlockMatmul, LargeBlocksAvoidPadding) {
  const BlockMatmulStats st = block_matmul_stats(16, 8, 7);
  EXPECT_EQ(st.block_schedule.n_eff, 8);
  EXPECT_EQ(st.padded_issues, 0);
  EXPECT_DOUBLE_EQ(st.padding_fraction, 0.0);
}

TEST(BlockMatmul, SmallerBlocksWasteMoreWork) {
  // Figure 6's mechanism: total MAC issues rise as b shrinks below PL.
  long prev = 0;
  for (int b : {16, 8, 4, 2, 1}) {
    const long issues = block_matmul_stats(16, b, 7).mac_issues;
    EXPECT_GE(issues, prev) << "b=" << b;
    prev = issues;
  }
  EXPECT_GT(block_matmul_stats(16, 1, 7).mac_issues,
            block_matmul_stats(16, 16, 7).mac_issues);
}

TEST(BlockMatmul, InvalidBlockSizeThrows) {
  EXPECT_THROW(block_matmul_stats(16, 3, 7), std::invalid_argument);
  EXPECT_THROW(block_matmul_stats(16, 0, 7), std::invalid_argument);
  EXPECT_THROW(block_matmul_stats(16, 32, 7), std::invalid_argument);
}

TEST(BlockMatmul, RunSizeMismatchThrows) {
  const PeConfig cfg = fast_cfg();
  const Matrix a = random_matrix(8, cfg.fmt, 1);
  const Matrix b = random_matrix(4, cfg.fmt, 2);
  EXPECT_THROW(block_matmul(a, b, 4, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace flopsim::kernel
