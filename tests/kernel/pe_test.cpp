// Processing element: MAC semantics, latency, hazards, resources.
#include "kernel/pe.hpp"

#include <gtest/gtest.h>

#include <random>

#include "fp/ops.hpp"

namespace flopsim::kernel {
namespace {

fp::u64 enc(double x, fp::FpFormat fmt = fp::FpFormat::binary32()) {
  fp::FpEnv env = fp::FpEnv::paper();
  return fp::from_double(x, fmt, env).bits;
}

double dec(fp::u64 bits, fp::FpFormat fmt = fp::FpFormat::binary32()) {
  return fp::to_double_exact(fp::FpValue(bits, fmt));
}

PeConfig small_cfg() {
  PeConfig c;
  c.adder_stages = 4;
  c.mult_stages = 3;
  c.storage_rows = 64;
  return c;
}

TEST(Pe, SingleMacWritesBackAfterTotalLatency) {
  ProcessingElement pe(small_cfg());
  ASSERT_EQ(pe.total_latency(), 7);
  pe.step(ProcessingElement::MacIssue{enc(3.0), enc(4.0), 5});
  for (int t = 1; t < pe.total_latency(); ++t) {
    EXPECT_EQ(pe.acc(5), 0u) << "cycle " << t;
    EXPECT_FALSE(pe.drained());
    pe.step(std::nullopt);
  }
  EXPECT_TRUE(pe.drained());
  EXPECT_EQ(dec(pe.acc(5)), 12.0);
}

TEST(Pe, AccumulatesAcrossIssues) {
  ProcessingElement pe(small_cfg());
  // Two MACs to the same row, spaced beyond the hazard window.
  pe.step(ProcessingElement::MacIssue{enc(2.0), enc(3.0), 0});
  for (int t = 0; t < pe.total_latency(); ++t) pe.step(std::nullopt);
  pe.step(ProcessingElement::MacIssue{enc(5.0), enc(1.0), 0});
  for (int t = 0; t < pe.total_latency(); ++t) pe.step(std::nullopt);
  EXPECT_EQ(dec(pe.acc(0)), 11.0);
  EXPECT_EQ(pe.hazards(), 0);
  EXPECT_EQ(pe.mac_issues(), 2);
}

TEST(Pe, FullThroughputDistinctRows) {
  // One MAC per cycle to distinct rows: no hazards, all correct.
  ProcessingElement pe(small_cfg());
  for (int i = 0; i < 32; ++i) {
    pe.step(ProcessingElement::MacIssue{enc(i), enc(2.0), i});
  }
  for (int t = 0; t < pe.total_latency(); ++t) pe.step(std::nullopt);
  EXPECT_TRUE(pe.drained());
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(dec(pe.acc(i)), 2.0 * i) << i;
  }
  EXPECT_EQ(pe.hazards(), 0);
}

TEST(Pe, RawHazardDetectedInsideAdderWindow) {
  // Re-issuing the same row within the adder latency reads stale data.
  PeConfig cfg = small_cfg();
  ProcessingElement pe(cfg);
  pe.step(ProcessingElement::MacIssue{enc(1.0), enc(1.0), 7});
  pe.step(ProcessingElement::MacIssue{enc(1.0), enc(1.0), 7});
  for (int t = 0; t < 2 * pe.total_latency(); ++t) pe.step(std::nullopt);
  EXPECT_GT(pe.hazards(), 0);
  // Stale read: both adds saw acc=0, so the final value is 1, not 2.
  EXPECT_EQ(dec(pe.acc(7)), 1.0);
}

TEST(Pe, HazardWindowBoundaryIsAdderLatency) {
  // The accumulator read happens before the same-cycle writeback, so a
  // revisit spaced exactly La cycles still races; La + 1 is safe.
  PeConfig cfg = small_cfg();
  const int la = cfg.adder_stages;
  for (int spacing : {la, la + 1}) {
    ProcessingElement pe(cfg);
    pe.step(ProcessingElement::MacIssue{enc(1.0), enc(1.0), 3});
    for (int t = 1; t < spacing; ++t) pe.step(std::nullopt);
    pe.step(ProcessingElement::MacIssue{enc(1.0), enc(1.0), 3});
    for (int t = 0; t < 2 * pe.total_latency(); ++t) pe.step(std::nullopt);
    if (spacing == la) {
      EXPECT_GT(pe.hazards(), 0) << "spacing " << spacing;
    } else {
      EXPECT_EQ(pe.hazards(), 0) << "spacing " << spacing;
      EXPECT_EQ(dec(pe.acc(3)), 2.0);
    }
  }
}

TEST(Pe, MatchesSoftfloatMacBitExactly) {
  ProcessingElement pe(small_cfg());
  const fp::FpFormat fmt = fp::FpFormat::binary32();
  fp::FpEnv env = fp::FpEnv::paper();
  fp::FpValue acc = fp::make_zero(fmt);
  std::mt19937_64 rng(11);
  for (int i = 0; i < 50; ++i) {
    const fp::u64 a = rng() & fmt.bits_mask() & ~fmt.exp_mask();  // finite-ish
    const fp::u64 b = rng() & fmt.bits_mask() & ~fmt.exp_mask();
    pe.step(ProcessingElement::MacIssue{a, b, 0});
    while (!pe.drained()) pe.step(std::nullopt);
    acc = fp::add(acc,
                  fp::mul(fp::FpValue(a, fmt), fp::FpValue(b, fmt), env), env);
    ASSERT_EQ(pe.acc(0), acc.bits) << i;
  }
}

TEST(Pe, ClearResetsEverything) {
  ProcessingElement pe(small_cfg());
  pe.step(ProcessingElement::MacIssue{enc(1.0), enc(1.0), 0});
  pe.clear();
  EXPECT_EQ(pe.acc(0), 0u);
  EXPECT_TRUE(pe.drained());
  EXPECT_EQ(pe.mac_issues(), 0);
  for (int t = 0; t < 10; ++t) pe.step(std::nullopt);
  EXPECT_EQ(pe.acc(0), 0u);  // no ghost writeback
}

TEST(Pe, SetAccPreloadsForBlockChaining) {
  ProcessingElement pe(small_cfg());
  pe.set_acc(2, enc(10.0));
  pe.step(ProcessingElement::MacIssue{enc(2.0), enc(3.0), 2});
  while (!pe.drained()) pe.step(std::nullopt);
  EXPECT_EQ(dec(pe.acc(2)), 16.0);
}

TEST(Pe, ResourcesDecompose) {
  ProcessingElement pe(small_cfg());
  const auto total = pe.resources();
  const auto parts = pe.mac_resources() + pe.storage_resources() +
                     pe.control_resources();
  EXPECT_EQ(total, parts);
  EXPECT_EQ(pe.storage_resources().brams, 1);
  EXPECT_GT(pe.mac_resources().slices, pe.control_resources().slices);
  EXPECT_GT(pe.mac_resources().bmults, 0);
}

TEST(Pe, ControlGrowsWithLatency) {
  // The control shift registers track PL — the paper's Misc overhead.
  PeConfig shallow = small_cfg();
  PeConfig deep = small_cfg();
  deep.adder_stages = 16;
  deep.mult_stages = 9;
  EXPECT_GT(ProcessingElement(deep).control_resources().ffs,
            ProcessingElement(shallow).control_resources().ffs);
}

TEST(Pe, FrequencyIsSlowerUnit) {
  ProcessingElement pe(small_cfg());
  EXPECT_DOUBLE_EQ(
      pe.freq_mhz(),
      std::min(pe.adder().freq_mhz(), pe.multiplier().freq_mhz()));
}

TEST(Pe, InvalidRowThrows) {
  ProcessingElement pe(small_cfg());
  EXPECT_THROW(pe.step(ProcessingElement::MacIssue{0, 0, 64}),
               std::out_of_range);
  EXPECT_THROW(pe.step(ProcessingElement::MacIssue{0, 0, -1}),
               std::out_of_range);
}

TEST(Pe, InvalidStorageThrows) {
  PeConfig cfg = small_cfg();
  cfg.storage_rows = 0;
  EXPECT_THROW(ProcessingElement{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace flopsim::kernel
