// Matrix-vector kernel: bit-exactness, padding, strip decomposition.
#include "kernel/mvm.hpp"

#include <gtest/gtest.h>

#include <random>

#include "fp/ops.hpp"

namespace flopsim::kernel {
namespace {

PeConfig fast_cfg() {
  PeConfig c;
  c.adder_stages = 4;
  c.mult_stages = 3;  // PL = 7
  return c;
}

Matrix random_matrix(int n, fp::FpFormat fmt, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n) * n);
  for (double& x : v) {
    x = (static_cast<double>(rng() % 4000) - 2000.0) / 64.0;
  }
  return matrix_from_doubles(v, n, fmt);
}

std::vector<fp::u64> random_vector(int n, fp::FpFormat fmt,
                                   std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<fp::u64> v(static_cast<std::size_t>(n));
  fp::FpEnv env = fp::FpEnv::paper();
  for (auto& x : v) {
    x = fp::from_double((static_cast<double>(rng() % 400) - 200.0) / 16.0,
                        fmt, env)
            .bits;
  }
  return v;
}

struct MvmCase {
  int n;
  int p;
  const char* name;
};

class MvmTest : public ::testing::TestWithParam<MvmCase> {};

TEST_P(MvmTest, BitExactAgainstReference) {
  const auto [n, p, name] = GetParam();
  const PeConfig cfg = fast_cfg();
  LinearArrayMvm array(n, p, cfg);
  const Matrix a = random_matrix(n, cfg.fmt, 300 + n);
  const auto x = random_vector(n, cfg.fmt, 400 + p);
  const MvmRun run = array.run(a, x);
  EXPECT_EQ(run.y, reference_mvm(a, x, cfg.fmt, cfg.rounding));
  EXPECT_EQ(run.hazards, 0);
}

TEST_P(MvmTest, CycleCountFormula) {
  const auto [n, p, name] = GetParam();
  const PeConfig cfg = fast_cfg();
  LinearArrayMvm array(n, p, cfg);
  const Matrix a = random_matrix(n, cfg.fmt, 1);
  const auto x = random_vector(n, cfg.fmt, 2);
  const MvmRun run = array.run(a, x);
  const int r = n / p;
  const int r_eff = std::max(r, array.pl());
  EXPECT_EQ(run.r_eff, r_eff);
  EXPECT_EQ(run.cycles,
            static_cast<long>(n) * r_eff + (p - 1) + array.pl() + 1);
  EXPECT_EQ(run.padded_issues,
            static_cast<long>(p) * n * (r_eff - r));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MvmTest,
    ::testing::Values(MvmCase{8, 1, "n8_p1"}, MvmCase{8, 2, "n8_p2"},
                      MvmCase{8, 8, "n8_p8"}, MvmCase{16, 2, "n16_p2"},
                      MvmCase{16, 16, "n16_p16"}, MvmCase{12, 3, "n12_p3"}),
    [](const ::testing::TestParamInfo<MvmCase>& info) {
      return info.param.name;
    });

TEST(Mvm, WideStripAvoidsPadding) {
  // r = n/p >= PL: no padded issues.
  const PeConfig cfg = fast_cfg();  // PL = 7
  LinearArrayMvm array(16, 2, cfg);  // r = 8 >= 7
  const Matrix a = random_matrix(16, cfg.fmt, 9);
  const auto x = random_vector(16, cfg.fmt, 10);
  const MvmRun run = array.run(a, x);
  EXPECT_EQ(run.padded_issues, 0);
}

TEST(Mvm, NarrowStripPads) {
  const PeConfig cfg = fast_cfg();   // PL = 7
  LinearArrayMvm array(16, 16, cfg);  // r = 1 << PL
  const Matrix a = random_matrix(16, cfg.fmt, 11);
  const auto x = random_vector(16, cfg.fmt, 12);
  const MvmRun run = array.run(a, x);
  EXPECT_GT(run.padded_issues, 0);
  EXPECT_EQ(run.y, reference_mvm(a, x, cfg.fmt, cfg.rounding));
}

TEST(Mvm, MorePEsFewerCyclesOnLargeProblems) {
  // Parallel speedup once strips stay above the padding threshold.
  const PeConfig cfg = fast_cfg();
  const int n = 56;
  const Matrix a = random_matrix(n, cfg.fmt, 13);
  const auto x = random_vector(n, cfg.fmt, 14);
  LinearArrayMvm a1(n, 1, cfg);
  LinearArrayMvm a8(n, 8, cfg);
  const long c1 = a1.run(a, x).cycles;
  const long c8 = a8.run(a, x).cycles;
  EXPECT_GT(c1, 6 * c8);
}

TEST(Mvm, Validation) {
  const PeConfig cfg = fast_cfg();
  EXPECT_THROW(LinearArrayMvm(8, 3, cfg), std::invalid_argument);
  EXPECT_THROW(LinearArrayMvm(0, 1, cfg), std::invalid_argument);
  LinearArrayMvm array(8, 2, cfg);
  const Matrix a = random_matrix(8, cfg.fmt, 1);
  EXPECT_THROW(array.run(a, std::vector<fp::u64>(4, 0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace flopsim::kernel
