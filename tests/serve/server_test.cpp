// The socket front end, exercised over real Unix-domain sockets: request
// order preserved per connection, concurrent clients at 1/2/8 evaluation
// workers byte-identical (the serve-side determinism contract), bounded
// admission queue rejecting with status 75 under flood, replay-twice
// byte identity through the cache, and shutdown via request. Threaded
// end to end, so the suite rides in the tsan sweep.
#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"
#include "serve/telemetry.hpp"

namespace flopsim::serve {
namespace {

/// Socket paths must stay under the ~108-byte sockaddr_un limit, so the
/// harness builds short /tmp names instead of using the test temp dir.
std::string socket_path() {
  static std::atomic<int> next{0};
  return "/tmp/flssrv_" + std::to_string(::getpid()) + "_" +
         std::to_string(next.fetch_add(1)) + ".sock";
}

int status_of(const std::string& response) {
  const auto v = parse_json(response);
  if (!v.has_value() || !v->is_object()) return -1;
  const JsonValue* s = v->get("status");
  return s != nullptr ? static_cast<int>(s->as_int(-1)) : -1;
}

/// A running server with its own registry, cache, and service.
class Harness {
 public:
  explicit Harness(int workers, std::size_t queue_capacity = 64,
                   TelemetryConfig telemetry = {})
      : cache_({.capacity = 256, .dir = "", .shards = 4}, reg_),
        service_({}, &cache_, reg_),
        server_(
            ServerConfig{.unix_path = socket_path(),
                         .port = 0,
                         .workers = workers,
                         .queue_capacity = queue_capacity,
                         .telemetry = std::move(telemetry)},
            service_) {
    std::string error;
    ok_ = server_.start(&error);
    EXPECT_TRUE(ok_) << error;
    if (ok_) runner_ = std::thread([this] { server_.run(); });
  }

  ~Harness() {
    server_.request_stop();
    if (runner_.joinable()) runner_.join();
  }

  bool ok() const { return ok_; }
  const std::string& path() const { return server_.config().unix_path; }
  obs::Registry& registry() { return reg_; }

  Client connect() {
    Client c;
    std::string error;
    EXPECT_TRUE(c.connect(path(), 0, 5.0, &error)) << error;
    return c;
  }

  /// Send every line, then read one response per line, in order.
  std::vector<std::string> roundtrip(Client& c,
                                     const std::vector<std::string>& lines) {
    for (const std::string& line : lines) {
      EXPECT_TRUE(c.send_line(line));
    }
    std::vector<std::string> responses;
    std::string r;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (!c.recv_line(&r)) break;
      responses.push_back(r);
    }
    EXPECT_EQ(responses.size(), lines.size());
    return responses;
  }

 private:
  obs::Registry reg_;
  ResultCache cache_;
  Service service_;
  Server server_;
  std::thread runner_;
  bool ok_ = false;
};

std::vector<std::string> request_mix() {
  return {
      "{\"id\": 0, \"type\": \"ping\"}",
      "{\"id\": 1, \"type\": \"plan\", \"op\": \"add\", \"bits\": 32, "
      "\"stages\": 4}",
      "{\"id\": 2, \"type\": \"campaign\", \"op\": \"mul\", \"bits\": 32, "
      "\"stages\": 4, \"faults\": 12, \"vectors\": 8, \"seed\": 5}",
      "{\"id\": 3, \"type\": \"plan\", \"op\": \"cvt\", \"src_bits\": 64, "
      "\"dst_bits\": 32, \"stages\": 2}",
      "{\"id\": 4, \"type\": \"campaign\", \"kernel\": \"matmul\", "
      "\"n\": 4, \"bits\": 32, \"faults\": 8, \"seed\": 11}",
      "{\"id\": 5, \"type\": \"plan\", \"op\": \"mul\", \"bits\": 64, "
      "\"stages\": 6}",
  };
}

TEST(Server, PingOverSocketMatchesBatchGolden) {
  Harness h(/*workers=*/2);
  ASSERT_TRUE(h.ok());
  Client c = h.connect();
  ASSERT_TRUE(c.send_line("{\"id\": 1, \"type\": \"ping\"}"));
  std::string response;
  ASSERT_TRUE(c.recv_line(&response));
  EXPECT_EQ(response,
            "{\"id\": 1, \"status\": 0, \"result\": {\"pong\": true}}");
}

TEST(Server, ResponsesKeepRequestOrderPerConnection) {
  // The queue may complete out of order underneath (cheap pings behind an
  // expensive campaign); the connection must still see strict order.
  Harness h(/*workers=*/4);
  ASSERT_TRUE(h.ok());
  Client c = h.connect();
  std::vector<std::string> lines;
  for (int i = 0; i < 12; ++i) {
    if (i % 3 == 0) {
      lines.push_back("{\"id\": " + std::to_string(i) +
                      ", \"type\": \"campaign\", \"op\": \"add\", "
                      "\"bits\": 32, \"stages\": 4, \"faults\": 8, "
                      "\"vectors\": 8, \"seed\": " + std::to_string(i) +
                      "}");
    } else {
      lines.push_back("{\"id\": " + std::to_string(i) +
                      ", \"type\": \"ping\"}");
    }
  }
  const std::vector<std::string> responses = h.roundtrip(c, lines);
  ASSERT_EQ(responses.size(), lines.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const auto v = parse_json(responses[i]);
    ASSERT_TRUE(v.has_value()) << responses[i];
    ASSERT_NE(v->get("id"), nullptr);
    EXPECT_EQ(v->get("id")->as_int(-1), static_cast<long long>(i));
  }
}

TEST(Server, ConcurrentClientsDeterministicAcrossWorkerCounts) {
  // Same requests, three concurrent connections, at 1/2/8 workers: every
  // client of every configuration reads the same response bytes. This is
  // the campaign engine's 1/2/8 determinism suite transplanted to the
  // serving layer.
  const std::vector<std::string> lines = request_mix();
  std::vector<std::vector<std::string>> per_config;
  for (const int workers : {1, 2, 8}) {
    Harness h(workers);
    ASSERT_TRUE(h.ok());
    constexpr int kClients = 3;
    std::vector<std::vector<std::string>> per_client(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        Client c = h.connect();
        per_client[static_cast<std::size_t>(i)] = h.roundtrip(c, lines);
      });
    }
    for (std::thread& t : threads) t.join();
    for (int i = 1; i < kClients; ++i) {
      EXPECT_EQ(per_client[static_cast<std::size_t>(i)], per_client[0])
          << "client " << i << " diverged at workers=" << workers;
    }
    per_config.push_back(per_client[0]);
  }
  EXPECT_EQ(per_config[1], per_config[0]) << "workers=2 diverged from 1";
  EXPECT_EQ(per_config[2], per_config[0]) << "workers=8 diverged from 1";
}

TEST(Server, FloodAgainstTinyQueueIsRejectedWithStatus75) {
  // workers=1, queue=1: the reader outruns the single evaluator by
  // orders of magnitude, so a 16-request burst must trip backpressure.
  // Every request still gets a response — typed rejection, not a stall.
  Harness h(/*workers=*/1, /*queue_capacity=*/1);
  ASSERT_TRUE(h.ok());
  Client c = h.connect();
  std::vector<std::string> lines;
  for (int i = 0; i < 16; ++i) {
    lines.push_back("{\"id\": " + std::to_string(i) +
                    ", \"type\": \"campaign\", \"op\": \"mul\", "
                    "\"bits\": 32, \"stages\": 4, \"faults\": 16, "
                    "\"vectors\": 8, \"seed\": " + std::to_string(i) + "}");
  }
  const std::vector<std::string> responses = h.roundtrip(c, lines);
  ASSERT_EQ(responses.size(), lines.size());
  int ok = 0;
  int rejected = 0;
  for (const std::string& r : responses) {
    const int status = status_of(r);
    if (status == 0) ++ok;
    if (status == 75) ++rejected;
    EXPECT_TRUE(status == 0 || status == 75) << r;
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(rejected, 1);
  EXPECT_GE(h.registry().counter("serve.requests.rejected").value(), 1);
}

TEST(Server, QueueDepthGaugeReturnsToZeroAfterRejectionBurst) {
  // The serve.queue.depth audit: the gauge is written only under the
  // queue mutex, always to the exact queue size, and neither status-75
  // rejections (never enqueued) nor requests that fail during evaluation
  // (dequeued like any other) may leak depth. Flood a 1-worker/1-slot
  // server with a mix of slow campaigns and campaigns that fail with
  // status 2 at evaluation time, then verify the gauge drained to zero.
  Harness h(/*workers=*/1, /*queue_capacity=*/1);
  ASSERT_TRUE(h.ok());
  Client c = h.connect();
  std::vector<std::string> lines;
  for (int i = 0; i < 24; ++i) {
    if (i % 4 == 3) {
      // Envelope-valid (so it queues) but fails in evaluate_campaign.
      lines.push_back("{\"id\": " + std::to_string(i) +
                      ", \"type\": \"campaign\", \"op\": \"add\", "
                      "\"bits\": 32, \"stages\": 4, "
                      "\"scheme\": \"bogus\"}");
    } else {
      lines.push_back("{\"id\": " + std::to_string(i) +
                      ", \"type\": \"campaign\", \"op\": \"mul\", "
                      "\"bits\": 32, \"stages\": 4, \"faults\": 16, "
                      "\"vectors\": 8, \"seed\": " + std::to_string(i) +
                      "}");
    }
  }
  const std::vector<std::string> responses = h.roundtrip(c, lines);
  ASSERT_EQ(responses.size(), lines.size());
  int rejected = 0;
  for (const std::string& r : responses) {
    const int status = status_of(r);
    EXPECT_TRUE(status == 0 || status == 2 || status == 75) << r;
    if (status == 75) ++rejected;
  }
  EXPECT_GE(rejected, 1);
  // Every response has been written, so every queued job was dequeued;
  // the last dequeue set the gauge to the then-current queue size, and
  // with nothing left in flight that size was zero.
  EXPECT_EQ(h.registry().gauge("serve.queue.depth").value(), 0.0);
}

TEST(Server, ConcurrentMetricsReadsDuringEvalAreCleanAtAnyWorkerCount) {
  // Satellite of the tracing PR: the metrics endpoint (inline on the
  // reader thread) snapshots every histogram shard while evaluation
  // workers are observing into them. Run it against in-flight campaigns
  // at 1/2/8 workers — under TSan in CI this doubles as a race check on
  // the registry's relaxed-atomic shards and the telemetry phase
  // histograms.
  for (const int workers : {1, 2, 8}) {
    Harness h(workers);
    ASSERT_TRUE(h.ok());
    Client flooder = h.connect();
    constexpr int kCampaigns = 10;
    for (int i = 0; i < kCampaigns; ++i) {
      ASSERT_TRUE(flooder.send_line(
          "{\"id\": " + std::to_string(i) +
          ", \"type\": \"campaign\", \"op\": \"add\", \"bits\": 32, "
          "\"stages\": 4, \"faults\": 16, \"vectors\": 8, \"seed\": " +
          std::to_string(i) + "}"));
    }
    std::atomic<int> metrics_ok{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 2; ++t) {
      readers.emplace_back([&h, &metrics_ok] {
        Client c = h.connect();
        std::string response;
        for (int i = 0; i < 8; ++i) {
          if (!c.send_line("{\"id\": 7, \"type\": \"metrics\"}")) return;
          if (!c.recv_line(&response)) return;
          if (status_of(response) == 0) metrics_ok.fetch_add(1);
        }
      });
    }
    for (std::thread& t : readers) t.join();
    EXPECT_EQ(metrics_ok.load(), 16) << "workers=" << workers;
    std::string response;
    for (int i = 0; i < kCampaigns; ++i) {
      if (!flooder.recv_line(&response)) break;
    }
  }
}

TEST(Server, PrometheusMetricsFormatOverSocket) {
  Harness h(/*workers=*/2);
  ASSERT_TRUE(h.ok());
  Client c = h.connect();
  ASSERT_TRUE(c.send_line(
      "{\"id\": 1, \"type\": \"metrics\", \"format\": \"prometheus\"}"));
  std::string response;
  ASSERT_TRUE(c.recv_line(&response));
  EXPECT_EQ(status_of(response), 0);
  const auto v = parse_json(response);
  ASSERT_TRUE(v.has_value());
  const JsonValue* result = v->get("result");
  ASSERT_NE(result, nullptr);
  const JsonValue* text = result->get("text");
  ASSERT_NE(text, nullptr);
  EXPECT_NE(text->as_string().find("# TYPE serve_requests counter"),
            std::string::npos);
  EXPECT_NE(text->as_string().find("serve_phase_parse_us_bucket{le="),
            std::string::npos);
  // An unknown format is a usage error, not a silent JSON fallback.
  ASSERT_TRUE(c.send_line(
      "{\"id\": 2, \"type\": \"metrics\", \"format\": \"xml\"}"));
  ASSERT_TRUE(c.recv_line(&response));
  EXPECT_EQ(status_of(response), 2);
}

TEST(Server, SaturatedServerStillAnswersPing) {
  // Probes are routed inline by the reader, never through the bounded
  // queue — a saturated server must stay observable.
  Harness h(/*workers=*/1, /*queue_capacity=*/1);
  ASSERT_TRUE(h.ok());
  Client flooder = h.connect();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(flooder.send_line(
        "{\"id\": " + std::to_string(i) +
        ", \"type\": \"campaign\", \"op\": \"add\", \"bits\": 64, "
        "\"stages\": 8, \"faults\": 32, \"vectors\": 16, \"seed\": " +
        std::to_string(i) + "}"));
  }
  Client prober = h.connect();
  ASSERT_TRUE(prober.send_line("{\"id\": 99, \"type\": \"ping\"}"));
  std::string response;
  ASSERT_TRUE(prober.recv_line(&response));
  EXPECT_EQ(status_of(response), 0);
  // Drain the flood so the harness shuts down cleanly.
  for (int i = 0; i < 8; ++i) {
    if (!flooder.recv_line(&response)) break;
  }
}

TEST(Server, ReplayTwiceIsByteIdenticalAndServedFromCache) {
  Harness h(/*workers=*/2);
  ASSERT_TRUE(h.ok());
  const std::vector<std::string> lines = request_mix();
  Client c = h.connect();
  const std::vector<std::string> pass1 = h.roundtrip(c, lines);
  const long hits_before =
      h.registry().counter("serve.cache.hit").value();
  const std::vector<std::string> pass2 = h.roundtrip(c, lines);
  EXPECT_EQ(pass1, pass2);
  // Everything but ping is cacheable: the second pass is all hits.
  EXPECT_GE(h.registry().counter("serve.cache.hit").value(),
            hits_before + static_cast<long>(lines.size()) - 1);
}

TEST(Server, ShutdownRequestStopsTheServer) {
  obs::Registry reg;
  ResultCache cache({.capacity = 16, .dir = "", .shards = 4}, reg);
  Service service({}, &cache, reg);
  Server server(ServerConfig{.unix_path = socket_path(),
                             .port = 0,
                             .workers = 2,
                             .queue_capacity = 8},
                service);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  std::thread runner([&server] { server.run(); });
  Client c;
  ASSERT_TRUE(c.connect(server.config().unix_path, 0, 5.0, &error)) << error;
  ASSERT_TRUE(c.send_line("{\"id\": 1, \"type\": \"shutdown\"}"));
  std::string response;
  ASSERT_TRUE(c.recv_line(&response));
  EXPECT_EQ(status_of(response), 0);
  runner.join();  // run() must return on its own — no request_stop() here
}

TEST(Server, TcpLoopbackWorksToo) {
  obs::Registry reg;
  ResultCache cache({.capacity = 16, .dir = "", .shards = 4}, reg);
  Service service({}, &cache, reg);
  // Port chosen from the ephemeral-adjacent range; retry a few in case
  // of a collision with another process.
  for (int port = 38741; port < 38761; ++port) {
    Server server(ServerConfig{.unix_path = "",
                               .port = port,
                               .workers = 1,
                               .queue_capacity = 8},
                  service);
    std::string error;
    if (!server.start(&error)) continue;
    std::thread runner([&server] { server.run(); });
    Client c;
    ASSERT_TRUE(c.connect("", port, 5.0, &error)) << error;
    ASSERT_TRUE(c.send_line("{\"id\": 1, \"type\": \"ping\"}"));
    std::string response;
    ASSERT_TRUE(c.recv_line(&response));
    EXPECT_EQ(status_of(response), 0);
    server.request_stop();
    runner.join();
    return;
  }
  FAIL() << "no loopback port available";
}

}  // namespace
}  // namespace flopsim::serve
