// Layer 3.4 — request-scoped tracing and telemetry, end to end over real
// sockets: the access log reconstructs every request's decomposition with
// unique trace ids, the slow-request capture emits loadable span trees,
// and — the tentpole's non-negotiable — response bytes are identical with
// telemetry + tracing on or off, at any worker count.
#include "serve/telemetry.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace flopsim::serve {
namespace {

std::string socket_path() {
  static std::atomic<int> next{0};
  return "/tmp/flstel_" + std::to_string(::getpid()) + "_" +
         std::to_string(next.fetch_add(1)) + ".sock";
}

std::string temp_file(const std::string& name) {
  const std::filesystem::path p =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove(p);
  return p.string();
}

std::vector<JsonValue> read_jsonl(const std::string& path) {
  std::vector<JsonValue> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string error;
    const auto v = parse_json(line, &error);
    EXPECT_TRUE(v.has_value()) << path << ": " << error << ": " << line;
    if (v.has_value()) lines.push_back(*v);
  }
  return lines;
}

double num_field(const JsonValue& v, const char* key) {
  const JsonValue* f = v.get(key);
  EXPECT_NE(f, nullptr) << key;
  return f != nullptr && f->is_number() ? f->as_double() : -1.0;
}

std::vector<std::string> request_mix() {
  return {
      "{\"id\": 0, \"type\": \"ping\"}",
      "{\"id\": 1, \"type\": \"plan\", \"op\": \"add\", \"bits\": 32, "
      "\"stages\": 4}",
      "{\"id\": 2, \"type\": \"campaign\", \"op\": \"mul\", \"bits\": 32, "
      "\"stages\": 4, \"faults\": 12, \"vectors\": 8, \"seed\": 5}",
      "{\"id\": 3, \"type\": \"plan\", \"op\": \"cvt\", \"src_bits\": 64, "
      "\"dst_bits\": 32, \"stages\": 2}",
      "this is not json",
      "{\"id\": 5, \"type\": \"plan\", \"op\": \"mul\", \"bits\": 64, "
      "\"stages\": 6}",
  };
}

/// A served round trip: start a server with the given telemetry config,
/// run every line through one connection, stop the server (flushing the
/// logs), and hand back the response bytes.
std::vector<std::string> serve_roundtrip(int workers,
                                         const TelemetryConfig& telemetry,
                                         const std::vector<std::string>& lines,
                                         int passes = 1) {
  obs::Registry reg;
  ResultCache cache({.capacity = 256, .dir = "", .shards = 4}, reg);
  Service service({}, &cache, reg);
  Server server(ServerConfig{.unix_path = socket_path(),
                             .port = 0,
                             .workers = workers,
                             .queue_capacity = 64,
                             .telemetry = telemetry},
                service);
  EXPECT_TRUE(server.telemetry().ok());
  std::string error;
  EXPECT_TRUE(server.start(&error)) << error;
  std::thread runner([&server] { server.run(); });
  std::vector<std::string> responses;
  {
    Client c;
    EXPECT_TRUE(c.connect(server.config().unix_path, 0, 5.0, &error))
        << error;
    for (int pass = 0; pass < passes; ++pass) {
      for (const std::string& line : lines) {
        EXPECT_TRUE(c.send_line(line));
      }
      std::string r;
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (!c.recv_line(&r)) break;
        responses.push_back(r);
      }
    }
  }
  server.request_stop();
  runner.join();
  return responses;
}

TEST(RequestTrace, PhaseClockAccumulatesAndRecordsOverride) {
  obs::Registry reg;
  Telemetry telemetry(reg);
  const auto rt = telemetry.begin();
  EXPECT_NE(rt->trace_id, 0u);
  EXPECT_NE(rt->root_span, 0u);
  EXPECT_FALSE(rt->phase_recorded(Phase::kQueue));
  EXPECT_EQ(rt->phase_us(Phase::kQueue), 0.0);

  rt->phase_begin(Phase::kCache);
  rt->phase_end(Phase::kCache);
  rt->phase_begin(Phase::kCache);  // second begin/end pair accumulates
  rt->phase_end(Phase::kCache);
  EXPECT_TRUE(rt->phase_recorded(Phase::kCache));
  EXPECT_GE(rt->phase_us(Phase::kCache), 0.0);

  rt->phase_record(Phase::kEval, 10.0, 25.0);
  EXPECT_EQ(rt->phase_start_us(Phase::kEval), 10.0);
  EXPECT_EQ(rt->phase_us(Phase::kEval), 25.0);
  rt->phase_record(Phase::kEval, 10.0, -3.0);  // clamps negative to zero
  EXPECT_EQ(rt->phase_us(Phase::kEval), 0.0);

  const auto rt2 = telemetry.begin();
  EXPECT_NE(rt2->trace_id, rt->trace_id);
  telemetry.finish(*rt);
  telemetry.finish(*rt2);
  // Only recorded phases observe into the registry: two finishes, one
  // cache phase and one eval phase between them.
  std::ostringstream os;
  reg.write_jsonl(os);
  EXPECT_NE(os.str().find("serve.phase.cache_us"), std::string::npos);
}

TEST(Telemetry, AccessLogReconstructsEveryRequestWithUniqueTraceIds) {
  const std::string access = temp_file("telemetry_access.jsonl");
  TelemetryConfig tc;
  tc.access_log_path = access;
  const std::vector<std::string> lines = request_mix();
  const std::vector<std::string> responses =
      serve_roundtrip(/*workers=*/2, tc, lines, /*passes=*/2);
  ASSERT_EQ(responses.size(), 2 * lines.size());

  const std::vector<JsonValue> log = read_jsonl(access);
  ASSERT_EQ(log.size(), 2 * lines.size());
  std::set<long long> traces;
  int cache_hits = 0;
  for (const JsonValue& entry : log) {
    const JsonValue* trace = entry.get("trace");
    ASSERT_NE(trace, nullptr);
    traces.insert(trace->as_int(-1));
    const JsonValue* status = entry.get("status");
    ASSERT_NE(status, nullptr);
    const long long s = status->as_int(-1);
    EXPECT_TRUE(s == 0 || s == 1 || s == 2 || s == 75) << s;
    // The full decomposition is present and sane on every line.
    const double total = num_field(entry, "total_us");
    double phase_sum = 0.0;
    for (const char* key :
         {"parse_us", "queue_us", "eval_us", "cache_us", "write_us"}) {
      const double us = num_field(entry, key);
      EXPECT_GE(us, 0.0) << key;
      phase_sum += us;
    }
    EXPECT_GE(total, 0.0);
    EXPECT_LE(phase_sum, total + 1.0) << "phases exceed the request";
    const JsonValue* cache = entry.get("cache");
    ASSERT_NE(cache, nullptr);
    if (cache->as_int(-2) == 1) ++cache_hits;
  }
  // Trace ids are unique across the whole run...
  EXPECT_EQ(traces.size(), log.size());
  // ...the malformed line logged as status 2...
  int bad = 0;
  for (const JsonValue& entry : log) {
    if (entry.get("status")->as_int(-1) == 2) ++bad;
  }
  EXPECT_EQ(bad, 2);  // one per pass
  // ...and the second pass's plan/campaign requests were cache hits.
  EXPECT_GE(cache_hits, 4);
}

TEST(Telemetry, SlowLogCapturesLoadableSpanTreeForEveryRequest) {
  const std::string slow = temp_file("telemetry_slow.jsonl");
  TelemetryConfig tc;
  tc.slow_log_path = slow;
  tc.slow_ms = 0.0;  // capture everything
  const std::vector<std::string> lines = request_mix();
  serve_roundtrip(/*workers=*/2, tc, lines);

  const std::vector<JsonValue> log = read_jsonl(slow);
  ASSERT_EQ(log.size(), lines.size());
  for (const JsonValue& entry : log) {
    const JsonValue* spans = entry.get("spans");
    ASSERT_NE(spans, nullptr);
    ASSERT_TRUE(spans->is_array());
    std::set<long long> ids;
    int roots = 0;
    for (const JsonValue& s : spans->items()) {
      ASSERT_NE(s.get("span"), nullptr);
      ids.insert(s.get("span")->as_int(-1));
      ASSERT_NE(s.get("parent"), nullptr);
      if (s.get("parent")->as_int(-1) == 0) {
        ++roots;
        EXPECT_EQ(s.get("name")->as_string(), "request");
      }
      EXPECT_GE(num_field(s, "start_us"), 0.0);
      EXPECT_GE(num_field(s, "dur_us"), 0.0);
    }
    EXPECT_EQ(roots, 1) << "exactly one root per span tree";
    // Every non-root parent id is a span in the same tree.
    for (const JsonValue& s : spans->items()) {
      const long long parent = s.get("parent")->as_int(-1);
      if (parent != 0) {
        EXPECT_TRUE(ids.count(parent) == 1) << "dangling parent " << parent;
      }
    }
    // A served request decomposes into at least parse + eval + write.
    EXPECT_GE(spans->size(), 4u);
  }
}

TEST(Telemetry, SlowThresholdFiltersFastRequests) {
  const std::string slow = temp_file("telemetry_slow_filtered.jsonl");
  TelemetryConfig tc;
  tc.slow_log_path = slow;
  tc.slow_ms = 60000.0;  // a minute: nothing here is that slow
  serve_roundtrip(/*workers=*/1, tc, {"{\"id\": 0, \"type\": \"ping\"}"});
  EXPECT_TRUE(read_jsonl(slow).empty());
}

TEST(Telemetry, ResponsesByteIdenticalWithTracingOnOrOff) {
  // The determinism lock: full telemetry + an enabled tracer must not
  // change a single response byte, at any worker count. (Fresh caches on
  // both sides, so cache state can't mask a divergence.)
  const std::vector<std::string> lines = request_mix();
  const std::vector<std::string> plain =
      serve_roundtrip(/*workers=*/1, TelemetryConfig{}, lines);
  for (const int workers : {1, 2, 8}) {
    TelemetryConfig tc;
    tc.access_log_path =
        temp_file("telemetry_id_access_" + std::to_string(workers) + ".jsonl");
    tc.slow_log_path =
        temp_file("telemetry_id_slow_" + std::to_string(workers) + ".jsonl");
    obs::Tracer::global().clear();
    obs::Tracer::global().enable();
    const std::vector<std::string> traced =
        serve_roundtrip(workers, tc, lines);
    obs::Tracer::global().enable(false);
    obs::Tracer::global().clear();
    EXPECT_EQ(traced, plain) << "tracing changed bytes at workers="
                             << workers;
  }
}

TEST(Telemetry, BatchModeHandleLineLogsParseAndEvalPhases) {
  const std::string access = temp_file("telemetry_batch_access.jsonl");
  obs::Registry reg;
  ResultCache cache({.capacity = 16, .dir = "", .shards = 4}, reg);
  Service service({}, &cache, reg);
  TelemetryConfig tc;
  tc.access_log_path = access;
  Telemetry telemetry(tc, reg);
  ASSERT_TRUE(telemetry.ok());
  const std::string with =
      service.handle_line("{\"id\": 1, \"type\": \"ping\"}", &telemetry);
  const std::string without =
      service.handle_line("{\"id\": 1, \"type\": \"ping\"}");
  EXPECT_EQ(with, without);

  const std::vector<JsonValue> log = read_jsonl(access);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].get("type")->as_string(), "ping");
  EXPECT_GE(num_field(log[0], "parse_us"), 0.0);
  EXPECT_GE(num_field(log[0], "eval_us"), 0.0);
  // Batch mode has no queue or socket write phases.
  EXPECT_EQ(num_field(log[0], "queue_us"), 0.0);
  EXPECT_EQ(num_field(log[0], "write_us"), 0.0);
  // Phase histograms landed in the registry for the metrics endpoint.
  std::ostringstream os;
  reg.write_jsonl(os);
  EXPECT_NE(os.str().find("serve.phase.parse_us"), std::string::npos);
}

TEST(Telemetry, UnopenableLogPathReportsNotOk) {
  obs::Registry reg;
  TelemetryConfig tc;
  tc.access_log_path = "/nonexistent-dir/access.jsonl";
  Telemetry telemetry(tc, reg);
  EXPECT_FALSE(telemetry.ok());
}

}  // namespace
}  // namespace flopsim::serve
