// The request/response contract of the serve layer, pinned at the byte
// level: golden envelopes for the cheap request types, the status-2
// rejection taxonomy (malformed JSON, unknown types/fields, bad values),
// and the cache contract — a hit after a miss returns byte-identical
// response bytes, and two independent services agree byte-for-byte on
// the same request (what makes the cache sound in the first place).
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "serve/cache.hpp"
#include "serve/json.hpp"

namespace flopsim::serve {
namespace {

/// A service with its own registry and (optionally) cache.
struct Rig {
  obs::Registry reg;
  ResultCache cache{{.capacity = 64, .dir = "", .shards = 4}, reg};
  Service service{{}, &cache, reg};
  Service uncached{{}, nullptr, reg};
};

int status_of(const std::string& response) {
  const auto v = parse_json(response);
  if (!v.has_value() || !v->is_object()) return -1;
  const JsonValue* s = v->get("status");
  return s != nullptr ? static_cast<int>(s->as_int(-1)) : -1;
}

TEST(Service, PingGolden) {
  Rig rig;
  EXPECT_EQ(rig.service.handle_line("{\"id\": 1, \"type\": \"ping\"}"),
            "{\"id\": 1, \"status\": 0, \"result\": {\"pong\": true}}");
}

TEST(Service, IdEchoesAllJsonShapes) {
  Rig rig;
  // String and absent ids echo back exactly as sent (absent -> null).
  EXPECT_EQ(rig.service.handle_line("{\"id\": \"abc\", \"type\": \"ping\"}"),
            "{\"id\": \"abc\", \"status\": 0, \"result\": {\"pong\": true}}");
  EXPECT_EQ(rig.service.handle_line("{\"type\": \"ping\"}"),
            "{\"id\": null, \"status\": 0, \"result\": {\"pong\": true}}");
  // Non-int/string ids are a schema violation, not a crash.
  EXPECT_EQ(status_of(rig.service.handle_line(
                "{\"id\": [1], \"type\": \"ping\"}")),
            2);
}

TEST(Service, MalformedLinesGetStatusTwo) {
  Rig rig;
  EXPECT_EQ(rig.service.handle_line("not json"),
            "{\"id\": null, \"status\": 2, \"error\": \"malformed JSON: "
            "offset 0: invalid literal\"}");
  EXPECT_EQ(status_of(rig.service.handle_line("[1, 2]")), 2);
  EXPECT_EQ(status_of(rig.service.handle_line("{\"id\": 1}")), 2);
  EXPECT_EQ(status_of(rig.service.handle_line(
                "{\"id\": 1, \"type\": \"frobnicate\"}")),
            2);
}

TEST(Service, UnknownFieldsAreRejectedNotIgnored) {
  // A typo'd field silently ignored would poison the cache key space:
  // two semantically different requests would share one key.
  Rig rig;
  const std::string resp = rig.service.handle_line(
      "{\"id\": 1, \"type\": \"plan\", \"op\": \"add\", \"bits\": 32, "
      "\"stages\": 4, \"stage\": 5}");
  EXPECT_EQ(status_of(resp), 2);
  EXPECT_NE(resp.find("unknown field: stage"), std::string::npos);
}

TEST(Service, BadValuesAreStatusTwo) {
  Rig rig;
  // bits outside the paper's format set
  EXPECT_EQ(status_of(rig.service.handle_line(
                "{\"type\": \"plan\", \"op\": \"add\", \"bits\": 33, "
                "\"stages\": 2}")),
            2);
  // unknown op
  EXPECT_EQ(status_of(rig.service.handle_line(
                "{\"type\": \"plan\", \"op\": \"frob\", \"bits\": 32, "
                "\"stages\": 2}")),
            2);
  // unknown hardening scheme
  EXPECT_EQ(status_of(rig.service.handle_line(
                "{\"type\": \"plan\", \"op\": \"add\", \"bits\": 32, "
                "\"stages\": 2, \"harden\": \"bogus\"}")),
            2);
}

TEST(Service, PlanHitAfterMissIsByteIdentical) {
  Rig rig;
  const std::string line =
      "{\"id\": 9, \"type\": \"plan\", \"op\": \"mul\", \"bits\": 64, "
      "\"stages\": 6}";
  const std::string fresh = rig.service.handle_line(line);
  const long hits0 = rig.reg.counter("serve.cache.hit").value();
  const std::string cached = rig.service.handle_line(line);
  EXPECT_EQ(fresh, cached);
  EXPECT_EQ(rig.reg.counter("serve.cache.hit").value(), hits0 + 1);
  EXPECT_EQ(status_of(fresh), 0);
}

TEST(Service, CampaignHitAfterMissIsByteIdentical) {
  Rig rig;
  const std::string line =
      "{\"id\": 3, \"type\": \"campaign\", \"op\": \"add\", \"bits\": 32, "
      "\"stages\": 4, \"faults\": 16, \"vectors\": 8, \"seed\": 7}";
  const std::string fresh = rig.service.handle_line(line);
  const std::string cached = rig.service.handle_line(line);
  EXPECT_EQ(fresh, cached);
  EXPECT_EQ(status_of(fresh), 0);
  EXPECT_GE(rig.reg.counter("serve.cache.hit").value(), 1);
}

TEST(Service, CacheKeyIgnoresIdButNotParams) {
  Rig rig;
  // Different id, same semantics: one evaluation, one hit — only the
  // echoed id differs between the responses.
  const std::string a = rig.service.handle_line(
      "{\"id\": 1, \"type\": \"plan\", \"op\": \"add\", \"bits\": 32, "
      "\"stages\": 4}");
  const std::string b = rig.service.handle_line(
      "{\"id\": 2, \"type\": \"plan\", \"op\": \"add\", \"bits\": 32, "
      "\"stages\": 4}");
  EXPECT_EQ(rig.reg.counter("serve.cache.hit").value(), 1);
  EXPECT_EQ(a.substr(a.find("\"status\"")), b.substr(b.find("\"status\"")));
  // Different stages: a different design point, a different entry.
  rig.service.handle_line(
      "{\"id\": 3, \"type\": \"plan\", \"op\": \"add\", \"bits\": 32, "
      "\"stages\": 5}");
  EXPECT_EQ(rig.reg.counter("serve.cache.hit").value(), 1);
  EXPECT_EQ(rig.cache.size(), 2u);
}

TEST(Service, IndependentServicesAgreeByteForByte) {
  // Determinism across instances is what makes a *shared* disk cache
  // sound: any server may fill an entry any other may serve.
  const std::string line =
      "{\"type\": \"campaign\", \"kernel\": \"matmul\", \"n\": 4, "
      "\"bits\": 32, \"faults\": 12, \"seed\": 99}";
  Rig a;
  Rig b;
  EXPECT_EQ(a.uncached.handle_line(line), b.uncached.handle_line(line));
}

TEST(Service, AutoDepthPlanReportsSelection) {
  Rig rig;
  const std::string resp = rig.service.handle_line(
      "{\"type\": \"plan\", \"op\": \"add\", \"bits\": 32}");
  EXPECT_EQ(status_of(resp), 0);
  const auto v = parse_json(resp);
  ASSERT_TRUE(v.has_value());
  const JsonValue* result = v->get("result");
  ASSERT_NE(result, nullptr);
  const JsonValue* sel = result->get("selection");
  ASSERT_NE(sel, nullptr) << resp;
  ASSERT_NE(sel->get("opt_stages"), nullptr);
  const long long opt = sel->get("opt_stages")->as_int();
  EXPECT_GE(opt, 1);
  EXPECT_EQ(result->get("stages")->as_int(), opt);
}

TEST(Service, MatmulCampaignReportsDroppedTrials) {
  Rig rig;
  const std::string resp = rig.service.handle_line(
      "{\"type\": \"campaign\", \"kernel\": \"matmul\", \"n\": 4, "
      "\"bits\": 32, \"faults\": 8, \"seed\": 1}");
  EXPECT_EQ(status_of(resp), 0);
  const auto v = parse_json(resp);
  ASSERT_TRUE(v.has_value());
  const JsonValue* result = v->get("result");
  ASSERT_NE(result, nullptr);
  // The fallback-accounting contract: the field is always present (0 on
  // a full campaign), never silently absent.
  ASSERT_NE(result->get("dropped_trials"), nullptr) << resp;
  EXPECT_GE(result->get("dropped_trials")->as_int(-1), 0);
}

TEST(Service, MetricsIsNeverCached) {
  Rig rig;
  const std::string r1 =
      rig.service.handle_line("{\"type\": \"metrics\"}");
  EXPECT_EQ(status_of(r1), 0);
  EXPECT_NE(r1.find("serve.requests"), std::string::npos);
  EXPECT_EQ(rig.cache.size(), 0u);
  // A second metrics call reflects the counters the first one bumped —
  // live state, not a cached snapshot.
  const std::string r2 =
      rig.service.handle_line("{\"type\": \"metrics\"}");
  EXPECT_NE(r1, r2);
}

TEST(Service, ShutdownIsAcknowledged) {
  Rig rig;
  const std::string resp =
      rig.service.handle_line("{\"id\": 5, \"type\": \"shutdown\"}");
  EXPECT_EQ(status_of(resp), 0);
  EXPECT_NE(resp.find("\"shutting_down\": true"), std::string::npos);
}

TEST(Service, ErrorResponseRendersBackpressureRejection) {
  Rig rig;
  EXPECT_EQ(rig.service.error_response("7", 75, "queue full"),
            "{\"id\": 7, \"status\": 75, \"error\": \"queue full\"}");
}

TEST(Service, RequestCountersAdvance) {
  Rig rig;
  const long base = rig.reg.counter("serve.requests").value();
  rig.service.handle_line("{\"type\": \"ping\"}");
  rig.service.handle_line("not json");
  EXPECT_EQ(rig.reg.counter("serve.requests").value(), base + 2);
  EXPECT_GE(rig.reg.counter("serve.requests.bad").value(), 1);
}

}  // namespace
}  // namespace flopsim::serve
