// The serve layer's request parser: one JSON value per line, exact
// integers, strict errors (offset-tagged), bounded depth, duplicate-key
// rejection. The parser is the first thing an untrusted client byte
// stream meets, so the rejection paths get as much coverage as the
// accepting ones.
#include "serve/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace flopsim::serve {
namespace {

TEST(JsonParse, Primitives) {
  EXPECT_TRUE(parse_json("null")->is_null());
  EXPECT_TRUE(parse_json("true")->as_bool());
  EXPECT_FALSE(parse_json("false")->as_bool(true));
  EXPECT_EQ(parse_json("42")->as_int(), 42);
  EXPECT_DOUBLE_EQ(parse_json("2.5")->as_double(), 2.5);
  EXPECT_EQ(parse_json("\"hi\"")->as_string(), "hi");
}

TEST(JsonParse, IntegersStayExact) {
  // A number token without '.', 'e', 'E' parses as long long — seeds up
  // to 2^63-1 survive the trip bit-for-bit.
  const auto v = parse_json("9223372036854775807");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->is_int());
  EXPECT_EQ(v->as_int(), 9223372036854775807LL);
  EXPECT_EQ(parse_json("-42")->as_int(), -42);

  // '.' or an exponent demotes to double: still a number, not an int.
  EXPECT_FALSE(parse_json("1.0")->is_int());
  EXPECT_FALSE(parse_json("1e3")->is_int());
  EXPECT_TRUE(parse_json("1e3")->is_number());
  EXPECT_DOUBLE_EQ(parse_json("1e3")->as_double(), 1000.0);
}

TEST(JsonParse, TypedAccessorsFallBackOnMismatch) {
  const JsonValue s = *parse_json("\"text\"");
  EXPECT_EQ(s.as_int(7), 7);
  EXPECT_DOUBLE_EQ(s.as_double(1.5), 1.5);
  EXPECT_FALSE(s.as_bool(false));
  EXPECT_EQ(parse_json("3")->as_string("fallback"), "fallback");
  // Numeric kinds cross-convert rather than falling back.
  EXPECT_EQ(parse_json("2.9")->as_int(0), 2);
  EXPECT_DOUBLE_EQ(parse_json("4")->as_double(0.0), 4.0);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json("\"a\\\"b\\\\c\"")->as_string(), "a\"b\\c");
  EXPECT_EQ(parse_json("\"\\n\\t\"")->as_string(), "\n\t");
  // \u0041 = 'A'; \u00e9 = U+00E9 as two UTF-8 bytes.
  EXPECT_EQ(parse_json("\"\\u0041\"")->as_string(), "A");
  EXPECT_EQ(parse_json("\"\\u00e9\"")->as_string(), "\xc3\xa9");
}

TEST(JsonParse, RejectsLoneSurrogate) {
  std::string err;
  EXPECT_FALSE(parse_json("\"\\ud800\"", &err).has_value());
  EXPECT_NE(err.find("offset"), std::string::npos);
}

TEST(JsonParse, ArraysAndObjects) {
  const auto v = parse_json("{\"a\": [1, 2, 3], \"b\": {\"c\": true}}");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[2].as_int(), 3);
  const JsonValue* b = v->get("b");
  ASSERT_NE(b, nullptr);
  ASSERT_NE(b->get("c"), nullptr);
  EXPECT_TRUE(b->get("c")->as_bool());
  EXPECT_EQ(v->get("missing"), nullptr);
}

TEST(JsonParse, ObjectKeysKeepSourceOrder) {
  const auto v = parse_json("{\"z\": 1, \"a\": 2, \"m\": 3}");
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->keys().size(), 3u);
  EXPECT_EQ(v->keys()[0], "z");
  EXPECT_EQ(v->keys()[1], "a");
  EXPECT_EQ(v->keys()[2], "m");
}

TEST(JsonParse, RejectsDuplicateKeys) {
  // A request with a repeated field is ambiguous — which value would the
  // cache key fold in? Reject at parse.
  std::string err;
  EXPECT_FALSE(parse_json("{\"a\": 1, \"a\": 2}", &err).has_value());
  EXPECT_NE(err.find("duplicate"), std::string::npos);
}

TEST(JsonParse, RejectsTrailingGarbage) {
  std::string err;
  EXPECT_FALSE(parse_json("1 2", &err).has_value());
  EXPECT_FALSE(parse_json("{} x", &err).has_value());
  // ...but trailing whitespace is fine (lines may carry a stray '\r').
  EXPECT_TRUE(parse_json("{\"a\": 1}  \t").has_value());
}

TEST(JsonParse, RejectsTruncatedInput) {
  std::string err;
  EXPECT_FALSE(parse_json("{\"a\": ", &err).has_value());
  EXPECT_FALSE(parse_json("[1, 2", &err).has_value());
  EXPECT_FALSE(parse_json("\"unterminated", &err).has_value());
  EXPECT_FALSE(parse_json("", &err).has_value());
}

TEST(JsonParse, BoundsNestingDepth) {
  // A hostile client can't stack-overflow the reader thread.
  std::string deep;
  for (int i = 0; i < 40; ++i) deep += '[';
  for (int i = 0; i < 40; ++i) deep += ']';
  std::string err;
  EXPECT_FALSE(parse_json(deep, &err).has_value());
  EXPECT_NE(err.find("offset"), std::string::npos);

  std::string ok = "1";
  for (int i = 0; i < 8; ++i) ok = "[" + ok + "]";
  EXPECT_TRUE(parse_json(ok).has_value());
}

TEST(JsonParse, ErrorsNameTheByteOffset) {
  std::string err;
  EXPECT_FALSE(parse_json("not json", &err).has_value());
  EXPECT_EQ(err.rfind("offset 0:", 0), 0u) << err;
}

}  // namespace
}  // namespace flopsim::serve
