// The content-addressed result cache: LRU semantics (recency bumps,
// eviction order), the serve.cache.* counter family, and the on-disk
// shard tier — round-trip across a process restart, torn-tail tolerance,
// and the shard naming contract the CI smoke job relies on.
#include "serve/cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace flopsim::serve {
namespace {

namespace fs = std::filesystem;

long counter_value(obs::Registry& reg, const std::string& name) {
  return reg.counter(name).value();
}

std::string temp_dir(const std::string& name) {
  const fs::path p = fs::path(::testing::TempDir()) / name;
  fs::remove_all(p);
  return p.string();
}

TEST(ResultCache, MissThenHit) {
  obs::Registry reg;
  ResultCache cache({.capacity = 8, .dir = "", .shards = 4}, reg);
  EXPECT_FALSE(cache.lookup(1).has_value());
  cache.insert(1, "body-1");
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "body-1");
  EXPECT_EQ(counter_value(reg, "serve.cache.miss"), 1);
  EXPECT_EQ(counter_value(reg, "serve.cache.hit"), 1);
  EXPECT_EQ(counter_value(reg, "serve.cache.insert"), 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  obs::Registry reg;
  ResultCache cache({.capacity = 3, .dir = "", .shards = 4}, reg);
  cache.insert(1, "a");
  cache.insert(2, "b");
  cache.insert(3, "c");
  // Touch 1: recency order is now 1, 3, 2 — so inserting 4 evicts 2.
  ASSERT_TRUE(cache.lookup(1).has_value());
  cache.insert(4, "d");
  EXPECT_EQ(cache.keys_mru_first(),
            (std::vector<std::uint64_t>{4, 1, 3}));
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  EXPECT_EQ(counter_value(reg, "serve.cache.eviction"), 1);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(ResultCache, ReinsertOnlyRefreshesRecency) {
  obs::Registry reg;
  ResultCache cache({.capacity = 2, .dir = "", .shards = 4}, reg);
  cache.insert(1, "a");
  cache.insert(2, "b");
  cache.insert(1, "a");  // content-addressed: same key, same bytes
  EXPECT_EQ(cache.keys_mru_first(), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(counter_value(reg, "serve.cache.insert"), 2);
  EXPECT_EQ(counter_value(reg, "serve.cache.eviction"), 0);
}

TEST(ResultCache, ShardPathNaming) {
  EXPECT_EQ(ResultCache::shard_path("/x", 0, 4), "/x/cache-0of4.jsonl");
  EXPECT_EQ(ResultCache::shard_path("/x", 3, 4), "/x/cache-3of4.jsonl");
}

TEST(ResultCache, ShardOfUsesTopKeyBits) {
  obs::Registry reg;
  ResultCache cache({.capacity = 4, .dir = "", .shards = 4}, reg);
  EXPECT_EQ(cache.shard_of(0x0100000000000000ull), 1);
  EXPECT_EQ(cache.shard_of(0x0500000000000000ull), 1);  // 5 % 4
  EXPECT_EQ(cache.shard_of(0x0300000000000000ull), 3);
  // Low bits never matter: one instance's keyspace slice is stable.
  EXPECT_EQ(cache.shard_of(0x03ffffffffffffffull), 3);
}

TEST(ResultCache, DiskTierSurvivesRestart) {
  const std::string dir = temp_dir("serve_cache_restart");
  const std::uint64_t k1 = 0x1122334455667788ull;
  const std::uint64_t k2 = 0xaabbccddeeff0011ull;
  {
    obs::Registry reg;
    ResultCache cache({.capacity = 16, .dir = dir, .shards = 2}, reg);
    cache.insert(k1, "{\"x\": 1}");
    cache.insert(k2, "body with spaces");
  }
  obs::Registry reg2;
  ResultCache reloaded({.capacity = 16, .dir = dir, .shards = 2}, reg2);
  EXPECT_EQ(counter_value(reg2, "serve.cache.disk_loaded"), 2);
  const auto b1 = reloaded.lookup(k1);
  const auto b2 = reloaded.lookup(k2);
  ASSERT_TRUE(b1.has_value());
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(*b1, "{\"x\": 1}");
  EXPECT_EQ(*b2, "body with spaces");
  fs::remove_all(dir);
}

TEST(ResultCache, TornTailDropsOnlyTheFinalAppend) {
  const std::string dir = temp_dir("serve_cache_torn");
  obs::Registry reg;
  {
    ResultCache cache({.capacity = 16, .dir = dir, .shards = 1}, reg);
    cache.insert(1, "first");
    cache.insert(2, "second");
  }
  // Simulate a crash mid-append: chop bytes off the shard's last line.
  const std::string path = ResultCache::shard_path(dir, 0, 1);
  std::string text;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) text += line + "\n";
  }
  ASSERT_GT(text.size(), 4u);
  std::ofstream(path, std::ios::trunc) << text.substr(0, text.size() - 4);

  obs::Registry reg2;
  ResultCache reloaded({.capacity = 16, .dir = dir, .shards = 1}, reg2);
  EXPECT_EQ(counter_value(reg2, "serve.cache.disk_loaded"), 1);
  EXPECT_TRUE(reloaded.lookup(1).has_value());
  EXPECT_FALSE(reloaded.lookup(2).has_value());
  fs::remove_all(dir);
}

TEST(ResultCache, UnwritableDirFallsBackToMemoryOnly) {
  // A file where the directory should be: create_directories fails and
  // the cache must keep working (memory-only) instead of dying.
  const std::string clash = temp_dir("serve_cache_clash");
  std::ofstream(clash) << "not a directory";
  obs::Registry reg;
  ResultCache cache({.capacity = 4, .dir = clash}, reg);
  cache.insert(1, "a");
  EXPECT_TRUE(cache.lookup(1).has_value());
  fs::remove(clash);
}

TEST(ResultCache, MemoryEvictionNeverTouchesDisk) {
  // The disk tier is the durable design-point library; the LRU bounds
  // only RAM. Evicted entries must still be there after a restart.
  const std::string dir = temp_dir("serve_cache_durable");
  {
    obs::Registry reg;
    ResultCache cache({.capacity = 2, .dir = dir, .shards = 1}, reg);
    cache.insert(1, "a");
    cache.insert(2, "b");
    cache.insert(3, "c");  // evicts 1 from memory
    EXPECT_FALSE(cache.lookup(1).has_value());
  }
  obs::Registry reg2;
  ResultCache reloaded({.capacity = 16, .dir = dir, .shards = 1}, reg2);
  EXPECT_TRUE(reloaded.lookup(1).has_value());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace flopsim::serve
