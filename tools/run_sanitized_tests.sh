#!/bin/sh
# Build the full tree with a sanitizer and run the test suite under it.
#
#   SAN=undefined tools/run_sanitized_tests.sh   (default)
#   SAN=address   tools/run_sanitized_tests.sh
#
# Uses a separate build directory (build-$SAN) so the normal build stays
# untouched.
set -eu

SAN="${SAN:-undefined}"
case "$SAN" in
  address|undefined) ;;
  *) echo "error: SAN must be 'address' or 'undefined', got '$SAN'" >&2
     exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-$SAN"

cmake -B "$BUILD" -S "$ROOT" -DFLOPSIM_SANITIZE="$SAN"
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"
