#!/bin/sh
# Build the full tree with a sanitizer and run the test suite under it.
#
#   SAN=undefined tools/run_sanitized_tests.sh   (default)
#   SAN=address   tools/run_sanitized_tests.sh
#   SAN=thread    tools/run_sanitized_tests.sh
#
# thread is special-cased: TSan only pays off on code that actually runs
# threads, and the full suite under it is painfully slow — so it builds the
# tree with -fsanitize=thread but runs only the `tsan`-labelled suites (the
# exec pool tests plus the campaign determinism suite) with enough workers
# to exercise the parallel trial loops.
#
# Uses a separate build directory (build-$SAN) so the normal build stays
# untouched.
set -eu

SAN="${SAN:-undefined}"
case "$SAN" in
  address|undefined|thread) ;;
  *) echo "error: SAN must be 'address', 'undefined' or 'thread'," \
          "got '$SAN'" >&2
     exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-$SAN"

cmake -B "$BUILD" -S "$ROOT" -DFLOPSIM_SANITIZE="$SAN"
cmake --build "$BUILD" -j "$(nproc)"
if [ "$SAN" = thread ]; then
  FLOPSIM_THREADS=4 ctest --test-dir "$BUILD" --output-on-failure \
    -L tsan -j "$(nproc)"
else
  ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"
  # The datapath lint gate under the same sanitizer: the probe executes
  # every piece eval, so UBSan/ASan sweep the whole unit zoo here too.
  "$BUILD/tools/flopsim-lint" --fast
fi
