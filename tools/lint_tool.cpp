// flopsim-lint: the datapath lint gate over the generated-core zoo.
//
// With no positional arguments it sweeps every unit kind at every paper
// precision and lints each at its min / opt / max pipeline depth (the
// depths the paper actually fields), plus every format-converter pair —
// the pre-synthesis check CI runs before a unit ships. A single core can
// be linted the same way flopsim-gen names one.
//
// Usage:
//   flopsim-lint [--fast] [--notes] [--vectors=<n>] [--seed=<n>]
//                [--rules=<spec>] [--no-absint] [speed] [ieee] [fabric]
//                [--threads=<n>] [--json <path>]
//   flopsim-lint <add|mul|div|sqrt|mac> <16|32|48|64> [stages] [...]
//   flopsim-lint cvt <src-bits> <dst-bits> [stages]
//
// --fast skips the depth sweeps (lints depths {1, max} only) and drops to
// 8 stimulus vectors — the pre-commit loop. --rules= filters findings by
// rule ID or family ("DL201,DL4xx", '-' prefix excludes); an ID matching
// no known rule is a usage error. --no-absint disables the
// abstract-interpretation engine (probe-only linting; --absint restores
// the default). --json appends one JSON-lines finding per line plus a
// summary object (the CI artifact). Exit status: 0 clean, 1
// error-severity findings (or I/O failure), 2 bad arguments.
#include <cstdio>
#include <cstdlib>
#include <cctype>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "analysis/pareto.hpp"
#include "analysis/sweep.hpp"
#include "lint/lint.hpp"
#include "lint/report.hpp"
#include "obs/cli.hpp"
#include "units/converter_unit.hpp"
#include "units/fp_unit.hpp"

namespace {

using namespace flopsim;

void print_usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--fast] [--notes] [--vectors=<n>] [--seed=<n>] "
               "[--rules=<spec>] [--no-absint] [speed] [ieee] [fabric] "
               "[--threads=<n>] [--json <path>]\n"
               "       %s <add|mul|div|sqrt|mac> <16|32|48|64> [stages] "
               "[speed] [ieee] [fabric]\n"
               "       %s cvt <src-bits> <dst-bits> [stages]\n",
               prog, prog, prog);
}

fp::FpFormat format_of(const std::string& bits) {
  if (bits == "32") return fp::FpFormat::binary32();
  if (bits == "48") return fp::FpFormat::binary48();
  if (bits == "64") return fp::FpFormat::binary64();
  if (bits == "16") return fp::FpFormat::binary16();
  throw std::invalid_argument("unknown precision: " + bits);
}

int parse_stages(const std::string& tok) {
  const std::optional<long> n = obs::parse_int_arg(tok, 1, 10000);
  if (!n.has_value()) throw std::invalid_argument("bad stage count: " + tok);
  return static_cast<int>(*n);
}

units::UnitKind kind_of(const std::string& op) {
  if (op == "add") return units::UnitKind::kAdder;
  if (op == "mul") return units::UnitKind::kMultiplier;
  if (op == "div") return units::UnitKind::kDivider;
  if (op == "sqrt") return units::UnitKind::kSqrt;
  if (op == "mac") return units::UnitKind::kMac;
  throw std::invalid_argument("unknown operation: " + op);
}

struct ToolOptions {
  lint::Options lint;
  units::UnitConfig cfg;
  lint::RuleFilter rules;
  bool fast = false;
};

/// Consume the flags every mode shares. Positional tokens survive in
/// order; throws std::invalid_argument on a malformed value.
std::vector<std::string> take_flags(const std::vector<std::string>& rest,
                                    ToolOptions& opts) {
  std::vector<std::string> positional;
  for (const std::string& tok : rest) {
    if (tok == "--fast") {
      opts.fast = true;
      opts.lint.vectors = 8;
    } else if (tok == "--notes") {
      opts.lint.notes = true;
    } else if (tok == "--absint") {
      opts.lint.absint = true;
    } else if (tok == "--no-absint") {
      opts.lint.absint = false;
    } else if (tok.rfind("--rules=", 0) == 0) {
      // RuleFilter::parse throws on an unknown ID -> usage exit below.
      opts.rules = lint::RuleFilter::parse(tok.substr(8));
    } else if (tok.rfind("--vectors=", 0) == 0) {
      // atoi() accepted "--vectors=3x" as 3; the checked parse does not.
      const std::optional<long> n =
          obs::parse_int_arg(tok.substr(10), 1, 1 << 20);
      if (!n.has_value()) {
        throw std::invalid_argument("bad vector count: " + tok);
      }
      opts.lint.vectors = static_cast<int>(*n);
    } else if (tok.rfind("--seed=", 0) == 0) {
      const std::string value = tok.substr(7);
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("bad seed: " + tok);
      }
      opts.lint.seed =
          static_cast<std::uint64_t>(std::strtoull(value.c_str(), nullptr,
                                                   10));
    } else if (tok == "speed") {
      opts.cfg.objective = device::Objective::kSpeed;
    } else if (tok == "ieee") {
      opts.cfg.ieee_mode = true;
    } else if (tok == "fabric") {
      opts.cfg.use_embedded_multipliers = false;
    } else if (tok.rfind("--", 0) == 0) {
      throw std::invalid_argument("unknown flag: " + tok);
    } else {
      positional.push_back(tok);
    }
  }
  return positional;
}

struct Tally {
  lint::Report all;
  int subjects = 0;

  void fold(const lint::Report& r) {
    lint::Report copy = r;
    all.merge(std::move(copy));
    ++subjects;
  }
};

void lint_one_unit(units::UnitKind kind, fp::FpFormat fmt, int stages,
                   const ToolOptions& opts, Tally& tally) {
  units::UnitConfig cfg = opts.cfg;
  cfg.stages = stages;
  const units::FpUnit unit(kind, fmt, cfg);
  tally.fold(lint::lint_unit(unit, opts.lint));
}

void lint_one_cvt(fp::FpFormat src, fp::FpFormat dst, int stages,
                  const ToolOptions& opts, Tally& tally) {
  units::UnitConfig cfg = opts.cfg;
  cfg.stages = stages;
  const units::FormatConverter cvt(src, dst, cfg);
  tally.fold(lint::lint_converter(cvt, opts.lint));
}

/// The CI gate: every kind x paper precision at its min/opt/max depth
/// (--fast: depths {1, max} with no sweep), plus every converter pair.
int sweep_zoo(const ToolOptions& opts, int threads, Tally& tally) {
  static constexpr units::UnitKind kKinds[] = {
      units::UnitKind::kAdder, units::UnitKind::kMultiplier,
      units::UnitKind::kDivider, units::UnitKind::kSqrt,
      units::UnitKind::kMac};
  int cores = 0;
  for (units::UnitKind kind : kKinds) {
    for (const fp::FpFormat& fmt : analysis::paper_formats()) {
      std::set<int> depths;
      if (opts.fast) {
        units::UnitConfig probe_cfg = opts.cfg;
        probe_cfg.stages = 1;
        const units::FpUnit probe(kind, fmt, probe_cfg);
        depths = {1, probe.max_stages()};
      } else {
        const analysis::SweepResult sweep = analysis::sweep_unit(
            kind, fmt, opts.cfg.objective, opts.cfg.tech, threads);
        const analysis::Selection sel = analysis::select_min_max_opt(sweep);
        depths = {sel.min.stages, sel.opt.stages, sel.max.stages};
      }
      for (int d : depths) {
        lint_one_unit(kind, fmt, d, opts, tally);
        ++cores;
      }
    }
  }
  for (const fp::FpFormat& src : analysis::paper_formats()) {
    for (const fp::FpFormat& dst : analysis::paper_formats()) {
      if (src.total_bits() == dst.total_bits()) continue;
      units::UnitConfig probe_cfg = opts.cfg;
      probe_cfg.stages = 1;
      const units::FormatConverter probe(src, dst, probe_cfg);
      for (int d : std::set<int>{1, probe.max_stages()}) {
        lint_one_cvt(src, dst, d, opts, tally);
        ++cores;
      }
    }
  }
  return cores;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flopsim;
  const obs::CliArgs cli = obs::parse_cli(argc, argv);
  if (!cli.ok()) {
    std::fprintf(stderr, "error: bad argument: %s\n", cli.error.c_str());
    print_usage(argv[0]);
    return obs::kExitUsage;
  }
  // The lint gate has no campaign and finishes in seconds: every
  // resilience flag is a usage error here.
  if (cli.wants_resilience()) {
    std::fprintf(stderr,
                 "error: --checkpoint=/--resume/--time-budget=/"
                 "--trial-budget=/--stop-halfwidth= only apply to campaign "
                 "benches\n");
    print_usage(argv[0]);
    return obs::kExitUsage;
  }
  try {
    ToolOptions opts;
    const std::vector<std::string> positional = take_flags(cli.rest, opts);

    Tally tally;
    if (positional.empty()) {
      const int cores = sweep_zoo(opts, cli.threads, tally);
      std::printf("linted %d cores (%d subjects)\n", cores, tally.subjects);
    } else if (positional[0] == "cvt") {
      if (positional.size() < 3) {
        throw std::invalid_argument("cvt needs <src> <dst>");
      }
      const int stages =
          positional.size() > 3 ? parse_stages(positional[3]) : 1;
      lint_one_cvt(format_of(positional[1]), format_of(positional[2]), stages,
                   opts, tally);
    } else {
      if (positional.size() < 2) {
        throw std::invalid_argument("need <op> <bits>");
      }
      const units::UnitKind kind = kind_of(positional[0]);
      const fp::FpFormat fmt = format_of(positional[1]);
      const int stages =
          positional.size() > 2 ? parse_stages(positional[2]) : 1;
      lint_one_unit(kind, fmt, stages, opts, tally);
    }

    lint::apply_rule_filter(tally.all, opts.rules);
    lint::write_text(std::cout, tally.all, opts.lint.notes);
    if (opts.lint.absint) {
      // CI greps this line: both numbers equal means the sandwich held on
      // every linted subject (no chain fell back to probe-only).
      std::printf("absint sandwich: %d/%d subjects covered\n",
                  tally.all.absint_subjects, tally.subjects);
    }
    if (!cli.json_path.empty()) {
      std::ofstream out(cli.json_path, std::ios::app);
      if (!out) {
        std::fprintf(stderr, "error: could not write %s\n",
                     cli.json_path.c_str());
        return obs::kExitRuntime;
      }
      lint::write_jsonl(out, tally.all, opts.lint.notes);
    }
    return tally.all.clean() ? obs::kExitOk : obs::kExitRuntime;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    print_usage(argv[0]);
    return obs::kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return obs::kExitRuntime;
  }
}
