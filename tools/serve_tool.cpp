// flopsim-serve: the long-running design-space evaluation service.
//
// ROADMAP's "production-scale serving" direction: instead of one process
// per design-point query (flopsim-gen), a resident server answers JSONL
// requests over a Unix-domain or loopback-TCP socket, memoizing every
// plan/campaign response in a content-addressed cache (serve/cache.hpp)
// so repeated design points cost microseconds instead of re-simulation.
//
// Subcommands:
//   serve     --unix=<path> | --port=<n>  [--workers=<n>] [--queue=<n>]
//             [--cache-capacity=<n>] [--cache-dir=<dir>] [--cache-shards=<n>]
//             [--threads=<n>] [--backend=<b>] [--metrics=<path>]
//             [--trace=<path>] [--access-log=<path>] [--slow-log=<path>]
//             [--slow-ms=<n>]
//             run the server until a shutdown request or SIGINT/SIGTERM.
//             --access-log= appends one JSONL line per request (trace id,
//             status, cache hit/miss, phase timings); --slow-log= dumps
//             the span tree of requests slower than --slow-ms= (0, the
//             default, captures every request).
//   eval      <requests.jsonl>  [--cache-capacity=] [--cache-dir=]
//             [--access-log=] [--slow-log=] [--slow-ms=] ...
//             no-socket batch mode: evaluate each request line through the
//             same Service and print the response lines to stdout.
//   replay    <requests.jsonl> --unix=|--port= [--out=<path>]
//             [--summary=<path>] [--metrics=<path>] [--trace=<path>]
//             send each line synchronously, one response per request, and
//             record per-request latency; --summary= writes a JSON object
//             with the median/mean microseconds (the CI cache-speedup
//             check reads it). --metrics= dumps the client-side latency
//             histogram; --trace= spans each request round trip.
//   metrics   --unix=|--port= [--prom]
//             print the server's /metrics-style response; --prom asks for
//             and unwraps the Prometheus text exposition.
//   shutdown  --unix=|--port=   ask the server to stop.
//
// Per-request status codes reuse the process exit taxonomy (obs/cli.hpp):
// 0 ok, 1 evaluation failure, 2 malformed request, 75 rejected by
// backpressure. The tool itself exits 0/1/2 the same way.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exec/cancel.hpp"
#include "obs/cli.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/telemetry.hpp"

namespace {

using namespace flopsim;

void print_usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s serve    --unix=<path>|--port=<n> [--workers=<n>] "
      "[--queue=<n>]\n"
      "                        [--cache-capacity=<n>] [--cache-dir=<dir>] "
      "[--cache-shards=<n>]\n"
      "                        [--threads=<n>] [--backend=<b>] "
      "[--metrics=<path>] [--trace=<path>]\n"
      "                        [--access-log=<path>] [--slow-log=<path>] "
      "[--slow-ms=<n>]\n"
      "       %s eval     <requests.jsonl> [cache/telemetry flags as "
      "above]\n"
      "       %s replay   <requests.jsonl> --unix=<path>|--port=<n> "
      "[--out=<path>] [--summary=<path>]\n"
      "                        [--metrics=<path>] [--trace=<path>]\n"
      "       %s metrics  --unix=<path>|--port=<n> [--prom]\n"
      "       %s shutdown --unix=<path>|--port=<n>\n",
      prog, prog, prog, prog, prog);
}

struct ServeFlags {
  std::string unix_path;
  int port = 0;
  int workers = 2;
  long queue = 64;
  long cache_capacity = 4096;
  std::string cache_dir;
  long cache_shards = 4;
  std::string out_path;
  std::string summary_path;
  std::string access_log;
  std::string slow_log;
  long slow_ms = 0;
  bool prom = false;
  std::vector<std::string> positional;

  serve::TelemetryConfig telemetry() const {
    serve::TelemetryConfig tc;
    tc.access_log_path = access_log;
    tc.slow_log_path = slow_log;
    tc.slow_ms = static_cast<double>(slow_ms);
    return tc;
  }
};

/// Parse the serve-specific tokens out of parse_cli's `rest`. Throws
/// std::invalid_argument on malformed values or unknown flags.
ServeFlags take_serve_flags(const std::vector<std::string>& rest) {
  ServeFlags f;
  const auto int_flag = [](const std::string& tok, std::size_t prefix,
                           long min, long max) -> long {
    const std::optional<long> n =
        obs::parse_int_arg(tok.substr(prefix), min, max);
    if (!n.has_value()) throw std::invalid_argument("bad value: " + tok);
    return *n;
  };
  for (std::size_t i = 1; i < rest.size(); ++i) {
    const std::string& tok = rest[i];
    if (tok.rfind("--unix=", 0) == 0) {
      f.unix_path = tok.substr(7);
      if (f.unix_path.empty()) throw std::invalid_argument("empty --unix=");
    } else if (tok.rfind("--port=", 0) == 0) {
      f.port = static_cast<int>(int_flag(tok, 7, 1, 65535));
    } else if (tok.rfind("--workers=", 0) == 0) {
      f.workers = static_cast<int>(int_flag(tok, 10, 1, 256));
    } else if (tok.rfind("--queue=", 0) == 0) {
      f.queue = int_flag(tok, 8, 1, 1 << 20);
    } else if (tok.rfind("--cache-capacity=", 0) == 0) {
      f.cache_capacity = int_flag(tok, 17, 1, 1 << 28);
    } else if (tok.rfind("--cache-dir=", 0) == 0) {
      f.cache_dir = tok.substr(12);
    } else if (tok.rfind("--cache-shards=", 0) == 0) {
      f.cache_shards = int_flag(tok, 15, 1, 256);
    } else if (tok.rfind("--out=", 0) == 0) {
      f.out_path = tok.substr(6);
    } else if (tok.rfind("--summary=", 0) == 0) {
      f.summary_path = tok.substr(10);
    } else if (tok.rfind("--access-log=", 0) == 0) {
      f.access_log = tok.substr(13);
      if (f.access_log.empty()) {
        throw std::invalid_argument("empty --access-log=");
      }
    } else if (tok.rfind("--slow-log=", 0) == 0) {
      f.slow_log = tok.substr(11);
      if (f.slow_log.empty()) throw std::invalid_argument("empty --slow-log=");
    } else if (tok.rfind("--slow-ms=", 0) == 0) {
      f.slow_ms = int_flag(tok, 10, 0, 1L << 30);
    } else if (tok == "--prom") {
      f.prom = true;
    } else if (tok.rfind("--", 0) == 0) {
      throw std::invalid_argument("unknown flag: " + tok);
    } else {
      f.positional.push_back(tok);
    }
  }
  return f;
}

serve::ResultCache make_cache(const ServeFlags& f, obs::Registry& reg) {
  serve::CacheConfig cc;
  cc.capacity = static_cast<std::size_t>(f.cache_capacity);
  cc.dir = f.cache_dir;
  cc.shards = static_cast<int>(f.cache_shards);
  return serve::ResultCache(cc, reg);
}

int run_serve(const obs::CliArgs& cli, const ServeFlags& f) {
  if (f.unix_path.empty() && f.port == 0) {
    throw std::invalid_argument("serve needs --unix= or --port=");
  }
  obs::Registry& reg = obs::Registry::global();
  serve::ResultCache cache = make_cache(f, reg);
  serve::ServiceConfig sc;
  sc.threads = cli.threads == 0 ? 1 : cli.threads;
  sc.backend = cli.backend;
  serve::Service service(sc, &cache, reg);
  serve::ServerConfig srv;
  srv.unix_path = f.unix_path;
  srv.port = f.port;
  srv.workers = f.workers;
  srv.queue_capacity = static_cast<std::size_t>(f.queue);
  srv.telemetry = f.telemetry();
  serve::Server server(srv, service);
  if (!server.telemetry().ok()) {
    std::fprintf(stderr, "error: could not open telemetry log\n");
    return obs::kExitRuntime;
  }
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return obs::kExitRuntime;
  }
  // SIGINT/SIGTERM land in the global cancel token (the campaign
  // machinery's signal path); a watcher forwards them to the server.
  exec::install_signal_handlers();
  std::thread watcher([&server] {
    while (!exec::global_cancel_token().cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server.request_stop();
  });
  std::fprintf(stderr, "flopsim-serve: listening on %s\n",
               f.unix_path.empty()
                   ? ("127.0.0.1:" + std::to_string(f.port)).c_str()
                   : f.unix_path.c_str());
  server.run();
  // Unblock the watcher if shutdown came from a request, not a signal.
  exec::global_cancel_token().request(exec::CancelToken::Reason::kOther);
  watcher.join();
  if (!obs::flush_observability(cli)) return obs::kExitRuntime;
  return obs::kExitOk;
}

int run_eval(const obs::CliArgs& cli, const ServeFlags& f) {
  if (f.positional.empty()) {
    throw std::invalid_argument("eval needs a requests file");
  }
  std::ifstream in(f.positional[0]);
  if (!in) {
    std::fprintf(stderr, "error: could not read %s\n",
                 f.positional[0].c_str());
    return obs::kExitRuntime;
  }
  obs::Registry& reg = obs::Registry::global();
  serve::ResultCache cache = make_cache(f, reg);
  serve::ServiceConfig sc;
  sc.threads = cli.threads == 0 ? 1 : cli.threads;
  sc.backend = cli.backend;
  serve::Service service(sc, &cache, reg);
  serve::Telemetry telemetry(f.telemetry(), reg);
  if (!telemetry.ok()) {
    std::fprintf(stderr, "error: could not open telemetry log\n");
    return obs::kExitRuntime;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::printf("%s\n", service.handle_line(line, &telemetry).c_str());
  }
  if (!obs::flush_observability(cli)) return obs::kExitRuntime;
  return obs::kExitOk;
}

int run_replay(const obs::CliArgs& cli, const ServeFlags& f) {
  if (f.positional.empty()) {
    throw std::invalid_argument("replay needs a requests file");
  }
  if (f.unix_path.empty() && f.port == 0) {
    throw std::invalid_argument("replay needs --unix= or --port=");
  }
  std::ifstream in(f.positional[0]);
  if (!in) {
    std::fprintf(stderr, "error: could not read %s\n",
                 f.positional[0].c_str());
    return obs::kExitRuntime;
  }
  serve::Client client;
  std::string error;
  if (!client.connect(f.unix_path, f.port, 5.0, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return obs::kExitRuntime;
  }
  std::ofstream out;
  if (!f.out_path.empty()) {
    out.open(f.out_path);
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n",
                   f.out_path.c_str());
      return obs::kExitRuntime;
    }
  }
  // --metrics= support: the client-side round-trip latency histogram
  // (same bucket grid as the server's per-request latency metric).
  obs::Histogram& lat_hist = obs::Registry::global().histogram(
      "replay.latency_us",
      {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000,
       250000, 500000, 1000000});
  std::vector<double> latencies_us;
  const auto wall0 = std::chrono::steady_clock::now();
  std::string line;
  std::string response;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto t0 = std::chrono::steady_clock::now();
    {
      // --trace= support: one span per request round trip.
      auto span = obs::Tracer::global().span(
          "request", "replay",
          {{"n", static_cast<long>(latencies_us.size())}});
      if (!client.send_line(line) || !client.recv_line(&response)) {
        std::fprintf(stderr, "error: server connection lost mid-replay\n");
        return obs::kExitRuntime;
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    lat_hist.observe(us);
    latencies_us.push_back(us);
    if (out.is_open()) {
      out << response << "\n";
    } else {
      std::printf("%s\n", response.c_str());
    }
  }
  const auto wall1 = std::chrono::steady_clock::now();
  if (latencies_us.empty()) {
    std::fprintf(stderr, "error: no requests in %s\n",
                 f.positional[0].c_str());
    return obs::kExitRuntime;
  }
  std::vector<double> sorted = latencies_us;
  std::sort(sorted.begin(), sorted.end());
  const double median_us = sorted[sorted.size() / 2];
  double sum = 0.0;
  for (double v : sorted) sum += v;
  obs::JsonObject summary;
  summary.field("requests", static_cast<long>(latencies_us.size()))
      .field("median_us", median_us)
      .field("mean_us", sum / static_cast<double>(sorted.size()))
      .field("min_us", sorted.front())
      .field("max_us", sorted.back())
      .field("wall_ms",
             std::chrono::duration<double, std::milli>(wall1 - wall0)
                 .count());
  if (!f.summary_path.empty()) {
    std::ofstream sout(f.summary_path);
    if (!sout) {
      std::fprintf(stderr, "error: could not write %s\n",
                   f.summary_path.c_str());
      return obs::kExitRuntime;
    }
    sout << summary.str() << "\n";
  } else {
    std::fprintf(stderr, "replay: %s\n", summary.str().c_str());
  }
  if (!obs::flush_observability(cli)) return obs::kExitRuntime;
  return obs::kExitOk;
}

std::optional<std::string> one_request(const ServeFlags& f,
                                       const std::string& request) {
  if (f.unix_path.empty() && f.port == 0) {
    throw std::invalid_argument("need --unix= or --port=");
  }
  serve::Client client;
  std::string error;
  if (!client.connect(f.unix_path, f.port, 5.0, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return std::nullopt;
  }
  std::string response;
  if (!client.send_line(request) || !client.recv_line(&response)) {
    std::fprintf(stderr, "error: no response from server\n");
    return std::nullopt;
  }
  return response;
}

int run_one_request(const ServeFlags& f, const std::string& request) {
  const std::optional<std::string> response = one_request(f, request);
  if (!response.has_value()) return obs::kExitRuntime;
  std::printf("%s\n", response->c_str());
  return obs::kExitOk;
}

int run_metrics(const ServeFlags& f) {
  if (!f.prom) return run_one_request(f, "{\"type\": \"metrics\"}");
  const std::optional<std::string> response =
      one_request(f, "{\"type\": \"metrics\", \"format\": \"prometheus\"}");
  if (!response.has_value()) return obs::kExitRuntime;
  // Unwrap result.text so the output is the raw text exposition, ready
  // for a Prometheus scraper (or a human) as-is.
  const std::optional<serve::JsonValue> parsed = serve::parse_json(*response);
  const serve::JsonValue* status =
      parsed.has_value() ? parsed->get("status") : nullptr;
  if (status == nullptr || !status->is_int() || status->as_int() != 0) {
    std::fprintf(stderr, "error: %s\n", response->c_str());
    return obs::kExitRuntime;
  }
  const serve::JsonValue* result = parsed->get("result");
  const serve::JsonValue* text =
      result != nullptr ? result->get("text") : nullptr;
  if (text == nullptr || !text->is_string()) {
    std::fprintf(stderr, "error: malformed metrics response\n");
    return obs::kExitRuntime;
  }
  std::printf("%s", text->as_string().c_str());
  return obs::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flopsim;
  const obs::CliArgs cli = obs::parse_cli(argc, argv);
  if (!cli.ok()) {
    std::fprintf(stderr, "error: bad argument: %s\n", cli.error.c_str());
    print_usage(argv[0]);
    return obs::kExitUsage;
  }
  if (cli.wants_resilience()) {
    std::fprintf(stderr,
                 "error: --checkpoint=/--resume/--time-budget=/"
                 "--trial-budget=/--stop-halfwidth= only apply to campaign "
                 "benches\n");
    print_usage(argv[0]);
    return obs::kExitUsage;
  }
  if (cli.rest.empty()) {
    print_usage(argv[0]);
    return obs::kExitUsage;
  }
  try {
    const std::string& cmd = cli.rest[0];
    const ServeFlags flags = take_serve_flags(cli.rest);
    obs::init_observability(cli);
    if (cmd == "serve") return run_serve(cli, flags);
    if (cmd == "eval") return run_eval(cli, flags);
    if (cmd == "replay") return run_replay(cli, flags);
    if (cmd == "metrics") return run_metrics(flags);
    if (cmd == "shutdown") {
      return run_one_request(flags, "{\"type\": \"shutdown\"}");
    }
    throw std::invalid_argument("unknown subcommand: " + cmd);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    print_usage(argv[0]);
    return obs::kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return obs::kExitRuntime;
  }
}
