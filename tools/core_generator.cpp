// flopsim-gen: a command-line floating-point core generator, in the spirit
// of the FPU generation tools the paper cites (Liang, Tessier & Mencer,
// FCCM'03). Prints a full "datasheet" for a requested core: the piece
// chain, the register placement at the requested depth, timing, area,
// power, and the depth sweep with the recommended (opt) configuration.
//
// Usage:
//   flopsim-gen <add|mul|div|sqrt|mac> <32|48|64> [stages] [area|speed]
//               [ieee] [fabric] [--harden=<parity|residue|dup|tmr|ecc>]
//               [--threads=<n>] [--vcd=<path>] [--metrics=<path>]
//               [--trace=<path>]
//   flopsim-gen cvt <src-bits> <dst-bits> [stages]
//
// --threads= sets the worker count for the depth sweep behind the opt
// recommendation (0/absent = auto via FLOPSIM_THREADS, then hardware
// concurrency); the sweep is bit-identical at any thread count.
// --backend= is accepted (and its value validated) for flag-compatibility
// with the campaign benches, but there is no Monte-Carlo campaign here so
// the choice has no effect on the datasheet.
// --vcd= drives a deterministic calibration workload through the core and
// dumps the stage-register waveform (GTKWave-loadable VCD); the same run
// feeds the pipeline occupancy metrics that --metrics= exports. Flag
// parsing is shared with the campaign benches (obs::parse_cli).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/pareto.hpp"
#include "analysis/report.hpp"
#include "analysis/sweep.hpp"
#include "exec/cancel.hpp"
#include "fault/campaign.hpp"
#include "fault/hardening.hpp"
#include "lint/lint.hpp"
#include "lint/report.hpp"
#include "obs/cli.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "power/unit_power.hpp"
#include "rtl/trace.hpp"
#include "units/converter_unit.hpp"

namespace {

using namespace flopsim;

void print_usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <add|mul|div|sqrt|mac> <16|32|48|64> [stages] "
               "[area|speed] [ieee] [fabric] [--lint] "
               "[--harden=<parity|residue|dup|tmr|ecc>] [--threads=<n>] "
               "[--backend=<interpreted|compiled|bitsliced>] "
               "[--vcd=<path>] [--metrics=<path>] [--trace=<path>]\n"
               "       %s cvt <src-bits> <dst-bits> [stages]\n",
               prog, prog);
}

fp::FpFormat format_of(const std::string& bits) {
  if (bits == "32") return fp::FpFormat::binary32();
  if (bits == "48") return fp::FpFormat::binary48();
  if (bits == "64") return fp::FpFormat::binary64();
  if (bits == "16") return fp::FpFormat::binary16();
  throw std::invalid_argument("unknown precision: " + bits);
}

void print_datasheet(const units::FpUnit& unit) {
  const rtl::Timing t = unit.timing();
  const rtl::AreaBreakdown a = unit.area();
  std::printf("%s\n", unit.name().c_str());
  std::printf("  stages       %d (max %d)\n", unit.stages(),
              unit.max_stages());
  std::printf("  clock        %.1f MHz (critical stage %d: %.2f ns)\n",
              t.freq_mhz, t.critical_stage, t.critical_ns);
  std::printf("  area         %s\n", a.total.to_string().c_str());
  std::printf("  registers    %d FFs (%d absorbed into logic slices)\n",
              a.pipeline_ffs, a.absorbed_ffs);
  std::printf("  freq/area    %.4f MHz/slice\n", unit.freq_per_area());
  std::printf("  power        %.1f mW @ 100 MHz\n\n",
              power::unit_power(unit, 100.0).total_mw());

  // Piece chain with the register placement.
  const rtl::PieceChain& pieces = unit.pieces();
  const rtl::PipelinePlan& plan = unit.plan();
  std::printf("  pipeline plan (|| = register):\n    ");
  int stage = 0;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (stage + 1 < plan.stages() &&
        static_cast<int>(i) == plan.stage_begin[stage + 1]) {
      std::printf("|| ");
      ++stage;
    }
    std::printf("%s ", pieces[i].name.c_str());
  }
  std::printf("||\n\n");
}

/// Drive the calibration workload through a clone of `unit`, capturing the
/// waveform for --vcd= and folding the run's per-stage occupancy into the
/// metrics registry for --metrics=. Skipped when neither flag is given.
int run_capture_workload(const units::FpUnit& unit, const obs::CliArgs& cli) {
  if (cli.vcd_path.empty() && cli.metrics_path.empty()) return 0;
  auto span = obs::Tracer::global().span("capture_workload", "tool");
  constexpr int kVectors = 32;
  units::FpUnit probe = unit.clone();
  const std::vector<units::UnitInput> workload = fault::campaign_workload(
      probe.kind(), probe.format(), kVectors, /*seed=*/1);
  rtl::TraceRecorder recorder;
  const int total = kVectors + probe.latency() + 2;
  for (int t = 0; t < total; ++t) {
    if (t < kVectors) {
      probe.step(workload[static_cast<std::size_t>(t)]);
    } else {
      probe.step(std::nullopt);
    }
    if (!cli.vcd_path.empty()) recorder.capture(probe.sim());
  }
  obs::record_unit_occupancy(
      obs::Registry::global(),
      std::string("pipeline.") + units::to_string(probe.kind()) + "." +
          probe.format().name(),
      probe);
  if (!cli.vcd_path.empty()) {
    std::ofstream out(cli.vcd_path);
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n",
                   cli.vcd_path.c_str());
      return 1;
    }
    recorder.dump_vcd(out, "flopsim_gen");
    std::printf("  waveform     %s (%ld cycles)\n\n", cli.vcd_path.c_str(),
                recorder.cycles());
  }
  return 0;
}

int generate_arith(const obs::CliArgs& cli, const char* prog) {
  const std::vector<std::string>& args = cli.rest;
  const std::string& op = args[0];
  units::UnitKind kind;
  if (op == "add") {
    kind = units::UnitKind::kAdder;
  } else if (op == "mul") {
    kind = units::UnitKind::kMultiplier;
  } else if (op == "div") {
    kind = units::UnitKind::kDivider;
  } else if (op == "sqrt") {
    kind = units::UnitKind::kSqrt;
  } else if (op == "mac") {
    kind = units::UnitKind::kMac;
  } else {
    throw std::invalid_argument("unknown operation: " + op);
  }
  const fp::FpFormat fmt = format_of(args[1]);

  units::UnitConfig cfg;
  std::optional<fault::Scheme> harden;
  bool run_lint = false;
  const bool explicit_stages =
      args.size() > 2 && std::isdigit(static_cast<unsigned char>(args[2][0]));
  if (explicit_stages) {
    // A digit-leading token is a stage count or a mistake — "3x" used to
    // atoi() to 3 silently; now it is a usage error.
    const std::optional<long> stages = obs::parse_int_arg(args[2], 1, 10000);
    if (!stages.has_value()) {
      throw std::invalid_argument("bad stage count: " + args[2]);
    }
    cfg.stages = static_cast<int>(*stages);
  }
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--lint") {
      run_lint = true;
    } else if (args[i] == "speed") {
      cfg.objective = device::Objective::kSpeed;
    } else if (args[i] == "area") {
      cfg.objective = device::Objective::kArea;
    } else if (args[i] == "ieee") {
      cfg.ieee_mode = true;  // denormal + NaN hardware
    } else if (args[i] == "fabric") {
      cfg.use_embedded_multipliers = false;  // LUT mantissa multiplier
    } else if (args[i].rfind("--harden=", 0) == 0) {
      harden = fault::try_parse_scheme(args[i].substr(9));
      if (!harden.has_value()) {
        std::fprintf(stderr, "error: unknown hardening scheme: %s\n",
                     args[i].c_str() + 9);
        print_usage(prog);
        return obs::kExitUsage;
      }
    } else if (i == 2 && explicit_stages) {
      // already consumed as the stage count
    } else {
      throw std::invalid_argument("unknown argument: " + args[i]);
    }
  }

  // If no stage count given, recommend the freq/area optimum.
  const analysis::SweepResult sweep = analysis::sweep_unit(
      kind, fmt, cfg.objective, device::TechModel::virtex2pro7(),
      cli.threads, &exec::global_cancel_token());
  const analysis::Selection sel = analysis::select_min_max_opt(sweep);
  if (cfg.stages == 1 && !explicit_stages) {
    cfg.stages = sel.opt.stages;
    std::printf("(no depth given: using the freq/area optimum, %d stages)\n\n",
                cfg.stages);
  }

  const units::FpUnit unit(kind, fmt, cfg);
  print_datasheet(unit);
  const int capture_rc = run_capture_workload(unit, cli);
  if (capture_rc != 0) return capture_rc;

  int lint_rc = 0;
  if (run_lint) {
    const lint::Report report = lint::lint_unit(unit);
    std::printf("  lint:\n");
    std::ostringstream lint_out;
    lint::write_text(lint_out, report);
    std::printf("%s\n", lint_out.str().c_str());
    if (!report.clean()) lint_rc = 1;
  }

  if (harden.has_value()) {
    const fault::HardeningCost h = fault::hardening_cost(unit, *harden);
    std::printf("  hardened (%s):\n", fault::to_string(*harden));
    std::printf("    area       %s (x%.2f)\n", h.total.to_string().c_str(),
                h.area_factor);
    std::printf("    clock      %.1f MHz (x%.2f)\n", h.freq_mhz,
                h.freq_factor);
    std::printf("    power      %.1f mW @ 100 MHz (x%.2f)\n", h.power_mw_100,
                h.power_factor);
    std::printf("    latency    +%d cycle(s)\n\n", h.extra_latency_cycles);
  }

  std::printf("  depth sweep: min s=%d %.0fMHz/%dsl | opt s=%d %.0fMHz/%dsl "
              "| max s=%d %.0fMHz/%dsl\n",
              sel.min.stages, sel.min.freq_mhz, sel.min.area.slices,
              sel.opt.stages, sel.opt.freq_mhz, sel.opt.area.slices,
              sel.max.stages, sel.max.freq_mhz, sel.max.area.slices);
  return lint_rc;
}

int generate_cvt(const std::vector<std::string>& args) {
  if (args.size() < 3) throw std::invalid_argument("cvt needs <src> <dst>");
  if (args.size() > 4) {
    throw std::invalid_argument("unknown argument: " + args[4]);
  }
  const fp::FpFormat src = format_of(args[1]);
  const fp::FpFormat dst = format_of(args[2]);
  units::UnitConfig cfg;
  if (args.size() > 3) {
    const std::optional<long> stages = obs::parse_int_arg(args[3], 1, 10000);
    if (!stages.has_value()) {
      throw std::invalid_argument("bad stage count: " + args[3]);
    }
    cfg.stages = static_cast<int>(*stages);
  }
  const units::FormatConverter cvt(src, dst, cfg);
  const rtl::Timing t = cvt.timing();
  std::printf("%s\n", cvt.name().c_str());
  std::printf("  stages     %d (max %d)\n", cvt.stages(), cvt.max_stages());
  std::printf("  clock      %.1f MHz (critical %.2f ns)\n", t.freq_mhz,
              t.critical_ns);
  std::printf("  area       %s\n", cvt.area().total.to_string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flopsim;
  const obs::CliArgs cli = obs::parse_cli(argc, argv);
  if (!cli.ok()) {
    std::fprintf(stderr, "error: bad argument: %s\n", cli.error.c_str());
    print_usage(argv[0]);
    return obs::kExitUsage;
  }
  // No Monte-Carlo campaign here, so there is nothing to checkpoint or
  // sample-bound; only the wall-clock budget applies (to the depth sweep).
  if (!cli.checkpoint_dir.empty() || cli.resume || cli.trial_budget > 0 ||
      cli.stop_half_width > 0.0) {
    std::fprintf(stderr,
                 "error: --checkpoint=/--resume/--trial-budget=/"
                 "--stop-halfwidth= only apply to campaign benches\n");
    print_usage(argv[0]);
    return obs::kExitUsage;
  }
  if (cli.rest.size() < 2) {
    print_usage(argv[0]);
    return obs::kExitUsage;
  }
  obs::init_observability(cli);
  exec::install_signal_handlers();
  if (cli.time_budget_s > 0.0) {
    exec::global_cancel_token().set_deadline_after(cli.time_budget_s);
  }
  try {
    int rc;
    if (cli.rest[0] == "cvt") {
      rc = generate_cvt(cli.rest);
    } else {
      rc = generate_arith(cli, argv[0]);
    }
    if (rc == 0 && !obs::flush_observability(cli)) rc = obs::kExitRuntime;
    return rc;
  } catch (const exec::Interrupted& e) {
    std::fprintf(stderr, "interrupted (%s): depth sweep abandoned\n",
                 exec::to_string(e.reason));
    return obs::kExitInterrupted;
  } catch (const std::invalid_argument& e) {
    // Bad op/precision/scheme names land here: report, show usage, exit 2.
    std::fprintf(stderr, "error: %s\n", e.what());
    print_usage(argv[0]);
    return obs::kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return obs::kExitRuntime;
  }
}
