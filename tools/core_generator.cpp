// flopsim-gen: a command-line floating-point core generator, in the spirit
// of the FPU generation tools the paper cites (Liang, Tessier & Mencer,
// FCCM'03). Prints a full "datasheet" for a requested core: the piece
// chain, the register placement at the requested depth, timing, area,
// power, and the depth sweep with the recommended (opt) configuration.
//
// Usage:
//   flopsim-gen <add|mul|div|sqrt|mac> <32|48|64> [stages] [area|speed]
//               [ieee] [fabric] [--harden=<parity|residue|dup|tmr|ecc>]
//               [--threads=<n>]
//   flopsim-gen cvt <src-bits> <dst-bits> [stages]
//
// --threads= sets the worker count for the depth sweep behind the opt
// recommendation (0/absent = auto via FLOPSIM_THREADS, then hardware
// concurrency); the sweep is bit-identical at any thread count.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "analysis/pareto.hpp"
#include "analysis/report.hpp"
#include "analysis/sweep.hpp"
#include "fault/hardening.hpp"
#include "power/unit_power.hpp"
#include "units/converter_unit.hpp"

namespace {

using namespace flopsim;

void print_usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <add|mul|div|sqrt|mac> <16|32|48|64> [stages] "
               "[area|speed] [ieee] [fabric] "
               "[--harden=<parity|residue|dup|tmr|ecc>] [--threads=<n>]\n"
               "       %s cvt <src-bits> <dst-bits> [stages]\n",
               prog, prog);
}

fp::FpFormat format_of(const std::string& bits) {
  if (bits == "32") return fp::FpFormat::binary32();
  if (bits == "48") return fp::FpFormat::binary48();
  if (bits == "64") return fp::FpFormat::binary64();
  if (bits == "16") return fp::FpFormat::binary16();
  throw std::invalid_argument("unknown precision: " + bits);
}

void print_datasheet(const units::FpUnit& unit) {
  const rtl::Timing t = unit.timing();
  const rtl::AreaBreakdown a = unit.area();
  std::printf("%s\n", unit.name().c_str());
  std::printf("  stages       %d (max %d)\n", unit.stages(),
              unit.max_stages());
  std::printf("  clock        %.1f MHz (critical stage %d: %.2f ns)\n",
              t.freq_mhz, t.critical_stage, t.critical_ns);
  std::printf("  area         %s\n", a.total.to_string().c_str());
  std::printf("  registers    %d FFs (%d absorbed into logic slices)\n",
              a.pipeline_ffs, a.absorbed_ffs);
  std::printf("  freq/area    %.4f MHz/slice\n", unit.freq_per_area());
  std::printf("  power        %.1f mW @ 100 MHz\n\n",
              power::unit_power(unit, 100.0).total_mw());

  // Piece chain with the register placement.
  const rtl::PieceChain& pieces = unit.pieces();
  const rtl::PipelinePlan& plan = unit.plan();
  std::printf("  pipeline plan (|| = register):\n    ");
  int stage = 0;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (stage + 1 < plan.stages() &&
        static_cast<int>(i) == plan.stage_begin[stage + 1]) {
      std::printf("|| ");
      ++stage;
    }
    std::printf("%s ", pieces[i].name.c_str());
  }
  std::printf("||\n\n");
}

int generate_arith(const std::string& op, const std::string& bits, int argc,
                   char** argv) {
  units::UnitKind kind;
  if (op == "add") {
    kind = units::UnitKind::kAdder;
  } else if (op == "mul") {
    kind = units::UnitKind::kMultiplier;
  } else if (op == "div") {
    kind = units::UnitKind::kDivider;
  } else if (op == "sqrt") {
    kind = units::UnitKind::kSqrt;
  } else if (op == "mac") {
    kind = units::UnitKind::kMac;
  } else {
    throw std::invalid_argument("unknown operation: " + op);
  }
  const fp::FpFormat fmt = format_of(bits);

  units::UnitConfig cfg;
  std::optional<fault::Scheme> harden;
  int threads = 0;
  if (argc > 3 && std::isdigit(static_cast<unsigned char>(argv[3][0]))) {
    cfg.stages = std::atoi(argv[3]);
  }
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "speed") == 0) {
      cfg.objective = device::Objective::kSpeed;
    } else if (std::strcmp(argv[i], "ieee") == 0) {
      cfg.ieee_mode = true;  // denormal + NaN hardware
    } else if (std::strcmp(argv[i], "fabric") == 0) {
      cfg.use_embedded_multipliers = false;  // LUT mantissa multiplier
    } else if (std::strncmp(argv[i], "--harden=", 9) == 0) {
      harden = fault::try_parse_scheme(argv[i] + 9);
      if (!harden.has_value()) {
        std::fprintf(stderr, "error: unknown hardening scheme: %s\n",
                     argv[i] + 9);
        print_usage(argv[0]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const std::string v = argv[i] + 10;
      if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos ||
          std::atol(v.c_str()) < 1 || std::atol(v.c_str()) > 1024) {
        std::fprintf(stderr, "error: bad thread count: %s\n", v.c_str());
        print_usage(argv[0]);
        return 2;
      }
      threads = std::atoi(v.c_str());
    }
  }

  // If no stage count given, recommend the freq/area optimum.
  const analysis::SweepResult sweep = analysis::sweep_unit(
      kind, fmt, cfg.objective, device::TechModel::virtex2pro7(), threads);
  const analysis::Selection sel = analysis::select_min_max_opt(sweep);
  if (cfg.stages == 1 && (argc <= 3 ||
                          !std::isdigit(static_cast<unsigned char>(
                              argv[3][0])))) {
    cfg.stages = sel.opt.stages;
    std::printf("(no depth given: using the freq/area optimum, %d stages)\n\n",
                cfg.stages);
  }

  const units::FpUnit unit(kind, fmt, cfg);
  print_datasheet(unit);

  if (harden.has_value()) {
    const fault::HardeningCost h = fault::hardening_cost(unit, *harden);
    std::printf("  hardened (%s):\n", fault::to_string(*harden));
    std::printf("    area       %s (x%.2f)\n", h.total.to_string().c_str(),
                h.area_factor);
    std::printf("    clock      %.1f MHz (x%.2f)\n", h.freq_mhz,
                h.freq_factor);
    std::printf("    power      %.1f mW @ 100 MHz (x%.2f)\n", h.power_mw_100,
                h.power_factor);
    std::printf("    latency    +%d cycle(s)\n\n", h.extra_latency_cycles);
  }

  std::printf("  depth sweep: min s=%d %.0fMHz/%dsl | opt s=%d %.0fMHz/%dsl "
              "| max s=%d %.0fMHz/%dsl\n",
              sel.min.stages, sel.min.freq_mhz, sel.min.area.slices,
              sel.opt.stages, sel.opt.freq_mhz, sel.opt.area.slices,
              sel.max.stages, sel.max.freq_mhz, sel.max.area.slices);
  return 0;
}

int generate_cvt(int argc, char** argv) {
  if (argc < 4) throw std::invalid_argument("cvt needs <src> <dst>");
  const fp::FpFormat src = format_of(argv[2]);
  const fp::FpFormat dst = format_of(argv[3]);
  units::UnitConfig cfg;
  if (argc > 4) cfg.stages = std::atoi(argv[4]);
  const units::FormatConverter cvt(src, dst, cfg);
  const rtl::Timing t = cvt.timing();
  std::printf("%s\n", cvt.name().c_str());
  std::printf("  stages     %d (max %d)\n", cvt.stages(), cvt.max_stages());
  std::printf("  clock      %.1f MHz (critical %.2f ns)\n", t.freq_mhz,
              t.critical_ns);
  std::printf("  area       %s\n", cvt.area().total.to_string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    print_usage(argv[0]);
    return 2;
  }
  try {
    if (std::strcmp(argv[1], "cvt") == 0) return generate_cvt(argc, argv);
    return generate_arith(argv[1], argv[2], argc, argv);
  } catch (const std::invalid_argument& e) {
    // Bad op/precision/scheme names land here: report, show usage, exit 2.
    std::fprintf(stderr, "error: %s\n", e.what());
    print_usage(argv[0]);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
