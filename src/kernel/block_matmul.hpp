// Block matrix multiplication on a b-PE linear array.
//
// The paper (after [5]) handles problems larger than the array with block
// decomposition: C is computed as (n/b)^2 tiles, each accumulating n/b
// block products on an array of b PEs. Block size b is the design parameter
// of Figure 6 — when b is smaller than the unit latency PL, each block
// phase is zero-padded and energy is wasted.
#pragma once

#include "kernel/matmul.hpp"

namespace flopsim::kernel {

struct BlockMatmulStats {
  int n = 0;
  int b = 0;
  Schedule block_schedule;      ///< schedule of one block product
  long block_products = 0;      ///< (n/b)^3
  long cycles = 0;              ///< total, all block products
  long mac_issues = 0;
  long padded_issues = 0;
  double padding_fraction = 0.0;
};

/// Analytic cost model of the blocked execution (validated against the
/// cycle-accurate run below).
BlockMatmulStats block_matmul_stats(int n, int b, int pl);

struct BlockMatmulRun {
  Matrix c;
  BlockMatmulStats stats;
  long hazards = 0;
};

/// Cycle-accurate blocked execution: every block product runs on the b-PE
/// array; tiles of C stay resident in the accumulators across the k-block
/// loop, so the accumulation order (k ascending) matches the unblocked
/// array and reference_gemm bit-for-bit. Requires b to divide n.
BlockMatmulRun block_matmul(const Matrix& a, const Matrix& b_mat, int b,
                            const PeConfig& cfg);

}  // namespace flopsim::kernel
