// The linear-array matrix-multiply schedule (Jang-Choi-Prasanna, FPT'02)
// with the paper's latency-hiding rules.
//
// For an n x n product on p = n PEs, PE j owns column j of C and, during
// phase k, the resident operand b[k][j]. Elements a[i][k] stream through
// the array systolically (PE j sees them j cycles after PE 0). Each phase
// runs the row index i through the inner loop; accumulator c[i][j] is
// revisited once per phase.
//
// Hazards: a revisit issued before the previous writeback lands reads stale
// data. With the PE handoff used here the dangerous window is the adder
// latency La ("there will be read-after-write hazards only if the matrix
// size is less than the number of pipeline stages"). The paper pads
// conservatively against the full unit latency PL = Lmul + Ladd: "the
// problem size should be greater than the sum of the adder and the
// multiplier latencies... For smaller problem sizes, zero padding has to be
// used". n_eff = max(n, PL); the padded fraction is pure energy waste.
#pragma once

namespace flopsim::kernel {

struct Schedule {
  int n = 0;      ///< problem size
  int pl = 0;     ///< padding threshold (PL = Lmul + Ladd)
  int n_eff = 0;  ///< padded inner-loop length: max(n, pl)

  /// Cycles of one phase (one k value).
  long phase_cycles() const { return n_eff; }
  /// Total cycles for the full product on p = n PEs: n phases, the systolic
  /// skew across the array, and the pipeline drain.
  long total_cycles() const {
    return static_cast<long>(n) * n_eff + (n - 1) + pl + 1;
  }
  /// MAC issues per PE (real + padded).
  long issues_per_pe() const { return static_cast<long>(n) * n_eff; }
  /// Padded (zero-operand) issues per PE — the wasted work.
  long padded_issues_per_pe() const {
    return static_cast<long>(n) * (n_eff - n);
  }
  /// Fraction of issues wasted on zero padding.
  double padding_fraction() const {
    return n_eff > 0 ? static_cast<double>(n_eff - n) / n_eff : 0.0;
  }
};

/// Build the schedule for problem size n with padding threshold pl.
Schedule make_schedule(int n, int pl);

}  // namespace flopsim::kernel
