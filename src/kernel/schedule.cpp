#include "kernel/schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace flopsim::kernel {

Schedule make_schedule(int n, int pl) {
  if (n <= 0) throw std::invalid_argument("Schedule: n must be positive");
  if (pl < 0) throw std::invalid_argument("Schedule: pl must be nonnegative");
  Schedule s;
  s.n = n;
  s.pl = pl;
  s.n_eff = std::max(n, pl);
  return s;
}

}  // namespace flopsim::kernel
