#include "kernel/mvm.hpp"

#include <stdexcept>

#include "fp/ops.hpp"

namespace flopsim::kernel {

LinearArrayMvm::LinearArrayMvm(int n, int p, const PeConfig& cfg)
    : n_(n), p_(p), cfg_(cfg) {
  if (n <= 0 || p <= 0 || n % p != 0) {
    throw std::invalid_argument("LinearArrayMvm: p must divide n");
  }
  PeConfig pe_cfg = cfg;
  const ProcessingElement probe(pe_cfg);
  pe_cfg.storage_rows =
      std::max(cfg.storage_rows, n / p + probe.total_latency() + 8);
  pes_.reserve(static_cast<std::size_t>(p));
  for (int j = 0; j < p; ++j) pes_.emplace_back(pe_cfg);
}

int LinearArrayMvm::pl() const { return pes_[0].total_latency(); }

MvmRun LinearArrayMvm::run(const Matrix& a, const std::vector<fp::u64>& x) {
  if (a.n != n_ || static_cast<int>(x.size()) != n_) {
    throw std::invalid_argument("LinearArrayMvm: operand size mismatch");
  }
  const int r = n_ / p_;
  const int r_eff = std::max(r, pl());

  for (auto& pe : pes_) pe.clear();

  MvmRun run;
  run.r_eff = r_eff;
  const long issue_span = static_cast<long>(n_) * r_eff;
  const long total = issue_span + (p_ - 1) + pl() + 1;
  for (long t = 0; t < total; ++t) {
    for (int j = 0; j < p_; ++j) {
      ProcessingElement& pe = pes_[static_cast<std::size_t>(j)];
      const long tj = t - j;  // systolic skew of the x stream
      std::optional<ProcessingElement::MacIssue> issue;
      if (tj >= 0 && tj < issue_span) {
        const int k = static_cast<int>(tj / r_eff);
        const int i = static_cast<int>(tj % r_eff);
        if (i < r) {
          issue = ProcessingElement::MacIssue{a.at(j * r + i, k), x[k], i};
        } else {
          issue = ProcessingElement::MacIssue{0, 0, i};
          ++run.padded_issues;
        }
        ++run.mac_issues;
      }
      pe.step(issue);
    }
  }
  run.cycles = total;

  run.y.assign(static_cast<std::size_t>(n_), 0);
  for (int j = 0; j < p_; ++j) {
    const ProcessingElement& pe = pes_[static_cast<std::size_t>(j)];
    if (!pe.drained()) {
      throw std::logic_error("LinearArrayMvm: pipeline not drained");
    }
    run.hazards += pe.hazards();
    run.flags |= pe.flags();
    for (int i = 0; i < r; ++i) {
      run.y[static_cast<std::size_t>(j * r + i)] = pe.acc(i);
    }
  }
  if (run.hazards > 0) {
    throw std::runtime_error("LinearArrayMvm: RAW hazard despite padding");
  }
  return run;
}

std::vector<fp::u64> reference_mvm(const Matrix& a,
                                   const std::vector<fp::u64>& x,
                                   fp::FpFormat fmt,
                                   fp::RoundingMode rounding) {
  const int n = a.n;
  std::vector<fp::u64> y(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    fp::FpEnv env = fp::FpEnv::paper(rounding);
    fp::FpValue acc = fp::make_zero(fmt);
    for (int k = 0; k < n; ++k) {
      const fp::FpValue prod = fp::mul(fp::FpValue(a.at(i, k), fmt),
                                       fp::FpValue(x[k], fmt), env);
      acc = fp::add(acc, prod, env);
    }
    y[static_cast<std::size_t>(i)] = acc.bits;
  }
  return y;
}

}  // namespace flopsim::kernel
