#include "kernel/pe.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fault/secded.hpp"

namespace flopsim::kernel {

units::UnitConfig PeConfig::adder_config() const {
  units::UnitConfig c;
  c.stages = adder_stages;
  c.rounding = rounding;
  c.objective = objective;
  c.tech = tech;
  return c;
}

units::UnitConfig PeConfig::mult_config() const {
  units::UnitConfig c = adder_config();
  c.stages = mult_stages;
  return c;
}

units::UnitConfig PeConfig::mac_config() const {
  units::UnitConfig c = adder_config();
  c.stages = adder_stages + mult_stages;
  return c;
}

ProcessingElement::ProcessingElement(const PeConfig& cfg)
    : cfg_(cfg),
      mult_(units::UnitKind::kMultiplier, cfg.fmt, cfg.mult_config()),
      adder_(units::UnitKind::kAdder, cfg.fmt, cfg.adder_config()),
      acc_(static_cast<std::size_t>(cfg.storage_rows), 0),
      acc_check_(cfg.ecc_accumulators
                     ? static_cast<std::size_t>(cfg.storage_rows)
                     : 0,
                 fault::secded_encode(0)),
      pending_writes_(static_cast<std::size_t>(cfg.storage_rows), 0) {
  if (cfg.storage_rows <= 0) {
    throw std::invalid_argument("PeConfig: storage_rows must be positive");
  }
  if (cfg.use_fused_mac) {
    mac_.emplace(units::UnitKind::kMac, cfg.fmt, cfg.mac_config());
  }
}

fp::u64 ProcessingElement::read_acc(int row) {
  const std::size_t r = static_cast<std::size_t>(row);
  if (!cfg_.ecc_accumulators) return acc_[r];
  const fault::SecdedDecode d = fault::secded_decode(acc_[r], acc_check_[r]);
  switch (d.status) {
    case fault::SecdedStatus::kClean:
      break;
    case fault::SecdedStatus::kCorrectedData:
    case fault::SecdedStatus::kCorrectedCheck:
      ++ecc_corrections_;
      acc_[r] = d.data;
      acc_check_[r] = d.check;
      break;
    case fault::SecdedStatus::kDoubleError:
      ++ecc_detections_;
      break;
  }
  return d.data;
}

void ProcessingElement::write_acc(int row, fp::u64 v) {
  const std::size_t r = static_cast<std::size_t>(row);
  acc_[r] = v;
  if (cfg_.ecc_accumulators) acc_check_[r] = fault::secded_encode(v);
}

fp::u64 ProcessingElement::acc(int row) const {
  const std::size_t r = static_cast<std::size_t>(row);
  if (!cfg_.ecc_accumulators) return acc_.at(r);
  const fault::SecdedDecode d =
      fault::secded_decode(acc_.at(r), acc_check_.at(r));
  switch (d.status) {
    case fault::SecdedStatus::kClean:
      break;
    case fault::SecdedStatus::kCorrectedData:
    case fault::SecdedStatus::kCorrectedCheck:
      ++ecc_corrections_;
      break;
    case fault::SecdedStatus::kDoubleError:
      ++ecc_detections_;
      break;
  }
  return d.data;
}

void ProcessingElement::set_acc(int row, fp::u64 v) {
  acc_.at(static_cast<std::size_t>(row)) = v;
  if (cfg_.ecc_accumulators) {
    acc_check_.at(static_cast<std::size_t>(row)) = fault::secded_encode(v);
  }
}

int ProcessingElement::total_latency() const {
  return mac_.has_value() ? mac_->latency()
                          : mult_.latency() + adder_.latency();
}

void ProcessingElement::step(const std::optional<MacIssue>& issue) {
  if (mac_.has_value()) {
    // Fused datapath: acc[row] is the addend, read at issue time — the
    // hazard window is the full MAC latency.
    if (issue.has_value()) {
      if (issue->row < 0 || issue->row >= cfg_.storage_rows) {
        throw std::out_of_range("ProcessingElement: accumulator row");
      }
      const std::size_t row = static_cast<std::size_t>(issue->row);
      if (pending_writes_[row] > 0) ++hazards_;
      mac_->step(
          units::UnitInput{issue->a, issue->b, false, read_acc(issue->row)});
      adder_rows_.push(issue->row);
      ++pending_writes_[row];
      ++mac_issues_;
      ++in_flight_;
    } else {
      mac_->step(std::nullopt);
    }
    if (const auto out = mac_->output()) {
      const int row = adder_rows_.front();
      adder_rows_.pop();
      write_acc(row, out->result);
      flags_ |= out->flags;
      --pending_writes_[static_cast<std::size_t>(row)];
      --in_flight_;
    }
    if (storage_observer_ != nullptr) {
      storage_observer_->on_storage(cycles_, acc_);
      if (cfg_.ecc_accumulators) {
        storage_observer_->on_check_bits(cycles_, acc_check_);
      }
    }
    ++cycles_;
    return;
  }

  // Multiplier front end.
  if (issue.has_value()) {
    if (issue->row < 0 || issue->row >= cfg_.storage_rows) {
      throw std::out_of_range("ProcessingElement: accumulator row");
    }
    mult_.step(units::UnitInput{issue->a, issue->b, false});
    mult_rows_.push(issue->row);
    ++mac_issues_;
    ++in_flight_;
  } else {
    mult_.step(std::nullopt);
  }

  // The operand register between the units issues into the adder, and the
  // fresh product (paired with the accumulator read — where a RAW hazard
  // can bite) loads it for next cycle. Total MAC latency is Lmul + Ladd.
  adder_.step(add_stage_reg_);
  add_stage_reg_.reset();
  if (const auto prod = mult_.output()) {
    const int row = mult_rows_.front();
    mult_rows_.pop();
    if (pending_writes_[static_cast<std::size_t>(row)] > 0) ++hazards_;
    add_stage_reg_ = units::UnitInput{prod->result, read_acc(row), false};
    flags_ |= prod->flags;
    adder_rows_.push(row);
    ++pending_writes_[static_cast<std::size_t>(row)];
  }

  // Writeback.
  if (const auto sum = adder_.output()) {
    const int row = adder_rows_.front();
    adder_rows_.pop();
    write_acc(row, sum->result);
    flags_ |= sum->flags;
    --pending_writes_[static_cast<std::size_t>(row)];
    --in_flight_;
  }
  if (storage_observer_ != nullptr) {
    storage_observer_->on_storage(cycles_, acc_);
    if (cfg_.ecc_accumulators) {
      storage_observer_->on_check_bits(cycles_, acc_check_);
    }
  }
  ++cycles_;
}

void ProcessingElement::clear() {
  std::fill(acc_.begin(), acc_.end(), 0);
  std::fill(acc_check_.begin(), acc_check_.end(), fault::secded_encode(0));
  std::fill(pending_writes_.begin(), pending_writes_.end(), 0);
  mult_rows_ = {};
  adder_rows_ = {};
  mult_.reset();
  adder_.reset();
  if (mac_.has_value()) mac_->reset();
  add_stage_reg_.reset();
  in_flight_ = 0;
  mac_issues_ = 0;
  hazards_ = 0;
  cycles_ = 0;
  flags_ = 0;
  ecc_corrections_ = 0;
  ecc_detections_ = 0;
}

device::Resources ProcessingElement::mac_resources() const {
  return mac_.has_value() ? mac_->area().total
                          : adder_.area().total + mult_.area().total;
}

device::Resources ProcessingElement::storage_resources() const {
  device::Resources r;
  const int n = cfg_.fmt.total_bits();
  r.brams = 1;  // accumulator bank
  // Resident-B register, input pass register, and the BRAM access mux.
  r.ffs = 2 * n;
  r.luts = n;
  r.slices = n;
  if (cfg_.ecc_accumulators) {
    r = r + fault::secded_area(cfg_.tech, cfg_.objective);
  }
  return r;
}

device::Resources ProcessingElement::control_resources() const {
  device::Resources r;
  // Counters and comparators for the (k, i) schedule...
  r.slices = 24;
  r.luts = 40;
  r.ffs = 24;
  // ...plus the control shift registers: "the control signals also have to
  // be shifted using shift registers so that the correct schedule of
  // operations is maintained" — their length tracks the pipeline latency.
  const int ctl_bits = 4 * total_latency();
  r.ffs += ctl_bits;
  r.slices += static_cast<int>(
      std::ceil(static_cast<double>(ctl_bits) /
                (cfg_.tech.ffs_per_slice() * cfg_.tech.ff_absorption() + 1)));
  return r;
}

device::Resources ProcessingElement::resources() const {
  return mac_resources() + storage_resources() + control_resources();
}

double ProcessingElement::freq_mhz() const {
  return mac_.has_value() ? mac_->freq_mhz()
                          : std::min(adder_.freq_mhz(), mult_.freq_mhz());
}

}  // namespace flopsim::kernel
