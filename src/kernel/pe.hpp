// Processing element of the matrix-multiply linear array.
//
// Per the paper: "a linear array of identical PEs, each of which contains a
// floating-point adder and a floating-point multiplier", plus local storage
// (a BRAM bank of accumulators and the resident B operand) and control
// (counters and the control-signal shift registers whose length tracks the
// units' pipeline latency).
//
// The PE is cycle-accurate: the multiplier and adder inside are the
// structural pipelined units, so a MAC issued at cycle t writes back at
// t + Lmul + Ladd, and accumulator reuse inside that window is a real
// read-after-write hazard the PE detects and counts.
#pragma once

#include <optional>
#include <queue>
#include <vector>

#include "device/resources.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::kernel {

/// Observer called at the end of every PE clock with the accumulator bank —
/// the narrow hook the fault layer uses to flip BRAM-resident bits (SEU
/// injection). With no observer attached the PE behaves exactly as before.
class StorageObserver {
 public:
  virtual ~StorageObserver() = default;
  /// `cycle` is the 0-based clock just completed (== cycles() before the
  /// step finished); `acc` is the live accumulator bank, mutable in place.
  virtual void on_storage(long cycle, std::vector<fp::u64>& acc) = 0;
  /// Called right after on_storage when the bank carries SECDED check
  /// bytes (PeConfig::ecc_accumulators): lets the fault layer strike the
  /// code bits too. Default ignores them.
  virtual void on_check_bits(long cycle, std::vector<std::uint8_t>& check) {
    (void)cycle;
    (void)check;
  }
};

struct PeConfig {
  fp::FpFormat fmt = fp::FpFormat::binary32();
  int adder_stages = 8;
  int mult_stages = 5;
  fp::RoundingMode rounding = fp::RoundingMode::kNearestEven;
  device::Objective objective = device::Objective::kArea;
  device::TechModel tech = device::TechModel::virtex2pro7();
  /// Accumulator words of local storage (BRAM depth used).
  int storage_rows = 1024;
  /// Use one fused MAC core (single rounding per accumulate) instead of
  /// the paper's multiplier + adder pair. Extension; the MAC depth is
  /// adder_stages + mult_stages for comparability.
  bool use_fused_mac = false;
  /// Protect the accumulator bank with SECDED(72,64): encode on every
  /// write, correct single-bit / detect double-bit upsets on every read
  /// (fault::Scheme::kEcc). The check byte rides the BRAM parity bits.
  bool ecc_accumulators = false;

  units::UnitConfig adder_config() const;
  units::UnitConfig mult_config() const;
  units::UnitConfig mac_config() const;
};

class ProcessingElement {
 public:
  explicit ProcessingElement(const PeConfig& cfg);

  /// A multiply-accumulate: acc[row] += a * b (operand encodings).
  struct MacIssue {
    fp::u64 a = 0;
    fp::u64 b = 0;
    int row = 0;
  };

  /// Advance one clock, optionally issuing a MAC.
  void step(const std::optional<MacIssue>& issue);

  /// Total issue-to-writeback latency: Lmul + Ladd — the paper's "PL".
  int total_latency() const;
  int adder_latency() const { return adder_.latency(); }
  int mult_latency() const { return mult_.latency(); }

  /// Accumulator word as architecture reads it: with ECC enabled the read
  /// passes through the SECDED corrector (single-bit upsets are repaired,
  /// double-bit ones counted as detected and returned raw).
  fp::u64 acc(int row) const;
  void set_acc(int row, fp::u64 v);
  void clear();

  /// True when no MAC is in flight.
  bool drained() const { return in_flight_ == 0; }

  long mac_issues() const { return mac_issues_; }
  /// Accumulator reads that raced a pending writeback (stale data read).
  long hazards() const { return hazards_; }
  /// ECC: single-bit upsets repaired on read / double-bit upsets detected
  /// (uncorrectable, word returned raw). Always 0 without ecc_accumulators.
  long ecc_corrections() const { return ecc_corrections_; }
  long ecc_detections() const { return ecc_detections_; }
  std::uint8_t flags() const { return flags_; }
  /// Clocks stepped since construction / the last clear().
  long cycles() const { return cycles_; }

  /// Attach (or detach with nullptr) the end-of-cycle storage observer.
  /// Not owned; survives clear().
  void set_storage_observer(StorageObserver* observer) {
    storage_observer_ = observer;
  }

  /// Per-PE FPGA resources: units + storage + control. Control includes the
  /// latency-proportional control shift registers the paper describes.
  device::Resources resources() const;
  device::Resources mac_resources() const;
  device::Resources storage_resources() const;
  device::Resources control_resources() const;

  /// The slower of the two units bounds the PE clock.
  double freq_mhz() const;

  const units::FpUnit& adder() const { return adder_; }
  const units::FpUnit& multiplier() const { return mult_; }
  /// Mutable access for fault-hook attachment (FpUnit::set_latch_observer).
  units::FpUnit& adder() { return adder_; }
  units::FpUnit& multiplier() { return mult_; }

 private:
  /// Read acc_[row] through the SECDED corrector, repairing the stored
  /// word in place (read-modify-write, as a BRAM ECC controller does).
  fp::u64 read_acc(int row);
  void write_acc(int row, fp::u64 v);

  PeConfig cfg_;
  units::FpUnit mult_;
  units::FpUnit adder_;
  std::optional<units::FpUnit> mac_;  // engaged when cfg.use_fused_mac
  std::vector<fp::u64> acc_;
  std::vector<std::uint8_t> acc_check_;  // SECDED check bytes (ECC only)
  std::vector<int> pending_writes_;  // per row, writebacks in flight
  /// Registered operand stage between multiplier output and adder input —
  /// the accumulator read happens when this register loads.
  std::optional<units::UnitInput> add_stage_reg_;
  std::queue<int> mult_rows_;        // row tags riding the multiplier
  std::queue<int> adder_rows_;       // row tags riding the adder
  int in_flight_ = 0;
  long mac_issues_ = 0;
  long hazards_ = 0;
  // Mutable: the architectural read `acc()` is logically const but still
  // exercises the corrector, and its verdicts must be observable.
  mutable long ecc_corrections_ = 0;
  mutable long ecc_detections_ = 0;
  long cycles_ = 0;
  std::uint8_t flags_ = 0;
  StorageObserver* storage_observer_ = nullptr;  // not owned
};

}  // namespace flopsim::kernel
