#include "kernel/systolic2d.hpp"

#include <stdexcept>

namespace flopsim::kernel {

Systolic2dMatmul::Systolic2dMatmul(int n, int batch, const PeConfig& cfg)
    : n_(n), batch_(batch), cfg_(cfg) {
  if (n <= 0 || batch <= 0) {
    throw std::invalid_argument("Systolic2dMatmul: n and batch must be > 0");
  }
  PeConfig pe_cfg = cfg;
  pe_cfg.storage_rows = std::max(cfg.storage_rows, batch + 4);
  grid_.reserve(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n * n; ++i) grid_.emplace_back(pe_cfg);
}

int Systolic2dMatmul::min_batch() const {
  return grid_[0].adder_latency() + 1;
}

device::Resources Systolic2dMatmul::resources() const {
  return grid_[0].resources() * (n_ * n_);
}

double Systolic2dMatmul::freq_mhz() const { return grid_[0].freq_mhz(); }

long Systolic2dMatmul::predicted_cycles() const {
  // Issue span n*batch steps, wavefront skew 2(n-1), MAC drain.
  return static_cast<long>(n_) * batch_ + 2L * (n_ - 1) +
         grid_[0].total_latency() + 1;
}

Systolic2dRun Systolic2dMatmul::run(const std::vector<Matrix>& a,
                                    const std::vector<Matrix>& b) {
  if (static_cast<int>(a.size()) != batch_ ||
      static_cast<int>(b.size()) != batch_) {
    throw std::invalid_argument("Systolic2dMatmul: batch size mismatch");
  }
  for (const Matrix& m : a) {
    if (m.n != n_) throw std::invalid_argument("Systolic2dMatmul: A size");
  }
  for (const Matrix& m : b) {
    if (m.n != n_) throw std::invalid_argument("Systolic2dMatmul: B size");
  }
  for (auto& pe : grid_) pe.clear();

  Systolic2dRun run;
  const long issue_span = static_cast<long>(n_) * batch_;
  const long total = predicted_cycles();
  for (long t = 0; t < total; ++t) {
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        ProcessingElement& pe =
            grid_[static_cast<std::size_t>(i) * n_ + j];
        const long s = t - i - j;  // wavefront skew
        std::optional<ProcessingElement::MacIssue> issue;
        if (s >= 0 && s < issue_span) {
          const int kk = static_cast<int>(s / batch_);
          const int m = static_cast<int>(s % batch_);
          issue = ProcessingElement::MacIssue{
              a[static_cast<std::size_t>(m)].at(i, kk),
              b[static_cast<std::size_t>(m)].at(kk, j), m};
          ++run.mac_issues;
        }
        pe.step(issue);
      }
    }
  }
  run.cycles = total;

  run.c.assign(static_cast<std::size_t>(batch_), Matrix::zero(n_, cfg_.fmt));
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      const ProcessingElement& pe =
          grid_[static_cast<std::size_t>(i) * n_ + j];
      if (!pe.drained()) {
        throw std::logic_error("Systolic2dMatmul: pipeline not drained");
      }
      run.hazards += pe.hazards();
      run.flags |= pe.flags();
      for (int m = 0; m < batch_; ++m) {
        run.c[static_cast<std::size_t>(m)].at(i, j) = pe.acc(m);
      }
    }
  }
  // Hazard counting resets per PE across calls via clear(); the caller
  // decides whether an under-batched (hazardous) run was intentional.
  return run;
}

}  // namespace flopsim::kernel
