// LU decomposition on the PE array + a pipelined divider — the companion
// kernel the same group built on these cores ("A High-Performance and
// Energy-efficient Architecture for Floating-point based LU Decomposition
// on FPGAs", Govindu et al.); here as a library extension showing the units
// carry a second full linear-algebra kernel.
//
// Right-looking LU without pivoting: for each k,
//   divide phase:  l[i][k] = a[i][k] / a[k][k]   (streamed through the
//                  pipelined divider, one per cycle)
//   update phase:  a[i][j] -= l[i][k] * a[k][j]  (MACs across the PE strip,
//                  one per cycle per PE; the per-column row sweep reuses
//                  accumulator rows, so columns shorter than the adder
//                  latency insert bubbles — the same latency-hiding
//                  constraint as the matmul kernel's zero padding)
//
// The factorization is bit-exact with a softfloat reference using the
// identical operation order.
#pragma once

#include "kernel/matmul.hpp"  // Matrix, PeConfig

namespace flopsim::kernel {

struct LuRun {
  /// In-place factors: U on and above the diagonal, unit-lower L below.
  Matrix lu;
  long cycles = 0;
  long divides = 0;
  long macs = 0;
  long bubbles = 0;  ///< stall cycles inserted to respect hazard windows
  long hazards = 0;  ///< must be 0
  std::uint8_t flags = 0;
};

class LuArray {
 public:
  /// @param n matrix size; @param p PEs for the update phase (p <= n).
  LuArray(int n, int p, const PeConfig& cfg);

  /// Factor A (throws std::domain_error on a zero pivot).
  LuRun run(const Matrix& a);

  int divider_latency() const;

 private:
  int n_;
  int p_;
  PeConfig cfg_;
  units::FpUnit divider_;
  std::vector<ProcessingElement> pes_;
};

/// Softfloat reference with the identical operation order.
Matrix reference_lu(const Matrix& a, fp::FpFormat fmt,
                    fp::RoundingMode rounding);

/// Solve L U x = b with the factors from run()/reference_lu (forward +
/// back substitution in the same arithmetic).
std::vector<fp::u64> lu_solve(const Matrix& lu, const std::vector<fp::u64>& b,
                              fp::FpFormat fmt, fp::RoundingMode rounding);

}  // namespace flopsim::kernel
