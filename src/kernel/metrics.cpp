#include "kernel/metrics.hpp"

#include <algorithm>

#include "power/unit_power.hpp"

namespace flopsim::kernel {
namespace {

/// Device-level overhead not attributable to PEs: I/O banks and the global
/// clock trunk (mW).
constexpr double kDeviceOverheadMw = 500.0;

}  // namespace

KernelDesign::KernelDesign(const PeConfig& cfg)
    : cfg_(cfg), probe_(cfg) {}

int KernelDesign::max_pes(const device::Device& dev) const {
  return dev.max_instances(pe_resources());
}

double KernelDesign::device_gflops(const device::Device& dev) const {
  // One multiplier + one adder per PE: 2 FLOPs per cycle per PE.
  return 2.0 * max_pes(dev) * freq_mhz() / 1000.0;
}

double KernelDesign::device_power_w(const device::Device& dev) const {
  const double f = freq_mhz();
  const device::TechModel& tech = cfg_.tech;

  // MAC switching with glitch amplification (weighted by LUT count).
  const double ga = power::glitch_factor(
      power::avg_pieces_per_stage(probe_.adder()));
  const double gm = power::glitch_factor(
      power::avg_pieces_per_stage(probe_.multiplier()));
  const auto aa = probe_.adder().area().total;
  const auto am = probe_.multiplier().area().total;
  const double g =
      (ga * aa.luts + gm * am.luts) / std::max(1, aa.luts + am.luts);

  const double mac_mw =
      power::estimate_power(probe_.mac_resources(), f, 0.5 * g, tech)
          .total_mw();
  const double sto_mw =
      power::estimate_power(probe_.storage_resources(), f, 0.5, tech)
          .total_mw();
  const double ctl_mw =
      power::estimate_power(probe_.control_resources(), f, 0.4, tech)
          .total_mw();
  const double static_mw =
      pe_resources().slices * tech.static_power_coeff();
  const double pe_mw = mac_mw + sto_mw + ctl_mw + static_mw;
  return (max_pes(dev) * pe_mw + kDeviceOverheadMw) / 1000.0;
}

double KernelDesign::gflops_per_watt(const device::Device& dev) const {
  const double w = device_power_w(dev);
  return w > 0.0 ? device_gflops(dev) / w : 0.0;
}

long KernelDesign::latency_cycles(int n) const {
  return make_schedule(n, pl()).total_cycles();
}

double KernelDesign::latency_us(int n) const {
  return latency_cycles(n) / freq_mhz();
}

power::EnergyReport KernelDesign::energy_from_counts(
    long cycles, long issues_per_pe, long io_words_per_pe) const {
  const device::TechModel& tech = cfg_.tech;
  const double ga = power::glitch_factor(
      power::avg_pieces_per_stage(probe_.adder()));
  const double gm = power::glitch_factor(
      power::avg_pieces_per_stage(probe_.multiplier()));
  const auto aa = probe_.adder().area().total;
  const auto am = probe_.multiplier().area().total;
  const double g =
      (ga * aa.luts + gm * am.luts) / std::max(1, aa.luts + am.luts);

  std::vector<power::Component> comps;
  comps.push_back({"MAC", probe_.mac_resources(), 0.5 * g,
                   static_cast<double>(issues_per_pe)});
  // One accumulator read and one write per MAC, plus the resident-B load.
  comps.push_back({"Storage", probe_.storage_resources(), 0.5,
                   2.0 * issues_per_pe});
  device::Resources io_res;
  io_res.luts = cfg_.fmt.total_bits();
  io_res.ffs = cfg_.fmt.total_bits();
  comps.push_back({"IO", io_res, 1.0, static_cast<double>(io_words_per_pe)});
  comps.push_back({"Misc", probe_.control_resources(), 0.4,
                   static_cast<double>(cycles)});

  power::EnergyReport rep =
      power::estimate_energy(comps, freq_mhz(), cycles, tech);

  // Quiescent power burns for the whole runtime; the paper folds it in at
  // the system level. Attribute it to Misc.
  const double runtime_s = cycles / (freq_mhz() * 1e6);
  const double static_nj =
      pe_resources().slices * tech.static_power_coeff() * runtime_s * 1e6;
  for (auto& e : rep.entries) {
    if (e.name == "Misc") {
      e.energy_nj += static_nj;
      break;
    }
  }
  rep.total_nj += static_nj;
  return rep;
}

power::EnergyReport KernelDesign::pe_energy(int n) const {
  const Schedule s = make_schedule(n, pl());
  const long io_words = static_cast<long>(n) * s.n_eff + 2L * n;
  return energy_from_counts(s.total_cycles(), s.issues_per_pe(), io_words);
}

power::EnergyReport KernelDesign::pe_energy_blocked(int n, int b) const {
  const BlockMatmulStats st = block_matmul_stats(n, b, pl());
  const long per_pe_issues = st.mac_issues / b;
  const long io_words =
      st.block_products *
      (static_cast<long>(b) * st.block_schedule.n_eff + 2L * b);
  return energy_from_counts(st.cycles, per_pe_issues, io_words);
}

double KernelDesign::padding_waste_fraction(int n) const {
  const Schedule s = make_schedule(n, pl());
  return s.padding_fraction();
}

PeConfig pe_min_pipelined() {
  PeConfig c;
  c.adder_stages = 6;
  c.mult_stages = 4;  // PL = 10
  return c;
}

PeConfig pe_moderate_pipelined() {
  PeConfig c;
  c.adder_stages = 12;
  c.mult_stages = 7;  // PL = 19
  return c;
}

PeConfig pe_max_pipelined() {
  PeConfig c;
  c.adder_stages = 16;
  c.mult_stages = 9;  // PL = 25
  return c;
}

PeConfig pe_double_optimal() {
  PeConfig c;
  c.fmt = fp::FpFormat::binary64();
  c.adder_stages = 12;
  c.mult_stages = 7;
  return c;
}

}  // namespace flopsim::kernel
