#include "kernel/lu.hpp"

#include <stdexcept>

#include "fp/ops.hpp"

namespace flopsim::kernel {
namespace {

/// Column owner and local index under round-robin column distribution.
int owner_of(int col, int p) { return col % p; }
int local_of(int col, int p) { return col / p; }

fp::u64 negate_bits(fp::u64 v, fp::FpFormat fmt) {
  return v ^ fmt.sign_mask();
}

}  // namespace

LuArray::LuArray(int n, int p, const PeConfig& cfg)
    : n_(n),
      p_(p),
      cfg_(cfg),
      divider_(units::UnitKind::kDivider, cfg.fmt, cfg.adder_config()) {
  if (n <= 0 || p <= 0 || p > n) {
    throw std::invalid_argument("LuArray: need 0 < p <= n");
  }
  PeConfig pe_cfg = cfg;
  // Each PE stores its column strip of A in local memory: ceil(n/p) columns
  // of n elements each.
  const int cols = (n + p - 1) / p;
  pe_cfg.storage_rows = std::max(cfg.storage_rows, cols * n + 8);
  pes_.reserve(static_cast<std::size_t>(p));
  for (int q = 0; q < p; ++q) pes_.emplace_back(pe_cfg);
}

int LuArray::divider_latency() const { return divider_.latency(); }

LuRun LuArray::run(const Matrix& a) {
  if (a.n != n_) throw std::invalid_argument("LuArray: size mismatch");
  const fp::FpFormat fmt = cfg_.fmt;
  auto slot = [this](int col, int row) {
    return local_of(col, p_) * n_ + row;
  };

  // Load A into the PEs' local stores.
  for (auto& pe : pes_) pe.clear();
  divider_.reset();
  for (int j = 0; j < n_; ++j) {
    for (int i = 0; i < n_; ++i) {
      pes_[static_cast<std::size_t>(owner_of(j, p_))].set_acc(slot(j, i),
                                                              a.at(i, j));
    }
  }

  LuRun run;
  for (int k = 0; k < n_ - 1; ++k) {
    ProcessingElement& pivot_pe =
        pes_[static_cast<std::size_t>(owner_of(k, p_))];
    const fp::u64 pivot = pivot_pe.acc(slot(k, k));
    if (fp::FpValue(pivot, fmt).biased_exp() == 0) {
      throw std::domain_error("LuArray: zero (or flushed) pivot");
    }

    // --- divide phase: l[i][k] = a[i][k] / pivot, streamed ------------------
    const int m = n_ - 1 - k;
    std::vector<fp::u64> l(static_cast<std::size_t>(m));
    {
      std::size_t got = 0;
      for (int t = 0; t < m + divider_.latency(); ++t) {
        std::optional<units::UnitInput> in;
        if (t < m) {
          in = units::UnitInput{pivot_pe.acc(slot(k, k + 1 + t)), pivot,
                                false};
        }
        divider_.step(in);
        if (const auto out = divider_.output()) {
          l[got++] = out->result;
          run.flags |= out->flags;
        }
        ++run.cycles;
      }
      if (got != l.size()) {
        throw std::logic_error("LuArray: divider did not drain");
      }
      run.divides += m;
      run.bubbles += divider_.latency();
    }
    // Store L back in place.
    for (int i = 0; i < m; ++i) {
      pivot_pe.set_acc(slot(k, k + 1 + i), l[static_cast<std::size_t>(i)]);
    }

    // --- update phase: a[i][j] += (-l[i][k]) * a[k][j], PEs in parallel -----
    long phase_cycles = 0;
    for (int q = 0; q < p_; ++q) {
      ProcessingElement& pe = pes_[static_cast<std::size_t>(q)];
      long issues = 0;
      for (int j = k + 1; j < n_; ++j) {
        if (owner_of(j, p_) != q) continue;
        const fp::u64 u_kj = pe.acc(slot(j, k));  // row k is stable
        for (int i = 0; i < m; ++i) {
          pe.step(ProcessingElement::MacIssue{
              negate_bits(l[static_cast<std::size_t>(i)], fmt), u_kj,
              slot(j, k + 1 + i)});
          ++issues;
        }
      }
      while (!pe.drained()) pe.step(std::nullopt);
      run.macs += issues;
      run.hazards += pe.hazards();
      run.flags |= pe.flags();
      phase_cycles =
          std::max(phase_cycles, issues + pe.total_latency());
    }
    run.cycles += phase_cycles;
    run.bubbles += pes_[0].total_latency();
  }

  // Extract the in-place factors.
  run.lu = Matrix::zero(n_, fmt);
  for (int j = 0; j < n_; ++j) {
    const ProcessingElement& pe =
        pes_[static_cast<std::size_t>(owner_of(j, p_))];
    for (int i = 0; i < n_; ++i) run.lu.at(i, j) = pe.acc(slot(j, i));
  }
  if (run.hazards > 0) {
    throw std::runtime_error("LuArray: unexpected RAW hazard");
  }
  return run;
}

Matrix reference_lu(const Matrix& a, fp::FpFormat fmt,
                    fp::RoundingMode rounding) {
  Matrix lu = a;
  fp::FpEnv env = fp::FpEnv::paper(rounding);
  for (int k = 0; k < lu.n - 1; ++k) {
    const fp::FpValue pivot(lu.at(k, k), fmt);
    if (pivot.biased_exp() == 0) {
      throw std::domain_error("reference_lu: zero (or flushed) pivot");
    }
    for (int i = k + 1; i < lu.n; ++i) {
      lu.at(i, k) = fp::div(fp::FpValue(lu.at(i, k), fmt), pivot, env).bits;
    }
    for (int j = k + 1; j < lu.n; ++j) {
      const fp::FpValue u_kj(lu.at(k, j), fmt);
      for (int i = k + 1; i < lu.n; ++i) {
        const fp::FpValue prod = fp::mul(
            fp::neg(fp::FpValue(lu.at(i, k), fmt)), u_kj, env);
        lu.at(i, j) =
            fp::add(fp::FpValue(lu.at(i, j), fmt), prod, env).bits;
      }
    }
  }
  return lu;
}

std::vector<fp::u64> lu_solve(const Matrix& lu, const std::vector<fp::u64>& b,
                              fp::FpFormat fmt, fp::RoundingMode rounding) {
  const int n = lu.n;
  if (static_cast<int>(b.size()) != n) {
    throw std::invalid_argument("lu_solve: size mismatch");
  }
  fp::FpEnv env = fp::FpEnv::paper(rounding);
  // Forward substitution with the unit-diagonal L.
  std::vector<fp::FpValue> y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    fp::FpValue acc(b[static_cast<std::size_t>(i)], fmt);
    for (int j = 0; j < i; ++j) {
      const fp::FpValue prod = fp::mul(fp::FpValue(lu.at(i, j), fmt),
                                       y[static_cast<std::size_t>(j)], env);
      acc = fp::sub(acc, prod, env);
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
  // Back substitution with U.
  std::vector<fp::u64> x(static_cast<std::size_t>(n), 0);
  for (int i = n - 1; i >= 0; --i) {
    fp::FpValue acc = y[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < n; ++j) {
      const fp::FpValue prod =
          fp::mul(fp::FpValue(lu.at(i, j), fmt),
                  fp::FpValue(x[static_cast<std::size_t>(j)], fmt), env);
      acc = fp::sub(acc, prod, env);
    }
    x[static_cast<std::size_t>(i)] =
        fp::div(acc, fp::FpValue(lu.at(i, i), fmt), env).bits;
  }
  return x;
}

}  // namespace flopsim::kernel
