#include "kernel/matmul.hpp"

#include <stdexcept>

#include "fp/ops.hpp"

namespace flopsim::kernel {

Matrix Matrix::zero(int n, fp::FpFormat fmt) {
  (void)fmt;  // all-zero encoding is +0 in every format
  Matrix m;
  m.n = n;
  m.bits.assign(static_cast<std::size_t>(n) * n, 0);
  return m;
}

Matrix matrix_from_doubles(const std::vector<double>& vals, int n,
                           fp::FpFormat fmt) {
  if (static_cast<int>(vals.size()) != n * n) {
    throw std::invalid_argument("matrix_from_doubles: size mismatch");
  }
  Matrix m = Matrix::zero(n, fmt);
  fp::FpEnv env = fp::FpEnv::paper();
  for (std::size_t i = 0; i < vals.size(); ++i) {
    m.bits[i] = fp::from_double(vals[i], fmt, env).bits;
  }
  return m;
}

LinearArrayMatmul::LinearArrayMatmul(int n, const PeConfig& cfg)
    : n_(n), cfg_(cfg) {
  if (n <= 0) throw std::invalid_argument("LinearArrayMatmul: n must be > 0");
  PeConfig pe_cfg = cfg;
  // Storage must cover the padded row range.
  const ProcessingElement probe(pe_cfg);
  pe_cfg.storage_rows =
      std::max(cfg.storage_rows, n + probe.total_latency() + 8);
  pes_.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) pes_.emplace_back(pe_cfg);
}

MatmulRun LinearArrayMatmul::run(const Matrix& a, const Matrix& b,
                                 const Matrix* c0) {
  if (a.n != n_ || b.n != n_ || (c0 != nullptr && c0->n != n_)) {
    throw std::invalid_argument("LinearArrayMatmul: operand size mismatch");
  }
  const int pl = pes_[0].total_latency();
  const Schedule sched =
      make_schedule(n_, pad_override_ >= 0 ? pad_override_ : pl);

  for (int j = 0; j < n_; ++j) {
    pes_[static_cast<std::size_t>(j)].clear();
    if (c0 != nullptr) {
      for (int i = 0; i < n_; ++i) {
        pes_[static_cast<std::size_t>(j)].set_acc(i, c0->at(i, j));
      }
    }
  }

  MatmulRun run;
  run.schedule = sched;
  const long issue_span = static_cast<long>(n_) * sched.n_eff;
  const long total = issue_span + (n_ - 1) + pl + 1;
  for (long t = 0; t < total; ++t) {
    for (int j = 0; j < n_; ++j) {
      ProcessingElement& pe = pes_[static_cast<std::size_t>(j)];
      const long tj = t - j;  // systolic skew: PE j runs j cycles behind
      std::optional<ProcessingElement::MacIssue> issue;
      if (tj >= 0 && tj < issue_span) {
        const int k = static_cast<int>(tj / sched.n_eff);
        const int i = static_cast<int>(tj % sched.n_eff);
        if (i < n_) {
          issue = ProcessingElement::MacIssue{a.at(i, k), b.at(k, j), i};
        } else {
          // Zero padding: the unit computes 0*0 + acc_pad — real switching,
          // wasted work (the paper's Section 5 energy-waste source).
          issue = ProcessingElement::MacIssue{0, 0, i};
          ++run.padded_issues;
        }
        ++run.mac_issues;
      }
      pe.step(issue);
    }
  }
  run.cycles = total;

  run.c = Matrix::zero(n_, cfg_.fmt);
  for (int j = 0; j < n_; ++j) {
    const ProcessingElement& pe = pes_[static_cast<std::size_t>(j)];
    if (!pe.drained()) {
      throw std::logic_error("LinearArrayMatmul: pipeline not drained");
    }
    run.hazards += pe.hazards();
    run.flags |= pe.flags();
    for (int i = 0; i < n_; ++i) run.c.at(i, j) = pe.acc(i);
  }
  if (run.hazards > 0 && pad_override_ < 0) {
    throw std::runtime_error(
        "LinearArrayMatmul: RAW hazard despite default padding");
  }
  return run;
}

Matrix reference_gemm(const Matrix& a, const Matrix& b, fp::FpFormat fmt,
                      fp::RoundingMode rounding, const Matrix* c0) {
  const int n = a.n;
  Matrix c = Matrix::zero(n, fmt);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      fp::FpEnv env = fp::FpEnv::paper(rounding);
      fp::FpValue acc(c0 != nullptr ? c0->at(i, j) : 0, fmt);
      for (int k = 0; k < n; ++k) {
        const fp::FpValue prod =
            fp::mul(fp::FpValue(a.at(i, k), fmt), fp::FpValue(b.at(k, j), fmt),
                    env);
        acc = fp::add(acc, prod, env);
      }
      c.at(i, j) = acc.bits;
    }
  }
  return c;
}

Matrix reference_gemm_fused(const Matrix& a, const Matrix& b,
                            fp::FpFormat fmt, fp::RoundingMode rounding,
                            const Matrix* c0) {
  const int n = a.n;
  Matrix c = Matrix::zero(n, fmt);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      fp::FpEnv env = fp::FpEnv::paper(rounding);
      fp::FpValue acc(c0 != nullptr ? c0->at(i, j) : 0, fmt);
      for (int k = 0; k < n; ++k) {
        acc = fp::fma(fp::FpValue(a.at(i, k), fmt),
                      fp::FpValue(b.at(k, j), fmt), acc, env);
      }
      c.at(i, j) = acc.bits;
    }
  }
  return c;
}

}  // namespace flopsim::kernel
