// Matrix-vector multiplication on the linear PE array (library extension:
// the paper motivates its cores with "kernels like matrix and vector
// operations"; this is the vector one).
//
// y = A x for an n x n matrix on p PEs (p | n): PE j owns the row strip
// y[j*r .. (j+1)*r), r = n/p, with its strip of A resident in local
// storage. The vector element x[k] streams through the array systolically;
// during phase k PE j folds a[row][k] * x[k] into each of its rows. A row
// is revisited once per phase — the same RAW window as the matmul kernel —
// so the row loop zero-pads to r_eff = max(r, PL) per the paper's rule.
#pragma once

#include <vector>

#include "kernel/matmul.hpp"  // Matrix, PeConfig
#include "kernel/schedule.hpp"

namespace flopsim::kernel {

struct MvmRun {
  std::vector<fp::u64> y;
  long cycles = 0;
  long mac_issues = 0;
  long padded_issues = 0;
  long hazards = 0;
  std::uint8_t flags = 0;
  int r_eff = 0;  ///< padded rows-per-PE inner loop
};

class LinearArrayMvm {
 public:
  /// @param n problem size; @param p PE count (must divide n).
  LinearArrayMvm(int n, int p, const PeConfig& cfg);

  /// Compute y = A x cycle-by-cycle.
  MvmRun run(const Matrix& a, const std::vector<fp::u64>& x);

  int n() const { return n_; }
  int pes() const { return p_; }
  /// Padding threshold (PL of the PE).
  int pl() const;

 private:
  int n_;
  int p_;
  PeConfig cfg_;
  std::vector<ProcessingElement> pes_;
};

/// Reference with the same arithmetic/order under the paper env.
std::vector<fp::u64> reference_mvm(const Matrix& a,
                                   const std::vector<fp::u64>& x,
                                   fp::FpFormat fmt,
                                   fp::RoundingMode rounding);

}  // namespace flopsim::kernel
