#include "kernel/reducer.hpp"

#include "fp/ops.hpp"

namespace flopsim::kernel {

StreamingReducer::StreamingReducer(fp::FpFormat fmt,
                                   const units::UnitConfig& adder_cfg)
    : fmt_(fmt), adder_(units::UnitKind::kAdder, fmt, adder_cfg) {
  lane_.assign(static_cast<std::size_t>(adder_.latency()) + 1, 0);
}

void StreamingReducer::step(const std::optional<units::UnitInput>& in,
                            int dest_lane) {
  adder_.step(in);
  if (in.has_value()) in_flight_.push(dest_lane);
  if (const auto out = adder_.output()) {
    lane_[static_cast<std::size_t>(in_flight_.front())] = out->result;
    in_flight_.pop();
    flags_ |= out->flags;
  }
  ++cycles_;
}

void StreamingReducer::push(fp::u64 value_bits) {
  // Round-robin across Ladd+1 lanes keeps every lane revisit outside the
  // adder's hazard window.
  const int l = next_lane_;
  next_lane_ = (next_lane_ + 1) % lanes();
  step(units::UnitInput{lane_[static_cast<std::size_t>(l)],
                        value_bits & fmt_.bits_mask(), false},
       l);
  ++pushed_;
}

void StreamingReducer::drain() {
  while (!in_flight_.empty()) step(std::nullopt, 0);
}

fp::u64 StreamingReducer::finish() {
  drain();
  // Pairwise tree over the lanes, reusing the same pipelined adder: issue
  // each level back-to-back (independent pairs: no hazards), drain, repeat.
  std::vector<fp::u64> vals = lane_;
  while (vals.size() > 1) {
    std::vector<fp::u64> next((vals.size() + 1) / 2, 0);
    // Map pair i -> lane slot i for collection.
    for (std::size_t i = 0; i + 1 < vals.size(); i += 2) {
      step(units::UnitInput{vals[i], vals[i + 1], false},
           static_cast<int>(i / 2));
    }
    drain();
    for (std::size_t i = 0; i + 1 < vals.size(); i += 2) {
      next[i / 2] = lane_[i / 2];
    }
    if (vals.size() % 2 == 1) next.back() = vals.back();
    vals = std::move(next);
  }
  const fp::u64 total = vals.front();

  // Reset for reuse.
  std::fill(lane_.begin(), lane_.end(), 0);
  next_lane_ = 0;
  pushed_ = 0;
  adder_.reset();
  in_flight_ = {};
  return total;
}

fp::u64 StreamingReducer::reference(const std::vector<fp::u64>& values,
                                    fp::FpFormat fmt,
                                    const units::UnitConfig& cfg) {
  fp::FpEnv env = fp::FpEnv::paper(cfg.rounding);
  units::UnitConfig probe_cfg = cfg;
  const units::FpUnit probe(units::UnitKind::kAdder, fmt, probe_cfg);
  const std::size_t k = static_cast<std::size_t>(probe.latency()) + 1;

  std::vector<fp::FpValue> lanes(k, fp::make_zero(fmt));
  for (std::size_t i = 0; i < values.size(); ++i) {
    lanes[i % k] = fp::add(lanes[i % k], fp::FpValue(values[i], fmt), env);
  }
  std::vector<fp::FpValue> vals = lanes;
  while (vals.size() > 1) {
    std::vector<fp::FpValue> next;
    for (std::size_t i = 0; i + 1 < vals.size(); i += 2) {
      next.push_back(fp::add(vals[i], vals[i + 1], env));
    }
    if (vals.size() % 2 == 1) next.push_back(vals.back());
    vals = std::move(next);
  }
  return vals.front().bits;
}

}  // namespace flopsim::kernel
