// Baseline architecture: the classic 2-D systolic matrix-multiply array,
// for comparison with the paper's linear array.
//
// An n x n grid of PEs; A rows stream left-to-right skewed by row index, B
// columns stream top-to-bottom skewed by column index, so PE(i,j) sees the
// matching (a[i][k], b[k][j]) at cycle k + i + j and accumulates c[i][j]
// in place. The textbook form assumes a single-cycle MAC — with the
// paper's deeply pipelined adders, PE-local accumulation every cycle is a
// RAW hazard. The standard fix is problem interleaving: a batch of
// independent products shares the grid round-robin, spacing each
// accumulator's revisits by the batch size. Batch >= Ladd + 1 is
// hazard-free.
//
// This is exactly the contrast the paper draws in Section 2.1: kernels for
// deeply pipelined units need "data dependencies ... after long and
// definite intervals" — the linear array gets them from the problem size,
// the 2-D grid has to import them via batching (and pays n^2 PEs of area
// granularity). See bench/ext_systolic2d.
#pragma once

#include <vector>

#include "kernel/matmul.hpp"

namespace flopsim::kernel {

struct Systolic2dRun {
  std::vector<Matrix> c;  ///< one result per batch member
  long cycles = 0;
  long mac_issues = 0;
  long hazards = 0;
  std::uint8_t flags = 0;
};

class Systolic2dMatmul {
 public:
  /// @param n problem and grid size (n x n PEs!); @param batch interleaved
  /// independent products (>= Ladd + 1 for hazard-free operation).
  Systolic2dMatmul(int n, int batch, const PeConfig& cfg);

  /// Multiply `batch` independent pairs.
  Systolic2dRun run(const std::vector<Matrix>& a,
                    const std::vector<Matrix>& b);

  int n() const { return n_; }
  int batch() const { return batch_; }
  /// PE at grid row i, column j (row-major). For probes and tests.
  const ProcessingElement& pe(int i, int j) const {
    return grid_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(j)];
  }
  /// Minimum hazard-free batch for this PE configuration.
  int min_batch() const;
  /// Grid resources: n^2 PEs.
  device::Resources resources() const;
  double freq_mhz() const;

  /// Analytic cycle count for one batched run.
  long predicted_cycles() const;

 private:
  int n_;
  int batch_;
  PeConfig cfg_;
  std::vector<ProcessingElement> grid_;  // n*n, row-major
};

}  // namespace flopsim::kernel
