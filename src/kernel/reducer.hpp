// StreamingReducer: a hazard-free accumulator built from one pipelined
// adder — the general form of the latency-hiding trick the paper's kernels
// rely on ("data dependencies occur after long and definite intervals ...
// a designer can hide the latency of the deeply-pipelined floating-point
// units").
//
// A deeply pipelined adder cannot fold a new value into a single register
// every cycle (the accumulate loop is a RAW hazard of length Ladd). The
// reducer keeps K = Ladd + 1 interleaved partial sums, absorbing one input
// per cycle at full throughput, and on finish() drains the pipeline and
// folds the lanes pairwise through the same adder. Results are bit-exact
// with the software reference that uses the same lane-then-tree order.
#pragma once

#include <optional>
#include <queue>
#include <vector>

#include "units/fp_unit.hpp"

namespace flopsim::kernel {

class StreamingReducer {
 public:
  /// @param adder_cfg pipeline configuration of the underlying adder.
  StreamingReducer(fp::FpFormat fmt, const units::UnitConfig& adder_cfg);

  /// Feed one value (one clock).
  void push(fp::u64 value_bits);

  /// Drain the pipeline, fold the lanes, and return the total. The reducer
  /// can be reused afterwards (state resets).
  fp::u64 finish();

  int lanes() const { return static_cast<int>(lane_.size()); }
  long cycles() const { return cycles_; }
  long pushed() const { return pushed_; }
  std::uint8_t flags() const { return flags_; }

  /// Software reference with the identical lane + pairwise-tree order.
  static fp::u64 reference(const std::vector<fp::u64>& values,
                           fp::FpFormat fmt, const units::UnitConfig& cfg);

  const units::FpUnit& adder() const { return adder_; }

 private:
  void step(const std::optional<units::UnitInput>& in, int dest_lane);
  /// Run the pipeline empty, writing back everything in flight.
  void drain();

  fp::FpFormat fmt_;
  units::FpUnit adder_;
  std::vector<fp::u64> lane_;   // partial sums
  std::queue<int> in_flight_;   // destination lane per adder occupant
  long cycles_ = 0;
  long pushed_ = 0;
  int next_lane_ = 0;
  std::uint8_t flags_ = 0;
};

}  // namespace flopsim::kernel
