// Transposed-form FIR filter on a chain of multiplier+adder PEs — the
// signal-processing kernel from the paper's motivating applications
// ("radar/sonar signal processing, image processing"), and a different
// array topology from the matmul family: partial sums flow tap-to-tap
// through the adders instead of accumulating in place.
//
//   s_0[n]   = h_0 * x[n]
//   s_t[n]   = s_{t-1}[n-1] + h_t * x[n]
//   y[n]     = s_{T-1}[n]
//
// With L-cycle pipelined adders the tap-to-tap recurrence forces skew
// buffering: tap t's product must wait for the upstream partial of the
// previous sample, so FIFO depth grows along the chain — deep pipelining
// buys clock rate but costs alignment registers, the kernel-level face of
// the paper's area-vs-depth tradeoff. The simulation pairs operands
// through explicit queues (hardware's skew FIFOs) and reports their
// maximum depth.
//
// Output is bit-exact with the softfloat reference using the same
// recurrence order.
#pragma once

#include <vector>

#include "kernel/pe.hpp"  // PeConfig
#include "units/fp_unit.hpp"

namespace flopsim::kernel {

struct FirRun {
  std::vector<fp::u64> y;
  long cycles = 0;
  int max_skew_fifo = 0;  ///< deepest product queue observed (skew registers)
  std::uint8_t flags = 0;
};

class FirFilter {
 public:
  /// @param taps coefficient encodings h[0..T-1] in cfg.fmt.
  FirFilter(const std::vector<fp::u64>& taps, const PeConfig& cfg);

  /// Filter the sample stream (one sample per cycle in). Emits exactly
  /// x.size() outputs; the first T-1 use an implicit zero history.
  FirRun run(const std::vector<fp::u64>& x);

  int taps() const { return static_cast<int>(taps_.size()); }
  /// Steady-state latency from sample in to y out.
  int latency() const;
  device::Resources resources() const;
  double freq_mhz() const;

 private:
  std::vector<fp::u64> taps_;
  PeConfig cfg_;
  std::vector<units::FpUnit> mults_;
  std::vector<units::FpUnit> adders_;  // taps-1 of them (tap 0 has no add)
};

/// Reference with identical recurrence order under the paper env.
std::vector<fp::u64> reference_fir(const std::vector<fp::u64>& taps,
                                   const std::vector<fp::u64>& x,
                                   fp::FpFormat fmt,
                                   fp::RoundingMode rounding);

}  // namespace flopsim::kernel
