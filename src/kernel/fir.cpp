#include "kernel/fir.hpp"

#include <deque>
#include <stdexcept>

#include "fp/ops.hpp"

namespace flopsim::kernel {

FirFilter::FirFilter(const std::vector<fp::u64>& taps, const PeConfig& cfg)
    : taps_(taps.rbegin(), taps.rend()), cfg_(cfg) {
  // Transposed form: the tap nearest the output multiplies h[0], so the
  // chain holds the coefficients in reverse order.
  if (taps.empty()) throw std::invalid_argument("FirFilter: no taps");
  mults_.reserve(taps.size());
  for (std::size_t t = 0; t < taps.size(); ++t) {
    mults_.emplace_back(units::UnitKind::kMultiplier, cfg.fmt,
                        cfg.mult_config());
  }
  for (std::size_t t = 1; t < taps.size(); ++t) {
    adders_.emplace_back(units::UnitKind::kAdder, cfg.fmt,
                         cfg.adder_config());
  }
}

int FirFilter::latency() const {
  // Steady state: Lm + La + (T-2)(La-1); see header comment. Early outputs
  // (zero history) can emerge sooner.
  const int lm = cfg_.mult_stages;
  const int la = cfg_.adder_stages;
  const int t = taps();
  if (t == 1) return lm;
  return lm + la + std::max(0, t - 2) * std::max(1, la - 1);
}

device::Resources FirFilter::resources() const {
  device::Resources r;
  for (const auto& m : mults_) r += m.area().total;
  for (const auto& a : adders_) r += a.area().total;
  // Skew FIFOs: tap t buffers ~(t-1)(La-1) products of full width.
  const int la = cfg_.adder_stages;
  long fifo_words = 0;
  for (int t = 2; t < taps(); ++t) fifo_words += (t - 1) * (la - 1);
  r.ffs += static_cast<int>(fifo_words) * cfg_.fmt.total_bits();
  r.slices += static_cast<int>(fifo_words) * cfg_.fmt.total_bits() / 2;
  return r;
}

double FirFilter::freq_mhz() const {
  double f = mults_.front().freq_mhz();
  if (!adders_.empty()) f = std::min(f, adders_.front().freq_mhz());
  return f;
}

FirRun FirFilter::run(const std::vector<fp::u64>& x) {
  const int T = taps();
  const std::size_t n_samples = x.size();
  for (auto& m : mults_) m.reset();
  for (auto& a : adders_) a.reset();

  // Qp[t]: products waiting at tap t. Qs[t]: upstream partials waiting at
  // tap t (t >= 1), pre-seeded with the zero history for sample 0.
  std::vector<std::deque<fp::u64>> qp(static_cast<std::size_t>(T));
  std::vector<std::deque<fp::u64>> qs(static_cast<std::size_t>(T));
  for (int t = 1; t < T; ++t) qs[static_cast<std::size_t>(t)].push_back(0);

  FirRun run;
  run.y.reserve(n_samples);
  std::size_t fed = 0;
  long cycle = 0;
  const long limit = static_cast<long>(n_samples) * (T + 64) + 1024;
  while (run.y.size() < n_samples) {
    // Broadcast the next sample to every tap's multiplier.
    for (int t = 0; t < T; ++t) {
      auto& m = mults_[static_cast<std::size_t>(t)];
      if (fed < n_samples) {
        m.step(units::UnitInput{taps_[static_cast<std::size_t>(t)], x[fed],
                                false});
      } else {
        m.step(std::nullopt);
      }
      if (const auto out = m.output()) {
        qp[static_cast<std::size_t>(t)].push_back(out->result);
        run.flags |= out->flags;
      }
      run.max_skew_fifo = std::max(
          run.max_skew_fifo,
          static_cast<int>(qp[static_cast<std::size_t>(t)].size()));
    }
    if (fed < n_samples) ++fed;

    // Tap 0's partial is its product; taps >= 1 add product + upstream.
    if (!qp[0].empty()) {
      const fp::u64 s0 = qp[0].front();
      qp[0].pop_front();
      if (T == 1) {
        run.y.push_back(s0);
      } else {
        qs[1].push_back(s0);
      }
    }
    for (int t = 1; t < T; ++t) {
      auto& add = adders_[static_cast<std::size_t>(t - 1)];
      std::optional<units::UnitInput> in;
      if (!qp[static_cast<std::size_t>(t)].empty() &&
          !qs[static_cast<std::size_t>(t)].empty()) {
        in = units::UnitInput{qp[static_cast<std::size_t>(t)].front(),
                              qs[static_cast<std::size_t>(t)].front(), false};
        qp[static_cast<std::size_t>(t)].pop_front();
        qs[static_cast<std::size_t>(t)].pop_front();
      }
      add.step(in);
      if (const auto out = add.output()) {
        run.flags |= out->flags;
        if (t == T - 1) {
          run.y.push_back(out->result);
        } else {
          qs[static_cast<std::size_t>(t + 1)].push_back(out->result);
        }
      }
    }
    ++cycle;
    if (cycle > limit) {
      throw std::logic_error("FirFilter: pipeline deadlock");
    }
  }
  run.cycles = cycle;
  return run;
}

std::vector<fp::u64> reference_fir(const std::vector<fp::u64>& taps,
                                   const std::vector<fp::u64>& x,
                                   fp::FpFormat fmt,
                                   fp::RoundingMode rounding) {
  const int T = static_cast<int>(taps.size());
  const std::vector<fp::u64> chain(taps.rbegin(), taps.rend());
  fp::FpEnv env = fp::FpEnv::paper(rounding);
  std::vector<fp::FpValue> prev(static_cast<std::size_t>(T),
                                fp::make_zero(fmt));
  std::vector<fp::u64> y;
  y.reserve(x.size());
  for (fp::u64 xn : x) {
    std::vector<fp::FpValue> cur(static_cast<std::size_t>(T),
                                 fp::make_zero(fmt));
    for (int t = 0; t < T; ++t) {
      const fp::FpValue p = fp::mul(
          fp::FpValue(chain[static_cast<std::size_t>(t)], fmt),
          fp::FpValue(xn, fmt), env);
      cur[static_cast<std::size_t>(t)] =
          t == 0 ? p
                 : fp::add(prev[static_cast<std::size_t>(t - 1)], p, env);
    }
    y.push_back(cur[static_cast<std::size_t>(T - 1)].bits);
    prev = std::move(cur);
  }
  return y;
}

}  // namespace flopsim::kernel
