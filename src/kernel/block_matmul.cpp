#include "kernel/block_matmul.hpp"

#include <stdexcept>

namespace flopsim::kernel {

BlockMatmulStats block_matmul_stats(int n, int b, int pl) {
  if (b <= 0 || n <= 0 || n % b != 0) {
    throw std::invalid_argument("block_matmul: b must divide n");
  }
  BlockMatmulStats st;
  st.n = n;
  st.b = b;
  st.block_schedule = make_schedule(b, pl);
  const long grid = n / b;
  st.block_products = grid * grid * grid;
  st.cycles = st.block_products * st.block_schedule.total_cycles();
  st.mac_issues =
      st.block_products * st.block_schedule.issues_per_pe() * b;
  st.padded_issues =
      st.block_products * st.block_schedule.padded_issues_per_pe() * b;
  st.padding_fraction =
      st.mac_issues > 0
          ? static_cast<double>(st.padded_issues) / st.mac_issues
          : 0.0;
  return st;
}

BlockMatmulRun block_matmul(const Matrix& a, const Matrix& b_mat, int b,
                            const PeConfig& cfg) {
  const int n = a.n;
  if (b_mat.n != n) {
    throw std::invalid_argument("block_matmul: operand size mismatch");
  }
  LinearArrayMatmul array(b, cfg);
  const int grid = n / b;

  auto tile = [&](const Matrix& m, int bi, int bj) {
    Matrix t = Matrix::zero(b, cfg.fmt);
    for (int i = 0; i < b; ++i) {
      for (int j = 0; j < b; ++j) {
        t.at(i, j) = m.at(bi * b + i, bj * b + j);
      }
    }
    return t;
  };

  BlockMatmulRun out;
  out.c = Matrix::zero(n, cfg.fmt);
  long cycles = 0, issues = 0, padded = 0;
  Schedule sched{};
  for (int bi = 0; bi < grid; ++bi) {
    for (int bj = 0; bj < grid; ++bj) {
      Matrix acc = Matrix::zero(b, cfg.fmt);
      for (int bk = 0; bk < grid; ++bk) {
        const Matrix ta = tile(a, bi, bk);
        const Matrix tb = tile(b_mat, bk, bj);
        MatmulRun r = array.run(ta, tb, &acc);
        acc = std::move(r.c);
        cycles += r.cycles;
        issues += r.mac_issues;
        padded += r.padded_issues;
        out.hazards += r.hazards;
        sched = r.schedule;
      }
      for (int i = 0; i < b; ++i) {
        for (int j = 0; j < b; ++j) {
          out.c.at(bi * b + i, bj * b + j) = acc.at(i, j);
        }
      }
    }
  }
  out.stats = block_matmul_stats(n, b, sched.pl);
  // The analytic model must agree with what actually ran.
  if (out.stats.cycles != cycles || out.stats.mac_issues != issues ||
      out.stats.padded_issues != padded) {
    throw std::logic_error("block_matmul: analytic model diverged from sim");
  }
  return out;
}

}  // namespace flopsim::kernel
