// Kernel-level performance, resource, and energy metrics — the quantities
// behind Section 4.2 (GFLOPS, GFLOPS/W) and Section 5 (Figures 4-6).
#pragma once

#include "device/device.hpp"
#include "kernel/block_matmul.hpp"
#include "kernel/pe.hpp"
#include "power/energy_model.hpp"
#include "power/processors.hpp"

namespace flopsim::kernel {

/// A matrix-multiply design point: PE configuration + the analysis around
/// it. Construction instantiates one probe PE (cheap) to pull latencies,
/// frequencies and resource vectors from the structural units.
class KernelDesign {
 public:
  explicit KernelDesign(const PeConfig& cfg);

  const PeConfig& config() const { return cfg_; }
  /// PL: total MAC latency (multiplier + adder stages).
  int pl() const { return probe_.total_latency(); }
  /// The array clock: bounded by the slower unit.
  double freq_mhz() const { return probe_.freq_mhz(); }
  device::Resources pe_resources() const { return probe_.resources(); }

  /// PEs that fit on the device (the array size p).
  int max_pes(const device::Device& dev) const;
  /// Sustained device throughput for large problems: 2 FLOPs/cycle/PE.
  double device_gflops(const device::Device& dev) const;
  /// Full-device power (dynamic for all PEs + device static).
  double device_power_w(const device::Device& dev) const;
  double gflops_per_watt(const device::Device& dev) const;

  /// Latency in cycles / microseconds of an n x n product on an n-PE array
  /// (zero-padded below PL per the paper's rule).
  long latency_cycles(int n) const;
  double latency_us(int n) const;

  /// Per-PE energy breakdown for one n x n product (Figures 4 and 5):
  /// components MAC / Storage / IO / Misc, with zero-padding counted as
  /// real (wasted) MAC work.
  power::EnergyReport pe_energy(int n) const;
  /// Same for blocked execution with block size b (Figure 6): the b-PE
  /// array processes all (n/b)^3 block products.
  power::EnergyReport pe_energy_blocked(int n, int b) const;

  /// Energy wasted on zero-padding, as a fraction of MAC energy.
  double padding_waste_fraction(int n) const;

  /// General per-PE energy accounting from activity counts — lets other
  /// kernels (MVM, LU) reuse the same component model.
  power::EnergyReport energy_from_counts(long cycles, long issues_per_pe,
                                         long io_words_per_pe) const;

 private:

  PeConfig cfg_;
  ProcessingElement probe_;
};

/// Convenience: the paper's three reference pipelining configurations for
/// binary32 PEs — minimum (PL=10), moderate (PL=19), maximum (PL=25),
/// matching Figures 4-6's pl = 10 / 19 / 25.
PeConfig pe_min_pipelined();
PeConfig pe_moderate_pipelined();
PeConfig pe_max_pipelined();

/// Double-precision counterpart used in Section 4.2's double-precision
/// GFLOPS claim.
PeConfig pe_double_optimal();

}  // namespace flopsim::kernel
