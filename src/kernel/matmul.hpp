// Cycle-accurate linear-array matrix multiplication on the structural FP
// units — the kernel the paper uses to evaluate its cores (Section 4.2).
#pragma once

#include <vector>

#include "kernel/pe.hpp"
#include "kernel/schedule.hpp"

namespace flopsim::kernel {

/// Dense row-major matrix of operand encodings in a shared format.
struct Matrix {
  int n = 0;
  std::vector<fp::u64> bits;  // n*n, row-major

  static Matrix zero(int n, fp::FpFormat fmt);
  fp::u64& at(int r, int c) { return bits[static_cast<std::size_t>(r) * n + c]; }
  const fp::u64& at(int r, int c) const {
    return bits[static_cast<std::size_t>(r) * n + c];
  }
};

/// Build a matrix from doubles (rounded into fmt under the paper env).
Matrix matrix_from_doubles(const std::vector<double>& vals, int n,
                           fp::FpFormat fmt);

struct MatmulRun {
  Matrix c;
  Schedule schedule;
  long cycles = 0;
  long mac_issues = 0;     ///< across all PEs, incl. padding
  long padded_issues = 0;  ///< zero-padded MACs (wasted)
  long hazards = 0;
  std::uint8_t flags = 0;  ///< accumulated FP exception flags
};

class LinearArrayMatmul {
 public:
  /// Array of p = n PEs (one C column each).
  LinearArrayMatmul(int n, const PeConfig& cfg);

  /// Compute C = C0 + A*B cycle-by-cycle on the array. C0 defaults to zero;
  /// passing an accumulator matrix is how block decomposition chains block
  /// products. Throws std::runtime_error on a RAW hazard unless the
  /// schedule padding covers the latency (it always does with the default
  /// threshold).
  MatmulRun run(const Matrix& a, const Matrix& b,
                const Matrix* c0 = nullptr);

  /// Override the padding threshold (default: PL = Lmul + Ladd, the paper's
  /// rule). Used by tests to demonstrate the hazard window.
  void set_pad_threshold(int pl) { pad_override_ = pl; }

  /// A fresh array with the same geometry and PE configuration (pad
  /// override included) — one replica per campaign worker.
  LinearArrayMatmul clone() const {
    LinearArrayMatmul copy(n_, cfg_);
    copy.pad_override_ = pad_override_;
    return copy;
  }

  int n() const { return n_; }
  const ProcessingElement& pe(int j) const {
    return pes_[static_cast<std::size_t>(j)];
  }
  /// Mutable access for fault-hook attachment (see src/fault/).
  ProcessingElement& pe(int j) { return pes_[static_cast<std::size_t>(j)]; }

 private:
  int n_;
  PeConfig cfg_;
  std::vector<ProcessingElement> pes_;
  int pad_override_ = -1;
};

/// Reference GEMM with the same arithmetic and accumulation order as the
/// array (k ascending), under the paper env: the array must match this
/// bit-for-bit.
Matrix reference_gemm(const Matrix& a, const Matrix& b, fp::FpFormat fmt,
                      fp::RoundingMode rounding, const Matrix* c0 = nullptr);

/// Reference for fused-MAC PEs: acc = fma(a, b, acc) per k, single
/// rounding per accumulate.
Matrix reference_gemm_fused(const Matrix& a, const Matrix& b,
                            fp::FpFormat fmt, fp::RoundingMode rounding,
                            const Matrix* c0 = nullptr);

}  // namespace flopsim::kernel
