// Domain-specific energy modeling (Choi et al., ERSA'02), as used by the
// paper's Section 5.
//
// The architecture is decomposed into components (here: MAC, Storage, I/O,
// Misc). "From the algorithm, we know when and for how long each component
// is active and its switching activity" — a component contributes
// P(resources, activity) * active_cycles of energy. The kernel module
// supplies those activity schedules.
#pragma once

#include <string>
#include <vector>

#include "device/resources.hpp"
#include "device/tech.hpp"
#include "power/power_model.hpp"

namespace flopsim::power {

struct Component {
  std::string name;            ///< "MAC", "Storage", "I/O", "Misc"
  device::Resources res;
  double activity = 0.5;       ///< toggle rate while active
  double active_cycles = 0.0;  ///< cycles this component is busy
};

struct EnergyEntry {
  std::string name;
  double energy_nj = 0.0;
  double avg_power_mw = 0.0;  ///< energy / total runtime
};

struct EnergyReport {
  std::vector<EnergyEntry> entries;
  double total_nj = 0.0;
  double total_cycles = 0.0;
  double freq_mhz = 0.0;

  /// Energy of a named component (0 if absent).
  double component_nj(const std::string& name) const;
};

/// Assemble the report: each component burns its power over its active
/// cycles plus clock power over the whole runtime.
EnergyReport estimate_energy(const std::vector<Component>& components,
                             double freq_mhz, double total_cycles,
                             const device::TechModel& tech);

}  // namespace flopsim::power
