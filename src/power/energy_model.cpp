#include "power/energy_model.hpp"

namespace flopsim::power {

double EnergyReport::component_nj(const std::string& name) const {
  for (const EnergyEntry& e : entries) {
    if (e.name == name) return e.energy_nj;
  }
  return 0.0;
}

EnergyReport estimate_energy(const std::vector<Component>& components,
                             double freq_mhz, double total_cycles,
                             const device::TechModel& tech) {
  EnergyReport rep;
  rep.freq_mhz = freq_mhz;
  rep.total_cycles = total_cycles;
  const double runtime_s =
      freq_mhz > 0.0 ? total_cycles / (freq_mhz * 1e6) : 0.0;
  for (const Component& c : components) {
    const PowerBreakdown p = estimate_power(c.res, freq_mhz, c.activity, tech);
    // Clock power runs for the whole execution (the clock tree does not
    // gate with the component); switching power only while active.
    const double active_s =
        freq_mhz > 0.0 ? c.active_cycles / (freq_mhz * 1e6) : 0.0;
    const double switching_mw =
        p.logic_mw + p.signal_mw + p.bmult_mw + p.bram_mw;
    const double e_nj =
        (p.clock_mw * runtime_s + switching_mw * active_s) * 1e6;
    rep.entries.push_back(
        {c.name, e_nj, runtime_s > 0.0 ? e_nj / (runtime_s * 1e6) : 0.0});
    rep.total_nj += e_nj;
  }
  return rep;
}

}  // namespace flopsim::power
