#include "power/activity.hpp"

#include <random>
#include <vector>

#include "fp/bits.hpp"

namespace flopsim::power {

ActivityStats measure_activity(units::FpUnit& unit, int n,
                               std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const fp::FpFormat fmt = unit.format();

  unit.reset();
  std::vector<rtl::SignalSet> prev = unit.latches();
  // Per-bit toggle support: a register bit counts toward the activity
  // denominator only if it ever toggles during the workload (bits that are
  // constant are either unused lanes or tied logic and burn no switching
  // power).
  std::vector<std::array<fp::u64, rtl::kMaxSignals>> support(
      prev.size(), std::array<fp::u64, rtl::kMaxSignals>{});
  long total_toggles = 0;
  long cycles = 0;
  for (int i = 0; i < n + unit.latency(); ++i) {
    std::optional<units::UnitInput> in;
    if (i < n) {
      in = units::UnitInput{rng() & fmt.bits_mask(), rng() & fmt.bits_mask(),
                            (rng() & 1) != 0 &&
                                unit.kind() == units::UnitKind::kAdder};
    }
    unit.step(in);
    const auto& cur = unit.latches();
    for (std::size_t s = 0; s < cur.size(); ++s) {
      for (int lane = 0; lane < rtl::kMaxSignals; ++lane) {
        const fp::u64 diff = cur[s][lane] ^ prev[s][lane];
        total_toggles += fp::popcount64(diff);
        support[s][static_cast<std::size_t>(lane)] |= diff;
      }
    }
    prev = cur;
    ++cycles;
  }
  unit.reset();

  long support_bits = 0;
  for (const auto& stage : support) {
    for (fp::u64 mask : stage) support_bits += fp::popcount64(mask);
  }

  ActivityStats st;
  st.cycles = cycles;
  st.bits_observed = support_bits;
  st.avg_toggle_rate =
      cycles > 0 && support_bits > 0
          ? static_cast<double>(total_toggles) /
                (static_cast<double>(cycles) * support_bits)
          : 0.0;
  return st;
}

}  // namespace flopsim::power
