#include "power/unit_power.hpp"

namespace flopsim::power {

double avg_pieces_per_stage(const units::FpUnit& unit) {
  return static_cast<double>(unit.pieces().size()) / unit.stages();
}

PowerBreakdown unit_power(const units::FpUnit& unit, double freq_mhz,
                          double base_activity, double glitch_coeff) {
  const double activity =
      base_activity *
      glitch_factor(avg_pieces_per_stage(unit), glitch_coeff);
  return estimate_power(unit.area().total, freq_mhz, activity,
                        unit.config().tech);
}

}  // namespace flopsim::power
