// Toggle-activity measurement from cycle-accurate simulation.
//
// XPower needs switching activity; the paper's authors fed it simulation
// traces. We do the equivalent: drive a unit with a workload and count, per
// cycle, the fraction of latched bits that toggled.
#pragma once

#include <cstdint>

#include "units/fp_unit.hpp"

namespace flopsim::power {

struct ActivityStats {
  double avg_toggle_rate = 0.0;  ///< toggled-bit fraction per cycle, [0,1]
  long cycles = 0;
  long bits_observed = 0;
};

/// Drive `unit` with `n` random operand pairs (seeded deterministically) and
/// measure the average toggle rate of its pipeline state.
ActivityStats measure_activity(units::FpUnit& unit, int n,
                               std::uint64_t seed = 0x7051);

}  // namespace flopsim::power
