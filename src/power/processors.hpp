// Reference general-purpose processor models for the paper's GFLOPS and
// GFLOPS/W comparisons (Section 4.2): a 2.54 GHz Pentium 4 and a 1 GHz G4.
//
// The paper cites vendor/benchmark figures rather than measuring; we encode
// sustained matrix-multiply GFLOPS and typical dissipation of the same
// parts. See EXPERIMENTS.md for provenance.
#pragma once

#include <string>
#include <vector>

namespace flopsim::power {

struct ProcessorModel {
  std::string name;
  double clock_ghz = 0.0;
  double gflops_single = 0.0;  ///< sustained single-precision matmul
  double gflops_double = 0.0;  ///< sustained double-precision matmul
  double power_w = 0.0;        ///< typical dissipation under load

  double gflops_per_watt_single() const { return gflops_single / power_w; }
  double gflops_per_watt_double() const { return gflops_double / power_w; }
};

/// 2.54 GHz Intel Pentium 4 (Northwood): SSE/SSE2 matmul, ~60 W.
ProcessorModel pentium4_254();
/// 1 GHz Motorola PowerPC G4 (7455): AltiVec matmul, ~21.3 W.
ProcessorModel g4_1000();

const std::vector<ProcessorModel>& processor_database();

}  // namespace flopsim::power
