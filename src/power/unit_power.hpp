// Power of a generated FP unit — the quantity of the paper's Figure 3 and
// Table 4 ("power values include only the clocks, signal and logic power").
#pragma once

#include "power/power_model.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::power {

/// Average combinational pieces per pipeline stage — drives glitching.
double avg_pieces_per_stage(const units::FpUnit& unit);

/// Dynamic power of the unit at `freq_mhz`. `base_activity` is the data
/// toggle rate (0.5 default, or power::measure_activity's result); glitch
/// amplification from the unit's stage depth is applied on top.
PowerBreakdown unit_power(const units::FpUnit& unit, double freq_mhz,
                          double base_activity = 0.5,
                          double glitch_coeff = 0.45);

}  // namespace flopsim::power
