#include "power/processors.hpp"

namespace flopsim::power {

ProcessorModel pentium4_254() {
  // Sustained SGEMM on a Northwood P4 was ~1.3 FLOP/cycle with tuned SSE
  // (the paper's 6x claim against its 19.6 GFLOPS implies ~3.3 GFLOPS).
  ProcessorModel p;
  p.name = "Pentium4 2.54GHz";
  p.clock_ghz = 2.54;
  p.gflops_single = 3.3;
  p.gflops_double = 1.8;
  p.power_w = 59.8;
  return p;
}

ProcessorModel g4_1000() {
  // AltiVec SGEMM sustains ~6.5 GFLOPS at 1 GHz (the paper's 3x claim);
  // AltiVec has no double-precision SIMD, so double falls to the scalar FPU.
  ProcessorModel p;
  p.name = "PowerPC G4 1GHz";
  p.clock_ghz = 1.0;
  p.gflops_single = 6.5;
  p.gflops_double = 0.9;
  p.power_w = 21.3;
  return p;
}

const std::vector<ProcessorModel>& processor_database() {
  static const std::vector<ProcessorModel> db = {pentium4_254(), g4_1000()};
  return db;
}

}  // namespace flopsim::power
