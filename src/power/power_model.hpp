// XPower-like dynamic power estimation.
//
// The paper reports power from Xilinx XPower, counting "only the clocks,
// signal and logic power" (inputs/outputs and quiescent power excluded).
// This model mirrors that decomposition: each contribution is an activity-
// and frequency-scaled product of the design's resource counts and the
// technology's per-resource coefficients.
#pragma once

#include "device/resources.hpp"
#include "device/tech.hpp"

namespace flopsim::power {

struct PowerBreakdown {
  double clock_mw = 0.0;   ///< clock tree + flip-flops (activity-independent)
  double logic_mw = 0.0;   ///< LUT switching
  double signal_mw = 0.0;  ///< net switching
  double bmult_mw = 0.0;   ///< embedded multipliers
  double bram_mw = 0.0;    ///< block RAM ports

  double total_mw() const {
    return clock_mw + logic_mw + signal_mw + bmult_mw + bram_mw;
  }
};

/// Dynamic power of a design occupying `r`, clocked at `freq_mhz`, with
/// average toggle activity `activity` in [0, 1] (fraction of nodes toggling
/// per cycle). XPower's default assumption is ~0.5 for datapaths;
/// power::measure_activity() computes the true value from simulation.
PowerBreakdown estimate_power(const device::Resources& r, double freq_mhz,
                              double activity,
                              const device::TechModel& tech);

/// Energy in nJ for running at `freq_mhz` for `cycles` clock cycles.
double energy_nj(const PowerBreakdown& p, double freq_mhz, double cycles);

/// Glitch multiplier on switching activity as a function of the average
/// combinational depth per stage (pieces/stage). Long unregistered chains
/// glitch — spurious transitions multiply switching power; pipeline
/// registers stop glitch propagation (Wilton et al., the effect behind the
/// paper's "deeply pipelined architecture ... might consume the least
/// energy"). 1.0 at depth 1; capped at 3.0.
double glitch_factor(double avg_pieces_per_stage);
/// Same, exposing the growth coefficient for ablation (default 0.45).
double glitch_factor(double avg_pieces_per_stage, double coeff);

}  // namespace flopsim::power
