#include "power/power_model.hpp"

namespace flopsim::power {

PowerBreakdown estimate_power(const device::Resources& r, double freq_mhz,
                              double activity,
                              const device::TechModel& tech) {
  PowerBreakdown p;
  // The clock tree toggles every cycle regardless of data activity.
  p.clock_mw = tech.clock_power_coeff() * (r.ffs / 100.0) * freq_mhz;
  p.logic_mw =
      tech.logic_power_coeff() * (r.luts / 100.0) * freq_mhz * activity;
  // Nets: every LUT output and FF output is a routed signal.
  const double nets = (r.luts + r.ffs) / 100.0;
  p.signal_mw = tech.signal_power_coeff() * nets * freq_mhz * activity;
  p.bmult_mw = tech.bmult_power_coeff() * r.bmults * freq_mhz * activity;
  p.bram_mw = tech.bram_power_coeff() * r.brams * freq_mhz * activity;
  return p;
}

double glitch_factor(double avg_pieces_per_stage) {
  return glitch_factor(avg_pieces_per_stage, 0.45);
}

double glitch_factor(double avg_pieces_per_stage, double coeff) {
  if (avg_pieces_per_stage <= 1.0) return 1.0;
  const double g = 1.0 + coeff * (avg_pieces_per_stage - 1.0);
  return g > 3.0 ? 3.0 : g;
}

double energy_nj(const PowerBreakdown& p, double freq_mhz, double cycles) {
  if (freq_mhz <= 0.0) return 0.0;
  const double seconds = cycles / (freq_mhz * 1e6);
  return p.total_mw() * 1e-3 /*W*/ * seconds * 1e9 /*nJ*/;
}

}  // namespace flopsim::power
