// Minimal JSON parsing for the serve layer's request side.
//
// The repo's machine-readable *output* all funnels through obs::JsonObject
// (insertion-ordered fields, ostream-default double formatting — the
// byte-identity anchor for cached responses). This header adds the missing
// half: a small recursive-descent reader for the JSONL *requests* a
// flopsim-serve client sends. It parses one value per line into an
// immutable tree and offers typed accessors with defaults, which is all
// the request schema needs — no serialization, no mutation, no DOM
// editing.
//
// Integers are kept exact (a number token without '.', 'e', 'E' parses as
// long long), so seeds up to 2^63-1 survive the trip; everything else is
// a double. Parse failures return nullopt with a one-line error message
// naming the byte offset — the server turns that into a status-2
// response instead of dying.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace flopsim::serve {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  /// Exact integer (parsed without '.', 'e', 'E').
  bool is_int() const { return kind_ == Kind::kInt; }

  // Typed reads; the default comes back on any kind mismatch.
  bool as_bool(bool def = false) const {
    return kind_ == Kind::kBool ? bool_ : def;
  }
  long long as_int(long long def = 0) const;
  double as_double(double def = 0.0) const;
  const std::string& as_string(const std::string& def = empty_string()) const {
    return kind_ == Kind::kString ? str_ : def;
  }

  /// Object member by key; nullptr when absent or not an object.
  const JsonValue* get(const std::string& key) const;
  /// Member names in source order (objects reject duplicate keys at parse).
  const std::vector<std::string>& keys() const { return keys_; }

  const std::vector<JsonValue>& items() const { return items_; }
  std::size_t size() const {
    return kind_ == Kind::kArray ? items_.size() : keys_.size();
  }

  // Builders (the parser's internals; tests use them for fixtures).
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue integer(long long v);
  static JsonValue number(double v);
  static JsonValue string(std::string s);

 private:
  friend class Parser;
  static const std::string& empty_string();

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  long long int_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;            // kArray
  std::vector<std::string> keys_;           // kObject, source order
  std::map<std::string, JsonValue> members_;  // kObject
};

/// Parse one complete JSON value (trailing whitespace allowed, anything
/// else after it is an error). On failure returns nullopt and, when
/// `error` is non-null, stores "offset N: <what>".
std::optional<JsonValue> parse_json(const std::string& text,
                                    std::string* error = nullptr);

}  // namespace flopsim::serve
