#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "analysis/pareto.hpp"
#include "analysis/seu.hpp"
#include "analysis/sweep.hpp"
#include "fault/checkpoint.hpp"
#include "fault/hardening.hpp"
#include "kernel/matmul.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "power/unit_power.hpp"
#include "serve/cache.hpp"
#include "serve/telemetry.hpp"
#include "units/converter_unit.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::serve {

namespace {

/// Per-request latency buckets, microseconds: cache hits land in the
/// first few, interpreted campaigns in the ms-to-seconds range.
const std::vector<double> kLatencyBoundsUs = {
    50,    100,    250,    500,     1000,    2500,   5000,
    10000, 25000,  50000,  100000,  250000,  500000, 1000000};

struct BadRequest {
  explicit BadRequest(std::string msg) : msg(std::move(msg)) {}
  std::string msg;
};

/// Strict member-name check: a typo'd field silently falling back to its
/// default would poison the cache key, so unknown names are status 2.
void check_members(const JsonValue& body, const std::set<std::string>& allowed) {
  for (const std::string& key : body.keys()) {
    if (allowed.find(key) == allowed.end()) {
      throw BadRequest("unknown field: " + key);
    }
  }
}

long long int_field(const JsonValue& body, const char* key, long long def,
                    long long min, long long max) {
  const JsonValue* v = body.get(key);
  if (v == nullptr) return def;
  if (!v->is_int()) throw BadRequest(std::string(key) + " must be an integer");
  const long long n = v->as_int();
  if (n < min || n > max) {
    throw BadRequest(std::string(key) + " out of range [" +
                     std::to_string(min) + ", " + std::to_string(max) + "]");
  }
  return n;
}

double fraction_field(const JsonValue& body, const char* key, double def) {
  const JsonValue* v = body.get(key);
  if (v == nullptr) return def;
  if (!v->is_number()) throw BadRequest(std::string(key) + " must be a number");
  const double x = v->as_double();
  if (!(x >= 0.0 && x <= 1.0)) {
    throw BadRequest(std::string(key) + " out of range [0, 1]");
  }
  return x;
}

bool bool_field(const JsonValue& body, const char* key, bool def) {
  const JsonValue* v = body.get(key);
  if (v == nullptr) return def;
  if (!v->is_bool()) throw BadRequest(std::string(key) + " must be a boolean");
  return v->as_bool();
}

std::string string_field(const JsonValue& body, const char* key,
                         const std::string& def) {
  const JsonValue* v = body.get(key);
  if (v == nullptr) return def;
  if (!v->is_string()) throw BadRequest(std::string(key) + " must be a string");
  return v->as_string();
}

units::UnitKind kind_field(const JsonValue& body) {
  const std::string op = string_field(body, "op", "");
  if (op == "add") return units::UnitKind::kAdder;
  if (op == "mul") return units::UnitKind::kMultiplier;
  if (op == "div") return units::UnitKind::kDivider;
  if (op == "sqrt") return units::UnitKind::kSqrt;
  if (op == "mac") return units::UnitKind::kMac;
  throw BadRequest("unknown op: \"" + op + "\"");
}

fp::FpFormat format_of_bits(long long bits, const char* key) {
  switch (bits) {
    case 16: return fp::FpFormat::binary16();
    case 32: return fp::FpFormat::binary32();
    case 48: return fp::FpFormat::binary48();
    case 64: return fp::FpFormat::binary64();
    default:
      throw BadRequest(std::string(key) + " must be one of 16/32/48/64");
  }
}

fault::Scheme scheme_field(const JsonValue& body) {
  const std::string name = string_field(body, "scheme", "none");
  if (name == "none") return fault::Scheme::kNone;
  const std::optional<fault::Scheme> s = fault::try_parse_scheme(name);
  if (!s.has_value()) throw BadRequest("unknown scheme: \"" + name + "\"");
  return *s;
}

device::Objective objective_field(const JsonValue& body) {
  const std::string name = string_field(body, "objective", "area");
  if (name == "area") return device::Objective::kArea;
  if (name == "speed") return device::Objective::kSpeed;
  throw BadRequest("objective must be \"area\" or \"speed\"");
}

const char* objective_name(device::Objective o) {
  return o == device::Objective::kSpeed ? "speed" : "area";
}

/// Cache lookup timed into the trace's cache phase; stamps hit/miss.
std::optional<std::string> timed_lookup(ResultCache* cache, std::uint64_t key,
                                        RequestTrace* rt) {
  if (cache == nullptr) return std::nullopt;
  if (rt != nullptr) rt->phase_begin(Phase::kCache);
  std::optional<std::string> hit = cache->lookup(key);
  if (rt != nullptr) {
    rt->phase_end(Phase::kCache);
    rt->cache = hit.has_value() ? 1 : 0;
  }
  return hit;
}

/// Cache fill, accumulated into the same cache phase as the lookup.
void timed_insert(ResultCache* cache, std::uint64_t key,
                  const std::string& rendered, RequestTrace* rt) {
  if (cache == nullptr) return;
  if (rt != nullptr) rt->phase_begin(Phase::kCache);
  cache->insert(key, rendered);
  if (rt != nullptr) rt->phase_end(Phase::kCache);
}

void area_fields(obs::JsonObject& o, const device::Resources& area) {
  o.field("slices", area.slices)
      .field("luts", area.luts)
      .field("ffs", area.ffs)
      .field("bmults", area.bmults)
      .field("brams", area.brams);
}

}  // namespace

Service::Service(ServiceConfig cfg, ResultCache* cache, obs::Registry& reg)
    : cfg_(cfg), cache_(cache), reg_(reg) {
  // Touch the request metrics once so a fresh server's /metrics endpoint
  // names them before the first request arrives.
  reg_.counter("serve.requests");
  reg_.counter("serve.requests.bad");
  reg_.counter("serve.requests.failed");
  reg_.counter("serve.requests.rejected");
  reg_.histogram("serve.request.latency_us", kLatencyBoundsUs);
}

ParsedRequest Service::parse(const std::string& line) const {
  ParsedRequest req;
  req.id_json = "null";
  std::string parse_error;
  const std::optional<JsonValue> parsed = parse_json(line, &parse_error);
  if (!parsed.has_value()) {
    req.status = 2;
    req.error = "malformed JSON: " + parse_error;
    return req;
  }
  if (!parsed->is_object()) {
    req.status = 2;
    req.error = "request must be a JSON object";
    return req;
  }
  req.body = *parsed;
  if (const JsonValue* id = req.body.get("id"); id != nullptr) {
    if (id->is_int()) {
      req.id_json = std::to_string(id->as_int());
    } else if (id->is_string()) {
      req.id_json = "\"" + obs::json_escape(id->as_string()) + "\"";
    } else {
      req.status = 2;
      req.error = "id must be an integer or a string";
      return req;
    }
  }
  const JsonValue* type = req.body.get("type");
  if (type == nullptr || !type->is_string()) {
    req.status = 2;
    req.error = "missing \"type\"";
    return req;
  }
  req.type = type->as_string();
  static const std::set<std::string> kTypes = {"ping", "plan", "campaign",
                                              "metrics", "shutdown"};
  if (kTypes.find(req.type) == kTypes.end()) {
    req.status = 2;
    req.error = "unknown type: \"" + req.type + "\"";
  }
  return req;
}

std::string Service::error_response(const std::string& id_json, int status,
                                    const std::string& message) const {
  obs::JsonObject o;
  o.field_raw("id", id_json.empty() ? "null" : id_json)
      .field("status", status)
      .field("error", message);
  return o.str();
}

std::string Service::handle_line(const std::string& line,
                                 Telemetry* telemetry) {
  if (telemetry == nullptr) return evaluate(parse(line));
  std::shared_ptr<RequestTrace> rt = telemetry->begin();
  rt->phase_begin(Phase::kParse);
  const ParsedRequest req = parse(line);
  rt->phase_end(Phase::kParse);
  if (!req.type.empty()) rt->type = req.type;
  rt->id_json = req.id_json;
  std::string response = evaluate(req, rt.get());
  telemetry->finish(*rt);
  return response;
}

std::string Service::evaluate(const ParsedRequest& req, RequestTrace* rt) {
  const auto t0 = std::chrono::steady_clock::now();
  reg_.counter("serve.requests").inc();
  std::string response;
  int response_status = 0;
  if (req.status != 0) {
    reg_.counter("serve.requests.bad").inc();
    response_status = req.status;
    response = error_response(req.id_json, req.status, req.error);
  } else {
    int status = 0;
    bool cacheable = false;
    std::uint64_t key = 0;
    std::string body;
    try {
      // Work below runs in the request's trace scope: tracer spans
      // recorded here (and in exec:: worker chunks, which inherit the
      // caller's context) parent to this request's eval span.
      obs::ScopedSpanContext scope(rt != nullptr ? rt->eval_context()
                                                 : obs::SpanContext{});
      if (req.type == "ping") {
        obs::JsonObject o;
        o.field("pong", true);
        body = o.str();
      } else if (req.type == "shutdown") {
        obs::JsonObject o;
        o.field("shutting_down", true);
        body = o.str();
      } else if (req.type == "metrics") {
        body = metrics_body(req.body);
      } else if (req.type == "plan") {
        body = evaluate_plan(req.body, &key, &cacheable, &status, rt);
      } else {
        body = evaluate_campaign(req.body, &key, &cacheable, &status, rt);
      }
    } catch (const BadRequest& e) {
      status = 2;
      body = e.msg;
    } catch (const std::invalid_argument& e) {
      status = 2;
      body = e.what();
    } catch (const std::exception& e) {
      status = 1;
      body = e.what();
    }
    response_status = status;
    if (status == 0) {
      obs::JsonObject o;
      o.field_raw("id", req.id_json).field("status", 0).field_raw("result",
                                                                  body);
      response = o.str();
    } else {
      reg_.counter(status == 2 ? "serve.requests.bad"
                               : "serve.requests.failed")
          .inc();
      response = error_response(req.id_json, status, body);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double total_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  reg_.histogram("serve.request.latency_us", kLatencyBoundsUs)
      .observe(total_us);
  if (rt != nullptr) {
    rt->status = response_status;
    // Eval is the decomposition's remainder: everything this call did
    // except the cache phase (recorded by evaluate_plan/campaign).
    rt->phase_record(Phase::kEval, rt->us_since_start(t0),
                     total_us - rt->phase_us(Phase::kCache));
  }
  return response;
}

// --- plan -----------------------------------------------------------------

std::string Service::evaluate_plan(const JsonValue& body, std::uint64_t* key,
                                   bool* cacheable, int* status,
                                   RequestTrace* rt) const {
  (void)status;
  const std::string op = string_field(body, "op", "");
  if (op == "cvt") {
    check_members(body, {"id", "type", "op", "src_bits", "dst_bits",
                         "stages", "objective"});
    const fp::FpFormat src =
        format_of_bits(int_field(body, "src_bits", 0, 0, 1 << 20),
                       "src_bits");
    const fp::FpFormat dst =
        format_of_bits(int_field(body, "dst_bits", 0, 0, 1 << 20),
                       "dst_bits");
    const long long stages = int_field(body, "stages", 1, 1, 256);
    units::UnitConfig cfg;
    cfg.stages = static_cast<int>(stages);
    cfg.objective = objective_field(body);

    fault::SpecHash h;
    h.str("serve.plan.cvt v1");
    h.str(src.name()).str(dst.name()).i64(stages);
    h.i64(static_cast<long long>(cfg.objective));
    *key = h.value();
    *cacheable = true;
    if (std::optional<std::string> hit = timed_lookup(cache_, *key, rt);
        hit.has_value()) {
      return *hit;
    }

    const units::FormatConverter cvt(src, dst, cfg);
    const rtl::Timing t = cvt.timing();
    const rtl::AreaBreakdown a = cvt.area();
    obs::JsonObject o;
    o.field("name", cvt.name())
        .field("op", "cvt")
        .field("src_bits", static_cast<long>(src.total_bits()))
        .field("dst_bits", static_cast<long>(dst.total_bits()))
        .field("stages", cvt.stages())
        .field("max_stages", cvt.max_stages())
        .field("freq_mhz", t.freq_mhz)
        .field("critical_ns", t.critical_ns);
    area_fields(o, a.total);
    const std::string rendered = o.str();
    timed_insert(cache_, *key, rendered, rt);
    return rendered;
  }

  check_members(body, {"id", "type", "op", "bits", "stages", "objective",
                       "ieee", "fabric", "harden"});
  const units::UnitKind kind = kind_field(body);
  const fp::FpFormat fmt =
      format_of_bits(int_field(body, "bits", 32, 0, 1 << 20), "bits");
  // stages 0 (or absent): serve the freq/area optimum, like flopsim-gen
  // with no depth argument — the depth sweep rides along in the response.
  const long long stages = int_field(body, "stages", 0, 0, 256);
  units::UnitConfig cfg;
  cfg.objective = objective_field(body);
  cfg.ieee_mode = bool_field(body, "ieee", false);
  cfg.use_embedded_multipliers = !bool_field(body, "fabric", false);
  std::optional<fault::Scheme> harden;
  if (const JsonValue* hv = body.get("harden"); hv != nullptr) {
    if (!hv->is_string()) throw BadRequest("harden must be a string");
    harden = fault::try_parse_scheme(hv->as_string());
    if (!harden.has_value()) {
      throw BadRequest("unknown hardening scheme: \"" + hv->as_string() +
                       "\"");
    }
  }

  fault::SpecHash h;
  h.str("serve.plan v1");
  h.str(units::to_string(kind)).str(fmt.name()).i64(stages);
  h.i64(static_cast<long long>(cfg.objective));
  h.i64(cfg.ieee_mode ? 1 : 0).i64(cfg.use_embedded_multipliers ? 1 : 0);
  h.i64(harden.has_value() ? static_cast<long long>(*harden) : -1);
  *key = h.value();
  *cacheable = true;
  if (std::optional<std::string> hit = timed_lookup(cache_, *key, rt);
      hit.has_value()) {
    return *hit;
  }

  std::optional<analysis::Selection> sel;
  if (stages == 0) {
    const analysis::SweepResult sweep =
        analysis::sweep_unit(kind, fmt, cfg.objective, cfg.tech,
                             cfg_.threads);
    sel = analysis::select_min_max_opt(sweep);
    cfg.stages = sel->opt.stages;
  } else {
    cfg.stages = static_cast<int>(stages);
  }

  const units::FpUnit unit(kind, fmt, cfg);
  const rtl::Timing t = unit.timing();
  const rtl::AreaBreakdown a = unit.area();
  obs::JsonObject o;
  o.field("name", unit.name())
      .field("op", units::to_string(kind))
      .field("bits", static_cast<long>(fmt.total_bits()))
      .field("stages", unit.stages())
      .field("max_stages", unit.max_stages())
      .field("objective", objective_name(cfg.objective))
      .field("freq_mhz", t.freq_mhz)
      .field("critical_ns", t.critical_ns);
  area_fields(o, a.total);
  o.field("pipeline_ffs", a.pipeline_ffs)
      .field("absorbed_ffs", a.absorbed_ffs)
      .field("freq_per_area", unit.freq_per_area())
      .field("power_mw_100", power::unit_power(unit, 100.0).total_mw())
      .field("latency", unit.latency());
  if (sel.has_value()) {
    obs::JsonObject s;
    s.field("min_stages", sel->min.stages)
        .field("opt_stages", sel->opt.stages)
        .field("max_stages", sel->max.stages)
        .field("opt_freq_mhz", sel->opt.freq_mhz)
        .field("opt_freq_per_area", sel->opt.freq_per_area);
    o.field_raw("selection", s.str());
  }
  if (harden.has_value()) {
    const fault::HardeningCost hc = fault::hardening_cost(unit, *harden);
    obs::JsonObject hj;
    hj.field("scheme", fault::to_string(*harden))
        .field("area_factor", hc.area_factor)
        .field("freq_mhz", hc.freq_mhz)
        .field("freq_factor", hc.freq_factor)
        .field("power_mw_100", hc.power_mw_100)
        .field("power_factor", hc.power_factor)
        .field("extra_latency_cycles", hc.extra_latency_cycles);
    area_fields(hj, hc.total);
    o.field_raw("harden", hj.str());
  }
  const std::string rendered = o.str();
  timed_insert(cache_, *key, rendered, rt);
  return rendered;
}

// --- campaign -------------------------------------------------------------

std::string Service::evaluate_campaign(const JsonValue& body,
                                       std::uint64_t* key, bool* cacheable,
                                       int* status, RequestTrace* rt) const {
  (void)status;
  const std::string kernel = string_field(body, "kernel", "unit");
  if (kernel == "matmul") {
    check_members(body, {"id", "type", "kernel", "n", "bits", "faults",
                         "seed", "scheme", "accumulator_fraction",
                         "config_fraction", "scrub_period_cycles",
                         "adder_stages", "mult_stages"});
    analysis::MatmulSeuConfig camp;
    camp.n = static_cast<int>(int_field(body, "n", 4, 1, 64));
    camp.faults = static_cast<int>(int_field(body, "faults", 24, 1, 1 << 20));
    camp.seed = static_cast<std::uint64_t>(
        int_field(body, "seed", 0x5eed,
                  std::numeric_limits<long long>::min(),
                  std::numeric_limits<long long>::max()));
    camp.scheme = scheme_field(body);
    camp.accumulator_fraction =
        fraction_field(body, "accumulator_fraction", 0.5);
    camp.config_fraction = fraction_field(body, "config_fraction", 0.0);
    camp.scrub_period_cycles =
        static_cast<long>(int_field(body, "scrub_period_cycles", 0, 0,
                                    1LL << 40));
    camp.threads = cfg_.threads;
    camp.backend = cfg_.backend;
    kernel::PeConfig pe;
    pe.fmt = format_of_bits(int_field(body, "bits", 32, 0, 1 << 20), "bits");
    pe.adder_stages =
        static_cast<int>(int_field(body, "adder_stages", 8, 1, 64));
    pe.mult_stages =
        static_cast<int>(int_field(body, "mult_stages", 5, 1, 64));

    fault::SpecHash h;
    h.str("serve.campaign.matmul v1");
    h.i64(camp.n).str(pe.fmt.name()).i64(camp.faults).u64(camp.seed);
    h.i64(static_cast<long long>(camp.scheme));
    h.f64(camp.accumulator_fraction).f64(camp.config_fraction);
    h.i64(camp.scrub_period_cycles);
    h.i64(pe.adder_stages).i64(pe.mult_stages);
    *key = h.value();
    *cacheable = true;
    if (std::optional<std::string> hit = timed_lookup(cache_, *key, rt);
        hit.has_value()) {
      return *hit;
    }

    const analysis::MatmulSeuResult r = analysis::run_matmul_campaign(pe, camp);
    obs::JsonObject o;
    o.field("kernel", "matmul")
        .field("n", camp.n)
        .field("bits", static_cast<long>(pe.fmt.total_bits()))
        .field("faults", camp.faults)
        .field("seed", static_cast<long>(camp.seed))
        .field("scheme", fault::to_string(camp.scheme))
        .field("injected", r.injected)
        .field("masked", r.masked)
        .field("detected", r.detected)
        .field("corrected", r.corrected)
        .field("silent", r.silent)
        .field("acc_injected", r.acc_injected)
        .field("acc_silent", r.acc_silent)
        .field("latch_injected", r.latch_injected)
        .field("latch_silent", r.latch_silent)
        .field("config_injected", r.config_injected)
        .field("config_silent", r.config_silent)
        .field("dropped_trials", r.draws_exhausted)
        .field("sdc_fraction", r.sdc_fraction());
    const std::string rendered = o.str();
    timed_insert(cache_, *key, rendered, rt);
    return rendered;
  }
  if (kernel != "unit") {
    throw BadRequest("kernel must be \"unit\" or \"matmul\"");
  }

  check_members(body, {"id", "type", "kernel", "op", "bits", "stages",
                       "scheme", "vectors", "faults", "seed", "objective",
                       "ieee", "fabric"});
  const units::UnitKind kind = kind_field(body);
  const fp::FpFormat fmt =
      format_of_bits(int_field(body, "bits", 32, 0, 1 << 20), "bits");
  const long long stages = int_field(body, "stages", 0, 0, 256);
  units::UnitConfig cfg;
  cfg.objective = objective_field(body);
  cfg.ieee_mode = bool_field(body, "ieee", false);
  cfg.use_embedded_multipliers = !bool_field(body, "fabric", false);
  analysis::SeuCampaignConfig camp;
  camp.vectors = static_cast<int>(int_field(body, "vectors", 32, 1, 4096));
  camp.faults = static_cast<int>(int_field(body, "faults", 48, 1, 1 << 20));
  camp.seed = static_cast<std::uint64_t>(
      int_field(body, "seed", 0x5eed,
                std::numeric_limits<long long>::min(),
                std::numeric_limits<long long>::max()));
  camp.scheme = scheme_field(body);
  camp.threads = cfg_.threads;
  camp.backend = cfg_.backend;

  fault::SpecHash h;
  h.str("serve.campaign.unit v1");
  h.str(units::to_string(kind)).str(fmt.name()).i64(stages);
  h.i64(static_cast<long long>(cfg.objective));
  h.i64(cfg.ieee_mode ? 1 : 0).i64(cfg.use_embedded_multipliers ? 1 : 0);
  h.i64(static_cast<long long>(camp.scheme));
  h.i64(camp.vectors).i64(camp.faults).u64(camp.seed);
  *key = h.value();
  *cacheable = true;
  if (std::optional<std::string> hit = timed_lookup(cache_, *key, rt);
      hit.has_value()) {
    return *hit;
  }

  if (stages == 0) {
    const analysis::SweepResult sweep =
        analysis::sweep_unit(kind, fmt, cfg.objective, cfg.tech,
                             cfg_.threads);
    cfg.stages = analysis::select_min_max_opt(sweep).opt.stages;
  } else {
    cfg.stages = static_cast<int>(stages);
  }
  const units::FpUnit probe(kind, fmt, cfg);
  const analysis::UnitSeuResult r =
      analysis::run_unit_campaign(kind, fmt, cfg, camp);
  const analysis::SeuRateModel rate;
  obs::JsonObject o;
  o.field("kernel", "unit")
      .field("op", units::to_string(kind))
      .field("bits", static_cast<long>(fmt.total_bits()))
      .field("stages", probe.stages())
      .field("scheme", fault::to_string(camp.scheme))
      .field("vectors", camp.vectors)
      .field("faults", camp.faults)
      .field("seed", static_cast<long>(camp.seed))
      .field("injected", r.injected)
      .field("masked", r.masked)
      .field("detected", r.detected)
      .field("corrected", r.corrected)
      .field("silent", r.silent)
      .field("corrupted", r.corrupted)
      .field("occupied_bits", r.occupied_bits)
      .field("pipeline_ffs", r.pipeline_ffs)
      .field("avf", r.avf())
      .field("sdc_fraction", r.sdc_fraction())
      .field("sdc_fit", rate.fit(r.pipeline_ffs, r.avf()));
  const std::string rendered = o.str();
  timed_insert(cache_, *key, rendered, rt);
  return rendered;
}

// --- metrics --------------------------------------------------------------

std::string Service::metrics_body(const JsonValue& body) const {
  check_members(body, {"id", "type", "format"});
  const std::string format = string_field(body, "format", "json");
  if (format == "prometheus") {
    std::ostringstream text;
    reg_.write_prometheus(text);
    obs::JsonObject o;
    o.field("format", "prometheus").field("text", text.str());
    return o.str();
  }
  if (format != "json") {
    throw BadRequest("format must be \"json\" or \"prometheus\"");
  }
  std::ostringstream lines;
  reg_.write_jsonl(lines);
  std::string joined;
  joined += "[";
  std::istringstream in(lines.str());
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!first) joined += ", ";
    joined += line;
    first = false;
  }
  joined += "]";
  obs::JsonObject o;
  o.field_raw("metrics", joined);
  return o.str();
}

}  // namespace flopsim::serve
