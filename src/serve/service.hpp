// Layer 3.3 — request evaluation for flopsim-serve.
//
// One JSONL request line in, one JSONL response line out. The service is
// transport-agnostic (the socket server and the `flopsim-serve eval`
// batch mode both drive it) and owns three things:
//
//  * the request schema: {"id": ..., "type": "ping" | "plan" |
//    "campaign" | "metrics", ...params}, validated field by field;
//  * the response contract: {"id": ..., "status": <exit-taxonomy>,
//    "result": {...}} — status reuses the process exit taxonomy
//    per-request (0 ok, 1 evaluation failure, 2 malformed request,
//    75 rejected by backpressure, the caller's code), and result bytes
//    are deterministic (obs::JsonObject field order, ostream-default
//    double formatting), which is what makes cached responses
//    byte-identical to fresh evaluations;
//  * the cache key: a fault::SpecHash over the request's *resolved*
//    semantic fields — unit kind, precision, depth, objective,
//    hardening, seeds, trial counts. The evaluation backend and worker
//    thread count never enter the key (tallies are backend- and
//    thread-invariant, the PR 7 contract), so one cache serves every
//    backend configuration.
//
// Request types:
//   ping      -> {"pong": true}; never cached (liveness probe).
//   plan      -> the flopsim-gen datasheet as JSON: timing, area, power,
//                freq/area, optional hardening cost; "stages" absent or 0
//                asks for the freq/area optimum (runs the depth sweep and
//                reports min/opt/max alongside). op "cvt" takes
//                src_bits/dst_bits instead of bits.
//   campaign  -> a seeded SEU campaign; "kernel": "unit" (default) runs
//                run_unit_campaign, "matmul" runs run_matmul_campaign.
//                Results carry the full tally breakdown, including
//                dropped_trials for matmul (the draws-exhausted count).
//   metrics   -> the obs:: registry; never cached. Optional "format":
//                "json" (default, a JSON array of metric objects) or
//                "prometheus" (text exposition 0.0.4 in result.text).
//   shutdown  -> acknowledged here; the *server* decides whether to act
//                on it (the eval batch mode just acks).
#pragma once

#include <cstdint>
#include <string>

#include "rtl/evaluator.hpp"
#include "serve/json.hpp"

namespace flopsim::obs {
class Registry;
}

namespace flopsim::serve {

class ResultCache;
class Telemetry;
struct RequestTrace;

struct ServiceConfig {
  /// Worker threads for each request's *inner* trial/sweep loops
  /// (exec::parallel_for_chunked). The server runs requests on its own
  /// pool, so the default keeps each request serial and lets concurrency
  /// come from request-level parallelism.
  int threads = 1;
  /// Evaluation backend campaigns run under. Never part of the cache key.
  rtl::EvalBackend backend = rtl::EvalBackend::kAuto;
};

/// A request line split far enough to route it: its echoable id, its
/// type, and the parsed body (valid only when status == 0 so far).
struct ParsedRequest {
  int status = 0;          ///< 0, or 2 with `error` set
  std::string error;
  std::string id_json;     ///< rendered id to echo ("7", "\"abc\"", "null")
  std::string type;
  JsonValue body;
};

class Service {
 public:
  /// `cache` may be null (uncached evaluation, used by tests and the
  /// cacheless eval mode).
  Service(ServiceConfig cfg, ResultCache* cache, obs::Registry& reg);

  /// Parse and validate the envelope only — cheap enough for the
  /// server's reader thread, which must route ping/metrics inline and
  /// reject queued work with the right id when the queue is full.
  ParsedRequest parse(const std::string& line) const;

  /// Evaluate a parsed request end to end: cache lookup, evaluation on
  /// miss, cache fill, response rendering. Also records the per-request
  /// latency histogram and request counters. With `rt` set, records the
  /// eval/cache phase decomposition and hit/miss into the trace, and
  /// installs the trace's eval-span context around evaluation so
  /// worker-side tracer spans land under the owning request.
  std::string evaluate(const ParsedRequest& req, RequestTrace* rt = nullptr);

  /// parse + evaluate — the batch-mode entry point. With `telemetry`
  /// set, wraps the line in a RequestTrace (parse + eval phases; no
  /// queue/write phases in batch mode) and finishes it before returning.
  std::string handle_line(const std::string& line,
                          Telemetry* telemetry = nullptr);

  /// A rendered error response (used by the server for backpressure
  /// rejections, status 75).
  std::string error_response(const std::string& id_json, int status,
                             const std::string& message) const;

  const ServiceConfig& config() const { return cfg_; }
  ResultCache* cache() const { return cache_; }
  obs::Registry& registry() const { return reg_; }

 private:
  std::string evaluate_plan(const JsonValue& body, std::uint64_t* key,
                            bool* cacheable, int* status,
                            RequestTrace* rt) const;
  std::string evaluate_campaign(const JsonValue& body, std::uint64_t* key,
                                bool* cacheable, int* status,
                                RequestTrace* rt) const;
  std::string metrics_body(const JsonValue& body) const;

  ServiceConfig cfg_;
  ResultCache* cache_;
  obs::Registry& reg_;
};

}  // namespace flopsim::serve
