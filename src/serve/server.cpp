#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>

#include "exec/parallel.hpp"
#include "obs/metrics.hpp"

namespace flopsim::serve {

namespace {

/// A request line longer than this is garbage, not a design-point query;
/// the connection gets one error response and is closed.
constexpr std::size_t kMaxLineBytes = 1 << 20;

bool write_all(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

/// Per-connection state: the socket, the reader-side arrival counter, and
/// the ordered write-back ledger. The last shared_ptr owner (reader thread
/// or in-flight job) closes the socket.
struct Server::Connection {
  /// A completed response awaiting its turn in the ordered flush,
  /// together with the request's trace (finished once flushed).
  struct Pending {
    std::string response;
    std::shared_ptr<RequestTrace> rt;
  };

  int fd = -1;
  std::uint64_t next_seq = 0;  ///< reader-thread only

  std::mutex m;
  std::uint64_t next_write = 0;
  std::map<std::uint64_t, Pending> ready;
  bool dead = false;  ///< a write failed; drop everything else

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

Server::Server(ServerConfig cfg, Service& service)
    : cfg_(std::move(cfg)),
      service_(service),
      telemetry_(cfg_.telemetry, service.registry()) {
  cfg_.workers = std::max(1, cfg_.workers);
  if (cfg_.queue_capacity == 0) cfg_.queue_capacity = 1;
}

Server::~Server() {
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conns_m_);
    for (std::weak_ptr<Connection>& weak : conns_) {
      if (std::shared_ptr<Connection> conn = weak.lock()) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  for (std::thread& t : reader_threads_) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!cfg_.unix_path.empty()) ::unlink(cfg_.unix_path.c_str());
}

bool Server::start(std::string* error) {
  if (!cfg_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.unix_path.size() >= sizeof addr.sun_path) {
      if (error != nullptr) *error = "unix socket path too long";
      return false;
    }
    std::memcpy(addr.sun_path, cfg_.unix_path.c_str(),
                cfg_.unix_path.size() + 1);
    ::unlink(cfg_.unix_path.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0 ||
        ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
      if (error != nullptr) {
        *error = std::string("bind ") + cfg_.unix_path + ": " +
                 std::strerror(errno);
      }
      return false;
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error != nullptr) *error = std::strerror(errno);
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
      if (error != nullptr) {
        *error = "bind 127.0.0.1:" + std::to_string(cfg_.port) + ": " +
                 std::strerror(errno);
      }
      return false;
    }
  }
  if (::listen(listen_fd_, 16) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  return true;
}

void Server::run() {
  if (listen_fd_ < 0) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
  // The worker "PE array": one drain loop per pool worker. run_chunked
  // with count == workers hands each worker exactly one index; chunk 0
  // runs right here, so `run` itself is worker 0 until shutdown.
  exec::ThreadPool pool(cfg_.workers);
  pool.run_chunked(static_cast<std::size_t>(cfg_.workers),
                   [this](int, std::size_t, std::size_t) { worker_loop(); });
  // Workers only exit once stopping_ is set and the queue is drained.
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conns_m_);
    for (std::weak_ptr<Connection>& weak : conns_) {
      if (std::shared_ptr<Connection> conn = weak.lock()) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  for (std::thread& t : reader_threads_) {
    if (t.joinable()) t.join();
  }
  reader_threads_.clear();
}

void Server::request_stop() {
  {
    // stopping_ flips under the queue mutex: once a worker has observed
    // (stopping && empty) and exited, no enqueue can slip in afterwards —
    // try_enqueue checks the flag under the same lock.
    std::lock_guard<std::mutex> lock(queue_m_);
    stopping_.store(true, std::memory_order_relaxed);
  }
  queue_cv_.notify_all();
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    service_.registry().counter("serve.connections").inc();
    std::lock_guard<std::mutex> lock(conns_m_);
    conns_.push_back(conn);
    reader_threads_.emplace_back(
        [this, conn = std::move(conn)]() mutable { reader_loop(conn); });
  }
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  std::string buf;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // EOF or error: in-flight jobs keep `conn` alive
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buf.find('\n', start); nl != std::string::npos;
         nl = buf.find('\n', start)) {
      std::string line = buf.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::uint64_t seq = conn->next_seq++;
      // The trace starts here — at socket read, before the envelope is
      // parsed — so queue wait and evaluation are measured against the
      // moment the request's bytes arrived.
      std::shared_ptr<RequestTrace> rt = telemetry_.begin();
      rt->phase_begin(Phase::kParse);
      ParsedRequest req = service_.parse(line);
      rt->phase_end(Phase::kParse);
      if (!req.type.empty()) rt->type = req.type;
      rt->id_json = req.id_json;
      const bool inline_type = req.status != 0 || req.type == "ping" ||
                               req.type == "metrics" ||
                               req.type == "shutdown";
      if (inline_type) {
        // Health probes and malformed lines never queue: a saturated
        // server still answers them. Shutdown acks, then stops accepting.
        const bool is_shutdown = req.status == 0 && req.type == "shutdown";
        // Evaluate on its own statement: passing `rt.get()` and
        // `std::move(rt)` as sibling arguments would leave the evaluation
        // order of the move unspecified.
        std::string response = service_.evaluate(req, rt.get());
        complete(conn, seq, std::move(response), std::move(rt));
        if (is_shutdown) request_stop();
        continue;
      }
      Job job;
      job.conn = conn;
      job.seq = seq;
      job.req = std::move(req);
      job.rt = std::move(rt);
      if (!try_enqueue(job)) {
        // Backpressure: the bounded FIFO is full (or the server is
        // draining). Typed rejection, never queued, never evaluated.
        // try_enqueue leaves the job intact on failure, so its trace is
        // still ours to stamp and finish.
        service_.registry().counter("serve.requests").inc();
        service_.registry().counter("serve.requests.rejected").inc();
        job.rt->status = 75;
        complete(conn, seq,
                 service_.error_response(
                     job.req.id_json.empty() ? "null" : job.req.id_json, 75,
                     "backpressure: admission queue full, retry"),
                 std::move(job.rt));
      }
    }
    buf.erase(0, start);
    if (buf.size() > kMaxLineBytes) {
      complete(conn, conn->next_seq++,
               service_.error_response("null", 2, "request line too long"),
               nullptr);
      return;
    }
  }
}

bool Server::try_enqueue(Job& job) {
  {
    std::lock_guard<std::mutex> lock(queue_m_);
    if (stopping_.load(std::memory_order_relaxed) ||
        queue_.size() >= cfg_.queue_capacity) {
      return false;
    }
    // Queue wait starts at admission; the dequeuing worker ends it. The
    // trace hand-off rides queue_m_'s happens-before edge.
    if (job.rt != nullptr) job.rt->phase_begin(Phase::kQueue);
    queue_.push_back(std::move(job));
    service_.registry().gauge("serve.queue.depth").set(
        static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_one();
  return true;
}

void Server::worker_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_m_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping, fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      service_.registry().gauge("serve.queue.depth").set(
          static_cast<double>(queue_.size()));
    }
    if (job.rt != nullptr) job.rt->phase_end(Phase::kQueue);
    std::string response = service_.evaluate(job.req, job.rt.get());
    complete(job.conn, job.seq, std::move(response), std::move(job.rt));
    job.conn.reset();
  }
}

void Server::complete(const std::shared_ptr<Connection>& conn,
                      std::uint64_t seq, std::string response,
                      std::shared_ptr<RequestTrace> rt) {
  response.push_back('\n');
  // Traces flushed this call, finished below after conn->m is released
  // (telemetry appends never run under a connection lock).
  std::vector<std::shared_ptr<RequestTrace>> finished;
  {
    std::lock_guard<std::mutex> lock(conn->m);
    conn->ready.emplace(seq,
                        Connection::Pending{std::move(response), std::move(rt)});
    // Flush the prefix that is now contiguous: responses reach the client
    // in request order no matter how the queue completed them.
    for (auto it = conn->ready.find(conn->next_write);
         it != conn->ready.end() && it->first == conn->next_write;
         it = conn->ready.find(conn->next_write)) {
      Connection::Pending& p = it->second;
      if (!conn->dead) {
        if (p.rt != nullptr) p.rt->phase_begin(Phase::kWrite);
        const bool ok =
            write_all(conn->fd, p.response.data(), p.response.size());
        if (p.rt != nullptr) p.rt->phase_end(Phase::kWrite);
        if (!ok) conn->dead = true;
      }
      if (p.rt != nullptr) finished.push_back(std::move(p.rt));
      conn->ready.erase(it);
      ++conn->next_write;
    }
  }
  for (const std::shared_ptr<RequestTrace>& done : finished) {
    telemetry_.finish(*done);
  }
}

}  // namespace flopsim::serve
