#include "serve/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace flopsim::serve {

namespace {
/// Nesting cap: a request line is a flat object or close to it; anything
/// deeper than this is hostile or garbage, not a design-point query.
constexpr int kMaxDepth = 32;
}  // namespace

const std::string& JsonValue::empty_string() {
  static const std::string s;
  return s;
}

long long JsonValue::as_int(long long def) const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kDouble) return static_cast<long long>(dbl_);
  return def;
}

double JsonValue::as_double(double def) const {
  if (kind_ == Kind::kDouble) return dbl_;
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  return def;
}

const JsonValue* JsonValue::get(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::integer(long long n) {
  JsonValue v;
  v.kind_ = Kind::kInt;
  v.int_ = n;
  v.dbl_ = static_cast<double>(n);
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kDouble;
  v.dbl_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue v;
    if (!value(v, 0)) {
      if (error != nullptr) {
        *error = "offset " + std::to_string(pos_) + ": " + what_;
      }
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "offset " + std::to_string(pos_) + ": trailing characters";
      }
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const char* what) {
    if (what_.empty()) what_ = what;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(const char* word, JsonValue v, JsonValue* out) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return fail("invalid literal");
    pos_ += n;
    *out = std::move(v);
    return true;
  }

  bool value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        return literal("null", JsonValue::null(), &out);
      case 't':
        return literal("true", JsonValue::boolean(true), &out);
      case 'f':
        return literal("false", JsonValue::boolean(false), &out);
      case '"': {
        std::string s;
        if (!string_body(&s)) return false;
        out = JsonValue::string(std::move(s));
        return true;
      }
      case '[':
        return array_body(out, depth);
      case '{':
        return object_body(out, depth);
      default:
        return number_body(out);
    }
  }

  bool string_body(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (++pos_ >= text_.size()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point; surrogate pairs are beyond
          // what the request schema needs and are rejected.
          if (code >= 0xD800 && code <= 0xDFFF) {
            return fail("surrogate \\u escapes unsupported");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool number_body(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    bool digits = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        digits = true;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
      } else {
        break;
      }
      ++pos_;
    }
    if (!digits) {
      pos_ = start;
      return fail("invalid value");
    }
    const std::string tok = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    if (integral) {
      const long long n = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out = JsonValue::integer(n);
        return true;
      }
      // Out-of-range integer text: fall through to the double reading.
      errno = 0;
    }
    const double d = std::strtod(tok.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0') {
      pos_ = start;
      return fail("malformed number");
    }
    out = JsonValue::number(d);
    return true;
  }

  bool array_body(JsonValue& out, int depth) {
    ++pos_;  // '['
    out.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      if (!value(item, depth + 1)) return false;
      out.items_.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool object_body(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected member name");
      }
      std::string key;
      if (!string_body(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      JsonValue member;
      if (!value(member, depth + 1)) return false;
      if (!out.members_.emplace(key, std::move(member)).second) {
        return fail("duplicate member name");
      }
      out.keys_.push_back(std::move(key));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string what_;

  friend std::optional<JsonValue> parse_json(const std::string&, std::string*);
};

std::optional<JsonValue> parse_json(const std::string& text,
                                    std::string* error) {
  Parser p(text);
  return p.run(error);
}

}  // namespace flopsim::serve
