// Layer 3.3 — the flopsim-serve socket front end.
//
// A long-running JSONL request/response server over a Unix-domain or
// loopback-TCP socket. The shape is deliberately the repo's hardware
// discipline transplanted to software: a fixed set of worker "PEs"
// (the exec:: thread pool) fed through a *bounded* admission FIFO.
// When the FIFO is full the server does what a FIFO-coupled PE array
// does — it exerts backpressure immediately instead of buffering
// without bound: the request is rejected right away with a typed
// status-75 response (the exit taxonomy's "interrupted / retry later"
// code) and never starts evaluating.
//
// Concurrency layout:
//
//  * one accept thread;
//  * one reader thread per connection: splits lines, parses envelopes,
//    answers ping/metrics/shutdown and malformed lines inline (a
//    saturated server must still answer its health probes), and pushes
//    everything else into the bounded queue;
//  * `workers` evaluation loops on an exec::ThreadPool, started once via
//    run_chunked(workers, ...) from a dispatcher thread — the same
//    static-chunk pool the campaign engines use, so serve workers get
//    pinned obs:: thread ids (deterministic metric shards) for free;
//  * per-connection ordered write-back: each request carries its arrival
//    sequence number, and a response — computed, cached, or rejected —
//    is written only when every earlier response of that connection has
//    been written. Clients see strict request order; the queue may
//    complete out of order underneath.
//
// Metrics (obs:: registry): serve.queue.depth gauge, serve.requests.rejected
// counter, serve.connections counter — alongside the Service's own
// serve.requests/latency, the cache's serve.cache.* family, and the
// telemetry hub's serve.phase.* histograms (Layer 3.4). Gauge audit:
// serve.queue.depth is written only under queue_m_, always to the exact
// queue_.size() after a push or pop — enqueue and dequeue are its only
// writers, a rejected (status-75) or failed request never enters the
// queue, and workers drain every queued job before exiting, so the gauge
// returns to zero after any burst (locked by a regression test).
//
// Request telemetry (Layer 3.4): every request line gets a RequestTrace
// at socket read; it rides the Job through the queue and the worker pool
// and is finished after its response's ordered write-back — see
// serve/telemetry.hpp for the phase decomposition and sink contract.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "serve/telemetry.hpp"

namespace flopsim::serve {

struct ServerConfig {
  /// Unix-domain socket path; takes precedence over `port` when set.
  std::string unix_path;
  /// Loopback TCP port (used when unix_path is empty).
  int port = 0;
  /// Evaluation worker count (exec::ThreadPool size), clamped to >= 1.
  int workers = 2;
  /// Bounded admission queue capacity; a request arriving with the queue
  /// full is rejected with status 75. Clamped to >= 1.
  std::size_t queue_capacity = 64;
  /// Request telemetry sinks (phase histograms always record; these add
  /// the JSONL access log and the slow-request span capture).
  TelemetryConfig telemetry;
};

class Server {
 public:
  /// `service` must outlive the server.
  Server(ServerConfig cfg, Service& service);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen. False (with *error set) on socket failures — the
  /// tool turns that into exit 1.
  bool start(std::string* error);

  /// Serve until a shutdown request arrives or request_stop() is called.
  /// Drains queued work before returning.
  void run();

  /// Signal-handler/other-thread safe stop request.
  void request_stop();

  const ServerConfig& config() const { return cfg_; }

  /// The server's telemetry hub (false ok() means a log sink failed to
  /// open; the tool treats that as a startup failure).
  Telemetry& telemetry() { return telemetry_; }

 private:
  struct Connection;
  struct Job {
    std::shared_ptr<Connection> conn;
    std::uint64_t seq = 0;
    ParsedRequest req;
    std::shared_ptr<RequestTrace> rt;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void worker_loop();
  /// Queue a job (moving from it and marking its queue-wait phase) on
  /// success; false (queue full / draining) leaves `job` untouched so
  /// the caller can still stamp and finish its trace.
  bool try_enqueue(Job& job);
  /// Ordered write-back: stash (response, trace), flush the contiguous
  /// prefix (timing each flushed response's write phase), then finish
  /// the flushed traces.
  void complete(const std::shared_ptr<Connection>& conn, std::uint64_t seq,
                std::string response, std::shared_ptr<RequestTrace> rt);

  ServerConfig cfg_;
  Service& service_;
  Telemetry telemetry_;
  int listen_fd_ = -1;

  std::atomic<bool> stopping_{false};

  std::mutex queue_m_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;

  std::thread accept_thread_;
  std::mutex conns_m_;
  std::vector<std::weak_ptr<Connection>> conns_;
  std::vector<std::thread> reader_threads_;
};

}  // namespace flopsim::serve
