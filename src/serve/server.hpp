// Layer 3.3 — the flopsim-serve socket front end.
//
// A long-running JSONL request/response server over a Unix-domain or
// loopback-TCP socket. The shape is deliberately the repo's hardware
// discipline transplanted to software: a fixed set of worker "PEs"
// (the exec:: thread pool) fed through a *bounded* admission FIFO.
// When the FIFO is full the server does what a FIFO-coupled PE array
// does — it exerts backpressure immediately instead of buffering
// without bound: the request is rejected right away with a typed
// status-75 response (the exit taxonomy's "interrupted / retry later"
// code) and never starts evaluating.
//
// Concurrency layout:
//
//  * one accept thread;
//  * one reader thread per connection: splits lines, parses envelopes,
//    answers ping/metrics/shutdown and malformed lines inline (a
//    saturated server must still answer its health probes), and pushes
//    everything else into the bounded queue;
//  * `workers` evaluation loops on an exec::ThreadPool, started once via
//    run_chunked(workers, ...) from a dispatcher thread — the same
//    static-chunk pool the campaign engines use, so serve workers get
//    pinned obs:: thread ids (deterministic metric shards) for free;
//  * per-connection ordered write-back: each request carries its arrival
//    sequence number, and a response — computed, cached, or rejected —
//    is written only when every earlier response of that connection has
//    been written. Clients see strict request order; the queue may
//    complete out of order underneath.
//
// Metrics (obs:: registry): serve.queue.depth gauge, serve.requests.rejected
// counter, serve.connections counter — alongside the Service's own
// serve.requests/latency and the cache's serve.cache.* family.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace flopsim::serve {

struct ServerConfig {
  /// Unix-domain socket path; takes precedence over `port` when set.
  std::string unix_path;
  /// Loopback TCP port (used when unix_path is empty).
  int port = 0;
  /// Evaluation worker count (exec::ThreadPool size), clamped to >= 1.
  int workers = 2;
  /// Bounded admission queue capacity; a request arriving with the queue
  /// full is rejected with status 75. Clamped to >= 1.
  std::size_t queue_capacity = 64;
};

class Server {
 public:
  /// `service` must outlive the server.
  Server(ServerConfig cfg, Service& service);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen. False (with *error set) on socket failures — the
  /// tool turns that into exit 1.
  bool start(std::string* error);

  /// Serve until a shutdown request arrives or request_stop() is called.
  /// Drains queued work before returning.
  void run();

  /// Signal-handler/other-thread safe stop request.
  void request_stop();

  const ServerConfig& config() const { return cfg_; }

 private:
  struct Connection;
  struct Job {
    std::shared_ptr<Connection> conn;
    std::uint64_t seq = 0;
    ParsedRequest req;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void worker_loop();
  /// Queue a job; false (queue full) leaves the job untouched.
  bool try_enqueue(Job job);
  static void complete(const std::shared_ptr<Connection>& conn,
                       std::uint64_t seq, std::string response);

  ServerConfig cfg_;
  Service& service_;
  int listen_fd_ = -1;

  std::atomic<bool> stopping_{false};

  std::mutex queue_m_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;

  std::thread accept_thread_;
  std::mutex conns_m_;
  std::vector<std::weak_ptr<Connection>> conns_;
  std::vector<std::thread> reader_threads_;
};

}  // namespace flopsim::serve
