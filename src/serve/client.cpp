#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace flopsim::serve {

namespace {

int try_connect(const std::string& unix_path, int port) {
  if (!unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (unix_path.size() >= sizeof addr.sun_path) return -1;
    std::memcpy(addr.sun_path, unix_path.c_str(), unix_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
      return fd;
    }
    ::close(fd);
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
    return fd;
  }
  ::close(fd);
  return -1;
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buf_.clear();
}

bool Client::connect(const std::string& unix_path, int port,
                     double timeout_s, std::string* error) {
  close();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (true) {
    fd_ = try_connect(unix_path, port);
    if (fd_ >= 0) return true;
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  if (error != nullptr) {
    *error = unix_path.empty()
                 ? "could not connect to 127.0.0.1:" + std::to_string(port)
                 : "could not connect to " + unix_path;
  }
  return false;
}

bool Client::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string out = line;
  out.push_back('\n');
  const char* p = out.data();
  std::size_t n = out.size();
  while (n > 0) {
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool Client::recv_line(std::string* line) {
  if (fd_ < 0) return false;
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      *line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace flopsim::serve
