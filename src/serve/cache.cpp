#include "serve/cache.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"

namespace flopsim::serve {

namespace {

constexpr char kShardHeader[] = "flopsim-cache v1";

bool parse_hex16(const std::string& tok, std::uint64_t* out) {
  if (tok.size() != 16) return false;
  std::uint64_t v = 0;
  for (char c : tok) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

ResultCache::ResultCache(CacheConfig cfg, obs::Registry& reg)
    : cfg_(std::move(cfg)) {
  cfg_.capacity = std::max<std::size_t>(1, cfg_.capacity);
  cfg_.shards = std::clamp(cfg_.shards, 1, 256);
  hits_ = &reg.counter("serve.cache.hit");
  misses_ = &reg.counter("serve.cache.miss");
  inserts_ = &reg.counter("serve.cache.insert");
  evictions_ = &reg.counter("serve.cache.eviction");
  disk_loaded_ = &reg.counter("serve.cache.disk_loaded");
  entries_ = &reg.gauge("serve.cache.entries");
  if (!cfg_.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cfg_.dir, ec);
    if (ec) {
      std::fprintf(stderr,
                   "warning: serve cache: could not create %s (%s); "
                   "running memory-only\n",
                   cfg_.dir.c_str(), ec.message().c_str());
      cfg_.dir.clear();
    } else {
      load_disk_tier();
    }
  }
}

std::optional<std::string> ResultCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(m_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_->inc();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
  hits_->inc();
  return it->second->second;
}

void ResultCache::insert(std::uint64_t key, const std::string& body) {
  std::lock_guard<std::mutex> lock(m_);
  insert_locked(key, body, /*durable=*/true);
}

void ResultCache::insert_locked(std::uint64_t key, const std::string& body,
                                bool durable) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Content-addressed: same key means same bytes; just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= cfg_.capacity) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_->inc();
  }
  lru_.emplace_front(key, body);
  index_.emplace(key, lru_.begin());
  inserts_->inc();
  entries_->set(static_cast<double>(lru_.size()));
  if (durable && !cfg_.dir.empty()) append_shard(key, body);
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(m_);
  return lru_.size();
}

std::vector<std::uint64_t> ResultCache::keys_mru_first() const {
  std::lock_guard<std::mutex> lock(m_);
  std::vector<std::uint64_t> keys;
  keys.reserve(lru_.size());
  for (const auto& [key, body] : lru_) keys.push_back(key);
  return keys;
}

int ResultCache::shard_of(std::uint64_t key) const {
  return static_cast<int>((key >> 56) % static_cast<std::uint64_t>(
                                            cfg_.shards));
}

std::string ResultCache::shard_path(const std::string& dir, int shard,
                                    int shards) {
  std::ostringstream path;
  path << dir << "/cache-" << shard << "of" << shards << ".jsonl";
  return path.str();
}

// Shard line format (one entry per line, append-only):
//   flopsim-cache v1 shard=<i> of=<n>
//   e <16 hex key> <body byte count> <body>
// The byte count makes a torn tail detectable: a truncated final line
// fails the length check and is dropped, everything before it loads.
std::size_t ResultCache::load_disk_tier() {
  std::size_t loaded = 0;
  for (int s = 0; s < cfg_.shards; ++s) {
    std::ifstream in(shard_path(cfg_.dir, s, cfg_.shards));
    if (!in) continue;
    std::string line;
    if (!std::getline(in, line) ||
        line.rfind(kShardHeader, 0) != 0) {
      std::fprintf(stderr,
                   "warning: serve cache: shard %d has no valid header; "
                   "ignoring file\n",
                   s);
      continue;
    }
    while (std::getline(in, line)) {
      if (line.rfind("e ", 0) != 0) break;  // torn tail or foreign line
      const std::size_t key_end = line.find(' ', 2);
      if (key_end == std::string::npos) break;
      const std::size_t len_end = line.find(' ', key_end + 1);
      if (len_end == std::string::npos) break;
      std::uint64_t key = 0;
      if (!parse_hex16(line.substr(2, key_end - 2), &key)) break;
      const std::string len_tok = line.substr(key_end + 1,
                                              len_end - key_end - 1);
      if (len_tok.empty() ||
          len_tok.find_first_not_of("0123456789") != std::string::npos) {
        break;
      }
      const std::size_t len =
          static_cast<std::size_t>(std::stoull(len_tok));
      const std::string body = line.substr(len_end + 1);
      if (body.size() != len) break;  // torn tail
      std::lock_guard<std::mutex> lock(m_);
      insert_locked(key, body, /*durable=*/false);
      ++loaded;
    }
  }
  disk_loaded_->add(static_cast<long>(loaded));
  return loaded;
}

void ResultCache::append_shard(std::uint64_t key, const std::string& body) {
  const std::string path = shard_path(cfg_.dir, shard_of(key), cfg_.shards);
  const bool fresh = !std::ifstream(path).good();
  std::ofstream out(path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "warning: serve cache: could not append to %s\n",
                 path.c_str());
    return;
  }
  if (fresh) {
    out << kShardHeader << " shard=" << shard_of(key) << " of="
        << cfg_.shards << "\n";
  }
  out << "e " << hex16(key) << " " << body.size() << " " << body << "\n";
}

}  // namespace flopsim::serve
