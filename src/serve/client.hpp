// Layer 3.3 — a minimal blocking JSONL client for flopsim-serve.
//
// Used by the tool's replay/metrics/shutdown subcommands, the serve tests,
// and the CI smoke job. Deliberately synchronous: one request line out,
// one response line back — which is also what makes replay latencies
// honest per-request measurements.
#pragma once

#include <string>

namespace flopsim::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Movable: the fd transfers, the source disconnects.
  Client(Client&& other) noexcept
      : fd_(other.fd_), buf_(std::move(other.buf_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      buf_ = std::move(other.buf_);
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connect to a Unix-domain socket path or (when `unix_path` is empty)
  /// loopback TCP `port`. Retries for up to `timeout_s` seconds — the CI
  /// smoke job races server startup. False (with *error set) on failure.
  bool connect(const std::string& unix_path, int port, double timeout_s,
               std::string* error);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one request line (the newline is appended here).
  bool send_line(const std::string& line);
  /// Read one response line (newline stripped). False on EOF/error.
  bool recv_line(std::string* line);

 private:
  int fd_ = -1;
  std::string buf_;
};

}  // namespace flopsim::serve
