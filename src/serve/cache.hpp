// Layer 3.3 — the content-addressed plan/campaign result cache.
//
// flopsim-serve's workload is the ROADMAP's millions-of-queries pattern:
// mostly *repeated* design points (the paper's Tables 1–2 sweeps hit the
// same (unit, precision, depth, objective, hardening, seed) tuples over
// and over). Evaluating one such point costs milliseconds to seconds;
// looking its finished response up costs microseconds. So every cacheable
// response is filed under the same FNV-1a spec-hash machinery the
// checkpoint sidecars use (fault::SpecHash over the request's resolved
// semantic fields — the evaluation backend and thread count are
// deliberately excluded, exactly as they are excluded from campaign spec
// hashes, because tallies are backend- and thread-invariant).
//
// Two tiers:
//
//  * In-memory LRU, bounded by entry count. Lookups bump recency;
//    inserts evict the least recently used entry once full. Hits,
//    misses, insertions, and evictions feed the obs:: registry
//    (serve.cache.*), which the /metrics endpoint surfaces.
//  * Optional on-disk tier: `shards` append-only files under a cache
//    directory, an entry's shard chosen by its key's top bits — so N
//    server instances can each own a disjoint slice of the same
//    directory, or one instance can be split later without rehashing.
//    The format is line-oriented and torn-tail tolerant like the
//    checkpoint sidecars: a crash can only lose the final append. Memory
//    eviction never touches disk — the disk tier is the durable
//    design-point library; the LRU bounds only RAM.
//
// Thread safety: one mutex around the map+list; the serve workers' unit
// of work (a whole evaluation) dwarfs the critical section.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace flopsim::obs {
class Registry;
class Counter;
class Gauge;
}  // namespace flopsim::obs

namespace flopsim::serve {

struct CacheConfig {
  /// In-memory entry cap; inserting past it evicts the LRU entry.
  std::size_t capacity = 4096;
  /// On-disk tier directory; empty = memory-only.
  std::string dir;
  /// Number of on-disk shard files (clamped to [1, 256], power of two
  /// not required). An entry lands in shard (key >> 56) % shards.
  int shards = 4;
};

class ResultCache {
 public:
  /// Registers the serve.cache.* counters in `reg` and, when cfg.dir is
  /// set, loads every shard file (newest entries win LRU recency).
  ResultCache(CacheConfig cfg, obs::Registry& reg);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Cached response body for `key`, bumping its recency. Counts one
  /// serve.cache.hit or serve.cache.miss.
  std::optional<std::string> lookup(std::uint64_t key);

  /// File a freshly computed response body. A key already present only
  /// refreshes recency (the body is content-addressed: same key, same
  /// bytes). New entries append to their disk shard when the disk tier
  /// is on; `durable` false skips the append (used by the loader).
  void insert(std::uint64_t key, const std::string& body);

  std::size_t size() const;
  std::size_t capacity() const { return cfg_.capacity; }

  /// Keys in most-recently-used-first order (tests pin eviction order).
  std::vector<std::uint64_t> keys_mru_first() const;

  /// Shard index for a key under this config.
  int shard_of(std::uint64_t key) const;
  /// `<dir>/cache-<shard>of<shards>.jsonl`.
  static std::string shard_path(const std::string& dir, int shard,
                                int shards);

 private:
  std::size_t load_disk_tier();
  void insert_locked(std::uint64_t key, const std::string& body,
                     bool durable);
  void append_shard(std::uint64_t key, const std::string& body);

  CacheConfig cfg_;
  mutable std::mutex m_;
  /// MRU at front. unordered_map points into the list.
  std::list<std::pair<std::uint64_t, std::string>> lru_;
  std::unordered_map<std::uint64_t, decltype(lru_)::iterator> index_;

  // Looked up once in the ctor (obs::Registry references are stable for
  // the registry's lifetime); hot paths never take the registry mutex.
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* inserts_;
  obs::Counter* evictions_;
  obs::Counter* disk_loaded_;
  obs::Gauge* entries_;
};

}  // namespace flopsim::serve
