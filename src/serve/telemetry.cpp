#include "serve/telemetry.hpp"

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"

namespace flopsim::serve {

namespace {

/// Phase latency buckets, microseconds: finer than the request-latency
/// grid because parse/cache/write phases live in the single-digit-µs
/// range while eval stretches into seconds.
const std::vector<double> kPhaseBoundsUs = {
    1,     2.5,   5,      10,     25,     50,     100,
    250,   500,   1000,   2500,   5000,   10000,  25000,
    50000, 100000, 250000, 500000, 1000000};

const char* const kPhaseNames[kPhaseCount] = {"parse", "queue", "eval",
                                              "cache", "write"};

}  // namespace

const char* phase_name(Phase p) {
  const int i = static_cast<int>(p);
  return i >= 0 && i < kPhaseCount ? kPhaseNames[i] : "?";
}

double RequestTrace::us_since_start(
    std::chrono::steady_clock::time_point t) const {
  return std::chrono::duration<double, std::micro>(t - t0).count();
}

void RequestTrace::phase_begin(Phase p) {
  const int i = static_cast<int>(p);
  open_[i] = std::chrono::steady_clock::now();
  if (start_us_[i] < 0) start_us_[i] = us_since_start(open_[i]);
}

void RequestTrace::phase_end(Phase p) {
  const int i = static_cast<int>(p);
  if (start_us_[i] < 0) return;  // end without begin: ignore
  dur_us_[i] += std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - open_[i])
                    .count();
}

void RequestTrace::phase_record(Phase p, double start_us, double dur_us) {
  const int i = static_cast<int>(p);
  start_us_[i] = start_us;
  dur_us_[i] = dur_us < 0 ? 0 : dur_us;
}

bool RequestTrace::phase_recorded(Phase p) const {
  return start_us_[static_cast<int>(p)] >= 0;
}

double RequestTrace::phase_start_us(Phase p) const {
  const double s = start_us_[static_cast<int>(p)];
  return s < 0 ? 0.0 : s;
}

double RequestTrace::phase_us(Phase p) const {
  return phase_recorded(p) ? dur_us_[static_cast<int>(p)] : 0.0;
}

Telemetry::Telemetry(obs::Registry& reg) : Telemetry(TelemetryConfig{}, reg) {}

Telemetry::Telemetry(TelemetryConfig cfg, obs::Registry& reg)
    : cfg_(std::move(cfg)),
      reg_(reg),
      access_(cfg_.access_log_path),
      slow_(cfg_.slow_log_path) {
  for (int i = 0; i < kPhaseCount; ++i) {
    phase_hist_[i] = &reg_.histogram(
        std::string("serve.phase.") + kPhaseNames[i] + "_us", kPhaseBoundsUs);
  }
  ok_ = access_.ok() && slow_.ok();
}

std::shared_ptr<RequestTrace> Telemetry::begin() {
  auto rt = std::make_shared<RequestTrace>();
  rt->trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  rt->root_span = obs::next_span_id();
  for (int i = 0; i < kPhaseCount; ++i) rt->phase_span[i] = obs::next_span_id();
  rt->t0 = std::chrono::steady_clock::now();
  return rt;
}

void Telemetry::finish(RequestTrace& rt) {
  const double total_us = rt.us_since_start(std::chrono::steady_clock::now());
  for (int i = 0; i < kPhaseCount; ++i) {
    const Phase p = static_cast<Phase>(i);
    if (rt.phase_recorded(p)) phase_hist_[i]->observe(rt.phase_us(p));
  }

  const bool want_access = !cfg_.access_log_path.empty();
  const bool want_slow =
      !cfg_.slow_log_path.empty() && total_us >= cfg_.slow_ms * 1000.0;
  if (!want_access && !want_slow) return;

  std::lock_guard<std::mutex> lock(m_);
  if (want_access) {
    obs::JsonObject o;
    o.field("trace", static_cast<long>(rt.trace_id))
        .field_raw("id", rt.id_json.empty() ? "null" : rt.id_json)
        .field("type", rt.type)
        .field("status", rt.status)
        .field("cache", rt.cache)
        .field("parse_us", rt.phase_us(Phase::kParse))
        .field("queue_us", rt.phase_us(Phase::kQueue))
        .field("eval_us", rt.phase_us(Phase::kEval))
        .field("cache_us", rt.phase_us(Phase::kCache))
        .field("write_us", rt.phase_us(Phase::kWrite))
        .field("total_us", total_us);
    access_.write(o);
  }
  if (want_slow) {
    std::string spans = "[";
    {
      obs::JsonObject root;
      root.field("name", "request")
          .field("span", static_cast<long>(rt.root_span))
          .field("parent", 0L)
          .field("start_us", 0.0)
          .field("dur_us", total_us);
      spans += root.str();
    }
    for (int i = 0; i < kPhaseCount; ++i) {
      const Phase p = static_cast<Phase>(i);
      if (!rt.phase_recorded(p)) continue;
      obs::JsonObject s;
      s.field("name", kPhaseNames[i])
          .field("span", static_cast<long>(rt.phase_span[i]))
          .field("parent", static_cast<long>(rt.root_span))
          .field("start_us", rt.phase_start_us(p))
          .field("dur_us", rt.phase_us(p));
      spans += ", ";
      spans += s.str();
    }
    spans += "]";
    obs::JsonObject o;
    o.field("trace", static_cast<long>(rt.trace_id))
        .field("type", rt.type)
        .field("status", rt.status)
        .field("total_us", total_us)
        .field_raw("spans", spans);
    slow_.write(o);
  }
  // Line-buffered behaviour: a `tail -f` on the access log (or a test
  // reading it mid-run) sees each request as soon as it finished.
  access_.flush();
  slow_.flush();
}

}  // namespace flopsim::serve
