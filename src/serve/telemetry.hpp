// Layer 3.4 — request-scoped tracing and telemetry for flopsim-serve.
//
// Every request gets a RequestTrace at socket read: a process-unique
// trace id, a span tree (one root "request" span plus one child span per
// pipeline phase), and a per-phase latency decomposition —
//
//   parse  — envelope parse/validate on the reader thread
//   queue  — admission-FIFO wait (enqueue mark to dequeue mark)
//   eval   — Service::evaluate minus the cache phase
//   cache  — ResultCache lookup + write-back on the evaluating worker
//   write  — socket write-back under the connection's ordered flush
//
// The trace rides the Job through the bounded queue, the exec:: worker
// pool (Service installs the trace's eval-span context around
// evaluation, so `--trace=` chunk spans land under the owning request),
// and the per-connection write-back ledger; Telemetry::finish() fires
// exactly once per request, after its response bytes left (or were
// dropped on a dead connection).
//
// finish() fans out three ways:
//  * serve.phase.*_us histograms in the obs:: registry (p50/p95/p99 via
//    the registry's quantile summaries, Prometheus exposition included);
//  * one JSONL access-log line per request (`--access-log=`): trace id,
//    status from the 0/1/2/75 taxonomy, cache hit/miss, phase timings;
//  * a slow-request capture (`--slow-log=`): the full span tree for any
//    request whose total latency reaches `--slow-ms=` (0 captures all).
//
// Determinism: telemetry never feeds back into evaluation — tallies,
// checkpoint sidecars, and BENCH bytes are bit-identical with tracing on
// or off, at any worker count. Phase fields are plain values; every
// cross-thread hand-off of a RequestTrace rides an existing
// happens-before edge (the admission-queue mutex, the connection's
// write-back mutex), so no telemetry-only synchronization exists on the
// request path. Trace ids are unique within one Telemetry instance
// (i.e. one server process); timings and span ids are wall-clock
// artifacts and are explicitly outside the determinism contract.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "obs/sink.hpp"
#include "obs/trace.hpp"

namespace flopsim::obs {
class Histogram;
class Registry;
}  // namespace flopsim::obs

namespace flopsim::serve {

/// The per-request latency decomposition phases, in pipeline order.
enum class Phase : int { kParse = 0, kQueue, kEval, kCache, kWrite };
inline constexpr int kPhaseCount = 5;

/// "parse", "queue", "eval", "cache", "write".
const char* phase_name(Phase p);

/// One request's trace state: identity, span ids, phase clock. Created by
/// Telemetry::begin() on the reader thread, handed through the queue to
/// the evaluating worker, finished after write-back. Accesses are
/// sequenced by the server's existing queue/connection mutexes — the
/// struct itself is not thread-safe.
struct RequestTrace {
  std::uint64_t trace_id = 0;
  std::uint64_t root_span = 0;               ///< the "request" span
  std::uint64_t phase_span[kPhaseCount] = {};  ///< children of root_span
  std::chrono::steady_clock::time_point t0{};  ///< begin() time

  std::string type = "?";       ///< request type, "?" until parsed
  std::string id_json = "null";  ///< echoable id, rendered
  int status = 0;               ///< response status (0/1/2/75)
  int cache = -1;               ///< -1 not consulted, 0 miss, 1 hit

  /// Microseconds from t0 to `t`.
  double us_since_start(std::chrono::steady_clock::time_point t) const;

  /// Open a phase (first call pins its start offset). begin/end pairs
  /// may repeat; durations accumulate (the cache phase sums lookup +
  /// write-back).
  void phase_begin(Phase p);
  void phase_end(Phase p);
  /// Set a phase outright (evaluate() carves cache time out of eval).
  void phase_record(Phase p, double start_us, double dur_us);

  bool phase_recorded(Phase p) const;
  double phase_start_us(Phase p) const;  ///< offset from t0; 0 if unset
  double phase_us(Phase p) const;        ///< accumulated duration; 0 if unset

  /// Context to install around evaluation: tracer spans recorded inside
  /// (worker chunk spans) become children of this request's eval span.
  obs::SpanContext eval_context() const {
    return {trace_id, phase_span[static_cast<int>(Phase::kEval)]};
  }

 private:
  double start_us_[kPhaseCount] = {-1, -1, -1, -1, -1};  // -1 = unset
  double dur_us_[kPhaseCount] = {};
  std::chrono::steady_clock::time_point open_[kPhaseCount] = {};
};

struct TelemetryConfig {
  std::string access_log_path;  ///< JSONL access log; empty = off
  std::string slow_log_path;    ///< slow-request span dumps; empty = off
  /// Slow-capture threshold, milliseconds; 0 captures every request
  /// (what the CI smoke run uses to validate span-tree completeness).
  double slow_ms = 0.0;
};

/// The per-server telemetry hub. Always records phase histograms into
/// the registry; the access log and slow-request capture only engage
/// when their paths are configured. Thread-safe: begin() is lock-free,
/// finish() serializes log appends under one mutex.
class Telemetry {
 public:
  /// Metrics-only telemetry (no log files).
  explicit Telemetry(obs::Registry& reg);
  Telemetry(TelemetryConfig cfg, obs::Registry& reg);

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Both configured sinks opened (an empty path is trivially ok).
  bool ok() const { return ok_; }
  const TelemetryConfig& config() const { return cfg_; }

  /// New trace: unique trace id, span ids for root + every phase, clock
  /// epoch pinned to now (call at socket read / line receipt).
  std::shared_ptr<RequestTrace> begin();

  /// Record the trace: observe phase histograms, append the access-log
  /// line, capture the span tree if total latency reaches slow_ms.
  /// Call exactly once per trace, after the last phase ended.
  void finish(RequestTrace& rt);

 private:
  TelemetryConfig cfg_;
  obs::Registry& reg_;
  std::atomic<std::uint64_t> next_trace_id_{1};
  obs::Histogram* phase_hist_[kPhaseCount] = {};
  bool ok_ = true;
  std::mutex m_;  // serializes access/slow appends
  obs::JsonlSink access_;
  obs::JsonlSink slow_;
};

}  // namespace flopsim::serve
