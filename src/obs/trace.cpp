#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>

#include "obs/metrics.hpp"
#include "obs/sink.hpp"

namespace flopsim::obs {

namespace {

// Fixed-point microseconds: default ostream formatting would flip large
// timestamps into scientific notation and lose sub-microsecond ordering.
std::string us_fixed(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::atomic<std::uint64_t> g_next_span_id{1};

thread_local SpanContext tls_span_context{};

}  // namespace

SpanContext current_span_context() { return tls_span_context; }

std::uint64_t next_span_id() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

ScopedSpanContext::ScopedSpanContext(SpanContext ctx)
    : prev_(tls_span_context) {
  tls_span_context = ctx;
}

ScopedSpanContext::~ScopedSpanContext() { tls_span_context = prev_; }

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  static Tracer instance;
  return instance;
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::Span::Span(Tracer* tracer, std::string name, std::string cat,
                   std::vector<std::pair<std::string, long>> args)
    : tracer_(tracer),
      name_(std::move(name)),
      cat_(std::move(cat)),
      args_(std::move(args)),
      t0_(std::chrono::steady_clock::now()) {
  // The owning scope is wherever the span *started*; end() may run after
  // the context was popped (moved spans), so capture it now.
  const SpanContext ctx = current_span_context();
  if (ctx.trace_id != 0) {
    trace_id_ = ctx.trace_id;
    parent_id_ = ctx.span_id;
    span_id_ = next_span_id();
  }
}

void Tracer::Span::swap(Span& other) noexcept {
  std::swap(tracer_, other.tracer_);
  std::swap(name_, other.name_);
  std::swap(cat_, other.cat_);
  std::swap(args_, other.args_);
  std::swap(trace_id_, other.trace_id_);
  std::swap(span_id_, other.span_id_);
  std::swap(parent_id_, other.parent_id_);
  std::swap(t0_, other.t0_);
}

void Tracer::Span::end() {
  if (tracer_ == nullptr) return;
  Tracer* t = tracer_;
  tracer_ = nullptr;
  const auto t1 = std::chrono::steady_clock::now();
  TraceEvent ev;
  ev.name = std::move(name_);
  ev.cat = std::move(cat_);
  ev.tid = thread_id();
  ev.ts_us =
      std::chrono::duration<double, std::micro>(t0_ - t->epoch_).count();
  ev.dur_us = std::chrono::duration<double, std::micro>(t1 - t0_).count();
  ev.trace_id = trace_id_;
  ev.span_id = span_id_;
  ev.parent_id = parent_id_;
  ev.args = std::move(args_);
  t->record(std::move(ev));
}

Tracer::Span Tracer::span(std::string name, std::string cat,
                          std::vector<std::pair<std::string, long>> args) {
  if (!enabled()) return Span();
  return Span(this, std::move(name), std::move(cat), std::move(args));
}

void Tracer::record(TraceEvent ev) {
  std::lock_guard<std::mutex> lk(m_);
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lk(m_);
  return events_;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lk(m_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(m_);
  events_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

void Tracer::write_chrome_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(m_);
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& ev : events_) {
    if (!first) os << ",";
    first = false;
    os << "\n";
    JsonObject obj;
    obj.field("name", ev.name)
        .field("cat", ev.cat)
        .field("ph", "X")
        .field("pid", 1)
        .field("tid", ev.tid)
        .field_raw("ts", us_fixed(ev.ts_us))
        .field_raw("dur", us_fixed(ev.dur_us));
    if (!ev.args.empty() || ev.trace_id != 0) {
      JsonObject args;
      if (ev.trace_id != 0) {
        args.field_raw("trace", std::to_string(ev.trace_id))
            .field_raw("span", std::to_string(ev.span_id))
            .field_raw("parent", std::to_string(ev.parent_id));
      }
      for (const auto& [k, v] : ev.args) args.field(k, v);
      obj.field_raw("args", args.str());
    }
    os << obj.str();
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

bool Tracer::write_chrome_json_file(const std::string& path) const {
  if (path.empty()) return true;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "warning: could not write " << path << "\n";
    return false;
  }
  write_chrome_json(out);
  return out.good();
}

}  // namespace flopsim::obs
