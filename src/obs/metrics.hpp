// Layer 2.9 — `obs/`: the process-wide metrics registry.
//
// Named counters, gauges, and fixed-bucket histograms for instrumenting
// the simulator's own runtime behaviour (campaign throughput, pipeline
// occupancy, worker utilization) the way the paper instruments its
// hardware through XPower and post-PAR timing.
//
// Determinism contract (the campaign engine's bit-identity guarantee must
// survive instrumentation):
//
//  * Metric updates never synchronize trial work: counters and histogram
//    buckets are sharded across `kShards` cache-line-padded slots indexed
//    by the caller's thread shard (exec::ThreadPool pins worker w to
//    shard w; unpinned threads are assigned round-robin), each slot a
//    relaxed atomic. No locks on the hot path.
//  * Reads merge the shards in shard-index order — never arrival order —
//    so counter values and histogram bucket counts (integers) are exactly
//    reproducible at any thread count. Histogram `sum` is a double and is
//    reproducible for a fixed shard assignment; the campaign layer only
//    records histograms from ordered caller-side code, so its metrics
//    output is thread-count-invariant too.
//  * Registration (`Registry::counter` etc.) takes a mutex and returns a
//    stable reference; hot paths look a metric up once and keep the
//    reference.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace flopsim::obs {

/// Shard count for thread-sharded metric slots. Power of two.
inline constexpr int kShards = 16;

/// This thread's small integer id: 0 for the main thread, the worker
/// index for exec::ThreadPool workers, round-robin for anything else.
/// Used both as the metric shard (mod kShards) and as the trace tid.
int thread_id();
/// Pin the calling thread's id (exec::ThreadPool calls this with the
/// worker index when a worker starts).
void set_thread_id(int id);
/// thread_id() folded into [0, kShards).
int thread_shard();

/// Monotonic counter, thread-sharded.
class Counter {
 public:
  void add(long n = 1) {
    shards_[static_cast<std::size_t>(thread_shard())].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  /// Ordered merge: shard 0 + shard 1 + ... (exact for integers).
  long value() const {
    long total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<long> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Last-write-wins instantaneous value (not sharded: a gauge is a
/// snapshot, not a sum).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. `bounds` are ascending inclusive upper bounds;
/// an implicit overflow bucket catches everything above the last bound,
/// so there are bounds.size() + 1 buckets. A value lands in the first
/// bucket whose bound satisfies `v <= bound`.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;
    std::vector<long> buckets;  ///< bounds.size() + 1 entries
    long count = 0;
    double sum = 0.0;

    /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside
    /// the bucket holding rank q*count (bucket 0 interpolates from 0).
    /// Values in the overflow bucket clamp to the last bound — the
    /// estimate can only be as sharp as the bucket grid. 0 when empty.
    double quantile(double q) const;
  };
  /// Shard-index-ordered merge of every slot.
  Snapshot snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<long>[]> buckets;  // bounds_.size() + 1
    std::atomic<long> count{0};
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::array<Shard, kShards> shards_;
};

/// Named metric store. `Registry::global()` is the process-wide instance
/// every instrumented layer feeds; tests build their own.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  /// Find-or-create. References stay valid for the registry's lifetime.
  /// Re-registering a name as a different metric type, or a histogram
  /// with different bounds, throws std::invalid_argument.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  bool empty() const;
  /// Drop every metric (tests; between independent tool runs).
  void clear();

  /// One JSON object per metric, one per line, names in sorted order:
  ///   {"metric": "x", "type": "counter", "value": 3}
  ///   {"metric": "y", "type": "gauge", "value": 0.5}
  ///   {"metric": "z", "type": "histogram", "bounds": [...],
  ///    "buckets": [...], "count": 7, "sum": 4.25,
  ///    "p50": ..., "p95": ..., "p99": ...}
  void write_jsonl(std::ostream& os) const;
  /// Prometheus text exposition (version 0.0.4): `# TYPE` comments,
  /// metric names sanitized to [a-zA-Z0-9_:], histograms as cumulative
  /// `_bucket{le=...}` series plus `_sum`/`_count` and p50/p95/p99
  /// quantile gauges. Sorted by name, deterministic like write_jsonl.
  void write_prometheus(std::ostream& os) const;
  /// write_jsonl to `path` (truncating). False + stderr warning on
  /// failure; true no-op when `path` is empty.
  bool write_jsonl_file(const std::string& path) const;

  /// Human-readable summary table (sorted by name).
  void write_summary(std::ostream& os) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex m_;
  std::map<std::string, Entry> metrics_;  // ordered: deterministic emission
};

}  // namespace flopsim::obs
