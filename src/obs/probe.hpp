// Simulation probes: fold the cycle-accurate layers' built-in activity
// counters into the metrics registry.
//
// The counters themselves live where the cycles happen — PipelineSim
// tallies per-stage valid cycles as it steps, ProcessingElement already
// counts MAC issues and clocks — so probing is a pure read: call a
// record_* helper after a run and the occupancy/utilization lands in the
// registry as histograms + counters. Because recording happens on the
// caller's thread after the simulation, probes never touch the campaign
// engine's determinism.
//
// Naming convention: `<prefix>.occupancy` (histogram of per-stage valid
// fraction), `<prefix>.cycles` / `<prefix>.valid_cycles` /
// `<prefix>.bubble_cycles` (counters), `<prefix>.mac_utilization`
// (histogram of per-PE issue fraction), `<prefix>.mac_issues` /
// `<prefix>.hazards` (counters).
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace flopsim::rtl {
class PipelineSim;
}
namespace flopsim::units {
class FpUnit;
}
namespace flopsim::kernel {
class ProcessingElement;
class LinearArrayMatmul;
class Systolic2dMatmul;
}  // namespace flopsim::kernel

namespace flopsim::obs {

/// Decile bucket bounds for fractions in [0, 1].
std::vector<double> fraction_bounds();

/// Per-stage occupancy of a pipeline: observe valid_cycles[s]/cycles for
/// every stage into `<prefix>.occupancy`, and accumulate the cycle
/// counters. No-op on a sim that has not stepped.
void record_pipeline_occupancy(Registry& reg, const std::string& prefix,
                               const rtl::PipelineSim& sim);

/// The same, reading through a unit's simulator.
void record_unit_occupancy(Registry& reg, const std::string& prefix,
                           const units::FpUnit& unit);

/// One PE's MAC utilization (mac_issues/cycles) plus issue/hazard
/// counters, and the occupancy of its internal unit pipelines under
/// `<prefix>.mult` / `<prefix>.add`.
void record_pe_utilization(Registry& reg, const std::string& prefix,
                           const kernel::ProcessingElement& pe);

/// Every PE of a linear matmul array under one prefix.
void record_matmul_utilization(Registry& reg, const std::string& prefix,
                               const kernel::LinearArrayMatmul& array);

/// Every PE of a 2-D systolic grid under one prefix.
void record_systolic_utilization(Registry& reg, const std::string& prefix,
                                 const kernel::Systolic2dMatmul& grid);

}  // namespace flopsim::obs
