// Shared command-line plumbing for the tools and benches.
//
// Before this helper, `--threads=`/`--json` parsing was copy-pasted
// across ext_seu_vulnerability, ext_cram_scrub, and flopsim-gen with
// slightly different error paths. parse_cli owns the observability and
// campaign flags once:
//
//   --threads=<n>    campaign worker threads (absent -> 0 = auto,
//                    anything not in [1, 1024] -> error)
//   --json <path>    append per-campaign timing records (JSON lines)
//   --csv <dir>      per-table CSV emission directory
//   --metrics=<path> dump the metrics registry as JSON lines at exit
//   --trace=<path>   enable span tracing; write Chrome trace JSON at exit
//   --vcd=<path>     waveform capture (flopsim-gen)
//
// Tokens the parser does not own land in `rest` in order, so each tool
// keeps its own positional/extra flags (op names, --scheme=, --harden=)
// and decides itself whether an unrecognized token is an error.
#pragma once

#include <string>
#include <vector>

namespace flopsim::obs {

struct CliArgs {
  int threads = 0;  ///< 0 = auto; parse errors set `error` instead
  std::string csv_dir;
  std::string json_path;
  std::string metrics_path;
  std::string trace_path;
  std::string vcd_path;
  std::vector<std::string> rest;  ///< unconsumed argv[1..] tokens
  std::string error;              ///< first offending token; empty = ok

  bool ok() const { return error.empty(); }
};

CliArgs parse_cli(int argc, char** argv);

/// `--threads=` value validation: absent semantics are the caller's; a
/// string not representing an integer in [1, 1024] returns -1.
int parse_threads_value(const std::string& v);

/// Arm tracing when --trace= was given. Call before the workload runs.
void init_observability(const CliArgs& cli);

/// Write --metrics/--trace outputs (global registry / tracer). Returns
/// false when any requested write failed (warning already on stderr).
bool flush_observability(const CliArgs& cli);

}  // namespace flopsim::obs
