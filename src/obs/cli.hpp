// Shared command-line plumbing for the tools and benches.
//
// Before this helper, `--threads=`/`--json` parsing was copy-pasted
// across ext_seu_vulnerability, ext_cram_scrub, and flopsim-gen with
// slightly different error paths. parse_cli owns the observability and
// campaign flags once:
//
//   --threads=<n>    campaign worker threads (absent -> 0 = auto,
//                    anything not in [1, 1024] -> error)
//   --backend=<b>    campaign trial evaluation backend: interpreted,
//                    compiled, or bitsliced (absent -> auto: the
//                    FLOPSIM_BACKEND env var, else interpreted; any
//                    other value -> error)
//   --json <path>    append per-campaign timing records (JSON lines)
//   --csv <dir>      per-table CSV emission directory
//   --metrics=<path> dump the metrics registry as JSON lines at exit
//   --trace=<path>   enable span tracing; write Chrome trace JSON at exit
//   --vcd=<path>     waveform capture (flopsim-gen)
//
// and the resilience flags (checkpoint/resume/budgets — tools that have
// no campaign to protect reject them as usage errors):
//
//   --checkpoint=<dir>     journal finished chunks to <dir>/<spec>.ckpt
//   --resume               restore completed chunks from the checkpoint
//   --time-budget=<sec>    cancel (gracefully) after this much wall clock
//   --trial-budget=<n>     cancel after n trials executed this invocation
//   --stop-halfwidth=<x>   early-stop once the 95% half-width reaches x
//   --fsync-interval=<n>   fsync the checkpoint every n appends (0: close)
//
// Tokens the parser does not own land in `rest` in order, so each tool
// keeps its own positional/extra flags (op names, --scheme=, --harden=)
// and decides itself whether an unrecognized token is an error.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rtl/evaluator.hpp"

namespace flopsim::obs {

// Process exit taxonomy, uniform across flopsim-gen, flopsim-lint, and
// the ext_* benches:
//   0  success
//   1  runtime failure (exceptions, I/O, infeasible request)
//   2  usage error (bad flag/operand; a usage: synopsis goes to stderr)
//   75 interrupted but resumable — a signal or budget stopped the run
//      after a checkpoint was flushed (EX_TEMPFAIL: retry later).
inline constexpr int kExitOk = 0;
inline constexpr int kExitRuntime = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitInterrupted = 75;

struct CliArgs {
  int threads = 0;  ///< 0 = auto; parse errors set `error` instead
  /// --backend= value, pre-validated by rtl::try_parse_backend; kAuto when
  /// the flag is absent (an unknown name sets `error` instead).
  rtl::EvalBackend backend = rtl::EvalBackend::kAuto;
  std::string csv_dir;
  std::string json_path;
  std::string metrics_path;
  std::string trace_path;
  std::string vcd_path;
  // Resilience (campaign tools).
  std::string checkpoint_dir;  ///< --checkpoint=; empty = off
  bool resume = false;
  double time_budget_s = 0.0;     ///< --time-budget=; 0 = off
  long trial_budget = 0;          ///< --trial-budget=; 0 = off
  double stop_half_width = 0.0;   ///< --stop-halfwidth=; 0 = off
  long fsync_interval = 8;        ///< --fsync-interval=
  std::vector<std::string> rest;  ///< unconsumed argv[1..] tokens
  std::string error;              ///< first offending token; empty = ok

  bool ok() const { return error.empty(); }
  /// Any resilience flag present (tools without campaigns reject these).
  bool wants_resilience() const {
    return !checkpoint_dir.empty() || resume || time_budget_s > 0.0 ||
           trial_budget > 0 || stop_half_width > 0.0;
  }
};

CliArgs parse_cli(int argc, char** argv);

/// `--threads=` value validation: absent semantics are the caller's; a
/// string not representing an integer in [1, 1024] returns -1.
int parse_threads_value(const std::string& v);

/// Strict decimal parse of a tool operand: every character a digit, value
/// within [min, max]. nullopt on empty strings, signs, trailing junk
/// ("3x"), or out-of-range values — the checked replacement for bare
/// std::atoi on positionals; callers turn nullopt into usage + exit 2.
std::optional<long> parse_int_arg(const std::string& v, long min, long max);

/// Arm tracing when --trace= was given. Call before the workload runs.
void init_observability(const CliArgs& cli);

/// Write --metrics/--trace outputs (global registry / tracer). Returns
/// false when any requested write failed (warning already on stderr).
bool flush_observability(const CliArgs& cli);

}  // namespace flopsim::obs
