#include "obs/progress.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#ifdef _WIN32
#else
#include <unistd.h>
#endif

namespace flopsim::obs {

namespace {

constexpr long long kMinReportIntervalUs = 200000;  // 200 ms

}  // namespace

bool ProgressReporter::enabled_by_environment() {
  if (const char* env = std::getenv("FLOPSIM_PROGRESS")) {
    return std::strcmp(env, "1") == 0;
  }
#ifdef _WIN32
  return false;
#else
  return isatty(STDERR_FILENO) != 0;
#endif
}

ProgressReporter::ProgressReporter(std::string label, long total,
                                   Registry& reg)
    : label_(std::move(label)),
      total_(total),
      registry_counter_(reg.counter("campaign.trials_completed")),
      enabled_(enabled_by_environment()),
      t0_(std::chrono::steady_clock::now()) {}

ProgressReporter::~ProgressReporter() {
  if (printed_.load(std::memory_order_relaxed)) report(true);
}

void ProgressReporter::tick(long n) {
  done_.fetch_add(n, std::memory_order_relaxed);
  registry_counter_.add(n);
  if (!enabled_) return;
  const long long now_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count();
  long long last = last_report_us_.load(std::memory_order_relaxed);
  if (now_us - last < kMinReportIntervalUs) return;
  // One worker wins the interval; the rest return to their trials.
  if (last_report_us_.compare_exchange_strong(last, now_us,
                                              std::memory_order_relaxed)) {
    report(false);
  }
}

void ProgressReporter::report(bool final_line) {
  const long done = done_.load(std::memory_order_relaxed);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
          .count();
  const double rate = secs > 0.0 ? static_cast<double>(done) / secs : 0.0;
  char total_buf[32];
  if (total_ > 0) {
    std::snprintf(total_buf, sizeof total_buf, "%ld", total_);
  } else {
    std::snprintf(total_buf, sizeof total_buf, "?");
  }
  std::fprintf(stderr, "\r%s: %ld/%s trials (%.0f trials/s)%s",
               label_.c_str(), done, total_buf, rate,
               final_line ? "\n" : "");
  std::fflush(stderr);
  printed_.store(true, std::memory_order_relaxed);
}

}  // namespace flopsim::obs
