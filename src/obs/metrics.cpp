#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/sink.hpp"

namespace flopsim::obs {

namespace {

std::atomic<int> g_next_thread_id{1};  // 0 is the main thread's default

thread_local int tls_thread_id = -1;

// Static initialization runs on the thread that will enter main(), so this
// is what gives the main thread id 0 by convention.
const bool g_main_thread_pinned = [] {
  tls_thread_id = 0;
  return true;
}();

}  // namespace

int thread_id() {
  if (tls_thread_id < 0) {
    // First query on an unpinned thread: the thread that constructed the
    // process (main) keeps 0 by convention — exec pins its workers, so
    // anything else is a stray thread and gets the next free id.
    tls_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_thread_id;
}

void set_thread_id(int id) { tls_thread_id = id < 0 ? 0 : id; }

int thread_shard() { return thread_id() & (kShards - 1); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
  const std::size_t slots = bounds_.size() + 1;
  for (Shard& s : shards_) {
    s.buckets = std::make_unique<std::atomic<long>[]>(slots);
    for (std::size_t i = 0; i < slots; ++i) s.buckets[i].store(0);
  }
}

void Histogram::observe(double v) {
  Shard& s = shards_[static_cast<std::size_t>(thread_shard())];
  const std::size_t b = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  s.buckets[b].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  double old = s.sum.load(std::memory_order_relaxed);
  while (!s.sum.compare_exchange_weak(old, old + v,
                                      std::memory_order_relaxed)) {
  }
}

double Histogram::Snapshot::quantile(double q) const {
  if (count <= 0 || bounds.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double prev = cum;
    cum += static_cast<double>(buckets[i]);
    if (cum >= target && buckets[i] > 0) {
      if (i == bounds.size()) return bounds.back();  // overflow bucket
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double frac = (target - prev) / static_cast<double>(buckets[i]);
      return lo + frac * (hi - lo);
    }
  }
  return bounds.back();
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {  // shard-index order, never arrival order
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      snap.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  Entry& e = metrics_[name];
  if (e.counter == nullptr) {
    if (e.gauge != nullptr || e.histogram != nullptr) {
      throw std::invalid_argument("metric registered with another type: " +
                                  name);
    }
    e.kind = Kind::kCounter;
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  Entry& e = metrics_[name];
  if (e.gauge == nullptr) {
    if (e.counter != nullptr || e.histogram != nullptr) {
      throw std::invalid_argument("metric registered with another type: " +
                                  name);
    }
    e.kind = Kind::kGauge;
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lk(m_);
  Entry& e = metrics_[name];
  if (e.histogram == nullptr) {
    if (e.counter != nullptr || e.gauge != nullptr) {
      throw std::invalid_argument("metric registered with another type: " +
                                  name);
    }
    e.kind = Kind::kHistogram;
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
  } else if (e.histogram->bounds() != bounds) {
    throw std::invalid_argument("histogram re-registered with new bounds: " +
                                name);
  }
  return *e.histogram;
}

bool Registry::empty() const {
  std::lock_guard<std::mutex> lk(m_);
  return metrics_.empty();
}

void Registry::clear() {
  std::lock_guard<std::mutex> lk(m_);
  metrics_.clear();
}

void Registry::write_jsonl(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(m_);
  for (const auto& [name, e] : metrics_) {  // std::map: sorted names
    JsonObject obj;
    obj.field("metric", name);
    switch (e.kind) {
      case Kind::kCounter:
        obj.field("type", "counter").field("value", e.counter->value());
        break;
      case Kind::kGauge:
        obj.field("type", "gauge").field("value", e.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram::Snapshot s = e.histogram->snapshot();
        obj.field("type", "histogram")
            .field_raw("bounds", json_array(s.bounds))
            .field_raw("buckets", json_array(s.buckets))
            .field("count", s.count)
            .field("sum", s.sum)
            .field("p50", s.quantile(0.50))
            .field("p95", s.quantile(0.95))
            .field("p99", s.quantile(0.99));
        break;
      }
    }
    os << obj.str() << "\n";
  }
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
/// names map dots (and anything else) to underscores.
std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

void Registry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(m_);
  for (const auto& [name, e] : metrics_) {  // std::map: sorted names
    const std::string pn = prometheus_name(name);
    switch (e.kind) {
      case Kind::kCounter:
        os << "# TYPE " << pn << " counter\n"
           << pn << " " << e.counter->value() << "\n";
        break;
      case Kind::kGauge:
        os << "# TYPE " << pn << " gauge\n"
           << pn << " " << e.gauge->value() << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram::Snapshot s = e.histogram->snapshot();
        os << "# TYPE " << pn << " histogram\n";
        long cum = 0;
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          cum += s.buckets[i];
          os << pn << "_bucket{le=\"" << s.bounds[i] << "\"} " << cum
             << "\n";
        }
        cum += s.buckets.back();
        os << pn << "_bucket{le=\"+Inf\"} " << cum << "\n"
           << pn << "_sum " << s.sum << "\n"
           << pn << "_count " << s.count << "\n";
        for (const double q : {0.50, 0.95, 0.99}) {
          os << pn << "{quantile=\"" << q << "\"} " << s.quantile(q)
             << "\n";
        }
        break;
      }
    }
  }
}

bool Registry::write_jsonl_file(const std::string& path) const {
  if (path.empty()) return true;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "warning: could not write " << path << "\n";
    return false;
  }
  write_jsonl(out);
  return out.good();
}

void Registry::write_summary(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(m_);
  os << "-- metrics --\n";
  for (const auto& [name, e] : metrics_) {
    os << "  " << name << "  ";
    switch (e.kind) {
      case Kind::kCounter:
        os << e.counter->value() << "\n";
        break;
      case Kind::kGauge:
        os << e.gauge->value() << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram::Snapshot s = e.histogram->snapshot();
        os << "count=" << s.count << " sum=" << s.sum
           << " p50=" << s.quantile(0.50) << " p95=" << s.quantile(0.95)
           << " p99=" << s.quantile(0.99) << " buckets[";
        for (std::size_t i = 0; i < s.buckets.size(); ++i) {
          if (i > 0) os << " ";
          os << s.buckets[i];
        }
        os << "]\n";
        break;
      }
    }
  }
}

}  // namespace flopsim::obs
