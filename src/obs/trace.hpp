// Span tracing: scoped RAII timers emitting Chrome trace-event JSON.
//
// The exported file loads directly in chrome://tracing and Perfetto
// (ui.perfetto.dev): complete events (`"ph": "X"`) with microsecond
// timestamps relative to the tracer's epoch, one timeline row per thread
// id (obs::thread_id — worker index for exec::ThreadPool workers, 0 for
// the main thread).
//
// Parent/child spans: every thread carries a SpanContext (trace id +
// owning span id, both 0 when no request/task is in scope). Spans
// recorded while a context is installed are stamped with that trace id
// and parent span id, so a serve request's worker-side chunk spans land
// under the owning request in the exported trace. exec::ThreadPool
// propagates the caller's context into its workers; serve installs a
// per-request context around evaluation. Contexts are plain TLS values —
// installing one costs two word writes and never synchronizes.
//
// The tracer is disabled by default; a disabled tracer's span() hands
// back an inert object and costs one relaxed atomic load, so hot paths
// (worker chunks, campaign phases) stay unperturbed unless `--trace=` is
// given. Recording an event takes a mutex — spans are chunk/phase
// granularity, far off the per-trial hot path, and timestamps are wall
// clock anyway; the determinism contract covers tallies and metrics,
// never trace timings or span ids.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace flopsim::obs {

/// The tracing scope the current thread works under: which trace (e.g.
/// serve request) owns the work, and which span is the immediate parent.
/// {0, 0} = no scope; spans recorded there are roots of no trace.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

/// This thread's installed context ({0, 0} when none).
SpanContext current_span_context();

/// Process-unique span id (never 0). Shared by the tracer and by callers
/// that build their own span trees (serve request telemetry) so ids never
/// collide within one trace.
std::uint64_t next_span_id();

/// RAII: install `ctx` as this thread's span context, restore the
/// previous one on destruction. Cheap enough for per-job scopes.
class ScopedSpanContext {
 public:
  explicit ScopedSpanContext(SpanContext ctx);
  ~ScopedSpanContext();
  ScopedSpanContext(const ScopedSpanContext&) = delete;
  ScopedSpanContext& operator=(const ScopedSpanContext&) = delete;

 private:
  SpanContext prev_;
};

struct TraceEvent {
  std::string name;
  std::string cat;
  int tid = 0;
  double ts_us = 0.0;   ///< start, microseconds since tracer epoch
  double dur_us = 0.0;  ///< duration, microseconds
  /// Span-tree linkage, stamped from the recording thread's SpanContext.
  /// 0 = outside any trace scope; rendered into "args" only when set, so
  /// traces from context-free tools keep their exact historical shape.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  /// Small numeric payload rendered into the event's "args" object.
  std::vector<std::pair<std::string, long>> args;
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& global();

  void enable(bool on = true) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// RAII timer: records a complete event on destruction (or end()).
  /// Default-constructed / disabled-tracer spans are inert.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { swap(other); }
    Span& operator=(Span&& other) noexcept {
      end();
      swap(other);
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { end(); }

    /// Record now instead of at scope exit; further calls are no-ops.
    void end();

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::string name, std::string cat,
         std::vector<std::pair<std::string, long>> args);
    void swap(Span& other) noexcept;

    Tracer* tracer_ = nullptr;  // nullptr = inert
    std::string name_;
    std::string cat_;
    std::vector<std::pair<std::string, long>> args_;
    std::uint64_t trace_id_ = 0;   // SpanContext at construction
    std::uint64_t span_id_ = 0;
    std::uint64_t parent_id_ = 0;
    std::chrono::steady_clock::time_point t0_{};
  };

  Span span(std::string name, std::string cat,
            std::vector<std::pair<std::string, long>> args = {});

  void record(TraceEvent ev);

  std::vector<TraceEvent> events() const;
  std::size_t event_count() const;
  /// Drop recorded events and restart the timestamp epoch.
  void clear();

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} — the Chrome/
  /// Perfetto trace-event container format.
  void write_chrome_json(std::ostream& os) const;
  /// write_chrome_json to `path` (truncating). False + stderr warning on
  /// failure; true no-op when `path` is empty.
  bool write_chrome_json_file(const std::string& path) const;

  double now_us() const;

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex m_;
  std::vector<TraceEvent> events_;
};

}  // namespace flopsim::obs
