// Span tracing: scoped RAII timers emitting Chrome trace-event JSON.
//
// The exported file loads directly in chrome://tracing and Perfetto
// (ui.perfetto.dev): complete events (`"ph": "X"`) with microsecond
// timestamps relative to the tracer's epoch, one timeline row per thread
// id (obs::thread_id — worker index for exec::ThreadPool workers, 0 for
// the main thread).
//
// The tracer is disabled by default; a disabled tracer's span() hands
// back an inert object and costs one relaxed atomic load, so hot paths
// (worker chunks, campaign phases) stay unperturbed unless `--trace=` is
// given. Recording an event takes a mutex — spans are chunk/phase
// granularity, far off the per-trial hot path, and timestamps are wall
// clock anyway; the determinism contract covers tallies and metrics,
// never trace timings.
#pragma once

#include <atomic>
#include <chrono>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace flopsim::obs {

struct TraceEvent {
  std::string name;
  std::string cat;
  int tid = 0;
  double ts_us = 0.0;   ///< start, microseconds since tracer epoch
  double dur_us = 0.0;  ///< duration, microseconds
  /// Small numeric payload rendered into the event's "args" object.
  std::vector<std::pair<std::string, long>> args;
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& global();

  void enable(bool on = true) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// RAII timer: records a complete event on destruction (or end()).
  /// Default-constructed / disabled-tracer spans are inert.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { swap(other); }
    Span& operator=(Span&& other) noexcept {
      end();
      swap(other);
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { end(); }

    /// Record now instead of at scope exit; further calls are no-ops.
    void end();

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::string name, std::string cat,
         std::vector<std::pair<std::string, long>> args);
    void swap(Span& other) noexcept;

    Tracer* tracer_ = nullptr;  // nullptr = inert
    std::string name_;
    std::string cat_;
    std::vector<std::pair<std::string, long>> args_;
    std::chrono::steady_clock::time_point t0_{};
  };

  Span span(std::string name, std::string cat,
            std::vector<std::pair<std::string, long>> args = {});

  void record(TraceEvent ev);

  std::vector<TraceEvent> events() const;
  std::size_t event_count() const;
  /// Drop recorded events and restart the timestamp epoch.
  void clear();

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} — the Chrome/
  /// Perfetto trace-event container format.
  void write_chrome_json(std::ostream& os) const;
  /// write_chrome_json to `path` (truncating). False + stderr warning on
  /// failure; true no-op when `path` is empty.
  bool write_chrome_json_file(const std::string& path) const;

  double now_us() const;

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex m_;
  std::vector<TraceEvent> events_;
};

}  // namespace flopsim::obs
