// Observability sinks: minimal JSON building plus a JSON-lines file
// appender. Everything the repo emits as machine-readable output —
// BENCH_campaign.json records, the metrics registry dump, the Chrome
// trace — funnels through these helpers so the formatting (field order,
// `": "` / `", "` separators, default-ostream double formatting) is
// written down exactly once.
//
// Doubles format via ostream's default (6 significant digits), which is
// what the hand-rolled BENCH_campaign.json emission always used — the
// byte-compatibility anchor for the CampaignJournal port (locked by
// tests/obs/sink_golden_test.cpp).
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace flopsim::obs {

/// Backslash-escape quotes/backslashes and \uXXXX-escape control bytes.
std::string json_escape(const std::string& s);

/// Ordered JSON object builder: fields render in insertion order as
/// {"k": v, "k2": v2}. Values format exactly like `ostream <<` does.
class JsonObject {
 public:
  JsonObject& field(const std::string& key, const std::string& v);
  JsonObject& field(const std::string& key, const char* v);
  JsonObject& field(const std::string& key, long v);
  JsonObject& field(const std::string& key, int v);
  JsonObject& field(const std::string& key, double v);
  JsonObject& field(const std::string& key, bool v);
  /// `json` is spliced in verbatim (nested arrays/objects).
  JsonObject& field_raw(const std::string& key, const std::string& json);

  std::string str() const;

 private:
  JsonObject& raw_value(const std::string& key, const std::string& rendered);
  std::ostringstream body_;
  bool first_ = true;
};

/// "[1, 2.5, 3]" with ostream-default double formatting.
std::string json_array(const std::vector<double>& vs);
std::string json_array(const std::vector<long>& vs);

/// Append-mode JSON-lines writer: one object per line. The contract the
/// campaign journal relies on — append so several benches can share one
/// BENCH_campaign.json across a CI job.
class JsonlSink {
 public:
  /// Opens `path` (append by default). An empty path yields a sink that
  /// is ok() but discards writes — the "flag absent" no-op.
  explicit JsonlSink(const std::string& path, bool append = true);

  bool ok() const { return path_.empty() || static_cast<bool>(out_); }
  void write(const JsonObject& obj);
  void write_line(const std::string& json);
  /// Push buffered lines to the file (access logs want to be tail-able).
  void flush();
  /// Stream still healthy after the writes so far.
  bool good() const { return path_.empty() || out_.good(); }

 private:
  std::string path_;
  std::ofstream out_;
};

}  // namespace flopsim::obs
