#include "obs/cli.hpp"

#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flopsim::obs {

std::optional<long> parse_int_arg(const std::string& v, long min, long max) {
  if (v.empty() || v.size() > 18 ||
      v.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  const long n = std::atol(v.c_str());
  if (n < min || n > max) return std::nullopt;
  return n;
}

int parse_threads_value(const std::string& v) {
  if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
    return -1;
  }
  const long n = std::atol(v.c_str());
  return n >= 1 && n <= 1024 ? static_cast<int>(n) : -1;
}

CliArgs parse_cli(int argc, char** argv) {
  CliArgs cli;
  const auto eq_value = [](const std::string& arg, const char* flag,
                           std::string* out) {
    const std::string prefix = std::string(flag) + "=";
    if (arg.rfind(prefix, 0) != 0) return false;
    *out = arg.substr(prefix.size());
    return true;
  };
  // Strictly-positive decimal parse for budget values; -1 on garbage.
  const auto parse_positive = [](const std::string& v) -> double {
    if (v.empty()) return -1.0;
    char* end = nullptr;
    const double x = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0' || !(x > 0.0)) return -1.0;
    return x;
  };
  const auto parse_count = [](const std::string& v, long min) -> long {
    if (v.empty() ||
        v.find_first_not_of("0123456789") != std::string::npos) {
      return -1;
    }
    const long n = std::atol(v.c_str());
    return n >= min ? n : -1;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg.rfind("--threads=", 0) == 0) {
      cli.threads = parse_threads_value(arg.substr(10));
      if (cli.threads < 0 && cli.error.empty()) cli.error = arg;
    } else if (eq_value(arg, "--backend", &value)) {
      const std::optional<rtl::EvalBackend> b = rtl::try_parse_backend(value);
      if (b.has_value()) {
        cli.backend = *b;
      } else if (cli.error.empty()) {
        cli.error = arg;
      }
    } else if (eq_value(arg, "--checkpoint", &value)) {
      cli.checkpoint_dir = value;
      if (value.empty() && cli.error.empty()) cli.error = arg;
    } else if (arg == "--resume") {
      cli.resume = true;
    } else if (eq_value(arg, "--time-budget", &value)) {
      cli.time_budget_s = parse_positive(value);
      if (cli.time_budget_s < 0.0 && cli.error.empty()) cli.error = arg;
    } else if (eq_value(arg, "--trial-budget", &value)) {
      cli.trial_budget = parse_count(value, 1);
      if (cli.trial_budget < 0 && cli.error.empty()) cli.error = arg;
    } else if (eq_value(arg, "--stop-halfwidth", &value)) {
      cli.stop_half_width = parse_positive(value);
      if (cli.stop_half_width < 0.0 && cli.error.empty()) cli.error = arg;
    } else if (eq_value(arg, "--fsync-interval", &value)) {
      cli.fsync_interval = parse_count(value, 0);
      if (cli.fsync_interval < 0 && cli.error.empty()) cli.error = arg;
    } else if (arg == "--json" || arg == "--csv") {
      if (i + 1 >= argc) {
        if (cli.error.empty()) cli.error = arg;
        continue;
      }
      (arg == "--json" ? cli.json_path : cli.csv_dir) = argv[++i];
    } else if (eq_value(arg, "--metrics", &value)) {
      cli.metrics_path = value;
    } else if (eq_value(arg, "--trace", &value)) {
      cli.trace_path = value;
    } else if (eq_value(arg, "--vcd", &value)) {
      cli.vcd_path = value;
    } else {
      cli.rest.push_back(arg);
    }
  }
  return cli;
}

void init_observability(const CliArgs& cli) {
  if (!cli.trace_path.empty()) Tracer::global().enable();
}

bool flush_observability(const CliArgs& cli) {
  bool ok = true;
  ok &= Registry::global().write_jsonl_file(cli.metrics_path);
  ok &= Tracer::global().write_chrome_json_file(cli.trace_path);
  return ok;
}

}  // namespace flopsim::obs
