#include "obs/sink.hpp"

#include <cstdio>

namespace flopsim::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonObject& JsonObject::raw_value(const std::string& key,
                                  const std::string& rendered) {
  if (!first_) body_ << ", ";
  first_ = false;
  body_ << "\"" << json_escape(key) << "\": " << rendered;
  return *this;
}

JsonObject& JsonObject::field(const std::string& key, const std::string& v) {
  return raw_value(key, "\"" + json_escape(v) + "\"");
}

JsonObject& JsonObject::field(const std::string& key, const char* v) {
  return field(key, std::string(v));
}

JsonObject& JsonObject::field(const std::string& key, long v) {
  std::ostringstream os;
  os << v;
  return raw_value(key, os.str());
}

JsonObject& JsonObject::field(const std::string& key, int v) {
  return field(key, static_cast<long>(v));
}

JsonObject& JsonObject::field(const std::string& key, double v) {
  std::ostringstream os;
  os << v;  // default 6 significant digits: the legacy emission format
  return raw_value(key, os.str());
}

JsonObject& JsonObject::field(const std::string& key, bool v) {
  return raw_value(key, v ? "true" : "false");
}

JsonObject& JsonObject::field_raw(const std::string& key,
                                  const std::string& json) {
  return raw_value(key, json);
}

std::string JsonObject::str() const { return "{" + body_.str() + "}"; }

namespace {

template <typename T>
std::string join_array(const std::vector<T>& vs) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (i > 0) os << ", ";
    os << vs[i];
  }
  os << "]";
  return os.str();
}

}  // namespace

std::string json_array(const std::vector<double>& vs) {
  return join_array(vs);
}

std::string json_array(const std::vector<long>& vs) { return join_array(vs); }

JsonlSink::JsonlSink(const std::string& path, bool append) : path_(path) {
  if (!path_.empty()) {
    out_.open(path_, append ? std::ios::app : std::ios::trunc);
  }
}

void JsonlSink::write(const JsonObject& obj) { write_line(obj.str()); }

void JsonlSink::write_line(const std::string& json) {
  if (path_.empty() || !out_) return;
  out_ << json << "\n";
}

void JsonlSink::flush() {
  if (!path_.empty() && out_) out_.flush();
}

}  // namespace flopsim::obs
