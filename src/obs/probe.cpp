#include "obs/probe.hpp"

#include "kernel/matmul.hpp"
#include "kernel/systolic2d.hpp"
#include "rtl/simulator.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::obs {

std::vector<double> fraction_bounds() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

void record_pipeline_occupancy(Registry& reg, const std::string& prefix,
                               const rtl::PipelineSim& sim) {
  const long cycles = sim.cycles();
  if (cycles <= 0) return;
  Histogram& occ = reg.histogram(prefix + ".occupancy", fraction_bounds());
  const std::vector<long>& valid = sim.valid_cycles();
  long valid_total = 0;
  for (const long v : valid) {
    occ.observe(static_cast<double>(v) / static_cast<double>(cycles));
    valid_total += v;
  }
  const long stages = static_cast<long>(valid.size());
  reg.counter(prefix + ".cycles").add(cycles);
  reg.counter(prefix + ".valid_cycles").add(valid_total);
  reg.counter(prefix + ".bubble_cycles").add(cycles * stages - valid_total);
}

void record_unit_occupancy(Registry& reg, const std::string& prefix,
                           const units::FpUnit& unit) {
  record_pipeline_occupancy(reg, prefix, unit.sim());
}

void record_pe_utilization(Registry& reg, const std::string& prefix,
                           const kernel::ProcessingElement& pe) {
  const long cycles = pe.cycles();
  if (cycles <= 0) return;
  reg.histogram(prefix + ".mac_utilization", fraction_bounds())
      .observe(static_cast<double>(pe.mac_issues()) /
               static_cast<double>(cycles));
  reg.counter(prefix + ".mac_issues").add(pe.mac_issues());
  reg.counter(prefix + ".hazards").add(pe.hazards());
  reg.counter(prefix + ".cycles").add(cycles);
  record_unit_occupancy(reg, prefix + ".mult", pe.multiplier());
  record_unit_occupancy(reg, prefix + ".add", pe.adder());
}

void record_matmul_utilization(Registry& reg, const std::string& prefix,
                               const kernel::LinearArrayMatmul& array) {
  for (int j = 0; j < array.n(); ++j) {
    record_pe_utilization(reg, prefix, array.pe(j));
  }
}

void record_systolic_utilization(Registry& reg, const std::string& prefix,
                                 const kernel::Systolic2dMatmul& grid) {
  for (int i = 0; i < grid.n(); ++i) {
    for (int j = 0; j < grid.n(); ++j) {
      record_pe_utilization(reg, prefix, grid.pe(i, j));
    }
  }
}

}  // namespace flopsim::obs
