// Periodic campaign progress to stderr.
//
// Long Monte-Carlo campaigns (tens of thousands of kernel re-runs) were
// previously silent until done. ProgressReporter prints a rate-limited
// `\r<label>: done/total trials (rate/s)` line, but only when stderr is a
// TTY (so CI logs and test output stay clean); FLOPSIM_PROGRESS=1 forces
// it on, FLOPSIM_PROGRESS=0 forces it off.
//
// tick() is what campaign workers call once per trial: one relaxed atomic
// increment plus, at most every ~200 ms, a compare-exchange-guarded
// fprintf from whichever worker crossed the interval. The trial work
// itself is never synchronized, and the global trial counter it feeds
// (`campaign.trials_completed` in the registry) is an exact integer sum —
// determinism untouched.
#pragma once

#include <atomic>
#include <chrono>
#include <string>

#include "obs/metrics.hpp"

namespace flopsim::obs {

class ProgressReporter {
 public:
  /// @param label short campaign name shown on the line
  /// @param total expected trials (0 renders as "?")
  /// @param reg   registry whose `campaign.trials_completed` counter the
  ///              ticks also feed
  ProgressReporter(std::string label, long total,
                   Registry& reg = Registry::global());
  /// Prints the final line (with a newline) if anything was reported.
  ~ProgressReporter();
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  void tick(long n = 1);
  long done() const { return done_.load(std::memory_order_relaxed); }

  /// TTY + FLOPSIM_PROGRESS resolution (exposed for tests).
  static bool enabled_by_environment();

 private:
  void report(bool final_line);

  std::string label_;
  long total_;
  Counter& registry_counter_;
  bool enabled_;
  std::atomic<long> done_{0};
  std::atomic<long long> last_report_us_{0};
  std::atomic<bool> printed_{false};
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace flopsim::obs
