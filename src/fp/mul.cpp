// Floating-point multiplication — software reference for the paper's
// multiplier (denormalize, mantissa multiply + exponent add/bias-subtract,
// normalize/round).
#include <stdexcept>

#include "fp/internal.hpp"
#include "fp/ops.hpp"

namespace flopsim::fp {
namespace {

/// Left-normalize an unpacked significand so the hidden bit sits at
/// frac_bits (needed for honored-subnormal operands).
void normalize_sig(detail::Unpacked& u, int frac_bits) {
  const int msb = msb_index64(u.sig);
  if (msb < frac_bits) {
    u.sig <<= (frac_bits - msb);
    u.exp -= (frac_bits - msb);
  }
}

}  // namespace

FpValue mul(const FpValue& a, const FpValue& b, FpEnv& env) {
  if (!(a.fmt == b.fmt)) {
    throw std::invalid_argument("fp::mul: operand formats differ");
  }
  const FpFormat fmt = a.fmt;
  const FpClass ca = detail::effective_class(a, env);
  const FpClass cb = detail::effective_class(b, env);
  const bool sign = a.sign() ^ b.sign();

  if (ca == FpClass::kQuietNaN || ca == FpClass::kSignalingNaN ||
      cb == FpClass::kQuietNaN || cb == FpClass::kSignalingNaN) {
    return detail::propagate_nan(a, b, env);
  }
  if (ca == FpClass::kInfinity || cb == FpClass::kInfinity) {
    if (ca == FpClass::kZero || cb == FpClass::kZero) {
      return detail::invalid_result(fmt, env);
    }
    return make_inf(fmt, sign);
  }
  if (ca == FpClass::kZero || cb == FpClass::kZero) {
    return make_zero(fmt, sign);
  }

  detail::Unpacked ua = detail::unpack_finite(a);
  detail::Unpacked ub = detail::unpack_finite(b);
  const int F = fmt.frac_bits();
  normalize_sig(ua, F);
  normalize_sig(ub, F);

  // Full product has 2F+1 or 2F+2 significant bits; compress to F+4 with a
  // jamming shift so round_pack sees an exact guard/round and a true sticky.
  const u128 prod = static_cast<u128>(ua.sig) * ub.sig;
  const int shift = F - 2;
  u64 sig;
  int exp = ua.exp + ub.exp - fmt.bias() + 1;
  if (shift >= 0) {
    sig = static_cast<u64>(shift_right_jam128(prod, shift));
  } else {
    sig = static_cast<u64>(prod) << (-shift);
  }
  return detail::round_pack(sign, exp, sig, fmt, env);
}

}  // namespace flopsim::fp
