// Floating-point division (extension beyond the paper's adder/multiplier;
// the vendor cores the paper compares against ship one).
#include <stdexcept>

#include "fp/internal.hpp"
#include "fp/ops.hpp"

namespace flopsim::fp {

FpValue div(const FpValue& a, const FpValue& b, FpEnv& env) {
  if (!(a.fmt == b.fmt)) {
    throw std::invalid_argument("fp::div: operand formats differ");
  }
  const FpFormat fmt = a.fmt;
  const FpClass ca = detail::effective_class(a, env);
  const FpClass cb = detail::effective_class(b, env);
  const bool sign = a.sign() ^ b.sign();

  if (ca == FpClass::kQuietNaN || ca == FpClass::kSignalingNaN ||
      cb == FpClass::kQuietNaN || cb == FpClass::kSignalingNaN) {
    return detail::propagate_nan(a, b, env);
  }
  if (ca == FpClass::kInfinity) {
    if (cb == FpClass::kInfinity) return detail::invalid_result(fmt, env);
    return make_inf(fmt, sign);
  }
  if (cb == FpClass::kInfinity) return make_zero(fmt, sign);
  if (cb == FpClass::kZero) {
    if (ca == FpClass::kZero) return detail::invalid_result(fmt, env);
    env.raise(kFlagDivByZero);
    return make_inf(fmt, sign);
  }
  if (ca == FpClass::kZero) return make_zero(fmt, sign);

  detail::Unpacked ua = detail::unpack_finite(a);
  detail::Unpacked ub = detail::unpack_finite(b);
  const int F = fmt.frac_bits();
  // Normalize honored subnormals.
  for (detail::Unpacked* u : {&ua, &ub}) {
    const int msb = msb_index64(u->sig);
    if (msb < F) {
      u->sig <<= (F - msb);
      u->exp -= (F - msb);
    }
  }

  // Long division with F+4 fraction bits; the remainder provides the sticky.
  const u128 num = static_cast<u128>(ua.sig) << (F + 4);
  const u128 den = ub.sig;
  u64 q = static_cast<u64>(num / den);
  if (num % den != 0) q |= 1;

  const int exp = ua.exp - ub.exp + fmt.bias() - 1;
  return detail::round_pack(sign, exp, q, fmt, env);
}

}  // namespace flopsim::fp
