// Floating-point addition/subtraction — the software reference for the
// paper's three-stage adder (denormalize/swap/align, mantissa add/sub,
// normalize/round). Carries guard/round/sticky per the classic algorithm.
#include <stdexcept>

#include "fp/internal.hpp"
#include "fp/ops.hpp"

namespace flopsim::fp {
namespace {

using detail::kGrsBits;

/// Shared magnitude add/subtract once specials are dispatched.
/// `bsign` is b's sign with any subtraction negation already applied.
FpValue add_finite(const FpValue& a, bool bsign, const FpValue& b,
                   FpEnv& env) {
  const FpFormat fmt = a.fmt;
  detail::Unpacked ua = detail::unpack_finite(a);
  detail::Unpacked ub = detail::unpack_finite(b);
  ub.sign = bsign;

  u64 sa = ua.sig << kGrsBits;
  u64 sb = ub.sig << kGrsBits;
  int exp;
  const int d = ua.exp - ub.exp;
  if (d > 0) {
    sb = shift_right_jam64(sb, d);
    exp = ua.exp;
  } else if (d < 0) {
    sa = shift_right_jam64(sa, -d);
    exp = ub.exp;
  } else {
    exp = ua.exp;
  }

  bool sign;
  u64 sig;
  if (ua.sign == ub.sign) {
    sign = ua.sign;
    sig = sa + sb;
  } else if (sa > sb) {
    sign = ua.sign;
    sig = sa - sb;
  } else if (sb > sa) {
    sign = ub.sign;
    sig = sb - sa;
  } else {
    // Exact cancellation: IEEE mandates +0 except when rounding toward -inf.
    return make_zero(fmt, env.rounding == RoundingMode::kTowardNegative);
  }
  return detail::round_pack(sign, exp, sig, fmt, env);
}

FpValue add_signed(const FpValue& a, const FpValue& b, bool negate_b,
                   FpEnv& env) {
  if (!(a.fmt == b.fmt)) {
    throw std::invalid_argument("fp::add: operand formats differ");
  }
  const FpClass ca = detail::effective_class(a, env);
  const FpClass cb = detail::effective_class(b, env);
  const bool bsign = b.sign() ^ negate_b;

  if (ca == FpClass::kQuietNaN || ca == FpClass::kSignalingNaN ||
      cb == FpClass::kQuietNaN || cb == FpClass::kSignalingNaN) {
    return detail::propagate_nan(a, b, env);
  }
  if (ca == FpClass::kInfinity && cb == FpClass::kInfinity) {
    if (a.sign() != bsign) return detail::invalid_result(a.fmt, env);
    return make_inf(a.fmt, a.sign());
  }
  if (ca == FpClass::kInfinity) return make_inf(a.fmt, a.sign());
  if (cb == FpClass::kInfinity) return make_inf(a.fmt, bsign);
  if (ca == FpClass::kZero && cb == FpClass::kZero) {
    if (a.sign() == bsign) return make_zero(a.fmt, a.sign());
    return make_zero(a.fmt, env.rounding == RoundingMode::kTowardNegative);
  }
  if (ca == FpClass::kZero) {
    return compose(b.fmt, bsign, b.biased_exp(), b.frac());
  }
  if (cb == FpClass::kZero) return a;
  return add_finite(a, bsign, b, env);
}

}  // namespace

FpValue add(const FpValue& a, const FpValue& b, FpEnv& env) {
  return add_signed(a, b, /*negate_b=*/false, env);
}

FpValue sub(const FpValue& a, const FpValue& b, FpEnv& env) {
  return add_signed(a, b, /*negate_b=*/true, env);
}

FpValue neg(const FpValue& a) {
  return FpValue(a.bits ^ a.fmt.sign_mask(), a.fmt);
}

FpValue abs(const FpValue& a) {
  return FpValue(a.bits & ~a.fmt.sign_mask(), a.fmt);
}

FpValue copysign(const FpValue& magnitude, const FpValue& sign) {
  return FpValue((magnitude.bits & ~magnitude.fmt.sign_mask()) |
                     (sign.sign() ? magnitude.fmt.sign_mask() : 0),
                 magnitude.fmt);
}

}  // namespace flopsim::fp
