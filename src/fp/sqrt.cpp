// Floating-point square root (extension; see div.cpp note).
#include "fp/internal.hpp"
#include "fp/ops.hpp"

namespace flopsim::fp {

FpValue sqrt(const FpValue& a, FpEnv& env) {
  const FpFormat fmt = a.fmt;
  const FpClass ca = detail::effective_class(a, env);

  if (ca == FpClass::kQuietNaN || ca == FpClass::kSignalingNaN) {
    return detail::propagate_nan(a, a, env);
  }
  if (ca == FpClass::kZero) return make_zero(fmt, a.sign());
  if (a.sign()) return detail::invalid_result(fmt, env);
  if (ca == FpClass::kInfinity) return make_inf(fmt, false);

  detail::Unpacked u = detail::unpack_finite(a);
  const int F = fmt.frac_bits();
  {
    const int msb = msb_index64(u.sig);
    if (msb < F) {
      u.sig <<= (F - msb);
      u.exp -= (F - msb);
    }
  }

  // value = sig * 2^(ue - F). Make ue even by folding one bit into sig, then
  // sqrt(sig * 2^(F+6)) has its MSB exactly at F+3 — the normalized position
  // round_pack expects, so guard/round stay exact and only the remainder
  // feeds the sticky.
  int ue = u.exp - fmt.bias();
  u128 s2 = u.sig;
  if (ue & 1) {
    s2 <<= 1;
    ue -= 1;
  }
  const Sqrt128Result r = isqrt128(s2 << (F + 6));
  u64 sig = r.root;
  if (!r.exact) sig |= 1;

  const int exp = ue / 2 + fmt.bias();
  return detail::round_pack(false, exp, sig, fmt, env);
}

}  // namespace flopsim::fp
