// IEEE remainder and roundToIntegral — both exact-result operations built
// on integer arithmetic (library extensions).
#include <stdexcept>

#include "fp/internal.hpp"
#include "fp/ops.hpp"

namespace flopsim::fp {
namespace {

void normalize_sig(detail::Unpacked& u, int frac_bits) {
  const int msb = msb_index64(u.sig);
  if (msb < frac_bits) {
    u.sig <<= (frac_bits - msb);
    u.exp -= (frac_bits - msb);
  }
}

bool is_nan_class(FpClass c) {
  return c == FpClass::kQuietNaN || c == FpClass::kSignalingNaN;
}

}  // namespace

FpValue remainder(const FpValue& a, const FpValue& b, FpEnv& env) {
  if (!(a.fmt == b.fmt)) {
    throw std::invalid_argument("fp::remainder: operand formats differ");
  }
  const FpFormat fmt = a.fmt;
  const FpClass ca = detail::effective_class(a, env);
  const FpClass cb = detail::effective_class(b, env);
  if (is_nan_class(ca) || is_nan_class(cb)) {
    return detail::propagate_nan(a, b, env);
  }
  if (ca == FpClass::kInfinity || cb == FpClass::kZero) {
    return detail::invalid_result(fmt, env);
  }
  if (cb == FpClass::kInfinity || ca == FpClass::kZero) {
    return compose(fmt, a.sign(), a.biased_exp(), a.frac());  // exact: a
  }

  detail::Unpacked ua = detail::unpack_finite(a);
  detail::Unpacked ub = detail::unpack_finite(b);
  const int F = fmt.frac_bits();
  normalize_sig(ua, F);
  normalize_sig(ub, F);
  const int diff = ua.exp - ub.exp;

  if (diff <= -2) {
    // |a| < |b|/2: n = 0, the remainder is a itself.
    return compose(fmt, a.sign(), a.biased_exp(), a.frac());
  }

  if (diff == -1) {
    // |a| in [|b|/4, |b|): n is 0 or 1. At a's scale, |b|/2 has
    // significand exactly ub.sig, so the midpoint compare is direct; the
    // tie (|a| == |b|/2) keeps n = 0 (even).
    if (ua.sig > ub.sig) {
      // n = 1: |r| = |b| - |a| = (2*ub.sig - ua.sig) at a's scale.
      const u64 mag = 2 * ub.sig - ua.sig;
      return detail::round_pack(!a.sign(), ua.exp,
                                mag << detail::kGrsBits, fmt, env);
    }
    return compose(fmt, a.sign(), a.biased_exp(), a.frac());
  }

  // diff >= 0: restoring reduction of |a| by |b| at b's scale. The parity
  // of the truncated quotient (needed for ties-to-even) is the parity of
  // the last chunk's partial quotient, since earlier contributions are
  // shifted left of the LSB.
  u64 rem = ua.sig;
  bool q_lsb = false;
  if (rem >= ub.sig) {
    rem -= ub.sig;
    q_lsb = true;
  }
  int left = diff;
  while (left > 0) {
    const int step = left < 8 ? left : 8;
    const u128 wide = static_cast<u128>(rem) << step;
    q_lsb = ((static_cast<u64>(wide / ub.sig)) & 1) != 0;
    rem = static_cast<u64>(wide % ub.sig);
    left -= step;
  }

  // Nearest adjustment: pull the remainder into (-|b|/2, |b|/2], breaking
  // the tie toward even n.
  bool negate = false;
  const u64 twice = 2 * rem;  // rem < ub.sig < 2^(F+1): no overflow
  if (twice > ub.sig || (twice == ub.sig && q_lsb)) {
    rem = ub.sig - rem;
    negate = true;
  }

  if (rem == 0) {
    return make_zero(fmt, a.sign());  // IEEE: zero remainder takes a's sign
  }
  // Value = rem * 2^(eb - bias - F): exact.
  return detail::round_pack(a.sign() ^ negate, ub.exp,
                            rem << detail::kGrsBits, fmt, env);
}

FpValue round_to_integral(const FpValue& v, FpEnv& env) {
  const FpClass c = detail::effective_class(v, env);
  if (is_nan_class(c)) return detail::propagate_nan(v, v, env);
  if (c == FpClass::kInfinity) return make_inf(v.fmt, v.sign());
  if (c == FpClass::kZero) return make_zero(v.fmt, v.sign());

  detail::Unpacked u = detail::unpack_finite(v);
  const int F = v.fmt.frac_bits();
  normalize_sig(u, F);
  const int ue = u.exp - v.fmt.bias();
  if (ue >= F) return v;  // already integral

  const bool sign = v.sign();
  u64 integer;
  bool inexact;
  if (ue < -1) {
    // |v| < 0.5: rounds to (signed) zero except directed modes away from 0.
    inexact = true;
    integer = 0;
    if ((env.rounding == RoundingMode::kTowardPositive && !sign) ||
        (env.rounding == RoundingMode::kTowardNegative && sign)) {
      integer = 1;
    }
  } else {
    const int d = F - ue;  // fractional bits to drop (1..F+1)
    const u64 kept = u.sig >> d;
    const u64 tail = u.sig & mask64(d);
    inexact = tail != 0;
    bool inc = false;
    const u64 half = u64{1} << (d - 1);
    switch (env.rounding) {
      case RoundingMode::kNearestEven:
        inc = tail > half || (tail == half && (kept & 1));
        break;
      case RoundingMode::kTowardZero:
        break;
      case RoundingMode::kTowardPositive:
        inc = !sign && inexact;
        break;
      case RoundingMode::kTowardNegative:
        inc = sign && inexact;
        break;
    }
    integer = kept + (inc ? 1 : 0);
  }
  if (inexact) env.raise(kFlagInexact);
  if (integer == 0) return make_zero(v.fmt, sign);
  // Value = integer * 2^0: exact (at most F+1 significant bits).
  return detail::round_pack(sign, v.fmt.bias() + F,
                            integer << detail::kGrsBits, v.fmt, env);
}

}  // namespace flopsim::fp
