// FpValue: one floating-point datum — raw encoding bits plus its format.
#pragma once

#include <string>

#include "fp/bits.hpp"
#include "fp/env.hpp"
#include "fp/format.hpp"

namespace flopsim::fp {

enum class FpClass : std::uint8_t {
  kZero,
  kSubnormal,
  kNormal,
  kInfinity,
  kQuietNaN,
  kSignalingNaN,
};

std::string to_string(FpClass cls);

struct FpValue {
  u64 bits = 0;
  FpFormat fmt = FpFormat::binary32();

  FpValue() = default;
  FpValue(u64 bits_in, FpFormat fmt_in) : bits(bits_in & fmt_in.bits_mask()), fmt(fmt_in) {}

  bool sign() const { return (bits & fmt.sign_mask()) != 0; }
  int biased_exp() const {
    return static_cast<int>((bits & fmt.exp_mask()) >> fmt.frac_bits());
  }
  u64 frac() const { return bits & fmt.frac_mask(); }

  bool is_zero() const { return (bits & ~fmt.sign_mask()) == 0; }
  bool is_subnormal() const { return biased_exp() == 0 && frac() != 0; }
  bool is_normal() const {
    const int e = biased_exp();
    return e > 0 && e < fmt.max_biased_exp();
  }
  bool is_finite() const { return biased_exp() != fmt.max_biased_exp(); }
  bool is_inf() const {
    return biased_exp() == fmt.max_biased_exp() && frac() == 0;
  }
  bool is_nan() const {
    return biased_exp() == fmt.max_biased_exp() && frac() != 0;
  }

  friend bool operator==(const FpValue& a, const FpValue& b) {
    return a.bits == b.bits && a.fmt == b.fmt;
  }
};

/// Classify under FULL IEEE interpretation (independent of env policy).
FpClass classify(const FpValue& v);

// Canonical constructors.
FpValue make_zero(FpFormat fmt, bool sign = false);
FpValue make_inf(FpFormat fmt, bool sign = false);
FpValue make_qnan(FpFormat fmt);
/// Largest finite magnitude of the format.
FpValue make_max_finite(FpFormat fmt, bool sign = false);
/// Smallest positive normal value.
FpValue make_min_normal(FpFormat fmt, bool sign = false);
/// 1.0 in the given format.
FpValue make_one(FpFormat fmt, bool sign = false);
/// Compose from fields (fields are masked into range).
FpValue compose(FpFormat fmt, bool sign, int biased_exp, u64 frac);

/// Human-readable rendering: hex bits plus decoded sign/exp/frac and an
/// approximate decimal value.
std::string to_string(const FpValue& v);

}  // namespace flopsim::fp
