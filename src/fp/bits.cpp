#include "fp/bits.hpp"

namespace flopsim::fp {

Sqrt128Result isqrt128(u128 x) noexcept {
  if (x == 0) return {0, true};
  // Newton iteration seeded from a power-of-two estimate; converges in a
  // handful of steps for 128-bit inputs.
  const int bits = 128 - clz128(x);
  u128 r = u128{1} << ((bits + 1) / 2);
  while (true) {
    const u128 next = (r + x / r) >> 1;
    if (next >= r) break;
    r = next;
  }
  // r may overshoot by one for non-squares near boundaries.
  while (r * r > x) --r;
  while ((r + 1) * (r + 1) <= x) ++r;
  return {static_cast<u64>(r), r * r == x};
}

u64 reverse_bits64(u64 x, int width) noexcept {
  u64 out = 0;
  for (int i = 0; i < width; ++i) {
    out = (out << 1) | ((x >> i) & 1);
  }
  return out;
}

}  // namespace flopsim::fp
