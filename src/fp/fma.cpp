// Fused multiply-add: a * b + c rounded once.
//
// The exact product (up to 2F+2 bits) and the addend are aligned in a
// 128-bit frame with guard/round/sticky, summed, then jam-compressed into
// the 64-bit working form round_pack expects. Library extension beyond the
// paper (its PEs use a separate multiplier and adder; compare
// kernel/ProcessingElement, which rounds twice per MAC like the paper's
// hardware).
#include <stdexcept>

#include "fp/internal.hpp"
#include "fp/ops.hpp"

namespace flopsim::fp {
namespace {

using detail::kGrsBits;

void normalize_sig(detail::Unpacked& u, int frac_bits) {
  const int msb = msb_index64(u.sig);
  if (msb < frac_bits) {
    u.sig <<= (frac_bits - msb);
    u.exp -= (frac_bits - msb);
  }
}

bool is_nan_class(FpClass c) {
  return c == FpClass::kQuietNaN || c == FpClass::kSignalingNaN;
}

}  // namespace

FpValue fma(const FpValue& a, const FpValue& b, const FpValue& c,
            FpEnv& env) {
  if (!(a.fmt == b.fmt) || !(a.fmt == c.fmt)) {
    throw std::invalid_argument("fp::fma: operand formats differ");
  }
  const FpFormat fmt = a.fmt;
  const int F = fmt.frac_bits();
  const FpClass ca = detail::effective_class(a, env);
  const FpClass cb = detail::effective_class(b, env);
  const FpClass cc = detail::effective_class(c, env);

  if (is_nan_class(ca) || is_nan_class(cb) || is_nan_class(cc)) {
    if (classify(a) == FpClass::kSignalingNaN ||
        classify(b) == FpClass::kSignalingNaN ||
        classify(c) == FpClass::kSignalingNaN) {
      env.raise(kFlagInvalid);
    }
    // 0 * inf + qNaN is still invalid per IEEE.
    if ((ca == FpClass::kInfinity && cb == FpClass::kZero) ||
        (ca == FpClass::kZero && cb == FpClass::kInfinity)) {
      env.raise(kFlagInvalid);
    }
    return env.nan_supported ? make_qnan(fmt) : make_inf(fmt, false);
  }

  const bool sign_p = a.sign() ^ b.sign();
  // Product specials.
  if (ca == FpClass::kInfinity || cb == FpClass::kInfinity) {
    if (ca == FpClass::kZero || cb == FpClass::kZero) {
      return detail::invalid_result(fmt, env);
    }
    if (cc == FpClass::kInfinity && c.sign() != sign_p) {
      return detail::invalid_result(fmt, env);
    }
    return make_inf(fmt, sign_p);
  }
  if (cc == FpClass::kInfinity) return make_inf(fmt, c.sign());

  const bool prod_zero = ca == FpClass::kZero || cb == FpClass::kZero;
  if (prod_zero) {
    if (cc == FpClass::kZero) {
      if (sign_p == c.sign()) return make_zero(fmt, sign_p);
      return make_zero(fmt, env.rounding == RoundingMode::kTowardNegative);
    }
    return compose(fmt, c.sign(), c.biased_exp(), c.frac());
  }

  // Exact product in a 128-bit frame: value = sig * 2^(exp - bias - 2F - 3).
  detail::Unpacked ua = detail::unpack_finite(a);
  detail::Unpacked ub = detail::unpack_finite(b);
  normalize_sig(ua, F);
  normalize_sig(ub, F);
  u128 sig_p = (static_cast<u128>(ua.sig) * ub.sig) << kGrsBits;
  int exp_p = ua.exp + ub.exp - fmt.bias();

  bool sign;
  int exp;
  u128 sig;
  if (cc == FpClass::kZero) {
    sign = sign_p;
    exp = exp_p;
    sig = sig_p;
  } else {
    detail::Unpacked uc = detail::unpack_finite(c);
    normalize_sig(uc, F);
    uc.sign = c.sign();
    // Addend in the product's frame: sc * 2^(ec - bias - F) =
    // (sc << (F + 3)) * 2^(ec - bias - 2F - 3).
    u128 sig_c = static_cast<u128>(uc.sig) << (F + kGrsBits);
    int exp_c = uc.exp;

    const int d = exp_p - exp_c;
    if (d > 0) {
      sig_c = shift_right_jam128(sig_c, d);
      exp = exp_p;
    } else if (d < 0) {
      sig_p = shift_right_jam128(sig_p, -d);
      exp = exp_c;
    } else {
      exp = exp_p;
    }
    if (sign_p == uc.sign) {
      sign = sign_p;
      sig = sig_p + sig_c;
    } else if (sig_p > sig_c) {
      sign = sign_p;
      sig = sig_p - sig_c;
    } else if (sig_c > sig_p) {
      sign = uc.sign;
      sig = sig_c - sig_p;
    } else {
      return make_zero(fmt, env.rounding == RoundingMode::kTowardNegative);
    }
  }

  // Compress to the 64-bit working form: msb at F + 3.
  const int msb = 127 - clz128(sig);
  const int target = F + kGrsBits;
  u64 sig64;
  if (msb > target) {
    sig64 = static_cast<u64>(shift_right_jam128(sig, msb - target));
  } else {
    sig64 = static_cast<u64>(sig << (target - msb));
  }
  // value = sig * 2^(exp - bias - 2F - 3); after placing the msb at F+3 the
  // round_pack exponent is exp - F + (msb - target) ... folded below.
  const int exp64 = exp - F + (msb - target);
  return detail::round_pack(sign, exp64, sig64, fmt, env);
}

}  // namespace flopsim::fp
