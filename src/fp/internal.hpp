// Internal softfloat plumbing shared by the arithmetic kernels: the unpacked
// significand form and the single rounding/packing routine every operation
// funnels through. Not part of the public API.
#pragma once

#include "fp/env.hpp"
#include "fp/format.hpp"
#include "fp/value.hpp"

namespace flopsim::fp::detail {

// Number of extra low-order working bits carried through the kernels:
// guard, round, sticky.
inline constexpr int kGrsBits = 3;

/// A finite value in unpacked form. `sig` carries the significand with the
/// hidden bit explicit at position fmt.frac_bits() (so for a normal input,
/// sig is in [2^F, 2^(F+1)) with F = frac_bits).
struct Unpacked {
  bool sign = false;
  int exp = 0;  ///< biased exponent
  u64 sig = 0;  ///< significand, hidden bit explicit, no GRS bits
};

/// Unpack a finite, nonzero value. Subnormals (when honored) are represented
/// with exp = 1 and sig < 2^F (caller normalizes if it needs to).
Unpacked unpack_finite(const FpValue& v);

/// Read a value under the env policy: with flush_subnormals, subnormal
/// encodings classify as zero; with !nan_supported, NaN encodings classify
/// as infinity. Returns the effective class.
FpClass effective_class(const FpValue& v, const FpEnv& env);

/// Round and pack a result.
///
/// @param sig significand with the binary point such that a normalized value
///        has its MSB at bit F + kGrsBits (i.e. value in
///        [2^(F+3), 2^(F+4))); the low 3 bits are guard/round/sticky. The
///        routine tolerates sig up to one bit above the normalized range
///        (carry-out form) and any smaller value (it normalizes left).
/// @param exp biased exponent matching that normalization; may be <= 0
///        (subnormal range) or >= max (overflow region).
FpValue round_pack(bool sign, int exp, u64 sig, FpFormat fmt, FpEnv& env);

/// The NaN (or, in no-NaN mode, infinity) produced by an invalid operation.
FpValue invalid_result(FpFormat fmt, FpEnv& env);

/// Propagate NaN from operands per IEEE (quiet the signaling bit); raises
/// kInvalid for signaling NaNs. Pre: at least one of a/b is NaN, and the env
/// supports NaNs.
FpValue propagate_nan(const FpValue& a, const FpValue& b, FpEnv& env);

}  // namespace flopsim::fp::detail
