// Format conversions and host/integer interop.
#include <bit>
#include <cmath>

#include "fp/internal.hpp"
#include "fp/ops.hpp"

namespace flopsim::fp {

FpValue convert(const FpValue& v, FpFormat dst, FpEnv& env) {
  const FpClass c = detail::effective_class(v, env);
  switch (c) {
    case FpClass::kQuietNaN:
    case FpClass::kSignalingNaN:
      if (c == FpClass::kSignalingNaN) env.raise(kFlagInvalid);
      return make_qnan(dst);
    case FpClass::kInfinity:
      return make_inf(dst, v.sign());
    case FpClass::kZero:
      return make_zero(dst, v.sign());
    case FpClass::kSubnormal:
    case FpClass::kNormal:
      break;
  }
  const detail::Unpacked u = detail::unpack_finite(v);
  // Rebias into the destination; round_pack normalizes and rounds.
  const int exp = u.exp - v.fmt.bias() - v.fmt.frac_bits() + dst.bias() +
                  dst.frac_bits();
  return detail::round_pack(u.sign, exp, u.sig << detail::kGrsBits, dst, env);
}

FpValue from_float(float x, FpFormat fmt, FpEnv& env) {
  const FpValue raw(std::bit_cast<u32>(x), FpFormat::binary32());
  if (fmt == FpFormat::binary32() && !env.flush_subnormals &&
      env.nan_supported) {
    return raw;
  }
  return convert(raw, fmt, env);
}

FpValue from_double(double x, FpFormat fmt, FpEnv& env) {
  const FpValue raw(std::bit_cast<u64>(x), FpFormat::binary64());
  if (fmt == FpFormat::binary64() && !env.flush_subnormals &&
      env.nan_supported) {
    return raw;
  }
  return convert(raw, fmt, env);
}

float to_float(const FpValue& v, FpEnv& env) {
  const FpValue out = convert(v, FpFormat::binary32(), env);
  return std::bit_cast<float>(static_cast<u32>(out.bits));
}

double to_double(const FpValue& v, FpEnv& env) {
  const FpValue out = convert(v, FpFormat::binary64(), env);
  return std::bit_cast<double>(out.bits);
}

double to_double_exact(const FpValue& v) {
  // Every supported format (frac <= 52, exp <= 15 with range inside
  // binary64's for exp_bits <= 11) widens exactly; formats with more
  // exponent range than binary64 saturate to +-inf, which only matters for
  // diagnostic printing.
  FpEnv env = FpEnv::ieee();
  return to_double(v, env);
}

FpValue from_int64(i64 x, FpFormat fmt, FpEnv& env) {
  if (x == 0) return make_zero(fmt, false);
  const bool sign = x < 0;
  // Magnitude of INT64_MIN does not fit in i64; route through u64.
  const u64 mag = sign ? (~static_cast<u64>(x) + 1) : static_cast<u64>(x);
  const int F = fmt.frac_bits();
  // value = mag * 2^0 = sig * 2^(exp - bias - F - 3) with sig msb at F+3.
  const int msb = msb_index64(mag);
  u64 sig;
  if (msb > F + 3) {
    sig = shift_right_jam64(mag, msb - (F + 3));
  } else {
    sig = mag << ((F + 3) - msb);
  }
  const int exp = msb + fmt.bias();
  return detail::round_pack(sign, exp, sig, fmt, env);
}

i64 to_int64(const FpValue& v, FpEnv& env) {
  const FpClass c = detail::effective_class(v, env);
  if (c == FpClass::kQuietNaN || c == FpClass::kSignalingNaN) {
    env.raise(kFlagInvalid);
    return 0;
  }
  if (c == FpClass::kZero) return 0;
  if (c == FpClass::kInfinity) {
    env.raise(kFlagInvalid);
    return v.sign() ? INT64_MIN : INT64_MAX;
  }
  const detail::Unpacked u = detail::unpack_finite(v);
  const int F = v.fmt.frac_bits();
  const int ue = u.exp - v.fmt.bias();  // value = sig * 2^(ue - F)
  if (ue >= 63) {
    // Magnitude >= 2^63 (except exactly INT64_MIN, conservatively invalid
    // for positives; -2^63 is representable).
    if (v.sign() && ue == 63 && u.sig == (u64{1} << F)) return INT64_MIN;
    env.raise(kFlagInvalid);
    return v.sign() ? INT64_MIN : INT64_MAX;
  }
  const int shift = ue - F;
  u64 mag;
  bool inexact = false;
  if (shift >= 0) {
    mag = u.sig << shift;
  } else {
    const int dist = -shift;
    const u64 whole = dist >= 64 ? 0 : (u.sig >> dist);
    const u64 tail = dist >= 64 ? u.sig : (u.sig & mask64(dist));
    inexact = tail != 0;
    bool inc = false;
    switch (env.rounding) {
      case RoundingMode::kNearestEven: {
        if (dist <= 64 && dist >= 1) {
          const u64 half = u64{1} << (dist - 1);
          inc = tail > half || (tail == half && (whole & 1));
        }
        break;
      }
      case RoundingMode::kTowardZero:
        break;
      case RoundingMode::kTowardPositive:
        inc = !v.sign() && inexact;
        break;
      case RoundingMode::kTowardNegative:
        inc = v.sign() && inexact;
        break;
    }
    mag = whole + (inc ? 1 : 0);
  }
  if (inexact) env.raise(kFlagInexact);
  if (mag > (v.sign() ? (u64{1} << 63) : (u64{1} << 63) - 1)) {
    env.raise(kFlagInvalid);
    return v.sign() ? INT64_MIN : INT64_MAX;
  }
  if (v.sign() && mag == (u64{1} << 63)) return INT64_MIN;
  return v.sign() ? -static_cast<i64>(mag) : static_cast<i64>(mag);
}

}  // namespace flopsim::fp
