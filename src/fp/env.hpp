// Evaluation environment: rounding mode, special-value policy, and sticky
// exception flags.
//
// Two policies matter for the reproduction:
//  * FULL IEEE (default): subnormals, NaN propagation, all four rounding
//    directions. This is the golden reference we validate bit-exactly
//    against host hardware for binary32/binary64.
//  * PAPER mode (`FpEnv::paper()`): the policy of the paper's FPGA cores —
//    subnormal inputs and outputs flush to zero, NaNs are not representable
//    (invalid operations return infinity and raise kInvalid), and only
//    round-to-nearest-even and truncation are offered.
#pragma once

#include <cstdint>
#include <string>

namespace flopsim::fp {

enum class RoundingMode : std::uint8_t {
  kNearestEven,     ///< IEEE default; the paper's "rounding-to-nearest"
  kTowardZero,      ///< the paper's "truncation"
  kTowardPositive,  ///< extension beyond the paper's two modes
  kTowardNegative,  ///< extension beyond the paper's two modes
};

std::string to_string(RoundingMode mode);

/// Sticky exception flags, IEEE-754 style. Bitwise-OR accumulated.
enum Flags : std::uint8_t {
  kFlagNone = 0,
  kFlagInexact = 1 << 0,
  kFlagUnderflow = 1 << 1,
  kFlagOverflow = 1 << 2,
  kFlagDivByZero = 1 << 3,
  kFlagInvalid = 1 << 4,
};

std::string flags_to_string(std::uint8_t flags);

struct FpEnv {
  RoundingMode rounding = RoundingMode::kNearestEven;
  /// Flush-to-zero: subnormal inputs are read as zero and subnormal results
  /// are replaced by zero (kUnderflow raised). Matches the paper's cores.
  bool flush_subnormals = false;
  /// When false, the format's NaN encodings are not produced: invalid
  /// operations return infinity (kInvalid still raised) and NaN-encoded
  /// inputs are interpreted as infinity. Matches the paper's cores.
  bool nan_supported = true;
  std::uint8_t flags = kFlagNone;

  void raise(std::uint8_t f) { flags |= f; }
  bool any(std::uint8_t f) const { return (flags & f) != 0; }
  void clear_flags() { flags = kFlagNone; }

  /// The environment of the paper's hardware: round-to-nearest (or
  /// truncation), flush subnormals, no NaN support.
  static FpEnv paper(RoundingMode mode = RoundingMode::kNearestEven) {
    FpEnv env;
    env.rounding = mode;
    env.flush_subnormals = true;
    env.nan_supported = false;
    return env;
  }

  /// Full IEEE-754 environment.
  static FpEnv ieee(RoundingMode mode = RoundingMode::kNearestEven) {
    FpEnv env;
    env.rounding = mode;
    return env;
  }
};

}  // namespace flopsim::fp
