// Parameterized floating-point format descriptor.
//
// The paper treats precision (32/48/64-bit) as one design axis of its FPGA
// cores; this type is the software twin of that axis. A format is
// sign + exponent(exp_bits) + fraction(frac_bits), IEEE-754 style with a
// hidden leading significand bit, biased exponent, and the usual encodings
// for zero / subnormal / infinity / NaN. Whether subnormals and NaNs are
// *honored* is a property of the evaluation environment (FpEnv), not of the
// format: the paper's hardware flushes subnormals and has no NaN handling.
#pragma once

#include <compare>
#include <string>

#include "fp/bits.hpp"

namespace flopsim::fp {

class FpFormat {
 public:
  /// Construct a custom format. Constraints: 2 <= exp_bits <= 15,
  /// 1 <= frac_bits <= 52, and total width (1 + exp + frac) <= 64.
  /// Violations throw std::invalid_argument.
  FpFormat(int exp_bits, int frac_bits);

  // The three precisions the paper evaluates. binary48 follows the
  // Belanovic-Leeser parameterized-library convention of keeping the
  // binary64 exponent range and shortening the fraction.
  static FpFormat binary32() { return FpFormat(8, 23); }
  static FpFormat binary48() { return FpFormat(11, 36); }
  static FpFormat binary64() { return FpFormat(11, 52); }
  // Extra presets exercised by tests/examples (extension beyond the paper).
  static FpFormat binary16() { return FpFormat(5, 10); }
  static FpFormat bfloat16() { return FpFormat(8, 7); }

  int exp_bits() const { return exp_bits_; }
  int frac_bits() const { return frac_bits_; }
  int total_bits() const { return 1 + exp_bits_ + frac_bits_; }
  /// Significand width including the hidden bit.
  int sig_bits() const { return frac_bits_ + 1; }

  int bias() const { return (1 << (exp_bits_ - 1)) - 1; }
  /// All-ones biased exponent (Inf/NaN encoding).
  int max_biased_exp() const { return (1 << exp_bits_) - 1; }
  /// Largest biased exponent of a finite value.
  int max_finite_exp() const { return max_biased_exp() - 1; }
  int min_normal_exp() const { return 1; }

  u64 frac_mask() const { return mask64(frac_bits_); }
  u64 exp_mask() const { return mask64(exp_bits_) << frac_bits_; }
  u64 sign_mask() const { return u64{1} << (exp_bits_ + frac_bits_); }
  /// Mask of all encoding bits of this format.
  u64 bits_mask() const { return mask64(total_bits()); }
  /// MSB of the fraction field — the quiet bit of a NaN.
  u64 quiet_bit() const { return u64{1} << (frac_bits_ - 1); }

  std::string name() const;

  friend bool operator==(const FpFormat&, const FpFormat&) = default;

 private:
  int exp_bits_;
  int frac_bits_;
};

}  // namespace flopsim::fp
