// Neighbour and ULP utilities.
//
// For the monotone IEEE encodings these reduce to integer steps on the
// magnitude bits: incrementing the encoding of a positive finite value
// yields the next value up, across binade boundaries and from the largest
// subnormal into the normals alike.
#include "fp/internal.hpp"
#include "fp/ops.hpp"

namespace flopsim::fp {

FpValue next_up(const FpValue& v) {
  if (v.is_nan()) return v;
  const u64 mag = v.bits & ~v.fmt.sign_mask();
  if (!v.sign()) {
    if (v.is_inf()) return v;  // +inf saturates
    return FpValue(mag + 1, v.fmt);
  }
  // Negative: step toward zero; -0 steps to the smallest positive value.
  if (mag == 0) return FpValue(1, v.fmt);
  return FpValue((mag - 1) | v.fmt.sign_mask(), v.fmt);
}

FpValue next_down(const FpValue& v) {
  if (v.is_nan()) return v;
  return neg(next_up(neg(v)));
}

FpValue ulp(const FpValue& v) {
  if (v.is_nan() || v.is_inf()) return make_inf(v.fmt, false);
  const FpValue a = abs(v);
  if (a.is_zero() || a.is_subnormal() ||
      a.biased_exp() == v.fmt.min_normal_exp()) {
    // In the bottom binade the spacing is the smallest subnormal.
    return FpValue(1, v.fmt);
  }
  // Spacing of the binade of |v|: 2^(e - bias - F).
  const int e = a.biased_exp() - v.fmt.frac_bits();
  if (e >= v.fmt.min_normal_exp()) {
    return compose(v.fmt, false, e, 0);
  }
  // Subnormal-range spacing (2^(e - bias - F) below the normal range):
  // encode through round_pack under a local full-IEEE environment — the
  // value is an exact subnormal power of two.
  FpEnv local = FpEnv::ieee();
  return detail::round_pack(
      false, e, u64{1} << (v.fmt.frac_bits() + detail::kGrsBits), v.fmt,
      local);
}

}  // namespace flopsim::fp
