// Low-level wide-integer bit kernels shared by the softfloat core and the
// structural RTL simulation.
//
// All routines are branch-light and allocation-free; they are the innermost
// loops of both the reference arithmetic and the cycle-accurate simulator.
#pragma once

#include <cstdint>

namespace flopsim::fp {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;
using u128 = unsigned __int128;

/// Mask with the low @p n bits set. Valid for n in [0, 64].
constexpr u64 mask64(int n) noexcept {
  return n >= 64 ? ~u64{0} : ((u64{1} << n) - 1);
}

/// Mask with the low @p n bits set. Valid for n in [0, 128].
constexpr u128 mask128(int n) noexcept {
  return n >= 128 ? ~u128{0} : ((u128{1} << n) - 1);
}

/// Number of leading zero bits of a 64-bit value; 64 for x == 0.
constexpr int clz64(u64 x) noexcept {
  return x == 0 ? 64 : __builtin_clzll(x);
}

/// Number of leading zero bits of a 128-bit value; 128 for x == 0.
constexpr int clz128(u128 x) noexcept {
  const u64 hi = static_cast<u64>(x >> 64);
  return hi != 0 ? clz64(hi) : 64 + clz64(static_cast<u64>(x));
}

/// Count of set bits.
constexpr int popcount64(u64 x) noexcept { return __builtin_popcountll(x); }

/// Logical right shift that ORs every bit shifted out into the result LSB
/// ("jamming" shift). This is how hardware keeps a sticky bit when aligning
/// significands; losing it would break round-to-nearest-even.
constexpr u64 shift_right_jam64(u64 x, int dist) noexcept {
  if (dist <= 0) return x;
  if (dist >= 64) return x != 0 ? 1 : 0;
  return (x >> dist) | ((x & mask64(dist)) != 0 ? 1 : 0);
}

/// 128-bit jamming right shift.
constexpr u128 shift_right_jam128(u128 x, int dist) noexcept {
  if (dist <= 0) return x;
  if (dist >= 128) return x != 0 ? 1 : 0;
  return (x >> dist) | ((x & mask128(dist)) != 0 ? 1 : 0);
}

/// Position (0-based, from LSB) of the most significant set bit; -1 for 0.
constexpr int msb_index64(u64 x) noexcept { return 63 - clz64(x); }

/// Integer square root of a 128-bit value (floor), plus exactness flag via
/// the remainder. Used by the float square-root kernel.
struct Sqrt128Result {
  u64 root;        ///< floor(sqrt(x)); fits in 64 bits for any 128-bit input
  bool exact;      ///< true iff root * root == x
};
Sqrt128Result isqrt128(u128 x) noexcept;

/// Reverse the low @p width bits of @p x (upper bits are dropped).
u64 reverse_bits64(u64 x, int width) noexcept;

}  // namespace flopsim::fp
