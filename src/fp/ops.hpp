// Public arithmetic API of the parameterized softfloat core.
//
// Every operation takes its rounding mode and special-value policy from an
// FpEnv and accumulates IEEE exception flags into it. Operands of
// two-operand functions must share a format (std::invalid_argument
// otherwise); use convert() to mix precisions explicitly, as the paper's
// hardware would with explicit format-conversion modules.
#pragma once

#include "fp/env.hpp"
#include "fp/value.hpp"

namespace flopsim::fp {

FpValue add(const FpValue& a, const FpValue& b, FpEnv& env);
FpValue sub(const FpValue& a, const FpValue& b, FpEnv& env);
FpValue mul(const FpValue& a, const FpValue& b, FpEnv& env);
// div, sqrt and fma are extensions beyond the paper's adder/multiplier
// pair; the related work it cites (Quixilica, NEU library) ships div/sqrt,
// and fused MACs are the natural follow-on for the matmul PE.
FpValue div(const FpValue& a, const FpValue& b, FpEnv& env);
FpValue sqrt(const FpValue& a, FpEnv& env);
/// Fused multiply-add: a * b + c with a single rounding.
FpValue fma(const FpValue& a, const FpValue& b, const FpValue& c, FpEnv& env);

/// IEEE remainder: a - n*b with n = a/b rounded to the nearest integer
/// (ties to even). Always exact; raises kInvalid for b == 0 or a == inf.
FpValue remainder(const FpValue& a, const FpValue& b, FpEnv& env);

/// Round to an integral value in the same format, honoring env.rounding
/// (IEEE roundToIntegralExact; raises kFlagInexact when it changes v).
FpValue round_to_integral(const FpValue& v, FpEnv& env);

// Sign-bit operations (exact, never raise flags).
FpValue neg(const FpValue& a);
FpValue abs(const FpValue& a);
FpValue copysign(const FpValue& magnitude, const FpValue& sign);

enum class Ordering : std::uint8_t { kLess, kEqual, kGreater, kUnordered };

/// Four-way IEEE comparison; raises kInvalid only for signaling NaNs.
Ordering compare(const FpValue& a, const FpValue& b, FpEnv& env);
/// Quiet equality (raises kInvalid only on signaling NaN operands).
bool is_equal(const FpValue& a, const FpValue& b, FpEnv& env);
/// Signaling less-than / less-equal (raise kInvalid on any NaN operand).
bool is_less(const FpValue& a, const FpValue& b, FpEnv& env);
bool is_less_equal(const FpValue& a, const FpValue& b, FpEnv& env);
/// IEEE minNum/maxNum semantics: a number beats a quiet NaN.
FpValue min(const FpValue& a, const FpValue& b, FpEnv& env);
FpValue max(const FpValue& a, const FpValue& b, FpEnv& env);

// Neighbour/ULP utilities (exact; never raise flags). Extensions used
// heavily by the test harness and by accuracy analysis.
/// The next representable value toward +infinity (IEEE nextUp).
FpValue next_up(const FpValue& v);
/// The next representable value toward -infinity (IEEE nextDown).
FpValue next_down(const FpValue& v);
/// The distance between v and the next representable magnitude, as a value
/// of v's format (the classic ulp(v)); inf for non-finite v. Exact, raises
/// no flags, independent of any environment policy.
FpValue ulp(const FpValue& v);

/// Convert between formats with correct rounding.
FpValue convert(const FpValue& v, FpFormat dst, FpEnv& env);

// Host interop. binary32/binary64 round-trips are bit-exact.
FpValue from_float(float x, FpFormat fmt, FpEnv& env);
FpValue from_double(double x, FpFormat fmt, FpEnv& env);
float to_float(const FpValue& v, FpEnv& env);
double to_double(const FpValue& v, FpEnv& env);

/// Exact binary64 view of any value whose format fits in binary64
/// (all formats with frac_bits <= 52 and exp_bits <= 11 do). NaNs map to a
/// quiet NaN. Never raises flags.
double to_double_exact(const FpValue& v);

// Integer conversions (extension).
FpValue from_int64(i64 x, FpFormat fmt, FpEnv& env);
/// Round to integer per env.rounding; saturates and raises kInvalid on NaN
/// or out-of-range.
i64 to_int64(const FpValue& v, FpEnv& env);

}  // namespace flopsim::fp
