#include "fp/format.hpp"

#include <stdexcept>

namespace flopsim::fp {

FpFormat::FpFormat(int exp_bits, int frac_bits)
    : exp_bits_(exp_bits), frac_bits_(frac_bits) {
  if (exp_bits < 2 || exp_bits > 15) {
    throw std::invalid_argument("FpFormat: exp_bits must be in [2, 15]");
  }
  if (frac_bits < 1 || frac_bits > 52) {
    throw std::invalid_argument("FpFormat: frac_bits must be in [1, 52]");
  }
  if (1 + exp_bits + frac_bits > 64) {
    throw std::invalid_argument("FpFormat: total width must be <= 64 bits");
  }
}

std::string FpFormat::name() const {
  if (*this == binary32()) return "binary32";
  if (*this == binary48()) return "binary48";
  if (*this == binary64()) return "binary64";
  if (*this == binary16()) return "binary16";
  if (*this == bfloat16()) return "bfloat16";
  return "fp<e" + std::to_string(exp_bits_) + ",f" + std::to_string(frac_bits_) +
         ">";
}

}  // namespace flopsim::fp
