#include "fp/env.hpp"

namespace flopsim::fp {

std::string to_string(RoundingMode mode) {
  switch (mode) {
    case RoundingMode::kNearestEven: return "nearest-even";
    case RoundingMode::kTowardZero: return "toward-zero";
    case RoundingMode::kTowardPositive: return "toward-positive";
    case RoundingMode::kTowardNegative: return "toward-negative";
  }
  return "unknown";
}

std::string flags_to_string(std::uint8_t flags) {
  if (flags == kFlagNone) return "none";
  std::string out;
  auto append = [&out](const char* name) {
    if (!out.empty()) out += "|";
    out += name;
  };
  if (flags & kFlagInvalid) append("invalid");
  if (flags & kFlagDivByZero) append("div-by-zero");
  if (flags & kFlagOverflow) append("overflow");
  if (flags & kFlagUnderflow) append("underflow");
  if (flags & kFlagInexact) append("inexact");
  return out;
}

}  // namespace flopsim::fp
