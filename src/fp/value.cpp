#include "fp/value.hpp"

#include <cmath>
#include <cstdio>

#include "fp/internal.hpp"

namespace flopsim::fp {

std::string to_string(FpClass cls) {
  switch (cls) {
    case FpClass::kZero: return "zero";
    case FpClass::kSubnormal: return "subnormal";
    case FpClass::kNormal: return "normal";
    case FpClass::kInfinity: return "infinity";
    case FpClass::kQuietNaN: return "qnan";
    case FpClass::kSignalingNaN: return "snan";
  }
  return "unknown";
}

FpClass classify(const FpValue& v) {
  const int e = v.biased_exp();
  const u64 f = v.frac();
  if (e == 0) return f == 0 ? FpClass::kZero : FpClass::kSubnormal;
  if (e == v.fmt.max_biased_exp()) {
    if (f == 0) return FpClass::kInfinity;
    return (f & v.fmt.quiet_bit()) != 0 ? FpClass::kQuietNaN
                                        : FpClass::kSignalingNaN;
  }
  return FpClass::kNormal;
}

FpValue make_zero(FpFormat fmt, bool sign) {
  return FpValue(sign ? fmt.sign_mask() : 0, fmt);
}

FpValue make_inf(FpFormat fmt, bool sign) {
  u64 bits = fmt.exp_mask();
  if (sign) bits |= fmt.sign_mask();
  return FpValue(bits, fmt);
}

FpValue make_qnan(FpFormat fmt) {
  return FpValue(fmt.exp_mask() | fmt.quiet_bit(), fmt);
}

FpValue make_max_finite(FpFormat fmt, bool sign) {
  u64 bits = (static_cast<u64>(fmt.max_finite_exp()) << fmt.frac_bits()) |
             fmt.frac_mask();
  if (sign) bits |= fmt.sign_mask();
  return FpValue(bits, fmt);
}

FpValue make_min_normal(FpFormat fmt, bool sign) {
  u64 bits = u64{1} << fmt.frac_bits();
  if (sign) bits |= fmt.sign_mask();
  return FpValue(bits, fmt);
}

FpValue make_one(FpFormat fmt, bool sign) {
  u64 bits = static_cast<u64>(fmt.bias()) << fmt.frac_bits();
  if (sign) bits |= fmt.sign_mask();
  return FpValue(bits, fmt);
}

FpValue compose(FpFormat fmt, bool sign, int biased_exp, u64 frac) {
  u64 bits = (static_cast<u64>(biased_exp) & mask64(fmt.exp_bits()))
                 << fmt.frac_bits() |
             (frac & fmt.frac_mask());
  if (sign) bits |= fmt.sign_mask();
  return FpValue(bits, fmt);
}

std::string to_string(const FpValue& v) {
  char buf[128];
  const FpClass cls = classify(v);
  double approx = 0.0;
  switch (cls) {
    case FpClass::kZero:
      approx = v.sign() ? -0.0 : 0.0;
      break;
    case FpClass::kInfinity:
      approx = v.sign() ? -HUGE_VAL : HUGE_VAL;
      break;
    case FpClass::kQuietNaN:
    case FpClass::kSignalingNaN:
      approx = std::nan("");
      break;
    case FpClass::kSubnormal:
      approx = std::ldexp(static_cast<double>(v.frac()),
                          1 - v.fmt.bias() - v.fmt.frac_bits());
      if (v.sign()) approx = -approx;
      break;
    case FpClass::kNormal:
      approx = std::ldexp(
          static_cast<double>(v.frac() | (u64{1} << v.fmt.frac_bits())),
          v.biased_exp() - v.fmt.bias() - v.fmt.frac_bits());
      if (v.sign()) approx = -approx;
      break;
  }
  std::snprintf(buf, sizeof buf, "%s{0x%llx %s ~%.17g}", v.fmt.name().c_str(),
                static_cast<unsigned long long>(v.bits),
                to_string(cls).c_str(), approx);
  return buf;
}

namespace detail {

Unpacked unpack_finite(const FpValue& v) {
  Unpacked u;
  u.sign = v.sign();
  const int e = v.biased_exp();
  if (e == 0) {
    u.exp = 1;
    u.sig = v.frac();
  } else {
    u.exp = e;
    u.sig = v.frac() | (u64{1} << v.fmt.frac_bits());
  }
  return u;
}

FpClass effective_class(const FpValue& v, const FpEnv& env) {
  FpClass cls = classify(v);
  if (env.flush_subnormals && cls == FpClass::kSubnormal) return FpClass::kZero;
  if (!env.nan_supported &&
      (cls == FpClass::kQuietNaN || cls == FpClass::kSignalingNaN)) {
    return FpClass::kInfinity;
  }
  return cls;
}

FpValue round_pack(bool sign, int exp, u64 sig, FpFormat fmt, FpEnv& env) {
  const int F = fmt.frac_bits();
  const int top = F + kGrsBits;  // bit index of the hidden bit while rounding

  if (sig == 0) return make_zero(fmt, sign);

  // Normalize so the MSB sits at `top`.
  const int msb = msb_index64(sig);
  if (msb > top) {
    sig = shift_right_jam64(sig, msb - top);
    exp += msb - top;
  } else if (msb < top) {
    sig <<= (top - msb);
    exp -= (top - msb);
  }

  bool tiny = false;
  if (exp <= 0) {
    // Result is below the normal range: denormalize (or flush).
    tiny = true;
    if (env.flush_subnormals) {
      env.raise(kFlagUnderflow | kFlagInexact);
      return make_zero(fmt, sign);
    }
    sig = shift_right_jam64(sig, 1 - exp);
    exp = 0;
  } else if (exp >= fmt.max_biased_exp()) {
    // Magnitude is at least 2 * 2^emax: overflow regardless of rounding.
    env.raise(kFlagOverflow | kFlagInexact);
    switch (env.rounding) {
      case RoundingMode::kNearestEven:
        return make_inf(fmt, sign);
      case RoundingMode::kTowardZero:
        return make_max_finite(fmt, sign);
      case RoundingMode::kTowardPositive:
        return sign ? make_max_finite(fmt, true) : make_inf(fmt, false);
      case RoundingMode::kTowardNegative:
        return sign ? make_inf(fmt, true) : make_max_finite(fmt, false);
    }
  }

  const u64 grs = sig & 7;
  u64 kept = sig >> kGrsBits;
  bool inc = false;
  switch (env.rounding) {
    case RoundingMode::kNearestEven:
      inc = grs > 4 || (grs == 4 && (kept & 1) != 0);
      break;
    case RoundingMode::kTowardZero:
      inc = false;
      break;
    case RoundingMode::kTowardPositive:
      inc = !sign && grs != 0;
      break;
    case RoundingMode::kTowardNegative:
      inc = sign && grs != 0;
      break;
  }
  if (inc) ++kept;

  const bool inexact = grs != 0;
  if (inexact) env.raise(kFlagInexact);
  if (tiny && inexact) env.raise(kFlagUnderflow);

  if ((kept >> (F + 1)) != 0) {
    // Rounding carried out of the significand: 1.111..1 -> 10.000..0.
    kept >>= 1;
    ++exp;
  }
  if (exp >= fmt.max_biased_exp() && kept >= (u64{1} << F)) {
    env.raise(kFlagOverflow | kFlagInexact);
    switch (env.rounding) {
      case RoundingMode::kNearestEven:
        return make_inf(fmt, sign);
      case RoundingMode::kTowardZero:
        return make_max_finite(fmt, sign);
      case RoundingMode::kTowardPositive:
        return sign ? make_max_finite(fmt, true) : make_inf(fmt, false);
      case RoundingMode::kTowardNegative:
        return sign ? make_inf(fmt, true) : make_max_finite(fmt, false);
    }
  }

  // Pack. In the normal path (exp >= 1) kept carries the hidden bit, which
  // must be stripped. In the subnormal path (exp == 0) kept packs directly —
  // and a subnormal that rounded up to 2^F lands exactly on the minimum
  // normal encoding.
  u64 bits;
  if (exp == 0) {
    bits = kept;
  } else {
    bits = (static_cast<u64>(exp) << F) + (kept - (u64{1} << F));
  }
  if (sign) bits |= fmt.sign_mask();
  return FpValue(bits, fmt);
}

FpValue invalid_result(FpFormat fmt, FpEnv& env) {
  env.raise(kFlagInvalid);
  return env.nan_supported ? make_qnan(fmt) : make_inf(fmt, false);
}

FpValue propagate_nan(const FpValue& a, const FpValue& b, FpEnv& env) {
  const FpClass ca = classify(a);
  const FpClass cb = classify(b);
  if (ca == FpClass::kSignalingNaN || cb == FpClass::kSignalingNaN) {
    env.raise(kFlagInvalid);
  }
  return make_qnan(a.fmt);
}

}  // namespace detail
}  // namespace flopsim::fp
