// IEEE comparison predicates and min/max.
#include <stdexcept>

#include "fp/internal.hpp"
#include "fp/ops.hpp"

namespace flopsim::fp {
namespace {

/// Map an encoding to a signed magnitude key such that the IEEE ordering of
/// finite/infinite values equals integer ordering of keys. ±0 share key 0.
i64 order_key(const FpValue& v) {
  const u64 mag = v.bits & ~v.fmt.sign_mask();
  return v.sign() ? -static_cast<i64>(mag) : static_cast<i64>(mag);
}

bool is_any_nan(const FpValue& v, const FpEnv& env) {
  const FpClass c = detail::effective_class(v, env);
  return c == FpClass::kQuietNaN || c == FpClass::kSignalingNaN;
}

}  // namespace

Ordering compare(const FpValue& a, const FpValue& b, FpEnv& env) {
  if (!(a.fmt == b.fmt)) {
    throw std::invalid_argument("fp::compare: operand formats differ");
  }
  if (is_any_nan(a, env) || is_any_nan(b, env)) {
    if (classify(a) == FpClass::kSignalingNaN ||
        classify(b) == FpClass::kSignalingNaN) {
      env.raise(kFlagInvalid);
    }
    return Ordering::kUnordered;
  }
  // Under flush-to-zero, subnormal encodings compare as zero.
  auto key = [&env](const FpValue& v) -> i64 {
    if (env.flush_subnormals && classify(v) == FpClass::kSubnormal) return 0;
    return order_key(v);
  };
  const i64 ka = key(a);
  const i64 kb = key(b);
  if (ka < kb) return Ordering::kLess;
  if (ka > kb) return Ordering::kGreater;
  return Ordering::kEqual;
}

bool is_equal(const FpValue& a, const FpValue& b, FpEnv& env) {
  return compare(a, b, env) == Ordering::kEqual;
}

bool is_less(const FpValue& a, const FpValue& b, FpEnv& env) {
  const Ordering o = compare(a, b, env);
  if (o == Ordering::kUnordered) {
    env.raise(kFlagInvalid);  // signaling predicate
    return false;
  }
  return o == Ordering::kLess;
}

bool is_less_equal(const FpValue& a, const FpValue& b, FpEnv& env) {
  const Ordering o = compare(a, b, env);
  if (o == Ordering::kUnordered) {
    env.raise(kFlagInvalid);
    return false;
  }
  return o != Ordering::kGreater;
}

FpValue min(const FpValue& a, const FpValue& b, FpEnv& env) {
  const bool na = is_any_nan(a, env);
  const bool nb = is_any_nan(b, env);
  if (na && nb) return detail::propagate_nan(a, b, env);
  if (na) return b;
  if (nb) return a;
  return compare(a, b, env) == Ordering::kGreater ? b : a;
}

FpValue max(const FpValue& a, const FpValue& b, FpEnv& env) {
  const bool na = is_any_nan(a, env);
  const bool nb = is_any_nan(b, env);
  if (na && nb) return detail::propagate_nan(a, b, env);
  if (na) return b;
  if (nb) return a;
  return compare(a, b, env) == Ordering::kLess ? b : a;
}

}  // namespace flopsim::fp
