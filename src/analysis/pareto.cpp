#include "analysis/pareto.hpp"

#include <stdexcept>

namespace flopsim::analysis {

Selection select_min_max_opt(const SweepResult& sweep) {
  if (sweep.points.empty()) {
    throw std::invalid_argument("select_min_max_opt: empty sweep");
  }
  Selection sel;
  sel.min = sweep.points.front();
  sel.max = sweep.points.back();
  sel.opt = sweep.points.front();
  for (const DesignPoint& p : sweep.points) {
    if (p.freq_per_area > sel.opt.freq_per_area) sel.opt = p;
  }
  return sel;
}

DesignPoint select_fastest(const SweepResult& sweep) {
  if (sweep.points.empty()) {
    throw std::invalid_argument("select_fastest: empty sweep");
  }
  DesignPoint best = sweep.points.front();
  for (const DesignPoint& p : sweep.points) {
    if (p.freq_mhz > best.freq_mhz ||
        (p.freq_mhz == best.freq_mhz && p.area.slices < best.area.slices)) {
      best = p;
    }
  }
  return best;
}

std::vector<DesignPoint> pareto_frontier(const SweepResult& sweep) {
  std::vector<DesignPoint> frontier;
  for (const DesignPoint& p : sweep.points) {
    bool dominated = false;
    for (const DesignPoint& q : sweep.points) {
      const bool better_or_equal =
          q.freq_mhz >= p.freq_mhz && q.area.slices <= p.area.slices;
      const bool strictly_better =
          q.freq_mhz > p.freq_mhz || q.area.slices < p.area.slices;
      if (better_or_equal && strictly_better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(p);
  }
  return frontier;
}

}  // namespace flopsim::analysis
