// Constraint-driven kernel design selection — the paper's Section 5
// workflow made executable: "based upon the area, latency and energy
// constraints, architectural choices can be made from Figure 5."
//
// The optimizer scans the (adder stages x multiplier stages) grid for a
// given precision, evaluates each PE design with the kernel metrics
// (latency, per-PE energy, area for problem size n), filters by the
// constraints, and returns the best design under the chosen objective.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "kernel/metrics.hpp"

namespace flopsim::analysis {

struct KernelConstraints {
  int n = 16;  ///< problem size the design must serve
  double max_latency_us = std::numeric_limits<double>::infinity();
  double max_energy_nj = std::numeric_limits<double>::infinity();
  int max_pe_slices = std::numeric_limits<int>::max();
};

enum class KernelObjective { kMinEnergy, kMinLatency, kMinArea };

struct KernelChoice {
  kernel::PeConfig cfg;
  int pl = 0;
  double latency_us = 0.0;
  double energy_nj = 0.0;
  int pe_slices = 0;
  double freq_mhz = 0.0;
};

/// Evaluate one candidate (shared with tests and the explorer example).
KernelChoice evaluate_candidate(const kernel::PeConfig& cfg, int n);

/// Scan the depth grid (strided for tractability) and pick the best
/// feasible design; nullopt if the constraints exclude everything.
std::optional<KernelChoice> choose_matmul_design(
    const KernelConstraints& constraints, KernelObjective objective,
    fp::FpFormat fmt = fp::FpFormat::binary32());

/// The candidate grid the optimizer scans (exposed for tests).
std::vector<kernel::PeConfig> candidate_grid(fp::FpFormat fmt);

}  // namespace flopsim::analysis
