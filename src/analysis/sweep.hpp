// Pipeline-depth design-space sweeps — the raw data behind Figures 2 and 3
// and Tables 1 and 2.
#pragma once

#include <vector>

#include "device/tech.hpp"
#include "exec/cancel.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::analysis {

struct DesignPoint {
  int stages = 0;
  double freq_mhz = 0.0;
  double critical_ns = 0.0;
  device::Resources area;
  int pipeline_ffs = 0;
  double freq_per_area = 0.0;   ///< MHz/slice — the paper's metric
  double power_mw_100 = 0.0;    ///< dynamic power at 100 MHz
};

struct SweepResult {
  units::UnitKind kind = units::UnitKind::kAdder;
  fp::FpFormat fmt = fp::FpFormat::binary32();
  device::Objective objective = device::Objective::kArea;
  std::vector<DesignPoint> points;  ///< stages 1..max_stages, in order

  const DesignPoint& at_stages(int stages) const;
};

/// Generate and evaluate the unit at every pipeline depth. The per-depth
/// loop runs on `threads` workers (0 = auto: FLOPSIM_THREADS, then
/// hardware_concurrency; 1 = serial); every depth writes its own slot, so
/// the result is identical at any thread count.
///
/// `cancel`, when non-null, is polled at depth boundaries; a sweep is
/// all-or-nothing (select_min_max_opt over a partial grid would silently
/// pick from what happens to be done), so cancellation mid-sweep throws
/// exec::Interrupted instead of returning a partial result.
SweepResult sweep_unit(units::UnitKind kind, fp::FpFormat fmt,
                       device::Objective objective = device::Objective::kArea,
                       const device::TechModel& tech =
                           device::TechModel::virtex2pro7(),
                       int threads = 0,
                       exec::CancelToken* cancel = nullptr);

/// The paper's three evaluated precisions.
std::vector<fp::FpFormat> paper_formats();

}  // namespace flopsim::analysis
