#include "analysis/experiments.hpp"

#include <cmath>

#include "analysis/pareto.hpp"
#include "device/device.hpp"
#include "device/vendor_cores.hpp"
#include "kernel/metrics.hpp"
#include "power/processors.hpp"

namespace flopsim::analysis {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::string unit_label(units::UnitKind kind) {
  return kind == units::UnitKind::kAdder ? "Adders" : "Multipliers";
}

const std::vector<kernel::PeConfig>& reference_pe_configs() {
  static const std::vector<kernel::PeConfig> cfgs = {
      kernel::pe_min_pipelined(), kernel::pe_moderate_pipelined(),
      kernel::pe_max_pipelined()};
  return cfgs;
}

}  // namespace

Table fig2_freq_area(units::UnitKind kind) {
  Table t("Figure 2: Freq/Area vs. No. of Pipeline Stages for " +
              unit_label(kind) + " (MHz/slice)",
          {"stages", "32-bit", "48-bit", "64-bit"});
  std::vector<SweepResult> sweeps;
  int max_stages = 0;
  for (const fp::FpFormat& fmt : paper_formats()) {
    sweeps.push_back(sweep_unit(kind, fmt));
    max_stages =
        std::max(max_stages, static_cast<int>(sweeps.back().points.size()));
  }
  for (int s = 1; s <= max_stages; ++s) {
    std::vector<std::string> row{Table::num(static_cast<long>(s))};
    for (const SweepResult& sw : sweeps) {
      row.push_back(
          s <= static_cast<int>(sw.points.size())
              ? Table::num(sw.at_stages(s).freq_per_area, 4)
              : "-");
    }
    t.add_row(std::move(row));
  }
  return t;
}

Table table_min_max_opt(units::UnitKind kind) {
  const bool adder = kind == units::UnitKind::kAdder;
  Table t(std::string(adder ? "Table 1" : "Table 2") +
              ": Analysis of 32, 48, 64-bit Floating Point " +
              (adder ? "Adders" : "Multipliers"),
          {"metric", "32 min", "32 max", "32 opt", "48 min", "48 max",
           "48 opt", "64 min", "64 max", "64 opt"});

  std::vector<Selection> sel;
  for (const fp::FpFormat& fmt : paper_formats()) {
    sel.push_back(select_min_max_opt(sweep_unit(kind, fmt)));
  }
  auto row = [&](const std::string& name, auto getter, int precision) {
    std::vector<std::string> cells{name};
    for (const Selection& s : sel) {
      for (const DesignPoint* p : {&s.min, &s.max, &s.opt}) {
        cells.push_back(Table::num(getter(*p), precision));
      }
    }
    t.add_row(std::move(cells));
  };
  row("No. of Pipeline Stages",
      [](const DesignPoint& p) { return static_cast<double>(p.stages); }, 0);
  row("Area (slices)",
      [](const DesignPoint& p) { return static_cast<double>(p.area.slices); },
      0);
  row("LUTs",
      [](const DesignPoint& p) { return static_cast<double>(p.area.luts); },
      0);
  row("Flip Flops",
      [](const DesignPoint& p) { return static_cast<double>(p.area.ffs); }, 0);
  row("Clock Rate (MHz)",
      [](const DesignPoint& p) { return p.freq_mhz; }, 1);
  row("Freq/Area (MHz/slice)",
      [](const DesignPoint& p) { return p.freq_per_area; }, 4);
  return t;
}

namespace {

void add_compare_rows(Table& t, const std::string& group,
                      const DesignPoint& usc,
                      const std::vector<device::VendorCore>& vendors,
                      const std::string& op, bool with_power,
                      double usc_power_mw) {
  auto add = [&](const std::string& who, double stages, double slices,
                 double mhz, double fpa, double power) {
    std::vector<std::string> row{group + " " + who,
                                 Table::num(stages, 0),
                                 Table::num(slices, 0),
                                 Table::num(mhz, 1),
                                 Table::num(fpa, 4)};
    if (with_power) row.push_back(Table::num(power, 0));
    t.add_row(std::move(row));
  };
  add("USC", usc.stages, usc.area.slices, usc.freq_mhz, usc.freq_per_area,
      usc_power_mw);
  for (const auto& v : vendors) {
    if (v.operation != op) continue;
    add(v.vendor, v.stages, v.area.slices, v.clock_mhz, v.freq_per_area(),
        v.power_mw_100mhz > 0 ? v.power_mw_100mhz : kNaN);
  }
}

}  // namespace

Table table3_compare32() {
  Table t("Table 3: Comparison of 32-bit Floating Point Units",
          {"unit", "pipelines", "slices", "MHz", "MHz/slice"});
  const auto vendors = device::table3_cores();
  const DesignPoint add_fast = select_fastest(
      sweep_unit(units::UnitKind::kAdder, fp::FpFormat::binary32()));
  const DesignPoint mul_fast = select_fastest(
      sweep_unit(units::UnitKind::kMultiplier, fp::FpFormat::binary32()));
  add_compare_rows(t, "adder", add_fast, vendors, "add", false, kNaN);
  add_compare_rows(t, "mult", mul_fast, vendors, "mul", false, kNaN);
  return t;
}

Table table4_compare64() {
  Table t("Table 4: Comparison of 64-bit Floating Point Units",
          {"unit", "pipelines", "slices", "MHz", "MHz/slice", "mW@100MHz"});
  const auto vendors = device::table4_cores();
  const DesignPoint add_fast = select_fastest(
      sweep_unit(units::UnitKind::kAdder, fp::FpFormat::binary64()));
  const DesignPoint mul_fast = select_fastest(
      sweep_unit(units::UnitKind::kMultiplier, fp::FpFormat::binary64()));
  add_compare_rows(t, "adder", add_fast, vendors, "add", true,
                   add_fast.power_mw_100);
  add_compare_rows(t, "mult", mul_fast, vendors, "mul", true,
                   mul_fast.power_mw_100);
  return t;
}

Table fig3_power(units::UnitKind kind) {
  Table t("Figure 3: Power vs. No. of Pipeline Stages for " +
              unit_label(kind) + " (mW at 100 MHz)",
          {"stages", "32-bit", "48-bit", "64-bit"});
  std::vector<SweepResult> sweeps;
  int max_stages = 0;
  for (const fp::FpFormat& fmt : paper_formats()) {
    sweeps.push_back(sweep_unit(kind, fmt));
    max_stages =
        std::max(max_stages, static_cast<int>(sweeps.back().points.size()));
  }
  for (int s = 1; s <= max_stages; ++s) {
    std::vector<std::string> row{Table::num(static_cast<long>(s))};
    for (const SweepResult& sw : sweeps) {
      row.push_back(s <= static_cast<int>(sw.points.size())
                        ? Table::num(sw.at_stages(s).power_mw_100, 1)
                        : "-");
    }
    t.add_row(std::move(row));
  }
  return t;
}

std::vector<Table> section42_matmul() {
  std::vector<Table> out;
  const device::Device dev = device::xc2vp125();

  Table perf("Section 4.2: Matrix multiplication on " + dev.name,
             {"design", "PL", "PEs", "MHz", "GFLOPS", "Power (W)",
              "GFLOPS/W"});
  auto add_design = [&](const std::string& name,
                        const kernel::PeConfig& cfg) {
    const kernel::KernelDesign d(cfg);
    perf.add_row({name, Table::num(static_cast<long>(d.pl())),
                  Table::num(static_cast<long>(d.max_pes(dev))),
                  Table::num(d.freq_mhz(), 1),
                  Table::num(d.device_gflops(dev), 1),
                  Table::num(d.device_power_w(dev), 1),
                  Table::num(d.gflops_per_watt(dev), 2)});
  };
  add_design("single (pl=10)", kernel::pe_min_pipelined());
  add_design("single (pl=19)", kernel::pe_moderate_pipelined());
  add_design("single (pl=25)", kernel::pe_max_pipelined());
  add_design("double (opt)", kernel::pe_double_optimal());
  out.push_back(std::move(perf));

  const kernel::KernelDesign best(kernel::pe_moderate_pipelined());
  const kernel::KernelDesign dbl(kernel::pe_double_optimal());
  Table cmp("Section 4.2: Comparison against general-purpose processors",
            {"platform", "GFLOPS (single)", "GFLOPS (double)", "Power (W)",
             "GFLOPS/W (single)", "FPGA speedup", "FPGA GFLOPS/W gain"});
  const double fpga_gf = best.device_gflops(dev);
  const double fpga_gfw = best.gflops_per_watt(dev);
  cmp.add_row({"FPGA " + dev.name, Table::num(fpga_gf, 1),
               Table::num(dbl.device_gflops(dev), 1),
               Table::num(best.device_power_w(dev), 1),
               Table::num(fpga_gfw, 2), "1.0x", "1.0x"});
  for (const auto& p : power::processor_database()) {
    cmp.add_row({p.name, Table::num(p.gflops_single, 1),
                 Table::num(p.gflops_double, 1), Table::num(p.power_w, 1),
                 Table::num(p.gflops_per_watt_single(), 3),
                 Table::num(fpga_gf / p.gflops_single, 1) + "x",
                 Table::num(fpga_gfw / p.gflops_per_watt_single(), 1) + "x"});
  }
  out.push_back(std::move(cmp));
  return out;
}

Table fig4_energy_distribution() {
  Table t("Figure 4: PE energy distribution (nJ) for n = 10 and n = 30",
          {"component", "n=10 pl=10", "n=10 pl=19", "n=10 pl=25",
           "n=30 pl=10", "n=30 pl=19", "n=30 pl=25"});
  std::vector<power::EnergyReport> reps;
  for (int n : {10, 30}) {
    for (const kernel::PeConfig& cfg : reference_pe_configs()) {
      reps.push_back(kernel::KernelDesign(cfg).pe_energy(n));
    }
  }
  for (const char* comp : {"IO", "Misc", "Storage", "MAC"}) {
    std::vector<std::string> row{comp};
    for (const auto& rep : reps) {
      row.push_back(Table::num(rep.component_nj(comp), 1));
    }
    t.add_row(std::move(row));
  }
  std::vector<std::string> total{"total"};
  for (const auto& rep : reps) total.push_back(Table::num(rep.total_nj, 1));
  t.add_row(std::move(total));
  return t;
}

std::vector<Table> fig5_problem_size() {
  const std::vector<int> sizes = {4, 8, 12, 16, 24, 32, 48, 64};
  std::vector<kernel::KernelDesign> designs;
  for (const auto& cfg : reference_pe_configs()) designs.emplace_back(cfg);

  Table e("Figure 5a: Energy (nJ per PE) vs. problem size n",
          {"n", "pl=10", "pl=19", "pl=25"});
  Table r("Figure 5b: Resources vs. problem size n (n-PE array)",
          {"n", "slices pl=10", "slices pl=19", "slices pl=25", "BMults/PE",
           "BRAMs/PE"});
  Table l("Figure 5c: Latency (usec) vs. problem size n",
          {"n", "pl=10", "pl=19", "pl=25"});
  for (int n : sizes) {
    std::vector<std::string> er{Table::num(static_cast<long>(n))};
    std::vector<std::string> rr{Table::num(static_cast<long>(n))};
    std::vector<std::string> lr{Table::num(static_cast<long>(n))};
    for (const auto& d : designs) {
      er.push_back(Table::num(d.pe_energy(n).total_nj, 1));
      rr.push_back(Table::num(
          static_cast<long>(d.pe_resources().slices) * n));
      lr.push_back(Table::num(d.latency_us(n), 3));
    }
    const auto& d0 = designs.front();
    rr.push_back(Table::num(static_cast<long>(d0.pe_resources().bmults)));
    rr.push_back(Table::num(static_cast<long>(d0.pe_resources().brams)));
    e.add_row(std::move(er));
    r.add_row(std::move(rr));
    l.add_row(std::move(lr));
  }
  return {std::move(e), std::move(r), std::move(l)};
}

std::vector<Table> fig6_block_size() {
  const int n = 16;
  const std::vector<int> blocks = {1, 2, 4, 8, 16};
  std::vector<kernel::KernelDesign> designs;
  for (const auto& cfg : reference_pe_configs()) designs.emplace_back(cfg);

  Table e("Figure 6a: Energy (nJ per PE) vs. block size b (n = 16)",
          {"b", "pl=10", "pl=19", "pl=25"});
  Table r("Figure 6b: Resources vs. block size b (b-PE array)",
          {"b", "slices pl=10", "slices pl=19", "slices pl=25", "BMults/PE",
           "BRAMs/PE"});
  Table l("Figure 6c: Latency (usec) vs. block size b (n = 16)",
          {"b", "pl=10", "pl=19", "pl=25"});
  for (int b : blocks) {
    std::vector<std::string> er{Table::num(static_cast<long>(b))};
    std::vector<std::string> rr{Table::num(static_cast<long>(b))};
    std::vector<std::string> lr{Table::num(static_cast<long>(b))};
    for (const auto& d : designs) {
      er.push_back(Table::num(d.pe_energy_blocked(n, b).total_nj, 1));
      rr.push_back(Table::num(
          static_cast<long>(d.pe_resources().slices) * b));
      const long cycles = kernel::block_matmul_stats(n, b, d.pl()).cycles;
      lr.push_back(Table::num(cycles / d.freq_mhz(), 3));
    }
    const auto& d0 = designs.front();
    rr.push_back(Table::num(static_cast<long>(d0.pe_resources().bmults)));
    rr.push_back(Table::num(static_cast<long>(d0.pe_resources().brams)));
    e.add_row(std::move(er));
    r.add_row(std::move(rr));
    l.add_row(std::move(lr));
  }
  return {std::move(e), std::move(r), std::move(l)};
}

}  // namespace flopsim::analysis
