// Plain-text table/figure rendering shared by the bench binaries, plus CSV
// export for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace flopsim::analysis {

class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  /// Append a row (must match the header count).
  void add_row(std::vector<std::string> cells);

  /// Numeric convenience: formats with the given precision, "-" for NaN.
  static std::string num(double v, int precision = 2);
  static std::string num(long v);

  const std::string& title() const { return title_; }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Fixed-width rendering with a title banner.
  void print(std::ostream& os) const;
  std::string to_string() const;
  std::string to_csv() const;
  /// JSON object: {"title": ..., "headers": [...], "rows": [[...], ...]}.
  std::string to_json() const;
  /// Write CSV next to the binary outputs (returns success).
  bool write_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flopsim::analysis
