// Numerical-accuracy analysis: quantify what a precision/rounding choice
// costs in result quality — the flip side of the paper's area/throughput
// tradeoffs (library extension; used by bench/ext_precision).
#pragma once

#include <vector>

#include "fp/ops.hpp"

namespace flopsim::analysis {

struct AccuracyStats {
  double max_rel_error = 0.0;   ///< max |got-want|/|want| over nonzero refs
  double mean_rel_error = 0.0;
  double max_ulp_error = 0.0;   ///< error in ulps of the *measured* format
  long compared = 0;            ///< finite, nonzero reference entries
  long exceptional = 0;         ///< entries skipped (inf/NaN/zero reference)
};

/// Compare values in format `fmt` against binary64 reference encodings.
/// Sizes must match (std::invalid_argument otherwise).
AccuracyStats compare_to_reference(const std::vector<fp::u64>& got_bits,
                                   fp::FpFormat fmt,
                                   const std::vector<fp::u64>& ref_bits64);

/// ULP distance between a value and a binary64 reference, measured in ulps
/// of v's format at the reference's magnitude. Infinity for mismatched
/// specials.
double ulp_error(const fp::FpValue& v, double reference);

}  // namespace flopsim::analysis
