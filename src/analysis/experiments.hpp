// One generator per table/figure of the paper's evaluation. Each returns a
// Table (or a set of Tables) that a bench binary prints and optionally
// dumps to CSV; the integration tests assert the paper's qualitative
// relations on the same data.
#pragma once

#include <vector>

#include "analysis/report.hpp"
#include "analysis/sweep.hpp"

namespace flopsim::analysis {

/// Figure 2: Freq/Area (MHz/slice) vs. number of pipeline stages, for the
/// adder (a) or multiplier (b), at 32/48/64-bit precision.
Table fig2_freq_area(units::UnitKind kind);

/// Table 1 / Table 2: min / max / opt implementations per precision.
Table table_min_max_opt(units::UnitKind kind);

/// Table 3: 32-bit adder & multiplier vs. Nallatech and Quixilica.
Table table3_compare32();

/// Table 4: 64-bit adder & multiplier vs. the NEU parameterized library,
/// including power at 100 MHz.
Table table4_compare64();

/// Figure 3: power (mW at 100 MHz) vs. number of pipeline stages.
Table fig3_power(units::UnitKind kind);

/// Section 4.2: device-level matmul GFLOPS, speedups and GFLOPS/W against
/// the Pentium 4 and G4 references.
std::vector<Table> section42_matmul();

/// Figure 4: per-PE energy distribution (MAC/Storage/IO/Misc) for problem
/// sizes n = 10 and n = 30 under pl = 10/19/25.
Table fig4_energy_distribution();

/// Figure 5: (a) energy, (b) resources, (c) latency vs. problem size n for
/// pl = 10/19/25.
std::vector<Table> fig5_problem_size();

/// Figure 6: (a) energy, (b) resources, (c) latency vs. block size b for
/// problem size n = 16, pl = 10/19/25.
std::vector<Table> fig6_block_size();

}  // namespace flopsim::analysis
