#include "analysis/optimizer.hpp"

namespace flopsim::analysis {

KernelChoice evaluate_candidate(const kernel::PeConfig& cfg, int n) {
  const kernel::KernelDesign d(cfg);
  KernelChoice c;
  c.cfg = cfg;
  c.pl = d.pl();
  c.latency_us = d.latency_us(n);
  c.energy_nj = d.pe_energy(n).total_nj;
  c.pe_slices = d.pe_resources().slices;
  c.freq_mhz = d.freq_mhz();
  return c;
}

std::vector<kernel::PeConfig> candidate_grid(fp::FpFormat fmt) {
  units::UnitConfig probe_cfg;
  const units::FpUnit add_probe(units::UnitKind::kAdder, fmt, probe_cfg);
  const units::FpUnit mul_probe(units::UnitKind::kMultiplier, fmt, probe_cfg);

  std::vector<kernel::PeConfig> grid;
  for (int sa = 1; sa <= add_probe.max_stages(); sa += 2) {
    for (int sm = 1; sm <= mul_probe.max_stages(); sm += 2) {
      kernel::PeConfig cfg;
      cfg.fmt = fmt;
      cfg.adder_stages = sa;
      cfg.mult_stages = sm;
      grid.push_back(cfg);
    }
  }
  return grid;
}

std::optional<KernelChoice> choose_matmul_design(
    const KernelConstraints& constraints, KernelObjective objective,
    fp::FpFormat fmt) {
  std::optional<KernelChoice> best;
  auto better = [objective](const KernelChoice& a, const KernelChoice& b) {
    switch (objective) {
      case KernelObjective::kMinEnergy: return a.energy_nj < b.energy_nj;
      case KernelObjective::kMinLatency: return a.latency_us < b.latency_us;
      case KernelObjective::kMinArea: return a.pe_slices < b.pe_slices;
    }
    return false;
  };
  for (const kernel::PeConfig& cfg : candidate_grid(fmt)) {
    const KernelChoice c = evaluate_candidate(cfg, constraints.n);
    if (c.latency_us > constraints.max_latency_us) continue;
    if (c.energy_nj > constraints.max_energy_nj) continue;
    if (c.pe_slices > constraints.max_pe_slices) continue;
    if (!best.has_value() || better(c, *best)) best = c;
  }
  return best;
}

}  // namespace flopsim::analysis
