#include "analysis/sweep.hpp"

#include <stdexcept>

#include "exec/parallel.hpp"
#include "power/unit_power.hpp"

namespace flopsim::analysis {

const DesignPoint& SweepResult::at_stages(int stages) const {
  for (const DesignPoint& p : points) {
    if (p.stages == stages) return p;
  }
  throw std::out_of_range("SweepResult: no such depth");
}

SweepResult sweep_unit(units::UnitKind kind, fp::FpFormat fmt,
                       device::Objective objective,
                       const device::TechModel& tech, int threads,
                       exec::CancelToken* cancel) {
  SweepResult result;
  result.kind = kind;
  result.fmt = fmt;
  result.objective = objective;

  units::UnitConfig cfg;
  cfg.objective = objective;
  cfg.tech = tech;
  const units::FpUnit probe(kind, fmt, cfg);
  const int maxs = probe.max_stages();
  result.points.assign(static_cast<std::size_t>(maxs), {});
  // One grid chunk per depth so cancellation lands between depth points;
  // chunk boundaries fixed by the grid keep the per-depth slot writes (and
  // so the result) bit-identical to the legacy chunked loop.
  exec::GridOptions opts;
  opts.chunk = 1;
  opts.cancel = cancel;
  const exec::GridResult grid = exec::parallel_for_grid(
      static_cast<std::size_t>(maxs), threads,
      [&](int /*worker*/, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          units::UnitConfig point_cfg = cfg;
          point_cfg.stages = static_cast<int>(i) + 1;
          const units::FpUnit unit(kind, fmt, point_cfg);
          DesignPoint p;
          p.stages = point_cfg.stages;
          const rtl::Timing t = unit.timing();
          p.freq_mhz = t.freq_mhz;
          p.critical_ns = t.critical_ns;
          const rtl::AreaBreakdown a = unit.area();
          p.area = a.total;
          p.pipeline_ffs = a.pipeline_ffs;
          p.freq_per_area = unit.freq_per_area();
          p.power_mw_100 = power::unit_power(unit, 100.0).total_mw();
          result.points[i] = p;
        }
      },
      opts);
  if (!grid.complete()) {
    // A partial depth grid is not a usable sweep (selection would quietly
    // run over whatever depths happened to finish) — fail loudly.
    throw exec::Interrupted(cancel != nullptr
                                ? cancel->reason()
                                : exec::CancelToken::Reason::kOther);
  }
  return result;
}

std::vector<fp::FpFormat> paper_formats() {
  return {fp::FpFormat::binary32(), fp::FpFormat::binary48(),
          fp::FpFormat::binary64()};
}

}  // namespace flopsim::analysis
