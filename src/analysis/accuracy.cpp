#include "analysis/accuracy.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace flopsim::analysis {

double ulp_error(const fp::FpValue& v, double reference) {
  const double got = fp::to_double_exact(v);
  if (std::isnan(got) || std::isnan(reference)) {
    return (std::isnan(got) && std::isnan(reference))
               ? 0.0
               : std::numeric_limits<double>::infinity();
  }
  if (std::isinf(got) || std::isinf(reference)) {
    return got == reference ? 0.0
                            : std::numeric_limits<double>::infinity();
  }
  // The ulp of v's format at the reference's magnitude.
  fp::FpEnv env = fp::FpEnv::ieee();
  const fp::FpValue ref_in_fmt = fp::from_double(reference, v.fmt, env);
  const double u = fp::to_double_exact(fp::ulp(ref_in_fmt));
  if (u == 0.0 || std::isinf(u)) {
    return got == reference ? 0.0
                            : std::numeric_limits<double>::infinity();
  }
  return std::abs(got - reference) / u;
}

AccuracyStats compare_to_reference(const std::vector<fp::u64>& got_bits,
                                   fp::FpFormat fmt,
                                   const std::vector<fp::u64>& ref_bits64) {
  if (got_bits.size() != ref_bits64.size()) {
    throw std::invalid_argument("compare_to_reference: size mismatch");
  }
  AccuracyStats st;
  double rel_sum = 0.0;
  for (std::size_t i = 0; i < got_bits.size(); ++i) {
    const fp::FpValue v(got_bits[i], fmt);
    const double want = fp::to_double_exact(
        fp::FpValue(ref_bits64[i], fp::FpFormat::binary64()));
    if (!std::isfinite(want) || want == 0.0) {
      ++st.exceptional;
      continue;
    }
    const double got = fp::to_double_exact(v);
    const double rel = std::abs((got - want) / want);
    st.max_rel_error = std::max(st.max_rel_error, rel);
    rel_sum += rel;
    st.max_ulp_error = std::max(st.max_ulp_error, ulp_error(v, want));
    ++st.compared;
  }
  if (st.compared > 0) st.mean_rel_error = rel_sum / st.compared;
  return st;
}

}  // namespace flopsim::analysis
