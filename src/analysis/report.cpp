#include "analysis/report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace flopsim::analysis {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: headers must be nonempty");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  if (std::isnan(v)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      // Left-align the first column, right-align the rest (numeric).
      if (c == 0) {
        os << cells[c] << std::string(width[c] - cells[c].size(), ' ');
      } else {
        os << std::string(width[c] - cells[c].size(), ' ') << cells[c];
      }
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  os << "\n";
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ",";
      // Quote cells containing separators.
      if (cells[c].find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cells[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cells[c];
      }
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_json() const {
  std::ostringstream os;
  auto quote = [&os](const std::string& s) {
    os << '"';
    for (char ch : s) {
      switch (ch) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        default: os << ch;
      }
    }
    os << '"';
  };
  auto emit_array = [&](const std::vector<std::string>& cells) {
    os << "[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) os << ",";
      quote(cells[i]);
    }
    os << "]";
  };
  os << "{\"title\":";
  quote(title_);
  os << ",\"headers\":";
  emit_array(headers_);
  os << ",\"rows\":[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r != 0) os << ",";
    emit_array(rows_[r]);
  }
  os << "]}";
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

}  // namespace flopsim::analysis
