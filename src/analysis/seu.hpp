// Soft-error vulnerability analysis — the reliability axis the paper's
// min/max/opt depth selection cannot see.
//
// Every pipeline register a deeper design adds is one more SRAM-backed
// state bit exposed to single-event upsets. This module runs seeded
// fault-injection campaigns against the cycle-accurate units and kernels,
// measures the architectural vulnerability factor (AVF: the fraction of
// latch-bit upsets that corrupt the architectural result, using the golden
// `fp::` reference via the unit's own clean run as oracle), converts it to
// a silent-data-corruption FIT rate, and extends the paper's
// select_min_max_opt with a reliability constraint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/pareto.hpp"
#include "exec/cancel.hpp"
#include "fault/cram.hpp"
#include "fault/hardening.hpp"
#include "kernel/matmul.hpp"
#include "rtl/evaluator.hpp"

namespace flopsim::analysis {

/// Per-fault verdict of a hardened (or bare) unit campaign.
enum class FaultOutcome { kMasked, kDetected, kCorrected, kSilent };

struct SeuCampaignConfig {
  int vectors = 32;  ///< workload operands driven through the pipe
  int faults = 48;   ///< upsets injected, one per run (single-fault model)
  std::uint64_t seed = 0x5eed;
  fault::Scheme scheme = fault::Scheme::kNone;
  /// Worker threads for the trial loop (exec::parallel_for_chunked).
  /// 0 = auto (FLOPSIM_THREADS, then hardware_concurrency); 1 = serial.
  /// The fault list is pre-drawn and tallies reduce in fault-list order,
  /// so results are bit-identical for every thread count.
  int threads = 0;
  /// Trial evaluation backend (rtl::Evaluator). kAuto resolves via
  /// FLOPSIM_BACKEND, defaulting to the interpreted reference. The
  /// compiled/bitsliced fast paths produce bit-identical tallies (and
  /// checkpoint bytes — the backend never enters the spec hash); a
  /// campaign whose faults or chain fall outside their guarantees
  /// (non-latch faults, DONE-writing pieces) silently falls back to the
  /// interpreted loop and bumps campaign.unit.backend_fallback.
  rtl::EvalBackend backend = rtl::EvalBackend::kAuto;
};

/// How a resilient campaign invocation ended and what it covered. Embedded
/// in every campaign result; all-defaults means "ran to completion with no
/// checkpointing involved" — exactly the legacy behaviour.
struct CampaignRunStatus {
  bool interrupted = false;  ///< cancelled before every chunk finished
  exec::CancelToken::Reason stop_reason = exec::CancelToken::Reason::kNone;
  long chunks_total = 0;
  long chunks_completed = 0;  ///< chunks run by THIS invocation
  long chunks_restored = 0;   ///< chunks restored from a checkpoint
  long trials_executed = 0;   ///< trials run by THIS invocation
};

struct UnitSeuResult {
  int injected = 0;
  int masked = 0;     ///< never reached the architectural output
  int detected = 0;   ///< checker fired (parity/residue/compare)
  int corrected = 0;  ///< TMR: raw copy corrupted, voted output clean
  int silent = 0;     ///< corrupted the output with no error indication
  /// Raw (pre-voter) corruption count — the scheme-independent AVF
  /// numerator.
  int corrupted = 0;
  long occupied_bits = 0;  ///< AVF sample space (occupied latch bits)
  int pipeline_ffs = 0;    ///< physical latch bits (upset cross-section)
  CampaignRunStatus run;

  double avf() const {
    return injected > 0 ? static_cast<double>(corrupted) / injected : 0.0;
  }
  double sdc_fraction() const {
    return injected > 0 ? static_cast<double>(silent) / injected : 0.0;
  }
};

/// 95% confidence half-width of the proportion `successes / n`, using the
/// Agresti-Coull adjusted estimate p~ = (s+2)/(n+4) so an early all-masked
/// (or all-silent) sample never reports a zero width. 0 when n == 0. The
/// convergence early-stop compares this — scaled to FIT for unit
/// campaigns — against CampaignRunControl::stop_half_width.
double proportion_half_width(long successes, long n);

/// Inject `camp.faults` single upsets (one per run) into a unit at the
/// configured depth and classify each against the golden run.
UnitSeuResult run_unit_campaign(units::UnitKind kind, fp::FpFormat fmt,
                                const units::UnitConfig& cfg,
                                const SeuCampaignConfig& camp);

/// Raw-fabric upset-rate model for *user state* (pipeline latches, BRAM
/// words). Configuration memory is CramRateModel below.
struct SeuRateModel {
  /// Upset rate of SRAM state, FIT per Mbit — Virtex-II-era neutron+alpha
  /// order of magnitude.
  double fit_per_mbit = 400.0;

  /// Failures-in-time (events per 1e9 device-hours) of `bits` state bits
  /// derated by the architectural vulnerability factor.
  double fit(int bits, double avf) const {
    return fit_per_mbit * (static_cast<double>(bits) / 1e6) * avf;
  }
};

// --- resilient execution -----------------------------------------------
//
// Campaigns run on exec::parallel_for_grid: a static chunk grid whose
// boundaries depend only on (trial count, chunk_trials), never on the
// thread count. Each finished chunk's verdict bytes are journalled to a
// fault::CheckpointWriter sidecar keyed by a content hash of the campaign
// spec (unit, precision, depth, hardening, seeds, trial count, chunking).
// Resume restores finished chunks into their slots, skips them, runs the
// rest, and replays the ordered reduction — bit-identical to an
// uninterrupted run at any thread count. Cancellation (signals, budgets,
// convergence) is polled between chunks; in-flight chunks always finish
// and are checkpointed before return.

struct CampaignRunControl {
  /// Polled at chunk boundaries; nullptr = campaign makes a private token
  /// (budgets and convergence still work, signals do not reach it).
  exec::CancelToken* cancel = nullptr;
  /// Directory for checkpoint sidecars (one file per campaign spec hash).
  /// Empty = no checkpointing.
  std::string checkpoint_dir;
  /// Restore and skip chunks recorded in an existing sidecar. A sidecar
  /// whose spec hash / trial count / chunk size disagree with this
  /// campaign throws std::runtime_error — mixed tallies are refused.
  bool resume = false;
  /// fsync the sidecar every N appends (<= 0: only at close).
  long fsync_interval = 8;
  /// Trials per grid chunk — the checkpoint granularity. Must match
  /// between the interrupted run and the resume.
  std::size_t chunk_trials = 16;
  /// Stop after this many trials executed by THIS invocation (0 = off);
  /// charged per chunk, so the overshoot is at most chunk_trials - 1.
  long trial_budget = 0;
  /// Early-stop once the 95% confidence half-width of the campaign's
  /// headline rate drops to or below this (0 = off). Unit campaigns
  /// measure it in FIT via `rate`; matmul campaigns in SDC fraction.
  double stop_half_width = 0.0;
  /// Converts the unit-campaign SDC proportion to FIT for the early stop.
  SeuRateModel rate;
};

/// run_unit_campaign with checkpoint/resume, budgets, and cancellation.
/// With a default-constructed control the tallies are bit-identical to the
/// legacy overload (the grid reduction replays the flat fault-list fold).
UnitSeuResult run_unit_campaign(units::UnitKind kind, fp::FpFormat fmt,
                                const units::UnitConfig& cfg,
                                const SeuCampaignConfig& camp,
                                const CampaignRunControl& control);

/// Configuration-memory upset-rate model: essential bits of the design's
/// footprint (fault::CramModel) struck at the raw CRAM rate, derated by
/// the probability the upset corrupts output before scrubbing repairs it
/// (fault::ScrubModel). A persistent fault that is scrubbed before the
/// kernel streams data contributes nothing.
struct CramRateModel {
  /// Raw configuration-cell upset rate, FIT per Mbit. CRAM cells are
  /// somewhat harder than user flip-flops on the same process.
  double fit_per_mbit = 150.0;
  fault::CramModel cram;
  fault::ScrubModel scrub;
  /// Mission length used when scrubbing is disabled (exposure = mission/2).
  double mission_s = 3600.0;

  /// Effective SDC FIT of configuration upsets for a design using `used`.
  double fit(const device::Resources& used) const {
    return fit_per_mbit * cram.essential_mbit(used) *
           scrub.observe_probability(mission_s);
  }
};

struct SeuDepthPoint {
  int stages = 0;
  double freq_mhz = 0.0;
  int pipeline_ffs = 0;
  long occupied_bits = 0;
  double avf = 0.0;
  double sdc_fraction = 0.0;
  double sdc_fit = 0.0;     ///< rate.fit(pipeline_ffs, avf), unhardened
  double tmr_area_x = 1.0;  ///< TMR area factor at this depth
};

/// Campaign at each requested depth (depths are clamped like UnitConfig).
/// The per-depth loop runs on camp.threads workers (each depth's inner
/// campaign is serial); every depth writes its own slot, so the sweep is
/// bit-identical at any thread count.
std::vector<SeuDepthPoint> seu_depth_sweep(units::UnitKind kind,
                                           fp::FpFormat fmt,
                                           const std::vector<int>& depths,
                                           const SeuCampaignConfig& camp,
                                           const SeuRateModel& rate = {});

/// Depth sweep with resilience: one grid chunk per depth (the sweep's
/// checkpoint granularity is a finished depth point, charged to the trial
/// budget as camp.faults inner trials). stop_half_width does not apply
/// here; checkpoint/resume/budgets/cancel do.
struct SeuSweepRun {
  std::vector<SeuDepthPoint> points;  ///< unfinished depths left zeroed
  std::vector<char> done;             ///< per-depth: restored or computed
  CampaignRunStatus run;
};
SeuSweepRun seu_depth_sweep(units::UnitKind kind, fp::FpFormat fmt,
                            const std::vector<int>& depths,
                            const SeuCampaignConfig& camp,
                            const SeuRateModel& rate,
                            const CampaignRunControl& control);

/// The paper's min/max/opt selection with a reliability constraint: opt
/// becomes the best freq/area design whose unhardened SDC FIT (pipeline
/// FFs x rate x avf_derate) stays within `max_fit`. When nothing
/// qualifies, the point with the minimum modelled FIT — the very quantity
/// the cap is expressed in — is returned and `feasible` is false. Both
/// overloads use that same fallback rule (the CRAM one over latch + CRAM
/// FIT).
struct ReliableSelection {
  Selection unconstrained;
  DesignPoint opt;
  double fit_at_opt = 0.0;       ///< total (latch + CRAM) FIT at opt
  double cram_fit_at_opt = 0.0;  ///< CRAM share of fit_at_opt
  bool feasible = false;
};

ReliableSelection select_min_max_opt_reliable(const SweepResult& sweep,
                                              double max_fit,
                                              const SeuRateModel& rate = {},
                                              double avf_derate = 1.0);

/// Same selection with the configuration-memory term included: a point
/// qualifies when latch FIT + CRAM FIT (over its full area footprint)
/// stays within `max_fit`. Shorter scrub periods shrink the CRAM term and
/// re-admit larger/faster designs — the trade the ext_cram_scrub bench
/// sweeps.
ReliableSelection select_min_max_opt_reliable(const SweepResult& sweep,
                                              double max_fit,
                                              const SeuRateModel& rate,
                                              double avf_derate,
                                              const CramRateModel& cram);

// --- kernel-level campaign ---------------------------------------------

struct MatmulSeuConfig {
  int n = 4;
  int faults = 24;
  std::uint64_t seed = 0x5eed;
  /// Fraction of faults aimed at PE BRAM accumulator words; the rest hit
  /// multiplier/adder stage latches.
  double accumulator_fraction = 0.5;
  /// Storage hardening: kEcc turns on PeConfig::ecc_accumulators (SECDED
  /// on the accumulator bank). Other schemes leave the kernel bare.
  fault::Scheme scheme = fault::Scheme::kNone;
  /// Additionally inject round(config_fraction * faults) persistent
  /// configuration upsets (FaultSite::kConfig) into unit stage logic.
  /// 0 keeps the campaign (and its RNG draw sequence) exactly legacy.
  double config_fraction = 0.0;
  /// Scrub period for those config upsets, in kernel cycles; a struck
  /// piece repairs at the next scrub boundary. <= 0: persists all run.
  long scrub_period_cycles = 0;
  /// Worker threads for the per-fault loop; each worker re-runs the kernel
  /// on its own array replica against the shared golden run. 0 = auto
  /// (FLOPSIM_THREADS, then hardware_concurrency); 1 = serial. Tallies
  /// reduce in fault-list order: bit-identical at any thread count.
  int threads = 0;
  /// Requested evaluation backend. The kernel campaign's trials are whole
  /// matmul runs with stateful PEs — outside the unit evaluators' scope —
  /// so any non-interpreted request falls back to the interpreted kernel
  /// loop (campaign.matmul.backend_fallback counts the downgrades).
  rtl::EvalBackend backend = rtl::EvalBackend::kAuto;
};

struct MatmulSeuResult {
  int injected = 0;
  int masked = 0;
  int detected = 0;   ///< ECC double-error raised (corrupted but flagged)
  int corrected = 0;  ///< ECC repaired the upset; output clean
  int silent = 0;  ///< result matrix or flags corrupted, no error signal
  // Per-site breakdown (injected/silent pairs).
  int acc_injected = 0;
  int acc_silent = 0;
  int latch_injected = 0;
  int latch_silent = 0;
  int config_injected = 0;
  int config_silent = 0;
  /// Trials dropped because a single-fault draw stayed empty through every
  /// redraw — each one shrinks the campaign below `faults` and skews the
  /// site mix, so runners surface this in their end-of-run summary.
  int draws_exhausted = 0;
  CampaignRunStatus run;
  double sdc_fraction() const {
    return injected > 0 ? static_cast<double>(silent) / injected : 0.0;
  }
};

/// Single-fault campaign over the linear-array matmul kernel: the oracle
/// is the clean cycle-accurate run (itself pinned bit-for-bit to
/// reference_gemm by the kernel tests).
MatmulSeuResult run_matmul_campaign(const kernel::PeConfig& cfg,
                                    const MatmulSeuConfig& camp);

/// run_matmul_campaign with checkpoint/resume, budgets, and cancellation;
/// stop_half_width is in SDC-fraction units here.
MatmulSeuResult run_matmul_campaign(const kernel::PeConfig& cfg,
                                    const MatmulSeuConfig& camp,
                                    const CampaignRunControl& control);

}  // namespace flopsim::analysis
