#include "analysis/seu.hpp"

#include <algorithm>
#include <optional>
#include <random>

#include "exec/parallel.hpp"
#include "obs/probe.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

namespace flopsim::analysis {

namespace {

bool same_output(const std::optional<units::UnitOutput>& a,
                 const std::optional<units::UnitOutput>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  return a->result == b->result && a->flags == b->flags;
}

/// Per-trial verdict of one unit-campaign fault, filled by whichever
/// worker owns the trial and reduced in fault-list order afterwards.
struct UnitTrial {
  bool corrupted = false;         // copy 0's own output vs golden
  bool hardened_differs = false;  // post-voter output vs golden
  bool mismatch = false;          // checker fired at any cycle
};

}  // namespace

UnitSeuResult run_unit_campaign(units::UnitKind kind, fp::FpFormat fmt,
                                const units::UnitConfig& cfg,
                                const SeuCampaignConfig& camp) {
  UnitSeuResult res;
  obs::Tracer& tracer = obs::Tracer::global();
  obs::Registry& reg = obs::Registry::global();
  auto campaign_span = tracer.span("unit_campaign", "campaign");

  units::FpUnit probe(kind, fmt, cfg);
  const int horizon = camp.vectors + probe.latency() + 2;
  const std::vector<units::UnitInput> workload =
      fault::campaign_workload(kind, fmt, camp.vectors, camp.seed);

  // Golden run: the clean pipeline over the identical stream.
  std::vector<std::optional<units::UnitOutput>> golden;
  golden.reserve(static_cast<std::size_t>(horizon));
  {
    auto golden_span = tracer.span("golden", "campaign");
    probe.reset();
    for (int t = 0; t < horizon; ++t) {
      probe.step(t < camp.vectors
                     ? std::optional<units::UnitInput>(
                           workload[static_cast<std::size_t>(t)])
                     : std::nullopt);
      golden.push_back(probe.output());
    }
  }
  // Occupancy of the clean pipeline over the campaign workload, recorded
  // on the caller's thread (thread-count-invariant by construction).
  obs::record_unit_occupancy(
      reg,
      std::string("pipeline.") + units::to_string(kind) + "." + fmt.name(),
      probe);

  auto draw_span = tracer.span("draw", "campaign");
  const fault::LatchProfile profile =
      fault::profile_unit_latches(probe, camp.vectors, camp.seed);
  res.occupied_bits = profile.total_bits();
  res.pipeline_ffs = probe.area().pipeline_ffs;

  // The whole fault list is drawn before any trial runs: the determinism
  // anchor. Every trial is a pure function of (fault, golden, workload).
  const fault::FaultCampaign campaign =
      fault::FaultCampaign::random(profile, horizon, camp.faults, camp.seed + 1);
  const std::vector<fault::Fault>& faults = campaign.faults();
  std::vector<UnitTrial> trials(faults.size());
  draw_span.end();

  obs::ProgressReporter progress("unit campaign",
                                 static_cast<long>(faults.size()));
  auto inject_span = tracer.span("inject", "campaign");
  const fault::HardenedUnit proto(kind, fmt, cfg, camp.scheme);
  exec::parallel_for_chunked(
      faults.size(), camp.threads,
      [&](int /*worker*/, std::size_t begin, std::size_t end) {
        fault::HardenedUnit hardened = proto.clone();
        for (std::size_t i = begin; i < end; ++i) {
          hardened.reset();
          hardened.arm(fault::FaultCampaign::from_list({faults[i]}));
          UnitTrial& trial = trials[i];
          for (int t = 0; t < horizon; ++t) {
            const fault::HardenedUnit::Output out = hardened.step(
                t < camp.vectors ? std::optional<units::UnitInput>(
                                       workload[static_cast<std::size_t>(t)])
                                 : std::nullopt);
            const std::optional<units::UnitOutput>& g =
                golden[static_cast<std::size_t>(t)];
            trial.corrupted |= !same_output(out.raw, g);
            trial.hardened_differs |= !same_output(out.out, g);
            trial.mismatch |= out.mismatch;
          }
          hardened.disarm();
          progress.tick();
        }
      });
  inject_span.end();

  // Ordered reduction: fault-list order, never worker-arrival order.
  auto reduce_span = tracer.span("reduce", "campaign");
  for (const UnitTrial& trial : trials) {
    ++res.injected;
    if (trial.corrupted) ++res.corrupted;
    if (camp.scheme == fault::Scheme::kTmr) {
      if (trial.hardened_differs) {
        ++res.silent;
      } else if (trial.corrupted) {
        ++res.corrected;
      } else {
        ++res.masked;
      }
    } else {
      if (trial.corrupted && !trial.mismatch) {
        ++res.silent;
      } else if (trial.mismatch) {
        ++res.detected;
      } else {
        ++res.masked;
      }
    }
  }
  reduce_span.end();

  reg.counter("campaign.unit.trials").add(res.injected);
  reg.counter("campaign.unit.corrupted").add(res.corrupted);
  reg.counter("campaign.unit.masked").add(res.masked);
  reg.counter("campaign.unit.detected").add(res.detected);
  reg.counter("campaign.unit.corrected").add(res.corrected);
  reg.counter("campaign.unit.silent").add(res.silent);
  return res;
}

std::vector<SeuDepthPoint> seu_depth_sweep(units::UnitKind kind,
                                           fp::FpFormat fmt,
                                           const std::vector<int>& depths,
                                           const SeuCampaignConfig& camp,
                                           const SeuRateModel& rate) {
  auto sweep_span =
      obs::Tracer::global().span("seu_depth_sweep", "campaign");
  std::vector<SeuDepthPoint> points(depths.size());
  exec::parallel_for_chunked(
      depths.size(), camp.threads,
      [&](int /*worker*/, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          units::UnitConfig cfg;
          cfg.stages = depths[i];
          SeuCampaignConfig c = camp;
          c.scheme = fault::Scheme::kNone;
          c.threads = 1;  // the depth grid is the parallel axis here
          const UnitSeuResult r = run_unit_campaign(kind, fmt, cfg, c);
          const units::FpUnit unit(kind, fmt, cfg);
          SeuDepthPoint p;
          p.stages = unit.stages();
          p.freq_mhz = unit.timing().freq_mhz;
          p.pipeline_ffs = r.pipeline_ffs;
          p.occupied_bits = r.occupied_bits;
          p.avf = r.avf();
          p.sdc_fraction = r.sdc_fraction();
          p.sdc_fit = rate.fit(r.pipeline_ffs, r.avf());
          p.tmr_area_x =
              fault::hardening_cost(unit, fault::Scheme::kTmr).area_factor;
          points[i] = p;
        }
      });
  return points;
}

ReliableSelection select_min_max_opt_reliable(const SweepResult& sweep,
                                              double max_fit,
                                              const SeuRateModel& rate,
                                              double avf_derate) {
  ReliableSelection sel;
  sel.unconstrained = select_min_max_opt(sweep);
  const DesignPoint* best = nullptr;
  const DesignPoint* least_vulnerable = nullptr;
  double least_fit = 0.0;
  for (const DesignPoint& p : sweep.points) {
    const double fit = rate.fit(p.pipeline_ffs, avf_derate);
    // Infeasible fallback: minimum modelled FIT — the quantity the cap is
    // expressed in (mirrors the CRAM overload below).
    if (least_vulnerable == nullptr || fit < least_fit) {
      least_vulnerable = &p;
      least_fit = fit;
    }
    if (fit <= max_fit &&
        (best == nullptr || p.freq_per_area > best->freq_per_area)) {
      best = &p;
    }
  }
  if (best != nullptr) {
    sel.opt = *best;
    sel.feasible = true;
  } else if (least_vulnerable != nullptr) {
    sel.opt = *least_vulnerable;
  }
  sel.fit_at_opt = rate.fit(sel.opt.pipeline_ffs, avf_derate);
  return sel;
}

ReliableSelection select_min_max_opt_reliable(const SweepResult& sweep,
                                              double max_fit,
                                              const SeuRateModel& rate,
                                              double avf_derate,
                                              const CramRateModel& cram) {
  ReliableSelection sel;
  sel.unconstrained = select_min_max_opt(sweep);
  const auto total_fit = [&](const DesignPoint& p) {
    return rate.fit(p.pipeline_ffs, avf_derate) + cram.fit(p.area);
  };
  const DesignPoint* best = nullptr;
  const DesignPoint* least_vulnerable = nullptr;
  double least_fit = 0.0;
  for (const DesignPoint& p : sweep.points) {
    const double fit = total_fit(p);
    if (least_vulnerable == nullptr || fit < least_fit) {
      least_vulnerable = &p;
      least_fit = fit;
    }
    if (fit <= max_fit &&
        (best == nullptr || p.freq_per_area > best->freq_per_area)) {
      best = &p;
    }
  }
  if (best != nullptr) {
    sel.opt = *best;
    sel.feasible = true;
  } else if (least_vulnerable != nullptr) {
    sel.opt = *least_vulnerable;
  }
  sel.cram_fit_at_opt = cram.fit(sel.opt.area);
  sel.fit_at_opt =
      rate.fit(sel.opt.pipeline_ffs, avf_derate) + sel.cram_fit_at_opt;
  return sel;
}

namespace {

// One kernel-campaign fault: which PE, which structure inside it.
struct PeFault {
  int pe = 0;
  enum Target {
    kMultLatch,
    kAddLatch,
    kAccumulator,
    kConfigMult,  ///< persistent config upset in the multiplier's logic
    kConfigAdd,   ///< persistent config upset in the adder's logic
  } target = kAccumulator;
  fault::Fault fault;
};

/// Per-trial verdict of one kernel-campaign fault.
struct KernelTrial {
  bool corrupted = false;
  bool ecc_detected = false;   // pe.ecc_detections() > 0 after the run
  bool ecc_corrected = false;  // pe.ecc_corrections() > 0 after the run
};

// A single-fault draw can come back empty (the sampled profile exposes no
// occupied site for that source); the legacy loop silently dropped the
// trial, so the campaign ran fewer than camp.faults faults and the
// accumulator/config fractions drifted from spec. Redraw with the next
// rng() seed until non-empty — bounded, and consuming extra draws only on
// the empty path, so a campaign whose draws all land keeps the legacy
// sequence bit for bit.
constexpr int kMaxRedraws = 16;

template <typename DrawFn>
fault::FaultCampaign redraw_until_nonempty(std::mt19937_64& rng,
                                           const DrawFn& draw) {
  fault::FaultCampaign c = draw(rng());
  for (int retry = 0; c.empty() && retry < kMaxRedraws; ++retry) {
    c = draw(rng());
  }
  return c;
}

}  // namespace

MatmulSeuResult run_matmul_campaign(const kernel::PeConfig& cfg,
                                    const MatmulSeuConfig& camp) {
  MatmulSeuResult res;
  obs::Tracer& tracer = obs::Tracer::global();
  obs::Registry& reg = obs::Registry::global();
  auto campaign_span = tracer.span("matmul_campaign", "campaign");
  const int n = camp.n;
  std::mt19937_64 rng(camp.seed);

  kernel::PeConfig pe_cfg = cfg;
  pe_cfg.ecc_accumulators = camp.scheme == fault::Scheme::kEcc;

  // Deterministic operands with magnitudes near 1 so products stay finite.
  std::vector<double> av, bv;
  av.reserve(static_cast<std::size_t>(n) * n);
  bv.reserve(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n * n; ++i) {
    av.push_back((static_cast<double>(rng() % 2001) - 1000.0) / 499.0);
    bv.push_back((static_cast<double>(rng() % 2001) - 1000.0) / 499.0);
  }
  const kernel::Matrix a = kernel::matrix_from_doubles(av, n, cfg.fmt);
  const kernel::Matrix b = kernel::matrix_from_doubles(bv, n, cfg.fmt);

  // One shared golden run; every trial compares against it.
  auto golden_span = tracer.span("golden", "campaign");
  kernel::LinearArrayMatmul array(n, pe_cfg);
  const kernel::MatmulRun clean = array.run(a, b);
  const long horizon = clean.cycles;
  golden_span.end();
  // Per-PE MAC utilization + unit occupancy of the clean kernel run,
  // recorded before any trial perturbs the golden array's counters.
  obs::record_matmul_utilization(reg, "kernel.matmul", array);

  auto draw_span = tracer.span("draw", "campaign");

  // Latch-fault sample spaces for the PE's two units.
  const units::FpUnit mult_probe(units::UnitKind::kMultiplier, cfg.fmt,
                                 cfg.mult_config());
  const units::FpUnit add_probe(units::UnitKind::kAdder, cfg.fmt,
                                cfg.adder_config());
  const fault::LatchProfile mult_profile =
      fault::profile_unit_latches(mult_probe, 24, camp.seed + 2);
  const fault::LatchProfile add_profile =
      fault::profile_unit_latches(add_probe, 24, camp.seed + 3);

  // Pre-draw the complete fault list before any trial runs (the
  // determinism anchor for the parallel trial loop below).
  std::vector<PeFault> faults;
  faults.reserve(static_cast<std::size_t>(camp.faults));
  const int acc_count = static_cast<int>(
      camp.accumulator_fraction * static_cast<double>(camp.faults) + 0.5);
  for (int i = 0; i < camp.faults; ++i) {
    PeFault pf;
    pf.pe = static_cast<int>(rng() % static_cast<std::uint64_t>(n));
    if (i < acc_count) {
      pf.target = PeFault::kAccumulator;
      const fault::FaultCampaign acc = fault::FaultCampaign::random_accumulator(
          n, cfg.fmt.total_bits(), horizon, 1, rng());
      pf.fault = acc.faults().front();
    } else {
      const bool mult = (rng() & 1) != 0;
      pf.target = mult ? PeFault::kMultLatch : PeFault::kAddLatch;
      const fault::FaultCampaign latch =
          redraw_until_nonempty(rng, [&](std::uint64_t seed) {
            return fault::FaultCampaign::random(
                mult ? mult_profile : add_profile, horizon, 1, seed);
          });
      if (latch.empty()) continue;  // no occupied site even after redraws
      pf.fault = latch.faults().front();
    }
    faults.push_back(pf);
  }

  // Configuration upsets ride on top of the legacy draw sequence (appended
  // after it, so config_fraction == 0 reproduces the old campaign bit for
  // bit): a struck LUT/route in one unit's stage logic forces a stuck mask
  // until the next scrub pass.
  const int config_count = static_cast<int>(
      camp.config_fraction * static_cast<double>(camp.faults) + 0.5);
  for (int i = 0; i < config_count; ++i) {
    PeFault pf;
    pf.pe = static_cast<int>(rng() % static_cast<std::uint64_t>(n));
    const bool mult = (rng() & 1) != 0;
    pf.target = mult ? PeFault::kConfigMult : PeFault::kConfigAdd;
    const fault::FaultCampaign config =
        redraw_until_nonempty(rng, [&](std::uint64_t seed) {
          return fault::FaultCampaign::cram(mult ? mult_profile : add_profile,
                                           horizon, 1, seed,
                                           camp.scrub_period_cycles);
        });
    if (config.empty()) continue;  // no occupied site even after redraws
    pf.fault = config.faults().front();
    faults.push_back(pf);
  }
  draw_span.end();

  // Trial loop: each worker re-runs the kernel on its own array replica
  // (run() clears every PE first, so a replica's trial is bit-identical to
  // the legacy reuse of one array). Verdicts land in per-fault slots.
  obs::ProgressReporter progress("matmul campaign",
                                 static_cast<long>(faults.size()));
  auto inject_span = tracer.span("inject", "campaign");
  std::vector<KernelTrial> trials(faults.size());
  exec::parallel_for_chunked(
      faults.size(), camp.threads,
      [&](int worker, std::size_t begin, std::size_t end) {
        // Worker 0 reuses the golden array (exactly the legacy serial
        // loop); the others run on their own replicas.
        std::optional<kernel::LinearArrayMatmul> replica;
        if (worker != 0) replica.emplace(array.clone());
        kernel::LinearArrayMatmul& worker_array =
            worker == 0 ? array : *replica;
        for (std::size_t i = begin; i < end; ++i) {
          const PeFault& pf = faults[i];
          fault::FaultInjector injector({pf.fault});
          kernel::ProcessingElement& pe = worker_array.pe(pf.pe);
          switch (pf.target) {
            case PeFault::kMultLatch:
            case PeFault::kConfigMult:
              pe.multiplier().set_latch_observer(&injector);
              break;
            case PeFault::kAddLatch:
            case PeFault::kConfigAdd:
              pe.adder().set_latch_observer(&injector);
              break;
            case PeFault::kAccumulator:
              pe.set_storage_observer(&injector);
              break;
          }
          const kernel::MatmulRun faulty = worker_array.run(a, b);
          pe.multiplier().set_latch_observer(nullptr);
          pe.adder().set_latch_observer(nullptr);
          pe.set_storage_observer(nullptr);

          KernelTrial& trial = trials[i];
          trial.corrupted =
              faulty.c.bits != clean.c.bits || faulty.flags != clean.flags;
          trial.ecc_detected = pe.ecc_detections() > 0;
          trial.ecc_corrected = pe.ecc_corrections() > 0;
          progress.tick();
        }
      });
  inject_span.end();

  // Ordered reduction over the pre-drawn fault list.
  auto reduce_span = tracer.span("reduce", "campaign");
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const PeFault& pf = faults[i];
    const KernelTrial& trial = trials[i];
    ++res.injected;
    const bool acc_site = pf.target == PeFault::kAccumulator;
    const bool config_site =
        pf.target == PeFault::kConfigMult || pf.target == PeFault::kConfigAdd;
    if (acc_site) ++res.acc_injected;
    else if (config_site) ++res.config_injected;
    else ++res.latch_injected;

    if (trial.corrupted) {
      // ECC can still flag what it cannot fix (double errors).
      if (trial.ecc_detected) {
        ++res.detected;
      } else {
        ++res.silent;
        if (acc_site) ++res.acc_silent;
        else if (config_site) ++res.config_silent;
        else ++res.latch_silent;
      }
    } else if (trial.ecc_corrected) {
      ++res.corrected;  // the upset reached storage; SECDED repaired it
    } else {
      ++res.masked;
    }
  }
  reduce_span.end();

  reg.counter("campaign.matmul.trials").add(res.injected);
  reg.counter("campaign.matmul.masked").add(res.masked);
  reg.counter("campaign.matmul.detected").add(res.detected);
  reg.counter("campaign.matmul.corrected").add(res.corrected);
  reg.counter("campaign.matmul.silent").add(res.silent);
  reg.counter("campaign.matmul.acc_injected").add(res.acc_injected);
  reg.counter("campaign.matmul.acc_silent").add(res.acc_silent);
  reg.counter("campaign.matmul.latch_injected").add(res.latch_injected);
  reg.counter("campaign.matmul.latch_silent").add(res.latch_silent);
  reg.counter("campaign.matmul.config_injected").add(res.config_injected);
  reg.counter("campaign.matmul.config_silent").add(res.config_silent);
  return res;
}

}  // namespace flopsim::analysis
