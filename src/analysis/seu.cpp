#include "analysis/seu.hpp"

#include <algorithm>
#include <random>

namespace flopsim::analysis {

namespace {

bool same_output(const std::optional<units::UnitOutput>& a,
                 const std::optional<units::UnitOutput>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  return a->result == b->result && a->flags == b->flags;
}

}  // namespace

UnitSeuResult run_unit_campaign(units::UnitKind kind, fp::FpFormat fmt,
                                const units::UnitConfig& cfg,
                                const SeuCampaignConfig& camp) {
  UnitSeuResult res;

  units::FpUnit probe(kind, fmt, cfg);
  const int horizon = camp.vectors + probe.latency() + 2;
  const std::vector<units::UnitInput> workload =
      fault::campaign_workload(kind, fmt, camp.vectors, camp.seed);

  // Golden run: the clean pipeline over the identical stream.
  std::vector<std::optional<units::UnitOutput>> golden;
  golden.reserve(static_cast<std::size_t>(horizon));
  probe.reset();
  for (int t = 0; t < horizon; ++t) {
    probe.step(t < camp.vectors
                   ? std::optional<units::UnitInput>(
                         workload[static_cast<std::size_t>(t)])
                   : std::nullopt);
    golden.push_back(probe.output());
  }

  const fault::LatchProfile profile =
      fault::profile_unit_latches(probe, camp.vectors, camp.seed);
  res.occupied_bits = profile.total_bits();
  res.pipeline_ffs = probe.area().pipeline_ffs;

  const fault::FaultCampaign campaign =
      fault::FaultCampaign::random(profile, horizon, camp.faults, camp.seed + 1);

  fault::HardenedUnit hardened(kind, fmt, cfg, camp.scheme);
  for (const fault::Fault& f : campaign.faults()) {
    hardened.reset();
    hardened.arm(fault::FaultCampaign::from_list({f}));
    bool corrupted = false;        // copy 0's own output vs golden
    bool hardened_differs = false; // post-voter output vs golden
    bool mismatch = false;         // checker fired at any cycle
    for (int t = 0; t < horizon; ++t) {
      const fault::HardenedUnit::Output out = hardened.step(
          t < camp.vectors ? std::optional<units::UnitInput>(
                                 workload[static_cast<std::size_t>(t)])
                           : std::nullopt);
      const std::optional<units::UnitOutput>& g =
          golden[static_cast<std::size_t>(t)];
      corrupted |= !same_output(out.raw, g);
      hardened_differs |= !same_output(out.out, g);
      mismatch |= out.mismatch;
    }
    hardened.disarm();

    ++res.injected;
    if (corrupted) ++res.corrupted;
    if (camp.scheme == fault::Scheme::kTmr) {
      if (hardened_differs) {
        ++res.silent;
      } else if (corrupted) {
        ++res.corrected;
      } else {
        ++res.masked;
      }
    } else {
      if (corrupted && !mismatch) {
        ++res.silent;
      } else if (mismatch) {
        ++res.detected;
      } else {
        ++res.masked;
      }
    }
  }
  return res;
}

std::vector<SeuDepthPoint> seu_depth_sweep(units::UnitKind kind,
                                           fp::FpFormat fmt,
                                           const std::vector<int>& depths,
                                           const SeuCampaignConfig& camp,
                                           const SeuRateModel& rate) {
  std::vector<SeuDepthPoint> points;
  points.reserve(depths.size());
  for (int d : depths) {
    units::UnitConfig cfg;
    cfg.stages = d;
    SeuCampaignConfig c = camp;
    c.scheme = fault::Scheme::kNone;
    const UnitSeuResult r = run_unit_campaign(kind, fmt, cfg, c);
    const units::FpUnit unit(kind, fmt, cfg);
    SeuDepthPoint p;
    p.stages = unit.stages();
    p.freq_mhz = unit.timing().freq_mhz;
    p.pipeline_ffs = r.pipeline_ffs;
    p.occupied_bits = r.occupied_bits;
    p.avf = r.avf();
    p.sdc_fraction = r.sdc_fraction();
    p.sdc_fit = rate.fit(r.pipeline_ffs, r.avf());
    p.tmr_area_x = fault::hardening_cost(unit, fault::Scheme::kTmr).area_factor;
    points.push_back(p);
  }
  return points;
}

ReliableSelection select_min_max_opt_reliable(const SweepResult& sweep,
                                              double max_fit,
                                              const SeuRateModel& rate,
                                              double avf_derate) {
  ReliableSelection sel;
  sel.unconstrained = select_min_max_opt(sweep);
  const DesignPoint* best = nullptr;
  const DesignPoint* least_vulnerable = nullptr;
  for (const DesignPoint& p : sweep.points) {
    const double fit = rate.fit(p.pipeline_ffs, avf_derate);
    if (least_vulnerable == nullptr ||
        p.pipeline_ffs < least_vulnerable->pipeline_ffs) {
      least_vulnerable = &p;
    }
    if (fit <= max_fit &&
        (best == nullptr || p.freq_per_area > best->freq_per_area)) {
      best = &p;
    }
  }
  if (best != nullptr) {
    sel.opt = *best;
    sel.feasible = true;
  } else if (least_vulnerable != nullptr) {
    sel.opt = *least_vulnerable;
  }
  sel.fit_at_opt = rate.fit(sel.opt.pipeline_ffs, avf_derate);
  return sel;
}

ReliableSelection select_min_max_opt_reliable(const SweepResult& sweep,
                                              double max_fit,
                                              const SeuRateModel& rate,
                                              double avf_derate,
                                              const CramRateModel& cram) {
  ReliableSelection sel;
  sel.unconstrained = select_min_max_opt(sweep);
  const auto total_fit = [&](const DesignPoint& p) {
    return rate.fit(p.pipeline_ffs, avf_derate) + cram.fit(p.area);
  };
  const DesignPoint* best = nullptr;
  const DesignPoint* least_vulnerable = nullptr;
  for (const DesignPoint& p : sweep.points) {
    const double fit = total_fit(p);
    if (least_vulnerable == nullptr || fit < total_fit(*least_vulnerable)) {
      least_vulnerable = &p;
    }
    if (fit <= max_fit &&
        (best == nullptr || p.freq_per_area > best->freq_per_area)) {
      best = &p;
    }
  }
  if (best != nullptr) {
    sel.opt = *best;
    sel.feasible = true;
  } else if (least_vulnerable != nullptr) {
    sel.opt = *least_vulnerable;
  }
  sel.cram_fit_at_opt = cram.fit(sel.opt.area);
  sel.fit_at_opt =
      rate.fit(sel.opt.pipeline_ffs, avf_derate) + sel.cram_fit_at_opt;
  return sel;
}

namespace {

// One kernel-campaign fault: which PE, which structure inside it.
struct PeFault {
  int pe = 0;
  enum Target {
    kMultLatch,
    kAddLatch,
    kAccumulator,
    kConfigMult,  ///< persistent config upset in the multiplier's logic
    kConfigAdd,   ///< persistent config upset in the adder's logic
  } target = kAccumulator;
  fault::Fault fault;
};

}  // namespace

MatmulSeuResult run_matmul_campaign(const kernel::PeConfig& cfg,
                                    const MatmulSeuConfig& camp) {
  MatmulSeuResult res;
  const int n = camp.n;
  std::mt19937_64 rng(camp.seed);

  kernel::PeConfig pe_cfg = cfg;
  pe_cfg.ecc_accumulators = camp.scheme == fault::Scheme::kEcc;

  // Deterministic operands with magnitudes near 1 so products stay finite.
  std::vector<double> av, bv;
  av.reserve(static_cast<std::size_t>(n) * n);
  bv.reserve(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n * n; ++i) {
    av.push_back((static_cast<double>(rng() % 2001) - 1000.0) / 499.0);
    bv.push_back((static_cast<double>(rng() % 2001) - 1000.0) / 499.0);
  }
  const kernel::Matrix a = kernel::matrix_from_doubles(av, n, cfg.fmt);
  const kernel::Matrix b = kernel::matrix_from_doubles(bv, n, cfg.fmt);

  kernel::LinearArrayMatmul array(n, pe_cfg);
  const kernel::MatmulRun clean = array.run(a, b);
  const long horizon = clean.cycles;

  // Latch-fault sample spaces for the PE's two units.
  units::FpUnit mult_probe(units::UnitKind::kMultiplier, cfg.fmt,
                           cfg.mult_config());
  units::FpUnit add_probe(units::UnitKind::kAdder, cfg.fmt,
                          cfg.adder_config());
  const fault::LatchProfile mult_profile =
      fault::profile_unit_latches(mult_probe, 24, camp.seed + 2);
  const fault::LatchProfile add_profile =
      fault::profile_unit_latches(add_probe, 24, camp.seed + 3);

  std::vector<PeFault> faults;
  faults.reserve(static_cast<std::size_t>(camp.faults));
  const int acc_count = static_cast<int>(
      camp.accumulator_fraction * static_cast<double>(camp.faults) + 0.5);
  for (int i = 0; i < camp.faults; ++i) {
    PeFault pf;
    pf.pe = static_cast<int>(rng() % static_cast<std::uint64_t>(n));
    if (i < acc_count) {
      pf.target = PeFault::kAccumulator;
      const fault::FaultCampaign acc = fault::FaultCampaign::random_accumulator(
          n, cfg.fmt.total_bits(), horizon, 1, rng());
      pf.fault = acc.faults().front();
    } else {
      const bool mult = (rng() & 1) != 0;
      pf.target = mult ? PeFault::kMultLatch : PeFault::kAddLatch;
      const fault::FaultCampaign latch = fault::FaultCampaign::random(
          mult ? mult_profile : add_profile, horizon, 1, rng());
      if (latch.empty()) continue;
      pf.fault = latch.faults().front();
    }
    faults.push_back(pf);
  }

  // Configuration upsets ride on top of the legacy draw sequence (appended
  // after it, so config_fraction == 0 reproduces the old campaign bit for
  // bit): a struck LUT/route in one unit's stage logic forces a stuck mask
  // until the next scrub pass.
  const int config_count = static_cast<int>(
      camp.config_fraction * static_cast<double>(camp.faults) + 0.5);
  for (int i = 0; i < config_count; ++i) {
    PeFault pf;
    pf.pe = static_cast<int>(rng() % static_cast<std::uint64_t>(n));
    const bool mult = (rng() & 1) != 0;
    pf.target = mult ? PeFault::kConfigMult : PeFault::kConfigAdd;
    const fault::FaultCampaign config = fault::FaultCampaign::cram(
        mult ? mult_profile : add_profile, horizon, 1, rng(),
        camp.scrub_period_cycles);
    if (config.empty()) continue;
    pf.fault = config.faults().front();
    faults.push_back(pf);
  }

  for (const PeFault& pf : faults) {
    fault::FaultInjector injector({pf.fault});
    kernel::ProcessingElement& pe = array.pe(pf.pe);
    switch (pf.target) {
      case PeFault::kMultLatch:
      case PeFault::kConfigMult:
        pe.multiplier().set_latch_observer(&injector);
        break;
      case PeFault::kAddLatch:
      case PeFault::kConfigAdd:
        pe.adder().set_latch_observer(&injector);
        break;
      case PeFault::kAccumulator:
        pe.set_storage_observer(&injector);
        break;
    }
    const kernel::MatmulRun faulty = array.run(a, b);
    pe.multiplier().set_latch_observer(nullptr);
    pe.adder().set_latch_observer(nullptr);
    pe.set_storage_observer(nullptr);

    ++res.injected;
    const bool corrupted =
        faulty.c.bits != clean.c.bits || faulty.flags != clean.flags;
    const bool acc_site = pf.target == PeFault::kAccumulator;
    const bool config_site =
        pf.target == PeFault::kConfigMult || pf.target == PeFault::kConfigAdd;
    if (acc_site) ++res.acc_injected;
    else if (config_site) ++res.config_injected;
    else ++res.latch_injected;

    if (corrupted) {
      // ECC can still flag what it cannot fix (double errors).
      if (pe.ecc_detections() > 0) {
        ++res.detected;
      } else {
        ++res.silent;
        if (acc_site) ++res.acc_silent;
        else if (config_site) ++res.config_silent;
        else ++res.latch_silent;
      }
    } else if (pe.ecc_corrections() > 0) {
      ++res.corrected;  // the upset reached storage; SECDED repaired it
    } else {
      ++res.masked;
    }
  }
  return res;
}

}  // namespace flopsim::analysis
